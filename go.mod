module twindrivers

go 1.22
