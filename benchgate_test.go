package twindrivers_test

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"twindrivers"
	"twindrivers/internal/report"
)

// TestCollectBenchKeys runs every bench-emitting sweep in quick mode and
// pins the shape of the measurement sets: every area produces entries,
// every entry carries a positive cycles/packet, keys are unique, and the
// anchor configurations the gate most depends on are present under their
// stable names.
func TestCollectBenchKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every sweep")
	}
	anchors := map[string][]string{
		"batch":      {"e1000/tx/batch=1", "e1000/tx/batch=32", "e1000/rx/batch=1"},
		"multiguest": {"e1000/tx/batch=16/guests=1", "e1000/tx/batch=16/guests=8", "e1000/rx/batch=16/guests=4"},
		"recovery":   {"recovery/wild-write/guests=1/pre", "recovery/wild-write/guests=1/post"},
		"backends":   {"e1000/tx/batch=1", "rtl8139/tx/batch=1", "rtl8139/rx/batch=32"},
		"rxpath":     {"e1000/rx/batch=1", "e1000/rx/batch=1/posted", "rtl8139/rx/batch=32/posted"},
	}
	for _, area := range twindrivers.BenchAreas() {
		b, err := twindrivers.CollectBench(io.Discard, area, true)
		if err != nil {
			t.Fatalf("%s: %v", area, err)
		}
		if b.Area != area || !b.Quick || b.Unit != "cyc/pkt" {
			t.Fatalf("%s: bad metadata %+v", area, b)
		}
		if len(b.Entries) == 0 {
			t.Fatalf("%s: empty measurement set", area)
		}
		seen := map[string]bool{}
		for _, e := range b.Entries {
			if seen[e.Config] {
				t.Errorf("%s: duplicate config %q", area, e.Config)
			}
			seen[e.Config] = true
			if e.CyclesPerPacket <= 0 {
				t.Errorf("%s: %s measured %.1f cyc/pkt", area, e.Config, e.CyclesPerPacket)
			}
		}
		for _, want := range anchors[area] {
			if !seen[want] {
				t.Errorf("%s: anchor config %q missing", area, want)
			}
		}
	}
}

// TestCommittedBaselinesLoad guards the committed BENCH_*.json files:
// every bench area has a full-mode baseline under bench/ that parses,
// matches its area and is non-empty — the gate cannot silently run
// against a missing or stale file set.
func TestCommittedBaselinesLoad(t *testing.T) {
	for _, area := range twindrivers.BenchAreas() {
		path := report.BenchPath("bench", area)
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("committed baseline missing: %v (regenerate with `go run ./cmd/benchgate -update`)", err)
		}
		b, err := report.LoadBench(path)
		if err != nil {
			t.Fatalf("%s: %v", filepath.Base(path), err)
		}
		if b.Area != area || b.Quick || len(b.Entries) == 0 {
			t.Fatalf("%s: bad baseline (area=%q quick=%v entries=%d) — full-mode baselines only",
				filepath.Base(path), b.Area, b.Quick, len(b.Entries))
		}
	}
}
