// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6), plus ablations of the design choices DESIGN.md calls out. The
// testing.B iteration count is used to repeat the measurement; the numbers
// that matter are the custom metrics (Mb/s, cycles/packet, ...) reported
// per benchmark, which correspond directly to the paper's axes.
package twindrivers_test

import (
	"io"
	"strconv"
	"testing"

	"twindrivers"
	"twindrivers/internal/asm"
	"twindrivers/internal/core"
	"twindrivers/internal/cost"
	"twindrivers/internal/cycles"
	"twindrivers/internal/e1000"
	"twindrivers/internal/kernel"
	"twindrivers/internal/netbench"
	"twindrivers/internal/netpath"
	"twindrivers/internal/rewrite"
	"twindrivers/internal/trace"
	"twindrivers/internal/webbench"
)

// measureOnce runs one netbench measurement and reports its metrics.
func measureOnce(b *testing.B, kind netpath.Kind, dir netbench.Direction, nNICs int, tcfg core.TwinConfig) *netbench.Result {
	b.Helper()
	r, err := netbench.Run(kind, dir, netbench.Params{
		NumNICs: nNICs, Measure: 256, Twin: tcfg,
	})
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// benchConfigs runs all four configurations in one direction, reporting
// the figure's bars as metrics (config names embedded in sub-benchmarks).
func benchConfigs(b *testing.B, dir netbench.Direction, nNICs int) {
	for _, kind := range netpath.Kinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			var last *netbench.Result
			for i := 0; i < b.N; i++ {
				last = measureOnce(b, kind, dir, nNICs, core.TwinConfig{})
			}
			b.ReportMetric(last.ThroughputMbps, "Mb/s")
			b.ReportMetric(last.CyclesPerPacket, "cycles/pkt")
			b.ReportMetric(100*last.CPUUtil, "%CPU")
		})
	}
}

// --- Figures 5 and 6: netperf throughput, 5 NICs --------------------------

func BenchmarkFig5TransmitThroughput(b *testing.B) {
	benchConfigs(b, netbench.TX, cost.NumNICs)
}

func BenchmarkFig6ReceiveThroughput(b *testing.B) {
	benchConfigs(b, netbench.RX, cost.NumNICs)
}

// --- Figures 7 and 8: cycles/packet profiles, single NIC ------------------

func benchBreakdown(b *testing.B, dir netbench.Direction) {
	for _, kind := range netpath.Kinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			var last *netbench.Result
			for i := 0; i < b.N; i++ {
				last = measureOnce(b, kind, dir, 1, core.TwinConfig{})
			}
			b.ReportMetric(last.CyclesPerPacket, "cycles/pkt")
			b.ReportMetric(last.Breakdown[cycles.CompDom0], "dom0")
			b.ReportMetric(last.Breakdown[cycles.CompDomU], "domU")
			b.ReportMetric(last.Breakdown[cycles.CompXen], "xen")
			b.ReportMetric(last.Breakdown[cycles.CompDriver], "e1000")
		})
	}
}

func BenchmarkFig7TransmitCycleBreakdown(b *testing.B) {
	benchBreakdown(b, netbench.TX)
}

func BenchmarkFig8ReceiveCycleBreakdown(b *testing.B) {
	benchBreakdown(b, netbench.RX)
}

// --- Figure 9: web server workload ----------------------------------------

func BenchmarkFig9WebServerThroughput(b *testing.B) {
	for _, kind := range netpath.Kinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			var last *webbench.Curve
			for i := 0; i < b.N; i++ {
				c, err := webbench.Run(kind, webbench.Params{Measure: 96, Step: 2000})
				if err != nil {
					b.Fatal(err)
				}
				last = c
			}
			b.ReportMetric(last.PeakMbps, "peakMb/s")
			b.ReportMetric(last.CapacityReqs, "req/s")
		})
	}
}

// --- Figure 10: cost of upcalls --------------------------------------------

func BenchmarkFig10UpcallCost(b *testing.B) {
	removal := twindrivers.Fig10RemovalOrder()
	for k := 0; k <= len(removal); k++ {
		k := k
		name := "upcalled-0"
		if k > 0 {
			name = "upcalled-" + removal[k-1]
		}
		b.Run(name, func(b *testing.B) {
			removed := map[string]bool{}
			for _, n := range removal[:k] {
				removed[n] = true
			}
			var sup []string
			for _, n := range core.DefaultHvSupport() {
				if !removed[n] {
					sup = append(sup, n)
				}
			}
			var last *netbench.Result
			for i := 0; i < b.N; i++ {
				last = measureOnce(b, netpath.Twin, netbench.TX, cost.NumNICs,
					core.TwinConfig{HvSupport: sup})
			}
			b.ReportMetric(last.ThroughputMbps, "Mb/s")
			b.ReportMetric(last.UpcallsPerPacket, "upcalls/pkt")
		})
	}
}

// --- Batch sweep: batched hypercall I/O --------------------------------------

// BenchmarkBatchSweep measures the domU-twin path at each batch size in
// both directions (single NIC): the cycles saved per packet come from
// amortizing the hypercall (TX) and the interrupt + notification machinery
// (RX) over the shared descriptor ring.
func BenchmarkBatchSweep(b *testing.B) {
	for _, dir := range []netbench.Direction{netbench.TX, netbench.RX} {
		for _, batch := range twindrivers.BatchSizes() {
			dir, batch := dir, batch
			b.Run(dir.String()+"/batch-"+strconv.Itoa(batch), func(b *testing.B) {
				var last *netbench.Result
				for i := 0; i < b.N; i++ {
					r, err := netbench.Run(netpath.Twin, dir, netbench.Params{
						NumNICs: 1, Measure: 256, Batch: batch,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = r
				}
				b.ReportMetric(last.CyclesPerPacket, "cycles/pkt")
				b.ReportMetric(last.HypercallsPerPacket, "hc/pkt")
				b.ReportMetric(last.ThroughputMbps, "Mb/s")
			})
		}
	}
}

// --- Backend sweep: every NIC driver model through the same pipeline ---------

// BenchmarkBackendSweep measures the domU-twin path over every registered
// NIC backend in both directions, per-packet and batched: the same
// derivation pipeline and harness, different device geometry.
func BenchmarkBackendSweep(b *testing.B) {
	for _, backend := range twindrivers.Backends() {
		for _, dir := range []netbench.Direction{netbench.TX, netbench.RX} {
			for _, batch := range twindrivers.BackendBatchSizes() {
				backend, dir, batch := backend, dir, batch
				b.Run(backend+"/"+dir.String()+"/batch-"+strconv.Itoa(batch), func(b *testing.B) {
					var last *netbench.Result
					for i := 0; i < b.N; i++ {
						r, err := netbench.Run(netpath.Twin, dir, netbench.Params{
							NumNICs: 1, Measure: 256, Batch: batch, Backend: backend,
						})
						if err != nil {
							b.Fatal(err)
						}
						last = r
					}
					b.ReportMetric(last.CyclesPerPacket, "cycles/pkt")
					b.ReportMetric(last.HypercallsPerPacket, "hc/pkt")
					b.ReportMetric(last.ThroughputMbps, "Mb/s")
				})
			}
		}
	}
}

// --- RX-path sweep: posted guest buffers vs copy-mode delivery ---------------

// BenchmarkRXPathSweep measures the domU-twin receive path per backend and
// batch size in both delivery modes: the posted rows land strictly below
// their copy-mode counterparts because the guest's per-frame copy-out is
// replaced by one direct copy into the posted buffer (plus a cached
// guest-TLB translation).
func BenchmarkRXPathSweep(b *testing.B) {
	for _, backend := range twindrivers.Backends() {
		for _, batch := range twindrivers.RXPathBatchSizes() {
			for _, posted := range []bool{false, true} {
				backend, batch, posted := backend, batch, posted
				mode := "copy"
				if posted {
					mode = "posted"
				}
				b.Run(backend+"/batch-"+strconv.Itoa(batch)+"/"+mode, func(b *testing.B) {
					var last *netbench.Result
					for i := 0; i < b.N; i++ {
						r, err := netbench.Run(netpath.Twin, netbench.RX, netbench.Params{
							NumNICs: 1, Measure: 256, Batch: batch,
							Backend: backend, PostedRX: posted,
						})
						if err != nil {
							b.Fatal(err)
						}
						last = r
					}
					b.ReportMetric(last.CyclesPerPacket, "cycles/pkt")
					b.ReportMetric(last.Breakdown[cycles.CompDomU], "domU")
					b.ReportMetric(last.Breakdown[cycles.CompXen], "xen")
					b.ReportMetric(last.ThroughputMbps, "Mb/s")
				})
			}
		}
	}
}

// --- Multi-guest sweep: per-guest rings + round-robin service ----------------

// BenchmarkMultiGuestSweep measures the domU-twin path at 1/2/4/8 guests in
// both directions (single NIC): every guest owns a transmit ring, one
// boundary crossing services all rings round-robin, and the per-guest
// cycles/packet stays flat while hypercalls/packet falls with the fan-out.
func BenchmarkMultiGuestSweep(b *testing.B) {
	for _, dir := range []netbench.Direction{netbench.TX, netbench.RX} {
		for _, guests := range twindrivers.MultiGuestCounts() {
			dir, guests := dir, guests
			b.Run(dir.String()+"/guests-"+strconv.Itoa(guests), func(b *testing.B) {
				var last *netbench.MultiGuestResult
				for i := 0; i < b.N; i++ {
					r, err := netbench.RunMultiGuest(dir, guests, netbench.Params{
						NumNICs: 1, Measure: 128, Batch: twindrivers.MultiGuestBatch,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = r
				}
				b.ReportMetric(last.CyclesPerPacket, "cycles/pkt")
				b.ReportMetric(last.PerGuest[0].CyclesPerPacket, "guest-cycles/pkt")
				b.ReportMetric(last.HypercallsPerPacket, "hc/pkt")
				b.ReportMetric(last.SwitchesPerPacket, "sw/pkt")
			})
		}
	}
}

// --- Table 1: fast-path support routine trace -------------------------------

func BenchmarkTable1FastPathRoutines(b *testing.B) {
	var last *trace.Table1
	for i := 0; i < b.N; i++ {
		t, err := trace.Run(128)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(float64(len(last.FastPath)), "fastpath-routines")
	b.ReportMetric(float64(len(last.AllRoutines)), "driver-imports")
	b.ReportMetric(float64(last.KernelSymbols), "kernel-symbols")
}

// --- Ablations ---------------------------------------------------------------

// BenchmarkAblationLiveness compares the liveness-guided rewrite against
// forced spilling (the paper's footnote 3: liveness analysis avoids
// spilling "most of the time").
func BenchmarkAblationLiveness(b *testing.B) {
	for _, forced := range []bool{false, true} {
		name := "liveness"
		if forced {
			name = "force-spill"
		}
		forced := forced
		b.Run(name, func(b *testing.B) {
			var last *netbench.Result
			for i := 0; i < b.N; i++ {
				last = measureOnce(b, netpath.Twin, netbench.TX, 1, core.TwinConfig{
					Rewrite: rewrite.Options{ForceSpill: forced},
				})
			}
			b.ReportMetric(last.Breakdown[cycles.CompDriver], "driver-cycles/pkt")
			b.ReportMetric(last.CyclesPerPacket, "cycles/pkt")
		})
	}
}

// BenchmarkAblationStackChecks measures the §4.5.1 extension: bounds checks
// on variable-offset stack accesses.
func BenchmarkAblationStackChecks(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "plain"
		if on {
			name = "stack-checks"
		}
		on := on
		b.Run(name, func(b *testing.B) {
			var last *netbench.Result
			for i := 0; i < b.N; i++ {
				last = measureOnce(b, netpath.Twin, netbench.TX, 1, core.TwinConfig{
					Rewrite: rewrite.Options{CheckStack: on},
				})
			}
			b.ReportMetric(last.Breakdown[cycles.CompDriver], "driver-cycles/pkt")
		})
	}
}

// BenchmarkAblationStlbSize sweeps the software translation table size:
// small tables raise the hash-collision rate, sending hot pages through
// the slow path (the paper fixed 4096 entries / 16 MB; this shows why).
func BenchmarkAblationStlbSize(b *testing.B) {
	for _, entries := range []int{16, 64, 256, 1024, 4096} {
		entries := entries
		b.Run(sizeName(entries), func(b *testing.B) {
			var last *netbench.Result
			var refills float64
			for i := 0; i < b.N; i++ {
				p, err := netpath.New(netpath.Twin, 1, core.TwinConfig{STLBEntries: entries})
				if err != nil {
					b.Fatal(err)
				}
				// RX: the interrupt path's register page collides with the
				// adapter page in small tables.
				r, err := netbench.Measure(p, netbench.RX, netbench.Params{NumNICs: 1, Measure: 256})
				if err != nil {
					b.Fatal(err)
				}
				last = r
				refills = float64(p.T.SV.ChainRefills) / 256
			}
			b.ReportMetric(last.CyclesPerPacket, "cycles/pkt")
			b.ReportMetric(refills, "chain-refills/pkt")
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1024:
		return "entries-" + string(rune('0'+n/1024)) + "k"
	default:
		d := []byte{}
		for v := n; v > 0; v /= 10 {
			d = append([]byte{byte('0' + v%10)}, d...)
		}
		return "entries-" + string(d)
	}
}

// BenchmarkAblationShadowStack measures the return-address shadow stack.
func BenchmarkAblationShadowStack(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "plain"
		if on {
			name = "shadow-stack"
		}
		on := on
		b.Run(name, func(b *testing.B) {
			var last *netbench.Result
			for i := 0; i < b.N; i++ {
				last = measureOnce(b, netpath.Twin, netbench.TX, 1, core.TwinConfig{
					ShadowStack: on,
				})
			}
			b.ReportMetric(last.CyclesPerPacket, "cycles/pkt")
		})
	}
}

// --- Microbenchmarks of the mechanisms ---------------------------------------

// BenchmarkRewriteDriver measures the rewriter itself over the full e1000
// driver (derivation is offline, but its speed still matters for module
// load time).
func BenchmarkRewriteDriver(b *testing.B) {
	u, err := asm.AssembleWithEquates(e1000.Source, kernel.Equates())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rewrite.Rewrite(u, rewrite.Options{RejectPrivileged: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssembleDriver measures the assembler front end.
func BenchmarkAssembleDriver(b *testing.B) {
	eq := kernel.Equates()
	for i := 0; i < b.N; i++ {
		if _, err := asm.AssembleWithEquates(e1000.Source, eq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTwinTransmit measures one guest transmit through the derived
// driver (the simulator's hot loop).
func BenchmarkTwinTransmit(b *testing.B) {
	m, tw, err := core.NewTwinMachine(1, 1, core.TwinConfig{})
	if err != nil {
		b.Fatal(err)
	}
	d := m.Devs[0]
	d.NIC.OnTransmit = func([]byte) {}
	m.HV.Switch(m.DomU)
	frame := core.EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.NIC.MAC, 0x0800, make([]byte, cost.MTU-14))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tw.GuestTransmit(d, frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNativeTransmit is the same for the original driver in dom0.
func BenchmarkNativeTransmit(b *testing.B) {
	m, err := core.NewMachine(1)
	if err != nil {
		b.Fatal(err)
	}
	d := m.Devs[0]
	d.NIC.OnTransmit = func([]byte) {}
	frame := core.EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.NIC.MAC, 0x0800, make([]byte, cost.MTU-14))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skb, err := m.NewTxSkb(d, frame)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.DevQueueXmit(d, skb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentPipeline runs the complete quick evaluation end to end
// (everything cmd/twinbench -quick does).
func BenchmarkExperimentPipeline(b *testing.B) {
	if testing.Short() {
		b.Skip("long")
	}
	for i := 0; i < b.N; i++ {
		if err := twindrivers.RunExperiment(io.Discard, "all", true); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Recovery sweep: transparent driver restart ------------------------------

// BenchmarkRecoverySweep measures the restart path per fault type and
// guest count: MTTR in simulated cycles (re-derivation + configuration
// replay), the receive frames lost with the dead instance, and the staged
// transmit frames re-staged after it.
func BenchmarkRecoverySweep(b *testing.B) {
	for _, inj := range twindrivers.FaultInjectors() {
		for _, guests := range []int{1, 4} {
			inj, guests := inj, guests
			b.Run(inj.Name+"/guests-"+strconv.Itoa(guests), func(b *testing.B) {
				var last *twindrivers.RecoveryMeasurement
				for i := 0; i < b.N; i++ {
					r, err := twindrivers.MeasureRecovery(inj, guests, 32)
					if err != nil {
						b.Fatal(err)
					}
					last = r
				}
				b.ReportMetric(float64(last.MTTRCycles), "MTTR-cycles")
				b.ReportMetric(float64(last.LostRx), "lost-rx")
				b.ReportMetric(float64(last.RetriedTx), "retried-tx")
				b.ReportMetric(last.PostCPP, "post-cycles/pkt")
			})
		}
	}
}

// BenchmarkRecoveryHotPath pins the zero-cost claim: the domU-twin hot
// path with a recovery supervisor attached reports exactly the same
// cycles/packet as without one (the supervisor only runs after a fault).
func BenchmarkRecoveryHotPath(b *testing.B) {
	for _, supervised := range []bool{false, true} {
		name := "plain"
		if supervised {
			name = "supervised"
		}
		supervised := supervised
		b.Run(name, func(b *testing.B) {
			var last *netbench.Result
			for i := 0; i < b.N; i++ {
				r, err := netbench.Run(netpath.Twin, netbench.TX, netbench.Params{
					NumNICs: 1, Measure: 256, Batch: 8, Recovery: supervised,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.CyclesPerPacket, "cycles/pkt")
			b.ReportMetric(last.HypercallsPerPacket, "hc/pkt")
		})
	}
}
