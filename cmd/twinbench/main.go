// Command twinbench regenerates the evaluation of the TwinDrivers paper:
// every table and figure of §6, measured on the simulated machine.
//
// Usage:
//
//	twinbench -experiment all          # everything, paper-scale packet counts
//	twinbench -experiment fig5 -quick  # one experiment, fewer packets
//	twinbench -list
package main

import (
	"flag"
	"fmt"
	"os"

	"twindrivers"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id (table1, fig5..fig10, batch, multiguest, effort, all)")
	quick := flag.Bool("quick", false, "fewer packets per measurement")
	list := flag.Bool("list", false, "list experiments and exit")
	bench := flag.String("bench", "", "directory to write BENCH_<area>.json measurement sets into (sweep experiments only)")
	flag.Parse()

	if *list {
		for _, e := range twindrivers.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	var err error
	if *bench != "" {
		err = twindrivers.RunExperimentBench(os.Stdout, *experiment, *quick, *bench)
	} else {
		err = twindrivers.RunExperiment(os.Stdout, *experiment, *quick)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "twinbench:", err)
		os.Exit(1)
	}
}
