// Command twinbench regenerates the evaluation of the TwinDrivers paper:
// every table and figure of §6, measured on the simulated machine.
//
// Usage:
//
//	twinbench -experiment all          # everything, paper-scale packet counts
//	twinbench -experiment fig5 -quick  # one experiment, fewer packets
//	twinbench -list
package main

import (
	"flag"
	"fmt"
	"os"

	"twindrivers"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id (table1, fig5..fig10, batch, multiguest, effort, all)")
	quick := flag.Bool("quick", false, "fewer packets per measurement")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range twindrivers.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if err := twindrivers.RunExperiment(os.Stdout, *experiment, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "twinbench:", err)
		os.Exit(1)
	}
}
