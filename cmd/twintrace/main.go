// Command twintrace runs any registered experiment with runtime
// telemetry on and writes the observability artifacts: a Chrome
// trace-event JSON (open it in chrome://tracing or ui.perfetto.dev —
// per-queue goroutine lanes, fault→recovery spans), a folded-stacks
// cycle profile (feed it to flamegraph.pl or speedscope), and the
// metrics registry snapshot as JSON and Prometheus text.
//
// Usage:
//
//	twintrace -experiment soak -quick          # traced chaos soak
//	twintrace -experiment mq -out artifacts    # traced mq sweep
//	twintrace -list
//
// Tracing attaches through a process-wide telemetry session, so the
// experiment code runs unmodified; it never charges the simulated
// cycle meters, so every number an experiment prints is identical to
// an untraced run. The exported trace is validated (well-formed,
// nonzero events, spans nest) before twintrace exits 0.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"twindrivers"
	"twindrivers/internal/telemetry"
)

func main() {
	experiment := flag.String("experiment", "soak", "experiment id to run traced (see -list)")
	quick := flag.Bool("quick", false, "fewer packets / steps per measurement")
	list := flag.Bool("list", false, "list experiments and exit")
	out := flag.String("out", "trace-artifacts", "directory to write artifacts into")
	events := flag.Int("events", 0, "per-lane event-ring capacity (0 = default 4096, keeps the most recent)")
	flag.Parse()

	if *list {
		for _, e := range twindrivers.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "twintrace: "+format+"\n", args...)
		os.Exit(1)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail("%v", err)
	}
	sess := telemetry.StartSession(telemetry.New(*events))
	defer telemetry.EndSession()

	if err := twindrivers.RunExperiment(os.Stdout, *experiment, *quick); err != nil {
		fail("experiment %s: %v", *experiment, err)
	}
	if sess.Tracer.Recorded() == 0 {
		fail("experiment %s recorded no telemetry events", *experiment)
	}

	write := func(name string, emit func(*os.File) error) string {
		path := filepath.Join(*out, *experiment+name)
		f, err := os.Create(path)
		if err != nil {
			fail("%v", err)
		}
		if err := emit(f); err != nil {
			f.Close()
			fail("writing %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			fail("closing %s: %v", path, err)
		}
		return path
	}

	tracePath := write("_trace.json", func(f *os.File) error {
		return telemetry.WriteChromeTrace(f, sess.Tracer)
	})
	// Refuse to ship an artifact the viewer would choke on.
	data, err := os.ReadFile(tracePath)
	if err != nil {
		fail("%v", err)
	}
	if err := telemetry.ValidateChromeTrace(data); err != nil {
		fail("invalid artifact %s: %v", tracePath, err)
	}
	foldedPath := write("_folded.txt", func(f *os.File) error {
		return sess.Folded.Write(f)
	})
	metricsJSON := write("_metrics.json", func(f *os.File) error {
		return sess.Registry.WriteJSON(f)
	})
	metricsProm := write("_metrics.prom", func(f *os.File) error {
		return sess.Registry.WritePrometheus(f)
	})

	lanes := sess.Tracer.Lanes()
	fmt.Printf("\ntwintrace: %d events across %d lanes, digest %s\n",
		sess.Tracer.Recorded(), len(lanes), sess.Tracer.Digest()[:16])
	for _, path := range []string{tracePath, foldedPath, metricsJSON, metricsProm} {
		fmt.Printf("twintrace: wrote %s\n", path)
	}
}
