// Command twinrw is the TwinDrivers rewriter as a stand-alone tool: guest
// driver assembly in, derived hypervisor-driver assembly out, with the
// transformation statistics the paper quotes (§4.1's "roughly 25% of the
// instructions reference memory").
//
// Usage:
//
//	twinrw -in driver.s -out hvdriver.s
//	twinrw -builtin -stats            # rewrite the bundled e1000 driver
//	twinrw -builtin -check-stack      # with §4.5.1 stack checks
package main

import (
	"flag"
	"fmt"
	"os"

	"twindrivers"
)

func main() {
	in := flag.String("in", "", "input assembly file (guest driver)")
	out := flag.String("out", "", "output assembly file (derived driver); stdout if empty")
	builtin := flag.Bool("builtin", false, "rewrite the bundled e1000-class driver")
	statsOnly := flag.Bool("stats", false, "print statistics only")
	checkStack := flag.Bool("check-stack", false, "insert variable-offset stack checks (§4.5.1)")
	forceSpill := flag.Bool("force-spill", false, "disable liveness-guided scratch selection (ablation)")
	flag.Parse()

	var src string
	switch {
	case *builtin:
		src = twindrivers.DriverSource
	case *in != "":
		b, err := os.ReadFile(*in)
		if err != nil {
			fail(err)
		}
		src = string(b)
	default:
		fail(fmt.Errorf("need -in FILE or -builtin"))
	}

	rewritten, stats, err := twindrivers.Rewrite(src, twindrivers.RewriteOptions{
		RejectPrivileged: true,
		CheckStack:       *checkStack,
		ForceSpill:       *forceSpill,
	})
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "twinrw: %s\n", stats)
	if *statsOnly {
		return
	}
	if *out == "" {
		fmt.Print(rewritten)
		return
	}
	if err := os.WriteFile(*out, []byte(rewritten), 0o644); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "twinrw:", err)
	os.Exit(1)
}
