// Command benchgate is the CI performance gate: it re-measures every
// bench-emitting sweep area (full-mode packet counts, same as the
// committed baselines) and compares the cycles/packet of every
// configuration against the BENCH_<area>.json files under the baseline
// directory. Any configuration that regressed beyond the tolerance, any
// baseline configuration no longer measured, and any new configuration
// missing from the baseline fails the gate with a non-zero exit.
//
// Usage:
//
//	benchgate                      # compare against ./bench at 5% tolerance
//	benchgate -tolerance 2         # tighter gate
//	benchgate -update              # regenerate the committed baselines
//	benchgate -v                   # also print per-component breakdown drift
//
// The simulation is deterministic, so the tolerance exists for
// intentional cost-model changes: moving a number beyond it requires a
// deliberate `benchgate -update` whose diff shows up in review.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"twindrivers"
	"twindrivers/internal/report"
)

func main() {
	baseline := flag.String("baseline", "bench", "directory holding the committed BENCH_<area>.json baselines")
	tolerance := flag.Float64("tolerance", 5.0, "allowed cycles/packet increase, percent")
	update := flag.Bool("update", false, "rewrite the baselines from a fresh measurement instead of comparing")
	quick := flag.Bool("quick", false, "quick-mode packet counts (only for quick-mode baselines)")
	verbose := flag.Bool("v", false, "print per-component cycle-breakdown drift for every configuration")
	flag.Parse()

	failed := false
	for _, area := range twindrivers.BenchAreas() {
		cur, err := twindrivers.CollectBench(io.Discard, area, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: measuring %s: %v\n", area, err)
			os.Exit(1)
		}
		if *update {
			if err := cur.WriteFile(*baseline); err != nil {
				fmt.Fprintf(os.Stderr, "benchgate: writing %s: %v\n", area, err)
				os.Exit(1)
			}
			fmt.Printf("benchgate: wrote %s (%d configs)\n", report.BenchPath(*baseline, area), len(cur.Entries))
			continue
		}
		base, err := report.LoadBench(report.BenchPath(*baseline, area))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: loading %s baseline: %v\n", area, err)
			os.Exit(1)
		}
		err = report.CompareBench(base, cur, *tolerance)
		if *verbose {
			// Per-component drift regardless of pass/fail: when a number
			// moves, this names the bucket (dom0/domU/xen/driver) it
			// moved in.
			for _, b := range base.Entries {
				c, ok := cur.Lookup(b.Config)
				if !ok {
					continue
				}
				if drift := report.BreakdownDrift(b, c); drift != "" {
					fmt.Printf("  %s/%s: %s\n", area, b.Config, drift)
				}
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %v\n", err)
			failed = true
			continue
		}
		fmt.Printf("benchgate: ok %s (%d configs within %.1f%%)\n", area, len(base.Entries), *tolerance)
	}
	if failed {
		os.Exit(1)
	}
}
