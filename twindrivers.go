// Package twindrivers is a reproduction of "TwinDrivers: Semi-Automatic
// Derivation of Fast and Safe Hypervisor Network Drivers from Guest OS
// Drivers" (Menon, Schubert, Zwaenepoel — ASPLOS 2009), built over a
// simulated x86-like machine.
//
// The package re-exports the system's public surface:
//
//   - NewMachine / NewTwinMachine bring up a simulated host (hypervisor,
//     dom0 with its kernel and the e1000-class driver, a guest domain,
//     NICs) — natively, or twinned with the derived hypervisor driver.
//   - Rewrite runs the TwinDrivers binary rewriter over driver assembly.
//   - The experiment runners regenerate every table and figure of the
//     paper's evaluation (see Experiments).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results against the paper.
package twindrivers

import (
	"twindrivers/internal/asm"
	"twindrivers/internal/core"
	"twindrivers/internal/e1000"
	"twindrivers/internal/kernel"
	"twindrivers/internal/rewrite"
)

// Machine is a simulated host; see core.Machine.
type Machine = core.Machine

// Twin is the loaded TwinDrivers runtime; see core.Twin.
type Twin = core.Twin

// TwinConfig parameterises driver derivation; see core.TwinConfig.
type TwinConfig = core.TwinConfig

// RewriteOptions control the binary rewriter; see rewrite.Options.
type RewriteOptions = rewrite.Options

// RewriteStats describe a derivation; see rewrite.Stats.
type RewriteStats = rewrite.Stats

// NICDev couples a NIC with its dom0 identity; see core.NICDev.
type NICDev = core.NICDev

// NewMachine builds a host with n NICs and the original driver running in
// dom0 (the native-Linux / dom0 configurations).
func NewMachine(nNICs int) (*Machine, error) { return core.NewMachine(nNICs) }

// NewTwinMachine builds a host whose driver is twinned: the rewritten
// binary runs as the VM instance in dom0 (identity stlb) and as the
// derived instance in the hypervisor (translating stlb). nGuests guest
// domains share the NIC; each gets its own transmit descriptor ring,
// staging slots and bounce buffer, drained round-robin by
// Twin.ServiceRings.
func NewTwinMachine(nNICs, nGuests int, cfg TwinConfig) (*Machine, *Twin, error) {
	return core.NewTwinMachine(nNICs, nGuests, cfg)
}

// DefaultHvSupport returns Table 1: the ten support routines implemented
// natively in the hypervisor.
func DefaultHvSupport() []string { return core.DefaultHvSupport() }

// DriverSource is the guest-OS e1000-class driver, in the simulated
// machine's assembly dialect.
const DriverSource = e1000.Source

// Rewrite derives hypervisor-driver assembly from guest-driver assembly,
// returning the rewritten text and statistics. Kernel structure-layout
// equates are injected automatically.
func Rewrite(src string, opt RewriteOptions) (string, *RewriteStats, error) {
	u, err := asm.AssembleWithEquates(src, kernel.Equates())
	if err != nil {
		return "", nil, err
	}
	ru, stats, err := rewrite.Rewrite(u, opt)
	if err != nil {
		return "", nil, err
	}
	return ru.Print(), stats, nil
}

// EthernetFrame builds a test frame (dst, src, ethertype, payload) padded
// to the Ethernet minimum.
func EthernetFrame(dst, src [6]byte, ethertype uint16, payload []byte) []byte {
	return core.EthernetFrame(dst, src, ethertype, payload)
}
