// Package twindrivers is a reproduction of "TwinDrivers: Semi-Automatic
// Derivation of Fast and Safe Hypervisor Network Drivers from Guest OS
// Drivers" (Menon, Schubert, Zwaenepoel — ASPLOS 2009), built over a
// simulated x86-like machine.
//
// The package re-exports the system's public surface:
//
//   - NewMachine / NewTwinMachine bring up a simulated host (hypervisor,
//     dom0 with its kernel and the e1000-class driver, a guest domain,
//     NICs) — natively, or twinned with the derived hypervisor driver.
//   - Rewrite runs the TwinDrivers binary rewriter over driver assembly.
//   - The experiment runners regenerate every table and figure of the
//     paper's evaluation (see Experiments).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results against the paper.
package twindrivers

import (
	"fmt"

	"twindrivers/internal/asm"
	"twindrivers/internal/core"
	"twindrivers/internal/drivermodel"
	"twindrivers/internal/e1000"
	"twindrivers/internal/kernel"
	"twindrivers/internal/recovery"
	"twindrivers/internal/rewrite"

	// Link every NIC backend so Backends()/NewTwinMachineBackend resolve
	// them by name.
	_ "twindrivers/internal/rtl8139"
)

// Machine is a simulated host; see core.Machine.
type Machine = core.Machine

// Twin is the loaded TwinDrivers runtime; see core.Twin.
type Twin = core.Twin

// TwinConfig parameterises driver derivation; see core.TwinConfig.
type TwinConfig = core.TwinConfig

// RewriteOptions control the binary rewriter; see rewrite.Options.
type RewriteOptions = rewrite.Options

// RewriteStats describe a derivation; see rewrite.Stats.
type RewriteStats = rewrite.Stats

// NICDev couples a NIC with its dom0 identity; see core.NICDev.
type NICDev = core.NICDev

// FaultRecord is one entry of a twin's bounded fault log; see
// core.FaultRecord.
type FaultRecord = core.FaultRecord

// RecoverySupervisor revives a faulted twin under an escalation policy;
// see recovery.Supervisor.
type RecoverySupervisor = recovery.Supervisor

// RecoveryPolicy bounds how hard the supervisor tries (K faults in a
// cycle window and it gives up); see recovery.Policy.
type RecoveryPolicy = recovery.Policy

// RecoveryEvent records one recovery's fault attribution, MTTR and loss
// accounting; see recovery.Event.
type RecoveryEvent = recovery.Event

// FaultInjector is one reproducible driver bug of the §4.5 containment
// story; see recovery.Injector.
type FaultInjector = recovery.Injector

// ErrRecoveryGivenUp reports that the fault rate exceeded the supervisor's
// escalation policy and the twin was left dead.
var ErrRecoveryGivenUp = recovery.ErrGivenUp

// NewRecoverySupervisor builds a supervisor over a twin: driver faults
// become transient, measurable events (re-derive, restart, replay) instead
// of a terminal state. Pass the zero Policy for defaults.
func NewRecoverySupervisor(m *Machine, t *Twin, p RecoveryPolicy) *RecoverySupervisor {
	return recovery.New(m, t, p)
}

// FaultInjectors returns the three reproducible fault types (wild write,
// runaway loop, corrupt function pointer) used by the recovery experiment
// and the faultinjection example.
func FaultInjectors() []FaultInjector { return recovery.Injectors() }

// NewMachine builds a host with n NICs and the original driver running in
// dom0 (the native-Linux / dom0 configurations).
func NewMachine(nNICs int) (*Machine, error) { return core.NewMachine(nNICs) }

// NewTwinMachine builds a host whose driver is twinned: the rewritten
// binary runs as the VM instance in dom0 (identity stlb) and as the
// derived instance in the hypervisor (translating stlb). nGuests guest
// domains share the NIC; each gets its own transmit descriptor ring,
// staging slots and bounce buffer, drained round-robin by
// Twin.ServiceRings.
func NewTwinMachine(nNICs, nGuests int, cfg TwinConfig) (*Machine, *Twin, error) {
	return core.NewTwinMachine(nNICs, nGuests, cfg)
}

// DefaultHvSupport returns Table 1: the ten support routines implemented
// natively in the hypervisor.
func DefaultHvSupport() []string { return core.DefaultHvSupport() }

// DriverModel describes one NIC backend (driver source, entry symbols,
// geometry, device factory); see drivermodel.Model.
type DriverModel = drivermodel.Model

// Backends lists every registered NIC driver model, sorted. Each one is
// derived by the same rewrite pipeline and proven equivalent by the shared
// conformance suite and differential harness (internal/conformance).
func Backends() []string { return drivermodel.Names() }

// NewTwinMachineBackend is NewTwinMachine with an explicit NIC backend
// ("e1000", "rtl8139", or any model a third backend registers).
func NewTwinMachineBackend(nNICs, nGuests int, backend string, cfg TwinConfig) (*Machine, *Twin, error) {
	model, ok := drivermodel.Get(backend)
	if !ok {
		return nil, nil, fmt.Errorf("twindrivers: unknown backend %q (have %v)", backend, drivermodel.Names())
	}
	return core.NewTwinMachineModel(nNICs, nGuests, model, cfg)
}

// DriverSource is the guest-OS e1000-class driver, in the simulated
// machine's assembly dialect.
const DriverSource = e1000.Source

// Rewrite derives hypervisor-driver assembly from guest-driver assembly,
// returning the rewritten text and statistics. Kernel structure-layout
// equates are injected automatically.
func Rewrite(src string, opt RewriteOptions) (string, *RewriteStats, error) {
	u, err := asm.AssembleWithEquates(src, kernel.Equates())
	if err != nil {
		return "", nil, err
	}
	ru, stats, err := rewrite.Rewrite(u, opt)
	if err != nil {
		return "", nil, err
	}
	return ru.Print(), stats, nil
}

// EthernetFrame builds a test frame (dst, src, ethertype, payload) padded
// to the Ethernet minimum.
func EthernetFrame(dst, src [6]byte, ethertype uint16, payload []byte) []byte {
	return core.EthernetFrame(dst, src, ethertype, payload)
}
