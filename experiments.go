package twindrivers

import (
	"fmt"
	"io"
	"sort"

	"twindrivers/internal/chaos"
	"twindrivers/internal/core"
	"twindrivers/internal/cost"
	"twindrivers/internal/drivermodel"
	"twindrivers/internal/mem"
	"twindrivers/internal/netbench"
	"twindrivers/internal/netpath"
	"twindrivers/internal/recovery"
	"twindrivers/internal/report"
	"twindrivers/internal/trace"
	"twindrivers/internal/webbench"
)

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string // "fig5" ... "fig10", "table1", "effort"
	Title string
	Run   func(w io.Writer, quick bool) error
}

// paper-reported values, for side-by-side rendering.
var (
	paperFig5 = map[string]float64{"Linux": 4690, "dom0": 4683, "domU-twin": 3902, "domU": 1619}
	paperFig6 = map[string]float64{"Linux": 3010, "dom0": 2839, "domU-twin": 2022, "domU": 928}
	paperFig7 = map[string]float64{"Linux": 7126, "dom0": 8310, "domU-twin": 9972, "domU": 21159}
	paperFig8 = map[string]float64{"Linux": 11166, "dom0": 14308, "domU-twin": 20089, "domU": 35905}
	paperFig9 = map[string]float64{"Linux": 855, "dom0": 712, "domU-twin": 572, "domU": 269}
)

func packets(quick bool) int {
	if quick {
		return 128
	}
	return 512
}

// runThroughput produces a Figure 5/6 table.
func runThroughput(w io.Writer, dir netbench.Direction, title string, paper map[string]float64, quick bool) error {
	var results []*netbench.Result
	for _, kind := range netpath.Kinds() {
		r, err := netbench.Run(kind, dir, netbench.Params{
			NumNICs: cost.NumNICs, Measure: packets(quick),
		})
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	report.Throughput(w, title, results, paper)
	// The paper's headline factors.
	byName := map[string]*netbench.Result{}
	for _, r := range results {
		byName[r.Config] = r
	}
	twin, domU, linux := byName["domU-twin"], byName["domU"], byName["Linux"]
	fmt.Fprintf(w, "improvement over unoptimized guest: %.2fx (paper: %s)\n",
		twin.ThroughputMbps/domU.ThroughputMbps, map[netbench.Direction]string{netbench.TX: "2.41x", netbench.RX: "2.17x"}[dir])
	fmt.Fprintf(w, "fraction of native (CPU-scaled):    %.0f%% (paper: %s)\n\n",
		100*(twin.ThroughputMbps/twin.CPUUtil)/(linux.ThroughputMbps/linux.CPUUtil),
		map[netbench.Direction]string{netbench.TX: "64%", netbench.RX: "67%"}[dir])
	return nil
}

// runBreakdown produces a Figure 7/8 table (single-NIC profile).
func runBreakdown(w io.Writer, dir netbench.Direction, title string, paper map[string]float64, quick bool) error {
	var results []*netbench.Result
	for _, kind := range netpath.Kinds() {
		r, err := netbench.Run(kind, dir, netbench.Params{
			NumNICs: 1, Measure: packets(quick),
		})
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	report.Breakdown(w, title, results, paper)
	return nil
}

// Fig10RemovalOrder is the order in which fast-path routines are converted
// back to upcalls for the Figure 10 sweep. netif_rx stays implemented
// throughout, as in the paper's final bar.
func Fig10RemovalOrder() []string {
	return []string{
		"spin_trylock",
		"spin_unlock_irqrestore",
		"dma_unmap_single",
		"dev_kfree_skb_any",
		"dma_map_single",
		"dma_map_page",
		"netdev_alloc_skb",
		"eth_type_trans",
		"dma_unmap_page",
	}
}

func runFig10(w io.Writer, quick bool) error {
	removal := Fig10RemovalOrder()
	var results []*netbench.Result
	for k := 0; k <= len(removal); k++ {
		removed := map[string]bool{}
		for _, name := range removal[:k] {
			removed[name] = true
		}
		var sup []string
		for _, name := range core.DefaultHvSupport() {
			if !removed[name] {
				sup = append(sup, name)
			}
		}
		r, err := netbench.Run(netpath.Twin, netbench.TX, netbench.Params{
			NumNICs: cost.NumNICs, Measure: packets(quick),
			Twin: core.TwinConfig{HvSupport: sup},
		})
		if err != nil {
			return fmt.Errorf("fig10 k=%d: %w", k, err)
		}
		results = append(results, r)
	}
	report.UpcallSweep(w, results)
	fmt.Fprintf(w, "paper: 0 upcalls -> 3902 Mb/s; 1 upcall -> 1638 Mb/s; all-but-netif_rx -> 359 Mb/s\n")
	fmt.Fprintf(w, "(our transmit-only stream exercises the TX-path subset of the ten routines;\n")
	fmt.Fprintf(w, " the collapse shape — halving at the first upcall — is the reproduced claim)\n\n")
	return nil
}

// BatchSizes is the batch-size sweep of the batched-hypercall experiment:
// 1 is the paper's per-packet path (the baseline every figure uses), the
// larger sizes amortize the boundary crossing and, on receive, the
// interrupt and notification machinery over the batch.
func BatchSizes() []int { return []int{1, 8, 32} }

// runBatchSweep measures the domU-twin path at each batch size in both
// directions (single NIC, the Figure 7/8 profile setup), showing where the
// amortization lands in the four-bucket attribution. A non-nil bench sink
// collects the cycles/packet of every configuration.
func runBatchSweep(w io.Writer, quick bool, bench *report.Bench) error {
	for _, dir := range []netbench.Direction{netbench.TX, netbench.RX} {
		var results []*netbench.Result
		for _, batch := range BatchSizes() {
			r, err := netbench.Run(netpath.Twin, dir, netbench.Params{
				NumNICs: 1, Measure: packets(quick), Batch: batch,
			})
			if err != nil {
				return fmt.Errorf("batch=%d %s: %w", batch, dir, err)
			}
			results = append(results, r)
			if bench != nil {
				bench.AddBreakdown(r.BenchKey(), r.CyclesPerPacket, r.Breakdown)
			}
		}
		report.BatchSweep(w, fmt.Sprintf("Batch sweep: domU-twin %s cycles/packet vs batch size", dir), results)
	}
	fmt.Fprintf(w, "batch=1 is the per-packet hypercall path of Figures 7/8 (unchanged);\n")
	fmt.Fprintf(w, "larger batches amortize the hypercall (TX) and the interrupt +\n")
	fmt.Fprintf(w, "notification machinery (RX) across the shared descriptor ring.\n\n")
	return nil
}

// MultiGuestCounts is the guest-count sweep of the multiguest experiment:
// 1 guest is the baseline every figure uses; the larger counts share the
// NIC through per-guest transmit rings drained round-robin under one
// boundary crossing per service round. 64 and 256 are the
// hundreds-of-guests points: 256 fills the entire guest heap layout
// (xen.MaxGuests) and the receive path processes guests in NIC-ring-sized
// waves.
func MultiGuestCounts() []int { return []int{1, 2, 4, 8, 64, 256} }

// MultiGuestBatch is the per-guest frames-per-round of the sweep, sized so
// eight guests' receive rounds still fit the NIC's descriptor ring.
const MultiGuestBatch = 16

// multiGuestLoad sizes the per-guest measurement for a guest count: the
// historical packet budget up to 8 guests (those bench values are pinned),
// scaled down at the large fan-outs where total volume grows with the
// guest count anyway.
func multiGuestLoad(quick bool, g int) (perGuest, warmup int) {
	perGuest, warmup = packets(quick)/2, 0 // 0 = harness default
	switch {
	case g > 64:
		perGuest, warmup = packets(quick)/16, 16
	case g > 8:
		perGuest, warmup = packets(quick)/8, 16
	}
	if perGuest < MultiGuestBatch {
		perGuest = MultiGuestBatch
	}
	return perGuest, warmup
}

// runMultiGuestSweep measures the domU-twin path at each guest count in
// both directions (single NIC): the headline is that the per-guest
// cycles/packet stays essentially flat as guests multiply, because the
// ring-service fan-out amortizes the boundary crossing across guests.
func runMultiGuestSweep(w io.Writer, quick bool, bench *report.Bench) error {
	for _, dir := range []netbench.Direction{netbench.TX, netbench.RX} {
		var results []*netbench.MultiGuestResult
		for _, g := range MultiGuestCounts() {
			perGuestPackets, warmup := multiGuestLoad(quick, g)
			r, err := netbench.RunMultiGuest(dir, g, netbench.Params{
				NumNICs: 1, Measure: perGuestPackets, Warmup: warmup, Batch: MultiGuestBatch,
			})
			if err != nil {
				return fmt.Errorf("multiguest guests=%d %s: %w", g, dir, err)
			}
			results = append(results, r)
			if bench != nil {
				bench.AddBreakdown(r.BenchKey(), r.CyclesPerPacket, r.Breakdown)
			}
		}
		report.MultiGuestSweep(w, fmt.Sprintf("Multi-guest sweep: domU-twin %s cycles/packet vs guest count", dir), results)
		single, four := results[0], results[2]
		fmt.Fprintf(w, "per-guest cycles/packet at 4 guests: %.0f vs %.0f single-guest (%+.1f%%)\n",
			four.PerGuest[0].CyclesPerPacket, single.CyclesPerPacket,
			100*(four.PerGuest[0].CyclesPerPacket-single.CyclesPerPacket)/single.CyclesPerPacket)
		last := results[len(results)-1]
		fmt.Fprintf(w, "at %d guests (full heap layout) per-guest cost is %.0f cyc/pkt (%+.1f%% vs single)\n\n",
			last.Guests, last.PerGuest[0].CyclesPerPacket,
			100*(last.PerGuest[0].CyclesPerPacket-single.CyclesPerPacket)/single.CyclesPerPacket)
	}
	fmt.Fprintf(w, "each guest stages %d-frame bursts in its own transmit ring; one\n", MultiGuestBatch)
	fmt.Fprintf(w, "ServiceRings crossing drains all guests round-robin, so the hypercall\n")
	fmt.Fprintf(w, "amortizes across guests (hc/pkt falls as 1/guests) and per-guest cost\n")
	fmt.Fprintf(w, "stays flat — the fan-out the paper's in-context execution enables.\n\n")
	return nil
}

// SchedWeights is the weight pattern of the weighted scheduler rows:
// 4:2:1 applied cyclically over the guest list, so every third guest is
// a heavy, middle or light tenant.
func SchedWeights() []int { return []int{4, 2, 1} }

// runSchedSweep measures the deficit-round-robin scheduler and the
// inter-guest L2 switch. The scheduler rows run the contended transmit
// workload — every guest permanently backlogged, service budgeted per
// crossing — so the per-guest completion counts are the scheduler's
// share decisions: equal weights reproduce the classic round-robin,
// 4:2:1 weights land every guest within a few percent of its weight
// share at 8, 64 and 256 guests, and a rate cap binds a guest below its
// weight. The switch rows compare guest→guest delivery through the
// dom0-side switch against the device hairpin on every backend.
func runSchedSweep(w io.Writer, quick bool, bench *report.Bench) error {
	measure := packets(quick)
	rows := []struct {
		guests  int
		weights []int
		rates   []int
	}{
		{8, nil, nil},
		{8, SchedWeights(), nil},
		{64, SchedWeights(), nil},
		{256, SchedWeights(), nil},
		{64, []int{8, 1}, []int{4, 0}},
	}
	var results []*netbench.SchedResult
	for _, row := range rows {
		r, err := netbench.RunSched(row.guests, netbench.Params{
			NumNICs: 1, Measure: measure, Warmup: measure / 4, Batch: MultiGuestBatch,
			Weights: row.weights, Rates: row.rates,
		})
		if err != nil {
			return fmt.Errorf("sched guests=%d: %w", row.guests, err)
		}
		results = append(results, r)
		if bench != nil {
			bench.AddBreakdown(r.BenchKey(), r.CyclesPerPacket, r.Breakdown)
		}
	}
	report.SchedSweep(w, "Weighted-fair scheduling: contended TX shares under DRR", results)
	weighted64 := results[2]
	fmt.Fprintf(w, "at 64 guests weighted 4:2:1, the worst guest's share deviates %.2f%%\n",
		weighted64.MaxShareErrPct)
	fmt.Fprintf(w, "from its weight share; equal weights reproduce the classic round-robin.\n\n")

	var vres []*netbench.VswitchResult
	for _, name := range drivermodel.Names() {
		r, err := netbench.RunVswitch(netbench.Params{
			NumNICs: 1, Measure: measure, Warmup: measure / 4,
			Batch: MultiGuestBatch, Backend: name,
		})
		if err != nil {
			return fmt.Errorf("vswitch %s: %w", name, err)
		}
		vres = append(vres, r)
		if bench != nil {
			bench.AddBreakdown(r.SwitchKey(), r.SwitchCPP, r.SwitchBreakdown)
			bench.AddBreakdown(r.DeviceKey(), r.DeviceCPP, r.DeviceBreakdown)
		}
	}
	report.VswitchCompare(w, "Inter-guest switch: guest-to-guest cycles/packet, switch vs device hairpin", vres)
	fmt.Fprintf(w, "switched frames are classified and copied dom0-side (MAC table lookup +\n")
	fmt.Fprintf(w, "per-frame forward) and never touch the device; the hairpin pays the\n")
	fmt.Fprintf(w, "full transmit, wire, interrupt and receive-demux path for each frame.\n\n")
	return nil
}

// MQQueueCounts is the service-queue axis of the multi-queue sweep.
func MQQueueCounts() []int { return []int{1, 2, 4, 8} }

// MQGuests and MQBatch fix the load of the multi-queue sweep: eight
// guests staging 32-frame bursts, enough concurrent work that the
// critical path is dominated by the slowest queue's service loop.
const (
	MQGuests = 8
	MQBatch  = 32
)

// runMQSweep measures the mqnic backend at each service-queue count
// under a fixed transmit load. Guests shard across the queues by RSS
// hash of their transmit flow, each queue runs its own metered service
// loop, and the reported cycles/packet is the critical path — shared
// work plus the slowest queue — so the cost falls as the same guest
// population spreads over more queues.
func runMQSweep(w io.Writer, quick bool, bench *report.Bench) error {
	perGuestPackets := packets(quick) / 2
	var results []*netbench.MultiGuestResult
	for _, q := range MQQueueCounts() {
		r, err := netbench.RunMultiGuest(netbench.TX, MQGuests, netbench.Params{
			NumNICs: 1, Measure: perGuestPackets, Batch: MQBatch,
			Backend: "mqnic", Queues: q,
		})
		if err != nil {
			return fmt.Errorf("mq queues=%d: %w", q, err)
		}
		results = append(results, r)
		if bench != nil {
			bench.AddBreakdown(r.BenchKey(), r.CyclesPerPacket, r.Breakdown)
		}
	}
	report.MQSweep(w, "Multi-queue sweep: mqnic TX critical-path cycles/packet vs queue count", results)
	one, four := results[0], results[2]
	fmt.Fprintf(w, "critical-path cycles/packet at 4 queues: %.0f vs %.0f single-queue (%+.1f%%)\n\n",
		four.CyclesPerPacket, one.CyclesPerPacket,
		100*(four.CyclesPerPacket-one.CyclesPerPacket)/one.CyclesPerPacket)
	fmt.Fprintf(w, "guests shard across queues by RSS flow hash; every queue owns its own\n")
	fmt.Fprintf(w, "descriptor rings, service loop and cycle meter (shared-nothing), so the\n")
	fmt.Fprintf(w, "per-round wall clock is the slowest queue, not the sum of all guests.\n\n")
	return nil
}

// BackendBatchSizes is the batch-size axis of the backend sweep: the
// per-packet baseline and one amortized point.
func BackendBatchSizes() []int { return []int{1, 32} }

// runBackendSweep measures the domU-twin path over every registered NIC
// backend (single NIC, both directions, per-packet and batched): the same
// derivation pipeline, containment machinery and measurement harness run
// whichever driver the model carries, and the table shows what each
// device's geometry costs — the e1000's zero-copy frag chaining versus
// the rtl8139's copy-everything slots and byte ring.
func runBackendSweep(w io.Writer, quick bool, bench *report.Bench) error {
	var results []*netbench.Result
	for _, name := range drivermodel.Names() {
		for _, dir := range []netbench.Direction{netbench.TX, netbench.RX} {
			for _, batch := range BackendBatchSizes() {
				r, err := netbench.Run(netpath.Twin, dir, netbench.Params{
					NumNICs: 1, Measure: packets(quick), Batch: batch, Backend: name,
				})
				if err != nil {
					return fmt.Errorf("backend %s %s batch=%d: %w", name, dir, batch, err)
				}
				results = append(results, r)
				if bench != nil {
					bench.AddBreakdown(r.BenchKey(), r.CyclesPerPacket, r.Breakdown)
				}
			}
		}
	}
	report.BackendSweep(w, "Backend sweep: domU-twin cycles/packet per NIC driver model", results)
	fmt.Fprintf(w, "every backend is derived by the same rewrite pipeline and passes the\n")
	fmt.Fprintf(w, "same conformance suite; the cost difference is the device geometry —\n")
	fmt.Fprintf(w, "the rtl8139 copies whole frames into its four staging slots and out of\n")
	fmt.Fprintf(w, "its receive byte ring, where the e1000 chains guest pages zero-copy.\n\n")
	return nil
}

// RXPathBatchSizes is the batch axis of the posted-receive sweep: the
// per-packet baseline and the two amortized points the batch sweep uses.
func RXPathBatchSizes() []int { return []int{1, 8, 32} }

// runRXPathSweep measures the domU-twin receive path per backend and batch
// size, legacy copy mode against posted guest buffers: posting trades the
// paravirtual driver's copy-out of every frame for a per-packet guest-TLB
// translation in the hypervisor, and the sweep shows the posted rows
// strictly below their copy-mode counterparts on every backend.
func runRXPathSweep(w io.Writer, quick bool, bench *report.Bench) error {
	var results []*netbench.Result
	for _, name := range drivermodel.Names() {
		for _, batch := range RXPathBatchSizes() {
			for _, posted := range []bool{false, true} {
				r, err := netbench.Run(netpath.Twin, netbench.RX, netbench.Params{
					NumNICs: 1, Measure: packets(quick), Batch: batch,
					Backend: name, PostedRX: posted,
				})
				if err != nil {
					return fmt.Errorf("rxpath %s batch=%d posted=%v: %w", name, batch, posted, err)
				}
				results = append(results, r)
				if bench != nil {
					bench.AddBreakdown(r.BenchKey(), r.CyclesPerPacket, r.Breakdown)
				}
			}
		}
	}
	report.RXPathSweep(w, "RX-path sweep: posted guest buffers vs copy-mode delivery", results)
	fmt.Fprintf(w, "copy mode queues every frame in a pooled dom0 sk_buff, copies it into\n")
	fmt.Fprintf(w, "the shared delivery region, and the guest pv driver copies it out again;\n")
	fmt.Fprintf(w, "posted mode copies once, straight into the guest-posted buffer, with the\n")
	fmt.Fprintf(w, "guest address resolved through the per-guest software TLB (invalidated\n")
	fmt.Fprintf(w, "on abort/revive). Copy mode stays the default: batch=1 cycle identity\n")
	fmt.Fprintf(w, "and the recovery hot-path equality tests pin it unchanged.\n\n")
	return nil
}

// TXPathBatchSizes is the batch axis of the posted-transmit sweep,
// matching the posted-receive sweep's points.
func TXPathBatchSizes() []int { return []int{1, 8, 32} }

// runTXPathSweep measures the domU-twin transmit path per backend and
// batch size, staging-copy mode against posted scatter/gather descriptors:
// posting trades the guest's per-byte staging copy for a fixed descriptor
// post, with the hypervisor resolving each frame through the guest TLB and
// pinning its pages for the device, and the sweep shows the posted rows
// strictly below their copy-mode counterparts on every backend.
func runTXPathSweep(w io.Writer, quick bool, bench *report.Bench) error {
	var results []*netbench.Result
	for _, name := range drivermodel.Names() {
		for _, batch := range TXPathBatchSizes() {
			for _, posted := range []bool{false, true} {
				r, err := netbench.Run(netpath.Twin, netbench.TX, netbench.Params{
					NumNICs: 1, Measure: packets(quick), Batch: batch,
					Backend: name, PostedTX: posted,
				})
				if err != nil {
					return fmt.Errorf("txpath %s batch=%d posted=%v: %w", name, batch, posted, err)
				}
				results = append(results, r)
				if bench != nil {
					bench.AddBreakdown(r.BenchKey(), r.CyclesPerPacket, r.Breakdown)
				}
			}
		}
	}
	report.TXPathSweep(w, "TX-path sweep: posted scatter/gather descriptors vs staging-copy transmit", results)
	fmt.Fprintf(w, "copy mode stages every frame into the guest's shared transmit ring (a\n")
	fmt.Fprintf(w, "per-byte kernel copy) before the hypervisor driver picks it up; posted\n")
	fmt.Fprintf(w, "mode leaves the frame in guest memory and posts only its (addr,len)\n")
	fmt.Fprintf(w, "descriptor — snapshotted once, validated through the per-guest software\n")
	fmt.Fprintf(w, "TLB, the frames' pages pinned until TX completion (released on abort).\n")
	fmt.Fprintf(w, "Copy mode stays the default: batch=1 cycle identity and the recovery\n")
	fmt.Fprintf(w, "hot-path equality tests pin it unchanged.\n\n")
	return nil
}

// RecoveryGuestCounts is the guest-count sweep of the recovery experiment.
// It stops at 8: recovery cost is per-fault, not per-guest, so the 64/256
// rows of the multiguest sweep would re-measure the same abort at great
// expense — and keeping the sweep fixed keeps BENCH_recovery.json pinned.
func RecoveryGuestCounts(quick bool) []int {
	if quick {
		return []int{1, 2}
	}
	return []int{1, 2, 4, 8}
}

// RecoveryMeasurement is one row of the recovery experiment; see
// recovery.Measurement.
type RecoveryMeasurement = recovery.Measurement

// MeasureRecovery runs one recovery scenario: bring up a twin serving
// `guests` guests under a supervisor, measure the fault-free cycles/packet,
// inject one fault type, let the traffic trip it and recover transparently,
// then measure again. perGuest is the packets-per-guest of each traffic
// phase.
func MeasureRecovery(inj FaultInjector, guests, perGuest int) (*RecoveryMeasurement, error) {
	p, err := netpath.NewMulti(netpath.Twin, 1, guests, core.TwinConfig{Watchdog: 200_000})
	if err != nil {
		return nil, err
	}
	sup := recovery.New(p.M, p.T, recovery.Policy{})
	p.Recovery = sup
	d := p.M.Devs[0]
	d.NIC.OnTransmit = func([]byte) {}

	// One traffic phase on the path the injected fault sits on: transmit
	// for the wild write (it trips on the next xmit invocation), receive
	// for the RX-cleaner corruptions (they trip on the next interrupt).
	traffic := func(n int) (uint64, error) {
		var got map[mem.Owner]int
		var err error
		if inj.TriggerOnRx {
			got, err = p.ReceiveBurstMulti(0, cost.MTU, n)
		} else {
			got, err = p.SendBurstMulti(0, cost.MTU, n)
		}
		total := uint64(0)
		for _, c := range got {
			total += uint64(c)
		}
		return total, err
	}

	if _, err := traffic(perGuest); err != nil {
		return nil, fmt.Errorf("warmup: %w", err)
	}
	p.ResetMeasurement()
	moved, err := traffic(perGuest)
	if err != nil {
		return nil, fmt.Errorf("pre-fault: %w", err)
	}
	pre := float64(p.Meter().Total()) / float64(moved)

	// Inject, then keep the traffic flowing: the supervisor recovers the
	// twin in-line and the burst completes.
	if err := inj.Inject(p.M, p.T, d); err != nil {
		return nil, err
	}
	lost0, retried0 := p.LostRx, p.RetriedTx
	delivered, err := traffic(perGuest)
	if err != nil {
		return nil, fmt.Errorf("faulted burst did not resume: %w", err)
	}
	if sup.Recoveries() != 1 {
		return nil, fmt.Errorf("expected exactly one recovery, saw %d", sup.Recoveries())
	}

	p.ResetMeasurement()
	moved, err = traffic(perGuest)
	if err != nil {
		return nil, fmt.Errorf("post-fault: %w", err)
	}
	post := float64(p.Meter().Total()) / float64(moved)

	m := &recovery.Measurement{
		Fault:      inj.Name,
		Guests:     guests,
		MTTRCycles: sup.Events[0].MTTRCycles,
		LostRx:     p.LostRx - lost0,
		RetriedTx:  p.RetriedTx - retried0,
		Delivered:  delivered,
		PreCPP:     pre,
		PostCPP:    post,
	}
	// Fault attribution for the report: what actually faulted, rendered.
	for _, rec := range p.T.FaultLog() {
		m.FaultLog = append(m.FaultLog, rec.String())
	}
	return m, nil
}

// runRecoverySweep measures transparent driver recovery end to end: each
// §4.5 fault type is injected while 1/2/4/8 guests move traffic; the
// supervisor re-derives and restarts the instance in-line, and the table
// reports MTTR in cycles, the packets lost or re-staged, and the fault-free
// cycles/packet before vs after recovery.
func runRecoverySweep(w io.Writer, quick bool, bench *report.Bench) error {
	perGuest := 64
	if quick {
		perGuest = 32
	}
	var rows []*recovery.Measurement
	for _, inj := range recovery.Injectors() {
		for _, g := range RecoveryGuestCounts(quick) {
			row, err := MeasureRecovery(inj, g, perGuest)
			if err != nil {
				return fmt.Errorf("recovery %s guests=%d: %w", inj.Name, g, err)
			}
			rows = append(rows, row)
			if bench != nil {
				bench.Add(fmt.Sprintf("recovery/%s/guests=%d/pre", row.Fault, row.Guests), row.PreCPP)
				bench.Add(fmt.Sprintf("recovery/%s/guests=%d/post", row.Fault, row.Guests), row.PostCPP)
			}
		}
	}
	report.RecoverySweep(w, rows)
	fmt.Fprintf(w, "MTTR covers re-derivation, image layout and configuration replay\n")
	fmt.Fprintf(w, "(probe, open with IRQ re-registration and RX refill, ring re-attach).\n")
	fmt.Fprintf(w, "Transmit frames are never lost — staged frames the dead instance\n")
	fmt.Fprintf(w, "discarded are re-staged (retried-tx); receive frames the NIC had\n")
	fmt.Fprintf(w, "consumed die with the device reset (lost-rx, bounded by one burst).\n")
	fmt.Fprintf(w, "The fault-free hot path is byte-identical with the supervisor attached\n")
	fmt.Fprintf(w, "(netbench's TestRecoveryHotPathUnchanged pins exact cycle equality).\n\n")
	return nil
}

// SoakSteps is the scheduler-step count of the chaos-soak experiment.
func SoakSteps(quick bool) int {
	if quick {
		return 80
	}
	return 240
}

// runSoak runs the seeded chaos soak (internal/chaos) on every registered
// backend: mixed transmit/receive traffic across four guests (copy and
// posted receive paths alternating), hostile attacks from the
// attack-surface matrix, and containment faults with supervised recovery,
// with the exactly-once accounting and abort-hygiene invariants asserted
// at every step. The rendered ledgers balance exactly; the digest replays
// byte-identically from the seed.
func runSoak(w io.Writer, quick bool) error {
	var reports []*chaos.Report
	for _, backend := range drivermodel.Names() {
		rep, err := chaos.Run(chaos.Config{
			Seed:    0xC4A05,
			Backend: backend,
			Guests:  4,
			Steps:   SoakSteps(quick),
			Hostile: true,
			Faults:  true,
		})
		if err != nil {
			return fmt.Errorf("soak %s: %w", backend, err)
		}
		reports = append(reports, rep)
	}
	report.Soak(w, "Chaos soak: seeded hostile multi-guest run, exactly-once ledgers", reports)
	fmt.Fprintf(w, "every ledger row balances exactly: offeredTx == wireTx + lostTx and\n")
	fmt.Fprintf(w, "offeredRx == delivered + lostRx, per guest, with hostile descriptors,\n")
	fmt.Fprintf(w, "ring scribbles and injected driver faults running concurrently; every\n")
	fmt.Fprintf(w, "abort leaves zero pooled buffers outstanding and empty guest TLBs.\n\n")

	// The same soak with the weighted-fair scheduler and the inter-guest
	// switch engaged: weights change service order, never accounting, so
	// the identical invariants hold with 4:2:1 DRR shares and the
	// switch-mac-spoof surface live.
	var weighted []*chaos.Report
	for _, backend := range drivermodel.Names() {
		rep, err := chaos.Run(chaos.Config{
			Seed:    0xC4A05,
			Backend: backend,
			Guests:  4,
			Steps:   SoakSteps(quick),
			Hostile: true,
			Faults:  true,
			Weights: SchedWeights(),
			Switch:  true,
		})
		if err != nil {
			return fmt.Errorf("weighted soak %s: %w", backend, err)
		}
		weighted = append(weighted, rep)
	}
	report.Soak(w, "Chaos soak under DRR weights 4:2:1 + inter-guest switch", weighted)
	fmt.Fprintf(w, "the same invariants hold with weighted-fair service and the L2 switch\n")
	fmt.Fprintf(w, "engaged: scheduling weights reorder service, they never change whether\n")
	fmt.Fprintf(w, "a frame is accounted, and spoofed source MACs die at the port binding.\n\n")
	return nil
}

func runFig9(w io.Writer, quick bool) error {
	prm := webbench.Params{}
	if quick {
		prm.Measure = 96
		prm.Step = 2000
	}
	curves, err := webbench.RunAll(prm)
	if err != nil {
		return err
	}
	report.WebCurves(w, curves, paperFig9)
	return nil
}

func runTable1(w io.Writer, quick bool) error {
	t, err := trace.Run(packets(quick) / 2)
	if err != nil {
		return err
	}
	report.Table1(w, t)
	return nil
}

func runEffort(w io.Writer, _ bool) error {
	_, tw, err := core.NewTwinMachine(1, 1, core.TwinConfig{})
	if err != nil {
		return err
	}
	kv := map[string]string{
		"hypervisor support routines": fmt.Sprintf("%d (paper: 10)", len(core.DefaultHvSupport())),
		"hypervisor support code":     fmt.Sprintf("%d lines of commented Go (paper: 851 lines of C)", core.HvSupportLines()),
		"driver instructions":         fmt.Sprintf("%d -> %d after rewriting (x%.2f)", tw.RewriteStats.InputInsts, tw.RewriteStats.OutputInsts, float64(tw.RewriteStats.OutputInsts)/float64(tw.RewriteStats.InputInsts)),
		"memory-referencing fraction": fmt.Sprintf("%.1f%% of driver instructions (paper: ~25%%)", 100*tw.RewriteStats.MemRefFraction()),
		"rewrite detail":              tw.RewriteStats.String(),
		"kernel support symbol table": fmt.Sprintf("%d routines reused via dom0 (the engineering the upcalls avoid)", len(tw.M.K.SymbolNames())),
	}
	report.KeyValue(w, "Section 6.5: engineering effort", kv)
	return nil
}

// Experiments lists every reproducible table/figure, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1: fast-path support routines", runTable1},
		{"fig5", "Figure 5: transmit throughput (netperf, 5 NICs)", func(w io.Writer, q bool) error {
			return runThroughput(w, netbench.TX, "Figure 5: transmit performance (netperf)", paperFig5, q)
		}},
		{"fig6", "Figure 6: receive throughput (netperf, 5 NICs)", func(w io.Writer, q bool) error {
			return runThroughput(w, netbench.RX, "Figure 6: receive performance (netperf)", paperFig6, q)
		}},
		{"fig7", "Figure 7: transmit cycles/packet breakdown", func(w io.Writer, q bool) error {
			return runBreakdown(w, netbench.TX, "Figure 7: CPU cycles per packet, transmit", paperFig7, q)
		}},
		{"fig8", "Figure 8: receive cycles/packet breakdown", func(w io.Writer, q bool) error {
			return runBreakdown(w, netbench.RX, "Figure 8: CPU cycles per packet, receive", paperFig8, q)
		}},
		{"fig9", "Figure 9: web server workload", runFig9},
		{"fig10", "Figure 10: cost of upcalls", runFig10},
		{"batch", "Batch sweep: batched hypercall I/O (beyond the paper)", func(w io.Writer, q bool) error {
			return runBatchSweep(w, q, nil)
		}},
		{"multiguest", "Multi-guest sweep: per-guest rings + round-robin service (beyond the paper)", func(w io.Writer, q bool) error {
			return runMultiGuestSweep(w, q, nil)
		}},
		{"recovery", "Recovery sweep: transparent driver restart, MTTR + loss (beyond the paper)", func(w io.Writer, q bool) error {
			return runRecoverySweep(w, q, nil)
		}},
		{"backends", "Backend sweep: every NIC driver model through the same pipeline (beyond the paper)", func(w io.Writer, q bool) error {
			return runBackendSweep(w, q, nil)
		}},
		{"rxpath", "RX-path sweep: posted guest buffers vs copy-mode delivery (beyond the paper)", func(w io.Writer, q bool) error {
			return runRXPathSweep(w, q, nil)
		}},
		{"txpath", "TX-path sweep: posted scatter/gather descriptors vs staging-copy transmit (beyond the paper)", func(w io.Writer, q bool) error {
			return runTXPathSweep(w, q, nil)
		}},
		{"mq", "Multi-queue sweep: parallel per-queue service loops + RSS steering (beyond the paper)", func(w io.Writer, q bool) error {
			return runMQSweep(w, q, nil)
		}},
		{"sched", "Scheduler sweep: weighted-fair DRR shares + inter-guest switch (beyond the paper)", func(w io.Writer, q bool) error {
			return runSchedSweep(w, q, nil)
		}},
		{"soak", "Chaos soak: seeded hostile multi-guest run + attack matrix (beyond the paper)", runSoak},
		{"effort", "Section 6.5: engineering effort", runEffort},
	}
}

// BenchAreas lists the sweep experiments that emit a machine-readable
// BENCH_<area>.json measurement set alongside their tables.
func BenchAreas() []string {
	return []string{"batch", "multiguest", "recovery", "backends", "rxpath", "txpath", "mq", "sched"}
}

// CollectBench runs one bench-emitting sweep and returns its measurement
// set; the human-readable tables go to w (io.Discard when only the
// numbers matter, as in the bench gate).
func CollectBench(w io.Writer, area string, quick bool) (*report.Bench, error) {
	b := report.NewBench(area, quick)
	var err error
	switch area {
	case "batch":
		err = runBatchSweep(w, quick, b)
	case "multiguest":
		err = runMultiGuestSweep(w, quick, b)
	case "recovery":
		err = runRecoverySweep(w, quick, b)
	case "backends":
		err = runBackendSweep(w, quick, b)
	case "rxpath":
		err = runRXPathSweep(w, quick, b)
	case "txpath":
		err = runTXPathSweep(w, quick, b)
	case "mq":
		err = runMQSweep(w, quick, b)
	case "sched":
		err = runSchedSweep(w, quick, b)
	default:
		return nil, fmt.Errorf("no bench emission for experiment %q (have %v)", area, BenchAreas())
	}
	if err != nil {
		return nil, err
	}
	return b, nil
}

// RunExperimentBench runs experiments like RunExperiment and additionally
// writes BENCH_<area>.json into dir for every bench-emitting sweep the id
// covers.
func RunExperimentBench(w io.Writer, id string, quick bool, dir string) error {
	isBench := map[string]bool{}
	for _, a := range BenchAreas() {
		isBench[a] = true
	}
	runOne := func(e Experiment) error {
		if !isBench[e.ID] {
			return e.Run(w, quick)
		}
		b, err := CollectBench(w, e.ID, quick)
		if err != nil {
			return err
		}
		return b.WriteFile(dir)
	}
	if id == "all" {
		for _, e := range Experiments() {
			if err := runOne(e); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		return nil
	}
	for _, e := range Experiments() {
		if e.ID == id {
			return runOne(e)
		}
	}
	return RunExperiment(w, id, quick) // fall through for the unknown-id error
}

// RunExperiment runs one experiment by ID ("all" runs everything).
func RunExperiment(w io.Writer, id string, quick bool) error {
	if id == "all" {
		for _, e := range Experiments() {
			if err := e.Run(w, quick); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		return nil
	}
	for _, e := range Experiments() {
		if e.ID == id {
			return e.Run(w, quick)
		}
	}
	ids := make([]string, 0)
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return fmt.Errorf("unknown experiment %q (have %v and \"all\")", id, ids)
}
