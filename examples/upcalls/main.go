// upcalls: the cost-of-upcalls sweep of §6.4 — Figure 10 live. Fast-path
// support routines are converted back to upcalls one at a time; each
// upcall costs two synchronous domain switches per driver invocation and
// throughput collapses accordingly.
//
//	go run ./examples/upcalls
package main

import (
	"log"
	"os"

	"twindrivers"
)

func main() {
	if err := twindrivers.RunExperiment(os.Stdout, "fig10", true); err != nil {
		log.Fatal(err)
	}
}
