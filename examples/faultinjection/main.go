// faultinjection: the safety story of §4.5. Three buggy "drivers" are
// derived and run in the hypervisor:
//
//  1. a wild heap write aimed at hypervisor memory — SVM aborts it on the
//     first access (§4.1);
//  2. an infinite loop — the VINO-style watchdog budget cuts it off
//     (§4.5.2);
//  3. a corrupted function pointer — the indirect-call translation plus
//     the function-entry check catch it (§5.1.2).
//
// After each abort, dom0 and its VM driver instance keep working: the
// hypervisor tears down only the derived instance. Finally, a DMA attack
// is shown blocked by the optional IOMMU (§4.5).
//
//	go run ./examples/faultinjection
package main

import (
	"fmt"
	"log"

	"twindrivers"
	"twindrivers/internal/kernel"
	"twindrivers/internal/mem"
	"twindrivers/internal/nic"
)

type machine = twindrivers.Machine
type nicdev = twindrivers.NICDev
type twin = twindrivers.Twin

func scenario(name string, corrupt func(m *machine, d *nicdev) error,
	trigger func(tw *twin, m *machine, d *nicdev) error) {
	m, tw, err := twindrivers.NewTwinMachine(1, 1, twindrivers.TwinConfig{Watchdog: 200_000})
	if err != nil {
		log.Fatal(err)
	}
	d := m.Devs[0]
	d.NIC.OnTransmit = func([]byte) {}
	m.HV.Switch(m.DomU)

	// A clean packet first: the derived driver works.
	frame := twindrivers.EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.NIC.MAC, 0x0800, make([]byte, 256))
	if err := tw.GuestTransmit(d, frame); err != nil {
		log.Fatalf("%s: clean transmit failed: %v", name, err)
	}

	// Inject the bug into the shared driver state.
	if err := corrupt(m, d); err != nil {
		log.Fatal(err)
	}

	// The next invocation faults; the hypervisor contains it.
	if trigger == nil {
		trigger = func(tw *twin, m *machine, d *nicdev) error {
			return tw.GuestTransmit(d, frame)
		}
	}
	err = trigger(tw, m, d)
	fmt.Printf("%-28s -> %v\n", name, err)
	fmt.Printf("%-28s    driver dead=%v, fault log: %v\n", "", tw.Dead, tw.FaultLog)

	// dom0 survives: the VM instance still answers management calls.
	if _, err := m.CallDriver("e1000_get_stats", d.Netdev); err != nil {
		log.Fatalf("%s: dom0 VM instance damaged: %v", name, err)
	}
	fmt.Printf("%-28s    dom0 VM instance still alive (get_stats OK)\n\n", "")
}

func main() {
	scenario("wild write to hypervisor", func(m *machine, d *nicdev) error {
		// Point netdev->priv at hypervisor memory: the driver's next
		// dereference goes through SVM and is denied.
		return m.Dom0.AS.Store(d.Netdev+kernel.NdPriv, 4, 0xF1000040)
	}, nil)

	scenario("runaway recursion (contained)", func(m *machine, d *nicdev) error {
		// Point the RX cleaner function pointer back at the interrupt
		// handler: intr -> clean_rx(=intr) -> ... The indirect-call
		// translation happily follows it (it IS a valid driver entry);
		// the watchdog instruction budget or the stack guard cuts the
		// runaway off.
		priv, _ := m.Dom0.AS.Load(d.Netdev+kernel.NdPriv, 4)
		intr, _ := m.VMImage.FuncEntry("e1000_intr")
		return m.Dom0.AS.Store(priv+52, 4, intr) // AD_CLEAN_RX
	}, func(tw *twin, m *machine, d *nicdev) error {
		rx := twindrivers.EthernetFrame(d.NIC.MAC, [6]byte{9, 9, 9, 9, 9, 9}, 0x0800, make([]byte, 128))
		if !d.NIC.Inject(rx) {
			return fmt.Errorf("inject failed")
		}
		return tw.HandleIRQ(d)
	})

	scenario("corrupt function pointer", func(m *machine, d *nicdev) error {
		// adapter->clean_rx is driver data; a buggy driver scribbles a
		// bogus value over it. The rewritten indirect call range-checks
		// the target and the CPU's function-entry validation faults.
		priv, _ := m.Dom0.AS.Load(d.Netdev+kernel.NdPriv, 4)
		return m.Dom0.AS.Store(priv+52, 4, 0x1234) // AD_CLEAN_RX
	}, func(tw *twin, m *machine, d *nicdev) error {
		rx := twindrivers.EthernetFrame(d.NIC.MAC, [6]byte{9, 9, 9, 9, 9, 9}, 0x0800, make([]byte, 128))
		if !d.NIC.Inject(rx) {
			return fmt.Errorf("inject failed")
		}
		return tw.HandleIRQ(d)
	})

	// DMA attack vs IOMMU: a malicious descriptor aims DMA at hypervisor
	// frames. Without an IOMMU this is the residual hole the paper
	// acknowledges; with one, the transfer is blocked.
	m, tw, err := twindrivers.NewTwinMachine(1, 1, twindrivers.TwinConfig{})
	if err != nil {
		log.Fatal(err)
	}
	d := m.Devs[0]
	d.NIC.IOMMU = &nic.IOMMU{Allowed: map[mem.Owner]bool{mem.OwnerDom0: true, 1: true}}
	d.NIC.OnTransmit = func([]byte) {}
	m.HV.Switch(m.DomU)
	frame := twindrivers.EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.NIC.MAC, 0x0800, make([]byte, 256))
	if err := tw.GuestTransmit(d, frame); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s -> legitimate DMA passes the IOMMU\n", "IOMMU enabled")
	// Forge a TX descriptor pointing at a hypervisor-owned frame.
	hvFrame := m.HV.Phys.AllocFrame(mem.OwnerHypervisor)
	priv, _ := m.Dom0.AS.Load(d.Netdev+kernel.NdPriv, 4)
	txd, _ := m.Dom0.AS.Load(priv+8, 4)   // AD_TXD
	tail, _ := m.Dom0.AS.Load(priv+20, 4) // AD_TX_TAIL
	desc := txd + tail*16
	m.Dom0.AS.Store(desc, 4, hvFrame*mem.PageSize) // buffer addr = hypervisor frame
	m.Dom0.AS.Store(desc+8, 2, 64)                 // length
	m.Dom0.AS.Store(desc+11, 1, 0x09)              // EOP|RS
	regs, _ := m.Dom0.AS.Load(d.Netdev+kernel.NdBase, 4)
	m.Dom0.AS.Store(regs+nic.RegTDT, 4, (tail+1)%256) // ring the doorbell
	if d.NIC.IOMMU.Violations == 0 {
		log.Fatal("IOMMU did not catch the DMA attack")
	}
	fmt.Printf("%-28s -> DMA attack blocked: %s\n", "", d.NIC.DMAViolation)
}
