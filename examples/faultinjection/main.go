// faultinjection: the safety story of §4.5 — and what comes after it.
// Three buggy "drivers" are derived and run in the hypervisor:
//
//  1. a wild heap write aimed at hypervisor memory — SVM aborts it on the
//     first access (§4.1);
//  2. a runaway loop — the VINO-style watchdog budget cuts it off
//     (§4.5.2);
//  3. a corrupted function pointer — the indirect-call translation plus
//     the function-entry check catch it (§5.1.2).
//
// After each abort, dom0 and its VM driver instance keep working: the
// hypervisor tears down only the derived instance. The paper stops there —
// the instance stays dead. Here a recovery supervisor then re-derives a
// fresh instance, replays the recorded configuration (probe, open with its
// IRQ registration, guest routes, rings) and traffic resumes: the fault
// was transient, with MTTR measured in simulated cycles.
//
// A flapping driver is not retried forever: K faults inside a cycle
// window trip the escalation policy and the twin stays dead (the paper's
// original containment behaviour). Finally, a DMA attack is shown blocked
// by the optional IOMMU (§4.5).
//
//	go run ./examples/faultinjection
package main

import (
	"fmt"
	"log"

	"twindrivers"
	"twindrivers/internal/kernel"
	"twindrivers/internal/mem"
	"twindrivers/internal/nic"
)

type machine = twindrivers.Machine
type nicdev = twindrivers.NICDev
type twin = twindrivers.Twin

// trigger drives the injected fault: a transmit for TX-path bugs, an
// injected frame plus interrupt for RX-path bugs.
func trigger(tw *twin, m *machine, d *nicdev, onRx bool) error {
	if onRx {
		rx := twindrivers.EthernetFrame(d.NIC.MAC, [6]byte{9, 9, 9, 9, 9, 9}, 0x0800, make([]byte, 128))
		if !d.NIC.Inject(rx) {
			return fmt.Errorf("inject failed")
		}
		return tw.HandleIRQ(d)
	}
	frame := twindrivers.EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.NIC.MAC, 0x0800, make([]byte, 256))
	return tw.GuestTransmit(d, frame)
}

func scenario(inj twindrivers.FaultInjector) {
	m, tw, err := twindrivers.NewTwinMachine(1, 1, twindrivers.TwinConfig{Watchdog: 200_000})
	if err != nil {
		log.Fatal(err)
	}
	d := m.Devs[0]
	d.NIC.OnTransmit = func([]byte) {}
	sup := twindrivers.NewRecoverySupervisor(m, tw, twindrivers.RecoveryPolicy{})
	m.HV.Switch(m.DomU)

	// A clean packet first: the derived driver works.
	frame := twindrivers.EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.NIC.MAC, 0x0800, make([]byte, 256))
	if err := tw.GuestTransmit(d, frame); err != nil {
		log.Fatalf("%s: clean transmit failed: %v", inj.Name, err)
	}

	// Inject the bug into the shared driver state; the next invocation
	// faults and the hypervisor contains it.
	if err := inj.Inject(m, tw, d); err != nil {
		log.Fatal(err)
	}
	err = trigger(tw, m, d, inj.TriggerOnRx)
	fmt.Printf("%-28s -> %v\n", inj.Name, err)
	rec := tw.FaultLog()[len(tw.FaultLog())-1]
	fmt.Printf("%-28s    dead=%v, fault: entry=%s kind=%v\n", "", tw.Dead, rec.Entry, rec.Kind)

	// dom0 survives: the VM instance still answers management calls.
	if _, err := m.CallDriver("e1000_get_stats", d.Netdev); err != nil {
		log.Fatalf("%s: dom0 VM instance damaged: %v", inj.Name, err)
	}
	fmt.Printf("%-28s    dom0 VM instance still alive (get_stats OK)\n", "")

	// Beyond containment: re-derive, restart, replay — traffic resumes.
	ev, err := sup.Recover()
	if err != nil {
		log.Fatalf("%s: recovery failed: %v", inj.Name, err)
	}
	if err := tw.GuestTransmit(d, frame); err != nil {
		log.Fatalf("%s: transmit after recovery: %v", inj.Name, err)
	}
	fmt.Printf("%-28s    recovered in %d cycles (staged-tx dropped %d, rx dropped %d); traffic resumed\n\n",
		"", ev.MTTRCycles, ev.StagedTxDiscarded, ev.RxPendingDropped)
}

// escalation shows the give-up policy: a deterministically broken driver
// that faults right back is abandoned after K faults in the window.
func escalation() {
	m, tw, err := twindrivers.NewTwinMachine(1, 1, twindrivers.TwinConfig{Watchdog: 200_000})
	if err != nil {
		log.Fatal(err)
	}
	d := m.Devs[0]
	d.NIC.OnTransmit = func([]byte) {}
	sup := twindrivers.NewRecoverySupervisor(m, tw, twindrivers.RecoveryPolicy{MaxFaults: 3})
	m.HV.Switch(m.DomU)
	inj := twindrivers.FaultInjectors()[0] // wild write, re-injected each time

	for i := 1; ; i++ {
		if err := inj.Inject(m, tw, d); err != nil {
			log.Fatal(err)
		}
		_ = trigger(tw, m, d, inj.TriggerOnRx)
		if _, err := sup.Recover(); err != nil {
			fmt.Printf("%-28s -> fault %d: %v\n", "flapping driver", i, err)
			break
		}
		fmt.Printf("%-28s -> fault %d recovered (attempt %d)\n", "flapping driver", i, sup.Recoveries())
	}
	fmt.Printf("%-28s    twin stays dead: %d lifetime faults, %d recoveries\n\n",
		"", tw.Faults, sup.Recoveries())
}

func main() {
	for _, inj := range twindrivers.FaultInjectors() {
		scenario(inj)
	}
	escalation()

	// DMA attack vs IOMMU: a malicious descriptor aims DMA at hypervisor
	// frames. Without an IOMMU this is the residual hole the paper
	// acknowledges; with one, the transfer is blocked.
	m, tw, err := twindrivers.NewTwinMachine(1, 1, twindrivers.TwinConfig{})
	if err != nil {
		log.Fatal(err)
	}
	d := m.Devs[0]
	d.NIC.IOMMU = &nic.IOMMU{Allowed: map[mem.Owner]bool{mem.OwnerDom0: true, 1: true}}
	d.NIC.OnTransmit = func([]byte) {}
	m.HV.Switch(m.DomU)
	frame := twindrivers.EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.NIC.MAC, 0x0800, make([]byte, 256))
	if err := tw.GuestTransmit(d, frame); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s -> legitimate DMA passes the IOMMU\n", "IOMMU enabled")
	// Forge a TX descriptor pointing at a hypervisor-owned frame.
	hvFrame := m.HV.Phys.AllocFrame(mem.OwnerHypervisor)
	priv, _ := m.Dom0.AS.Load(d.Netdev+kernel.NdPriv, 4)
	txd, _ := m.Dom0.AS.Load(priv+8, 4)   // AD_TXD
	tail, _ := m.Dom0.AS.Load(priv+20, 4) // AD_TX_TAIL
	desc := txd + tail*16
	m.Dom0.AS.Store(desc, 4, hvFrame*mem.PageSize) // buffer addr = hypervisor frame
	m.Dom0.AS.Store(desc+8, 2, 64)                 // length
	m.Dom0.AS.Store(desc+11, 1, 0x09)              // EOP|RS
	regs, _ := m.Dom0.AS.Load(d.Netdev+kernel.NdBase, 4)
	m.Dom0.AS.Store(regs+nic.RegTDT, 4, (tail+1)%256) // ring the doorbell
	if d.NIC.IOMMU.Violations == 0 {
		log.Fatal("IOMMU did not catch the DMA attack")
	}
	fmt.Printf("%-28s -> DMA attack blocked: %s\n", "", d.NIC.DMAViolation)
}
