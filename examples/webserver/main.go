// webserver: the knot/httperf/SPECweb99 workload of §6.3 — Figure 9 live,
// with the ASCII rendition of the throughput-vs-request-rate curves.
//
//	go run ./examples/webserver
package main

import (
	"log"
	"os"

	"twindrivers"
)

func main() {
	if err := twindrivers.RunExperiment(os.Stdout, "fig9", true); err != nil {
		log.Fatal(err)
	}
}
