// Backends: the driver-generic claim, live. The same derivation pipeline
// twins two entirely different NIC drivers — the e1000 (descriptor rings,
// zero-copy frag chaining) and the rtl8139 (a single receive byte ring and
// four copy-through transmit slots) — and the same guest traffic moves
// through both, with per-backend cycle costs side by side.
//
//	go run ./examples/backends
package main

import (
	"bytes"
	"fmt"
	"log"

	"twindrivers"
)

func main() {
	fmt.Printf("registered backends: %v\n\n", twindrivers.Backends())

	payload := []byte("same packet, different silicon")
	for _, backend := range twindrivers.Backends() {
		m, tw, err := twindrivers.NewTwinMachineBackend(1, 1, backend, twindrivers.TwinConfig{})
		if err != nil {
			log.Fatalf("%s: %v", backend, err)
		}
		d := m.Devs[0]

		var wire [][]byte
		d.Dev.SetOnTransmit(func(pkt []byte) { wire = append(wire, append([]byte(nil), pkt...)) })

		// Guest transmit: a hypercall straight into whichever derived
		// driver this backend carries.
		m.HV.Switch(m.DomU)
		txf := twindrivers.EthernetFrame([6]byte{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}, d.Dev.HWAddr(), 0x0800, payload)
		m.HV.Meter.Reset()
		if err := tw.GuestTransmit(d, txf); err != nil {
			log.Fatalf("%s: transmit: %v", backend, err)
		}
		txCycles := m.HV.Meter.Total()

		// Receive: the interrupt runs the derived driver in guest context.
		rxf := twindrivers.EthernetFrame(d.Dev.HWAddr(), [6]byte{1, 2, 3, 4, 5, 6}, 0x0800, payload)
		m.HV.Meter.Reset()
		if !d.Dev.Inject(rxf) {
			log.Fatalf("%s: no RX buffer space", backend)
		}
		if err := tw.HandleIRQ(d); err != nil {
			log.Fatalf("%s: irq: %v", backend, err)
		}
		pkts, err := tw.DeliverPending(m.DomU)
		if err != nil {
			log.Fatalf("%s: deliver: %v", backend, err)
		}
		rxCycles := m.HV.Meter.Total()

		if len(wire) != 1 || !bytes.Equal(wire[0], txf) {
			log.Fatalf("%s: wire mismatch", backend)
		}
		if len(pkts) != 1 || !bytes.Equal(pkts[0], rxf) {
			log.Fatalf("%s: delivery mismatch", backend)
		}
		fmt.Printf("%-8s  rewrite: %4d -> %4d insts   tx: %6d cyc   rx: %6d cyc   upcalls: %d\n",
			backend, tw.RewriteStats.InputInsts, tw.RewriteStats.OutputInsts,
			txCycles, rxCycles, tw.UpcallsPerformed())
	}

	fmt.Println("\nboth backends moved identical bytes through the same pipeline;")
	fmt.Println("run `go run ./cmd/twinbench -experiment backends` for the full sweep")
	fmt.Println("and `go test ./internal/conformance/` for the equivalence proof.")
}
