// Quickstart: derive a hypervisor driver from the guest driver, bring up a
// twinned machine, and push one packet each way.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"twindrivers"
)

func main() {
	// 1. The rewriter alone: guest assembly in, derived assembly out.
	_, stats, err := twindrivers.Rewrite(twindrivers.DriverSource, twindrivers.RewriteOptions{
		RejectPrivileged: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rewriter:", stats)

	// 2. A full twinned machine: the VM instance initialises the NIC in
	// dom0; the derived instance handles the fast path in the hypervisor.
	m, tw, err := twindrivers.NewTwinMachine(1, 1, twindrivers.TwinConfig{})
	if err != nil {
		log.Fatal(err)
	}
	d := m.Devs[0]

	var wire [][]byte
	d.NIC.OnTransmit = func(pkt []byte) { wire = append(wire, append([]byte(nil), pkt...)) }

	// Transmit from the guest: a hypercall straight into the hypervisor
	// driver — no domain switch.
	m.HV.Switch(m.DomU)
	before := m.HV.Switches
	frame := twindrivers.EthernetFrame(
		[6]byte{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}, d.NIC.MAC, 0x0800,
		[]byte("hello from the guest, via the hypervisor driver"))
	if err := tw.GuestTransmit(d, frame); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transmit: %d packet(s) on the wire, %d bytes, %d domain switches\n",
		len(wire), len(wire[0]), m.HV.Switches-before)

	// Receive: the NIC interrupt runs the derived driver directly in
	// guest context; the hypervisor copies the packet up.
	rx := twindrivers.EthernetFrame(d.NIC.MAC, [6]byte{1, 2, 3, 4, 5, 6}, 0x0800,
		[]byte("hello to the guest"))
	if !d.NIC.Inject(rx) {
		log.Fatal("no RX descriptors")
	}
	if err := tw.HandleIRQ(d); err != nil {
		log.Fatal(err)
	}
	pkts, err := tw.DeliverPending(m.DomU)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("receive: %d packet(s) delivered to the guest, %d bytes\n", len(pkts), len(pkts[0]))
	fmt.Printf("upcalls: %d (all ten fast-path routines are implemented in the hypervisor)\n",
		tw.UpcallsPerformed())
	fmt.Printf("cycles so far: %s\n", m.CPU.Meter)
}
