// netperf: the streaming microbenchmark of §6.2 across all four system
// configurations — Figures 5 through 8 live.
//
//	go run ./examples/netperf [-quick]
package main

import (
	"flag"
	"log"
	"os"

	"twindrivers"
)

func main() {
	quick := flag.Bool("quick", true, "fewer packets per measurement")
	flag.Parse()
	for _, id := range []string{"fig5", "fig6", "fig7", "fig8"} {
		if err := twindrivers.RunExperiment(os.Stdout, id, *quick); err != nil {
			log.Fatal(err)
		}
	}
}
