// Multiguest: several guest domains share one NIC through the derived
// hypervisor driver. Each guest owns a transmit descriptor ring; guests
// stage frames independently and a single ServiceRings boundary crossing
// drains every ring round-robin. Receive demultiplexes on the destination
// MAC and coalesces to one notification per guest per batch window.
//
//	go run ./examples/multiguest
package main

import (
	"fmt"
	"log"

	"twindrivers"
)

const guests = 4

func main() {
	m, tw, err := twindrivers.NewTwinMachine(1, guests, twindrivers.TwinConfig{})
	if err != nil {
		log.Fatal(err)
	}
	d := m.Devs[0]
	var wire [][]byte
	d.NIC.OnTransmit = func(pkt []byte) { wire = append(wire, append([]byte(nil), pkt...)) }

	// Each guest registers a station MAC for receive demultiplexing.
	macs := make([][6]byte, guests)
	for g, dom := range m.Guests {
		macs[g] = [6]byte{0x02, 0x54, 0x57, 0x49, 0x4E, byte(g)}
		tw.RegisterGuestMAC(macs[g], dom.ID)
	}

	// Transmit fan-in: every guest stages a burst in its own ring from its
	// own context, then one hypercall drains all four rings round-robin.
	for g, dom := range m.Guests {
		m.HV.Switch(dom)
		frames := make([][]byte, 3)
		for i := range frames {
			frames[i] = twindrivers.EthernetFrame(
				[6]byte{0xaa, 0xbb, 0xcc, 0xdd, 0xee, byte(i)}, macs[g], 0x0800,
				[]byte(fmt.Sprintf("guest %d frame %d", g, i)))
		}
		if _, err := tw.StageTransmitBatch(dom, frames); err != nil {
			log.Fatal(err)
		}
	}
	hc := m.HV.Hypercalls
	sent, err := tw.ServiceRings(d, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transmit: %d packets on the wire from %d guests, %d hypercall(s)\n",
		len(wire), len(sent), m.HV.Hypercalls-hc)
	for _, dom := range m.Guests {
		fmt.Printf("  %-6s sent %d\n", dom.Name, sent[dom.ID])
	}

	// Receive fan-out: one interrupt drains the NIC for everybody; each
	// guest's packets queue by destination MAC and deliver under one
	// notification per guest.
	for g := range m.Guests {
		for i := 0; i < 2; i++ {
			rx := twindrivers.EthernetFrame(macs[g], [6]byte{1, 2, 3, 4, 5, byte(i)}, 0x0800,
				[]byte(fmt.Sprintf("to guest %d pkt %d", g, i)))
			if !d.NIC.Inject(rx) {
				log.Fatal("no RX descriptors")
			}
		}
	}
	if err := tw.HandleIRQ(d); err != nil {
		log.Fatal(err)
	}
	ev := m.HV.Events
	tw.Coalescer.Begin()
	for _, dom := range m.Guests {
		pkts, err := tw.DeliverPendingBatch(dom, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("receive: %-6s got %d packet(s), e.g. %q\n",
			dom.Name, len(pkts), pkts[0][14:])
	}
	tw.Coalescer.End()
	fmt.Printf("notifications: %d (one per guest for the whole window)\n", m.HV.Events-ev)
	fmt.Printf("cycles so far: %s\n", m.CPU.Meter)
}
