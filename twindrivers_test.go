package twindrivers_test

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"twindrivers"
)

func TestRewriteFacade(t *testing.T) {
	out, stats, err := twindrivers.Rewrite(twindrivers.DriverSource, twindrivers.RewriteOptions{
		RejectPrivileged: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MemRewritten == 0 {
		t.Error("no memory rewriting happened")
	}
	if !strings.Contains(out, "__twin_stlb") {
		t.Error("output lacks stlb references")
	}
	// A second pass over the output still assembles (sanity of Print).
	if _, _, err := twindrivers.Rewrite(out, twindrivers.RewriteOptions{}); err != nil {
		t.Fatalf("re-rewrite: %v", err)
	}
}

func TestPublicMachineRoundTrip(t *testing.T) {
	m, tw, err := twindrivers.NewTwinMachine(1, 1, twindrivers.TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	var wire [][]byte
	d.NIC.OnTransmit = func(p []byte) { wire = append(wire, append([]byte(nil), p...)) }
	m.HV.Switch(m.DomU)
	frame := twindrivers.EthernetFrame([6]byte{1, 2, 3, 4, 5, 6}, d.NIC.MAC, 0x0800, []byte("public api"))
	if err := tw.GuestTransmit(d, frame); err != nil {
		t.Fatal(err)
	}
	if len(wire) != 1 || !bytes.Equal(wire[0], frame) {
		t.Error("frame corrupted")
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := twindrivers.Experiments()
	want := map[string]bool{"table1": true, "fig5": true, "fig6": true, "fig7": true,
		"fig8": true, "fig9": true, "fig10": true, "batch": true, "multiguest": true,
		"effort": true}
	for _, e := range exps {
		delete(want, e.ID)
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if len(want) != 0 {
		t.Errorf("missing experiments: %v", want)
	}
	if err := twindrivers.RunExperiment(io.Discard, "nonsense", true); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunExperimentEffort(t *testing.T) {
	var b strings.Builder
	if err := twindrivers.RunExperiment(&b, "effort", true); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"engineering effort", "851", "hypervisor support routines"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestDefaultHvSupportIsTableOne(t *testing.T) {
	s := twindrivers.DefaultHvSupport()
	if len(s) != 10 {
		t.Errorf("support set = %d routines, paper: 10", len(s))
	}
}

func TestFig10RemovalOrder(t *testing.T) {
	order := twindrivers.Fig10RemovalOrder()
	ten := map[string]bool{}
	for _, n := range twindrivers.DefaultHvSupport() {
		ten[n] = true
	}
	seen := map[string]bool{}
	for _, n := range order {
		if !ten[n] {
			t.Errorf("removal order contains %q, not in Table 1", n)
		}
		if n == "netif_rx" {
			t.Error("netif_rx must stay implemented (the paper's final bar)")
		}
		if seen[n] {
			t.Errorf("duplicate %q", n)
		}
		seen[n] = true
	}
	if len(order) != 9 {
		t.Errorf("removal order has %d entries, want 9 (all but netif_rx)", len(order))
	}
}

func TestDriverSourceExported(t *testing.T) {
	if len(twindrivers.DriverSource) < 10_000 {
		t.Error("driver source suspiciously small")
	}
	if !strings.Contains(twindrivers.DriverSource, "e1000_xmit_frame") {
		t.Error("driver source missing transmit entry")
	}
}
