// Package isa defines the instruction set of the simulated 32-bit machine.
//
// The ISA is deliberately x86-flavoured: eight general-purpose registers
// (with the conventional x86 roles for ESP/EBP/ESI/EDI/ECX), AT&T operand
// order, base+index*scale+displacement addressing, condition flags, string
// instructions with REP prefixes, and indirect calls. TwinDrivers' binary
// rewriting confronts exactly the problems this shape creates — effective
// address computation, scratch register pressure, page-straddling string
// operands, and function-pointer translation — so the simulated ISA keeps
// all of them.
//
// Instructions are represented structurally (no byte encoding); the loader
// assigns every instruction a fixed-size slot in the address space so that
// code addresses, return addresses and function pointers remain meaningful
// 32-bit values.
package isa

import (
	"fmt"
	"strings"
)

// Reg names a general-purpose register. The numbering follows x86 so that
// calling conventions and string-instruction register roles read naturally.
type Reg uint8

// General purpose registers.
const (
	EAX Reg = iota
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI
	NumRegs // number of general-purpose registers

	// RegNone marks an absent base or index register in a memory operand.
	RegNone Reg = 0xFF
)

var regNames = [NumRegs]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}

// String returns the AT&T spelling of the register, without the % sigil.
func (r Reg) String() string {
	if r < NumRegs {
		return regNames[r]
	}
	if r == RegNone {
		return "<none>"
	}
	return fmt.Sprintf("reg(%d)", uint8(r))
}

// RegByName resolves an AT&T register name (without the % sigil) to a Reg.
func RegByName(name string) (Reg, bool) {
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	return RegNone, false
}

// Op identifies an operation.
type Op uint8

// Operations. Grouped by behaviour; the groups matter to the rewriter
// (memory-referencing data ops are rewritten, string ops get chunk loops,
// indirect calls get code-address translation, privileged ops are rejected).
const (
	INVALID Op = iota

	// Data movement.
	MOV   // mov src, dst
	MOVZX // movz{b,w}l src, dst : zero-extending load/move
	MOVSX // movs{b,w}l src, dst : sign-extending load/move
	LEA   // lea mem, reg : effective address
	PUSH  // push src
	POP   // pop dst
	XCHG  // xchg src, dst

	// Arithmetic / logic. Binary ops follow AT&T "op src, dst" with
	// dst = dst OP src, setting flags.
	ADD
	SUB
	ADC // add with carry
	SBB // subtract with borrow
	AND
	OR
	XOR
	CMP  // flags from dst - src, no write
	TEST // flags from dst & src, no write
	SHL
	SHR
	SAR
	INC
	DEC
	NEG
	NOT
	IMUL // imul src, dst : dst = dst * src (two-operand form)
	MUL  // mul src : edx:eax = eax * src (unsigned)
	DIV  // div src : eax = edx:eax / src ; edx = remainder (unsigned)

	// Control flow.
	JMP  // direct (label) or indirect (*reg / *mem)
	JCC  // conditional jump; condition in Inst.Cond
	CALL // direct (label) or indirect (*reg / *mem)
	RET
	SETCC // setcc dst : dst byte = condition

	// String operations. Sizes via Inst.Size; REP prefixes via Inst.Rep.
	MOVS // [esi] -> [edi], advance both
	STOS // al/ax/eax -> [edi], advance edi
	LODS // [esi] -> al/ax/eax, advance esi
	CMPS // flags from [esi]-[edi], advance both
	SCAS // flags from al/ax/eax - [edi], advance edi

	// Flag manipulation.
	PUSHF
	POPF
	CLC
	STC
	CLD // clear direction flag (strings ascend); we model DF=0 only
	STD // set direction flag; accepted by the assembler, faulted at run time

	// Misc.
	NOP
	HLT // privileged
	CLI // privileged: clear interrupt flag
	STI // privileged: set interrupt flag
	IN  // privileged port input
	OUT // privileged port output
	INT // software interrupt (hypercall gate in the simulated machine)
	UD2 // undefined instruction: always faults

	NumOps
)

var opNames = [NumOps]string{
	INVALID: "<invalid>",
	MOV:     "mov", MOVZX: "movz", MOVSX: "movs*", LEA: "lea",
	PUSH: "push", POP: "pop", XCHG: "xchg",
	ADD: "add", SUB: "sub", ADC: "adc", SBB: "sbb",
	AND: "and", OR: "or", XOR: "xor", CMP: "cmp", TEST: "test",
	SHL: "shl", SHR: "shr", SAR: "sar",
	INC: "inc", DEC: "dec", NEG: "neg", NOT: "not",
	IMUL: "imul", MUL: "mul", DIV: "div",
	JMP: "jmp", JCC: "j", CALL: "call", RET: "ret", SETCC: "set",
	MOVS: "movs", STOS: "stos", LODS: "lods", CMPS: "cmps", SCAS: "scas",
	PUSHF: "pushf", POPF: "popf", CLC: "clc", STC: "stc", CLD: "cld", STD: "std",
	NOP: "nop", HLT: "hlt", CLI: "cli", STI: "sti",
	IN: "in", OUT: "out", INT: "int", UD2: "ud2",
}

// String returns the base mnemonic (without size suffix or condition).
func (o Op) String() string {
	if o < NumOps {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Privileged reports whether the instruction may only execute in a
// privileged context. The TwinDrivers rewriter statically rejects these in
// drivers destined for the hypervisor (§4.5.2 of the paper).
func (o Op) Privileged() bool {
	switch o {
	case HLT, CLI, STI, IN, OUT:
		return true
	}
	return false
}

// Cond is a jump/set condition.
type Cond uint8

// Conditions, in x86 naming.
const (
	CondNone Cond = iota
	E             // equal / zero
	NE            // not equal / not zero
	B             // below (unsigned <)
	AE            // above or equal (unsigned >=)
	BE            // below or equal (unsigned <=)
	A             // above (unsigned >)
	L             // less (signed <)
	GE            // greater or equal (signed >=)
	LE            // less or equal (signed <=)
	G             // greater (signed >)
	S             // sign
	NS            // not sign
	NumConds
)

var condNames = [NumConds]string{
	CondNone: "", E: "e", NE: "ne", B: "b", AE: "ae", BE: "be", A: "a",
	L: "l", GE: "ge", LE: "le", G: "g", S: "s", NS: "ns",
}

// String returns the condition suffix ("e", "ne", ...).
func (c Cond) String() string {
	if c < NumConds {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// CondByName resolves a condition suffix. Synonyms (z/nz, c/nc, nb, nae...)
// map to the canonical condition.
func CondByName(s string) (Cond, bool) {
	switch s {
	case "e", "z":
		return E, true
	case "ne", "nz":
		return NE, true
	case "b", "c", "nae":
		return B, true
	case "ae", "nc", "nb":
		return AE, true
	case "be", "na":
		return BE, true
	case "a", "nbe":
		return A, true
	case "l", "nge":
		return L, true
	case "ge", "nl":
		return GE, true
	case "le", "ng":
		return LE, true
	case "g", "nle":
		return G, true
	case "s":
		return S, true
	case "ns":
		return NS, true
	}
	return CondNone, false
}

// Negate returns the logical negation of the condition.
func (c Cond) Negate() Cond {
	switch c {
	case E:
		return NE
	case NE:
		return E
	case B:
		return AE
	case AE:
		return B
	case BE:
		return A
	case A:
		return BE
	case L:
		return GE
	case GE:
		return L
	case LE:
		return G
	case G:
		return LE
	case S:
		return NS
	case NS:
		return S
	}
	return CondNone
}

// Rep is a string-instruction repeat prefix.
type Rep uint8

// Repeat prefixes.
const (
	RepNone Rep = iota
	RepPlain
	RepE  // repe/repz: repeat while equal
	RepNE // repne/repnz: repeat while not equal
)

// String returns the prefix spelling ("rep", "repe", "repne" or "").
func (r Rep) String() string {
	switch r {
	case RepPlain:
		return "rep"
	case RepE:
		return "repe"
	case RepNE:
		return "repne"
	}
	return ""
}

// OperandKind discriminates Operand.
type OperandKind uint8

// Operand kinds.
const (
	KindNone OperandKind = iota
	KindReg
	KindImm
	KindMem
)

// Operand is an instruction operand. Memory operands carry the full x86
// addressing form disp(base,index,scale) plus an optional symbol whose
// link-time value is added to the displacement. Immediate operands may also
// be symbolic ($symbol), which yields the symbol's address.
type Operand struct {
	Kind  OperandKind
	Reg   Reg    // KindReg
	Imm   int32  // KindImm: value (symbol value added at link if Sym != "")
	Base  Reg    // KindMem: base register or RegNone
	Index Reg    // KindMem: index register or RegNone
	Scale uint8  // KindMem: 1, 2, 4, 8 (0 treated as 1)
	Disp  int32  // KindMem: displacement
	Sym   string // KindMem/KindImm: symbol added at link time
}

// RegOp returns a register operand.
func RegOp(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// ImmOp returns an immediate operand.
func ImmOp(v int32) Operand { return Operand{Kind: KindImm, Imm: v} }

// SymImmOp returns an immediate operand holding the address of sym plus off.
func SymImmOp(sym string, off int32) Operand {
	return Operand{Kind: KindImm, Imm: off, Sym: sym}
}

// MemOp returns a memory operand disp(base).
func MemOp(disp int32, base Reg) Operand {
	return Operand{Kind: KindMem, Base: base, Index: RegNone, Scale: 1, Disp: disp}
}

// MemOpIdx returns a memory operand disp(base,index,scale).
func MemOpIdx(disp int32, base, index Reg, scale uint8) Operand {
	return Operand{Kind: KindMem, Base: base, Index: index, Scale: scale, Disp: disp}
}

// SymMemOp returns a memory operand sym+disp(base).
func SymMemOp(sym string, disp int32, base Reg) Operand {
	return Operand{Kind: KindMem, Base: base, Index: RegNone, Scale: 1, Disp: disp, Sym: sym}
}

// IsMem reports whether the operand references memory.
func (o Operand) IsMem() bool { return o.Kind == KindMem }

// IsReg reports whether the operand is the given register.
func (o Operand) IsReg(r Reg) bool { return o.Kind == KindReg && o.Reg == r }

// UsesReg reports whether the operand reads the given register (as value,
// base or index).
func (o Operand) UsesReg(r Reg) bool {
	switch o.Kind {
	case KindReg:
		return o.Reg == r
	case KindMem:
		return o.Base == r || o.Index == r
	}
	return false
}

// StackRelative reports whether a memory operand addresses the stack frame:
// any ESP- or EBP-based access. TwinDrivers exempts these from SVM
// translation because the hypervisor instance runs on its own stack (§4.1);
// the rewriter relies on this predicate.
func (o Operand) StackRelative() bool {
	if o.Kind != KindMem {
		return false
	}
	return o.Base == ESP || o.Base == EBP
}

// format renders the operand in AT&T syntax; size is used only for
// register operands of byte/word instructions (we always print the 32-bit
// name since the machine has no architectural sub-registers).
func (o Operand) format() string {
	switch o.Kind {
	case KindReg:
		return "%" + o.Reg.String()
	case KindImm:
		if o.Sym != "" {
			if o.Imm != 0 {
				return fmt.Sprintf("$%s+%d", o.Sym, o.Imm)
			}
			return "$" + o.Sym
		}
		return fmt.Sprintf("$%d", o.Imm)
	case KindMem:
		var b strings.Builder
		if o.Sym != "" {
			b.WriteString(o.Sym)
			if o.Disp > 0 {
				fmt.Fprintf(&b, "+%d", o.Disp)
			} else if o.Disp < 0 {
				fmt.Fprintf(&b, "%d", o.Disp)
			}
		} else if o.Disp != 0 {
			fmt.Fprintf(&b, "%d", o.Disp)
		}
		if o.Base != RegNone || o.Index != RegNone {
			b.WriteByte('(')
			if o.Base != RegNone {
				b.WriteString("%" + o.Base.String())
			}
			if o.Index != RegNone {
				fmt.Fprintf(&b, ",%%%s,%d", o.Index.String(), o.EffScale())
			}
			b.WriteByte(')')
		}
		if b.Len() == 0 {
			b.WriteString("0")
		}
		return b.String()
	}
	return "<none>"
}

// EffScale returns the effective scale factor (0 normalised to 1).
func (o Operand) EffScale() uint8 {
	if o.Scale == 0 {
		return 1
	}
	return o.Scale
}

// Inst is one instruction. AT&T operand order is preserved: Src then Dst.
// Direct jump/call targets are symbolic (Target); indirect targets use Src
// with Indirect set.
type Inst struct {
	Op       Op
	Cond     Cond  // JCC / SETCC
	Size     uint8 // operand size in bytes: 1, 2 or 4 (0 means 4)
	Src      Operand
	Dst      Operand
	Target   string // direct CALL/JMP/JCC label or function name
	Indirect bool   // CALL/JMP via Src operand value
	Rep      Rep    // string instruction prefix

	// Label is the (optional) label defined at this instruction.
	// Multiple labels collapse to the first; the assembler keeps an alias
	// table for the rest.
	Label string

	// Line is the source line for diagnostics (0 if synthesised).
	Line int
}

// EffSize returns the operand size, normalising 0 to 4.
func (i Inst) EffSize() uint32 {
	if i.Size == 0 {
		return 4
	}
	return uint32(i.Size)
}

// sizeSuffix maps operand size to the AT&T suffix.
func sizeSuffix(size uint8) string {
	switch size {
	case 1:
		return "b"
	case 2:
		return "w"
	default:
		return "l"
	}
}

// String renders the instruction in the assembler's dialect. The output is
// re-parsable by package asm; the round-trip is property-tested.
func (i Inst) String() string {
	var b strings.Builder
	if i.Label != "" {
		b.WriteString(i.Label + ":\n")
	}
	b.WriteString("\t")
	switch i.Op {
	case JCC:
		fmt.Fprintf(&b, "j%s\t%s", i.Cond, i.Target)
	case SETCC:
		fmt.Fprintf(&b, "set%s\t%s", i.Cond, i.Dst.format())
	case JMP, CALL:
		if i.Indirect {
			fmt.Fprintf(&b, "%s\t*%s", i.Op, i.Src.format())
		} else {
			fmt.Fprintf(&b, "%s\t%s", i.Op, i.Target)
		}
	case RET, NOP, HLT, CLI, STI, PUSHF, POPF, CLC, STC, CLD, STD, UD2:
		b.WriteString(i.Op.String())
	case INT:
		fmt.Fprintf(&b, "int\t%s", i.Src.format())
	case MOVS, STOS, LODS, CMPS, SCAS:
		if i.Rep != RepNone {
			b.Reset()
			if i.Label != "" {
				b.WriteString(i.Label + ":\n")
			}
			fmt.Fprintf(&b, "\t%s; %s%s", i.Rep, i.Op, sizeSuffix(i.Size))
		} else {
			fmt.Fprintf(&b, "%s%s", i.Op, sizeSuffix(i.Size))
		}
	case MOVZX, MOVSX:
		mn := "movz"
		if i.Op == MOVSX {
			mn = "movs"
		}
		fmt.Fprintf(&b, "%s%sl\t%s, %s", mn, sizeSuffix(i.Size), i.Src.format(), i.Dst.format())
	case PUSH:
		fmt.Fprintf(&b, "pushl\t%s", i.Src.format())
	case POP:
		fmt.Fprintf(&b, "popl\t%s", i.Dst.format())
	case INC, DEC, NEG, NOT, MUL, DIV:
		fmt.Fprintf(&b, "%s%s\t%s", i.Op, sizeSuffix(i.Size), i.Dst.format())
	default:
		fmt.Fprintf(&b, "%s%s\t%s, %s", i.Op, sizeSuffix(i.Size), i.Src.format(), i.Dst.format())
	}
	return b.String()
}

// MemOperand returns a pointer to the instruction's memory operand and
// whether one exists. Instructions in this ISA have at most one memory
// operand (as on x86). Implicit string-instruction memory accesses are not
// reported here; use IsString.
func (i *Inst) MemOperand() (*Operand, bool) {
	if i.Src.Kind == KindMem {
		return &i.Src, true
	}
	if i.Dst.Kind == KindMem {
		return &i.Dst, true
	}
	return nil, false
}

// IsString reports whether the op is a string instruction (implicit
// ESI/EDI memory operands).
func (i Inst) IsString() bool {
	switch i.Op {
	case MOVS, STOS, LODS, CMPS, SCAS:
		return true
	}
	return false
}

// ReadsMem reports whether execution reads from the explicit memory operand.
func (i Inst) ReadsMem() bool {
	if _, ok := i.MemOperand(); !ok {
		return false
	}
	if i.Op == LEA {
		return false
	}
	if i.Src.Kind == KindMem {
		return true
	}
	// Dst is memory: read-modify-write ops read it; plain stores do not.
	switch i.Op {
	case MOV, SETCC, POP:
		return false
	}
	return true
}

// WritesMem reports whether execution writes the explicit memory operand.
func (i Inst) WritesMem() bool {
	if i.Dst.Kind != KindMem {
		return false
	}
	switch i.Op {
	case CMP, TEST, LEA:
		return false
	}
	return true
}

// WritesFlags reports whether the instruction sets the condition flags.
func (i Inst) WritesFlags() bool {
	switch i.Op {
	case ADD, SUB, ADC, SBB, AND, OR, XOR, CMP, TEST, SHL, SHR, SAR,
		INC, DEC, NEG, IMUL, MUL, DIV, CMPS, SCAS, POPF, CLC, STC:
		return true
	}
	return false
}

// ReadsFlags reports whether the instruction's behaviour depends on the
// current flags.
func (i Inst) ReadsFlags() bool {
	switch i.Op {
	case JCC, SETCC, ADC, SBB, PUSHF:
		return true
	case CMPS, SCAS:
		return i.Rep == RepE || i.Rep == RepNE
	}
	return false
}
