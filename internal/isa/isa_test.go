package isa

import (
	"testing"
	"testing/quick"
)

func TestRegByName(t *testing.T) {
	for r := EAX; r < NumRegs; r++ {
		got, ok := RegByName(r.String())
		if !ok || got != r {
			t.Errorf("RegByName(%q) = %v, %v", r.String(), got, ok)
		}
	}
	if _, ok := RegByName("r15"); ok {
		t.Error("RegByName accepted unknown register")
	}
}

func TestCondNegate(t *testing.T) {
	for c := E; c < NumConds; c++ {
		n := c.Negate()
		if n == CondNone {
			t.Errorf("cond %v has no negation", c)
			continue
		}
		if n.Negate() != c {
			t.Errorf("negate(negate(%v)) = %v", c, n.Negate())
		}
	}
}

func TestCondByNameSynonyms(t *testing.T) {
	cases := map[string]Cond{
		"e": E, "z": E, "ne": NE, "nz": NE,
		"b": B, "c": B, "nae": B,
		"ae": AE, "nc": AE, "nb": AE,
		"be": BE, "na": BE, "a": A, "nbe": A,
		"l": L, "nge": L, "ge": GE, "nl": GE,
		"le": LE, "ng": LE, "g": G, "nle": G,
		"s": S, "ns": NS,
	}
	for name, want := range cases {
		got, ok := CondByName(name)
		if !ok || got != want {
			t.Errorf("CondByName(%q) = %v, %v; want %v", name, got, ok, want)
		}
	}
}

func TestStackRelative(t *testing.T) {
	cases := []struct {
		op   Operand
		want bool
	}{
		{MemOp(8, EBP), true},
		{MemOp(-4, ESP), true},
		{MemOp(0, EAX), false},
		{MemOpIdx(0, EBX, ESI, 4), false},
		{RegOp(ESP), false}, // not a memory operand
		{MemOpIdx(0, ESP, EAX, 1), true},
	}
	for _, c := range cases {
		if got := c.op.StackRelative(); got != c.want {
			t.Errorf("StackRelative(%v) = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestMemOperandClassification(t *testing.T) {
	load := Inst{Op: MOV, Size: 4, Src: MemOp(0, EAX), Dst: RegOp(EBX)}
	if !load.ReadsMem() || load.WritesMem() {
		t.Errorf("load: ReadsMem=%v WritesMem=%v", load.ReadsMem(), load.WritesMem())
	}
	store := Inst{Op: MOV, Size: 4, Src: RegOp(EBX), Dst: MemOp(0, EAX)}
	if store.ReadsMem() || !store.WritesMem() {
		t.Errorf("store: ReadsMem=%v WritesMem=%v", store.ReadsMem(), store.WritesMem())
	}
	rmw := Inst{Op: ADD, Size: 4, Src: RegOp(EBX), Dst: MemOp(0, EAX)}
	if !rmw.ReadsMem() || !rmw.WritesMem() {
		t.Errorf("rmw: ReadsMem=%v WritesMem=%v", rmw.ReadsMem(), rmw.WritesMem())
	}
	lea := Inst{Op: LEA, Size: 4, Src: MemOp(12, EAX), Dst: RegOp(EBX)}
	if lea.ReadsMem() || lea.WritesMem() {
		t.Errorf("lea: ReadsMem=%v WritesMem=%v", lea.ReadsMem(), lea.WritesMem())
	}
	cmpm := Inst{Op: CMP, Size: 4, Src: RegOp(EBX), Dst: MemOp(0, EAX)}
	if !cmpm.ReadsMem() || cmpm.WritesMem() {
		t.Errorf("cmp-mem: ReadsMem=%v WritesMem=%v", cmpm.ReadsMem(), cmpm.WritesMem())
	}
}

func TestFlagsClassification(t *testing.T) {
	if !(Inst{Op: ADD}).WritesFlags() {
		t.Error("ADD should write flags")
	}
	if (Inst{Op: MOV}).WritesFlags() {
		t.Error("MOV should not write flags")
	}
	if !(Inst{Op: JCC, Cond: E}).ReadsFlags() {
		t.Error("JCC should read flags")
	}
	if !(Inst{Op: ADC}).ReadsFlags() {
		t.Error("ADC should read flags")
	}
	if (Inst{Op: CMPS, Rep: RepNone}).ReadsFlags() {
		t.Error("plain CMPS does not read incoming flags")
	}
	if !(Inst{Op: CMPS, Rep: RepE}).ReadsFlags() {
		t.Error("repe CMPS reads flags (loop condition)")
	}
}

func TestPrivileged(t *testing.T) {
	for _, op := range []Op{HLT, CLI, STI, IN, OUT} {
		if !op.Privileged() {
			t.Errorf("%v should be privileged", op)
		}
	}
	for _, op := range []Op{MOV, ADD, CALL, RET, MOVS, INT} {
		if op.Privileged() {
			t.Errorf("%v should not be privileged", op)
		}
	}
}

func TestUsesReg(t *testing.T) {
	o := MemOpIdx(4, EAX, EBX, 2)
	if !o.UsesReg(EAX) || !o.UsesReg(EBX) || o.UsesReg(ECX) {
		t.Errorf("UsesReg wrong for %v", o)
	}
	r := RegOp(ESI)
	if !r.UsesReg(ESI) || r.UsesReg(EDI) {
		t.Errorf("UsesReg wrong for %v", r)
	}
}

// Property: EffScale never returns 0 and Negate is an involution on all
// conditions generated randomly.
func TestQuickScaleAndNegate(t *testing.T) {
	f := func(scale uint8, c uint8) bool {
		o := Operand{Kind: KindMem, Scale: scale % 9}
		if o.EffScale() == 0 {
			return false
		}
		cond := Cond(c%uint8(NumConds-1)) + 1 // skip CondNone
		return cond.Negate().Negate() == cond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
