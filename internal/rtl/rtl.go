// Package rtl models a Realtek RTL8139-class Fast Ethernet controller —
// the second NIC backend, chosen because its data-path geometry is
// genuinely different from the e1000's descriptor rings:
//
//   - receive lands in a single contiguous byte ring (RBSTART/RBLEN): the
//     device writes a 4-byte header (status, length) followed by the
//     packet, 4-byte aligned, wrapping byte-granular at the ring end; the
//     driver chases the device's write pointer (CBR) with its read pointer
//     (CAPR) and copies packets out;
//   - transmit uses four fixed slots (TSD0-3/TSAD0-3), each a contiguous
//     pre-mapped staging buffer: no scatter/gather, the driver copies the
//     whole frame in before firing the slot — which is why the hypervisor
//     transmit path for this model carries frames linear (TxHeaderSplit 0)
//     instead of chaining guest pages;
//   - the interrupt status register is write-1-to-clear (the e1000's ICR
//     is read-to-clear), and the media-status link bit is low-active.
//
// Register offsets are 4-byte aligned (the simulated machine's MMIO ops
// are word-sized); values and bit meanings follow the 8139 datasheet.
package rtl

import (
	"fmt"

	"twindrivers/internal/mem"
)

// Register offsets (byte offsets into the MMIO block).
const (
	RegIDR0    = 0x00 // station address bytes 0-3
	RegIDR4    = 0x04 // station address bytes 4-5
	RegTSD0    = 0x10 // transmit status/command, slot 0 (+4 per slot)
	RegTSAD0   = 0x20 // transmit start address, slot 0 (+4 per slot)
	RegRBSTART = 0x30 // RX byte-ring base (physical)
	RegCMD     = 0x34 // command: RST/RE/TE, BUFE read-only
	RegCAPR    = 0x38 // driver read pointer into the RX ring
	RegCBR     = 0x3C // device write pointer (read-only)
	RegIMR     = 0x40 // interrupt mask
	RegISR     = 0x44 // interrupt status, write-1-to-clear
	RegMPC     = 0x48 // missed packet counter (read-only)
	RegMSR     = 0x4C // media status: LINKB is LOW-active
	RegRBLEN   = 0x50 // RX ring length in bytes (multiple of 4)
	RegTXCNT   = 0x54 // good packets transmitted (read-only)
	RegRXCNT   = 0x58 // good packets received (read-only)

	// MMIOPages sizes the register BAR (the real part is 256 bytes).
	MMIOPages = 1
)

// Command register bits.
const (
	CmdBufE = 1 << 0 // RX ring empty (read-only)
	CmdTE   = 1 << 2 // transmitter enable
	CmdRE   = 1 << 3 // receiver enable
	CmdRST  = 1 << 4 // soft reset
)

// Interrupt bits (ISR/IMR).
const (
	IntROK   = 1 << 0 // receive OK
	IntTOK   = 1 << 2 // transmit OK
	IntRxOvw = 1 << 4 // RX ring overflow (packet missed)
)

// Transmit status bits (TSD). The driver writes the byte count (low 13
// bits) with OWN/TOK clear to fire a slot; the device sets them back.
const (
	TsdSizeMask = 0x1FFF
	TsdOwn      = 1 << 13 // DMA completed
	TsdTok      = 1 << 15 // transmit OK
)

// Media status bits.
const (
	MsrLinkB = 1 << 0 // inverse link: 0 = link up
)

// Receive header layout: u16 status, u16 length (packet + 4-byte CRC),
// then the packet, advanced 4-byte aligned.
const (
	RxHdrBytes = 4
	RxStROK    = 1 << 0
)

// TxSlots is the transmit slot count; TxBufBytes each slot's staging
// buffer size (one MTU frame plus headroom).
const (
	TxSlots    = 4
	TxBufBytes = 2048
)

// RTL8139 is one simulated controller.
type RTL8139 struct {
	Name string
	Phys *mem.Physical
	MAC  [6]byte

	// IRQ is invoked when the interrupt line asserts (isr & imr != 0).
	IRQ func()

	// OnTransmit receives every transmitted packet (the wire).
	OnTransmit func(pkt []byte)

	cmd      uint32
	isr, imr uint32

	rbstart, rblen uint32
	capr, cbr      uint32

	tsd  [TxSlots]uint32
	tsad [TxSlots]uint32

	idr0, idr4 uint32

	// Statistics registers.
	txcnt, rxcnt, mpc uint32
	linkDown          bool
}

// New creates a controller over physical memory with the given MAC.
func New(name string, phys *mem.Physical, macLast byte) *RTL8139 {
	r := &RTL8139{Name: name, Phys: phys}
	r.MAC = [6]byte{0x00, 0xE0, 0x4C, 0x00, 0x00, macLast}
	return r
}

// MMIORead implements mem.MMIO.
func (r *RTL8139) MMIORead(off uint32, size uint32) uint32 {
	switch {
	case off == RegIDR0:
		return r.idr0
	case off == RegIDR4:
		return r.idr4
	case off >= RegTSD0 && off < RegTSD0+4*TxSlots:
		return r.tsd[(off-RegTSD0)/4]
	case off >= RegTSAD0 && off < RegTSAD0+4*TxSlots:
		return r.tsad[(off-RegTSAD0)/4]
	case off == RegRBSTART:
		return r.rbstart
	case off == RegCMD:
		v := r.cmd
		if r.cbr == r.capr {
			v |= CmdBufE
		}
		return v
	case off == RegCAPR:
		return r.capr
	case off == RegCBR:
		return r.cbr
	case off == RegIMR:
		return r.imr
	case off == RegISR:
		return r.isr // NOT read-to-clear: cleared by writing 1s back
	case off == RegMPC:
		return r.mpc
	case off == RegMSR:
		if r.linkDown {
			return MsrLinkB
		}
		return 0
	case off == RegRBLEN:
		return r.rblen
	case off == RegTXCNT:
		return r.txcnt
	case off == RegRXCNT:
		return r.rxcnt
	}
	return 0
}

// MMIOWrite implements mem.MMIO.
func (r *RTL8139) MMIOWrite(off uint32, size uint32, val uint32) {
	switch {
	case off == RegIDR0:
		r.idr0 = val
		r.MAC[0], r.MAC[1], r.MAC[2], r.MAC[3] = byte(val), byte(val>>8), byte(val>>16), byte(val>>24)
	case off == RegIDR4:
		r.idr4 = val & 0xFFFF
		r.MAC[4], r.MAC[5] = byte(val), byte(val>>8)
	case off >= RegTSD0 && off < RegTSD0+4*TxSlots:
		slot := (off - RegTSD0) / 4
		r.tsd[slot] = val & TsdSizeMask
		r.fireTx(slot)
	case off >= RegTSAD0 && off < RegTSAD0+4*TxSlots:
		r.tsad[(off-RegTSAD0)/4] = val
	case off == RegRBSTART:
		r.rbstart = val
	case off == RegCMD:
		if val&CmdRST != 0 {
			r.reset()
			return
		}
		r.cmd = val &^ uint32(CmdBufE)
	case off == RegCAPR:
		r.capr = val
	case off == RegIMR:
		r.imr = val
		r.maybeInterrupt()
	case off == RegISR:
		r.isr &^= val // write-1-to-clear
	case off == RegRBLEN:
		r.rblen = val &^ 3
	}
}

func (r *RTL8139) reset() {
	*r = RTL8139{Name: r.Name, Phys: r.Phys, MAC: r.MAC, IRQ: r.IRQ,
		OnTransmit: r.OnTransmit, linkDown: r.linkDown}
}

func (r *RTL8139) maybeInterrupt() {
	if r.isr&r.imr != 0 && r.IRQ != nil {
		r.IRQ()
	}
}

func (r *RTL8139) raise(cause uint32) {
	r.isr |= cause
	r.maybeInterrupt()
}

// dmaRead copies ln bytes from physical memory.
func (r *RTL8139) dmaRead(pa uint32, ln int) ([]byte, error) {
	out := make([]byte, ln)
	for i := 0; i < ln; {
		f := (pa + uint32(i)) / mem.PageSize
		off := (pa + uint32(i)) & mem.PageMask
		fd := r.Phys.FrameData(f)
		if fd == nil {
			return nil, fmt.Errorf("rtl: %s: DMA read of unbacked frame %#x", r.Name, f)
		}
		c := copy(out[i:], fd[off:])
		i += c
	}
	return out, nil
}

func (r *RTL8139) dmaWrite(pa uint32, data []byte) error {
	for i := 0; i < len(data); {
		f := (pa + uint32(i)) / mem.PageSize
		off := (pa + uint32(i)) & mem.PageMask
		fd := r.Phys.FrameData(f)
		if fd == nil {
			return fmt.Errorf("rtl: %s: DMA write of unbacked frame %#x", r.Name, f)
		}
		c := copy(fd[off:], data[i:])
		i += c
	}
	return nil
}

// ringWrite writes data into the RX byte ring starting at ring offset off,
// wrapping at RBLEN (the header itself never wraps: offsets and advances
// are 4-byte aligned, so a header always has 4 contiguous bytes before the
// end; the payload wraps byte-granular).
func (r *RTL8139) ringWrite(off uint32, data []byte) error {
	first := int(r.rblen - off)
	if first > len(data) {
		first = len(data)
	}
	if err := r.dmaWrite(r.rbstart+off, data[:first]); err != nil {
		return err
	}
	if first < len(data) {
		return r.dmaWrite(r.rbstart, data[first:])
	}
	return nil
}

// fireTx transmits one slot: DMA the staged frame out of TSAD[slot] and
// complete the slot (OWN+TOK), raising the TOK cause.
func (r *RTL8139) fireTx(slot uint32) {
	if r.cmd&CmdTE == 0 {
		return
	}
	ln := int(r.tsd[slot] & TsdSizeMask)
	data, err := r.dmaRead(r.tsad[slot], ln)
	if err != nil {
		return // DMA blocked: the slot never completes
	}
	if r.OnTransmit != nil {
		r.OnTransmit(data)
	}
	r.txcnt++
	r.tsd[slot] |= TsdOwn | TsdTok
	r.raise(IntTOK)
}

// Inject delivers a received packet into the RX byte ring. It returns
// false (and counts a missed packet) when the receiver is down or the ring
// lacks space.
func (r *RTL8139) Inject(pkt []byte) bool {
	if r.cmd&CmdRE == 0 || r.rblen == 0 || r.rbstart == 0 {
		r.mpc++
		return false
	}
	needed := (RxHdrBytes + uint32(len(pkt)) + 3) &^ 3
	free := r.rblen - 1
	if r.cbr != r.capr {
		free = (r.capr - r.cbr - 1 + r.rblen) % r.rblen
	}
	if needed > free {
		r.mpc++
		r.raise(IntRxOvw)
		return false
	}
	buf := make([]byte, needed)
	status := uint16(RxStROK)
	buf[0], buf[1] = byte(status), byte(status>>8)
	wireLen := uint16(len(pkt)) + 4 // the hardware includes the CRC
	buf[2], buf[3] = byte(wireLen), byte(wireLen>>8)
	copy(buf[RxHdrBytes:], pkt)
	if err := r.ringWrite(r.cbr, buf); err != nil {
		r.mpc++
		return false
	}
	r.cbr = (r.cbr + needed) % r.rblen
	r.rxcnt++
	r.raise(IntROK)
	return true
}

// SetLink drives the (low-active) LINKB bit of the media status register.
func (r *RTL8139) SetLink(up bool) { r.linkDown = !up }

// SetOnTransmit installs the wire callback (drivermodel.Device).
func (r *RTL8139) SetOnTransmit(fn func(pkt []byte)) { r.OnTransmit = fn }

// HWAddr returns the current station address (drivermodel.Device).
func (r *RTL8139) HWAddr() [6]byte { return r.MAC }

// Counters exposes the statistics the driver's watchdog reads.
func (r *RTL8139) Counters() (tx, rx, missed uint32) { return r.txcnt, r.rxcnt, r.mpc }

// LinkUp reports link state.
func (r *RTL8139) LinkUp() bool { return !r.linkDown }

// PendingInterrupt reports whether an unmasked cause is latched.
func (r *RTL8139) PendingInterrupt() bool { return r.isr&r.imr != 0 }
