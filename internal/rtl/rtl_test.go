package rtl

import (
	"bytes"
	"testing"

	"twindrivers/internal/mem"
)

// ringDev builds a device with an RBLEN-byte RX ring and a TX slot, both
// backed by fresh physical frames, receiver/transmitter enabled.
func ringDev(t *testing.T, rblen uint32) (*RTL8139, uint32) {
	t.Helper()
	phys := mem.NewPhysical()
	pages := int(rblen+mem.PageSize-1)/int(mem.PageSize) + 1
	first := phys.AllocFrames(mem.OwnerDom0, pages)
	base := first * mem.PageSize
	d := New("rtl0", phys, 7)
	d.MMIOWrite(RegRBSTART, 4, base)
	d.MMIOWrite(RegRBLEN, 4, rblen)
	d.MMIOWrite(RegCMD, 4, CmdRE|CmdTE)
	return d, base
}

// readRing reads n bytes at ring offset off, wrapping at rblen.
func readRing(t *testing.T, d *RTL8139, base, off, rblen uint32, n int) []byte {
	t.Helper()
	out := make([]byte, n)
	for i := range out {
		pa := base + (off+uint32(i))%rblen
		fd := d.Phys.FrameData(pa / mem.PageSize)
		out[i] = fd[pa&mem.PageMask]
	}
	return out
}

// TestInjectWritesHeaderAndPayload checks the 4-byte header format and
// packet placement.
func TestInjectWritesHeaderAndPayload(t *testing.T) {
	d, base := ringDev(t, 4096)
	pkt := bytes.Repeat([]byte{0xAB}, 61) // odd length: exercises padding
	if !d.Inject(pkt) {
		t.Fatal("inject")
	}
	hdr := readRing(t, d, base, 0, 4096, 4)
	if hdr[0]&RxStROK == 0 {
		t.Error("status lacks ROK")
	}
	ln := int(hdr[2]) | int(hdr[3])<<8
	if ln != len(pkt)+4 {
		t.Errorf("header length %d, want %d (packet + CRC)", ln, len(pkt)+4)
	}
	if got := readRing(t, d, base, 4, 4096, len(pkt)); !bytes.Equal(got, pkt) {
		t.Error("payload mismatch")
	}
	// Write pointer advanced 4-byte aligned.
	want := (uint32(4+len(pkt)) + 3) &^ 3
	if d.MMIORead(RegCBR, 4) != want {
		t.Errorf("CBR = %d, want %d", d.MMIORead(RegCBR, 4), want)
	}
	if d.MMIORead(RegISR, 4)&IntROK == 0 {
		t.Error("ROK not raised")
	}
}

// TestInjectWrapsPayloadAtRingEnd: a packet injected near the ring end
// wraps byte-granular; the header itself stays contiguous (offsets are
// 4-byte aligned).
func TestInjectWrapsPayloadAtRingEnd(t *testing.T) {
	const rblen = 256
	d, base := ringDev(t, rblen)
	// March the pointers close to the end with consumed packets.
	step := uint32(0)
	for step+104 < rblen-40 {
		if !d.Inject(bytes.Repeat([]byte{1}, 100)) {
			t.Fatal("march inject")
		}
		step += 104
		d.MMIOWrite(RegCAPR, 4, step) // consume
	}
	pkt := bytes.Repeat([]byte{0xEE}, 80) // will cross the ring end
	if !d.Inject(pkt) {
		t.Fatal("wrap inject")
	}
	if got := readRing(t, d, base, step+4, rblen, len(pkt)); !bytes.Equal(got, pkt) {
		t.Error("wrapped payload mismatch")
	}
	wantCBR := (step + (4+80+3)&^3) % rblen
	if d.MMIORead(RegCBR, 4) != wantCBR {
		t.Errorf("CBR = %d, want %d", d.MMIORead(RegCBR, 4), wantCBR)
	}
}

// TestInjectOverflowCountsMissed: a full ring rejects the packet, counts
// it missed and latches RXOVW.
func TestInjectOverflowCountsMissed(t *testing.T) {
	d, _ := ringDev(t, 256)
	n := 0
	for d.Inject(bytes.Repeat([]byte{2}, 60)) { // no CAPR movement: fills up
		n++
		if n > 10 {
			t.Fatal("ring never filled")
		}
	}
	_, _, missed := d.Counters()
	if missed != 1 {
		t.Errorf("missed = %d, want 1", missed)
	}
	if d.MMIORead(RegISR, 4)&IntRxOvw == 0 {
		t.Error("RXOVW not latched")
	}
	// Receiver down also counts missed.
	d.MMIOWrite(RegCMD, 4, 0)
	if d.Inject([]byte{1, 2, 3}) {
		t.Error("inject succeeded with RE off")
	}
}

// TestISRWriteOneToClear: reading ISR does NOT clear it (unlike the
// e1000's ICR); writing 1s back does.
func TestISRWriteOneToClear(t *testing.T) {
	d, _ := ringDev(t, 4096)
	if !d.Inject([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}) {
		t.Fatal("inject")
	}
	if d.MMIORead(RegISR, 4)&IntROK == 0 {
		t.Fatal("ROK not set")
	}
	if d.MMIORead(RegISR, 4)&IntROK == 0 {
		t.Fatal("ISR cleared by read — should be write-1-to-clear")
	}
	d.MMIOWrite(RegISR, 4, IntROK)
	if d.MMIORead(RegISR, 4)&IntROK != 0 {
		t.Fatal("write-1 did not clear ROK")
	}
}

// TestTransmitSlots: firing a TSD DMAs the staged bytes out and completes
// the slot with OWN|TOK.
func TestTransmitSlots(t *testing.T) {
	phys := mem.NewPhysical()
	first := phys.AllocFrames(mem.OwnerDom0, 2)
	buf := first * mem.PageSize
	d := New("rtl0", phys, 7)
	d.MMIOWrite(RegCMD, 4, CmdTE)
	pkt := bytes.Repeat([]byte{0x77}, 90)
	fd := phys.FrameData(first)
	copy(fd[:], pkt)
	var wire []byte
	d.SetOnTransmit(func(p []byte) { wire = append([]byte(nil), p...) })
	d.MMIOWrite(RegTSAD0, 4, buf)
	d.MMIOWrite(RegTSD0, 4, uint32(len(pkt)))
	if !bytes.Equal(wire, pkt) {
		t.Fatal("wire mismatch")
	}
	tsd := d.MMIORead(RegTSD0, 4)
	if tsd&TsdOwn == 0 || tsd&TsdTok == 0 {
		t.Errorf("TSD = %#x, want OWN|TOK set", tsd)
	}
	if d.MMIORead(RegISR, 4)&IntTOK == 0 {
		t.Error("TOK not raised")
	}
	tx, _, _ := d.Counters()
	if tx != 1 {
		t.Errorf("tx counter = %d", tx)
	}
}

// TestBufEReflectsPointerEquality: CMD's BUFE bit tracks CBR==CAPR.
func TestBufEReflectsPointerEquality(t *testing.T) {
	d, _ := ringDev(t, 4096)
	if d.MMIORead(RegCMD, 4)&CmdBufE == 0 {
		t.Error("empty ring without BUFE")
	}
	if !d.Inject(bytes.Repeat([]byte{3}, 60)) {
		t.Fatal("inject")
	}
	if d.MMIORead(RegCMD, 4)&CmdBufE != 0 {
		t.Error("BUFE set with a pending packet")
	}
	d.MMIOWrite(RegCAPR, 4, d.MMIORead(RegCBR, 4))
	if d.MMIORead(RegCMD, 4)&CmdBufE == 0 {
		t.Error("BUFE clear after consuming everything")
	}
}

// TestLinkBitIsLowActive: the MSR link bit is inverse-sense.
func TestLinkBitIsLowActive(t *testing.T) {
	d, _ := ringDev(t, 4096)
	if !d.LinkUp() || d.MMIORead(RegMSR, 4)&MsrLinkB != 0 {
		t.Error("fresh device should have link up (LINKB clear)")
	}
	d.SetLink(false)
	if d.LinkUp() || d.MMIORead(RegMSR, 4)&MsrLinkB == 0 {
		t.Error("SetLink(false) should set LINKB")
	}
}

// TestResetClearsRingState: CmdRST returns the device to power-on state
// but keeps identity and wiring.
func TestResetClearsRingState(t *testing.T) {
	d, _ := ringDev(t, 4096)
	if !d.Inject(bytes.Repeat([]byte{4}, 60)) {
		t.Fatal("inject")
	}
	mac := d.HWAddr()
	d.MMIOWrite(RegCMD, 4, CmdRST)
	if d.MMIORead(RegCBR, 4) != 0 || d.MMIORead(RegRBSTART, 4) != 0 {
		t.Error("reset left ring state")
	}
	if d.HWAddr() != mac {
		t.Error("reset lost the station address")
	}
}
