// Package webbench reproduces the web server workload of §6.3 / Figure 9:
// a knot-like static web server in the measured configuration, serving a
// SPECweb99 static fileset to httperf-style open-loop clients.
//
// The model derives each configuration's per-request cycle cost from
// *measured* per-packet costs (netbench runs over the same simulated
// machine, with a cache flush per packet to reflect the interleaving of
// thousands of concurrent connections), the SPECweb99 file-size
// distribution, and a fixed per-request server cost (accept, HTTP parse,
// sendfile setup, teardown). Requests are then offered at increasing rates;
// achieved throughput saturates at the server's capacity, with the gentle
// overload decay httperf observes when responses start missing the client
// timeout.
package webbench

import (
	"fmt"

	"twindrivers/internal/core"
	"twindrivers/internal/cost"
	"twindrivers/internal/netbench"
	"twindrivers/internal/netpath"
)

// SPECweb99 static content classes: within class c the nine file sizes
// step through 0.1..0.9 of the class decade (1 KB, 10 KB, 100 KB, 1 MB);
// classWeight follows the benchmark's access mix across the classes.
var classWeight = [4]float64{0.35, 0.50, 0.14, 0.01}

// mssBytes is the TCP payload per full data packet.
const mssBytes = cost.MTU - 40

// FilesetStats describes the SPECweb99-like fileset.
type FilesetStats struct {
	MeanFileBytes   float64
	MeanDataPackets float64 // E[ceil(size/mss)]
}

// Fileset computes the exact distribution statistics (nine files per
// class, sizes i*0.1*decade for i = 1..9, as in SPECweb99).
func Fileset() FilesetStats {
	var s FilesetStats
	for c := 0; c < 4; c++ {
		decade := 1024.0
		for d := 0; d < c; d++ {
			decade *= 10
		}
		for i := 1; i <= 9; i++ {
			size := float64(i) * 0.1 * decade
			w := classWeight[c] / 9
			s.MeanFileBytes += w * size
			pkts := int(size+mssBytes-1) / mssBytes
			if pkts < 1 {
				pkts = 1
			}
			s.MeanDataPackets += w * float64(pkts)
		}
	}
	return s
}

// Point is one sample of the throughput curve.
type Point struct {
	RequestRate int     // offered requests/second
	Mbps        float64 // achieved response throughput
}

// Curve is one configuration's Figure 9 series.
type Curve struct {
	Config            string
	CyclesPerReq      float64
	CapacityReqs      float64 // requests/second at CPU saturation
	PeakMbps          float64
	Points            []Point
	TxMtuCpp          float64 // measured inputs, for the record
	TxCtlCpp          float64
	RxCtlCpp          float64
	DataPacketsPerReq float64
}

// Params configures the sweep.
type Params struct {
	MaxRate int // default 20000 req/s (the paper's x-axis)
	Step    int // default 1000
	NumNICs int // default 5
	Measure int // packets per cpp measurement (default 192)
	Twin    core.TwinConfig
}

func (p *Params) defaults() {
	if p.MaxRate == 0 {
		p.MaxRate = 20000
	}
	if p.Step == 0 {
		p.Step = 1000
	}
	if p.NumNICs == 0 {
		p.NumNICs = cost.NumNICs
	}
	if p.Measure == 0 {
		p.Measure = 192
	}
}

// Run produces the curve for one configuration.
func Run(kind netpath.Kind, prm Params) (*Curve, error) {
	prm.defaults()
	fs := Fileset()

	// Measure the configuration's per-packet costs under connection
	// interleaving (cold caches between packets).
	measure := func(dir netbench.Direction, size int) (float64, error) {
		r, err := netbench.Run(kind, dir, netbench.Params{
			NumNICs: prm.NumNICs, PacketSize: size,
			Measure: prm.Measure, Twin: prm.Twin,
			FlushPerPacket: true,
		})
		if err != nil {
			return 0, err
		}
		return r.CyclesPerPacket, nil
	}
	txMtu, err := measure(netbench.TX, cost.MTU)
	if err != nil {
		return nil, fmt.Errorf("webbench: %w", err)
	}
	txCtl, err := measure(netbench.TX, 64)
	if err != nil {
		return nil, err
	}
	rxCtl, err := measure(netbench.RX, 64)
	if err != nil {
		return nil, err
	}

	// Packet budget per request: handshake (SYN in, SYN/ACK out, ACK in),
	// HTTP request in, response data out, one client ACK in per two data
	// packets, FIN exchange (in + out).
	dataPkts := fs.MeanDataPackets
	txCtlPkts := 2.0                 // SYN/ACK, FIN
	rxPkts := 3.0 + dataPkts/2 + 1.0 // SYN, request, ACKs, FIN

	cpr := float64(cost.WebRequestFixed) +
		dataPkts*txMtu + txCtlPkts*txCtl + rxPkts*rxCtl
	capacity := float64(cost.CPUHz) / cpr

	// Response bits on the wire per request (headers ≈ 250 bytes).
	respBits := (fs.MeanFileBytes + 250) * 8
	lineMbps := cost.NICLineRateMbps * float64(prm.NumNICs)

	c := &Curve{
		Config:            kind.String(),
		CyclesPerReq:      cpr,
		CapacityReqs:      capacity,
		TxMtuCpp:          txMtu,
		TxCtlCpp:          txCtl,
		RxCtlCpp:          rxCtl,
		DataPacketsPerReq: dataPkts,
	}
	for rate := prm.Step; rate <= prm.MaxRate; rate += prm.Step {
		achieved := float64(rate)
		if achieved > capacity {
			// Open-loop overload: the server completes work at capacity,
			// but queueing pushes responses past the httperf timeout; the
			// discarded fraction grows with overload.
			over := (float64(rate) - capacity) / capacity
			decay := 1.0 / (1.0 + 0.18*over)
			achieved = capacity * decay
		}
		mbps := achieved * respBits / 1e6
		if mbps > lineMbps {
			mbps = lineMbps
		}
		if mbps > c.PeakMbps {
			c.PeakMbps = mbps
		}
		c.Points = append(c.Points, Point{RequestRate: rate, Mbps: mbps})
	}
	return c, nil
}

// RunAll produces all four curves in figure order.
func RunAll(prm Params) ([]*Curve, error) {
	var out []*Curve
	for _, k := range netpath.Kinds() {
		c, err := Run(k, prm)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
