package webbench

import (
	"math"
	"testing"

	"twindrivers/internal/netpath"
)

func TestFilesetDistribution(t *testing.T) {
	fs := Fileset()
	// SPECweb99 static mix: mean ≈ 14.7 KB, ≈ 10-11 full data packets.
	if fs.MeanFileBytes < 13_000 || fs.MeanFileBytes > 17_000 {
		t.Errorf("mean file size = %.0f bytes", fs.MeanFileBytes)
	}
	if fs.MeanDataPackets < 9 || fs.MeanDataPackets > 12 {
		t.Errorf("mean data packets = %.2f", fs.MeanDataPackets)
	}
}

func TestCurveShape(t *testing.T) {
	curves, err := RunAll(Params{Measure: 96, Step: 2000})
	if err != nil {
		t.Fatal(err)
	}
	peak := map[string]float64{}
	for _, c := range curves {
		peak[c.Config] = c.PeakMbps
		// Monotone rise to the peak, then a plateau/gentle decline.
		sawPeak := false
		for i := 1; i < len(c.Points); i++ {
			prev, cur := c.Points[i-1].Mbps, c.Points[i].Mbps
			if cur >= prev-1e-9 {
				continue
			}
			sawPeak = true
			if cur < 0.5*c.PeakMbps {
				t.Errorf("%s collapses too hard at %d req/s: %.0f of peak %.0f",
					c.Config, c.Points[i].RequestRate, cur, c.PeakMbps)
			}
		}
		_ = sawPeak
		// Before saturation, achieved tracks offered exactly.
		first := c.Points[0]
		want := float64(first.RequestRate) * (Fileset().MeanFileBytes + 250) * 8 / 1e6
		if first.Mbps > 0 && math.Abs(first.Mbps-want)/want > 0.01 &&
			float64(first.RequestRate) < c.CapacityReqs {
			t.Errorf("%s under-saturation point wrong: %.1f vs offered %.1f", c.Config, first.Mbps, want)
		}
	}
	// Figure 9 ordering: Linux > dom0 > twin > domU.
	order := []string{"Linux", "dom0", "domU-twin", "domU"}
	for i := 0; i < len(order)-1; i++ {
		if peak[order[i]] <= peak[order[i+1]] {
			t.Errorf("peak ordering violated: %s (%.0f) <= %s (%.0f)",
				order[i], peak[order[i]], order[i+1], peak[order[i+1]])
		}
	}
	// Paper peaks: 855 / 712 / 572 / 269. Our model preserves the
	// ordering and the ~2x twin-over-domU win, with a compressed bottom
	// end (see EXPERIMENTS.md); assert the bands.
	if !between(peak["Linux"], 700, 1000) {
		t.Errorf("Linux peak = %.0f, paper 855", peak["Linux"])
	}
	if !between(peak["dom0"], 600, 900) {
		t.Errorf("dom0 peak = %.0f, paper 712", peak["dom0"])
	}
	if !between(peak["domU-twin"], 480, 800) {
		t.Errorf("twin peak = %.0f, paper 572", peak["domU-twin"])
	}
	if peak["domU"] > 0.72*peak["Linux"] {
		t.Errorf("domU peak = %.0f (%.0f%% of Linux), paper 31%%",
			peak["domU"], 100*peak["domU"]/peak["Linux"])
	}
	// The headline: twin is a >1.4x improvement over the unoptimized
	// guest for the web workload ("more than factor of 2" in the paper;
	// our domU floor is higher — documented deviation).
	if peak["domU-twin"] < 1.4*peak["domU"] {
		t.Errorf("twin/domU = %.2f", peak["domU-twin"]/peak["domU"])
	}
}

func TestSingleConfigRun(t *testing.T) {
	c, err := Run(netpath.Twin, Params{Measure: 64, Step: 4000, MaxRate: 16000})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != 4 {
		t.Errorf("points = %d", len(c.Points))
	}
	if c.CapacityReqs <= 0 || c.CyclesPerReq <= 0 {
		t.Error("missing capacity computation")
	}
}

func between(v, lo, hi float64) bool { return v >= lo && v <= hi }
