package core

import (
	"errors"
	"testing"

	"twindrivers/internal/kernel"
)

// Error-path pool invariants: every non-fatal transmit or delivery failure
// must leave PoolFree unchanged (transmit) or return every dequeued buffer
// (receive). Before the fixes, each such failure silently drained the pool
// until every transmit reported ErrTxBusy.

// TestPoolRestoredAfterCopyFault: a transmit whose guest staging address
// does not resolve (mem.Copy fault after poolGet) must return the pooled
// skb.
func TestPoolRestoredAfterCopyFault(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	capture(d)
	m.HV.Switch(m.DomU)
	free := tw.PoolFree()
	for i := 0; i < 5; i++ {
		if err := tw.GuestTransmitAt(d, 0x10, 64); err == nil {
			t.Fatal("transmit from an unmapped guest address succeeded")
		} else if errors.Is(err, ErrDriverDead) {
			t.Fatalf("copy fault killed the instance: %v", err)
		}
	}
	if got := tw.PoolFree(); got != free {
		t.Fatalf("pool leaked on copy faults: %d -> %d", free, got)
	}
	// And the path still works.
	if err := tw.GuestTransmit(d, EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.NIC.MAC, 0x0800, payload(200, 1))); err != nil {
		t.Fatal(err)
	}
}

// TestPoolRestoredAfterTranslateFault: a pooled skb whose head pointer
// cannot be SVM-translated (first failure point after poolGet) must come
// back to the pool on the error path.
func TestPoolRestoredAfterTranslateFault(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	capture(d)
	m.HV.Switch(m.DomU)
	free := tw.PoolFree()
	// Corrupt the head pointer of the skb poolGet will hand out next; SVM
	// refuses to translate an address outside dom0's mappings.
	victim := tw.pool[len(tw.pool)-1]
	savedHead, _ := m.Dom0.AS.Load(victim+kernel.SkbHead, 4)
	if err := m.Dom0.AS.Store(victim+kernel.SkbHead, 4, 0x10); err != nil {
		t.Fatal(err)
	}
	frame := EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.NIC.MAC, 0x0800, payload(200, 1))
	if err := tw.GuestTransmit(d, frame); err == nil {
		t.Fatal("transmit with an untranslatable skb head succeeded")
	} else if errors.Is(err, ErrDriverDead) {
		t.Fatalf("translate fault killed the instance: %v", err)
	}
	if got := tw.PoolFree(); got != free {
		t.Fatalf("pool leaked on translate fault: %d -> %d", free, got)
	}
	// Heal the skb and confirm the pool cycles normally again.
	if err := m.Dom0.AS.Store(victim+kernel.SkbHead, 4, savedHead); err != nil {
		t.Fatal(err)
	}
	if err := tw.GuestTransmit(d, frame); err != nil {
		t.Fatal(err)
	}
}

// TestPoolRestoredAfterBatchDescriptorFault: a bogus descriptor address
// mid-batch aborts the batch short, but the skb grabbed for the faulting
// frame must return to the pool.
func TestPoolRestoredAfterBatchDescriptorFault(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	got := capture(d)
	m.HV.Switch(m.DomU)
	free := tw.PoolFree()

	// Stage three frames, then corrupt the middle descriptor's address
	// word to an unmapped guest address before the drain.
	g := tw.guestIO[m.DomU.ID]
	frames := guestFrames(d, 0, 3, 500)
	if staged, err := tw.StageTransmitBatch(m.DomU, frames); err != nil || staged != 3 {
		t.Fatalf("staged %d: %v", staged, err)
	}
	if err := m.DomU.AS.Store(g.ring.Base+16+1*8, 4, 0x10); err != nil {
		t.Fatal(err)
	}
	sent, err := tw.ServiceRings(d, 0)
	if err == nil {
		t.Fatal("drain over a bogus descriptor succeeded")
	}
	if sent[m.DomU.ID] != 1 || len(*got) != 1 {
		t.Fatalf("sent %v wire %d, want the pre-fault frame only", sent, len(*got))
	}
	if got := tw.PoolFree(); got-free != -1 {
		// One skb is legitimately in flight on the device ring for the
		// transmitted frame (reaped by the next interrupt); the faulting
		// frame's skb must NOT be missing too.
		t.Fatalf("pool delta = %d, want -1 (one frame genuinely in flight)", got-free)
	}
}

// TestPoolRestoredAfterErrTxBusy: a transmit refused by the device (driver
// returns busy) recycles the skb immediately — the pre-existing behaviour,
// pinned here alongside the new error paths.
func TestPoolRestoredAfterErrTxBusy(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	capture(d)
	// Hold the adapter lock so the derived driver's trylock fails and it
	// reports busy without queueing anything.
	priv, _ := m.Dom0.AS.Load(d.Netdev+kernel.NdPriv, 4)
	if err := m.Dom0.AS.Store(priv+adLock, 4, 1); err != nil {
		t.Fatal(err)
	}
	m.HV.Switch(m.DomU)
	free := tw.PoolFree()
	frame := EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.NIC.MAC, 0x0800, payload(300, 1))
	for i := 0; i < 4; i++ {
		if err := tw.GuestTransmit(d, frame); !errors.Is(err, ErrTxBusy) {
			t.Fatalf("err = %v, want ErrTxBusy", err)
		}
	}
	if got := tw.PoolFree(); got != free {
		t.Fatalf("pool leaked on ErrTxBusy: %d -> %d", free, got)
	}
}

// TestDeliverBatchReturnsRemainingOnFault: packets are dequeued up front;
// a mid-batch fault must still return every dequeued skb to the pool (or
// slab) instead of leaking the tail of the batch.
func TestDeliverBatchReturnsRemainingOnFault(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	m.HV.Switch(m.DomU)
	// Warm the RX ring past its initial dom0-slab fill so the queued skbs
	// below are pool-provenance (the interrupt path refills from the pool)
	// and a leak is visible as lost pool capacity. Frames must exceed the
	// driver's copybreak so each delivery consumes its posted ring buffer.
	for i := 0; i < 300; i++ {
		if !d.NIC.Inject(EthernetFrame(d.NIC.MAC, [6]byte{3, 3, 3, 3, 3, byte(i)}, 0x0800, payload(400, byte(i)))) {
			t.Fatal("warm inject")
		}
		if err := tw.HandleIRQ(d); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.DeliverPending(m.DomU); err != nil {
			t.Fatal(err)
		}
	}
	const n = 6
	for i := 0; i < n; i++ {
		if !d.NIC.Inject(EthernetFrame(d.NIC.MAC, [6]byte{3, 3, 3, 3, 3, byte(i)}, 0x0800, payload(400, byte(i)))) {
			t.Fatal("inject")
		}
	}
	if err := tw.HandleIRQ(d); err != nil {
		t.Fatal(err)
	}
	rq := tw.rxQueues[m.DomU.ID]
	if rq.len() != n {
		t.Fatalf("queued %d", rq.len())
	}
	q := rq.skbs[rq.head:]
	// Every queued skb should now be pool-provenance; corrupt the third
	// packet's data pointer so its translate faults mid-batch.
	pooled := 0
	for _, skb := range q {
		if v, _ := m.Dom0.AS.Load(skb+kernel.SkbPool, 4); v != 0 {
			pooled++
		}
	}
	if pooled != n {
		t.Fatalf("only %d of %d queued skbs are pool-provenance after warm-up", pooled, n)
	}
	free := tw.PoolFree()
	if err := m.Dom0.AS.Store(q[2]+kernel.SkbData, 4, 0x20); err != nil {
		t.Fatal(err)
	}
	pkts, err := tw.DeliverPendingBatch(m.DomU, 0)
	if err == nil {
		t.Fatal("delivery over a corrupt skb succeeded")
	}
	// The frames delivered before the fault come back with the error, and
	// the error carries the exact delivered/dropped split (the accounting
	// contract netpath counts loss with).
	var de *DeliveryError
	if !errors.As(err, &de) {
		t.Fatalf("mid-batch fault is not a *DeliveryError: %v", err)
	}
	if len(pkts) != 2 || de.Delivered != 2 || de.Dropped != n-2 {
		t.Fatalf("partial delivery: %d pkts, delivered=%d dropped=%d (want 2/%d)",
			len(pkts), de.Delivered, de.Dropped, n-2)
	}
	if got := tw.PendingRx(m.DomU.ID); got != 0 {
		t.Fatalf("pending after aborted batch = %d", got)
	}
	if got := tw.PoolFree(); got != free+pooled {
		t.Fatalf("aborted batch leaked skbs: pool %d -> %d, want %d", free, got, free+pooled)
	}
	// Capacity is intact: a full pool's worth of transmits still works.
	capture(d)
	frame := EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.NIC.MAC, 0x0800, payload(200, 9))
	if err := tw.GuestTransmit(d, frame); err != nil {
		t.Fatal(err)
	}
}
