package core

import (
	"errors"
	"fmt"

	"twindrivers/internal/cost"
	"twindrivers/internal/cycles"
	"twindrivers/internal/kernel"
	"twindrivers/internal/mem"
	"twindrivers/internal/telemetry"
	"twindrivers/internal/xen"
)

// The posted-buffer receive path. On the legacy copy path every received
// frame is queued in a pooled dom0 sk_buff and later copied into a shared
// delivery region, from which the guest's paravirtual driver copies it
// again into its own sk_buff — two copies per packet, the overhead that
// dominates the twin receive profile (Figure 8). Here the guest posts the
// addresses and lengths of its own receive buffers on a per-guest shared
// descriptor ring ahead of delivery, and DeliverPendingPosted copies each
// frame exactly once, straight into the guest-posted page, translating the
// guest address through a per-guest software TLB (svm.GuestTLB).
//
// The posted ring is guest-writable memory and therefore hostile input:
// its header words are validated by mem.Ring exactly like the transmit
// ring's, and every posted address is resolved through the guest TLB's
// ownership check before a single byte moves — a scribbled descriptor can
// lose the guest its own frame, never steer a hypervisor copy into dom0,
// another guest, or hypervisor memory.
//
// The legacy copy path stays the default: batch-of-one cycle identity and
// the recovery hot-path equality tests keep pinning it unchanged.

// RxRingSlots is the per-guest posted-receive descriptor-ring capacity:
// the largest number of receive buffers a guest keeps posted at once.
const RxRingSlots = 32

// RxPost is one guest-posted receive buffer: a guest virtual address and
// the buffer's byte capacity.
type RxPost struct {
	Addr uint32
	Len  uint32
}

// PostedFrame describes one frame delivered into a guest-posted buffer.
type PostedFrame struct {
	Addr uint32 // guest virtual address the frame was copied to
	Len  int    // delivered frame length in bytes
}

// RxDelivery is the outcome of one posted-mode delivery batch.
type RxDelivery struct {
	// Frames lists the delivered frames, oldest first, each sitting in the
	// guest buffer its descriptor posted.
	Frames []PostedFrame

	// Lost counts frames that consumed a posted descriptor but could not
	// be delivered — the buffer was too small or its address failed the
	// guest TLB's ownership check. Each such frame is dropped exactly
	// once; the fault is contained to the guest that posted the bad
	// descriptor.
	Lost int
}

// DeliveryError reports a receive delivery that failed mid-batch: the
// frames delivered before the failure reached the guest and are already
// returned to the caller; Dropped frames were dequeued behind the failure
// and discarded. Callers accounting loss must count Dropped exactly once
// and must not re-count the delivered frames.
type DeliveryError struct {
	Delivered int
	Dropped   int
	Cause     error
}

func (e *DeliveryError) Error() string {
	return fmt.Sprintf("core: delivery failed after %d frames (%d dropped): %v",
		e.Delivered, e.Dropped, e.Cause)
}

func (e *DeliveryError) Unwrap() error { return e.Cause }

// ErrNoRxRing reports a posted-mode operation for a domain without a
// posted-receive ring (not a guest of this twin).
var ErrNoRxRing = errors.New("core: domain has no posted-receive ring")

// rxQueue is one guest's received-but-undelivered packet queue. Dequeue
// advances a head index instead of shifting the backing slice, so draining
// a deep queue in bounded batches is O(n) overall, not O(n²).
type rxQueue struct {
	skbs []uint32
	head int
}

func (q *rxQueue) push(skb uint32) { q.skbs = append(q.skbs, skb) }

func (q *rxQueue) len() int { return len(q.skbs) - q.head }

// popN dequeues up to n packets (all of them when n <= 0). The consumed
// prefix is compacted away once it outgrows the live remainder, so a queue
// with a sustained backlog holds O(backlog) memory, not O(everything ever
// queued).
func (q *rxQueue) popN(n int) []uint32 {
	avail := q.len()
	if n <= 0 || n > avail {
		n = avail
	}
	out := q.skbs[q.head : q.head+n]
	q.head += n
	switch {
	case q.head == len(q.skbs):
		q.skbs = q.skbs[:0]
		q.head = 0
	case q.head > len(q.skbs)/2:
		// The returned slice aliases the consumed prefix, so compaction
		// must copy the live tail into a fresh backing array.
		q.skbs = append([]uint32(nil), q.skbs[q.head:]...)
		q.head = 0
	}
	return out
}

// PostRxBuffers publishes receive buffers on a guest's posted-receive ring
// without crossing the virtualization boundary (the ring is shared memory,
// like the transmit ring). It returns how many were posted, stopping early
// without error when the ring fills — the guest re-posts after the next
// delivery drains descriptors. The guest-side cycle price is the caller's
// (netpath charges cost.RxPostPerBuffer per buffer).
func (t *Twin) PostRxBuffers(dom *xen.Domain, bufs []RxPost) (int, error) {
	if t.Dead {
		return 0, ErrDriverDead
	}
	g, ok := t.guestIO[dom.ID]
	if !ok {
		return 0, fmt.Errorf("%w: domain %q", ErrNoRxRing, dom.Name)
	}
	posted := 0
	for _, b := range bufs {
		free, err := g.rxRing.Free()
		if err != nil {
			return posted, err
		}
		if free == 0 {
			return posted, nil
		}
		if err := g.rxRing.Push(b.Addr, b.Len); err != nil {
			return posted, err
		}
		posted++
	}
	return posted, nil
}

// RxPostedFree reports how many more buffers the guest can post.
func (t *Twin) RxPostedFree(dom mem.Owner) (int, error) {
	g, ok := t.guestIO[dom]
	if !ok {
		return 0, ErrNoRxRing
	}
	return g.rxRing.Free()
}

// DeliverPendingPosted delivers at most max queued packets (0 means all)
// into the guest's posted receive buffers, raising a single coalesced
// notification for the batch. Delivery stops — leaving the remainder
// queued, not lost — when the guest has no descriptor posted; a posted
// descriptor whose buffer is too small or whose address fails the guest
// TLB check loses that one frame (counted in RxDelivery.Lost) and delivery
// continues. A scribbled ring header stops the batch with ErrRingCorrupt
// after resetting the ring; frames already delivered are reported, the
// rest stay queued for re-posted buffers.
func (t *Twin) DeliverPendingPosted(dom *xen.Domain, max int) (*RxDelivery, error) {
	if t.Dead {
		return nil, ErrDriverDead
	}
	g, ok := t.guestIO[dom.ID]
	if !ok {
		return nil, fmt.Errorf("%w: domain %q", ErrNoRxRing, dom.Name)
	}
	q := t.rxQueues[dom.ID]
	if q == nil || q.len() == 0 {
		return &RxDelivery{}, nil
	}
	del := &RxDelivery{}
	meter := t.M.HV.Meter
	as := t.M.Dom0.AS
	consumed := 0
	for q.len() > 0 && (max <= 0 || consumed < max) {
		addr, blen, ok, err := g.rxRing.Pop()
		if err != nil {
			// The guest scribbled its ring header: reset it (containment,
			// like the transmit ring) and stop; queued frames wait for
			// honestly re-posted buffers.
			_ = g.rxRing.Reset()
			t.ctlLane.Record(t.mMeter, telemetry.EvHostile, int32(dom.ID), 1, 0)
			t.deliverNotify(dom, del)
			return del, fmt.Errorf("core: guest %d posted-rx ring: %w", dom.ID, err)
		}
		if !ok {
			break // no posted buffer: the remainder stays queued
		}
		skb := q.popN(1)[0]
		consumed++
		data, _ := as.Load(skb+kernel.SkbData, 4)
		ln, _ := as.Load(skb+kernel.SkbLen, 4)
		// eth_type_trans pulled the 14-byte header; the guest receives the
		// full frame.
		start := data - 14
		total := int(ln) + 14
		if int(blen) < total {
			// Posted buffer too small for the frame: the guest loses it.
			t.poolFreeOrKernel(skb)
			del.Lost++
			continue
		}
		if err := t.copyToPosted(g, addr, start, total, meter); err != nil {
			// Hostile or unmapped posted address: contained to this frame.
			t.poolFreeOrKernel(skb)
			del.Lost++
			continue
		}
		del.Frames = append(del.Frames, PostedFrame{Addr: addr, Len: total})
		t.poolFreeOrKernel(skb)
	}
	t.deliverNotify(dom, del)
	return del, nil
}

// deliverNotify raises the batch's coalesced guest notification when the
// batch did anything worth notifying about, and records the delivery on
// the control lane.
func (t *Twin) deliverNotify(dom *xen.Domain, del *RxDelivery) {
	if len(del.Frames) > 0 || del.Lost > 0 {
		t.ctlLane.Record(t.mMeter, telemetry.EvPostedRx, int32(dom.ID),
			uint64(len(del.Frames)), uint64(del.Lost))
		t.Coalescer.Deliver(dom)
	}
}

// pageSpan is one page-bounded chunk of a buffer, already translated.
type pageSpan struct {
	pa    uint32 // translated address of the chunk's first byte
	bytes int
}

// pageSpans splits [addr, addr+n) at page boundaries and translates the
// start of each chunk — the per-page discipline every copy into
// separately-translated memory must follow: a buffer straddling a page
// boundary must never inherit the first page's translation for bytes on
// the second (the xmitOne header-copy bug class). All pages translate
// before the caller moves a byte, so its copy is all-or-nothing.
func pageSpans(addr uint32, n int, translate func(uint32) (uint32, error)) ([]pageSpan, error) {
	var spans []pageSpan
	for off := 0; off < n; {
		chunk := int(mem.PageSize - ((addr + uint32(off)) & mem.PageMask))
		if chunk > n-off {
			chunk = n - off
		}
		pa, err := translate(addr + uint32(off))
		if err != nil {
			return nil, err
		}
		spans = append(spans, pageSpan{pa: pa, bytes: chunk})
		off += chunk
	}
	return spans, nil
}

// copyToPosted copies total bytes of a received frame starting at dom0
// virtual address start into the guest buffer at gaddr, translating every
// destination page separately through the guest's software TLB.
func (t *Twin) copyToPosted(g *guestIO, gaddr uint32, start uint32, total int, meter *cycles.Meter) error {
	spans, err := pageSpans(gaddr, total, func(a uint32) (uint32, error) {
		return g.gtlb.Translate(meter, a)
	})
	if err != nil {
		return err
	}
	src, err := t.M.Dom0.AS.ReadBytes(start, total)
	if err != nil {
		return err
	}
	meter.AddTo(cycles.CompXen, uint64(total)*cost.HvCopyPerByte)
	phys := t.M.HV.Phys
	off := 0
	for _, s := range spans {
		meter.TouchLines(s.pa, s.bytes)
		fd := phys.FrameData(s.pa / mem.PageSize)
		if fd == nil {
			// Unreachable after the TLB's RAM check; fail closed anyway.
			return fmt.Errorf("core: posted buffer frame %#x has no RAM", s.pa/mem.PageSize)
		}
		copy(fd[s.pa&mem.PageMask:int(s.pa&mem.PageMask)+s.bytes], src[off:off+s.bytes])
		off += s.bytes
	}
	return nil
}

// GuestTLBCached reports how many page translations a guest's posted-path
// TLB currently caches (introspection for tests and diagnostics).
func (t *Twin) GuestTLBCached(dom mem.Owner) int {
	if g, ok := t.guestIO[dom]; ok {
		return g.gtlb.Cached()
	}
	return 0
}

// GuestTLBViolations reports how many hostile posted addresses a guest's
// TLB has refused over its lifetime.
func (t *Twin) GuestTLBViolations(dom mem.Owner) uint64 {
	if g, ok := t.guestIO[dom]; ok {
		return g.gtlb.Violations
	}
	return 0
}
