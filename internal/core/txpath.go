package core

import (
	"errors"
	"fmt"

	"twindrivers/internal/cost"
	"twindrivers/internal/cycles"
	"twindrivers/internal/kernel"
	"twindrivers/internal/mem"
	"twindrivers/internal/telemetry"
	"twindrivers/internal/xen"
)

// The posted-descriptor transmit path: the transmit-side mirror of
// rxpath.go. On the staging path every transmitted frame is copied from
// guest memory into a per-slot staging buffer before the hypervisor sees
// it; here the guest posts (addr, len) scatter/gather descriptors naming
// its own packet pages on a hardened guest-writable ring, and the ring
// service hands those pages to the device directly — the zero-copy
// transmit of §5.3 extended to the batched path, with the staging copy
// gone in both directions.
//
// The descriptor ring is guest-writable memory and therefore hostile
// input. Three rules keep it contained:
//
//   - Snapshot once (the TOCTOU rule): mem.Ring.Pop loads the descriptor's
//     addr/len words into its return values before advancing the head, and
//     everything after — validation, translation, the device handoff —
//     operates only on that snapshot. A guest rewriting the slot after
//     staging changes nothing the hypervisor ever reads again.
//   - Own every byte: every page of [addr, addr+len) resolves through the
//     guest's software TLB (svm.GuestTLB) before the device learns the
//     address; a descriptor naming hypervisor, dom0 or unmapped memory
//     loses that frame and nothing else.
//   - Pin until completion: the validated translations are pinned so the
//     device's DMA resolves exactly what the TLB checked. Pins are
//     released when the frame's sk_buff returns to the pool, and an abort
//     sweeps (and accounts) every pin the dead instance held.
//
// The staging path stays the bit-identical default: a twin that never
// posts a transmit descriptor charges exactly the cycles it always did.

// ErrNoTxPostRing reports a posted-transmit operation for a domain without
// a posted-transmit ring (not a guest of this twin).
var ErrNoTxPostRing = errors.New("core: domain has no posted-transmit ring")

// TxPost is one guest-posted transmit descriptor: a guest virtual address
// and the frame's byte length.
type TxPost struct {
	Addr uint32
	Len  uint32
}

// txPin is one pinned guest page translation: the machine address the
// guest TLB validated for a posted frame, held until TX completion so the
// device's DMA mapping resolves exactly what was checked.
type txPin struct {
	pa   uint32 // machine address of the page's first byte
	refs int    // posted frames currently spanning this page
}

// PostTxDescriptors publishes transmit descriptors on a guest's
// posted-transmit ring without crossing the virtualization boundary (the
// ring is shared memory, like the staging ring). It returns how many were
// posted, stopping early without error when the ring fills — the guest
// re-posts after the next service drains descriptors. The guest-side cycle
// price is the caller's (netpath charges cost.TxPostPerDesc per
// descriptor).
func (t *Twin) PostTxDescriptors(dom *xen.Domain, descs []TxPost) (int, error) {
	if t.Dead {
		return 0, ErrDriverDead
	}
	g, ok := t.guestIO[dom.ID]
	if !ok {
		return 0, fmt.Errorf("%w: domain %q", ErrNoTxPostRing, dom.Name)
	}
	posted := 0
	for _, d := range descs {
		free, err := g.txRing.Free()
		if err != nil {
			return posted, err
		}
		if free == 0 {
			return posted, nil
		}
		if err := g.txRing.Push(d.Addr, d.Len); err != nil {
			return posted, err
		}
		posted++
	}
	return posted, nil
}

// TxPostedFree reports how many more descriptors the guest can post.
func (t *Twin) TxPostedFree(dom mem.Owner) (int, error) {
	g, ok := t.guestIO[dom]
	if !ok {
		return 0, ErrNoTxPostRing
	}
	return g.txRing.Free()
}

// PostedTxPending reports how many posted transmit descriptors a guest has
// staged and not yet serviced (introspection for harnesses reconciling
// their own ledgers against the ring).
func (t *Twin) PostedTxPending(dom mem.Owner) (int, error) {
	g, ok := t.guestIO[dom]
	if !ok {
		return 0, ErrNoTxPostRing
	}
	return g.txRing.Len()
}

// PostedTxLost reports how many posted transmit frames a guest has lost to
// containment over the twin's lifetime: hostile or unmapped addresses,
// oversize lengths, or a full buffer pool. Each lost frame is counted
// exactly once, at the service that consumed its descriptor.
func (t *Twin) PostedTxLost(dom mem.Owner) uint64 {
	if g, ok := t.guestIO[dom]; ok {
		return g.postedLost
	}
	return 0
}

// PinnedTxPages reports how many distinct guest pages are currently pinned
// for in-flight posted transmits (introspection for tests and
// diagnostics). It must return to zero once every posted frame's sk_buff
// has been reclaimed.
func (t *Twin) PinnedTxPages() int { return len(t.txPins) }

// pinSpans records the validated translation of every page a posted frame
// spans, keyed by guest virtual page (guest heap regions are globally
// disjoint, so a VA page names at most one guest page machine frame). A
// page posted by two in-flight frames is reference-counted, not
// double-pinned.
func (t *Twin) pinSpans(skb, addr uint32, spans []pageSpan) {
	off := uint32(0)
	for _, sp := range spans {
		vp := (addr + off) &^ uint32(mem.PageMask)
		pp := sp.pa &^ uint32(mem.PageMask)
		if pin, ok := t.txPins[vp]; ok {
			pin.refs++
		} else {
			t.txPins[vp] = &txPin{pa: pp, refs: 1}
		}
		t.pinsBySkb[skb] = append(t.pinsBySkb[skb], vp)
		off += uint32(sp.bytes)
	}
}

// unpinSkb releases the pins a posted frame's sk_buff holds; a no-op for
// buffers that never carried a posted frame.
func (t *Twin) unpinSkb(skb uint32) {
	vps, ok := t.pinsBySkb[skb]
	if !ok {
		return
	}
	for _, vp := range vps {
		if pin, ok := t.txPins[vp]; ok {
			pin.refs--
			if pin.refs == 0 {
				delete(t.txPins, vp)
			}
		}
	}
	delete(t.pinsBySkb, skb)
}

// pinnedTranslate resolves a DMA address through the pin table: the
// machine address the guest TLB validated when the frame's descriptor was
// serviced. The boolean is false for addresses no posted frame pinned
// (copy-mode fragments resolve through the page-table walk as before).
func (t *Twin) pinnedTranslate(addr uint32) (uint32, bool) {
	pin, ok := t.txPins[addr&^uint32(mem.PageMask)]
	if !ok {
		return 0, false
	}
	return pin.pa | (addr & mem.PageMask), true
}

// xmitPosted is the hypervisor-side transmit work for one posted
// descriptor, operating entirely on the (addr, n) snapshot Pop returned.
// Validation order is length bound, then per-page ownership through the
// guest TLB — before a pooled buffer is taken or a byte moves. A
// machine-contiguous frame on a scatter/gather backend goes to the device
// zero-copy (the guest pages chained as the fragment, their translations
// pinned); a frame whose pages are not machine-contiguous, or any frame on
// a no-scatter/gather backend, falls back to a full copy into the pooled
// linear buffer — correctness everywhere, zero-copy where the hardware
// allows it. Every error return is contained to this frame.
func (t *Twin) xmitPosted(d *NICDev, g *guestIO, addr uint32, n int) error {
	if n <= 0 || n > kernel.SkbBufSize {
		t.ctlLane.Record(t.mMeter, telemetry.EvHostile, int32(g.dom.ID), 2, uint64(uint32(n)))
		return ErrFrameOversize
	}
	hv := t.M.HV
	meter := hv.Meter
	// Ownership check first: every page of the posted frame resolves
	// through the guest TLB before anything else happens. The TLB records
	// the violation and its trace event itself.
	spans, err := pageSpans(addr, n, func(a uint32) (uint32, error) {
		return g.gtlb.Translate(meter, a)
	})
	if err != nil {
		return err
	}
	// Inter-guest switch hook, after the ownership check — the switch
	// must never read through an address the guest TLB rejected. A
	// locally-delivered or spoof-dropped frame never touches the device.
	if t.vsw != nil {
		toDevice, verr := t.vswitchTx(g, addr, n)
		if verr != nil {
			return verr
		}
		if !toDevice {
			return nil
		}
	}
	skb, ok := t.poolGet()
	if !ok {
		return ErrTxBusy
	}
	as := t.M.Dom0.AS
	contig := true
	for i := 1; i < len(spans); i++ {
		if spans[i].pa != spans[i-1].pa+uint32(spans[i-1].bytes) {
			contig = false
			break
		}
	}
	fallback := !contig || t.M.Model.TxHeaderSplit == 0
	if fallback {
		// The device cannot take the guest pages directly (no
		// scatter/gather, or the frame is not machine-contiguous): copy the
		// whole frame into the pooled linear buffer, per destination page,
		// exactly like the staging path's header copy grown to full length.
		head, _ := as.Load(skb+kernel.SkbHead, 4)
		dst, err := pageSpans(head, n, func(a uint32) (uint32, error) {
			return t.SV.Translate(meter, a)
		})
		if err != nil {
			t.poolPut(skb)
			return err
		}
		gas := g.dom.AS
		off := 0
		for _, sp := range dst {
			meter.AddTo(cycles.CompXen, uint64(sp.bytes)*cost.HvCopyPerByte)
			meter.TouchLines(sp.pa, sp.bytes)
			if err := mem.Copy(hv.HVSpace, sp.pa, gas, addr+uint32(off), sp.bytes); err != nil {
				t.poolPut(skb)
				return err
			}
			off += sp.bytes
		}
		as.Store(skb+kernel.SkbNrFrags, 4, 0)
	} else {
		// Zero-copy: the whole frame rides as the fragment; the linear part
		// is empty (the driver writes a zero-length linear descriptor, which
		// the device model reads as zero bytes). The validated translations
		// are pinned before the driver runs, so dma_map_page resolves
		// exactly what the TLB checked.
		t.pinSpans(skb, addr, spans)
		as.Store(skb+kernel.SkbNrFrags, 4, 1)
		as.Store(skb+kernel.SkbFragPage, 4, addr)
		as.Store(skb+kernel.SkbFragOff, 4, 0)
		as.Store(skb+kernel.SkbFragSize, 4, uint32(n))
	}
	as.Store(skb+kernel.SkbLen, 4, uint32(n))
	as.Store(skb+kernel.SkbQueue, 4, uint32(g.queue))

	ret, err := t.invokeHV(t.xmitEntry, skb, d.Netdev)
	if err != nil {
		return err // containment abort: the teardown sweeps skb and pins
	}
	if ret != 0 {
		t.unpinSkb(skb)
		t.poolPut(skb)
		return ErrTxBusy
	}
	var fb uint64
	if fallback {
		fb = 1
	}
	t.ctlLane.Record(t.mMeter, telemetry.EvPostedTx, int32(g.dom.ID), uint64(n), fb)
	return nil
}

// servicePostedTx consumes at most one posted descriptor from a guest's
// posted-transmit ring (the per-guest step of the round-robin sweep,
// alongside the staged-ring step). The first return reports whether a
// descriptor was consumed. A corrupt ring header resets the ring and
// fails the sweep, like the staged ring's; a frame-level failure loses
// only that frame (counted in the guest's PostedTxLost) unless it killed
// the instance.
func (t *Twin) servicePostedTx(d *NICDev, g *guestIO, sent map[mem.Owner]int) (bool, error) {
	addr, n, ok, err := g.txRing.Pop()
	if err != nil {
		_ = g.txRing.Reset()
		t.ctlLane.Record(t.mMeter, telemetry.EvHostile, int32(g.dom.ID), 1, 0)
		return false, fmt.Errorf("core: guest %d posted-tx ring: %w", g.dom.ID, err)
	}
	if !ok {
		return false, nil
	}
	if err := t.xmitPosted(d, g, addr, int(n)); err != nil {
		if t.Dead {
			return true, err
		}
		// Hostile, oversize or resource-starved: contained to this frame.
		g.postedLost++
		return true, nil
	}
	sent[g.dom.ID]++
	return true, nil
}
