package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based batch invariants (testing/quick): the batched transmit
// path is an OPTIMIZATION, never a semantic change. For any frame sizes
// and any batch split, the bytes on the wire are exactly the per-packet
// path's bytes; and the hypercall rate per packet never increases with
// the batch size (the quantity netbench reports as HypercallsPerPacket).

// quickTwin builds a twin with the wire captured, positioned in guest
// context, ready for repeated property evaluations.
func quickTwin(t *testing.T) (*Machine, *Twin, *[][]byte) {
	t.Helper()
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	wire := capture(d)
	m.HV.Switch(m.DomU)
	return m, tw, wire
}

// quickFrames normalises raw quick-generated values into a workload:
// 1..24 frames of 60..1500 bytes with distinct payloads.
func quickFrames(d *NICDev, sizes []uint16) [][]byte {
	if len(sizes) == 0 {
		sizes = []uint16{600}
	}
	if len(sizes) > 24 {
		sizes = sizes[:24]
	}
	frames := make([][]byte, len(sizes))
	for i, s := range sizes {
		size := 60 + int(s)%1441 // 60..1500
		frames[i] = EthernetFrame([6]byte{2, 2, 2, 2, 2, byte(i)}, d.NIC.MAC, 0x0800, payload(size-14, byte(i*13+size)))
	}
	return frames
}

// TestQuickBatchedOutputEqualsPerPacket: for any frame sizes and any
// batch split, the concatenated batched output equals the per-packet
// output byte for byte, frame for frame.
func TestQuickBatchedOutputEqualsPerPacket(t *testing.T) {
	mA, twA, wireA := quickTwin(t) // per-packet
	mB, twB, wireB := quickTwin(t) // batched
	dA, dB := mA.Devs[0], mB.Devs[0]

	prop := func(sizes []uint16, split uint8) bool {
		*wireA, *wireB = nil, nil
		frames := quickFrames(dA, sizes)
		batch := 1 + int(split)%32

		for _, f := range frames {
			if err := twA.GuestTransmit(dA, f); err != nil {
				t.Logf("per-packet transmit: %v", err)
				return false
			}
		}
		for i := 0; i < len(frames); i += batch {
			end := i + batch
			if end > len(frames) {
				end = len(frames)
			}
			n, err := twB.GuestTransmitBatch(dB, frames[i:end])
			if err != nil || n != end-i {
				t.Logf("batched transmit: n=%d err=%v", n, err)
				return false
			}
		}
		if len(*wireA) != len(frames) || len(*wireB) != len(frames) {
			t.Logf("wire counts: per-packet %d, batched %d, want %d", len(*wireA), len(*wireB), len(frames))
			return false
		}
		concat := func(w [][]byte) []byte { return bytes.Join(w, nil) }
		if !bytes.Equal(concat(*wireA), concat(*wireB)) {
			return false
		}
		for i := range frames {
			if !bytes.Equal((*wireA)[i], frames[i]) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(0x5EED))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickPostedTxWireEqualsCopy: for any frame sizes and any batch
// split, the posted-descriptor transmit path puts exactly the copy-mode
// path's bytes on the wire, frame for frame — posted TX is an
// optimization, never a semantic change.
func TestQuickPostedTxWireEqualsCopy(t *testing.T) {
	mA, twA, wireA := quickTwin(t) // copy mode (staged batches)
	mB, twB, wireB := quickTwin(t) // posted descriptors
	dA, dB := mA.Devs[0], mB.Devs[0]

	// A reusable guest-side arena for the posted twin's frames: one slot
	// per possible frame, reused across property evaluations (a serviced
	// descriptor's buffer is free for reuse once ServiceRings returns).
	arena := make([]uint32, 24)
	for i := range arena {
		arena[i] = mB.HV.AllocHeap(mB.DomU, 2048)
	}

	prop := func(sizes []uint16, split uint8) bool {
		*wireA, *wireB = nil, nil
		frames := quickFrames(dA, sizes)
		batch := 1 + int(split)%32

		for i := 0; i < len(frames); i += batch {
			end := i + batch
			if end > len(frames) {
				end = len(frames)
			}
			if n, err := twA.GuestTransmitBatch(dA, frames[i:end]); err != nil || n != end-i {
				t.Logf("copy-mode transmit: n=%d err=%v", n, err)
				return false
			}
			var descs []TxPost
			for j := i; j < end; j++ {
				if err := mB.DomU.AS.WriteBytes(arena[j], frames[j]); err != nil {
					t.Logf("arena write: %v", err)
					return false
				}
				descs = append(descs, TxPost{Addr: arena[j], Len: uint32(len(frames[j]))})
			}
			if n, err := twB.PostTxDescriptors(mB.DomU, descs); err != nil || n != len(descs) {
				t.Logf("post: n=%d err=%v", n, err)
				return false
			}
			if _, err := twB.ServiceRings(dB, 0); err != nil {
				t.Logf("service: %v", err)
				return false
			}
		}
		if len(*wireA) != len(frames) || len(*wireB) != len(frames) {
			t.Logf("wire counts: copy %d, posted %d, want %d", len(*wireA), len(*wireB), len(frames))
			return false
		}
		for i := range frames {
			if !bytes.Equal((*wireA)[i], (*wireB)[i]) {
				t.Logf("frame %d differs between copy and posted wire", i)
				return false
			}
			if !bytes.Equal((*wireB)[i], frames[i]) {
				t.Logf("posted frame %d differs from the source frame", i)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(0x7C5EED))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickHypercallsPerPacketMonotone: for any frame size, the hypercall
// rate per packet is monotonically non-increasing in the batch size —
// batching may only amortize the boundary crossing, never add crossings.
func TestQuickHypercallsPerPacketMonotone(t *testing.T) {
	m, tw, wire := quickTwin(t)
	d := m.Devs[0]

	prop := func(rawSize uint16, rawCount uint8) bool {
		size := 60 + int(rawSize)%1441
		total := 8 + int(rawCount)%25 // 8..32 frames per measurement
		prev := -1.0                  // sentinel: first batch size sets the bar
		for _, batch := range []int{1, 2, 4, 8, 16, 32} {
			*wire = nil
			frames := make([][]byte, total)
			for i := range frames {
				frames[i] = EthernetFrame([6]byte{2, 2, 2, 2, 2, byte(i)}, d.NIC.MAC, 0x0800, payload(size-14, byte(i)))
			}
			hc0 := m.HV.Hypercalls
			for i := 0; i < total; i += batch {
				end := i + batch
				if end > total {
					end = total
				}
				if n, err := tw.GuestTransmitBatch(d, frames[i:end]); err != nil || n != end-i {
					t.Logf("batch=%d: n=%d err=%v", batch, n, err)
					return false
				}
			}
			hcpp := float64(m.HV.Hypercalls-hc0) / float64(total)
			if prev >= 0 && hcpp > prev {
				t.Logf("size=%d total=%d: hc/pkt rose from %.3f to %.3f at batch=%d", size, total, prev, hcpp, batch)
				return false
			}
			prev = hcpp
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(0xBA7C4))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
