package core

import (
	"fmt"

	"twindrivers/internal/asm"
	"twindrivers/internal/cpu"
	"twindrivers/internal/mem"
	"twindrivers/internal/rewrite"
	"twindrivers/internal/svm"
	"twindrivers/internal/telemetry"
	"twindrivers/internal/xen"
)

// hvInstance bundles everything one derivation of the hypervisor driver
// instance produces: the translating SVM with its stlb table, the laid-out
// image with its resolved entry points, and the guard-paged stack. The
// Twin's durable state (buffer pool, guest rings, routing, fault history)
// lives outside it, which is what lets transparent recovery throw a faulted
// instance away and install a fresh one while the guests keep their
// connections.
type hvInstance struct {
	sv    *svm.SVM
	image *asm.Image
	stats *rewrite.Stats

	xmitEntry uint32
	intrEntry uint32

	stackTop uint32
	guardLo  uint32
	guardHi  uint32

	// entryName maps the instance's invocable entry addresses to their
	// driver symbols, so a containment fault can be attributed to the
	// entry point that was running (FaultRecord.Entry).
	entryName map[uint32]string
}

// buildInstance runs the derivation pipeline — rewrite, translating SVM,
// gate binding (hypervisor support implementations and upcall stubs),
// image layout, twin globals — and returns the product without touching
// the Twin's live state. At bring-up, loadTwin passes the unit it already
// derived for the VM image (the twins share one rewrite); on recovery ru
// and stats are nil and the driver is re-derived from scratch — deliberate,
// the faulted image is never trusted or reused.
//
// Gate and hypervisor-page allocations are append-only in the xen model, so
// each rebuild leaks the dead instance's gates, stlb table and stack. The
// recovery supervisor bounds that two ways — K faults inside a window kill
// a fast flapper, and a lifetime recovery budget (Policy.MaxRecoveries)
// caps even a slow one — mirroring a real hypervisor that would reserve a
// fixed number of reload arenas.
func (t *Twin) buildInstance(ru *asm.Unit, stats *rewrite.Stats) (*hvInstance, error) {
	m, cfg := t.M, t.cfg
	hv, k := m.HV, m.K

	if ru == nil {
		var err error
		if ru, stats, err = rewrite.Rewrite(m.Unit, cfg.Rewrite); err != nil {
			return nil, fmt.Errorf("core: derive driver: %w", err)
		}
	}
	inst := &hvInstance{stats: stats}

	tableBytes := uint32(cfg.STLBEntries * svm.EntrySize)
	hvTable := hv.AllocHVPages(int(tableBytes+mem.PageSize-1) / mem.PageSize)
	sv, err := svm.NewSized(hv, m.Dom0, hv.HVSpace, hvTable, cfg.STLBEntries, false)
	if err != nil {
		return nil, err
	}
	inst.sv = sv
	hvSlow := hv.BindGate("__svm_slowpath.hv", func(c *cpu.CPU) (uint32, error) {
		return sv.SlowPath(c.Meter, c.Arg(0))
	})
	hvGlobals := hv.AllocHVPages(1)
	top, lo, hi := hv.AllocStack(16)
	inst.stackTop, inst.guardLo, inst.guardHi = top, lo, hi

	// Call-import resolution: hypervisor implementation, else upcall stub.
	// The support closures read the Twin's durable state (pool, queues,
	// routing) and its current SVM, so they stay correct across rebuilds.
	stubAddrs := make(map[string]uint32)
	implAddrs := make(map[string]uint32)
	for _, sym := range ru.UndefinedSymbols() {
		if !k.IsSupportRoutine(sym) {
			continue
		}
		name := sym
		if t.hvSupport[name] {
			fn, ok := hvSupportImpl(t, name)
			if !ok {
				return nil, fmt.Errorf("core: no hypervisor implementation of %q", name)
			}
			implAddrs[name] = hv.BindGate("hv."+name, fn)
			continue
		}
		impl, ok := k.Extern(name)
		if !ok {
			return nil, fmt.Errorf("core: no dom0 implementation of %q", name)
		}
		stubAddrs[name] = hv.BindGate("stub."+name, t.Upcalls.MakeStub(name, impl))
	}

	hvResolve := func(sym string) (uint32, bool) {
		switch sym {
		case rewrite.SymSTLB:
			return hvTable, true
		case rewrite.SymSlowPath:
			return hvSlow, true
		case rewrite.SymStackViolation:
			return t.stackViolGate, true
		case rewrite.SymCodeLo:
			return hvGlobals + 0, true
		case rewrite.SymCodeHi:
			return hvGlobals + 4, true
		case rewrite.SymCodeDelta:
			return hvGlobals + 8, true
		case rewrite.SymScratch:
			return hvGlobals + 12, true
		case rewrite.SymStackLo:
			return hvGlobals + 16, true
		case rewrite.SymStackHi:
			return hvGlobals + 20, true
		}
		if a, ok := implAddrs[sym]; ok {
			return a, true
		}
		if a, ok := stubAddrs[sym]; ok {
			return a, true
		}
		// Kernel data imports (jiffies) resolve to their dom0 addresses,
		// reached through SVM at run time (§5.2).
		if a, ok := k.Resolver()(sym); ok {
			return a, true
		}
		return 0, false
	}
	// Data at the same dom0 base: one copy of driver data (§3.2).
	hvIm, err := asm.Layout(m.Model.Name+"-hv", ru, xen.HVDriverCode, xen.Dom0DriverData, hvResolve)
	if err != nil {
		return nil, fmt.Errorf("core: load hypervisor instance: %w", err)
	}
	inst.image = hvIm

	// Twin globals for the hypervisor instance: the VM instance's code
	// range and the constant code delta.
	vmIm := m.VMImage
	for _, w := range []struct {
		off uint32
		val uint32
	}{
		{0, vmIm.CodeBase},
		{4, vmIm.CodeEnd},
		{8, xen.HVDriverCode - xen.Dom0DriverCode},
		{16, lo},
		{20, hi},
	} {
		if err := hv.HVSpace.Store(hvGlobals+w.off, 4, w.val); err != nil {
			return nil, err
		}
	}

	var ok bool
	entries := m.Model.Entries
	if inst.xmitEntry, ok = hvIm.FuncEntry(entries.Xmit); !ok {
		return nil, fmt.Errorf("core: derived driver lacks %s", entries.Xmit)
	}
	if inst.intrEntry, ok = hvIm.FuncEntry(entries.Intr); !ok {
		return nil, fmt.Errorf("core: derived driver lacks %s", entries.Intr)
	}
	inst.entryName = map[uint32]string{
		inst.xmitEntry: entries.Xmit,
		inst.intrEntry: entries.Intr,
	}
	return inst, nil
}

// installInstance makes a built instance the Twin's live one: its image
// becomes executable and the Twin's public handles (SV, HVImage,
// RewriteStats) and entry/stack caches point at it.
func (t *Twin) installInstance(inst *hvInstance) {
	t.SV = inst.sv
	t.HVImage = inst.image
	t.RewriteStats = inst.stats
	t.xmitEntry, t.intrEntry = inst.xmitEntry, inst.intrEntry
	t.stackTop, t.guardLo, t.guardHi = inst.stackTop, inst.guardLo, inst.guardHi
	t.entryName = inst.entryName
	t.M.HV.CPU.AddImage(inst.image)
}

// Revive brings a dead twin back: it re-derives a fresh hypervisor
// instance through the same rewrite/layout pipeline used at bring-up,
// installs it, and replays the recorded configuration history (probe, open
// with its IRQ registration and watchdog re-arm, guest MAC routes, guest
// transmit rings). The abort that killed the previous instance already
// returned in-flight pooled buffers, reset the guest rings and closed any
// open coalescing window, so Revive starts from clean durable state.
//
// Revive is the mechanism; policy — when to revive, how often, when to
// give up — belongs to internal/recovery's supervisor.
func (t *Twin) Revive() error {
	if !t.Dead {
		return nil
	}
	inst, err := t.buildInstance(nil, nil)
	if err != nil {
		return fmt.Errorf("core: re-derive instance: %w", err)
	}
	t.installInstance(inst)
	if err := t.replayConfig(); err != nil {
		// The fresh instance never went live: keep the twin dead rather
		// than half-configured.
		t.M.CPU.RemoveImage(inst.image)
		return fmt.Errorf("core: replay configuration: %w", err)
	}
	t.ctlLane.Record(t.mMeter, telemetry.EvReplay, -1, uint64(len(t.M.Config.Events)), 0)
	t.Dead = false
	t.ctlLane.Record(t.mMeter, telemetry.EvRevive, -1, t.Faults, 0)
	return nil
}
