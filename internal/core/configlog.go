package core

import (
	"errors"
	"fmt"

	"twindrivers/internal/kernel"
	"twindrivers/internal/mem"
	"twindrivers/internal/vswitch"
)

// The configuration log is the shadow-driver half of transparent recovery:
// during normal operation the machine records, as a replayable object log,
// every configuration action that shaped the driver's state — netdev
// creation (the module loader's owned fields), probe, open (which performs
// the IRQ registration and ring programming), guest MAC routing and guest
// transmit-ring formatting. When the hypervisor instance faults, the
// supervisor re-derives a fresh instance and replays this log to bring the
// device, the dom0-side driver data and the guest rings back to an
// equivalent state, without the guests ever detaching.

// ConfigOp tags one replayable configuration event.
type ConfigOp uint8

// Configuration event kinds, in the order bring-up records them.
const (
	// OpNetdev restores the module-loader-owned net_device fields (the
	// priv pointer) before the driver's probe touches them: a wild write
	// may have scribbled exactly these words, and replaying probe over a
	// corrupt priv pointer would spread the damage instead of healing it.
	OpNetdev ConfigOp = iota

	// OpProbe replays the driver's probe entry point through the VM
	// instance (initialisation always runs in dom0, §3.1 of the paper).
	OpProbe

	// OpOpen replays the driver's open: IRQ registration, descriptor-ring
	// programming, RX fill, watchdog-timer arming.
	OpOpen

	// OpGuestMAC re-asserts a receive-demultiplex route.
	OpGuestMAC

	// OpRing reformats and re-attaches a guest's transmit descriptor ring
	// at its recorded base (the guest keeps the same mapping; recovery
	// must not move it).
	OpRing

	// OpRxRing reformats and re-attaches a guest's posted-receive
	// descriptor ring at its recorded base, and shoots down the guest's
	// translation cache: descriptors and translations that served the dead
	// instance must never leak into its successor — the guests re-post
	// their buffers after recovery.
	OpRxRing

	// OpTxRing reformats and re-attaches a guest's posted-transmit
	// descriptor ring at its recorded base, shoots down the guest's
	// translation cache and drops any surviving posted-TX pins: a revived
	// instance must never service a descriptor, trust a translation or DMA
	// through a pin that belonged to its dead predecessor.
	OpTxRing
)

// ConfigEvent is one entry of the log. Fields are used per-op: Dev indexes
// Machine.Devs for OpNetdev/OpProbe/OpOpen; Dom and MAC describe OpGuestMAC;
// Dom, Addr (ring base) and Aux (slot count) describe OpRing; Addr/Aux carry
// the net_device address and priv pointer for OpNetdev.
//
// Args carries the concrete argument words of an OpProbe event. Probe
// arity is a property of the driver model (the e1000 probe takes three
// arguments, the rtl8139 probe four), so the event records exactly what
// bring-up passed instead of replay re-deriving it from one backend's
// signature — the conformance sweep caught replay assuming e1000's
// (netdev, mmio, irq) triple and truncating the rtl8139's ring-size word.
type ConfigEvent struct {
	Op   ConfigOp
	Dev  int
	Dom  mem.Owner
	MAC  [6]byte
	Addr uint32
	Aux  uint32
	Args []uint32
}

// ConfigLog is an append-only record of configuration history.
type ConfigLog struct {
	Events []ConfigEvent
}

// record appends one event.
func (l *ConfigLog) record(ev ConfigEvent) {
	l.Events = append(l.Events, ev)
}

// ErrConfigCorrupt reports a configuration log that fails validation:
// an unknown op, a device index outside the machine, a probe event with
// no recorded arguments, a ring event whose geometry mem.Ring would
// refuse, or a log missing the netdev/probe/open history a device needs
// to come back. Replay fails closed on it — Revive removes the fresh
// instance and leaves the twin dead — because replaying a damaged log
// would install an instance whose state matches nothing the guests ever
// configured.
var ErrConfigCorrupt = errors.New("core: configuration log corrupt")

// validateConfig checks the recorded history before replay touches any
// state: every event must be structurally sound, and every device must
// retain the netdev/probe/open triple bring-up recorded — a truncated log
// must not half-install an instance whose device was never probed or
// opened.
func (t *Twin) validateConfig() error {
	m := t.M
	type devSeen struct{ netdev, probe, open bool }
	seen := make([]devSeen, len(m.Devs))
	for i, ev := range m.Config.Events {
		switch ev.Op {
		case OpNetdev:
			if ev.Dev < 0 || ev.Dev >= len(m.Devs) {
				return fmt.Errorf("%w: event %d: netdev device index %d of %d", ErrConfigCorrupt, i, ev.Dev, len(m.Devs))
			}
			// Replay heals this event with a store to Addr+NdPriv; pin the
			// address to the device it claims to describe so a scribbled
			// log cannot steer that store anywhere else in dom0 memory.
			if ev.Addr != m.Devs[ev.Dev].Netdev {
				return fmt.Errorf("%w: event %d: netdev address %#x is not device %d's", ErrConfigCorrupt, i, ev.Addr, ev.Dev)
			}
			seen[ev.Dev].netdev = true
		case OpProbe:
			if ev.Dev < 0 || ev.Dev >= len(m.Devs) {
				return fmt.Errorf("%w: event %d: probe device index %d of %d", ErrConfigCorrupt, i, ev.Dev, len(m.Devs))
			}
			if len(ev.Args) == 0 {
				return fmt.Errorf("%w: event %d: probe with no recorded arguments", ErrConfigCorrupt, i)
			}
			seen[ev.Dev].probe = true
		case OpOpen:
			if ev.Dev < 0 || ev.Dev >= len(m.Devs) {
				return fmt.Errorf("%w: event %d: open device index %d of %d", ErrConfigCorrupt, i, ev.Dev, len(m.Devs))
			}
			seen[ev.Dev].open = true
		case OpGuestMAC:
			// Any MAC/domain pair is representable; unknown domains are
			// routes to departed guests and replay keeps them verbatim.
		case OpRing, OpRxRing, OpTxRing:
			// Mirror mem.InitRing's geometry checks so a scribbled slot
			// count fails the whole replay up front instead of mid-way.
			c := int(ev.Aux)
			if c <= 0 || c&(c-1) != 0 || c > mem.MaxRingSlots {
				return fmt.Errorf("%w: event %d: ring capacity %d", ErrConfigCorrupt, i, ev.Aux)
			}
		default:
			return fmt.Errorf("%w: event %d: unknown op %d", ErrConfigCorrupt, i, ev.Op)
		}
	}
	for dev, s := range seen {
		if !s.netdev || !s.probe || !s.open {
			return fmt.Errorf("%w: device %d history incomplete (netdev=%v probe=%v open=%v)",
				ErrConfigCorrupt, dev, s.netdev, s.probe, s.open)
		}
	}
	return nil
}

// replayConfig drives the recorded configuration history into a freshly
// installed hypervisor instance. Probe and open run through the VM driver
// instance exactly as at bring-up; ring and MAC events rebuild the
// twin-side routing and guest I/O state in place. The log is validated in
// full before any event executes (fail closed: see ErrConfigCorrupt), and
// the MAC routing table is rebuilt from scratch — every route comes from
// the log, so a replay that fails mid-way can never leave a route no
// recorded event asserts.
func (t *Twin) replayConfig() error {
	if err := t.validateConfig(); err != nil {
		return err
	}
	m := t.M
	t.macToDom = make(map[[6]byte]mem.Owner)
	for _, ev := range m.Config.Events {
		switch ev.Op {
		case OpNetdev:
			if err := m.Dom0.AS.Store(ev.Addr+kernel.NdPriv, 4, ev.Aux); err != nil {
				return err
			}
		case OpProbe:
			d := m.Devs[ev.Dev]
			// register_netdev will re-add the device; drop the stale entry.
			m.K.DropNetdev(d.Netdev)
			// Replay the recorded argument words: the model owns the probe
			// arity, and the event recorded exactly what bring-up passed.
			if _, err := m.CallDriver(m.Model.Entries.Probe, ev.Args...); err != nil {
				return err
			}
		case OpOpen:
			if _, err := m.CallDriver(m.Model.Entries.Open, m.Devs[ev.Dev].Netdev); err != nil {
				return err
			}
		case OpGuestMAC:
			t.macToDom[ev.MAC] = ev.Dom
			if t.vsw != nil {
				// The switch's authoritative static table is rebuilt
				// from the same recorded routes as the demux table.
				t.vsw.BindStatic(vswitch.MAC(ev.MAC), ev.Dom)
			}
		case OpRing:
			g, ok := t.guestIO[ev.Dom]
			if !ok {
				continue
			}
			ring, err := mem.InitRing(g.dom.AS, ev.Addr, int(ev.Aux))
			if err != nil {
				return err
			}
			g.ring = ring
		case OpRxRing:
			g, ok := t.guestIO[ev.Dom]
			if !ok {
				continue
			}
			ring, err := mem.InitRing(g.dom.AS, ev.Addr, int(ev.Aux))
			if err != nil {
				return err
			}
			g.rxRing = ring
			g.gtlb.Invalidate()
		case OpTxRing:
			g, ok := t.guestIO[ev.Dom]
			if !ok {
				continue
			}
			ring, err := mem.InitRing(g.dom.AS, ev.Addr, int(ev.Aux))
			if err != nil {
				return err
			}
			g.txRing = ring
			g.gtlb.Invalidate()
			// The TLB shootdown's DMA counterpart: no pin outlives the
			// instance whose TLB validated it (the abort already swept
			// them; replay re-asserts the invariant idempotently).
			t.txPins = make(map[uint32]*txPin)
			t.pinsBySkb = make(map[uint32][]uint32)
		}
	}
	return nil
}
