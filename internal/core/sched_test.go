package core_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"twindrivers/internal/core"
	"twindrivers/internal/mem"
	"twindrivers/internal/mqnic"
)

// DRR weighted-fair scheduler properties (testing/quick, like the batch
// monotonicity properties): proportional shares, work conservation,
// starvation freedom, and rate-limit enforcement — the SLA contract of
// TwinConfig.Weights/Rates stated as machine-checked invariants.

// schedTwin builds a single-queue e1000 twin with nGuests guests and
// the given scheduler config, wire sunk.
func schedTwin(t *testing.T, nGuests int, cfg core.TwinConfig) (*core.Machine, *core.Twin, *core.NICDev) {
	t.Helper()
	m, tw, err := core.NewTwinMachine(1, nGuests, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	d.NIC.OnTransmit = func([]byte) {}
	return m, tw, d
}

// schedFrame builds one minimal frame tagged with the staging guest.
func schedFrame(gi, i int) []byte {
	return core.EthernetFrame(
		[6]byte{0, 0x50, 0x56, 9, 9, 9}, // external dst: never switch-local
		[6]byte{0x02, 0x5C, 0, 0, byte(gi), byte(i)},
		0x0800, []byte{byte(gi), byte(i)})
}

// topUp keeps every guest's staged ring full.
func topUp(t *testing.T, m *core.Machine, tw *core.Twin, gi int) {
	t.Helper()
	dom := m.Guests[gi]
	n, err := tw.StagedTx(dom.ID)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([][]byte, core.TxRingSlots-1-n)
	for i := range frames {
		frames[i] = schedFrame(gi, i)
	}
	if len(frames) == 0 {
		return
	}
	if _, err := tw.StageTransmitBatch(dom, frames); err != nil {
		t.Fatalf("guest %d stage: %v", gi, err)
	}
}

// TestQuickSchedProportionalShares: with every guest continuously
// backlogged, long-run throughput shares are proportional to weights
// within 5%, for any weight vector.
func TestQuickSchedProportionalShares(t *testing.T) {
	prop := func(rawW [4]uint8) bool {
		weights := make([]int, 4)
		totalW := 0
		for i, w := range rawW {
			weights[i] = 1 + int(w)%8
			totalW += weights[i]
		}
		m, tw, d := schedTwin(t, 4, core.TwinConfig{Weights: weights})
		sent := make(map[mem.Owner]int)
		const crossings = 40
		const budget = 24
		for c := 0; c < crossings; c++ {
			for gi := range m.Guests {
				topUp(t, m, tw, gi)
			}
			got, err := tw.ServiceRings(d, budget)
			if err != nil {
				t.Logf("service: %v", err)
				return false
			}
			for id, n := range got {
				sent[id] += n
			}
		}
		total := crossings * budget
		for gi, dom := range m.Guests {
			want := float64(total) * float64(weights[gi]) / float64(totalW)
			got := float64(sent[dom.ID])
			if got < want*0.95 || got > want*1.05 {
				t.Logf("weights=%v guest %d: got %.0f want %.0f±5%%", weights, gi, got, want)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 6, Rand: rand.New(rand.NewSource(0xD22))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickSchedWorkConserving: idle guests donate their bandwidth —
// with only one guest backlogged, it receives the entire budget no
// matter how the weights favor the idle guests.
func TestQuickSchedWorkConserving(t *testing.T) {
	prop := func(rawActive uint8, rawW [4]uint8) bool {
		weights := make([]int, 4)
		for i, w := range rawW {
			weights[i] = 1 + int(w)%8
		}
		active := int(rawActive) % 4
		m, tw, d := schedTwin(t, 4, core.TwinConfig{Weights: weights})
		const budget = 16
		topUp(t, m, tw, active)
		sent, err := tw.ServiceRings(d, budget)
		if err != nil {
			t.Logf("service: %v", err)
			return false
		}
		if got := sent[m.Guests[active].ID]; got != budget {
			t.Logf("weights=%v active=%d: got %d of budget %d", weights, active, got, budget)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 8, Rand: rand.New(rand.NewSource(0xC0572))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickSchedStarvationFree: one full deficit round serves every
// backlogged guest exactly its weight — so with a budget of one
// round's quantum sum, even the lightest guest progresses. This is the
// starvation proof: no weight vector can shut a backlogged guest out.
func TestQuickSchedStarvationFree(t *testing.T) {
	prop := func(rawW [6]uint8) bool {
		weights := make([]int, 6)
		totalW := 0
		for i, w := range rawW {
			weights[i] = 1 + int(w)%5
			totalW += weights[i]
		}
		m, tw, d := schedTwin(t, 6, core.TwinConfig{Weights: weights})
		for gi := range m.Guests {
			topUp(t, m, tw, gi)
		}
		sent, err := tw.ServiceRings(d, totalW)
		if err != nil {
			t.Logf("service: %v", err)
			return false
		}
		for gi, dom := range m.Guests {
			if sent[dom.ID] != weights[gi] {
				t.Logf("weights=%v guest %d: got %d, want exactly its weight %d in one round",
					weights, gi, sent[dom.ID], weights[gi])
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 8, Rand: rand.New(rand.NewSource(0x57A12))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestSchedRateLimit: a rate-capped guest consumes exactly its cap per
// crossing regardless of backlog or weight, and the leftover service
// goes to the others (the cap is a ceiling, not a reservation).
func TestSchedRateLimit(t *testing.T) {
	m, tw, d := schedTwin(t, 3, core.TwinConfig{
		Weights: []int{8, 1, 1},
		Rates:   []int{3, 0, 0},
	})
	for gi := range m.Guests {
		topUp(t, m, tw, gi)
	}
	sent, err := tw.ServiceRings(d, 0) // full drain
	if err != nil {
		t.Fatal(err)
	}
	if got := sent[m.Guests[0].ID]; got != 3 {
		t.Fatalf("capped guest sent %d, rate is 3", got)
	}
	// Uncapped guests drain completely despite the heavy neighbor's
	// weight advantage.
	for _, gi := range []int{1, 2} {
		if got := sent[m.Guests[gi].ID]; got != core.TxRingSlots-1 {
			t.Fatalf("uncapped guest %d sent %d, want full ring %d", gi, got, core.TxRingSlots-1)
		}
	}
	// Next crossing: the cap is per crossing, so the capped guest moves
	// again.
	sent, err = tw.ServiceRings(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := sent[m.Guests[0].ID]; got != 3 {
		t.Fatalf("capped guest sent %d on second crossing, rate is 3", got)
	}
}

// TestSchedEqualWeightsMatchClassic: explicit equal weights produce
// exactly the classic round-robin's per-guest counts and wire order on
// a full drain — DRR with unit quantum degenerates to round-robin.
func TestSchedEqualWeightsMatchClassic(t *testing.T) {
	run := func(cfg core.TwinConfig) (map[mem.Owner]int, [][]byte) {
		m, tw, err := core.NewTwinMachine(1, 4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		d := m.Devs[0]
		var wire [][]byte
		d.NIC.OnTransmit = func(pkt []byte) { wire = append(wire, append([]byte(nil), pkt...)) }
		for gi, dom := range m.Guests {
			frames := make([][]byte, 5+gi)
			for i := range frames {
				frames[i] = schedFrame(gi, i)
			}
			if _, err := tw.StageTransmitBatch(dom, frames); err != nil {
				t.Fatal(err)
			}
		}
		sent, err := tw.ServiceRings(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		return sent, wire
	}
	classicSent, classicWire := run(core.TwinConfig{})
	drrSent, drrWire := run(core.TwinConfig{Weights: []int{1, 1, 1, 1}})
	for dom, n := range classicSent {
		if drrSent[dom] != n {
			t.Fatalf("guest %d: classic sent %d, unit-weight DRR sent %d", dom, n, drrSent[dom])
		}
	}
	if len(classicWire) != len(drrWire) {
		t.Fatalf("wire counts differ: classic %d, DRR %d", len(classicWire), len(drrWire))
	}
	for i := range classicWire {
		if !bytes.Equal(classicWire[i], drrWire[i]) {
			t.Fatalf("wire frame %d differs between classic and unit-weight DRR", i)
		}
	}
}

// TestServiceAllQueuesDRR: the weighted-fair sweep under the parallel
// goroutine-per-queue service loops (run under -race in CI). Weights
// apply within each queue's shard; the total drained must equal the
// total staged and shares inside each shard follow the weights.
func TestServiceAllQueuesDRR(t *testing.T) {
	const guests, queues = 8, 4
	m, tw, err := core.NewTwinMachineModel(1, guests, mqnic.DriverModel(), core.TwinConfig{
		Queues:  queues,
		Weights: []int{3, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	d.Dev.SetOnTransmit(func([]byte) {})
	total := 0
	for gi, dom := range m.Guests {
		frames := make([][]byte, 12)
		for i := range frames {
			frames[i] = schedFrame(gi, i)
		}
		n, err := tw.StageTransmitBatch(dom, frames)
		if err != nil {
			t.Fatalf("guest %d stage: %v", gi, err)
		}
		total += n
	}
	sent, err := tw.ServiceAllQueues(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for _, n := range sent {
		got += n
	}
	if got != total {
		t.Fatalf("drained %d of %d staged", got, total)
	}
	for gi, dom := range m.Guests {
		if w := tw.GuestWeight(dom.ID); w != []int{3, 1}[gi%2] {
			t.Fatalf("guest %d weight = %d", gi, w)
		}
	}
}
