package core

import (
	"bytes"
	"errors"
	"testing"

	"twindrivers/internal/drivermodel"
	"twindrivers/internal/kernel"
	"twindrivers/internal/mem"
)

// Posted-descriptor transmit path tests: byte-exact zero-copy transmit,
// hostile-descriptor containment (including TOCTOU rewrite-after-stage and
// double-posting), page-straddle fail-closed behaviour, pin lifecycle
// across TX completion and abort/revive, and the TX-side guest-TLB hit
// rate.

// postedTxSetup brings up a twin with wire capture and returns n guest
// frame buffers, each 2048 bytes, plus the frames written into them.
func postedTxSetup(t *testing.T, model *drivermodel.Model, n, size int) (*Machine, *Twin, *NICDev, *[][]byte, []uint32, [][]byte) {
	t.Helper()
	m, tw, err := NewTwinMachineModel(1, 1, model, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	got := captureDev(d)
	m.HV.Switch(m.DomU)
	var bufs []uint32
	var frames [][]byte
	for i := 0; i < n; i++ {
		buf := m.HV.AllocHeap(m.DomU, 2048)
		f := EthernetFrame([6]byte{2, 2, 2, 2, 2, 2}, d.Dev.HWAddr(), 0x0800, payload(size+i*13, byte(i)))
		if err := m.DomU.AS.WriteBytes(buf, f); err != nil {
			t.Fatal(err)
		}
		bufs = append(bufs, buf)
		frames = append(frames, f)
	}
	return m, tw, d, got, bufs, frames
}

// postAll posts one descriptor per buffer/frame pair.
func postAll(t *testing.T, tw *Twin, m *Machine, bufs []uint32, frames [][]byte) {
	t.Helper()
	var descs []TxPost
	for i, buf := range bufs {
		descs = append(descs, TxPost{Addr: buf, Len: uint32(len(frames[i]))})
	}
	if n, err := tw.PostTxDescriptors(m.DomU, descs); err != nil || n != len(descs) {
		t.Fatalf("posted %d of %d: %v", n, len(descs), err)
	}
}

// TestPostedTxByteExact: posted frames reach the wire byte-exact and in
// order, per backend — zero-copy on a scatter/gather backend, through the
// linear-copy fallback on one without.
func TestPostedTxByteExact(t *testing.T) {
	for _, model := range rxModels() {
		t.Run(model.Name, func(t *testing.T) {
			const n = 8
			m, tw, d, got, bufs, frames := postedTxSetup(t, model, n, 400)
			postAll(t, tw, m, bufs, frames)
			sent, err := tw.ServiceRings(d, 0)
			if err != nil {
				t.Fatal(err)
			}
			if sent[m.DomU.ID] != n {
				t.Fatalf("sent %d, want %d", sent[m.DomU.ID], n)
			}
			if len(*got) != n {
				t.Fatalf("wire carries %d frames, want %d", len(*got), n)
			}
			for i, f := range *got {
				if !bytes.Equal(f, frames[i]) {
					t.Errorf("wire frame %d differs from the posted frame (%d vs %d bytes)", i, len(f), len(frames[i]))
				}
			}
			if lost := tw.PostedTxLost(m.DomU.ID); lost != 0 {
				t.Errorf("honest posted transmit lost %d frames", lost)
			}
		})
	}
}

// TestPostedTxPinLifecycle: a serviced posted frame's guest pages stay
// pinned while its sk_buff is in flight and unpin at TX completion; the
// pool conserves.
func TestPostedTxPinLifecycle(t *testing.T) {
	m, tw, d, _, bufs, frames := postedTxSetup(t, nil, 4, 500)
	postAll(t, tw, m, bufs, frames)
	if _, err := tw.ServiceRings(d, 0); err != nil {
		t.Fatal(err)
	}
	// The driver's TX-clean frees completed buffers on each xmit; the last
	// frame's sk_buff (and its pin) is still in flight after the batch.
	if tw.PinnedTxPages() == 0 {
		t.Fatal("no pages pinned with a posted frame in flight")
	}
	if err := tw.HandleIRQ(d); err != nil {
		t.Fatal(err)
	}
	if tw.PinnedTxPages() != 0 {
		t.Fatalf("%d pages still pinned after TX completion", tw.PinnedTxPages())
	}
	if tw.PoolOutstanding() != 0 {
		t.Fatalf("%d pooled buffers outstanding after completion", tw.PoolOutstanding())
	}
}

// TestPostedTxHostileDescriptorContained: descriptors naming hypervisor
// memory, dom0 memory, an unmapped page, or an oversize length lose
// exactly their own frame. The twin stays alive, honest descriptors around
// them still transmit byte-exact, and not a byte from outside guest memory
// reaches the wire.
func TestPostedTxHostileDescriptorContained(t *testing.T) {
	for _, model := range rxModels() {
		t.Run(model.Name, func(t *testing.T) {
			m, tw, d, got, bufs, frames := postedTxSetup(t, model, 2, 300)
			hvAddr := tw.HVImage.CodeBase
			hvBefore, _ := m.HV.HVSpace.Load(hvAddr, 4)
			dom0Addr := d.Netdev
			dom0Before, _ := m.Dom0.AS.Load(dom0Addr, 4)
			descs := []TxPost{
				{Addr: bufs[0], Len: uint32(len(frames[0]))}, // honest
				{Addr: hvAddr, Len: 600},                     // hypervisor range
				{Addr: dom0Addr, Len: 600},                   // dom0 range
				{Addr: 0x00000040, Len: 600},                 // unmapped guest page
				{Addr: bufs[1], Len: 0xFFFF},                 // oversize length word
				{Addr: bufs[1], Len: uint32(len(frames[1]))}, // honest again
			}
			if n, err := tw.PostTxDescriptors(m.DomU, descs); err != nil || n != len(descs) {
				t.Fatalf("posted %d: %v", n, err)
			}
			viol := tw.GuestTLBViolations(m.DomU.ID)
			if _, err := tw.ServiceRings(d, 0); err != nil {
				t.Fatalf("hostile descriptors errored the sweep: %v", err)
			}
			if tw.Dead {
				t.Fatal("hostile posted-TX descriptor killed the twin")
			}
			if len(*got) != 2 {
				t.Fatalf("wire carries %d frames, want the 2 honest ones", len(*got))
			}
			if !bytes.Equal((*got)[0], frames[0]) || !bytes.Equal((*got)[1], frames[1]) {
				t.Error("honest frames corrupted around hostile descriptors")
			}
			if lost := tw.PostedTxLost(m.DomU.ID); lost != 4 {
				t.Errorf("lost %d frames, want exactly the 4 hostile ones", lost)
			}
			// The three bad addresses each recorded a TLB violation (the
			// oversize length is refused before translation).
			if d := tw.GuestTLBViolations(m.DomU.ID) - viol; d != 3 {
				t.Errorf("guest TLB recorded %d violations, want 3", d)
			}
			if v, _ := m.HV.HVSpace.Load(hvAddr, 4); v != hvBefore {
				t.Error("hostile descriptor disturbed hypervisor memory")
			}
			if v, _ := m.Dom0.AS.Load(dom0Addr, 4); v != dom0Before {
				t.Error("hostile descriptor disturbed dom0 memory")
			}
		})
	}
}

// TestPostedTxTOCTOURewriteAfterStage: a guest posting an honest
// descriptor and rewriting the slot's length word afterwards cannot get
// yesterday's validation applied to today's words — the service snapshots
// the slot exactly once, at Pop, so the rewritten (oversize) value is what
// gets validated, and only that frame is lost.
func TestPostedTxTOCTOURewriteAfterStage(t *testing.T) {
	m, tw, d, got, bufs, frames := postedTxSetup(t, nil, 2, 300)
	postAll(t, tw, m, bufs, frames)
	// Rewrite the first posted slot's length word after staging, before
	// service: the descriptor the guest validated-looking posted now claims
	// an oversize frame.
	var base uint32
	for _, ev := range m.Config.Events {
		if ev.Op == OpTxRing && ev.Dom == m.DomU.ID {
			base = ev.Addr
		}
	}
	if base == 0 {
		t.Fatal("no recorded posted-TX ring base")
	}
	tail, _ := m.DomU.AS.Load(base+8, 4)
	slot := (tail - 2) % TxRingSlots // first of the two posted descriptors
	if err := m.DomU.AS.Store(base+16+slot*8+4, 4, 0xFFFF); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.ServiceRings(d, 0); err != nil {
		t.Fatal(err)
	}
	if tw.Dead {
		t.Fatal("TOCTOU rewrite killed the twin")
	}
	if len(*got) != 1 || !bytes.Equal((*got)[0], frames[1]) {
		t.Fatalf("wire carries %d frames; want only the untouched second frame", len(*got))
	}
	if lost := tw.PostedTxLost(m.DomU.ID); lost != 1 {
		t.Fatalf("lost %d frames, want exactly the rewritten one", lost)
	}
}

// TestPostedTxDoublePost: the same guest buffer posted twice transmits
// twice, byte-exact — the pin table reference-counts the shared pages, and
// both completions release cleanly.
func TestPostedTxDoublePost(t *testing.T) {
	m, tw, d, got, bufs, frames := postedTxSetup(t, nil, 1, 700)
	descs := []TxPost{
		{Addr: bufs[0], Len: uint32(len(frames[0]))},
		{Addr: bufs[0], Len: uint32(len(frames[0]))},
	}
	if n, err := tw.PostTxDescriptors(m.DomU, descs); err != nil || n != 2 {
		t.Fatalf("posted %d: %v", n, err)
	}
	if _, err := tw.ServiceRings(d, 0); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 2 || !bytes.Equal((*got)[0], frames[0]) || !bytes.Equal((*got)[1], frames[0]) {
		t.Fatalf("double-posted buffer put %d frames on the wire, want 2 identical", len(*got))
	}
	if err := tw.HandleIRQ(d); err != nil {
		t.Fatal(err)
	}
	if tw.PinnedTxPages() != 0 {
		t.Fatalf("%d pages still pinned after both completions", tw.PinnedTxPages())
	}
}

// TestPostedTxStraddleUnmappedFailsClosed: a descriptor whose frame
// straddles from a mapped page into an unmapped successor page fails
// closed — the whole frame is refused before a byte moves (all pages
// translate up front, the same all-or-nothing discipline
// TestXmitHeaderCopyStraddlesPages pins on the copy path), the frame is
// lost, and the twin survives.
func TestPostedTxStraddleUnmappedFailsClosed(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	got := captureDev(d)
	m.HV.Switch(m.DomU)
	// Pad the guest heap so a 16-byte allocation ends exactly at a page
	// boundary: the frame posted from it straddles into the next page,
	// which AllocHeap has not mapped yet.
	probe := m.HV.AllocHeap(m.DomU, 4)
	pad := (mem.PageSize - int((probe+4)&mem.PageMask) - 16 + mem.PageSize) % mem.PageSize
	if pad > 0 {
		m.HV.AllocHeap(m.DomU, uint32(pad))
	}
	buf := m.HV.AllocHeap(m.DomU, 16)
	if buf&mem.PageMask != mem.PageSize-16 {
		t.Fatalf("buffer at %#x, want offset PageSize-16", buf)
	}
	viol := tw.GuestTLBViolations(m.DomU.ID)
	if n, err := tw.PostTxDescriptors(m.DomU, []TxPost{{Addr: buf, Len: 600}}); err != nil || n != 1 {
		t.Fatalf("post: %d, %v", n, err)
	}
	if _, err := tw.ServiceRings(d, 0); err != nil {
		t.Fatal(err)
	}
	if tw.Dead {
		t.Fatal("straddling descriptor killed the twin")
	}
	if len(*got) != 0 {
		t.Fatalf("%d frames reached the wire from an unmapped straddle", len(*got))
	}
	if lost := tw.PostedTxLost(m.DomU.ID); lost != 1 {
		t.Fatalf("lost %d, want the one straddling frame", lost)
	}
	if tw.GuestTLBViolations(m.DomU.ID) == viol {
		t.Error("straddle refusal not recorded as a TLB violation")
	}
	if tw.PinnedTxPages() != 0 {
		t.Error("failed descriptor left pages pinned")
	}
}

// TestPostedTxRingScribbleContained: a guest scribbling its posted-TX ring
// header gets ErrRingCorrupt, a ring reset, and a live twin; honest
// re-posting resumes transmission.
func TestPostedTxRingScribbleContained(t *testing.T) {
	m, tw, d, got, bufs, frames := postedTxSetup(t, nil, 1, 400)
	var base uint32
	for _, ev := range m.Config.Events {
		if ev.Op == OpTxRing && ev.Dom == m.DomU.ID {
			base = ev.Addr
		}
	}
	if base == 0 {
		t.Fatal("no recorded posted-TX ring base")
	}
	if err := m.DomU.AS.Store(base+8, 4, 0xFFFF0000); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.ServiceRings(d, 0); !errors.Is(err, mem.ErrRingCorrupt) {
		t.Fatalf("scribbled ring header: %v", err)
	}
	if tw.Dead {
		t.Fatal("ring scribble killed the twin")
	}
	postAll(t, tw, m, bufs, frames)
	if _, err := tw.ServiceRings(d, 0); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 || !bytes.Equal((*got)[0], frames[0]) {
		t.Fatalf("re-posted transmit after reset: %d frames", len(*got))
	}
}

// TestAbortDiscardsPostedTx: an abort discards staged posted-TX
// descriptors (accounted in AbortStats), releases every pin, and shoots
// down the guest TLB; after Revive the ring is clean and re-posted
// descriptors transmit again.
func TestAbortDiscardsPostedTx(t *testing.T) {
	m, tw, d, got, bufs, frames := postedTxSetup(t, nil, 3, 500)
	// Transmit one posted frame first so a pin is in flight at the abort.
	if n, err := tw.PostTxDescriptors(m.DomU, []TxPost{{Addr: bufs[0], Len: uint32(len(frames[0]))}}); err != nil || n != 1 {
		t.Fatalf("post: %d, %v", n, err)
	}
	if _, err := tw.ServiceRings(d, 0); err != nil {
		t.Fatal(err)
	}
	if tw.PinnedTxPages() == 0 {
		t.Fatal("no pin in flight before the abort")
	}
	// Stage two more the dead instance will never service.
	postAll(t, tw, m, bufs[1:], frames[1:])
	// Kill the instance with the generic wild write.
	if err := m.Dom0.AS.Store(d.Netdev+kernel.NdPriv, 4, 0xF1000040); err != nil {
		t.Fatal(err)
	}
	err := tw.GuestTransmit(d, frames[0])
	if !errors.Is(err, ErrDriverDead) {
		t.Fatalf("wild write not contained: %v", err)
	}
	if tw.LastAbort.TxPostedDiscarded != 2 {
		t.Errorf("abort discarded %d posted-TX descriptors, want 2", tw.LastAbort.TxPostedDiscarded)
	}
	if tw.LastAbort.TxPinsReleased == 0 {
		t.Error("abort released no pins with a posted frame in flight")
	}
	if tw.PinnedTxPages() != 0 {
		t.Error("abort left pages pinned")
	}
	if tw.GuestTLBCached(m.DomU.ID) != 0 {
		t.Error("abort left guest-TLB translations cached")
	}
	if err := tw.Revive(); err != nil {
		t.Fatal(err)
	}
	if free, err := tw.TxPostedFree(m.DomU.ID); err != nil || free != TxRingSlots {
		t.Fatalf("revived posted-TX ring not empty: free=%d, %v", free, err)
	}
	*got = (*got)[:0]
	postAll(t, tw, m, bufs, frames)
	if _, err := tw.ServiceRings(d, 0); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 3 {
		t.Fatalf("post-revive posted transmit put %d frames on the wire, want 3", len(*got))
	}
	for i, f := range *got {
		if !bytes.Equal(f, frames[i]) {
			t.Errorf("post-revive frame %d corrupted", i)
		}
	}
}

// TestPostedTxRingFullStopsPosting: PostTxDescriptors stops at ring
// capacity without error, like the other guest-shared rings.
func TestPostedTxRingFullStopsPosting(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	buf := m.HV.AllocHeap(m.DomU, 2048)
	descs := make([]TxPost, TxRingSlots+5)
	for i := range descs {
		descs[i] = TxPost{Addr: buf, Len: 600}
	}
	n, err := tw.PostTxDescriptors(m.DomU, descs)
	if err != nil {
		t.Fatal(err)
	}
	if n != TxRingSlots {
		t.Fatalf("posted %d, want ring capacity %d", n, TxRingSlots)
	}
	if free, _ := tw.TxPostedFree(m.DomU.ID); free != 0 {
		t.Fatalf("free=%d after filling the ring", free)
	}
	if pending, _ := tw.PostedTxPending(m.DomU.ID); pending != TxRingSlots {
		t.Fatalf("pending=%d after filling the ring", pending)
	}
}

// TestPostedTxTLBHitRate asserts the per-guest translation cache earns its
// keep on the posted-TX path: repeated services over re-posted frame
// buffers must resolve mostly from the cache. Per backend — the mirror of
// TestPostedRxTLBHitRate.
func TestPostedTxTLBHitRate(t *testing.T) {
	for _, model := range rxModels() {
		t.Run(model.Name, func(t *testing.T) {
			const n = 8
			m, tw, d, got, bufs, frames := postedTxSetup(t, model, n, 400)
			for round := 0; round < 4; round++ {
				postAll(t, tw, m, bufs, frames)
				if _, err := tw.ServiceRings(d, 0); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
			}
			if len(*got) != 4*n {
				t.Fatalf("wire carries %d frames, want %d", len(*got), 4*n)
			}
			hits, misses := tw.GuestTLBStats(m.DomU.ID)
			if hits+misses == 0 {
				t.Fatal("posted transmits performed no guest translations")
			}
			rate := float64(hits) / float64(hits+misses)
			if rate < 0.5 {
				t.Fatalf("gtlb hit rate %.2f (hits %d, misses %d), want >= 0.5 after re-servicing the same buffers",
					rate, hits, misses)
			}
		})
	}
}
