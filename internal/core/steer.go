package core

// RSS-style flow steering (multi-queue backends). Two layers use it:
//
//   - the framework shards guests across transmit service queues at twin
//     bring-up (shardBase + the modular walk in loadTwin), so every queue
//     carries a balanced share of the guests and the assignment is a pure
//     function of (guest index, queue count, seed) — nothing to record in
//     the configuration log, nothing to replay on recovery;
//   - a multi-queue device steers received frames to an RX queue by
//     hashing the frame's addresses, so a flow (fixed src/dst pair) maps
//     to exactly one queue and never migrates mid-burst.
//
// The hash is a seeded FNV-style mix standing in for the Toeplitz hash of
// real RSS hardware; what matters for the system is the contract the
// property tests pin: total (every frame maps to exactly one queue in
// [0, queues)) and deterministic (same seed, same inputs, same queue).

const (
	// rssIndirectionSize is the RSS indirection-table size the hash is
	// reduced through, as on e810-class hardware (128 entries; every
	// supported queue count divides it evenly).
	rssIndirectionSize = 128

	// rssDefaultSeed is the framework's fixed steering seed: guest
	// sharding must be reproducible across runs and across recoveries.
	rssDefaultSeed = 0x9E3779B97F4A7C15

	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// RSSHash mixes a frame's source/destination MACs and the owning guest
// into a 32-bit flow hash under a seed. Same inputs, same seed: same
// hash — steering is deterministic by construction.
func RSSHash(src, dst [6]byte, guest uint32, seed uint64) uint32 {
	h := uint64(fnvOffset) ^ seed
	for _, b := range src {
		h = (h ^ uint64(b)) * fnvPrime
	}
	for _, b := range dst {
		h = (h ^ uint64(b)) * fnvPrime
	}
	h = (h ^ uint64(guest)) * fnvPrime
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return uint32(h)
}

// SteerQueue reduces a flow hash to a queue index through the RSS
// indirection table: total over all hashes, and stable for a fixed hash
// and queue count.
func SteerQueue(hash uint32, queues int) int {
	if queues <= 1 {
		return 0
	}
	return int(hash%rssIndirectionSize) % queues
}

// shardBase seeds the guest-to-queue walk: guest i lands on queue
// (base+i) % queues. The modular walk keeps the shard perfectly balanced
// (max load ceil(guests/queues), monotone in the queue count) while the
// hashed base keeps the placement seeded rather than positional.
func shardBase(queues int) int {
	if queues <= 1 {
		return 0
	}
	return SteerQueue(RSSHash([6]byte{}, [6]byte{}, uint32(queues), rssDefaultSeed), queues)
}
