package core

import (
	_ "embed"
	"strings"
)

// hvSupportSource embeds this package's hypervisor support-routine
// implementation so the engineering-effort experiment (§6.5 of the paper:
// "851 lines of commented C code") can report our equivalent.
//
//go:embed hvsupport.go
var hvSupportSource string

// HvSupportLines returns the size, in source lines, of the hypervisor's
// support routine implementation.
func HvSupportLines() int {
	return strings.Count(hvSupportSource, "\n") + 1
}
