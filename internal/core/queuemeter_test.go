// Per-queue meter accounting, driven through the multi-queue backend.
// External test package: mqnic imports core, so these tests cannot live
// inside package core itself.
package core_test

import (
	"reflect"
	"sync"
	"testing"

	"twindrivers/internal/core"
	"twindrivers/internal/cycles"
	"twindrivers/internal/mem"
	"twindrivers/internal/mqnic"
)

// runShardedTraffic builds an mqnic twin at the given queue count, moves
// a fixed batch workload from every guest through ServiceRings, and
// returns the machine and twin for meter inspection.
func runShardedTraffic(t *testing.T, guests, queues int) (*core.Machine, *core.Twin) {
	t.Helper()
	m, tw, err := core.NewTwinMachineModel(1, guests, mqnic.DriverModel(), core.TwinConfig{Queues: queues})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	d.Dev.SetOnTransmit(func([]byte) {})
	for gi, dom := range m.Guests {
		frames := make([][]byte, 8)
		for i := range frames {
			payload := make([]byte, 400)
			for j := range payload {
				payload[j] = byte(gi + i + j)
			}
			frames[i] = core.EthernetFrame(
				[6]byte{2, 2, 2, 2, 2, 2},
				[6]byte{0x02, 0x60, 0, 0, byte(gi), byte(i)},
				0x0800, payload)
		}
		if _, err := tw.StageTransmitBatch(dom, frames); err != nil {
			t.Fatalf("guest %d stage: %v", gi, err)
		}
	}
	if _, err := tw.ServiceRings(d, 0); err != nil {
		t.Fatalf("service: %v", err)
	}
	return m, tw
}

// TestServiceAllQueuesMatchesSequential pins the parallel sweep to the
// sequential one: the same staged workload serviced by ServiceAllQueues
// (one goroutine per queue) must report the same per-guest sent counts
// and put the same per-guest frame sequence on the wire as ServiceRings.
// Run under -race in CI, this is also the shared-nothing proof for the
// per-queue hot path.
func TestServiceAllQueuesMatchesSequential(t *testing.T) {
	run := func(parallel bool) (map[mem.Owner]int, map[int][][]byte) {
		m, tw, err := core.NewTwinMachineModel(1, 4, mqnic.DriverModel(), core.TwinConfig{Queues: 4})
		if err != nil {
			t.Fatal(err)
		}
		d := m.Devs[0]
		var mu sync.Mutex
		byGuest := make(map[int][][]byte)
		d.Dev.SetOnTransmit(func(pkt []byte) {
			mu.Lock()
			defer mu.Unlock()
			// Source MAC byte 5 tags the staging guest (set below).
			byGuest[int(pkt[11])] = append(byGuest[int(pkt[11])], append([]byte(nil), pkt...))
		})
		for gi, dom := range m.Guests {
			frames := make([][]byte, 6)
			for i := range frames {
				payload := make([]byte, 300+i)
				for j := range payload {
					payload[j] = byte(gi*31 + i + j)
				}
				frames[i] = core.EthernetFrame(
					[6]byte{2, 2, 2, 2, 2, 2},
					[6]byte{0x02, 0x61, 0, 0, byte(i), byte(gi)},
					0x0800, payload)
			}
			if _, err := tw.StageTransmitBatch(dom, frames); err != nil {
				t.Fatalf("guest %d stage: %v", gi, err)
			}
		}
		service := tw.ServiceRings
		if parallel {
			service = tw.ServiceAllQueues
		}
		sent, err := service(d, 0)
		if err != nil {
			t.Fatalf("service (parallel=%v): %v", parallel, err)
		}
		return sent, byGuest
	}
	seqSent, seqWire := run(false)
	parSent, parWire := run(true)
	if !reflect.DeepEqual(seqSent, parSent) {
		t.Fatalf("sent maps differ: sequential %v, parallel %v", seqSent, parSent)
	}
	if !reflect.DeepEqual(seqWire, parWire) {
		t.Fatal("per-guest wire sequences differ between sequential and parallel service")
	}
}

// TestQueueMetersDegenerateIsGlobalMeter is the regression pin for every
// pre-multi-queue measurement: at one service queue the per-queue meter
// IS the machine meter, so merging the queue meters reproduces the
// global breakdown exactly — same buckets, same total, cycle for cycle.
// Every single-queue backend's committed bench baseline rests on this.
func TestQueueMetersDegenerateIsGlobalMeter(t *testing.T) {
	m, tw := runShardedTraffic(t, 4, 1)
	if n := tw.QueueCount(); n != 1 {
		t.Fatalf("QueueCount = %d, want 1", n)
	}
	qms := tw.QueueMeters()
	if len(qms) != 1 {
		t.Fatalf("QueueMeters has %d entries, want 1", len(qms))
	}
	if qms[0] != m.HV.Meter {
		t.Fatal("degenerate queue meter is not the machine meter")
	}
	merged := cycles.NewMeter()
	merged.Merge(qms...)
	if merged.Total() != m.HV.Meter.Total() {
		t.Fatalf("merged total %d != global meter total %d", merged.Total(), m.HV.Meter.Total())
	}
	if !reflect.DeepEqual(merged.Breakdown(), m.HV.Meter.Breakdown()) {
		t.Fatalf("merged breakdown %v != global breakdown %v", merged.Breakdown(), m.HV.Meter.Breakdown())
	}
}

// TestQueueMetersMergeConserves asserts the sharded accounting loses
// nothing: with four queues, every queue owning a guest metered work,
// the guests landed on more than one queue, and a Merge over the queue
// meters carries exactly the sum of their totals — per-queue accounting
// partitions the service work, it does not duplicate or drop any of it.
func TestQueueMetersMergeConserves(t *testing.T) {
	m, tw := runShardedTraffic(t, 4, 4)
	if n := tw.QueueCount(); n != 4 {
		t.Fatalf("QueueCount = %d, want 4", n)
	}
	owners := make(map[int]int)
	for _, dom := range m.Guests {
		q := tw.QueueOf(dom.ID)
		if q < 0 || q >= 4 {
			t.Fatalf("guest %d on queue %d", dom.ID, q)
		}
		owners[q]++
	}
	if len(owners) < 2 {
		t.Fatalf("4 guests all sharded onto %d queue(s)", len(owners))
	}
	qms := tw.QueueMeters()
	var sum uint64
	for q, qm := range qms {
		if owners[q] > 0 && qm.Total() == 0 {
			t.Errorf("queue %d owns %d guests but metered no cycles", q, owners[q])
		}
		if owners[q] == 0 && qm.Total() != 0 {
			t.Errorf("queue %d owns no guests but metered %d cycles", q, qm.Total())
		}
		sum += qm.Total()
	}
	merged := cycles.NewMeter()
	merged.Merge(qms...)
	if merged.Total() != sum {
		t.Fatalf("merge total %d != sum of queue totals %d", merged.Total(), sum)
	}
	if sum == 0 {
		t.Fatal("no queue metered any work")
	}
}
