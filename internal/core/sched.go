package core

import (
	"fmt"

	"twindrivers/internal/cost"
	"twindrivers/internal/cycles"
	"twindrivers/internal/kernel"
	"twindrivers/internal/mem"
	"twindrivers/internal/telemetry"
	"twindrivers/internal/vswitch"
)

// Weighted-fair service scheduling and the inter-guest L2 switch.
//
// The classic sweep (twinbatch.go sweepQueue) is strict round-robin:
// one staged descriptor plus one posted descriptor per guest per pass,
// every guest equal. A production host serves hundreds of tenants with
// different SLAs; this file replaces that loop — only when the
// configuration asks for it — with deficit round-robin (DRR):
//
//   - Each guest has a WEIGHT. Every round the guest's deficit counter
//     grows by its weight (the quantum), and the sweep consumes one
//     descriptor per deficit unit, so long-run throughput shares are
//     proportional to weights: a weight-4 guest gets 4 descriptors for
//     every 1 a weight-1 guest gets, regardless of backlog depth.
//   - The scheduler is WORK-CONSERVING: a guest with nothing staged has
//     its deficit zeroed (it cannot hoard credit while idle), and the
//     round loop keeps serving whoever has backlog until the budget is
//     spent — idle guests donate their bandwidth.
//   - It is STARVATION-FREE: every weight clamps to at least 1, so any
//     backlogged guest consumes at least one descriptor per full round
//     no matter how heavy its neighbors are.
//   - Each guest may also have a RATE limit: a hard cap on descriptors
//     consumed per service crossing. A capped guest stops being
//     serviced for the rest of the crossing and does not count as
//     progress, so the sweep still terminates when only capped guests
//     have backlog.
//
// Activation is the repo's usual identity pin: nil Weights and nil
// Rates (the default) never reach this file — sweepQueue dispatches
// here only when t.drr is set, so every existing baseline keeps the
// classic loop operation-for-operation.
//
// The inter-guest switch hooks the two transmit paths (xmitOne,
// xmitPosted) behind a nil check: with TwinConfig.Switch set, each
// frame's Ethernet header is classified by internal/vswitch before the
// derived driver runs. Guest→guest unicast is copied into a pooled
// dom0 sk_buff and queued straight onto the destination guest's
// receive queue — the same queue the device demux fills, so both the
// copy-mode and posted-buffer delivery paths work unchanged — and the
// device is never touched: the whole NIC round-trip (driver TX, wire,
// IRQ, driver RX) is replaced by one classify + one copy.

// schedParam resolves a per-guest scheduler parameter from its config
// slice: values apply to guests in index order and repeat cyclically
// when the slice is shorter than the guest count (so Weights: []int{4,
// 2, 1} gives a 4:2:1 pattern across any fleet size). def is the
// all-guests default for a nil slice; weights additionally clamp to a
// minimum of 1 (a zero or negative weight would starve the guest,
// which the rate limit — not the weight — is the tool for).
func schedParam(vals []int, gi, def int) int {
	v := def
	if len(vals) > 0 {
		v = vals[gi%len(vals)]
	}
	if def == 1 && v < 1 {
		v = 1
	}
	if v < 0 {
		v = 0
	}
	return v
}

// SchedEnabled reports whether the DRR weighted-fair sweep is active.
func (t *Twin) SchedEnabled() bool { return t.drr }

// GuestWeight reports a guest's DRR weight (1 when the scheduler is
// off or the domain has no transmit state: every guest weighs equal).
func (t *Twin) GuestWeight(dom mem.Owner) int {
	if g, ok := t.guestIO[dom]; ok && t.drr {
		return g.weight
	}
	return 1
}

// GuestRate reports a guest's per-crossing descriptor cap (0 =
// unlimited).
func (t *Twin) GuestRate(dom mem.Owner) int {
	if g, ok := t.guestIO[dom]; ok && t.drr {
		return g.rate
	}
	return 0
}

// qSched is one queue's persistent scheduler position (alongside the
// PR 7 per-queue meters): pos is the next shard index the DRR cycle
// visits, and carry marks a guest whose quantum was granted but whose
// service a budget cut interrupted — the resume skips the re-grant, so
// a budget boundary can never mint extra credit. Persisting the
// position across crossings is what makes shares proportional in the
// long run: without it every crossing would restart the cycle at the
// shard's first guest, and early-shard guests would accrue a quantum
// more often than late-shard ones whenever the budget cuts mid-cycle.
type qSched struct {
	pos   int
	carry bool
}

// sweepQueueDRR is the deficit-round-robin replacement for the classic
// sweepQueue loop, over the same per-queue guest shard with the same
// containment behavior (a corrupt ring or transmit fault aborts this
// queue's sweep; other queues are isolated by the caller). budget
// bounds total descriptors consumed this crossing (0 = drain).
//
// The cycle visits guests in shard order starting at the persisted
// position. Each fresh visit grants the guest its weight in deficit,
// then spends the deficit one descriptor at a time — staged ring
// first, then posted-TX, exactly the classic pair. An empty backlog
// zeroes the deficit (work conservation: idle guests donate rather
// than hoard); a full cycle with no progress ends the sweep.
func (t *Twin) sweepQueueDRR(d *NICDev, q, budget int, sent map[mem.Owner]int) (int, error) {
	shard := t.queueGuests[q]
	st := &t.qSched[q]
	// Rate accounting is per crossing: every guest starts fresh.
	for _, id := range shard {
		t.guestIO[id].served = 0
	}
	consumed := 0
	idle := 0
	for idle < len(shard) {
		g := t.guestIO[shard[st.pos]]
		fresh := !st.carry
		st.carry = false
		if g.rate > 0 && g.served >= g.rate {
			// Capped for this crossing: skipped entirely, no quantum
			// (the cap is a ceiling, not a deferral) and no progress.
			st.pos = (st.pos + 1) % len(shard)
			idle++
			continue
		}
		if fresh {
			g.deficit += g.weight
		}
		progressed := false
		for g.deficit > 0 {
			if budget > 0 && consumed >= budget {
				// Budget cut mid-service: resume this guest next
				// crossing with its remaining deficit, no re-grant.
				st.carry = true
				return consumed, nil
			}
			did, err := t.drrStep(d, g, sent)
			if err != nil {
				return consumed + 1, err
			}
			if !did {
				// Work conservation: an idle guest donates its unspent
				// quantum instead of hoarding credit for a later burst.
				g.deficit = 0
				break
			}
			consumed++
			g.deficit--
			g.served++
			progressed = true
			if g.rate > 0 && g.served >= g.rate {
				break
			}
		}
		if progressed {
			idle = 0
		} else {
			idle++
		}
		st.pos = (st.pos + 1) % len(shard)
	}
	return consumed, nil
}

// drrStep consumes at most one descriptor for a guest: a staged-ring
// frame if one is pending, otherwise a posted-TX descriptor. Error
// handling matches the classic sweep exactly — a corrupt ring header
// resets the ring and fails the sweep; a transmit fault resets the
// staged ring and propagates.
func (t *Twin) drrStep(d *NICDev, g *guestIO, sent map[mem.Owner]int) (bool, error) {
	addr, n, ok, err := g.ring.Pop()
	if err != nil {
		_ = g.ring.Reset()
		return false, fmt.Errorf("core: guest %d transmit ring: %w", g.dom.ID, err)
	}
	if ok {
		if err := t.xmitOne(d, g, addr, int(n)); err != nil {
			if rerr := g.ring.Reset(); rerr != nil && !t.Dead {
				return true, rerr
			}
			return true, err
		}
		sent[g.dom.ID]++
		return true, nil
	}
	return t.servicePostedTx(d, g, sent)
}

// --- Inter-guest L2 switch glue -------------------------------------

// VSwitch exposes the inter-guest switch (nil when TwinConfig.Switch
// is off) for table introspection and stats.
func (t *Twin) VSwitch() *vswitch.Switch { return t.vsw }

// VswitchSpoofDropped reports how many of a guest's transmit frames
// the switch rejected for forging another port's static MAC.
func (t *Twin) VswitchSpoofDropped(dom mem.Owner) uint64 {
	if g, ok := t.guestIO[dom]; ok {
		return g.spoofDropped
	}
	return 0
}

// VswitchRxDropped reports how many switch-delivered frames bound for
// a guest were lost to dom0 pool exhaustion.
func (t *Twin) VswitchRxDropped(dom mem.Owner) uint64 {
	if g, ok := t.guestIO[dom]; ok {
		return g.vswRxDropped
	}
	return 0
}

// vswitchTx classifies one transmit frame's Ethernet header and
// performs any dom0-side deliveries. The caller proceeds to the device
// only when toDevice is true; a false/nil return means the frame was
// fully handled here (delivered locally, or dropped as a spoof). The
// frame bytes live in the transmitting guest's memory at guestAddr —
// already length-bounded, and on the posted path already
// ownership-checked through the guest TLB.
func (t *Twin) vswitchTx(g *guestIO, guestAddr uint32, n int) (bool, error) {
	if n < 14 {
		// A runt without a full Ethernet header is not classifiable;
		// let the device path handle it as it always did.
		return true, nil
	}
	hdr, err := g.dom.AS.ReadBytes(guestAddr, 12)
	if err != nil {
		return false, err
	}
	var dst, src vswitch.MAC
	copy(dst[:], hdr[0:6])
	copy(src[:], hdr[6:12])
	meter := t.M.HV.Meter
	meter.AddTo(cycles.CompXen, cost.VswitchLookup)
	fwd, ok := t.vsw.Classify(g.dom.ID, src, dst)
	if !ok {
		g.spoofDropped++
		t.ctlLane.Record(t.mMeter, telemetry.EvSpoof, int32(g.dom.ID), uint64(n), 0)
		return false, nil
	}
	for _, dstDom := range fwd.Local {
		if err := t.vswitchDeliver(g, dstDom, guestAddr, n); err != nil {
			return false, err
		}
	}
	return fwd.Device, nil
}

// vswitchDeliver copies one guest→guest frame into a pooled dom0
// sk_buff and queues it on the destination guest's receive queue — the
// exact shape the device demux (netif_rx) produces after
// eth_type_trans, so DeliverPendingBatch and DeliverPendingPosted both
// consume it unchanged. Pool exhaustion loses only this frame (counted
// against the destination, like any other RX drop).
func (t *Twin) vswitchDeliver(src *guestIO, dst mem.Owner, guestAddr uint32, n int) error {
	dstIO, ok := t.guestIO[dst]
	if !ok {
		return nil // port with no I/O state: nothing to deliver into
	}
	skb, okPool := t.poolGet()
	if !okPool {
		dstIO.vswRxDropped++
		return nil
	}
	hv := t.M.HV
	meter := hv.Meter
	as := t.M.Dom0.AS
	meter.AddTo(cycles.CompXen, cost.VswitchForwardPerFrame+cost.SkbAlloc)
	head, _ := as.Load(skb+kernel.SkbHead, 4)
	spans, err := pageSpans(head, n, func(a uint32) (uint32, error) {
		return t.SV.Translate(meter, a)
	})
	if err != nil {
		t.poolPut(skb)
		return err
	}
	off := 0
	for _, sp := range spans {
		meter.AddTo(cycles.CompXen, uint64(sp.bytes)*cost.HvCopyPerByte)
		meter.TouchLines(sp.pa, sp.bytes)
		if err := mem.Copy(hv.HVSpace, sp.pa, src.dom.AS, guestAddr+uint32(off), sp.bytes); err != nil {
			t.poolPut(skb)
			return err
		}
		off += sp.bytes
	}
	// eth_type_trans convention: delivery reads (data-14, len+14).
	as.Store(skb+kernel.SkbData, 4, head+14)
	as.Store(skb+kernel.SkbLen, 4, uint32(n-14))
	t.queueRx(dst, skb)
	t.ctlLane.Record(t.mMeter, telemetry.EvVswitch, int32(src.dom.ID), uint64(dst), uint64(n))
	return nil
}
