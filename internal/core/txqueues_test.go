// Posted-transmit descriptors under parallel per-queue service, driven
// through the multi-queue backend. External test package: mqnic imports
// core, so these tests cannot live inside package core itself.
package core_test

import (
	"reflect"
	"sync"
	"testing"

	"twindrivers/internal/core"
	"twindrivers/internal/mem"
	"twindrivers/internal/mqnic"
)

// postTxQueues builds an mqnic twin, writes per-guest frames into
// guest-owned buffers, posts their (addr,len) descriptors, and services
// all queues either sequentially or in parallel, returning the per-guest
// sent counts and per-guest wire sequences (tagged by source-MAC byte 11).
func postTxQueues(t *testing.T, parallel bool) (map[mem.Owner]int, map[int][][]byte) {
	t.Helper()
	m, tw, err := core.NewTwinMachineModel(1, 4, mqnic.DriverModel(), core.TwinConfig{Queues: 4})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	var mu sync.Mutex
	byGuest := make(map[int][][]byte)
	d.Dev.SetOnTransmit(func(pkt []byte) {
		mu.Lock()
		defer mu.Unlock()
		byGuest[int(pkt[11])] = append(byGuest[int(pkt[11])], append([]byte(nil), pkt...))
	})
	for gi, dom := range m.Guests {
		descs := make([]core.TxPost, 6)
		for i := range descs {
			payload := make([]byte, 320+i)
			for j := range payload {
				payload[j] = byte(gi*37 + i + j)
			}
			f := core.EthernetFrame(
				[6]byte{2, 2, 2, 2, 2, 2},
				[6]byte{0x02, 0x62, 0, 0, byte(i), byte(gi)},
				0x0800, payload)
			buf := m.HV.AllocHeap(dom, 2048)
			if err := dom.AS.WriteBytes(buf, f); err != nil {
				t.Fatalf("guest %d frame %d: %v", gi, i, err)
			}
			descs[i] = core.TxPost{Addr: buf, Len: uint32(len(f))}
		}
		if posted, err := tw.PostTxDescriptors(dom, descs); err != nil || posted != len(descs) {
			t.Fatalf("guest %d posted %d: %v", gi, posted, err)
		}
	}
	service := tw.ServiceRings
	if parallel {
		service = tw.ServiceAllQueues
	}
	sent, err := service(d, 0)
	if err != nil {
		t.Fatalf("service (parallel=%v): %v", parallel, err)
	}
	for _, dom := range m.Guests {
		if lost := tw.PostedTxLost(dom.ID); lost != 0 {
			t.Fatalf("guest %d lost %d posted frames (parallel=%v)", dom.ID, lost, parallel)
		}
	}
	return sent, byGuest
}

// TestPostedTxParallelQueuesMatchSequential pins per-queue posted
// transmit under ServiceAllQueues (one goroutine per queue) to the
// sequential sweep: same per-guest sent counts, same per-guest frame
// bytes on the wire, zero posted frames lost. Run under -race in CI this
// is the shared-nothing proof for the posted-TX hot path — descriptor
// snapshots, guest-TLB lookups and pin-table updates included.
func TestPostedTxParallelQueuesMatchSequential(t *testing.T) {
	seqSent, seqWire := postTxQueues(t, false)
	parSent, parWire := postTxQueues(t, true)
	if !reflect.DeepEqual(seqSent, parSent) {
		t.Fatalf("sent maps differ: sequential %v, parallel %v", seqSent, parSent)
	}
	if !reflect.DeepEqual(seqWire, parWire) {
		t.Fatal("per-guest wire sequences differ between sequential and parallel posted-TX service")
	}
	total := 0
	for gi := range seqWire {
		total += len(seqWire[gi])
	}
	if total != 4*6 {
		t.Fatalf("wire carried %d frames, want 24", total)
	}
}
