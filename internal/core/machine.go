// Package core implements the TwinDrivers framework itself: the machine
// builder that brings up dom0 with the VM driver instance, and the twin
// loader that derives, loads and contains the hypervisor driver instance
// (§4 and §5 of the paper).
package core

import (
	"fmt"

	"twindrivers/internal/asm"
	"twindrivers/internal/cpu"
	"twindrivers/internal/cycles"
	"twindrivers/internal/drivermodel"
	"twindrivers/internal/e1000"
	"twindrivers/internal/isa"
	"twindrivers/internal/kernel"
	"twindrivers/internal/mem"
	"twindrivers/internal/nic"
	"twindrivers/internal/xen"
)

// NICDev couples a simulated NIC with its dom0-side identity.
type NICDev struct {
	// Dev is the device through the backend-generic interface; every
	// framework path goes through it.
	Dev drivermodel.Device

	// NIC is the concrete e1000-class controller when this machine runs
	// the e1000 backend (nil otherwise). Kept for the device-specific
	// knobs — OnTransmit wiring, IOMMU, DMA diagnostics — that examples
	// and tests poke directly.
	NIC *nic.NIC

	Netdev   uint32 // dom0 address of the net_device
	MMIOPhys uint32 // physical address of the register BAR
	IRQ      uint32
}

// Machine is a complete simulated host: hypervisor, dom0 (with kernel and
// the VM driver instance), one or more guest domains, and NICs. All four
// measured configurations of the paper are built over this type.
type Machine struct {
	HV   *xen.Hypervisor
	Dom0 *xen.Domain
	DomU *xen.Domain // the first guest, Guests[0]
	K    *kernel.Kernel
	CPU  *cpu.CPU

	// Guests lists every guest domain, in creation order. Each guest gets
	// a disjoint kernel heap region (xen.GuestHeapStride apart) so any
	// guest virtual address resolves to exactly one owning domain.
	Guests []*xen.Domain

	Devs []*NICDev

	// Model is the NIC backend this machine runs: the driver source, its
	// entry-symbol set, probe signature and device factory. Everything
	// that used to name e1000 symbols goes through it.
	Model *drivermodel.Model

	// Config is the replayable configuration history (netdev creation,
	// probe, open, guest routing): the object log transparent recovery
	// replays over a freshly derived instance.
	Config *ConfigLog

	// Unit is the assembled driver (original form).
	Unit *asm.Unit
	// VMImage is the loaded VM driver instance (original in the native
	// machine; the identity-stlb rewritten binary once twinned).
	VMImage *asm.Image

	dom0StackTop uint32
}

// newBase builds the host without any driver loaded: hypervisor, domains
// (dom0 plus nGuests guest domains), kernel, dom0 stack and NIC hardware
// of the given backend model.
func newBase(nNICs, nGuests int, model *drivermodel.Model) (*Machine, error) {
	if model == nil {
		model = e1000.DriverModel()
	}
	if nGuests < 1 {
		nGuests = 1
	}
	if nGuests > xen.MaxGuests {
		return nil, fmt.Errorf("core: %d guests exceed the %d-guest heap layout", nGuests, xen.MaxGuests)
	}
	hv := xen.New()
	dom0 := hv.CreateDomain(mem.OwnerDom0, "dom0")
	m := &Machine{HV: hv, Dom0: dom0, CPU: hv.CPU, Model: model, Config: &ConfigLog{}}
	for i := 0; i < nGuests; i++ {
		name := "domU"
		if i > 0 {
			name = fmt.Sprintf("domU%d", i+1)
		}
		g := hv.CreateDomain(mem.Owner(1+i), name)
		g.HeapBase = xen.GuestKernelBase + uint32(i)*xen.GuestHeapStride
		m.Guests = append(m.Guests, g)
	}
	m.DomU = m.Guests[0]
	k := kernel.New(hv, dom0)
	m.K = k

	// dom0 kernel stack for driver execution.
	stack := k.Alloc(16 * mem.PageSize)
	m.dom0StackTop = stack + 16*mem.PageSize

	u, err := model.Assemble(kernel.Equates())
	if err != nil {
		return nil, fmt.Errorf("core: assemble driver: %w", err)
	}
	m.Unit = u

	for i := 0; i < nNICs; i++ {
		dev := model.NewDevice(fmt.Sprintf("eth%d", i), hv.Phys, byte(i+1))
		firstFrame := hv.Phys.ClaimMMIO(mem.OwnerDom0, model.MMIOPages, dev)
		nd := k.AllocNetdev(model.AdapterSize)
		// Station address into netdev->mac before probe programs it.
		mac := dev.HWAddr()
		for b := 0; b < 6; b++ {
			if err := dom0.AS.Store(nd+kernel.NdMac+uint32(b), 1, uint32(mac[b])); err != nil {
				return nil, err
			}
		}
		d := &NICDev{Dev: dev, Netdev: nd, MMIOPhys: firstFrame * mem.PageSize, IRQ: uint32(16 + i)}
		if n, ok := dev.(*nic.NIC); ok {
			d.NIC = n
		}
		m.Devs = append(m.Devs, d)
		priv, _ := dom0.AS.Load(nd+kernel.NdPriv, 4)
		m.Config.record(ConfigEvent{Op: OpNetdev, Dev: i, MAC: mac, Addr: nd, Aux: priv})
	}
	return m, nil
}

// probeAll runs the VM driver instance's probe and open for every NIC,
// recording both in the configuration log so recovery can replay them. The
// probe argument list comes from the model (probe arity differs across
// backends) and is recorded verbatim with the event: replay must pass
// exactly the words the original probe saw, not assume one backend's
// signature.
func (m *Machine) probeAll() error {
	for i, d := range m.Devs {
		args := m.Model.ProbeArgs(d.Netdev, d.MMIOPhys, d.IRQ)
		if _, err := m.CallDriver(m.Model.Entries.Probe, args...); err != nil {
			return fmt.Errorf("core: probe eth%d: %w", i, err)
		}
		m.Config.record(ConfigEvent{Op: OpProbe, Dev: i, Args: args})
		if _, err := m.CallDriver(m.Model.Entries.Open, d.Netdev); err != nil {
			return fmt.Errorf("core: open eth%d: %w", i, err)
		}
		m.Config.record(ConfigEvent{Op: OpOpen, Dev: i})
	}
	return nil
}

// NewMachine builds a host with n NICs and the *original* e1000 driver
// loaded and initialised in dom0 — the "native Linux" and "dom0"
// configurations.
func NewMachine(nNICs int) (*Machine, error) {
	return NewMachineModel(nNICs, e1000.DriverModel())
}

// NewMachineModel is NewMachine for an arbitrary backend model.
func NewMachineModel(nNICs int, model *drivermodel.Model) (*Machine, error) {
	m, err := newBase(nNICs, 1, model)
	if err != nil {
		return nil, err
	}
	im, err := asm.Layout(m.Model.Name+"-vm", m.Unit, xen.Dom0DriverCode, xen.Dom0DriverData, m.K.Resolver())
	if err != nil {
		return nil, fmt.Errorf("core: load driver: %w", err)
	}
	if err := m.mapDriverData(im); err != nil {
		return nil, err
	}
	m.VMImage = im
	m.HV.CPU.AddImage(im)
	if err := m.probeAll(); err != nil {
		return nil, err
	}
	return m, nil
}

// mapDriverData maps and initialises a driver image's data segment into
// dom0 (the module loader's job).
func (m *Machine) mapDriverData(im *asm.Image) error {
	size := im.DataEnd - im.DataBase
	pages := int(size/mem.PageSize) + 1
	frames := m.HV.Phys.AllocFrames(m.Dom0.ID, pages)
	m.Dom0.AS.MapRange(im.DataBase, frames, pages)
	return m.Dom0.AS.WriteBytes(im.DataBase, im.DataInit())
}

// CallDriver invokes a VM driver entry point by name, in dom0 context on
// the dom0 kernel stack, attributing cycles to the driver bucket.
func (m *Machine) CallDriver(fn string, args ...uint32) (uint32, error) {
	entry, ok := m.VMImage.FuncEntry(fn)
	if !ok {
		return 0, fmt.Errorf("core: no driver entry %q", fn)
	}
	m.HV.Switch(m.Dom0)
	saved := m.CPU.Regs[isa.ESP]
	m.CPU.Regs[isa.ESP] = m.dom0StackTop
	m.CPU.Meter.PushComponent(cycles.CompDriver)
	ret, err := m.CPU.Call(entry, args...)
	m.CPU.Meter.PopComponent()
	m.CPU.Regs[isa.ESP] = saved
	return ret, err
}

// DevQueueXmit is the kernel's dev_queue_xmit: invoke the device's
// hard_start_xmit function pointer with an sk_buff, in dom0 context.
func (m *Machine) DevQueueXmit(d *NICDev, skb uint32) (uint32, error) {
	fp, err := m.Dom0.AS.Load(d.Netdev+kernel.NdXmit, 4)
	if err != nil {
		return 0, err
	}
	m.HV.Switch(m.Dom0)
	saved := m.CPU.Regs[isa.ESP]
	m.CPU.Regs[isa.ESP] = m.dom0StackTop
	m.CPU.Meter.PushComponent(cycles.CompDriver)
	ret, cerr := m.CPU.Call(fp, skb, d.Netdev)
	m.CPU.Meter.PopComponent()
	m.CPU.Regs[isa.ESP] = saved
	return ret, cerr
}

// HandleIRQ services a NIC interrupt through the dom0 kernel (the native
// Linux / plain-Xen interrupt path: the caller accounts any domain switch).
func (m *Machine) HandleIRQ(d *NICDev) error {
	m.HV.Switch(m.Dom0)
	saved := m.CPU.Regs[isa.ESP]
	m.CPU.Regs[isa.ESP] = m.dom0StackTop
	err := m.K.DispatchIRQ(m.CPU, d.IRQ)
	m.CPU.Regs[isa.ESP] = saved
	return err
}

// RunTimers fires due dom0 timers (driver watchdog) on the dom0 stack.
func (m *Machine) RunTimers() error {
	m.HV.Switch(m.Dom0)
	saved := m.CPU.Regs[isa.ESP]
	m.CPU.Regs[isa.ESP] = m.dom0StackTop
	err := m.K.RunTimers(m.CPU)
	m.CPU.Regs[isa.ESP] = saved
	return err
}

// NewTxSkb builds an sk_buff carrying payload, ready for DevQueueXmit.
func (m *Machine) NewTxSkb(d *NICDev, payload []byte) (uint32, error) {
	skb := m.K.AllocSkb(d.Netdev)
	if err := m.K.SkbPut(skb, payload); err != nil {
		return 0, err
	}
	return skb, nil
}

// EthernetFrame builds a minimal frame: dst MAC, src MAC, ethertype,
// payload padded to at least 60 bytes.
func EthernetFrame(dst [6]byte, src [6]byte, ethertype uint16, payload []byte) []byte {
	f := make([]byte, 14, 14+len(payload))
	copy(f[0:6], dst[:])
	copy(f[6:12], src[:])
	f[12], f[13] = byte(ethertype>>8), byte(ethertype)
	f = append(f, payload...)
	for len(f) < 60 {
		f = append(f, 0)
	}
	return f
}
