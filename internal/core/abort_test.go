package core

import (
	"errors"
	"testing"

	"twindrivers/internal/kernel"
)

// Abort-teardown accounting, mirroring the PR 2 pool-leak regression
// tests: when a containment fault kills the instance mid-operation, every
// staged-but-undrained frame must be accounted (no pool leak, no phantom
// delivery) and every in-flight pooled buffer must come back.

// TestAbortDuringServiceRingsAccountsStagedFrames: four guests stage
// batches; the instance dies on the second guest's first frame. The sweep
// stops, every ring is reset (staged frames counted as lost, none
// phantom-delivered by a later service), and the pool is whole again.
func TestAbortDuringServiceRingsAccountsStagedFrames(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 4, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	got := capture(d)
	free := tw.PoolFree()

	const perGuest = 3
	for _, dom := range m.Guests {
		m.HV.Switch(dom)
		if staged, err := tw.StageTransmitBatch(dom, guestFrames(d, int(dom.ID), perGuest, 400)); err != nil || staged != perGuest {
			t.Fatalf("guest %d staged %d: %v", dom.ID, staged, err)
		}
	}
	// First round-robin pass sends one frame per guest; kill the instance
	// before the drain so the very first invocation faults.
	if err := m.Dom0.AS.Store(d.Netdev+kernel.NdPriv, 4, 0xF1000040); err != nil {
		t.Fatal(err)
	}
	sent, err := tw.ServiceRings(d, 0)
	if !errors.Is(err, ErrDriverDead) {
		t.Fatalf("ServiceRings err = %v, want ErrDriverDead", err)
	}
	for id, n := range sent {
		if n != 0 {
			t.Fatalf("guest %d reported %d sent through a faulting instance", id, n)
		}
	}
	if len(*got) != 0 {
		t.Fatalf("wire saw %d frames from a faulting drain", len(*got))
	}

	// Teardown accounting: the faulting frame was consumed from its ring
	// by Pop before the invocation died, so the remaining staged frames
	// are 4*perGuest - 1; all of them were discarded, none remain staged.
	if want := 4*perGuest - 1; tw.LastAbort.StagedTxDiscarded != want {
		t.Errorf("StagedTxDiscarded = %d, want %d", tw.LastAbort.StagedTxDiscarded, want)
	}
	for _, dom := range m.Guests {
		if n, err := tw.guestIO[dom.ID].ring.Len(); err != nil || n != 0 {
			t.Errorf("guest %d ring still holds %d staged frames (err=%v)", dom.ID, n, err)
		}
	}
	// No pool leak: the skb grabbed for the faulting frame was reclaimed.
	if got := tw.PoolFree(); got != free {
		t.Errorf("pool %d -> %d across abort", free, got)
	}
	// Guests now fail fast instead of staging into a dead ring.
	m.HV.Switch(m.Guests[1])
	if _, err := tw.StageTransmitBatch(m.Guests[1], guestFrames(d, 1, 1, 200)); !errors.Is(err, ErrDriverDead) {
		t.Errorf("staging into a dead twin: %v, want ErrDriverDead", err)
	}
	// No phantom delivery after revival: the discarded frames never appear.
	if err := tw.Revive(); err != nil {
		t.Fatal(err)
	}
	if sent, err := tw.ServiceRings(d, 0); err != nil || len(sent) != 0 {
		t.Fatalf("revived ServiceRings drained %v (err=%v), want empty rings", sent, err)
	}
	if len(*got) != 0 {
		t.Errorf("phantom delivery: %d discarded frames reached the wire after revival", len(*got))
	}
}

// TestAbortReclaimsInFlightRxBuffers: warm the receive path so the device
// RX ring is posted with pool-provenance buffers and packets sit queued
// for delivery, then kill the instance. The queued packets are dropped
// (counted), the posted buffers reclaimed, and the pool ends whole.
func TestAbortReclaimsInFlightRxBuffers(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	m.HV.Switch(m.DomU)
	// Warm until the RX ring's posted buffers are pool-provenance.
	for i := 0; i < 300; i++ {
		if !d.NIC.Inject(EthernetFrame(d.NIC.MAC, [6]byte{3, 3, 3, 3, 3, byte(i)}, 0x0800, payload(400, byte(i)))) {
			t.Fatal("warm inject")
		}
		if err := tw.HandleIRQ(d); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.DeliverPending(m.DomU); err != nil {
			t.Fatal(err)
		}
	}
	// Queue a few received packets without delivering them.
	const pending = 4
	for i := 0; i < pending; i++ {
		if !d.NIC.Inject(EthernetFrame(d.NIC.MAC, [6]byte{4, 4, 4, 4, 4, byte(i)}, 0x0800, payload(400, byte(i)))) {
			t.Fatal("inject")
		}
	}
	if err := tw.HandleIRQ(d); err != nil {
		t.Fatal(err)
	}
	if got := tw.PendingRx(m.DomU.ID); got != pending {
		t.Fatalf("pending = %d", got)
	}

	killTwin(t, m, tw, d)

	if tw.LastAbort.RxPendingDropped != pending {
		t.Errorf("RxPendingDropped = %d, want %d", tw.LastAbort.RxPendingDropped, pending)
	}
	if tw.PendingRx(m.DomU.ID) != 0 {
		t.Error("dead twin still holds undelivered packets")
	}
	// Everything the pool ever lent out is back: posted RX buffers, the
	// queued packets' buffers, the transmit skb of the faulting frame.
	if tw.LastAbort.SkbsReclaimed == 0 {
		t.Error("teardown reclaimed nothing despite posted RX buffers")
	}
	if got := tw.PoolFree(); got != tw.cfg.PoolSize {
		t.Errorf("pool = %d of %d after teardown", got, tw.cfg.PoolSize)
	}
}

// TestAbortClosesCoalescerWindow: a fault inside an open batch window must
// force-close it, so post-recovery deliveries notify the guest instead of
// being absorbed by a window nobody will ever End.
func TestAbortClosesCoalescerWindow(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	capture(d)
	m.HV.Switch(m.DomU)

	tw.Coalescer.Begin()
	// One delivery inside the window marks domU signalled.
	tw.Coalescer.Deliver(m.DomU)
	delivered := tw.Coalescer.Delivered
	killTwin(t, m, tw, d)
	// The window died with the instance: a post-recovery delivery is a
	// real notification, not a coalesced no-op.
	if err := tw.Revive(); err != nil {
		t.Fatal(err)
	}
	tw.Coalescer.Deliver(m.DomU)
	if tw.Coalescer.Delivered != delivered+1 {
		t.Fatalf("post-recovery delivery was absorbed by a dead window (delivered %d -> %d)",
			delivered, tw.Coalescer.Delivered)
	}
	tw.Coalescer.End() // the unwound caller's deferred End: must be a no-op
	tw.Coalescer.Deliver(m.DomU)
	if tw.Coalescer.Delivered != delivered+2 {
		t.Fatal("stale End reopened coalescing state")
	}
}
