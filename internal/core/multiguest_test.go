package core

import (
	"bytes"
	"errors"
	"testing"

	"twindrivers/internal/mem"
	"twindrivers/internal/xen"
)

// guestFrames builds n distinct frames sourced from guest index g.
func guestFrames(d *NICDev, g, n, size int) [][]byte {
	frames := make([][]byte, n)
	for i := range frames {
		frames[i] = EthernetFrame([6]byte{2, 2, 2, 2, byte(g), byte(i)}, d.NIC.MAC, 0x0800, payload(size, byte(g*16+i)))
	}
	return frames
}

func TestMultiGuestBringup(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 4, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Guests) != 4 || m.DomU != m.Guests[0] {
		t.Fatalf("guests = %d, DomU aliasing broken", len(m.Guests))
	}
	if len(tw.guestIO) != 4 || len(tw.guestOrder) != 4 {
		t.Fatalf("guestIO = %d rings", len(tw.guestIO))
	}
	// Disjoint per-guest state: rings, slots and bounce buffers live in
	// each guest's own heap region.
	seen := map[uint32]mem.Owner{}
	for id, g := range tw.guestIO {
		base := xen.GuestKernelBase + uint32(id-1)*xen.GuestHeapStride
		for _, a := range append([]uint32{g.bounce, g.ring.Base}, g.slots...) {
			if a < base || a >= base+xen.GuestHeapStride {
				t.Fatalf("guest %d I/O address %#x outside its heap region [%#x, %#x)", id, a, base, base+xen.GuestHeapStride)
			}
			if prev, dup := seen[a]; dup {
				t.Fatalf("address %#x shared between guests %d and %d", a, prev, id)
			}
			seen[a] = id
		}
	}
	if _, _, err := NewTwinMachine(1, xen.MaxGuests+1, TwinConfig{}); err == nil {
		t.Error("guest count above the heap-layout bound accepted")
	}
}

// TestMultiGuestTransmitContexts: each guest transmits through its own
// bounce buffer and ring from its own context, and every frame reaches the
// wire intact — the "runs in whatever guest context is current" property
// at N guests.
func TestMultiGuestTransmitContexts(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 3, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	got := capture(d)
	var want [][]byte
	for g, dom := range m.Guests {
		m.HV.Switch(dom)
		frames := guestFrames(d, g, 4, 700)
		for _, f := range frames {
			if err := tw.GuestTransmit(d, f); err != nil {
				t.Fatalf("guest %d transmit: %v", g, err)
			}
		}
		want = append(want, frames...)
	}
	if len(*got) != len(want) {
		t.Fatalf("wire saw %d of %d frames", len(*got), len(want))
	}
	for i := range want {
		if !bytes.Equal((*got)[i], want[i]) {
			t.Errorf("frame %d corrupted", i)
		}
	}
}

// TestServiceRingsDrainsAllGuestsOneCrossing: guests stage independently;
// one ServiceRings call (one hypercall, zero domain switches) drains every
// ring.
func TestServiceRingsDrainsAllGuestsOneCrossing(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 4, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	got := capture(d)
	for g, dom := range m.Guests {
		m.HV.Switch(dom)
		staged, err := tw.StageTransmitBatch(dom, guestFrames(d, g, 5, 600))
		if err != nil || staged != 5 {
			t.Fatalf("guest %d staged %d: %v", g, staged, err)
		}
	}
	m.HV.ResetStats()
	sw := m.HV.Switches
	sent, err := tw.ServiceRings(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for id, n := range sent {
		if n != 5 {
			t.Errorf("guest %d sent %d, want 5", id, n)
		}
		total += n
	}
	if total != 20 || len(*got) != 20 {
		t.Fatalf("sent %d wire %d, want 20", total, len(*got))
	}
	if m.HV.Hypercalls != 1 {
		t.Errorf("hypercalls = %d, want 1 for the whole fan-out", m.HV.Hypercalls)
	}
	if m.HV.Switches != sw {
		t.Errorf("ServiceRings performed %d domain switches", m.HV.Switches-sw)
	}
}

// TestServiceRingsRoundRobinFairness: under a budget smaller than the
// backlog, a guest with a deep ring cannot starve a guest with a shallow
// one — consumption round-robins one descriptor per guest per pass.
func TestServiceRingsRoundRobinFairness(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 2, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	capture(d)
	deep, shallow := m.Guests[0], m.Guests[1]
	if _, err := tw.StageTransmitBatch(deep, guestFrames(d, 0, 32, 300)); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.StageTransmitBatch(shallow, guestFrames(d, 1, 4, 300)); err != nil {
		t.Fatal(err)
	}
	sent, err := tw.ServiceRings(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sent[deep.ID] != 4 || sent[shallow.ID] != 4 {
		t.Fatalf("budget-8 service: deep=%d shallow=%d, want 4/4", sent[deep.ID], sent[shallow.ID])
	}
	// The rest stays staged and drains on the next crossings.
	rest, err := tw.ServiceRings(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rest[deep.ID] != 28 || rest[shallow.ID] != 0 {
		t.Fatalf("second service: deep=%d shallow=%d, want 28/0", rest[deep.ID], rest[shallow.ID])
	}
}

// TestHostileRingHeaderContained is the core-level trust-boundary
// regression test: a guest that scribbles its ring's head/tail words must
// not make the hypervisor drain bogus descriptors — the drain refuses with
// ErrRingCorrupt, discards that guest's staged work, leaves other guests
// and the buffer pool intact.
func TestHostileRingHeaderContained(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 2, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	got := capture(d)
	evil, honest := m.Guests[0], m.Guests[1]
	if _, err := tw.StageTransmitBatch(evil, guestFrames(d, 0, 3, 400)); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.StageTransmitBatch(honest, guestFrames(d, 1, 3, 400)); err != nil {
		t.Fatal(err)
	}
	free := tw.PoolFree()
	// The guest scribbles its guest-writable tail word: Len would be ~2^32.
	eio := tw.guestIO[evil.ID]
	if err := evil.AS.Store(eio.ring.Base+8, 4, 0xFFFFFFF0); err != nil {
		t.Fatal(err)
	}
	sent, err := tw.ServiceRings(d, 0)
	if !errors.Is(err, mem.ErrRingCorrupt) {
		t.Fatalf("ServiceRings err = %v, want ErrRingCorrupt", err)
	}
	if sent[evil.ID] != 0 {
		t.Errorf("drained %d descriptors from the corrupt ring", sent[evil.ID])
	}
	if tw.PoolFree() != free {
		t.Errorf("pool leaked: %d -> %d", free, tw.PoolFree())
	}
	if tw.Dead {
		t.Fatal("a scribbled ring header killed the driver instance")
	}
	// The evil guest's staged work is discarded; the honest guest's ring
	// still drains on the next crossing.
	wire := len(*got)
	sent, err = tw.ServiceRings(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sent[honest.ID] != 3 || sent[evil.ID] != 0 {
		t.Fatalf("post-recovery service: %v", sent)
	}
	if len(*got)-wire != 3 {
		t.Errorf("honest guest's frames lost: wire grew %d", len(*got)-wire)
	}
	// The hostile header also cannot make the guest-side Push overwrite:
	// batch transmit from the evil guest errors cleanly until reset.
	m.HV.Switch(evil)
	if err := evil.AS.Store(eio.ring.Base+8, 4, 0xFFFFFFF0); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.GuestTransmitBatch(d, guestFrames(d, 0, 2, 400)); !errors.Is(err, mem.ErrRingCorrupt) {
		t.Fatalf("GuestTransmitBatch on corrupt ring = %v, want ErrRingCorrupt", err)
	}
	// GuestTransmitBatch reset the ring on the way out: transmit works again.
	if sent, err := tw.GuestTransmitBatch(d, guestFrames(d, 0, 2, 400)); err != nil || sent != 2 {
		t.Fatalf("post-reset batch: sent=%d err=%v", sent, err)
	}
}

// TestMultiGuestReceiveCoalescedPerGuest: receive demux delivers each
// guest's packets to its own queue, and a batch window raises exactly one
// notification per guest.
func TestMultiGuestReceiveCoalescedPerGuest(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 3, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	macs := make([][6]byte, len(m.Guests))
	for g, dom := range m.Guests {
		macs[g] = [6]byte{0x02, 0x54, 0x57, 0x49, 0x4E, byte(g)}
		tw.RegisterGuestMAC(macs[g], dom.ID)
	}
	m.HV.Switch(m.DomU)
	const per = 4
	want := make([][][]byte, len(m.Guests))
	for i := 0; i < per; i++ {
		for g := range m.Guests {
			f := EthernetFrame(macs[g], [6]byte{1, 1, 1, 1, 1, byte(i)}, 0x0800, payload(500, byte(g*8+i)))
			if !d.NIC.Inject(f) {
				t.Fatal("inject")
			}
			want[g] = append(want[g], f)
		}
	}
	// One interrupt drains the NIC for everybody.
	if err := tw.HandleIRQ(d); err != nil {
		t.Fatal(err)
	}
	for g, dom := range m.Guests {
		if n := tw.PendingRx(dom.ID); n != per {
			t.Fatalf("guest %d pending = %d, want %d", g, n, per)
		}
	}
	ev := m.HV.Events
	tw.Coalescer.Begin()
	for g, dom := range m.Guests {
		// Two partial deliveries per guest: still one notification each.
		for k := 0; k < 2; k++ {
			pkts, err := tw.DeliverPendingBatch(dom, per/2)
			if err != nil {
				t.Fatal(err)
			}
			for j, pkt := range pkts {
				if !bytes.Equal(pkt, want[g][k*per/2+j]) {
					t.Errorf("guest %d packet %d corrupted", g, k*per/2+j)
				}
			}
		}
	}
	tw.Coalescer.End()
	if got := m.HV.Events - ev; got != uint64(len(m.Guests)) {
		t.Errorf("window raised %d notifications, want one per guest (%d)", got, len(m.Guests))
	}
}

// TestStageOnFullRingDoesNotClobber: on a full ring the producer slot
// aliases the oldest unconsumed descriptor's staging buffer, so staging
// must refuse BEFORE writing — otherwise backpressure silently corrupts a
// staged frame.
func TestStageOnFullRingDoesNotClobber(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	got := capture(d)
	frames := guestFrames(d, 0, TxRingSlots, 500)
	if staged, err := tw.StageTransmitBatch(m.DomU, frames); err != nil || staged != TxRingSlots {
		t.Fatalf("staged %d: %v", staged, err)
	}
	// Ring is full: further staging must stop at zero without touching
	// the staged bytes.
	extra := guestFrames(d, 1, 2, 500)
	if staged, err := tw.StageTransmitBatch(m.DomU, extra); err != nil || staged != 0 {
		t.Fatalf("staged %d on a full ring: %v", staged, err)
	}
	sent, err := tw.ServiceRings(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sent[m.DomU.ID] != TxRingSlots || len(*got) != TxRingSlots {
		t.Fatalf("sent %v wire %d", sent, len(*got))
	}
	for i, f := range frames {
		if !bytes.Equal((*got)[i], f) {
			t.Fatalf("frame %d corrupted by staging onto a full ring", i)
		}
	}
	// And the refused frames stage cleanly once space frees up.
	if staged, err := tw.StageTransmitBatch(m.DomU, extra); err != nil || staged != 2 {
		t.Fatalf("post-drain staging: %d, %v", staged, err)
	}
}
