package core

import (
	"bytes"
	"testing"

	"twindrivers/internal/cost"
	"twindrivers/internal/cycles"
	"twindrivers/internal/e1000"
	"twindrivers/internal/kernel"
	"twindrivers/internal/mem"
)

// adapter offsets mirrored from the driver source (guarded by
// TestDriverSourceDocumentsAdapterLayout in internal/e1000).
const (
	adLock = 48
)

// TestSynchronizationSharedSpinlock is §4.4 of the paper: "these
// synchronization operations continue to work correctly for the hypervisor
// driver instance since they operate on atomic synchronization variables
// which are also shared between the hypervisor and VM driver." The VM
// instance (dom0) takes the adapter lock; the hypervisor instance's
// transmit must then fail its trylock and report busy — on the SAME lock
// word in dom0 memory.
func TestSynchronizationSharedSpinlock(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	capture(d)
	priv, _ := m.Dom0.AS.Load(d.Netdev+kernel.NdPriv, 4)
	lock := priv + adLock

	// dom0 (conceptually: the VM instance's config path) holds the lock.
	if err := m.Dom0.AS.Store(lock, 4, 1); err != nil {
		t.Fatal(err)
	}
	m.HV.Switch(m.DomU)
	frame := EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.NIC.MAC, 0x0800, payload(400, 1))
	err = tw.GuestTransmit(d, frame)
	if err != ErrTxBusy {
		t.Fatalf("hypervisor instance ignored the held lock: %v", err)
	}
	// Release in dom0; the hypervisor instance proceeds.
	if err := m.Dom0.AS.Store(lock, 4, 0); err != nil {
		t.Fatal(err)
	}
	if err := tw.GuestTransmit(d, frame); err != nil {
		t.Fatalf("after release: %v", err)
	}
	// And the hypervisor instance's unlock is visible to dom0.
	if v, _ := m.Dom0.AS.Load(lock, 4); v != 0 {
		t.Error("lock word not released through the shared data instance")
	}
}

// TestVMInstanceRunsALittleSlower is §5.1.2: the VM driver instance runs
// the same rewritten binary over an identity stlb and "continues to use
// its original data addresses and functions correctly as before, except
// that it runs a little slower."
func TestVMInstanceRunsALittleSlower(t *testing.T) {
	measure := func(m *Machine) float64 {
		d := m.Devs[0]
		capture(d)
		frame := EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.NIC.MAC, 0x0800, payload(1000, 1))
		for i := 0; i < 8; i++ {
			skb, _ := m.NewTxSkb(d, frame)
			if _, err := m.DevQueueXmit(d, skb); err != nil {
				t.Fatal(err)
			}
		}
		m.CPU.Meter.Reset()
		const reps = 40
		for i := 0; i < reps; i++ {
			skb, _ := m.NewTxSkb(d, frame)
			if _, err := m.DevQueueXmit(d, skb); err != nil {
				t.Fatal(err)
			}
		}
		return float64(m.CPU.Meter.Get(cycles.CompDriver)) / reps
	}

	orig, err := NewMachine(1)
	if err != nil {
		t.Fatal(err)
	}
	native := measure(orig)

	tm, _, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	vmInstance := measure(tm) // DevQueueXmit drives the VM instance

	ratio := vmInstance / native
	t.Logf("driver cycles/packet: original=%.0f rewritten-identity=%.0f (x%.2f)", native, vmInstance, ratio)
	if ratio <= 1.1 {
		t.Errorf("VM instance not slower (x%.2f); the identity stlb costs something", ratio)
	}
	if ratio > 4 {
		t.Errorf("VM instance catastrophically slower (x%.2f)", ratio)
	}
	// Functionally identical: both transmitted everything (verified by
	// DevQueueXmit returning 0 above).
}

// TestMultiGuestDemux: received packets route to the guest registered for
// their destination MAC (§5.3: "demultiplexes the received packets based
// on the destination MAC address").
func TestMultiGuestDemux(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	domV := m.HV.CreateDomain(2, "domV")
	macU := [6]byte{0x02, 0, 0, 0, 0, 0xAA}
	macV := [6]byte{0x02, 0, 0, 0, 0, 0xBB}
	tw.RegisterGuestMAC(macU, m.DomU.ID)
	tw.RegisterGuestMAC(macV, domV.ID)

	m.HV.Switch(m.DomU)
	fu := EthernetFrame(macU, [6]byte{1, 1, 1, 1, 1, 1}, 0x0800, payload(300, 1))
	fv := EthernetFrame(macV, [6]byte{1, 1, 1, 1, 1, 2}, 0x0800, payload(300, 2))
	for _, f := range [][]byte{fu, fv, fu} {
		if !d.NIC.Inject(f) {
			t.Fatal("inject")
		}
		if err := tw.HandleIRQ(d); err != nil {
			t.Fatal(err)
		}
	}
	if tw.PendingRx(m.DomU.ID) != 2 || tw.PendingRx(domV.ID) != 1 {
		t.Fatalf("demux: domU=%d domV=%d", tw.PendingRx(m.DomU.ID), tw.PendingRx(domV.ID))
	}
	pu, err := tw.DeliverPending(m.DomU)
	if err != nil {
		t.Fatal(err)
	}
	pv, err := tw.DeliverPending(domV)
	if err != nil {
		t.Fatal(err)
	}
	if len(pu) != 2 || !bytes.Equal(pu[0], fu) {
		t.Error("domU packets wrong")
	}
	if len(pv) != 1 || !bytes.Equal(pv[0], fv) {
		t.Error("domV packets wrong")
	}
}

// TestPoolExhaustionIsTransient: draining the hypervisor's preallocated
// buffer pool produces ErrTxBusy, not corruption; completions replenish.
func TestPoolExhaustionIsTransient(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	// Do NOT wire OnTransmit draining: hold completions by disabling TCTL
	// so descriptors pend... simpler: fill the ring faster than reaping by
	// queueing to a NIC whose transmit engine is disabled.
	regs, _ := m.Dom0.AS.Load(d.Netdev+kernel.NdBase, 4)
	if err := m.Dom0.AS.Store(regs+0x400, 4, 0); err != nil { // TCTL off
		t.Fatal(err)
	}
	m.HV.Switch(m.DomU)
	frame := EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.NIC.MAC, 0x0800, payload(200, 1))
	busy := false
	for i := 0; i < 16; i++ {
		if err := tw.GuestTransmit(d, frame); err == ErrTxBusy {
			busy = true
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !busy {
		t.Fatal("pool never exhausted with TCTL off")
	}
	// Re-enable and kick the engine, then recover through the real path:
	// the next interrupt runs the driver, whose clean_tx frees the pool
	// buffers parked on completed descriptors.
	if err := m.Dom0.AS.Store(regs+0x400, 4, 2); err != nil { // TCTL_EN
		t.Fatal(err)
	}
	priv, _ := m.Dom0.AS.Load(d.Netdev+kernel.NdPriv, 4)
	tail, _ := m.Dom0.AS.Load(priv+20, 4) // AD_TX_TAIL
	m.Dom0.AS.Store(regs+0x3818, 4, tail) // rewrite TDT: drain the backlog
	rx := EthernetFrame(d.NIC.MAC, [6]byte{3, 3, 3, 3, 3, 3}, 0x0800, payload(100, 9))
	if !d.NIC.Inject(rx) {
		t.Fatal("inject")
	}
	if err := tw.HandleIRQ(d); err != nil { // ICR has TXDW|RXT0: reaps TX
		t.Fatal(err)
	}
	if _, err := tw.DeliverPending(m.DomU); err != nil {
		t.Fatal(err)
	}
	if tw.PoolFree() == 0 {
		t.Fatal("interrupt path did not replenish the pool")
	}
	if err := tw.GuestTransmit(d, frame); err != nil {
		t.Fatalf("pool did not recover: %v (free=%d)", err, tw.PoolFree())
	}
}

// TestMapWindowCoversWorkload: the paper's stlb maps "up to 16MB of dom0
// virtual memory"; our window is larger but finite. A receive burst that
// touches many distinct pool buffers stays within it.
func TestMapWindowCoversWorkload(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	m.HV.Switch(m.DomU)
	for i := 0; i < 300; i++ {
		rx := EthernetFrame(d.NIC.MAC, [6]byte{9, 9, 9, 9, 9, byte(i)}, 0x0800, payload(cost.MTU-14, byte(i)))
		if !d.NIC.Inject(rx) {
			t.Fatal("inject")
		}
		if err := tw.HandleIRQ(d); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.DeliverPending(m.DomU); err != nil {
			t.Fatal(err)
		}
	}
	// Mapped pages stay bounded (buffers are recycled, not leaked).
	if n := tw.SV.MappedPages(); n > 2048 {
		t.Errorf("SVM mapped %d pages (8 MB+) for a recycled workload", n)
	}
}

// TestManagementOpsViaVMInstance: ethtool-style operations keep running in
// dom0 against the shared data while the hypervisor instance does I/O
// (§3.1: "avoids the need to port existing user-space tools").
func TestManagementOpsViaVMInstance(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	capture(d)
	m.HV.Switch(m.DomU)
	frame := EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.NIC.MAC, 0x0800, payload(600, 1))
	if err := tw.GuestTransmit(d, frame); err != nil {
		t.Fatal(err)
	}
	// set_mac via the VM instance reprograms the NIC the hypervisor
	// instance is using.
	macBuf := m.K.Alloc(8)
	newMac := []byte{0x02, 0xDE, 0xAD, 0xBE, 0xEF, 0x01}
	if err := m.Dom0.AS.WriteBytes(macBuf, newMac); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CallDriver(e1000.FnSetMac, d.Netdev, macBuf); err != nil {
		t.Fatalf("set_mac: %v", err)
	}
	if !bytes.Equal(d.NIC.MAC[:], newMac) {
		t.Errorf("NIC MAC = %x", d.NIC.MAC)
	}
	// ethtool get_link still works.
	if v, err := m.CallDriver(e1000.FnEthtoolGetLink, d.Netdev); err != nil || v != 1 {
		t.Errorf("get_link = %d, %v", v, err)
	}
	// And the hypervisor instance still transmits afterwards.
	if err := tw.GuestTransmit(d, frame); err != nil {
		t.Fatalf("transmit after management op: %v", err)
	}
	_ = mem.PageSize
}
