package core

import (
	"fmt"

	"twindrivers/internal/cpu"
	"twindrivers/internal/cycles"
	"twindrivers/internal/mem"
	"twindrivers/internal/telemetry"
)

// Observability surface of the twin: the closure-backed gauges a
// telemetry.Registry snapshots on demand, and the per-guest TLB
// counters the posted-RX tests assert against. Nothing here runs on
// the hot path — registration happens once at machine construction,
// and every closure reads state the runtime already maintains.

// GuestTLBStats reports a guest's posted-path translation-cache
// counters: hits (24-cycle lookups) and misses (260-cycle page walks).
// The split is load-bearing for the posted-RX win, so it is exposed
// directly rather than inferred from cycle totals.
func (t *Twin) GuestTLBStats(dom mem.Owner) (hits, misses uint64) {
	if g, ok := t.guestIO[dom]; ok {
		return g.gtlb.Hits, g.gtlb.Misses
	}
	return 0, 0
}

// metricFaultKinds are the classified fault kinds the faults-by-kind
// gauge enumerates (every kind abort can record).
var metricFaultKinds = []cpu.FaultKind{
	cpu.FaultPage, cpu.FaultProtection, cpu.FaultPrivileged,
	cpu.FaultInvalidOp, cpu.FaultBadCall, cpu.FaultBadFetch,
	cpu.FaultDivide, cpu.FaultWatchdog, cpu.FaultShadowStack,
	cpu.FaultStackGuard,
}

// PublishMetrics registers this twin's gauges with a telemetry
// registry: pool occupancy, hypervisor boundary-crossing counters,
// fault counts by kind, per-guest ring/TLB state, and per-queue cycle
// and steering distribution. A machine built while a telemetry session
// is active publishes automatically; harnesses with their own registry
// call it directly. Every gauge is a closure over live state, so one
// registration serves the whole run.
func (t *Twin) PublishMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	base := map[string]string{
		"backend": t.M.Model.Name,
		"twin":    fmt.Sprintf("%d", reg.NextInstance()),
	}
	labels := func(extra ...string) map[string]string {
		m := make(map[string]string, len(base)+len(extra)/2)
		for k, v := range base {
			m[k] = v
		}
		for i := 0; i+1 < len(extra); i += 2 {
			m[extra[i]] = extra[i+1]
		}
		return m
	}
	gauge := func(name string, l map[string]string, read func() float64) {
		reg.Register(name, l, read)
	}

	gauge("twin_pool_free", labels(), func() float64 { return float64(t.PoolFree()) })
	gauge("twin_pool_outstanding", labels(), func() float64 { return float64(t.PoolOutstanding()) })
	gauge("twin_pool_capacity", labels(), func() float64 { return float64(t.PoolCapacity()) })
	gauge("twin_faults_total", labels(), func() float64 { return float64(t.Faults) })
	gauge("twin_dead", labels(), func() float64 {
		if t.Dead {
			return 1
		}
		return 0
	})
	gauge("hv_hypercalls_total", labels(), func() float64 { return float64(t.M.HV.Hypercalls) })
	gauge("hv_switches_total", labels(), func() float64 { return float64(t.M.HV.Switches) })
	gauge("hv_upcalls_total", labels(), func() float64 { return float64(t.UpcallsPerformed()) })

	for _, kind := range metricFaultKinds {
		kind := kind
		gauge("twin_faults_by_kind", labels("kind", kind.String()), func() float64 {
			n := 0
			for _, r := range t.FaultLog() {
				if r.Kind == kind {
					n++
				}
			}
			return float64(n)
		})
	}

	for _, id := range t.guestOrder {
		id := id
		g := t.guestIO[id]
		gl := labels("guest", fmt.Sprintf("%d", id))
		gauge("twin_tx_staged", gl, func() float64 {
			n, _ := t.StagedTx(id)
			return float64(n)
		})
		gauge("twin_rx_pending", gl, func() float64 { return float64(t.PendingRx(id)) })
		gauge("twin_queue", gl, func() float64 { return float64(t.QueueOf(id)) })
		gauge("gtlb_hits_total", gl, func() float64 { return float64(g.gtlb.Hits) })
		gauge("gtlb_misses_total", gl, func() float64 { return float64(g.gtlb.Misses) })
		gauge("gtlb_violations_total", gl, func() float64 { return float64(g.gtlb.Violations) })
		gauge("gtlb_cached_entries", gl, func() float64 { return float64(g.gtlb.Cached()) })
		gauge("gtlb_hit_rate", gl, func() float64 {
			total := g.gtlb.Hits + g.gtlb.Misses
			if total == 0 {
				return 0
			}
			return float64(g.gtlb.Hits) / float64(total)
		})
	}

	for q := 0; q < t.nQueues; q++ {
		q := q
		ql := labels("queue", fmt.Sprintf("%d", q))
		gauge("queue_guests", ql, func() float64 { return float64(len(t.queueGuests[q])) })
		for _, comp := range []cycles.Component{
			cycles.CompDom0, cycles.CompDomU, cycles.CompXen, cycles.CompDriver,
		} {
			comp := comp
			gauge("queue_cycles_total", labels("queue", fmt.Sprintf("%d", q), "component", string(comp)),
				func() float64 { return float64(t.queueMeters[q].Get(comp)) })
		}
	}
}
