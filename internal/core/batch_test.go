package core

import (
	"bytes"
	"errors"
	"testing"
)

// batchFrames builds n distinct frames for device d.
func batchFrames(d *NICDev, n, size int) [][]byte {
	frames := make([][]byte, n)
	for i := range frames {
		frames[i] = EthernetFrame([6]byte{2, 2, 2, 2, 2, byte(i)}, d.NIC.MAC, 0x0800, payload(size, byte(i)))
	}
	return frames
}

func TestBatchTransmitDeliversAllFramesInOrder(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	got := capture(d)
	m.HV.Switch(m.DomU)
	sw := m.HV.Switches

	frames := batchFrames(d, 10, 800)
	sent, err := tw.GuestTransmitBatch(d, frames)
	if err != nil {
		t.Fatalf("batch transmit: %v", err)
	}
	if sent != len(frames) {
		t.Fatalf("sent = %d, want %d", sent, len(frames))
	}
	if len(*got) != len(frames) {
		t.Fatalf("wire saw %d packets", len(*got))
	}
	for i, f := range frames {
		if !bytes.Equal((*got)[i], f) {
			t.Errorf("frame %d corrupted through the ring + frag chain", i)
		}
	}
	if m.HV.Switches != sw {
		t.Errorf("batch transmit performed %d domain switches", m.HV.Switches-sw)
	}
}

// TestBatchOfOneIsCycleIdentical is the load-bearing equivalence: a batch
// of one must charge exactly the cycles, hypercalls and events of the
// per-packet GuestTransmit, so all existing per-packet results stay valid.
func TestBatchOfOneIsCycleIdentical(t *testing.T) {
	run := func(batched bool) (total uint64, perComp string, hypercalls, events uint64) {
		m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
		if err != nil {
			t.Fatal(err)
		}
		d := m.Devs[0]
		d.NIC.OnTransmit = func([]byte) {}
		m.HV.Switch(m.DomU)
		m.HV.Meter.Reset()
		m.HV.ResetStats()
		for i := 0; i < 50; i++ {
			frame := EthernetFrame([6]byte{2, 2, 2, 2, 2, 2}, d.NIC.MAC, 0x0800, payload(1200, byte(i)))
			if batched {
				if _, err := tw.GuestTransmitBatch(d, [][]byte{frame}); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := tw.GuestTransmit(d, frame); err != nil {
					t.Fatal(err)
				}
			}
		}
		return m.HV.Meter.Total(), m.HV.Meter.String(), m.HV.Hypercalls, m.HV.Events
	}
	pTotal, pComp, pHC, pEv := run(false)
	bTotal, bComp, bHC, bEv := run(true)
	if pTotal != bTotal || pComp != bComp {
		t.Errorf("cycles differ: per-packet %d (%s), batch-of-1 %d (%s)", pTotal, pComp, bTotal, bComp)
	}
	if pHC != bHC {
		t.Errorf("hypercalls differ: %d vs %d", pHC, bHC)
	}
	if pEv != bEv {
		t.Errorf("events differ: %d vs %d", pEv, bEv)
	}
}

func TestBatchLargerThanRingIsChunked(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	got := capture(d)
	m.HV.Switch(m.DomU)
	m.HV.ResetStats()

	const n = 2*TxRingSlots + 7 // 71: three ring-sized chunks
	sent, err := tw.GuestTransmitBatch(d, batchFrames(d, n, 600))
	if err != nil {
		t.Fatal(err)
	}
	if sent != n || len(*got) != n {
		t.Fatalf("sent = %d wire = %d, want %d", sent, len(*got), n)
	}
	if want := uint64(3); m.HV.Hypercalls != want {
		t.Errorf("hypercalls = %d, want %d (one per ring-full)", m.HV.Hypercalls, want)
	}
}

func TestBatchRejectsOversizedFrame(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	got := capture(d)
	m.HV.Switch(m.DomU)

	frames := batchFrames(d, 3, 600)
	frames[1] = make([]byte, TxSlotBytes+1)
	sent, err := tw.GuestTransmitBatch(d, frames)
	if err == nil {
		t.Fatal("oversized frame accepted")
	}
	if sent != 0 || len(*got) != 0 {
		t.Errorf("sent %d / wire %d frames despite validation failure", sent, len(*got))
	}
}

func TestBatchPartialOnPoolExhaustion(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	d.NIC.OnTransmit = func([]byte) {}
	m.HV.Switch(m.DomU)

	// Leave exactly one pooled sk_buff: the driver's tx clean cannot
	// recycle it before the next frame asks, so the batch completes short
	// with ErrTxBusy, reporting how many frames went out.
	for tw.PoolFree() > 1 {
		if _, ok := tw.poolGet(); !ok {
			t.Fatal("pool drain failed")
		}
	}
	sent, err := tw.GuestTransmitBatch(d, batchFrames(d, 8, 600))
	if !errors.Is(err, ErrTxBusy) {
		t.Fatalf("err = %v, want ErrTxBusy (sent=%d)", err, sent)
	}
	if sent < 1 || sent >= 8 {
		t.Errorf("sent = %d, want a short but nonzero count", sent)
	}
	// The ring was cleaned up: a refilled pool transmits normally again.
	for i := 0; i < 8; i++ {
		tw.poolPut(m.K.AllocSkb(0))
	}
	if ln, _ := tw.guestIO[m.DomU.ID].ring.Len(); ln != 0 {
		t.Fatalf("ring still holds %d stale descriptors", ln)
	}
}

func TestBatchReceiveSingleIRQDrainsAll(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	m.HV.Switch(m.DomU)

	const n = 24
	frames := make([][]byte, n)
	for i := range frames {
		frames[i] = EthernetFrame(d.NIC.MAC, [6]byte{3, 3, 3, 3, 3, byte(i)}, 0x0800, payload(900, byte(i)))
		if !d.NIC.Inject(frames[i]) {
			t.Fatalf("inject %d failed", i)
		}
	}
	// One coalesced interrupt services the whole burst.
	if err := tw.HandleIRQ(d); err != nil {
		t.Fatal(err)
	}
	if got := tw.PendingRx(m.DomU.ID); got != n {
		t.Fatalf("pending rx after one IRQ = %d, want %d", got, n)
	}
	ev := m.HV.Events
	pkts, err := tw.DeliverPendingBatch(m.DomU, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != n {
		t.Fatalf("delivered %d", len(pkts))
	}
	for i := range pkts {
		if !bytes.Equal(pkts[i], frames[i]) {
			t.Errorf("packet %d corrupted", i)
		}
	}
	if m.HV.Events-ev != 1 {
		t.Errorf("batch delivery raised %d guest notifications, want 1", m.HV.Events-ev)
	}
}

func TestDeliverPendingBatchBoundsTheBatch(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	m.HV.Switch(m.DomU)
	for i := 0; i < 5; i++ {
		if !d.NIC.Inject(EthernetFrame(d.NIC.MAC, [6]byte{3, 3, 3, 3, 3, byte(i)}, 0x0800, payload(200, byte(i)))) {
			t.Fatal("inject failed")
		}
	}
	if err := tw.HandleIRQ(d); err != nil {
		t.Fatal(err)
	}
	pkts, err := tw.DeliverPendingBatch(m.DomU, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 3 || tw.PendingRx(m.DomU.ID) != 2 {
		t.Fatalf("first call: %d delivered, %d pending", len(pkts), tw.PendingRx(m.DomU.ID))
	}
	pkts, err = tw.DeliverPendingBatch(m.DomU, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 2 || tw.PendingRx(m.DomU.ID) != 0 {
		t.Fatalf("second call: %d delivered, %d pending", len(pkts), tw.PendingRx(m.DomU.ID))
	}
}

func TestBatchCoalescesNotificationsInsideWindow(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	m.HV.Switch(m.DomU)
	for i := 0; i < 4; i++ {
		if !d.NIC.Inject(EthernetFrame(d.NIC.MAC, [6]byte{3, 3, 3, 3, 3, byte(i)}, 0x0800, payload(200, byte(i)))) {
			t.Fatal("inject failed")
		}
	}
	if err := tw.HandleIRQ(d); err != nil {
		t.Fatal(err)
	}
	ev := m.HV.Events
	tw.Coalescer.Begin()
	for i := 0; i < 2; i++ {
		if _, err := tw.DeliverPendingBatch(m.DomU, 2); err != nil {
			t.Fatal(err)
		}
	}
	tw.Coalescer.End()
	if m.HV.Events-ev != 1 {
		t.Errorf("window raised %d notifications, want 1", m.HV.Events-ev)
	}
	if tw.Coalescer.Coalesced == 0 {
		t.Error("coalescer absorbed nothing")
	}
}

// TestBatchUpcallIRQCoalescing: with a support routine demoted to an
// upcall, a batch performs the upcall per frame (the routine must still
// run) but the virtual-interrupt deliveries to dom0 coalesce to one per
// batch window.
func TestBatchUpcallIRQCoalescing(t *testing.T) {
	sup := []string{}
	for _, n := range DefaultHvSupport() {
		if n != "spin_unlock_irqrestore" {
			sup = append(sup, n)
		}
	}
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{HvSupport: sup})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	d.NIC.OnTransmit = func([]byte) {}
	m.HV.Switch(m.DomU)

	const n = 8
	up0 := tw.UpcallsPerformed()
	del0, co0 := tw.Coalescer.Delivered, tw.Coalescer.Coalesced
	sent, err := tw.GuestTransmitBatch(d, batchFrames(d, n, 600))
	if err != nil || sent != n {
		t.Fatalf("sent = %d err = %v", sent, err)
	}
	ups := tw.UpcallsPerformed() - up0
	if ups < n {
		t.Fatalf("upcalls = %d, want >= %d (one per frame)", ups, n)
	}
	delivered := tw.Coalescer.Delivered - del0
	coalesced := tw.Coalescer.Coalesced - co0
	if delivered != 1 {
		t.Errorf("dom0 IRQ deliveries = %d, want 1 per batch", delivered)
	}
	if coalesced != ups-1 {
		t.Errorf("coalesced = %d, want %d", coalesced, ups-1)
	}
}
