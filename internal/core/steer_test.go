package core

import (
	"testing"
	"testing/quick"
)

// TestSteerTotal is the totality property: for any flow (src, dst,
// guest, seed) and any queue count, the steer maps to exactly one queue
// in [0, queues) — no frame can fall outside the queue set, whatever a
// guest puts in its MAC fields.
func TestSteerTotal(t *testing.T) {
	prop := func(src, dst [6]byte, guest uint32, seed uint64, qraw uint8) bool {
		queues := 1 + int(qraw%16)
		q := SteerQueue(RSSHash(src, dst, guest, seed), queues)
		return q >= 0 && q < queues
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestSteerDeterministic is the stability property: the same flow under
// the same seed steers to the same queue every time — a flow never
// migrates between queues mid-burst, which is what lets a multi-queue
// receive path preserve per-flow delivery order.
func TestSteerDeterministic(t *testing.T) {
	prop := func(src, dst [6]byte, guest uint32, seed uint64, qraw uint8) bool {
		queues := 1 + int(qraw%16)
		a := SteerQueue(RSSHash(src, dst, guest, seed), queues)
		b := SteerQueue(RSSHash(src, dst, guest, seed), queues)
		return a == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestSteerCoversQueues asserts the hash actually spreads: 256 distinct
// flows through an 8-queue steer must land on every queue. A degenerate
// hash that satisfies totality by mapping everything to queue 0 would
// serialize the whole device behind one service loop.
func TestSteerCoversQueues(t *testing.T) {
	const queues = 8
	hit := make([]int, queues)
	for i := 0; i < 256; i++ {
		src := [6]byte{0x02, 0x00, 0x00, 0x00, byte(i >> 8), byte(i)}
		dst := [6]byte{0x02, 0x01, 0x00, 0x00, 0x00, 0x01}
		hit[SteerQueue(RSSHash(src, dst, 0, rssDefaultSeed), queues)]++
	}
	for q, n := range hit {
		if n == 0 {
			t.Errorf("queue %d received no flows of 256", q)
		}
	}
}

// TestShardWalkBalanced pins the guest-sharding contract: for every
// (guests, queues) shape the modular walk from shardBase keeps the
// per-queue load within one guest of even, so no service queue can be
// assigned a pathological share of the domains.
func TestShardWalkBalanced(t *testing.T) {
	for queues := 1; queues <= 8; queues++ {
		base := shardBase(queues)
		if base < 0 || base >= queues {
			t.Fatalf("shardBase(%d) = %d out of range", queues, base)
		}
		for guests := 1; guests <= 32; guests++ {
			load := make([]int, queues)
			for gi := 0; gi < guests; gi++ {
				load[(base+gi)%queues]++
			}
			min, max := load[0], load[0]
			for _, n := range load {
				if n < min {
					min = n
				}
				if n > max {
					max = n
				}
			}
			if max-min > 1 {
				t.Errorf("guests=%d queues=%d: shard load spread %d..%d", guests, queues, min, max)
			}
		}
	}
}
