// Traced parallel queue service. External test package: mqnic imports
// core, so this cannot live inside package core (same split as the
// queue-meter tests). The CI race leg's -run pattern
// (TestServiceAllQueues) picks this up, making it the proof that the
// one-writer-per-lane discipline holds under the goroutine-per-queue
// sweep.
package core_test

import (
	"strings"
	"testing"

	"twindrivers/internal/core"
	"twindrivers/internal/mqnic"
	"twindrivers/internal/telemetry"
)

func TestServiceAllQueuesTraced(t *testing.T) {
	const guests, queues = 8, 4
	tr := telemetry.New(0)
	m, tw, err := core.NewTwinMachineModel(1, guests, mqnic.DriverModel(), core.TwinConfig{
		Queues: queues, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	d.Dev.SetOnTransmit(func([]byte) {})
	for gi, dom := range m.Guests {
		frames := make([][]byte, 8)
		for i := range frames {
			payload := make([]byte, 400)
			for j := range payload {
				payload[j] = byte(gi + i + j)
			}
			frames[i] = core.EthernetFrame(
				[6]byte{2, 2, 2, 2, 2, 2},
				[6]byte{0x02, 0x60, 0, 0, byte(gi), byte(i)},
				0x0800, payload)
		}
		if _, err := tw.StageTransmitBatch(dom, frames); err != nil {
			t.Fatalf("guest %d stage: %v", gi, err)
		}
	}
	if _, err := tw.ServiceAllQueues(d, 0); err != nil {
		t.Fatalf("service: %v", err)
	}

	// Every queue lane recorded its sweep, and starts pair with ends.
	seen := 0
	for _, l := range tr.Lanes() {
		if idx := strings.LastIndex(l.Name(), "/q"); idx < 0 {
			continue
		}
		seen++
		if l.Recorded() == 0 {
			t.Errorf("queue lane %s recorded nothing", l.Name())
		}
		starts, ends := 0, 0
		for _, e := range l.Events() {
			switch e.Kind {
			case telemetry.EvSweepStart:
				starts++
			case telemetry.EvSweepEnd:
				ends++
			}
		}
		if starts == 0 || starts != ends {
			t.Errorf("lane %s: %d sweep starts, %d ends", l.Name(), starts, ends)
		}
	}
	if seen != queues {
		t.Fatalf("found %d queue lanes, want %d", seen, queues)
	}

	// The parallel traced sweep must export a valid nested trace too.
	var sb strings.Builder
	if err := telemetry.WriteChromeTrace(&sb, tr); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateChromeTrace([]byte(sb.String())); err != nil {
		t.Fatalf("traced parallel sweep exports invalid chrome trace: %v", err)
	}
}
