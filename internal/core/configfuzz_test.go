package core

import (
	"bytes"
	"errors"
	"testing"

	"twindrivers/internal/kernel"
	"twindrivers/internal/mem"
)

// cloneEvents deep-copies a configuration log (Args slices included) so a
// test can scribble on the live log and later restore the original.
func cloneEvents(evs []ConfigEvent) []ConfigEvent {
	out := make([]ConfigEvent, len(evs))
	for i, ev := range evs {
		out[i] = ev
		out[i].Args = append([]uint32(nil), ev.Args...)
	}
	return out
}

// FuzzConfigLogReplay fuzzes recovery's replay input: the configuration
// log itself. A wild write kills the twin, the log is truncated or has one
// event field mutated, and Revive replays it. The contract under fuzz:
//
//   - replay never panics, whatever the log says;
//   - a replay that errors fails closed: the twin stays dead, every driver
//     operation keeps returning ErrDriverDead — no half-installed instance;
//   - structurally invalid logs (any proper truncation drops the final
//     open; unknown ops) are rejected as ErrConfigCorrupt before replay
//     executes anything;
//   - after restoring the intact log, Revive succeeds and the revived
//     instance moves a frame to the wire — a hostile log costs nothing
//     but the failed attempt.
//
// Every iteration builds a fresh machine: each Revive permanently consumes
// append-only hypervisor reload arenas, so reusing one machine across the
// corpus would exhaust them and fail for the wrong reason.
func FuzzConfigLogReplay(f *testing.F) {
	f.Add(uint16(0), byte(0), uint64(0), byte(1))          // truncate to empty
	f.Add(uint16(9), byte(0), uint64(0), byte(1))          // truncate mid-log
	f.Add(uint16(0), byte(0), uint64(200), byte(0))        // unknown op
	f.Add(uint16(0), byte(1), uint64(7), byte(0))          // netdev dev index out of range
	f.Add(uint16(0), byte(3), uint64(0x40), byte(0))       // netdev addr not the device's
	f.Add(uint16(3), byte(4), uint64(33), byte(0))         // ring capacity not a power of two
	f.Add(uint16(3), byte(4), uint64(1<<20), byte(0))      // ring capacity over MaxRingSlots
	f.Add(uint16(6), byte(5), uint64(0), byte(0))          // probe args truncated away
	f.Add(uint16(4), byte(2), uint64(99), byte(0))         // ring dom -> unknown domain
	f.Add(uint16(2), byte(3), uint64(0xF1000040), byte(0)) // addr -> hypervisor code

	f.Fuzz(func(t *testing.T, idx uint16, field byte, value uint64, trunc byte) {
		m, tw, err := NewTwinMachine(1, 2, TwinConfig{})
		if err != nil {
			t.Fatal(err)
		}
		d := m.Devs[0]
		got := capture(d)
		m.HV.Switch(m.DomU)
		killTwin(t, m, tw, d)

		good := cloneEvents(m.Config.Events)
		n := len(good)
		truncated := false
		mutatedOp := ConfigOp(0xFF)
		opKnown := func(op ConfigOp) bool { return op <= OpRxRing }
		if trunc&1 == 1 {
			keep := int(idx) % (n + 1)
			truncated = keep < n
			m.Config.Events = m.Config.Events[:keep]
		} else {
			ev := &m.Config.Events[int(idx)%n]
			switch field % 6 {
			case 0:
				ev.Op = ConfigOp(value)
				mutatedOp = ev.Op
			case 1:
				ev.Dev = int(int32(value))
			case 2:
				ev.Dom = mem.Owner(value)
			case 3:
				ev.Addr = uint32(value)
			case 4:
				ev.Aux = uint32(value)
			case 5:
				if len(ev.Args) > 0 && value&1 == 1 {
					ev.Args[int(value>>1)%len(ev.Args)] = uint32(value >> 32)
				} else {
					ev.Args = ev.Args[:0]
				}
			}
		}

		err = tw.Revive()
		if err == nil {
			// The mutation was benign (or a no-op): the twin must be fully
			// alive, not somewhere in between.
			if tw.Dead {
				t.Fatal("Revive returned nil but the twin is dead")
			}
		} else {
			// Fail closed: dead, and every driver operation says so.
			if !tw.Dead {
				t.Fatalf("Revive failed (%v) but left the twin alive", err)
			}
			frame := EthernetFrame([6]byte{8, 8, 8, 8, 8, 8}, d.NIC.MAC, 0x0800, payload(120, 3))
			if txErr := tw.GuestTransmit(d, frame); !errors.Is(txErr, ErrDriverDead) {
				t.Fatalf("transmit after failed replay: %v, want ErrDriverDead", txErr)
			}
			if _, sErr := tw.StageTransmitBatch(m.DomU, [][]byte{frame}); !errors.Is(sErr, ErrDriverDead) {
				t.Fatalf("stage after failed replay: %v, want ErrDriverDead", sErr)
			}
			// Structural damage must be caught by validation, before replay
			// executed anything.
			if truncated && !errors.Is(err, ErrConfigCorrupt) {
				t.Fatalf("truncated log rejected as %v, want ErrConfigCorrupt", err)
			}
			if mutatedOp != 0xFF && !opKnown(mutatedOp) && !errors.Is(err, ErrConfigCorrupt) {
				t.Fatalf("unknown op rejected as %v, want ErrConfigCorrupt", err)
			}
		}

		// The intact log always revives, whatever the hostile one did.
		m.Config.Events = good
		if err := tw.Revive(); err != nil {
			t.Fatalf("revive with restored log: %v", err)
		}
		m.HV.Switch(m.DomU)
		*got = (*got)[:0]
		frame := EthernetFrame([6]byte{7, 7, 7, 7, 7, 7}, d.NIC.MAC, 0x0800, payload(240, 9))
		if err := tw.GuestTransmit(d, frame); err != nil {
			t.Fatalf("transmit after restored revive: %v", err)
		}
		if len(*got) != 1 || !bytes.Equal((*got)[0], frame) {
			t.Fatalf("restored instance put %d frames on the wire", len(*got))
		}
	})
}

// TestReplayConfigFailsClosed pins the validation classes the fuzz target
// explores probabilistically: each corruption yields ErrConfigCorrupt from
// Revive, the twin stays dead with every operation returning ErrDriverDead,
// and no event side effect ran (the wild write's scribble is still there —
// validation rejected the log before replay healed anything).
func TestReplayConfigFailsClosed(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(evs []ConfigEvent) []ConfigEvent
	}{
		{"truncated-empty", func(evs []ConfigEvent) []ConfigEvent { return evs[:0] }},
		{"truncated-before-open", func(evs []ConfigEvent) []ConfigEvent { return evs[:len(evs)-1] }},
		{"unknown-op", func(evs []ConfigEvent) []ConfigEvent {
			evs[0].Op = ConfigOp(99)
			return evs
		}},
		{"dev-out-of-range", func(evs []ConfigEvent) []ConfigEvent {
			for i := range evs {
				if evs[i].Op == OpProbe {
					evs[i].Dev = 40
				}
			}
			return evs
		}},
		{"netdev-addr-scribbled", func(evs []ConfigEvent) []ConfigEvent {
			for i := range evs {
				if evs[i].Op == OpNetdev {
					evs[i].Addr += 4
				}
			}
			return evs
		}},
		{"probe-args-dropped", func(evs []ConfigEvent) []ConfigEvent {
			for i := range evs {
				if evs[i].Op == OpProbe {
					evs[i].Args = nil
				}
			}
			return evs
		}},
		{"ring-capacity-not-pow2", func(evs []ConfigEvent) []ConfigEvent {
			for i := range evs {
				if evs[i].Op == OpRing {
					evs[i].Aux = 33
				}
			}
			return evs
		}},
		{"rxring-capacity-huge", func(evs []ConfigEvent) []ConfigEvent {
			for i := range evs {
				if evs[i].Op == OpRxRing {
					evs[i].Aux = mem.MaxRingSlots * 2
				}
			}
			return evs
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
			if err != nil {
				t.Fatal(err)
			}
			d := m.Devs[0]
			capture(d)
			m.HV.Switch(m.DomU)
			killTwin(t, m, tw, d)
			good := cloneEvents(m.Config.Events)

			m.Config.Events = tc.corrupt(m.Config.Events)
			err = tw.Revive()
			if !errors.Is(err, ErrConfigCorrupt) {
				t.Fatalf("Revive = %v, want ErrConfigCorrupt", err)
			}
			if !tw.Dead {
				t.Fatal("twin alive after rejected replay")
			}
			// Fail closed means no side effect ran either: killTwin's wild
			// write is still in netdev->priv because validation refused the
			// log before the OpNetdev heal executed.
			if priv, _ := m.Dom0.AS.Load(d.Netdev+kernel.NdPriv, 4); priv != 0xF1000040 {
				t.Fatalf("rejected replay ran side effects: priv=%#x", priv)
			}
			frame := EthernetFrame([6]byte{2, 2, 2, 2, 2, 2}, d.NIC.MAC, 0x0800, payload(100, 1))
			if txErr := tw.GuestTransmit(d, frame); !errors.Is(txErr, ErrDriverDead) {
				t.Fatalf("transmit: %v, want ErrDriverDead", txErr)
			}

			// And the intact log still revives the twin afterwards.
			m.Config.Events = good
			if err := tw.Revive(); err != nil {
				t.Fatalf("revive with intact log: %v", err)
			}
			m.HV.Switch(m.DomU)
			if err := tw.GuestTransmit(d, frame); err != nil {
				t.Fatalf("transmit after recovery: %v", err)
			}
		})
	}
}
