package core

import (
	"bytes"
	"strings"
	"testing"

	"twindrivers/internal/e1000"
	"twindrivers/internal/kernel"
)

// capture wires a NIC's transmit side to a byte sink.
func capture(d *NICDev) *[][]byte {
	var got [][]byte
	d.NIC.OnTransmit = func(pkt []byte) {
		cp := append([]byte(nil), pkt...)
		got = append(got, cp)
	}
	return &got
}

func payload(n int, seed byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = seed + byte(i)
	}
	return p
}

// --- Native machine: the original driver on real simulated hardware -----

func TestNativeBringup(t *testing.T) {
	m, err := NewMachine(1)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	// Probe + open ran: the netdev is registered, the xmit pointer
	// installed, the RX ring filled (255 descriptors), interrupts
	// unmasked.
	if len(m.K.Netdevs()) != 1 {
		t.Errorf("netdevs = %d", len(m.K.Netdevs()))
	}
	fp, _ := m.Dom0.AS.Load(d.Netdev+kernel.NdXmit, 4)
	if want, _ := m.VMImage.FuncEntry(e1000.FnXmit); fp != want {
		t.Errorf("xmit fp = %#x, want %#x", fp, want)
	}
	if !m.K.HasIRQ(d.IRQ) {
		t.Error("irq not registered")
	}
	if m.K.PendingTimers() != 1 {
		t.Errorf("watchdog timers = %d", m.K.PendingTimers())
	}
}

func TestNativeTransmit(t *testing.T) {
	m, err := NewMachine(1)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	got := capture(d)

	frame := EthernetFrame([6]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, d.NIC.MAC, 0x0800, payload(1000, 1))
	skb, err := m.NewTxSkb(d, frame)
	if err != nil {
		t.Fatal(err)
	}
	ret, err := m.DevQueueXmit(d, skb)
	if err != nil {
		t.Fatalf("xmit: %v", err)
	}
	if ret != 0 {
		t.Fatalf("xmit returned busy (%d)", ret)
	}
	if len(*got) != 1 {
		t.Fatalf("transmitted %d packets, want 1", len(*got))
	}
	if !bytes.Equal((*got)[0], frame) {
		t.Error("payload corrupted on the wire")
	}
	tx, _, _ := d.NIC.Counters()
	if tx != 1 {
		t.Errorf("GPTC = %d", tx)
	}
	// Stats accounted by the driver.
	if n := m.K.NetdevStat(d.Netdev, kernel.NdTxPackets); n != 1 {
		t.Errorf("netdev tx_packets = %d", n)
	}
}

func TestNativeTransmitMany(t *testing.T) {
	m, err := NewMachine(1)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	got := capture(d)
	const n = 600 // exceeds the ring: requires reaping to make progress
	for i := 0; i < n; i++ {
		frame := EthernetFrame(d.NIC.MAC, d.NIC.MAC, 0x0800, payload(200, byte(i)))
		skb, err := m.NewTxSkb(d, frame)
		if err != nil {
			t.Fatal(err)
		}
		ret, err := m.DevQueueXmit(d, skb)
		if err != nil {
			t.Fatalf("pkt %d: %v", i, err)
		}
		if ret != 0 {
			t.Fatalf("pkt %d: busy", i)
		}
	}
	if len(*got) != n {
		t.Errorf("transmitted %d, want %d", len(*got), n)
	}
}

func TestNativeReceive(t *testing.T) {
	m, err := NewMachine(1)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]

	frame := EthernetFrame(d.NIC.MAC, [6]byte{1, 2, 3, 4, 5, 6}, 0x0800, payload(800, 7))
	if !d.NIC.Inject(frame) {
		t.Fatal("inject failed: no RX descriptors")
	}
	// The interrupt fires the driver's clean_rx, which delivers via
	// netif_rx into the kernel backlog.
	if err := m.HandleIRQ(d); err != nil {
		t.Fatalf("irq: %v", err)
	}
	skb, ok := m.K.PopBacklog()
	if !ok {
		t.Fatal("no packet in backlog")
	}
	// eth_type_trans pulled the header and set the protocol.
	data, err := m.K.SkbBytes(skb)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, frame[14:]) {
		t.Error("received payload corrupted")
	}
	proto, _ := m.Dom0.AS.Load(skb+kernel.SkbProtocol, 4)
	if proto != 0x0800 {
		t.Errorf("protocol = %#x", proto)
	}
	if n := m.K.NetdevStat(d.Netdev, kernel.NdRxPackets); n != 1 {
		t.Errorf("rx_packets = %d", n)
	}
}

func TestNativeReceiveCopybreak(t *testing.T) {
	m, err := NewMachine(1)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	// A small packet (< 256 bytes) takes the rep-movs copybreak path.
	frame := EthernetFrame(d.NIC.MAC, [6]byte{9, 9, 9, 9, 9, 9}, 0x0806, payload(40, 3))
	if !d.NIC.Inject(frame) {
		t.Fatal("inject failed")
	}
	if err := m.HandleIRQ(d); err != nil {
		t.Fatal(err)
	}
	skb, ok := m.K.PopBacklog()
	if !ok {
		t.Fatal("no packet")
	}
	data, err := m.K.SkbBytes(skb)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, frame[14:]) {
		t.Error("copybreak corrupted payload")
	}
}

func TestNativeReceiveBurst(t *testing.T) {
	m, err := NewMachine(1)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	const n = 500 // wraps the RX ring
	delivered := 0
	m.K.OnNetifRx = func(skb uint32) {
		delivered++
		m.K.FreeSkb(skb)
	}
	for i := 0; i < n; i++ {
		frame := EthernetFrame(d.NIC.MAC, [6]byte{1, 1, 1, 1, 1, byte(i)}, 0x0800, payload(1200, byte(i)))
		if !d.NIC.Inject(frame) {
			t.Fatalf("pkt %d: no descriptors", i)
		}
		if err := m.HandleIRQ(d); err != nil {
			t.Fatal(err)
		}
	}
	if delivered != n {
		t.Errorf("delivered %d, want %d", delivered, n)
	}
}

func TestNativeWatchdogAndStats(t *testing.T) {
	m, err := NewMachine(1)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	got := capture(d)
	frame := EthernetFrame(d.NIC.MAC, d.NIC.MAC, 0x0800, payload(100, 1))
	skb, _ := m.NewTxSkb(d, frame)
	if _, err := m.DevQueueXmit(d, skb); err != nil {
		t.Fatal(err)
	}
	_ = got
	// Advance time; the watchdog harvests hardware counters and re-arms.
	for i := 0; i < 3; i++ {
		m.K.Tick()
	}
	if err := m.RunTimers(); err != nil {
		t.Fatalf("watchdog: %v", err)
	}
	if m.K.PendingTimers() != 1 {
		t.Error("watchdog did not re-arm")
	}
	// Management entry points.
	statsAddr, err := m.CallDriver(e1000.FnGetStats, d.Netdev)
	if err != nil {
		t.Fatal(err)
	}
	if statsAddr != d.Netdev+kernel.NdTxPackets {
		t.Errorf("get_stats = %#x", statsAddr)
	}
	if v, err := m.CallDriver(e1000.FnEthtoolGetLink, d.Netdev); err != nil || v != 1 {
		t.Errorf("get_link = %d, %v", v, err)
	}
	if v, err := m.CallDriver(e1000.FnChangeMtu, d.Netdev, 9000); err != nil || int32(v) != -22 {
		t.Errorf("change_mtu(9000) = %d, %v", int32(v), err)
	}
	if v, err := m.CallDriver(e1000.FnChangeMtu, d.Netdev, 1200); err != nil || v != 0 {
		t.Errorf("change_mtu(1200) = %d, %v", v, err)
	}
}

func TestNativeClose(t *testing.T) {
	m, err := NewMachine(1)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	if _, err := m.CallDriver(e1000.FnClose, d.Netdev); err != nil {
		t.Fatalf("close: %v", err)
	}
	if m.K.HasIRQ(d.IRQ) {
		t.Error("irq not freed")
	}
	if m.K.PendingTimers() != 0 {
		t.Error("watchdog not cancelled")
	}
	// The NIC refuses packets with RX disabled.
	if d.NIC.Inject([]byte{1, 2, 3}) {
		t.Error("NIC accepted packet after close")
	}
}

// --- Twin machine: derived driver in the hypervisor ----------------------

func TestTwinBringup(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if tw.RewriteStats.MemRewritten == 0 || tw.RewriteStats.StringExpanded == 0 || tw.RewriteStats.IndirectCalls == 0 {
		t.Errorf("rewrite stats look wrong: %v", tw.RewriteStats)
	}
	// Memory-referencing fraction in the ballpark the paper reports
	// (~25%).
	if f := tw.RewriteStats.MemRefFraction(); f < 0.15 || f > 0.45 {
		t.Errorf("mem fraction = %.2f", f)
	}
	// The VM instance (identity stlb) initialised the hardware.
	d := m.Devs[0]
	if !m.K.HasIRQ(d.IRQ) {
		t.Error("irq not registered by VM instance")
	}
	if tw.PoolFree() == 0 {
		t.Error("no pooled buffers")
	}
}

func TestTwinGuestTransmit(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	got := capture(d)

	m.HV.Switch(m.DomU) // guest context: no switch needed to transmit
	sw := m.HV.Switches

	frame := EthernetFrame([6]byte{2, 2, 2, 2, 2, 2}, d.NIC.MAC, 0x0800, payload(1400, 5))
	if err := tw.GuestTransmit(d, frame); err != nil {
		t.Fatalf("guest transmit: %v", err)
	}
	if len(*got) != 1 {
		t.Fatalf("transmitted %d packets", len(*got))
	}
	if !bytes.Equal((*got)[0], frame) {
		t.Error("frame corrupted through header-copy + frag chain")
	}
	if m.HV.Switches != sw {
		t.Errorf("transmit performed %d domain switches; the whole point is zero", m.HV.Switches-sw)
	}
	if tw.UpcallsPerformed() != 0 {
		t.Errorf("%d upcalls with the full support set", tw.UpcallsPerformed())
	}
	// The hypervisor support routines were used.
	for _, name := range []string{"dma_map_single", "spin_trylock", "spin_unlock_irqrestore"} {
		if tw.HvCalls[name] == 0 {
			t.Errorf("hv support %s not called", name)
		}
	}
}

func TestTwinGuestTransmitMany(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	got := capture(d)
	m.HV.Switch(m.DomU)
	const n = 700 // wraps the TX ring; pool recycling must work
	for i := 0; i < n; i++ {
		frame := EthernetFrame([6]byte{2, 2, 2, 2, 2, 2}, d.NIC.MAC, 0x0800, payload(900, byte(i)))
		if err := tw.GuestTransmit(d, frame); err != nil {
			t.Fatalf("pkt %d: %v (pool=%d)", i, err, tw.PoolFree())
		}
	}
	if len(*got) != n {
		t.Errorf("transmitted %d, want %d", len(*got), n)
	}
}

func TestTwinReceive(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	m.HV.Switch(m.DomU)
	sw := m.HV.Switches

	frame := EthernetFrame(d.NIC.MAC, [6]byte{3, 3, 3, 3, 3, 3}, 0x0800, payload(1300, 9))
	if !d.NIC.Inject(frame) {
		t.Fatal("inject failed")
	}
	if err := tw.HandleIRQ(d); err != nil {
		t.Fatalf("irq: %v", err)
	}
	if m.HV.Switches != sw {
		t.Errorf("receive performed %d domain switches", m.HV.Switches-sw)
	}
	if tw.PendingRx(m.DomU.ID) != 1 {
		t.Fatalf("pending rx = %d", tw.PendingRx(m.DomU.ID))
	}
	pkts, err := tw.DeliverPending(m.DomU)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 1 || !bytes.Equal(pkts[0], frame) {
		t.Errorf("delivered packet corrupted (%d pkts)", len(pkts))
	}
}

func TestTwinReceiveBurst(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	m.HV.Switch(m.DomU)
	const n = 400
	total := 0
	for i := 0; i < n; i++ {
		frame := EthernetFrame(d.NIC.MAC, [6]byte{3, 3, 3, 3, 3, byte(i)}, 0x0800, payload(1000, byte(i)))
		if !d.NIC.Inject(frame) {
			t.Fatalf("pkt %d: no descriptors", i)
		}
		if err := tw.HandleIRQ(d); err != nil {
			t.Fatal(err)
		}
		pkts, err := tw.DeliverPending(m.DomU)
		if err != nil {
			t.Fatal(err)
		}
		total += len(pkts)
	}
	if total != n {
		t.Errorf("delivered %d, want %d", total, n)
	}
}

func TestTwinSharedDataBothInstances(t *testing.T) {
	// The two instances share one copy of driver data: transmit stats
	// accumulated by the hypervisor instance are visible to the VM
	// instance's get_stats entry point running in dom0.
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	capture(d)
	m.HV.Switch(m.DomU)
	for i := 0; i < 5; i++ {
		frame := EthernetFrame([6]byte{4, 4, 4, 4, 4, 4}, d.NIC.MAC, 0x0800, payload(500, byte(i)))
		if err := tw.GuestTransmit(d, frame); err != nil {
			t.Fatal(err)
		}
	}
	// VM instance reads the same netdev stats words.
	if n := m.K.NetdevStat(d.Netdev, kernel.NdTxPackets); n != 5 {
		t.Errorf("tx_packets via dom0 = %d, want 5", n)
	}
	// And the watchdog (VM instance, dom0 context) still runs against the
	// same adapter state.
	m.K.Tick()
	m.K.Tick()
	m.K.Tick()
	if err := m.RunTimers(); err != nil {
		t.Fatalf("watchdog on shared data: %v", err)
	}
}

func TestTwinUpcalls(t *testing.T) {
	// Remove eth_type_trans from the hypervisor set: every received
	// packet then needs one upcall, with two domain switches.
	sup := []string{}
	for _, s := range DefaultHvSupport() {
		if s != "eth_type_trans" {
			sup = append(sup, s)
		}
	}
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{HvSupport: sup})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	m.HV.Switch(m.DomU)
	sw := m.HV.Switches

	frame := EthernetFrame(d.NIC.MAC, [6]byte{5, 5, 5, 5, 5, 5}, 0x0800, payload(600, 2))
	if !d.NIC.Inject(frame) {
		t.Fatal("inject")
	}
	if err := tw.HandleIRQ(d); err != nil {
		t.Fatal(err)
	}
	if tw.UpcallsPerformed() != 1 {
		t.Errorf("upcalls = %d, want 1", tw.UpcallsPerformed())
	}
	if got := m.HV.Switches - sw; got != 2 {
		t.Errorf("domain switches = %d, want 2 (to dom0 and back)", got)
	}
	// The routine really ran in dom0 — its effect on shared data is
	// identical.
	pkts, err := tw.DeliverPending(m.DomU)
	if err != nil || len(pkts) != 1 || !bytes.Equal(pkts[0], frame) {
		t.Errorf("upcalled path corrupted the packet: %v", err)
	}
}

func TestTwinContainmentWildWrite(t *testing.T) {
	// Corrupt the shared adapter state so the hypervisor driver
	// dereferences a hypervisor address: SVM must abort it; dom0 and the
	// VM instance survive.
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	m.HV.Switch(m.DomU)
	// netdev->priv now points into the hypervisor: the next invocation
	// dereferences it through SVM and dies.
	if err := m.Dom0.AS.Store(d.Netdev+kernel.NdPriv, 4, 0xF1000040); err != nil {
		t.Fatal(err)
	}
	frame := EthernetFrame([6]byte{6, 6, 6, 6, 6, 6}, d.NIC.MAC, 0x0800, payload(100, 1))
	err = tw.GuestTransmit(d, frame)
	if err == nil {
		t.Fatal("wild dereference not caught")
	}
	if !tw.Dead {
		t.Error("driver not marked dead")
	}
	log := tw.FaultLog()
	if len(log) == 0 || !strings.Contains(log[0].Cause, "protection") {
		t.Errorf("fault log: %v", log)
	}
	if log[0].Entry != e1000.FnXmit {
		t.Errorf("fault attributed to %q, want %q", log[0].Entry, e1000.FnXmit)
	}
	// Subsequent invocations refuse cleanly.
	if err := tw.GuestTransmit(d, frame); err == nil {
		t.Error("dead driver accepted work")
	}
	// dom0 is intact: restore priv and drive the VM instance natively.
	priv := m.K.NetdevStat(d.Netdev, kernel.NdPriv)
	_ = priv
}

func TestTwinWatchdogTimeout(t *testing.T) {
	// An infinite loop in the derived driver must be cut off by the
	// instruction budget (§4.5.2 / VINO-style containment). Simulate by
	// corrupting the TX ring state so clean_tx spins... simpler: set an
	// absurdly low budget so a normal invocation trips it.
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{Watchdog: 50})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	m.HV.Switch(m.DomU)
	frame := EthernetFrame([6]byte{7, 7, 7, 7, 7, 7}, d.NIC.MAC, 0x0800, payload(100, 1))
	err = tw.GuestTransmit(d, frame)
	if err == nil {
		t.Fatal("watchdog did not fire")
	}
	if !tw.Dead {
		t.Error("driver not dead after watchdog")
	}
}

func TestTwinTable1FastPathSet(t *testing.T) {
	// With the full Table-1 set implemented, error-free TX+RX make zero
	// upcalls, and every routine the driver touches on the fast path is
	// one of the ten.
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	capture(d)
	m.HV.Switch(m.DomU)
	for i := 0; i < 50; i++ {
		frame := EthernetFrame([6]byte{8, 8, 8, 8, 8, 8}, d.NIC.MAC, 0x0800, payload(1200, byte(i)))
		if err := tw.GuestTransmit(d, frame); err != nil {
			t.Fatal(err)
		}
		rx := EthernetFrame(d.NIC.MAC, [6]byte{8, 8, 8, 8, 8, 9}, 0x0800, payload(1200, byte(i)))
		if !d.NIC.Inject(rx) {
			t.Fatal("inject")
		}
		if err := tw.HandleIRQ(d); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.DeliverPending(m.DomU); err != nil {
			t.Fatal(err)
		}
	}
	if tw.UpcallsPerformed() != 0 {
		t.Errorf("upcalls on fast path = %d, want 0", tw.UpcallsPerformed())
	}
	inTen := make(map[string]bool)
	for _, n := range DefaultHvSupport() {
		inTen[n] = true
	}
	for name := range tw.HvCalls {
		if !inTen[name] {
			t.Errorf("fast path called %s, outside Table 1", name)
		}
	}
	// At least 6 of the ten show up in error-free TX+RX.
	if len(tw.HvCalls) < 6 {
		t.Errorf("only %d of the ten routines exercised: %v", len(tw.HvCalls), tw.HvCalls)
	}
}

func TestTwinVirtIRQMaskDefersIntr(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	m.HV.Switch(m.DomU)
	m.Dom0.VirtIRQMasked = true

	frame := EthernetFrame(d.NIC.MAC, [6]byte{1, 2, 3, 4, 5, 6}, 0x0800, payload(500, 1))
	if !d.NIC.Inject(frame) {
		t.Fatal("inject")
	}
	if err := tw.HandleIRQ(d); err != nil {
		t.Fatal(err)
	}
	if tw.PendingRx(m.DomU.ID) != 0 {
		t.Error("interrupt ran despite masked dom0 virtual interrupts (§4.4)")
	}
	m.Dom0.VirtIRQMasked = false
	if err := tw.RunSoftirq(); err != nil {
		t.Fatal(err)
	}
	if tw.PendingRx(m.DomU.ID) != 1 {
		t.Error("softirq did not run the deferred handler")
	}
}

// The rewritten driver is measurably slower than the original — the 2-3x
// the paper reports — but correctness is identical (verified above).
func TestTwinRewrittenDriverSlowdown(t *testing.T) {
	// Native driver cycles for one TX.
	mn, err := NewMachine(1)
	if err != nil {
		t.Fatal(err)
	}
	dn := mn.Devs[0]
	capture(dn)
	frame := EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, dn.NIC.MAC, 0x0800, payload(1000, 1))
	// Warm up, then measure.
	for i := 0; i < 5; i++ {
		skb, _ := mn.NewTxSkb(dn, frame)
		if _, err := mn.DevQueueXmit(dn, skb); err != nil {
			t.Fatal(err)
		}
	}
	mn.CPU.Meter.Reset()
	const reps = 50
	for i := 0; i < reps; i++ {
		skb, _ := mn.NewTxSkb(dn, frame)
		if _, err := mn.DevQueueXmit(dn, skb); err != nil {
			t.Fatal(err)
		}
	}
	nativeDrv := mn.CPU.Meter.Get("e1000") / reps

	// Twin driver cycles for one TX.
	mt, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dt := mt.Devs[0]
	capture(dt)
	mt.HV.Switch(mt.DomU)
	for i := 0; i < 5; i++ {
		if err := tw.GuestTransmit(dt, frame); err != nil {
			t.Fatal(err)
		}
	}
	mt.CPU.Meter.Reset()
	for i := 0; i < reps; i++ {
		if err := tw.GuestTransmit(dt, frame); err != nil {
			t.Fatal(err)
		}
	}
	twinDrv := mt.CPU.Meter.Get("e1000") / reps

	ratio := float64(twinDrv) / float64(nativeDrv)
	t.Logf("driver cycles/packet: native=%d rewritten=%d ratio=%.2f", nativeDrv, twinDrv, ratio)
	if ratio < 1.5 || ratio > 4.5 {
		t.Errorf("rewritten/native driver ratio = %.2f, paper reports 2-3x", ratio)
	}
}

func TestTwinSmallStlbStillCorrect(t *testing.T) {
	// A 16-entry table collides (the interrupt path's ICR register page
	// shares a slot with the adapter page) but must stay correct: the
	// chain backing store refills evicted entries.
	run := func(entries int) (*Twin, [][]byte) {
		m, tw, err := NewTwinMachine(1, 1, TwinConfig{STLBEntries: entries})
		if err != nil {
			t.Fatal(err)
		}
		d := m.Devs[0]
		capture(d)
		m.HV.Switch(m.DomU)
		var delivered [][]byte
		for i := 0; i < 60; i++ {
			tx := EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.NIC.MAC, 0x0800, payload(700, byte(i)))
			if err := tw.GuestTransmit(d, tx); err != nil {
				t.Fatal(err)
			}
			rx := EthernetFrame(d.NIC.MAC, [6]byte{2, 2, 2, 2, 2, byte(i)}, 0x0800, payload(700, byte(i)))
			if !d.NIC.Inject(rx) {
				t.Fatal("inject")
			}
			if err := tw.HandleIRQ(d); err != nil {
				t.Fatal(err)
			}
			pkts, err := tw.DeliverPending(m.DomU)
			if err != nil {
				t.Fatal(err)
			}
			if len(pkts) != 1 || !bytes.Equal(pkts[0], rx) {
				t.Fatalf("pkt %d corrupted with %d-entry stlb", i, entries)
			}
			delivered = append(delivered, pkts...)
		}
		return tw, delivered
	}
	small, _ := run(16)
	if small.SV.ChainRefills == 0 {
		t.Error("a 16-entry table should collide on the RX path (no refills seen)")
	}
	big, _ := run(4096)
	if big.SV.ChainRefills >= small.SV.ChainRefills {
		t.Errorf("4096-entry refills (%d) not below 16-entry refills (%d)",
			big.SV.ChainRefills, small.SV.ChainRefills)
	}
}
