package core
