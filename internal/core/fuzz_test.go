package core

import (
	"errors"
	"sync"
	"testing"

	"twindrivers/internal/kernel"
	"twindrivers/internal/mem"
)

// FuzzPostedRxDescriptor fuzzes the guest-writable posted-receive ring the
// way a hostile guest would: arbitrary address/length descriptor words and
// arbitrary head/tail header words, scribbled directly into ring memory
// before a delivery. The invariants under fuzz:
//
//   - no operation panics and the twin never dies (posted-descriptor
//     abuse is contained to the guest that posted it);
//   - not a byte of hypervisor or dom0 memory changes — a hostile address
//     must never steer the delivery copy out of guest memory;
//   - a scribbled header is reported as ErrRingCorrupt and the ring comes
//     back usable after its reset;
//   - every received frame is either delivered to a guest buffer, counted
//     lost, or still queued — never silently gone.
//
// The twin is built once (bring-up dominates an iteration) and the ring is
// re-formatted between runs, exactly what recovery does on replay.
var fuzzTwin struct {
	once sync.Once
	m    *Machine
	tw   *Twin
	d    *NICDev
	base uint32 // posted-RX ring base in guest memory
	good uint32 // an honest guest buffer for draining
}

func fuzzSetup(t testing.TB) {
	fuzzTwin.once.Do(func() {
		m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
		if err != nil {
			t.Fatal(err)
		}
		fuzzTwin.m, fuzzTwin.tw = m, tw
		fuzzTwin.d = m.Devs[0]
		fuzzTwin.d.Dev.SetOnTransmit(func([]byte) {})
		m.HV.Switch(m.DomU)
		for _, ev := range m.Config.Events {
			if ev.Op == OpRxRing && ev.Dom == m.DomU.ID {
				fuzzTwin.base = ev.Addr
			}
		}
		if fuzzTwin.base == 0 {
			t.Fatal("no recorded posted-RX ring base")
		}
		fuzzTwin.good = m.HV.AllocHeap(m.DomU, 2048)
	})
}

// FuzzPostedTxDescriptor is FuzzPostedRxDescriptor's transmit twin: the
// guest-writable posted-TX ring gets arbitrary (addr,len) descriptor words
// and arbitrary head/tail header words scribbled directly into ring memory
// before a service sweep. The invariants under fuzz:
//
//   - no operation panics and the twin never dies (hostile posted-TX
//     descriptors are contained to the guest that posted them);
//   - not a byte of hypervisor or dom0 memory moves — a hostile address
//     must never become a frame the device reads out of foreign memory;
//   - a scribbled header is reported as ErrRingCorrupt and the ring comes
//     back usable after its reset;
//   - every descriptor the sweep consumed is either on the wire or
//     counted lost — never silently gone;
//   - no pin outlives its frame beyond the ring's capacity (the
//     refcounted pin table never grows without bound under garbage).
var fuzzTxTwin struct {
	once sync.Once
	m    *Machine
	tw   *Twin
	d    *NICDev
	base uint32 // posted-TX ring base in guest memory
	good uint32 // an honest guest buffer holding a valid frame
	n    uint32 // the honest frame's length
	wire *int   // frames that reached the device
}

func fuzzTxSetup(t testing.TB) {
	fuzzTxTwin.once.Do(func() {
		m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
		if err != nil {
			t.Fatal(err)
		}
		fuzzTxTwin.m, fuzzTxTwin.tw = m, tw
		fuzzTxTwin.d = m.Devs[0]
		wire := 0
		fuzzTxTwin.wire = &wire
		fuzzTxTwin.d.Dev.SetOnTransmit(func([]byte) { wire++ })
		m.HV.Switch(m.DomU)
		for _, ev := range m.Config.Events {
			if ev.Op == OpTxRing && ev.Dom == m.DomU.ID {
				fuzzTxTwin.base = ev.Addr
			}
		}
		if fuzzTxTwin.base == 0 {
			t.Fatal("no recorded posted-TX ring base")
		}
		fuzzTxTwin.good = m.HV.AllocHeap(m.DomU, 2048)
		frame := EthernetFrame([6]byte{8, 8, 8, 8, 8, 8}, fuzzTxTwin.d.Dev.HWAddr(), 0x0800, payload(600, 0xA5))
		if err := m.DomU.AS.WriteBytes(fuzzTxTwin.good, frame); err != nil {
			t.Fatal(err)
		}
		fuzzTxTwin.n = uint32(len(frame))
	})
}

func FuzzPostedTxDescriptor(f *testing.F) {
	f.Add(uint32(0xF1000040), uint32(614), uint32(0), uint32(1)) // hypervisor code
	f.Add(uint32(0xC0000010), uint32(614), uint32(0), uint32(1)) // dom0 kernel
	f.Add(uint32(0x00000040), uint32(614), uint32(0), uint32(1)) // unmapped
	f.Add(uint32(0xB0000000), uint32(0), uint32(0), uint32(1))   // zero length
	f.Add(uint32(0xB0000FF8), uint32(0xFFFF), uint32(0), uint32(1))
	f.Add(uint32(0), uint32(0), uint32(0xFFFF0000), uint32(3))     // corrupt head
	f.Add(uint32(0xF4000000), uint32(65536), uint32(5), uint32(2)) // tail behind head
	f.Add(uint32(0xB0000000), uint32(614), uint32(31), uint32(33)) // wrap

	f.Fuzz(func(t *testing.T, addr, ln, head, tail uint32) {
		fuzzTxSetup(t)
		m, tw, d, base := fuzzTxTwin.m, fuzzTxTwin.tw, fuzzTxTwin.d, fuzzTxTwin.base

		// Clean slate: re-format the ring (recovery's replay does the same).
		if _, err := mem.InitRing(m.DomU.AS, base, TxRingSlots); err != nil {
			t.Fatal(err)
		}

		// Sentinels: hypervisor driver code and the dom0 netdev.
		hvAddr := tw.HVImage.CodeBase
		hvBefore, _ := m.HV.HVSpace.Load(hvAddr, 4)
		dom0Before, _ := m.Dom0.AS.Load(d.Netdev+kernel.NdPriv, 4)

		// The guest scribbles: descriptor words both at slot 0 and at the
		// slot its head word selects, then the header words themselves.
		for _, slot := range []uint32{0, head & (TxRingSlots - 1)} {
			s := base + 16 + slot*8
			if err := m.DomU.AS.Store(s, 4, addr); err != nil {
				t.Fatal(err)
			}
			if err := m.DomU.AS.Store(s+4, 4, ln); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.DomU.AS.Store(base+4, 4, head); err != nil {
			t.Fatal(err)
		}
		if err := m.DomU.AS.Store(base+8, 4, tail); err != nil {
			t.Fatal(err)
		}

		// One service sweep over the hostile ring.
		pending0, _ := tw.PostedTxPending(m.DomU.ID)
		wire0, lost0 := *fuzzTxTwin.wire, tw.PostedTxLost(m.DomU.ID)
		sent, err := tw.ServiceRings(d, 0)
		if tw.Dead {
			t.Fatal("posted-TX descriptor abuse killed the twin")
		}
		if err != nil && !errors.Is(err, mem.ErrRingCorrupt) {
			t.Fatalf("unexpected service error: %v", err)
		}
		if err == nil {
			// With a sane header, every consumed descriptor is on the wire
			// or counted lost — exactly once each.
			pendingAfter, _ := tw.PostedTxPending(m.DomU.ID)
			consumed := pending0 - pendingAfter
			onWire := *fuzzTxTwin.wire - wire0
			lost := int(tw.PostedTxLost(m.DomU.ID) - lost0)
			if sent[m.DomU.ID] != onWire {
				t.Fatalf("sent map says %d, wire saw %d", sent[m.DomU.ID], onWire)
			}
			if onWire+lost != consumed {
				t.Fatalf("descriptors unaccounted: wire %d + lost %d != consumed %d", onWire, lost, consumed)
			}
		}
		// Containment: not a byte outside guest memory, and the pin table
		// stays bounded by the ring's worth of in-flight frames.
		if v, _ := m.HV.HVSpace.Load(hvAddr, 4); v != hvBefore {
			t.Fatal("hostile posted-TX descriptor wrote hypervisor memory")
		}
		if v, _ := m.Dom0.AS.Load(d.Netdev+kernel.NdPriv, 4); v != dom0Before {
			t.Fatal("hostile posted-TX descriptor wrote dom0 memory")
		}
		if pins := tw.PinnedTxPages(); pins > TxRingSlots {
			t.Fatalf("%d pinned pages outlive the ring's %d slots", pins, TxRingSlots)
		}

		// The ring is usable again after a reset: an honest post transmits.
		if _, err := mem.InitRing(m.DomU.AS, base, TxRingSlots); err != nil {
			t.Fatal(err)
		}
		if n, err := tw.PostTxDescriptors(m.DomU, []TxPost{{Addr: fuzzTxTwin.good, Len: fuzzTxTwin.n}}); err != nil || n != 1 {
			t.Fatalf("honest re-post: %d, %v", n, err)
		}
		wire1 := *fuzzTxTwin.wire
		if sent, err := tw.ServiceRings(d, 0); err != nil || sent[m.DomU.ID] != 1 {
			t.Fatalf("post-reset service: %v, %v", sent, err)
		}
		if *fuzzTxTwin.wire != wire1+1 {
			t.Fatal("honest re-post never reached the wire")
		}
	})
}

func FuzzPostedRxDescriptor(f *testing.F) {
	f.Add(uint32(0xF1000040), uint32(4096), uint32(0), uint32(1)) // hypervisor code
	f.Add(uint32(0xC0000010), uint32(2048), uint32(0), uint32(1)) // dom0 kernel
	f.Add(uint32(0x00000040), uint32(2048), uint32(0), uint32(1)) // unmapped
	f.Add(uint32(0xB0000000), uint32(4), uint32(0), uint32(1))    // short buffer
	f.Add(uint32(0xB0000FF8), uint32(0xFFFFFFFF), uint32(0), uint32(1))
	f.Add(uint32(0), uint32(0), uint32(0xFFFF0000), uint32(3))      // corrupt head
	f.Add(uint32(0xF4000000), uint32(65536), uint32(5), uint32(2))  // tail behind head
	f.Add(uint32(0xB0000000), uint32(2048), uint32(31), uint32(33)) // wrap

	f.Fuzz(func(t *testing.T, addr, ln, head, tail uint32) {
		fuzzSetup(t)
		m, tw, d, base := fuzzTwin.m, fuzzTwin.tw, fuzzTwin.d, fuzzTwin.base

		// Clean slate: re-format the ring (recovery's replay does the
		// same) and drain anything a previous iteration left queued.
		if _, err := mem.InitRing(m.DomU.AS, base, RxRingSlots); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.DeliverPendingBatch(m.DomU, 0); err != nil {
			t.Fatalf("drain: %v", err)
		}

		// Sentinels: hypervisor driver code and the dom0 netdev.
		hvAddr := tw.HVImage.CodeBase
		hvBefore, _ := m.HV.HVSpace.Load(hvAddr, 4)
		dom0Before, _ := m.Dom0.AS.Load(d.Netdev+kernel.NdPriv, 4)

		// The guest scribbles: descriptor words both at slot 0 and at the
		// slot its head word selects, then the header words themselves.
		for _, slot := range []uint32{0, head & (RxRingSlots - 1)} {
			s := base + 16 + slot*8
			if err := m.DomU.AS.Store(s, 4, addr); err != nil {
				t.Fatal(err)
			}
			if err := m.DomU.AS.Store(s+4, 4, ln); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.DomU.AS.Store(base+4, 4, head); err != nil {
			t.Fatal(err)
		}
		if err := m.DomU.AS.Store(base+8, 4, tail); err != nil {
			t.Fatal(err)
		}

		// One frame through the hostile ring.
		frame := EthernetFrame(d.Dev.HWAddr(), [6]byte{0xF, 0xF, 0xF, 0xF, 0xF, 1}, 0x0800, payload(256, byte(addr)))
		if !d.Dev.Inject(frame) {
			t.Fatal("inject")
		}
		if err := tw.HandleIRQ(d); err != nil {
			t.Fatalf("irq: %v", err)
		}
		queued := tw.PendingRx(m.DomU.ID)
		del, err := tw.DeliverPendingPosted(m.DomU, 0)
		if tw.Dead {
			t.Fatal("posted-descriptor abuse killed the twin")
		}
		if err != nil && !errors.Is(err, mem.ErrRingCorrupt) {
			t.Fatalf("unexpected delivery error: %v", err)
		}
		if got := len(del.Frames) + del.Lost + tw.PendingRx(m.DomU.ID); got != queued {
			t.Fatalf("frames unaccounted: delivered %d + lost %d + pending %d != queued %d",
				len(del.Frames), del.Lost, tw.PendingRx(m.DomU.ID), queued)
		}
		// Containment: not a byte outside guest memory.
		if v, _ := m.HV.HVSpace.Load(hvAddr, 4); v != hvBefore {
			t.Fatal("hostile descriptor wrote hypervisor memory")
		}
		if v, _ := m.Dom0.AS.Load(d.Netdev+kernel.NdPriv, 4); v != dom0Before {
			t.Fatal("hostile descriptor wrote dom0 memory")
		}

		// The ring is usable again after a reset: an honest post delivers
		// whatever the scribble left queued.
		if _, err := mem.InitRing(m.DomU.AS, base, RxRingSlots); err != nil {
			t.Fatal(err)
		}
		pending := tw.PendingRx(m.DomU.ID)
		if pending > 0 {
			if n, err := tw.PostRxBuffers(m.DomU, []RxPost{{Addr: fuzzTwin.good, Len: 2048}}); err != nil || n != 1 {
				t.Fatalf("honest re-post: %d, %v", n, err)
			}
			del, err := tw.DeliverPendingPosted(m.DomU, 1)
			if err != nil || len(del.Frames)+del.Lost != 1 {
				t.Fatalf("post-reset delivery: %+v, %v", del, err)
			}
		}
	})
}
