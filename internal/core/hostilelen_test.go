package core

import (
	"errors"
	"testing"
)

// TestHostileDescriptorLengthContained: the length word of a staged ring
// descriptor is guest-writable memory. A guest that scribbles it to a
// huge value after staging must not make the hypervisor copy past the
// pooled sk_buff (or a no-scatter/gather backend's staging slot): the
// drain rejects the descriptor, the ring is discarded like any other
// corruption, the twin stays alive and the pool does not leak.
func TestHostileDescriptorLengthContained(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	got := capture(d)
	m.HV.Switch(m.DomU)

	// Stage two honest frames, then scribble the first descriptor's
	// length word (ring layout: 16-byte header, 8-byte descriptors of
	// {addr, len} — see mem/ring.go).
	if n, err := tw.StageTransmitBatch(m.DomU, batchFrames(d, 2, 400)); err != nil || n != 2 {
		t.Fatalf("stage: %d, %v", n, err)
	}
	var ringBase uint32
	for _, ev := range m.Config.Events {
		if ev.Op == OpRing && ev.Dom == m.DomU.ID {
			ringBase = ev.Addr
		}
	}
	if ringBase == 0 {
		t.Fatal("no recorded ring base")
	}
	if err := m.DomU.AS.Store(ringBase+16+4, 4, 0xFFFF); err != nil {
		t.Fatal(err)
	}

	free := tw.PoolFree()
	_, err = tw.ServiceRings(d, 0)
	if !errors.Is(err, ErrFrameOversize) {
		t.Fatalf("hostile length drained: %v (wire %d)", err, len(*got))
	}
	if tw.Dead {
		t.Fatal("hostile length killed the twin (should be contained)")
	}
	if len(*got) != 0 {
		t.Fatalf("%d frames reached the wire from a corrupt batch", len(*got))
	}
	if tw.PoolFree() != free {
		t.Fatalf("pool leaked: %d -> %d", free, tw.PoolFree())
	}
	// The ring was reset; honest traffic flows again.
	if err := tw.GuestTransmit(d, batchFrames(d, 1, 300)[0]); err != nil {
		t.Fatalf("post-containment transmit: %v", err)
	}

	// The per-packet hypercall path enforces the same bound.
	if err := tw.GuestTransmitAt(d, 0, 1<<16); !errors.Is(err, ErrFrameOversize) {
		t.Fatalf("oversize GuestTransmitAt: %v", err)
	}
	if err := tw.GuestTransmitAt(d, 0, 0); !errors.Is(err, ErrFrameOversize) {
		t.Fatalf("zero-length GuestTransmitAt: %v", err)
	}
}
