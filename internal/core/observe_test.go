package core

import (
	"testing"

	"twindrivers/internal/telemetry"
)

// Telemetry wire-through tests: enabling tracing must not move a single
// simulated cycle or hypervisor counter, must not change the hot path's
// allocation behaviour, and the per-guest TLB counters exposed for the
// posted-RX path must show the translation cache actually working.

// exerciseTwin drives one machine through the full traced surface:
// batched transmit (hypercall + batch events), staged rings (sweep
// events), posted-descriptor transmit (posted-tx events) and
// posted-buffer receive (posted-rx + TLB events).
func exerciseTwin(t *testing.T, tr *telemetry.Tracer) (*Machine, *Twin) {
	t.Helper()
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	d.Dev.SetOnTransmit(func([]byte) {})
	m.HV.Switch(m.DomU)

	var posts []RxPost
	for i := 0; i < 4; i++ {
		posts = append(posts, RxPost{Addr: m.HV.AllocHeap(m.DomU, 2048), Len: 2048})
	}
	if posted, err := tw.PostRxBuffers(m.DomU, posts); err != nil || posted != len(posts) {
		t.Fatalf("posted %d: %v", posted, err)
	}

	if _, err := tw.GuestTransmitBatch(d, batchFrames(d, 8, 600)); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.StageTransmitBatch(m.DomU, batchFrames(d, 4, 300)); err != nil {
		t.Fatal(err)
	}
	var descs []TxPost
	for i, f := range batchFrames(d, 4, 500) {
		buf := m.HV.AllocHeap(m.DomU, 2048)
		if err := m.DomU.AS.WriteBytes(buf, f); err != nil {
			t.Fatalf("posted-tx frame %d: %v", i, err)
		}
		descs = append(descs, TxPost{Addr: buf, Len: uint32(len(f))})
	}
	if posted, err := tw.PostTxDescriptors(m.DomU, descs); err != nil || posted != len(descs) {
		t.Fatalf("posted %d tx descriptors: %v", posted, err)
	}
	if _, err := tw.ServiceRings(d, 0); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 4; i++ {
		f := EthernetFrame(d.Dev.HWAddr(), [6]byte{4, 4, 4, 4, 4, byte(i)}, 0x0800, payload(400, byte(i)))
		if !d.Dev.Inject(f) {
			t.Fatalf("inject %d", i)
		}
	}
	if err := tw.HandleIRQ(d); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.DeliverPendingPosted(m.DomU, 0); err != nil {
		t.Fatal(err)
	}
	return m, tw
}

// TestTracingIsCycleIdentical pins the zero-overhead contract from the
// machine's point of view: the same workload run traced and untraced
// charges exactly the same cycles to the same components and crosses
// the hypervisor boundary exactly as often. (The batch=1 and recovery
// identity tests pin the disabled path against the pre-telemetry tree;
// this one pins enabled against disabled.)
func TestTracingIsCycleIdentical(t *testing.T) {
	plain, _ := exerciseTwin(t, nil)
	tr := telemetry.New(0)
	traced, _ := exerciseTwin(t, tr)

	if p, q := plain.HV.Meter.String(), traced.HV.Meter.String(); p != q {
		t.Fatalf("tracing moved the cycle meter:\nuntraced %s\ntraced   %s", p, q)
	}
	if plain.HV.Hypercalls != traced.HV.Hypercalls {
		t.Fatalf("hypercalls %d vs %d", plain.HV.Hypercalls, traced.HV.Hypercalls)
	}
	if plain.HV.Events != traced.HV.Events {
		t.Fatalf("event channels %d vs %d", plain.HV.Events, traced.HV.Events)
	}
	if plain.HV.Switches != traced.HV.Switches {
		t.Fatalf("switches %d vs %d", plain.HV.Switches, traced.HV.Switches)
	}

	// And the traced run actually observed the workload.
	if tr.Recorded() == 0 {
		t.Fatal("traced run recorded nothing")
	}
	for _, k := range []telemetry.EventKind{
		telemetry.EvHypercall, telemetry.EvBatchServiced, telemetry.EvSweepStart,
		telemetry.EvSweepEnd, telemetry.EvPostedRx, telemetry.EvPostedTx,
		telemetry.EvTLBMiss,
	} {
		if tr.CountKind(k) == 0 {
			t.Errorf("no %s events recorded", k)
		}
	}
}

// TestTracingAllocationParity is the AllocsPerRun guard: the transmit
// hot path performs exactly the same allocations whether its lane is
// live or nil. Together with TestRecordAllocationFree in the telemetry
// package this proves the disabled path allocation-identical.
func TestTracingAllocationParity(t *testing.T) {
	measure := func(tr *telemetry.Tracer) float64 {
		m, tw, err := NewTwinMachine(1, 1, TwinConfig{Trace: tr})
		if err != nil {
			t.Fatal(err)
		}
		d := m.Devs[0]
		d.Dev.SetOnTransmit(func([]byte) {})
		m.HV.Switch(m.DomU)
		frame := EthernetFrame([6]byte{2, 2, 2, 2, 2, 2}, d.NIC.MAC, 0x0800, payload(600, 9))
		// Warm pools and maps out of their growth phase first.
		for i := 0; i < 32; i++ {
			if err := tw.GuestTransmit(d, frame); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(200, func() {
			if err := tw.GuestTransmit(d, frame); err != nil {
				t.Fatal(err)
			}
		})
	}
	plain := measure(nil)
	traced := measure(telemetry.New(0))
	if plain != traced {
		t.Fatalf("tracing changed transmit allocations: untraced %.2f, traced %.2f per packet", plain, traced)
	}
}

// TestPublishMetricsSnapshot drives a workload, registers the twin's
// gauges, and checks the snapshot reports the live state the runtime
// already tracks — every closure reads at snapshot time.
func TestPublishMetricsSnapshot(t *testing.T) {
	m, tw := exerciseTwin(t, nil)
	reg := telemetry.NewRegistry()
	tw.PublishMetrics(reg)
	snap := reg.Snapshot()

	byName := map[string][]telemetry.Sample{}
	for _, s := range snap {
		byName[s.Name] = append(byName[s.Name], s)
	}
	one := func(name string) telemetry.Sample {
		ss := byName[name]
		if len(ss) != 1 {
			t.Fatalf("%s: %d samples, want 1", name, len(ss))
		}
		return ss[0]
	}
	if got := one("twin_pool_capacity").Value; got != float64(tw.PoolCapacity()) || got == 0 {
		t.Fatalf("twin_pool_capacity = %v, pool reports %d", got, tw.PoolCapacity())
	}
	if got := one("hv_hypercalls_total").Value; got != float64(m.HV.Hypercalls) {
		t.Fatalf("hv_hypercalls_total = %v, hv reports %d", got, m.HV.Hypercalls)
	}
	if got := one("twin_dead").Value; got != 0 {
		t.Fatalf("twin_dead = %v on a live twin", got)
	}
	if s := one("gtlb_hit_rate"); s.Value < 0 || s.Value > 1 || s.Labels["guest"] == "" {
		t.Fatalf("gtlb_hit_rate sample malformed: %+v", s)
	}
	if n := len(byName["twin_faults_by_kind"]); n != len(metricFaultKinds) {
		t.Fatalf("faults-by-kind published %d kinds, want %d", n, len(metricFaultKinds))
	}
	// One queue × four components on the default single-queue twin.
	if n := len(byName["queue_cycles_total"]); n != 4 {
		t.Fatalf("queue_cycles_total published %d series, want 4", n)
	}
	if s := one("twin_pool_free"); s.Labels["backend"] != m.Model.Name || s.Labels["twin"] == "" {
		t.Fatalf("base labels missing: %+v", s.Labels)
	}
}

// TestPostedRxTLBHitRate asserts the per-guest translation cache
// exposed through GuestTLBStats earns its keep on the posted-RX path:
// repeated deliveries into re-posted buffers must resolve mostly from
// the cache. Per backend.
func TestPostedRxTLBHitRate(t *testing.T) {
	for _, model := range rxModels() {
		t.Run(model.Name, func(t *testing.T) {
			const n = 8
			m, tw, d, bufs := postedSetup(t, model, n)
			for round := 0; round < 4; round++ {
				if round > 0 {
					var posts []RxPost
					for _, b := range bufs {
						posts = append(posts, RxPost{Addr: b, Len: 2048})
					}
					if posted, err := tw.PostRxBuffers(m.DomU, posts); err != nil || posted != n {
						t.Fatalf("round %d: posted %d: %v", round, posted, err)
					}
				}
				for i := 0; i < n; i++ {
					f := EthernetFrame(d.Dev.HWAddr(), [6]byte{4, 4, 4, 4, byte(round), byte(i)},
						0x0800, payload(700, byte(round*n+i)))
					if !d.Dev.Inject(f) {
						t.Fatalf("round %d inject %d", round, i)
					}
				}
				if err := tw.HandleIRQ(d); err != nil {
					t.Fatal(err)
				}
				if del, err := tw.DeliverPendingPosted(m.DomU, 0); err != nil || len(del.Frames) != n {
					t.Fatalf("round %d: delivered %d: %v", round, len(del.Frames), err)
				}
			}
			hits, misses := tw.GuestTLBStats(m.DomU.ID)
			if hits+misses == 0 {
				t.Fatal("posted deliveries performed no guest translations")
			}
			rate := float64(hits) / float64(hits+misses)
			if rate < 0.5 {
				t.Fatalf("gtlb hit rate %.2f (hits %d, misses %d), want >= 0.5 after re-delivering into the same buffers",
					rate, hits, misses)
			}
		})
	}
}
