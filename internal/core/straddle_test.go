package core

import (
	"bytes"
	"errors"
	"testing"

	"twindrivers/internal/kernel"
	"twindrivers/internal/mem"
)

// Copy-correctness regression tests for the transmit staging paths: the
// header copy across a page boundary, and the bounce-buffer length check.

// TestXmitHeaderCopyStraddlesPages: the transmit header copy must
// translate each destination page separately. The pooled skb's buffer is
// arranged to start 8 bytes before a page boundary whose *first touch*
// through the translating SVM happened while the following page was still
// unmapped — so the SVM window has a hole where the old single-translate
// copy expected the second page, and only the per-page copy delivers the
// frame. Runs on both backends (the rtl8139's split-0 geometry sends the
// whole frame through the header copy).
func TestXmitHeaderCopyStraddlesPages(t *testing.T) {
	for _, model := range rxModels() {
		t.Run(model.Name, func(t *testing.T) {
			m, tw, err := NewTwinMachineModel(1, 1, model, TwinConfig{})
			if err != nil {
				t.Fatal(err)
			}
			d := m.Devs[0]
			wire := captureDev(d)
			k := m.K

			// Pad the dom0 heap so it ends 8 bytes short of a page
			// boundary, with the final page's successor still unallocated.
			probe := k.Alloc(4)
			pad := ((mem.PageSize - int((probe+4)&mem.PageMask)) - 8 + mem.PageSize) % mem.PageSize
			if pad > 0 {
				k.Alloc(uint32(pad))
			}
			// First-touch the straddle's first page through the translating
			// SVM while its successor page is unmapped: the slow path burns
			// the second window slot, leaving the hole the old code fell
			// into.
			holePage := ((probe + 4 + uint32(pad)) &^ uint32(mem.PageMask))
			if _, err := tw.SV.Translate(m.HV.Meter, holePage+16); err != nil {
				t.Fatalf("prime first touch: %v", err)
			}
			// Now grow the heap across the boundary and aim the next pooled
			// skb's buffer at the straddling address.
			head := k.Alloc(kernel.SkbBufSize)
			if head&mem.PageMask != mem.PageSize-8 {
				t.Fatalf("staging buffer at %#x, want offset PageSize-8", head)
			}
			skb := tw.pool[len(tw.pool)-1]
			if err := m.Dom0.AS.Store(skb+kernel.SkbHead, 4, head); err != nil {
				t.Fatal(err)
			}
			if err := m.Dom0.AS.Store(skb+kernel.SkbEnd, 4, head+kernel.SkbBufSize); err != nil {
				t.Fatal(err)
			}

			m.HV.Switch(m.DomU)
			f := EthernetFrame([6]byte{1, 2, 3, 4, 5, 6}, d.Dev.HWAddr(), 0x0800, payload(300, 0xC3))
			if err := tw.GuestTransmit(d, f); err != nil {
				t.Fatalf("straddling header copy failed: %v", err)
			}
			if len(*wire) != 1 || !bytes.Equal((*wire)[0], f) {
				t.Fatalf("frame corrupted across the page boundary (wire %d frames)", len(*wire))
			}
		})
	}
}

// TestGuestTransmitOversizeBounceRejected: a frame larger than the bounce
// buffer must be refused with ErrBounceOverflow BEFORE any byte is staged
// — the transmit ring header lives directly after the bounce region, and
// the unchecked write used to scribble it.
func TestGuestTransmitOversizeBounceRejected(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	wire := capture(d)
	m.HV.Switch(m.DomU)

	g := tw.guestIO[m.DomU.ID]
	// Sentinel: the 16 bytes directly after the bounce buffer are the
	// transmit ring's header words.
	before, err := m.DomU.AS.ReadBytes(g.bounce+GuestBounceBytes, 16)
	if err != nil {
		t.Fatal(err)
	}

	oversize := make([]byte, GuestBounceBytes+1)
	for i := range oversize {
		oversize[i] = 0xEE
	}
	if err := tw.GuestTransmit(d, oversize); !errors.Is(err, ErrBounceOverflow) {
		t.Fatalf("oversize frame returned %v, want ErrBounceOverflow", err)
	}
	after, err := m.DomU.AS.ReadBytes(g.bounce+GuestBounceBytes, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("oversize frame scribbled the adjacent ring header before being rejected")
	}

	// The batched path still works over the intact ring.
	f := EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.Dev.HWAddr(), 0x0800, payload(200, 7))
	if n, err := tw.GuestTransmitBatch(d, [][]byte{f}); err != nil || n != 1 {
		t.Fatalf("ring unusable after rejected oversize frame: %d, %v", n, err)
	}
	if len(*wire) != 1 || !bytes.Equal((*wire)[0], f) {
		t.Fatal("post-rejection transmit corrupted")
	}
}
