package core

import (
	"fmt"

	"twindrivers/internal/cost"
	"twindrivers/internal/cpu"
	"twindrivers/internal/cycles"
	"twindrivers/internal/kernel"
	"twindrivers/internal/mem"
	"twindrivers/internal/xen"
)

// This file is the hypervisor's reimplementation of the performance-
// critical support routines — the counterpart of the paper's 851 lines of
// commented C (§6.5). Every access to driver data goes through the stlb
// explicitly ("the support routines which are implemented in the hypervisor
// make use of the stlb translation table explicitly while accessing driver
// data in dom0 address space", §4.3); buffers come from the preallocated
// dom0 pool guarded by the refcount trick.

// hvLoad reads a 32-bit word of dom0 memory through SVM translation.
func (t *Twin) hvLoad(c *cpu.CPU, addr uint32) (uint32, error) {
	ta, err := t.SV.Translate(c.Meter, addr)
	if err != nil {
		return 0, err
	}
	c.Meter.MemAccess(ta)
	return t.M.HV.HVSpace.Load(ta, 4)
}

// hvLoadSize reads size bytes of dom0 memory through SVM translation.
func (t *Twin) hvLoadSize(c *cpu.CPU, addr, size uint32) (uint32, error) {
	ta, err := t.SV.Translate(c.Meter, addr)
	if err != nil {
		return 0, err
	}
	c.Meter.MemAccess(ta)
	return t.M.HV.HVSpace.Load(ta, size)
}

// hvStore writes a 32-bit word of dom0 memory through SVM translation.
func (t *Twin) hvStore(c *cpu.CPU, addr, val uint32) error {
	ta, err := t.SV.Translate(c.Meter, addr)
	if err != nil {
		return err
	}
	c.Meter.MemAccess(ta)
	return t.M.HV.HVSpace.Store(ta, 4, val)
}

// hvSupportImpl returns the native hypervisor implementation of a Table-1
// routine. The boolean is false for routines the hypervisor does not know
// how to implement.
func hvSupportImpl(t *Twin, name string) (cpu.Extern, bool) {
	var fn func(c *cpu.CPU) (uint32, error)
	switch name {
	case "netdev_alloc_skb":
		fn = func(c *cpu.CPU) (uint32, error) {
			c.Meter.AddTo(cycles.CompXen, cost.SkbAlloc)
			skb, ok := t.poolGet()
			if !ok {
				return 0, nil // allocation failure: the driver copes
			}
			if err := t.hvStore(c, skb+kernel.SkbDev, c.Arg(0)); err != nil {
				return 0, err
			}
			return skb, nil
		}
	case "dev_kfree_skb_any":
		fn = func(c *cpu.CPU) (uint32, error) {
			c.Meter.AddTo(cycles.CompXen, cost.SkbFree)
			skb := c.Arg(0)
			pool, err := t.hvLoad(c, skb+kernel.SkbPool)
			if err != nil {
				return 0, err
			}
			if pool != 0 {
				t.poolPut(skb)
			} else {
				// A dom0-allocated skb (e.g. from the initial RX fill):
				// hand it back to the dom0 slab.
				t.M.K.FreeSkb(skb)
			}
			return 0, nil
		}
	case "netif_rx":
		fn = func(c *cpu.CPU) (uint32, error) {
			c.Meter.AddTo(cycles.CompXen, cost.HvDemux)
			skb := c.Arg(0)
			// Demultiplex on the destination MAC (§5.3). eth_type_trans
			// already pulled the header: it starts 14 bytes before data.
			data, err := t.hvLoad(c, skb+kernel.SkbData)
			if err != nil {
				return 0, err
			}
			var mac [6]byte
			for i := uint32(0); i < 6; i++ {
				b, err := t.hvLoadSize(c, data-14+i, 1)
				if err != nil {
					return 0, err
				}
				mac[i] = byte(b)
			}
			dom, ok := t.macToDom[mac]
			if !ok {
				dom = t.M.DomU.ID // default guest
			}
			t.queueRx(dom, skb)
			return 0, nil
		}
	case "dma_map_single":
		fn = func(c *cpu.CPU) (uint32, error) {
			c.Meter.AddTo(cycles.CompXen, cost.DmaMap)
			vaddr := c.Arg(1)
			// "the hypervisor implementation of the DMA mapping functions
			// return the correct guest machine page addresses" (§5.3):
			// resolve through dom0's page tables.
			pa, ok := t.M.Dom0.AS.Translate(vaddr)
			if !ok {
				return 0, fmt.Errorf("core: hv dma_map_single of unmapped %#x", vaddr)
			}
			return pa, nil
		}
	case "dma_map_page":
		fn = func(c *cpu.CPU) (uint32, error) {
			c.Meter.AddTo(cycles.CompXen, cost.DmaMap)
			page, off := c.Arg(1), c.Arg(2)
			// A posted-TX fragment resolves through the pin table first:
			// the device must DMA through exactly the translation the guest
			// TLB validated when the descriptor was serviced, not whatever
			// the guest's page tables say now (the DMA half of the TOCTOU
			// rule). Copy-mode fragments are never pinned and fall through
			// unchanged.
			if pa, ok := t.pinnedTranslate(page + off); ok {
				return pa, nil
			}
			// "the hypervisor implementation of the DMA mapping functions
			// return the correct guest machine page addresses" (§5.3):
			// chained fragments may be guest pages, which live below the
			// dom0 kernel split. Try the invoking context first, then the
			// physical-to-machine view of every guest.
			if page >= xen.Dom0KernelBase {
				pa, ok := t.M.Dom0.AS.Translate(page + off)
				if !ok {
					return 0, fmt.Errorf("core: hv dma_map_page of unmapped %#x", page+off)
				}
				return pa, nil
			}
			if pa, ok := t.M.HV.Current.AS.Translate(page + off); ok {
				return pa, nil
			}
			for _, d := range t.M.HV.Domains {
				if d.ID == t.M.Dom0.ID {
					continue
				}
				if pa, ok := d.AS.Translate(page + off); ok {
					return pa, nil
				}
			}
			return 0, fmt.Errorf("core: hv dma_map_page of unmapped guest page %#x", page+off)
		}
	case "dma_unmap_single", "dma_unmap_page":
		fn = func(c *cpu.CPU) (uint32, error) {
			c.Meter.AddTo(cycles.CompXen, cost.DmaUnmap)
			return 0, nil
		}
	case "spin_trylock":
		fn = func(c *cpu.CPU) (uint32, error) {
			c.Meter.AddTo(cycles.CompXen, cost.SpinLock)
			lock := c.Arg(0)
			v, err := t.hvLoad(c, lock)
			if err != nil {
				return 0, err
			}
			if v != 0 {
				return 0, nil
			}
			// The shared atomic word in dom0 memory synchronises the two
			// instances (§4.4).
			if err := t.hvStore(c, lock, 1); err != nil {
				return 0, err
			}
			return 1, nil
		}
	case "spin_unlock_irqrestore":
		fn = func(c *cpu.CPU) (uint32, error) {
			c.Meter.AddTo(cycles.CompXen, cost.SpinUnlock)
			return 0, t.hvStore(c, c.Arg(0), 0)
		}
	case "eth_type_trans":
		fn = func(c *cpu.CPU) (uint32, error) {
			c.Meter.AddTo(cycles.CompXen, cost.EthTypeTrans)
			skb, dev := c.Arg(0), c.Arg(1)
			data, err := t.hvLoad(c, skb+kernel.SkbData)
			if err != nil {
				return 0, err
			}
			proto, err := t.hvLoadSize(c, data+12, 2)
			if err != nil {
				return 0, err
			}
			proto = (proto>>8 | proto<<8) & 0xFFFF
			ln, err := t.hvLoad(c, skb+kernel.SkbLen)
			if err != nil {
				return 0, err
			}
			if err := t.hvStore(c, skb+kernel.SkbData, data+14); err != nil {
				return 0, err
			}
			if err := t.hvStore(c, skb+kernel.SkbLen, ln-14); err != nil {
				return 0, err
			}
			if err := t.hvStore(c, skb+kernel.SkbProtocol, proto); err != nil {
				return 0, err
			}
			if err := t.hvStore(c, skb+kernel.SkbDev, dev); err != nil {
				return 0, err
			}
			return proto, nil
		}
	default:
		return nil, false
	}
	return func(c *cpu.CPU) (uint32, error) {
		t.HvCalls[name]++
		return fn(c)
	}, true
}

var _ = mem.PageSize // referenced by documentation examples
