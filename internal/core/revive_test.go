package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"twindrivers/internal/e1000"
	"twindrivers/internal/kernel"
)

// killTwin injects a wild write (netdev->priv aimed at hypervisor memory)
// and triggers it with a transmit, leaving the instance dead.
func killTwin(t *testing.T, m *Machine, tw *Twin, d *NICDev) {
	t.Helper()
	if err := m.Dom0.AS.Store(d.Netdev+kernel.NdPriv, 4, 0xF1000040); err != nil {
		t.Fatal(err)
	}
	frame := EthernetFrame([6]byte{6, 6, 6, 6, 6, 6}, d.NIC.MAC, 0x0800, payload(100, 1))
	if err := tw.GuestTransmit(d, frame); !errors.Is(err, ErrDriverDead) {
		t.Fatalf("wild write not contained: %v", err)
	}
	if !tw.Dead {
		t.Fatal("twin not dead after containment fault")
	}
}

// TestReviveAfterWildWrite: a revived twin re-derives a fresh instance,
// replays the configuration (healing the scribbled netdev->priv) and moves
// traffic again — transmit AND receive — while dom0's VM instance never
// noticed.
func TestReviveAfterWildWrite(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	got := capture(d)
	m.HV.Switch(m.DomU)
	killTwin(t, m, tw, d)
	oldImage := tw.HVImage

	if err := tw.Revive(); err != nil {
		t.Fatalf("revive: %v", err)
	}
	if tw.Dead {
		t.Fatal("twin still dead after Revive")
	}
	if tw.HVImage == oldImage {
		t.Fatal("revive reused the faulted image instead of re-deriving")
	}
	// The wild write's damage is healed: priv points at the adapter again.
	if priv := m.K.NetdevStat(d.Netdev, kernel.NdPriv); priv == 0xF1000040 {
		t.Fatal("replay did not restore netdev->priv")
	}

	m.HV.Switch(m.DomU)
	frame := EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.NIC.MAC, 0x0800, payload(500, 7))
	if err := tw.GuestTransmit(d, frame); err != nil {
		t.Fatalf("transmit on revived instance: %v", err)
	}
	if len(*got) != 1 || !bytes.Equal((*got)[0], frame) {
		t.Fatalf("wire saw %d frames after revive", len(*got))
	}
	// Receive: the replayed open re-registered the IRQ and refilled the RX
	// ring, so the interrupt path works end to end.
	rx := EthernetFrame(d.NIC.MAC, [6]byte{9, 9, 9, 9, 9, 9}, 0x0800, payload(300, 3))
	if !d.NIC.Inject(rx) {
		t.Fatal("inject")
	}
	if err := tw.HandleIRQ(d); err != nil {
		t.Fatalf("IRQ on revived instance: %v", err)
	}
	pkts, err := tw.DeliverPending(m.DomU)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 1 || !bytes.Equal(pkts[0], rx) {
		t.Fatalf("revived receive delivered %d packets", len(pkts))
	}
}

// TestReviveIsNoOpWhileAlive: Revive on a live twin does nothing.
func TestReviveIsNoOpWhileAlive(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	im := tw.HVImage
	if err := tw.Revive(); err != nil {
		t.Fatal(err)
	}
	if tw.HVImage != im {
		t.Fatal("Revive rebuilt a live instance")
	}
	_ = m
}

// TestReviveMultiGuestKeepsConnections: with four guests attached, a fault
// plus revive preserves every guest's ring mapping and MAC route — all
// four keep moving traffic afterwards without re-attaching.
func TestReviveMultiGuestKeepsConnections(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 4, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	got := capture(d)
	// Per-guest MAC routes (recorded in the config log).
	macs := make([][6]byte, len(m.Guests))
	for g, dom := range m.Guests {
		macs[g] = [6]byte{0x02, 0xAA, 0, 0, 0, byte(g)}
		tw.RegisterGuestMAC(macs[g], dom.ID)
	}
	ringBases := make(map[int]uint32)
	for g, dom := range m.Guests {
		ringBases[g] = tw.guestIO[dom.ID].ring.Base
	}

	m.HV.Switch(m.DomU)
	killTwin(t, m, tw, d)
	if err := tw.Revive(); err != nil {
		t.Fatalf("revive: %v", err)
	}

	// Rings re-attached in place.
	for g, dom := range m.Guests {
		if tw.guestIO[dom.ID].ring.Base != ringBases[g] {
			t.Fatalf("guest %d ring moved across recovery", g)
		}
	}
	// Every guest transmits through its own ring via one service crossing.
	for _, dom := range m.Guests {
		m.HV.Switch(dom)
		if staged, err := tw.StageTransmitBatch(dom, guestFrames(d, int(dom.ID), 2, 300)); err != nil || staged != 2 {
			t.Fatalf("guest %d staging after revive: %d, %v", dom.ID, staged, err)
		}
	}
	sent, err := tw.ServiceRings(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, dom := range m.Guests {
		if sent[dom.ID] != 2 {
			t.Fatalf("guest %d sent %d of 2 after revive", dom.ID, sent[dom.ID])
		}
	}
	if len(*got) != 2*len(m.Guests) {
		t.Fatalf("wire saw %d frames", len(*got))
	}
	// And receive demux still routes on the replayed MAC table.
	m.HV.Switch(m.DomU)
	for g := range m.Guests {
		rx := EthernetFrame(macs[g], [6]byte{1, 2, 3, 4, 5, byte(g)}, 0x0800, payload(200, byte(g)))
		if !d.NIC.Inject(rx) {
			t.Fatal("inject")
		}
		if err := tw.HandleIRQ(d); err != nil {
			t.Fatal(err)
		}
	}
	for _, dom := range m.Guests {
		if tw.PendingRx(dom.ID) != 1 {
			t.Fatalf("guest %d pending %d after revive", dom.ID, tw.PendingRx(dom.ID))
		}
	}
}

// TestFaultLogBoundedAndAttributed: the fault log is a bounded ring that
// records the classified kind and the faulting entry-point symbol, while
// Faults keeps the lifetime count.
func TestFaultLogBoundedAndAttributed(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	m.HV.Switch(m.DomU)
	for i := 0; i < FaultLogCap+5; i++ {
		killTwin(t, m, tw, d)
		if err := tw.Revive(); err != nil {
			t.Fatalf("revive %d: %v", i, err)
		}
		m.HV.Switch(m.DomU)
	}
	if tw.Faults != FaultLogCap+5 {
		t.Errorf("Faults = %d, want %d", tw.Faults, FaultLogCap+5)
	}
	log := tw.FaultLog()
	if len(log) != FaultLogCap {
		t.Fatalf("fault log holds %d records, want the %d-record bound", len(log), FaultLogCap)
	}
	for i, rec := range log {
		if rec.Entry != e1000.FnXmit {
			t.Fatalf("record %d entry = %q", i, rec.Entry)
		}
		if !strings.Contains(rec.Cause, "protection") {
			t.Fatalf("record %d cause = %q", i, rec.Cause)
		}
		if i > 0 && rec.Cycle < log[i-1].Cycle {
			t.Fatalf("fault timestamps not monotonic at %d", i)
		}
	}
}
