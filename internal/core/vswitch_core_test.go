package core_test

import (
	"bytes"
	"testing"

	"twindrivers/internal/core"
)

// Inter-guest L2 switch wired into the transmit paths: guest→guest
// unicast never touches the device, broadcast fans out AND goes to the
// wire, forged source MACs are dropped, and delivery feeds the same
// receive queues as the device demux — so both the copy-mode and
// posted-buffer RX paths consume switched frames unchanged.

// vswMAC is the per-guest MAC registered on the switch's static table.
func vswMAC(gi int) [6]byte {
	return [6]byte{0x02, 0x54, 0x57, 0x49, 0x4E, byte(gi + 1)}
}

// vswTwin builds an nGuest twin with the switch on and each guest's MAC
// registered (static entries), wire captured.
func vswTwin(t *testing.T, nGuests int, cfg core.TwinConfig) (*core.Machine, *core.Twin, *core.NICDev, *[][]byte) {
	t.Helper()
	cfg.Switch = true
	m, tw, err := core.NewTwinMachine(1, nGuests, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	var wire [][]byte
	d.NIC.OnTransmit = func(pkt []byte) { wire = append(wire, append([]byte(nil), pkt...)) }
	for gi, dom := range m.Guests {
		tw.RegisterGuestMAC(vswMAC(gi), dom.ID)
	}
	return m, tw, d, &wire
}

func TestVswitchUnicastLocalDelivery(t *testing.T) {
	m, tw, d, wire := vswTwin(t, 3, core.TwinConfig{})
	frame := core.EthernetFrame(vswMAC(1), vswMAC(0), 0x0800, []byte("guest0 to guest1"))
	if _, err := tw.StageTransmitBatch(m.Guests[0], [][]byte{frame}); err != nil {
		t.Fatal(err)
	}
	sent, err := tw.ServiceRings(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sent[m.Guests[0].ID] != 1 {
		t.Fatalf("sent = %v, want 1 from guest 0", sent)
	}
	if len(*wire) != 0 {
		t.Fatalf("guest→guest unicast reached the device: %d wire frames", len(*wire))
	}
	if n := tw.PendingRx(m.Guests[1].ID); n != 1 {
		t.Fatalf("PendingRx(guest1) = %d, want 1", n)
	}
	got, err := tw.DeliverPending(m.Guests[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !bytes.Equal(got[0], frame) {
		t.Fatalf("delivered %d frames, byte-exact=%v", len(got), len(got) == 1 && bytes.Equal(got[0], frame))
	}
	// Pool conservation: the local delivery's buffer came back.
	if free, out := tw.PoolFree(), tw.PoolOutstanding(); free+out != tw.PoolCapacity() || out != 0 {
		t.Fatalf("pool free=%d outstanding=%d capacity=%d", free, out, tw.PoolCapacity())
	}
	st := tw.VSwitch().Stats()
	if st.LocalUnicast != 1 {
		t.Fatalf("switch stats = %+v, want LocalUnicast=1", st)
	}
}

func TestVswitchBroadcastFanout(t *testing.T) {
	m, tw, d, wire := vswTwin(t, 4, core.TwinConfig{})
	bcast := [6]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	frame := core.EthernetFrame(bcast, vswMAC(2), 0x0806, []byte("who-has"))
	if _, err := tw.StageTransmitBatch(m.Guests[2], [][]byte{frame}); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.ServiceRings(d, 0); err != nil {
		t.Fatal(err)
	}
	// Broadcast goes to the wire too (external hosts exist).
	if len(*wire) != 1 || !bytes.Equal((*wire)[0], frame) {
		t.Fatalf("wire carried %d frames", len(*wire))
	}
	for gi, dom := range m.Guests {
		want := 1
		if gi == 2 {
			want = 0 // never reflected to the sender
		}
		if n := tw.PendingRx(dom.ID); n != want {
			t.Fatalf("PendingRx(guest%d) = %d, want %d", gi, n, want)
		}
	}
	for gi, dom := range m.Guests {
		if gi == 2 {
			continue
		}
		got, err := tw.DeliverPending(dom)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || !bytes.Equal(got[0], frame) {
			t.Fatalf("guest %d: broadcast copy not byte-exact", gi)
		}
	}
}

func TestVswitchMacSpoofIsolated(t *testing.T) {
	m, tw, d, wire := vswTwin(t, 3, core.TwinConfig{})
	// Guest 2 forges guest 0's registered MAC as its source, addressed
	// at guest 1: the frame must vanish — not delivered, not wired.
	forged := core.EthernetFrame(vswMAC(1), vswMAC(0), 0x0800, []byte("stolen identity"))
	if _, err := tw.StageTransmitBatch(m.Guests[2], [][]byte{forged}); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.ServiceRings(d, 0); err != nil {
		t.Fatal(err)
	}
	if len(*wire) != 0 {
		t.Fatalf("spoofed frame reached the wire")
	}
	for gi, dom := range m.Guests {
		if n := tw.PendingRx(dom.ID); n != 0 {
			t.Fatalf("spoofed frame delivered to guest %d", gi)
		}
	}
	if n := tw.VswitchSpoofDropped(m.Guests[2].ID); n != 1 {
		t.Fatalf("VswitchSpoofDropped(forger) = %d, want 1", n)
	}
	// The victim's own traffic still flows dom0-side, untouched.
	legit := core.EthernetFrame(vswMAC(1), vswMAC(0), 0x0800, []byte("the real guest 0"))
	if _, err := tw.StageTransmitBatch(m.Guests[0], [][]byte{legit}); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.ServiceRings(d, 0); err != nil {
		t.Fatal(err)
	}
	got, err := tw.DeliverPending(m.Guests[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !bytes.Equal(got[0], legit) {
		t.Fatalf("victim's traffic perturbed after spoof attempt")
	}
}

// TestVswitchPostedTxLocal: the posted-descriptor transmit path is
// switched too — a posted guest→guest frame is delivered dom0-side
// after its ownership check, without the device.
func TestVswitchPostedTxLocal(t *testing.T) {
	m, tw, d, wire := vswTwin(t, 2, core.TwinConfig{})
	frame := core.EthernetFrame(vswMAC(1), vswMAC(0), 0x0800, []byte("posted local"))
	buf := m.HV.AllocHeap(m.Guests[0], 2048)
	if err := m.Guests[0].AS.WriteBytes(buf, frame); err != nil {
		t.Fatal(err)
	}
	if n, err := tw.PostTxDescriptors(m.Guests[0], []core.TxPost{{Addr: buf, Len: uint32(len(frame))}}); err != nil || n != 1 {
		t.Fatalf("post: n=%d err=%v", n, err)
	}
	if _, err := tw.ServiceRings(d, 0); err != nil {
		t.Fatal(err)
	}
	if len(*wire) != 0 {
		t.Fatalf("posted guest→guest frame reached the device")
	}
	got, err := tw.DeliverPending(m.Guests[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !bytes.Equal(got[0], frame) {
		t.Fatalf("posted local delivery not byte-exact")
	}
	if tw.PinnedTxPages() != 0 {
		t.Fatalf("local delivery left %d pages pinned", tw.PinnedTxPages())
	}
}

// TestVswitchPostedRxDelivery: switched frames land on the same receive
// queues as the device demux, so the posted-buffer RX path delivers
// them into guest-posted buffers unchanged.
func TestVswitchPostedRxDelivery(t *testing.T) {
	m, tw, d, _ := vswTwin(t, 2, core.TwinConfig{})
	frame := core.EthernetFrame(vswMAC(1), vswMAC(0), 0x0800, []byte("into a posted buffer"))
	rxBuf := m.HV.AllocHeap(m.Guests[1], 2048)
	if n, err := tw.PostRxBuffers(m.Guests[1], []core.RxPost{{Addr: rxBuf, Len: 2048}}); err != nil || n != 1 {
		t.Fatalf("post rx: n=%d err=%v", n, err)
	}
	if _, err := tw.StageTransmitBatch(m.Guests[0], [][]byte{frame}); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.ServiceRings(d, 0); err != nil {
		t.Fatal(err)
	}
	del, err := tw.DeliverPendingPosted(m.Guests[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(del.Frames) != 1 || del.Lost != 0 {
		t.Fatalf("posted delivery: %d frames, %d lost", len(del.Frames), del.Lost)
	}
	got, err := m.Guests[1].AS.ReadBytes(del.Frames[0].Addr, del.Frames[0].Len)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, frame) {
		t.Fatalf("posted-buffer contents differ from the transmitted frame")
	}
}

// TestVswitchExternalUnchanged: with the switch on, frames to unknown
// (external) MACs still go to the device — and a MAC the switch learned
// from cross traffic redirects later frames dom0-side.
func TestVswitchExternalAndLearning(t *testing.T) {
	m, tw, d, wire := vswTwin(t, 2, core.TwinConfig{})
	ext := core.EthernetFrame([6]byte{0, 0x50, 0x56, 9, 9, 9}, vswMAC(0), 0x0800, []byte("to the world"))
	if _, err := tw.StageTransmitBatch(m.Guests[0], [][]byte{ext}); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.ServiceRings(d, 0); err != nil {
		t.Fatal(err)
	}
	if len(*wire) != 1 {
		t.Fatalf("external frame did not reach the device")
	}
	// Guest 1 transmits from an unregistered secondary MAC; the switch
	// learns it, and guest 0 can then reach that MAC locally.
	second := [6]byte{0x02, 0xEE, 0, 0, 0, 0x42}
	learn := core.EthernetFrame([6]byte{0, 0x50, 0x56, 9, 9, 9}, second, 0x0800, []byte("learn me"))
	if _, err := tw.StageTransmitBatch(m.Guests[1], [][]byte{learn}); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.ServiceRings(d, 0); err != nil {
		t.Fatal(err)
	}
	*wire = nil
	toLearned := core.EthernetFrame(second, vswMAC(0), 0x0800, []byte("found you"))
	if _, err := tw.StageTransmitBatch(m.Guests[0], [][]byte{toLearned}); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.ServiceRings(d, 0); err != nil {
		t.Fatal(err)
	}
	if len(*wire) != 0 {
		t.Fatalf("frame to a learned local MAC reached the device")
	}
	got, err := tw.DeliverPending(m.Guests[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !bytes.Equal(got[0], toLearned) {
		t.Fatalf("learned-MAC delivery not byte-exact")
	}
}

// TestVswitchSurvivesRecovery: the switch's static table is rebuilt by
// config-log replay, so guest→guest delivery keeps working across a
// containment fault → recovery cycle. (The replay path re-asserts every
// OpGuestMAC event into the switch.)
func TestVswitchStaticTableFromRegistration(t *testing.T) {
	m, tw, _, _ := vswTwin(t, 2, core.TwinConfig{})
	for gi, dom := range m.Guests {
		if o, ok := tw.VSwitch().Lookup(vswMAC(gi)); !ok || o != dom.ID {
			t.Fatalf("static entry for guest %d: %v %v", gi, o, ok)
		}
	}
}
