package core

import (
	"bytes"
	"errors"
	"testing"

	"twindrivers/internal/drivermodel"
	"twindrivers/internal/e1000"
	"twindrivers/internal/kernel"
	"twindrivers/internal/mem"
	"twindrivers/internal/rtl8139"
)

// Posted-buffer receive path tests: byte-exact direct delivery, hostile
// descriptor containment, queue semantics when no buffer is posted, and
// the abort/revive lifecycle of the posted ring and guest TLB.

// captureDev wires a device's transmit side to a byte sink through the
// backend-generic interface (capture in core_test.go needs the e1000).
func captureDev(d *NICDev) *[][]byte {
	var got [][]byte
	d.Dev.SetOnTransmit(func(pkt []byte) {
		got = append(got, append([]byte(nil), pkt...))
	})
	return &got
}

// rxModels returns both registered backends for model-parameterised tests.
func rxModels() []*drivermodel.Model {
	return []*drivermodel.Model{e1000.DriverModel(), rtl8139.DriverModel()}
}

// postedSetup brings up a twin, allocates n guest receive buffers and
// posts them, returning the machine, twin, device and buffer addresses.
func postedSetup(t *testing.T, model *drivermodel.Model, n int) (*Machine, *Twin, *NICDev, []uint32) {
	t.Helper()
	m, tw, err := NewTwinMachineModel(1, 1, model, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	m.HV.Switch(m.DomU)
	var bufs []uint32
	var posts []RxPost
	for i := 0; i < n; i++ {
		b := m.HV.AllocHeap(m.DomU, 2048)
		bufs = append(bufs, b)
		posts = append(posts, RxPost{Addr: b, Len: 2048})
	}
	if posted, err := tw.PostRxBuffers(m.DomU, posts); err != nil || posted != n {
		t.Fatalf("posted %d of %d: %v", posted, n, err)
	}
	return m, tw, d, bufs
}

// TestPostedDeliveryByteExact: frames delivered into posted buffers are
// byte-exact in guest memory, in order, under one coalesced notification —
// per backend.
func TestPostedDeliveryByteExact(t *testing.T) {
	for _, model := range rxModels() {
		t.Run(model.Name, func(t *testing.T) {
			const n = 8
			m, tw, d, bufs := postedSetup(t, model, n)
			var frames [][]byte
			for i := 0; i < n; i++ {
				f := EthernetFrame(d.Dev.HWAddr(), [6]byte{4, 4, 4, 4, 4, byte(i)}, 0x0800, payload(200+i*97, byte(i)))
				frames = append(frames, f)
				if !d.Dev.Inject(f) {
					t.Fatalf("inject %d", i)
				}
			}
			if err := tw.HandleIRQ(d); err != nil {
				t.Fatal(err)
			}
			ev := m.HV.Events
			del, err := tw.DeliverPendingPosted(m.DomU, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(del.Frames) != n || del.Lost != 0 {
				t.Fatalf("delivered %d lost %d, want %d/0", len(del.Frames), del.Lost, n)
			}
			if m.HV.Events-ev != 1 {
				t.Errorf("posted delivery raised %d notifications, want 1", m.HV.Events-ev)
			}
			for i, fr := range del.Frames {
				if fr.Addr != bufs[i] {
					t.Errorf("frame %d landed at %#x, posted buffer %#x", i, fr.Addr, bufs[i])
				}
				got, err := m.DomU.AS.ReadBytes(fr.Addr, fr.Len)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, frames[i]) {
					t.Errorf("frame %d corrupted in posted buffer (%d vs %d bytes)", i, len(got), len(frames[i]))
				}
			}
			if tw.PendingRx(m.DomU.ID) != 0 {
				t.Errorf("pending after full posted delivery: %d", tw.PendingRx(m.DomU.ID))
			}
		})
	}
}

// TestPostedDeliveryStraddlesPages: a posted buffer deliberately placed
// across a page boundary receives its frame byte-exact — the per-page
// guest-TLB translation discipline under test.
func TestPostedDeliveryStraddlesPages(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	m.HV.Switch(m.DomU)
	// Pad the guest heap so the next allocation starts 8 bytes short of a
	// page boundary, then allocate the posted buffer there.
	probe := m.HV.AllocHeap(m.DomU, 4)
	pad := (mem.PageSize - int((probe+4)&mem.PageMask) - 8 + mem.PageSize) % mem.PageSize
	if pad > 0 {
		m.HV.AllocHeap(m.DomU, uint32(pad))
	}
	buf := m.HV.AllocHeap(m.DomU, 2048)
	if buf&mem.PageMask != mem.PageSize-8 {
		t.Fatalf("buffer at %#x, want offset PageSize-8", buf)
	}
	if n, err := tw.PostRxBuffers(m.DomU, []RxPost{{Addr: buf, Len: 2048}}); err != nil || n != 1 {
		t.Fatalf("post: %d, %v", n, err)
	}
	f := EthernetFrame(d.Dev.HWAddr(), [6]byte{5, 5, 5, 5, 5, 5}, 0x0800, payload(700, 0x5A))
	if !d.Dev.Inject(f) {
		t.Fatal("inject")
	}
	if err := tw.HandleIRQ(d); err != nil {
		t.Fatal(err)
	}
	del, err := tw.DeliverPendingPosted(m.DomU, 0)
	if err != nil || len(del.Frames) != 1 || del.Lost != 0 {
		t.Fatalf("delivery: %+v, %v", del, err)
	}
	got, err := m.DomU.AS.ReadBytes(buf, len(f))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, f) {
		t.Fatal("straddling posted buffer corrupted the frame")
	}
}

// TestPostedHostileDescriptorContained: posted descriptors aiming at
// hypervisor memory, dom0 memory, unmapped guest pages, or with a length
// too small for the frame lose exactly their own frame — the twin stays
// alive, honest descriptors around them still deliver, and not a byte of
// hypervisor or dom0 memory moves.
func TestPostedHostileDescriptorContained(t *testing.T) {
	for _, model := range rxModels() {
		t.Run(model.Name, func(t *testing.T) {
			m, tw, err := NewTwinMachineModel(1, 1, model, TwinConfig{})
			if err != nil {
				t.Fatal(err)
			}
			d := m.Devs[0]
			m.HV.Switch(m.DomU)
			good1 := m.HV.AllocHeap(m.DomU, 2048)
			good2 := m.HV.AllocHeap(m.DomU, 2048)
			// Sentinel in hypervisor memory the hostile descriptor aims at.
			hvAddr := tw.HVImage.CodeBase
			hvBefore, _ := m.HV.HVSpace.Load(hvAddr, 4)
			// Sentinel in dom0 kernel memory.
			dom0Addr := d.Netdev
			dom0Before, _ := m.Dom0.AS.Load(dom0Addr, 4)
			posts := []RxPost{
				{Addr: good1, Len: 2048},
				{Addr: hvAddr, Len: 2048},     // hypervisor range
				{Addr: dom0Addr, Len: 2048},   // dom0 range
				{Addr: 0x00000040, Len: 2048}, // unmapped guest page
				{Addr: good2, Len: 8},         // too small for any frame
				{Addr: good2, Len: 2048},      // honest again
			}
			if n, err := tw.PostRxBuffers(m.DomU, posts); err != nil || n != len(posts) {
				t.Fatalf("post: %d, %v", n, err)
			}
			var frames [][]byte
			for i := 0; i < len(posts); i++ {
				f := EthernetFrame(d.Dev.HWAddr(), [6]byte{6, 6, 6, 6, 6, byte(i)}, 0x0800, payload(300, byte(0x10+i)))
				frames = append(frames, f)
				if !d.Dev.Inject(f) {
					t.Fatalf("inject %d", i)
				}
			}
			if err := tw.HandleIRQ(d); err != nil {
				t.Fatal(err)
			}
			del, err := tw.DeliverPendingPosted(m.DomU, 0)
			if err != nil {
				t.Fatalf("hostile descriptors errored the batch: %v", err)
			}
			if tw.Dead {
				t.Fatal("hostile posted descriptor killed the twin")
			}
			if len(del.Frames) != 2 || del.Lost != 4 {
				t.Fatalf("delivered %d lost %d, want 2/4", len(del.Frames), del.Lost)
			}
			// The two honest buffers carry the first and last frames.
			got1, _ := m.DomU.AS.ReadBytes(good1, len(frames[0]))
			if !bytes.Equal(got1, frames[0]) {
				t.Error("first honest delivery corrupted")
			}
			got2, _ := m.DomU.AS.ReadBytes(good2, len(frames[5]))
			if !bytes.Equal(got2, frames[5]) {
				t.Error("second honest delivery corrupted")
			}
			// Not a byte moved outside guest memory.
			if v, _ := m.HV.HVSpace.Load(hvAddr, 4); v != hvBefore {
				t.Error("hostile descriptor wrote hypervisor memory")
			}
			if v, _ := m.Dom0.AS.Load(dom0Addr, 4); v != dom0Before {
				t.Error("hostile descriptor wrote dom0 memory")
			}
			if tw.GuestTLBViolations(m.DomU.ID) == 0 {
				t.Error("violations not recorded by the guest TLB")
			}
		})
	}
}

// TestPostedNoBufferLeavesQueued: frames received while the guest has
// nothing posted stay queued (not lost) and deliver once buffers arrive.
func TestPostedNoBufferLeavesQueued(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Devs[0]
	m.HV.Switch(m.DomU)
	f := EthernetFrame(d.Dev.HWAddr(), [6]byte{7, 7, 7, 7, 7, 7}, 0x0800, payload(256, 0x77))
	if !d.Dev.Inject(f) {
		t.Fatal("inject")
	}
	if err := tw.HandleIRQ(d); err != nil {
		t.Fatal(err)
	}
	del, err := tw.DeliverPendingPosted(m.DomU, 0)
	if err != nil || len(del.Frames) != 0 || del.Lost != 0 {
		t.Fatalf("unbuffered delivery: %+v, %v", del, err)
	}
	if tw.PendingRx(m.DomU.ID) != 1 {
		t.Fatalf("frame not left queued: pending=%d", tw.PendingRx(m.DomU.ID))
	}
	buf := m.HV.AllocHeap(m.DomU, 2048)
	if n, err := tw.PostRxBuffers(m.DomU, []RxPost{{Addr: buf, Len: 2048}}); err != nil || n != 1 {
		t.Fatalf("post: %d, %v", n, err)
	}
	del, err = tw.DeliverPendingPosted(m.DomU, 0)
	if err != nil || len(del.Frames) != 1 {
		t.Fatalf("post-then-deliver: %+v, %v", del, err)
	}
	got, _ := m.DomU.AS.ReadBytes(buf, len(f))
	if !bytes.Equal(got, f) {
		t.Fatal("queued-then-posted frame corrupted")
	}
}

// TestPostedRingScribbleContained: a guest scribbling its posted-RX ring
// header gets ErrRingCorrupt, a ring reset, and keeps its queued frames —
// the twin survives and honest re-posting resumes delivery.
func TestPostedRingScribbleContained(t *testing.T) {
	m, tw, d, _ := postedSetup(t, nil, 2)
	f := EthernetFrame(d.Dev.HWAddr(), [6]byte{8, 8, 8, 8, 8, 8}, 0x0800, payload(256, 0x88))
	if !d.Dev.Inject(f) {
		t.Fatal("inject")
	}
	if err := tw.HandleIRQ(d); err != nil {
		t.Fatal(err)
	}
	// Scribble the posted ring's tail word.
	var base uint32
	for _, ev := range m.Config.Events {
		if ev.Op == OpRxRing && ev.Dom == m.DomU.ID {
			base = ev.Addr
		}
	}
	if base == 0 {
		t.Fatal("no recorded posted-RX ring base")
	}
	if err := m.DomU.AS.Store(base+8, 4, 0xFFFF0000); err != nil {
		t.Fatal(err)
	}
	_, err := tw.DeliverPendingPosted(m.DomU, 0)
	if !errors.Is(err, mem.ErrRingCorrupt) {
		t.Fatalf("scribbled ring header: %v", err)
	}
	if tw.Dead {
		t.Fatal("ring scribble killed the twin")
	}
	if tw.PendingRx(m.DomU.ID) != 1 {
		t.Fatalf("queued frame lost to the scribble: pending=%d", tw.PendingRx(m.DomU.ID))
	}
	buf := m.HV.AllocHeap(m.DomU, 2048)
	if n, err := tw.PostRxBuffers(m.DomU, []RxPost{{Addr: buf, Len: 2048}}); err != nil || n != 1 {
		t.Fatalf("re-post after reset: %d, %v", n, err)
	}
	del, err := tw.DeliverPendingPosted(m.DomU, 0)
	if err != nil || len(del.Frames) != 1 {
		t.Fatalf("delivery after reset: %+v, %v", del, err)
	}
}

// TestAbortDiscardsPostedBuffers: an abort discards posted descriptors
// (counted in AbortStats) and shoots down the guest TLB; after Revive the
// ring is clean and re-posted buffers deliver again.
func TestAbortDiscardsPostedBuffers(t *testing.T) {
	m, tw, d, _ := postedSetup(t, nil, 3)
	if tw.GuestTLBCached(m.DomU.ID) != 0 {
		t.Fatal("TLB warm before any delivery")
	}
	// Warm the TLB with one delivery.
	f := EthernetFrame(d.Dev.HWAddr(), [6]byte{9, 9, 9, 9, 9, 9}, 0x0800, payload(256, 0x99))
	if !d.Dev.Inject(f) {
		t.Fatal("inject")
	}
	if err := tw.HandleIRQ(d); err != nil {
		t.Fatal(err)
	}
	if del, err := tw.DeliverPendingPosted(m.DomU, 1); err != nil || len(del.Frames) != 1 {
		t.Fatalf("warm delivery: %v", err)
	}
	if tw.GuestTLBCached(m.DomU.ID) == 0 {
		t.Fatal("TLB cold after a delivery")
	}
	// Kill the instance with the generic wild write.
	if err := m.Dom0.AS.Store(d.Netdev+kernel.NdPriv, 4, 0xF1000040); err != nil {
		t.Fatal(err)
	}
	err := tw.GuestTransmit(d, EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.Dev.HWAddr(), 0x0800, payload(100, 1)))
	if !errors.Is(err, ErrDriverDead) {
		t.Fatalf("wild write not contained: %v", err)
	}
	if tw.LastAbort.RxPostedDiscarded != 2 {
		t.Errorf("abort discarded %d posted descriptors, want 2", tw.LastAbort.RxPostedDiscarded)
	}
	if tw.GuestTLBCached(m.DomU.ID) != 0 {
		t.Error("abort left guest-TLB translations cached")
	}
	if err := tw.Revive(); err != nil {
		t.Fatal(err)
	}
	if free, err := tw.RxPostedFree(m.DomU.ID); err != nil || free != RxRingSlots {
		t.Fatalf("revived posted ring not empty: free=%d, %v", free, err)
	}
	// Re-post and deliver on the revived instance.
	buf := m.HV.AllocHeap(m.DomU, 2048)
	if n, err := tw.PostRxBuffers(m.DomU, []RxPost{{Addr: buf, Len: 2048}}); err != nil || n != 1 {
		t.Fatalf("re-post: %d, %v", n, err)
	}
	f2 := EthernetFrame(d.Dev.HWAddr(), [6]byte{9, 9, 9, 9, 9, 1}, 0x0800, payload(300, 0x9A))
	if !d.Dev.Inject(f2) {
		t.Fatal("post-revive inject")
	}
	if err := tw.HandleIRQ(d); err != nil {
		t.Fatal(err)
	}
	del, err := tw.DeliverPendingPosted(m.DomU, 0)
	if err != nil || len(del.Frames) != 1 {
		t.Fatalf("post-revive delivery: %+v, %v", del, err)
	}
	got, _ := m.DomU.AS.ReadBytes(buf, len(f2))
	if !bytes.Equal(got, f2) {
		t.Fatal("post-revive posted delivery corrupted")
	}
}

// TestPostedRingFullStopsPosting: PostRxBuffers stops at ring capacity
// without error, like the transmit staging path.
func TestPostedRingFullStopsPosting(t *testing.T) {
	m, tw, err := NewTwinMachine(1, 1, TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	buf := m.HV.AllocHeap(m.DomU, 2048)
	posts := make([]RxPost, RxRingSlots+5)
	for i := range posts {
		posts[i] = RxPost{Addr: buf, Len: 2048}
	}
	n, err := tw.PostRxBuffers(m.DomU, posts)
	if err != nil {
		t.Fatal(err)
	}
	if n != RxRingSlots {
		t.Fatalf("posted %d, want ring capacity %d", n, RxRingSlots)
	}
	if free, _ := tw.RxPostedFree(m.DomU.ID); free != 0 {
		t.Fatalf("free=%d after filling the ring", free)
	}
}
