package core

import (
	"fmt"

	"twindrivers/internal/mem"
	"twindrivers/internal/xen"
)

// Batched guest I/O (the batched-hypercall path). The per-packet
// GuestTransmit pays one guest→hypervisor transition per frame; here a
// guest stages up to TxRingSlots frames in its shared descriptor ring and
// crosses the boundary once per batch, so the hypercall's transition cost
// amortizes over the batch. Everything after the boundary — header copy,
// fragment chaining, the derived-driver invocation — is byte-for-byte the
// per-packet path (xmitOne), which is what keeps a batch of one
// cycle-identical to GuestTransmit.
//
// With several guests sharing the NIC, each guest owns a private ring (its
// guestIO): guests stage independently with StageTransmitBatch, and a
// single ServiceRings crossing drains every ring round-robin, so the
// boundary cost amortizes across guests as well as across frames, and a
// guest with a deep backlog cannot starve the others.

// Transmit-ring geometry.
const (
	// TxRingSlots is the per-guest descriptor-ring capacity: the largest
	// batch one guest carries across the boundary in one hypercall. Larger
	// requests are chunked into ring-sized batches transparently.
	TxRingSlots = 32

	// TxSlotBytes sizes each guest staging buffer (one MTU frame plus
	// headroom, matching the dom0 sk_buff linear buffer).
	TxSlotBytes = 2048
)

// GuestTransmitBatch sends a batch of the current guest's packets through
// the hypervisor driver with one hypercall per ring-full of frames: the
// frames are staged in guest memory, their descriptors published on the
// guest's ring, and the hypervisor drains the ring inside a single
// boundary crossing. It returns the number of frames transmitted; on error
// (including ErrTxBusy when the buffer pool or device ring fills
// mid-batch) the remaining staged descriptors are discarded, exactly as a
// real batched hypercall reports a short completion count.
func (t *Twin) GuestTransmitBatch(d *NICDev, frames [][]byte) (int, error) {
	if t.Dead {
		return 0, ErrDriverDead
	}
	for _, f := range frames {
		if len(f) > TxSlotBytes {
			return 0, fmt.Errorf("core: frame of %d bytes exceeds the %d-byte staging slot", len(f), TxSlotBytes)
		}
	}
	g := t.ioCurrent()
	t.Coalescer.Begin()
	defer t.Coalescer.End()

	sent := 0
	for sent < len(frames) {
		chunk := frames[sent:]
		if len(chunk) > TxRingSlots {
			chunk = chunk[:TxRingSlots]
		}
		// Guest side: stage each frame and publish its descriptor. The
		// staging copy stands in for the guest's own packet pages, as in
		// GuestTransmit; its cycle price is part of the caller's kernel
		// path. Capacity is checked BEFORE the slot write: on a full ring
		// the producer slot still backs an unconsumed descriptor (e.g.
		// left staged by a budgeted ServiceRings), and writing first would
		// silently corrupt that frame.
		for _, f := range chunk {
			free, err := g.ring.Free()
			if err != nil {
				_ = g.ring.Reset() // best-effort: the staging error is the one to report
				return sent, err
			}
			if free == 0 {
				break // drain below, stage the rest next round
			}
			slot, err := g.ring.ProducerSlot()
			if err != nil {
				_ = g.ring.Reset()
				return sent, err
			}
			if err := g.dom.AS.WriteBytes(g.slots[slot], f); err != nil {
				_ = g.ring.Reset()
				return sent, err
			}
			if err := g.ring.Push(g.slots[slot], uint32(len(f))); err != nil {
				_ = g.ring.Reset()
				return sent, err
			}
		}
		// One boundary crossing for the whole chunk.
		t.M.HV.ChargeHypercall()
		// Hypervisor side: drain the ring without further transitions.
		for {
			addr, n, ok, err := g.ring.Pop()
			if err != nil {
				// A corrupt (guest-scribbled) header: discard the staged
				// descriptors rather than trusting any of them.
				_ = g.ring.Reset()
				return sent, err
			}
			if !ok {
				break
			}
			if err := t.xmitOne(d, g.dom.AS, addr, int(n)); err != nil {
				if rerr := g.ring.Reset(); rerr != nil && !t.Dead {
					return sent, rerr
				}
				return sent, err
			}
			sent++
		}
	}
	return sent, nil
}

// StageTransmitBatch publishes frames on a guest's transmit ring without
// crossing the virtualization boundary: the counterpart of the guest-side
// half of GuestTransmitBatch, for workloads where several guests stage
// independently and one ServiceRings crossing drains them all. It returns
// the number of frames staged, stopping early without error when the ring
// fills (the guest retries after the next service).
func (t *Twin) StageTransmitBatch(dom *xen.Domain, frames [][]byte) (int, error) {
	if t.Dead {
		return 0, ErrDriverDead
	}
	g, ok := t.guestIO[dom.ID]
	if !ok {
		return 0, fmt.Errorf("core: domain %q has no transmit ring", dom.Name)
	}
	staged := 0
	for _, f := range frames {
		if len(f) > TxSlotBytes {
			return staged, fmt.Errorf("core: frame of %d bytes exceeds the %d-byte staging slot", len(f), TxSlotBytes)
		}
		// Capacity is checked BEFORE the slot write: on a full ring the
		// producer slot aliases the oldest unconsumed descriptor's staging
		// buffer, and writing first would corrupt that staged frame.
		free, err := g.ring.Free()
		if err != nil {
			return staged, err
		}
		if free == 0 {
			return staged, nil
		}
		slot, err := g.ring.ProducerSlot()
		if err != nil {
			return staged, err
		}
		if err := g.dom.AS.WriteBytes(g.slots[slot], f); err != nil {
			return staged, err
		}
		if err := g.ring.Push(g.slots[slot], uint32(len(f))); err != nil {
			return staged, err
		}
		staged++
	}
	return staged, nil
}

// ServiceRings drains every guest's transmit ring under a single boundary
// crossing: one hypercall, then a round-robin sweep consuming one
// descriptor per guest per pass, so a guest with a full ring cannot starve
// the others. budget bounds the descriptors consumed in this crossing (0
// means drain everything); descriptors beyond the budget stay staged for
// the next crossing. It returns per-guest transmit counts.
//
// A corrupt ring header (ErrRingCorrupt — the guest scribbled its
// guest-writable head/tail words) or a transmit fault discards the
// offending guest's staged descriptors and aborts the sweep; other guests'
// rings keep their staged work for the next crossing.
func (t *Twin) ServiceRings(d *NICDev, budget int) (map[mem.Owner]int, error) {
	if t.Dead {
		return nil, ErrDriverDead
	}
	t.M.HV.ChargeHypercall()
	sent := make(map[mem.Owner]int)
	consumed := 0
	for {
		progress := false
		for _, id := range t.guestOrder {
			if budget > 0 && consumed >= budget {
				return sent, nil
			}
			g := t.guestIO[id]
			addr, n, ok, err := g.ring.Pop()
			if err != nil {
				_ = g.ring.Reset()
				return sent, fmt.Errorf("core: guest %d transmit ring: %w", id, err)
			}
			if !ok {
				continue
			}
			progress = true
			consumed++
			if err := t.xmitOne(d, g.dom.AS, addr, int(n)); err != nil {
				if rerr := g.ring.Reset(); rerr != nil && !t.Dead {
					return sent, rerr
				}
				return sent, err
			}
			sent[id]++
		}
		if !progress {
			return sent, nil
		}
	}
}
