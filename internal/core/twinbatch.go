package core

import (
	"fmt"
)

// Batched guest I/O (the batched-hypercall path). The per-packet
// GuestTransmit pays one guest→hypervisor transition per frame; here the
// guest stages up to TxRingSlots frames in the shared descriptor ring and
// crosses the boundary once per batch, so the hypercall's transition cost
// amortizes over the batch. Everything after the boundary — header copy,
// fragment chaining, the derived-driver invocation — is byte-for-byte the
// per-packet path (xmitOne), which is what keeps a batch of one
// cycle-identical to GuestTransmit.

// Transmit-ring geometry.
const (
	// TxRingSlots is the descriptor-ring capacity: the largest batch that
	// crosses the boundary in one hypercall. Larger requests are chunked
	// into ring-sized batches transparently.
	TxRingSlots = 32

	// TxSlotBytes sizes each guest staging buffer (one MTU frame plus
	// headroom, matching the dom0 sk_buff linear buffer).
	TxSlotBytes = 2048
)

// GuestTransmitBatch sends a batch of guest packets through the hypervisor
// driver with one hypercall per ring-full of frames: the frames are staged
// in guest memory, their descriptors published on the shared ring, and the
// hypervisor drains the ring inside a single boundary crossing. It returns
// the number of frames transmitted; on error (including ErrTxBusy when the
// buffer pool or device ring fills mid-batch) the remaining staged
// descriptors are discarded, exactly as a real batched hypercall reports a
// short completion count.
func (t *Twin) GuestTransmitBatch(d *NICDev, frames [][]byte) (int, error) {
	if t.Dead {
		return 0, ErrDriverDead
	}
	for _, f := range frames {
		if len(f) > TxSlotBytes {
			return 0, fmt.Errorf("core: frame of %d bytes exceeds the %d-byte staging slot", len(f), TxSlotBytes)
		}
	}
	t.Coalescer.Begin()
	defer t.Coalescer.End()

	sent := 0
	for sent < len(frames) {
		chunk := frames[sent:]
		if len(chunk) > TxRingSlots {
			chunk = chunk[:TxRingSlots]
		}
		// Guest side: stage each frame and publish its descriptor. The
		// staging copy stands in for the guest's own packet pages, as in
		// GuestTransmit; its cycle price is part of the caller's kernel
		// path.
		for i, f := range chunk {
			if err := t.M.DomU.AS.WriteBytes(t.txSlots[i], f); err != nil {
				_ = t.txRing.Reset() // best-effort: the staging error is the one to report
				return sent, err
			}
			if err := t.txRing.Push(t.txSlots[i], uint32(len(f))); err != nil {
				_ = t.txRing.Reset() // best-effort: the staging error is the one to report
				return sent, err
			}
		}
		// One boundary crossing for the whole chunk.
		t.M.HV.ChargeHypercall()
		// Hypervisor side: drain the ring without further transitions.
		for {
			addr, n, ok, err := t.txRing.Pop()
			if err != nil {
				return sent, err
			}
			if !ok {
				break
			}
			if err := t.xmitOne(d, addr, int(n)); err != nil {
				if rerr := t.txRing.Reset(); rerr != nil && !t.Dead {
					return sent, rerr
				}
				return sent, err
			}
			sent++
		}
	}
	return sent, nil
}
