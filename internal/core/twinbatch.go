package core

import (
	"fmt"
	"sync"

	"twindrivers/internal/mem"
	"twindrivers/internal/telemetry"
	"twindrivers/internal/xen"
)

// Batched guest I/O (the batched-hypercall path). The per-packet
// GuestTransmit pays one guest→hypervisor transition per frame; here a
// guest stages up to TxRingSlots frames in its shared descriptor ring and
// crosses the boundary once per batch, so the hypercall's transition cost
// amortizes over the batch. Everything after the boundary — header copy,
// fragment chaining, the derived-driver invocation — is byte-for-byte the
// per-packet path (xmitOne), which is what keeps a batch of one
// cycle-identical to GuestTransmit.
//
// With several guests sharing the NIC, each guest owns a private ring (its
// guestIO): guests stage independently with StageTransmitBatch, and a
// single ServiceRings crossing drains every ring round-robin, so the
// boundary cost amortizes across guests as well as across frames, and a
// guest with a deep backlog cannot starve the others.

// Transmit-ring geometry.
const (
	// TxRingSlots is the per-guest descriptor-ring capacity: the largest
	// batch one guest carries across the boundary in one hypercall. Larger
	// requests are chunked into ring-sized batches transparently.
	TxRingSlots = 32

	// TxSlotBytes sizes each guest staging buffer (one MTU frame plus
	// headroom, matching the dom0 sk_buff linear buffer).
	TxSlotBytes = 2048
)

// GuestTransmitBatch sends a batch of the current guest's packets through
// the hypervisor driver with one hypercall per ring-full of frames: the
// frames are staged in guest memory, their descriptors published on the
// guest's ring, and the hypervisor drains the ring inside a single
// boundary crossing. It returns the number of frames transmitted; on error
// (including ErrTxBusy when the buffer pool or device ring fills
// mid-batch) the remaining staged descriptors are discarded, exactly as a
// real batched hypercall reports a short completion count.
func (t *Twin) GuestTransmitBatch(d *NICDev, frames [][]byte) (int, error) {
	if t.Dead {
		return 0, ErrDriverDead
	}
	for _, f := range frames {
		if len(f) > TxSlotBytes {
			return 0, fmt.Errorf("core: frame of %d bytes exceeds the %d-byte staging slot", len(f), TxSlotBytes)
		}
	}
	g := t.ioCurrent()
	t.Coalescer.Begin()
	defer t.Coalescer.End()

	sent := 0
	for sent < len(frames) {
		chunk := frames[sent:]
		if len(chunk) > TxRingSlots {
			chunk = chunk[:TxRingSlots]
		}
		// Guest side: stage each frame and publish its descriptor. The
		// staging copy stands in for the guest's own packet pages, as in
		// GuestTransmit; its cycle price is part of the caller's kernel
		// path. Capacity is checked BEFORE the slot write: on a full ring
		// the producer slot still backs an unconsumed descriptor (e.g.
		// left staged by a budgeted ServiceRings), and writing first would
		// silently corrupt that frame.
		for _, f := range chunk {
			free, err := g.ring.Free()
			if err != nil {
				_ = g.ring.Reset() // best-effort: the staging error is the one to report
				return sent, err
			}
			if free == 0 {
				break // drain below, stage the rest next round
			}
			slot, err := g.ring.ProducerSlot()
			if err != nil {
				_ = g.ring.Reset()
				return sent, err
			}
			if err := g.dom.AS.WriteBytes(g.slots[slot], f); err != nil {
				_ = g.ring.Reset()
				return sent, err
			}
			if err := g.ring.Push(g.slots[slot], uint32(len(f))); err != nil {
				_ = g.ring.Reset()
				return sent, err
			}
		}
		// One boundary crossing for the whole chunk.
		t.M.HV.ChargeHypercall()
		t.ctlLane.Record(t.mMeter, telemetry.EvHypercall, int32(g.dom.ID), uint64(len(chunk)), 0)
		// Hypervisor side: drain the ring without further transitions.
		for {
			addr, n, ok, err := g.ring.Pop()
			if err != nil {
				// A corrupt (guest-scribbled) header: discard the staged
				// descriptors rather than trusting any of them.
				_ = g.ring.Reset()
				return sent, err
			}
			if !ok {
				break
			}
			if err := t.xmitOne(d, g, addr, int(n)); err != nil {
				if rerr := g.ring.Reset(); rerr != nil && !t.Dead {
					return sent, rerr
				}
				return sent, err
			}
			sent++
		}
	}
	t.ctlLane.Record(t.mMeter, telemetry.EvBatchServiced, int32(g.dom.ID), uint64(sent), 0)
	return sent, nil
}

// StageTransmitBatch publishes frames on a guest's transmit ring without
// crossing the virtualization boundary: the counterpart of the guest-side
// half of GuestTransmitBatch, for workloads where several guests stage
// independently and one ServiceRings crossing drains them all. It returns
// the number of frames staged, stopping early without error when the ring
// fills (the guest retries after the next service).
func (t *Twin) StageTransmitBatch(dom *xen.Domain, frames [][]byte) (int, error) {
	if t.Dead {
		return 0, ErrDriverDead
	}
	g, ok := t.guestIO[dom.ID]
	if !ok {
		return 0, fmt.Errorf("core: domain %q has no transmit ring", dom.Name)
	}
	staged := 0
	for _, f := range frames {
		if len(f) > TxSlotBytes {
			return staged, fmt.Errorf("core: frame of %d bytes exceeds the %d-byte staging slot", len(f), TxSlotBytes)
		}
		// Capacity is checked BEFORE the slot write: on a full ring the
		// producer slot aliases the oldest unconsumed descriptor's staging
		// buffer, and writing first would corrupt that staged frame.
		free, err := g.ring.Free()
		if err != nil {
			return staged, err
		}
		if free == 0 {
			return staged, nil
		}
		slot, err := g.ring.ProducerSlot()
		if err != nil {
			return staged, err
		}
		if err := g.dom.AS.WriteBytes(g.slots[slot], f); err != nil {
			return staged, err
		}
		if err := g.ring.Push(g.slots[slot], uint32(len(f))); err != nil {
			return staged, err
		}
		staged++
	}
	return staged, nil
}

// ServiceRings drains every guest's transmit ring under a single boundary
// crossing: one hypercall, then each service queue's round-robin sweep
// over the guests sharded onto it, consuming one descriptor per guest per
// pass, so a guest with a full ring cannot starve the others. budget
// bounds the descriptors consumed per queue in this crossing (0 means
// drain everything); descriptors beyond the budget stay staged for the
// next crossing. It returns per-guest transmit counts.
//
// On a single-queue backend, queue 0's guest list IS the classic
// guestOrder, so this is operation-for-operation the original one-loop
// service — the degenerate configuration's hot path stays cycle-identical.
// With more queues, each queue's work is charged to that queue's own
// meter (its simulated core); queues are swept in index order here, and
// ServiceAllQueues runs the same sweeps as concurrent goroutines.
//
// A corrupt ring header (ErrRingCorrupt — the guest scribbled its
// guest-writable head/tail words) or a transmit fault discards the
// offending guest's staged descriptors and aborts that queue's sweep;
// other queues are still serviced (queue isolation: a hostile descriptor
// on queue k loses only queue-k frames) and other guests' rings keep
// their staged work for the next crossing. The first error is returned.
func (t *Twin) ServiceRings(d *NICDev, budget int) (map[mem.Owner]int, error) {
	if t.Dead {
		return nil, ErrDriverDead
	}
	t.M.HV.ChargeHypercall()
	t.ctlLane.Record(t.mMeter, telemetry.EvHypercall, -1, 0, 0)
	sent := make(map[mem.Owner]int)
	var firstErr error
	for q := 0; q < t.nQueues; q++ {
		if err := t.withQueueMeter(q, func() error {
			return t.serviceQueue(d, q, budget, sent)
		}); err != nil && firstErr == nil {
			firstErr = err
		}
		if t.Dead {
			break
		}
	}
	return sent, firstErr
}

// ServiceAllQueues is ServiceRings with a goroutine per service queue:
// the Go-level structure of parallel per-queue service loops, each loop's
// hot path shared-nothing (own guest list, own ring set, own meter). The
// simulated machine underneath is a single CPU, so execMu serializes the
// actual execution — concurrency here is about proving the loop structure
// race-clean (the chaos soak runs it under -race), not about wall-clock.
// The simulated-time win of multiple queues comes from the per-queue
// meters: the critical path is the slowest queue, not the sum.
func (t *Twin) ServiceAllQueues(d *NICDev, budget int) (map[mem.Owner]int, error) {
	if t.Dead {
		return nil, ErrDriverDead
	}
	t.M.HV.ChargeHypercall()
	t.ctlLane.Record(t.mMeter, telemetry.EvHypercall, -1, 0, 0)
	sent := make(map[mem.Owner]int)
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	for q := 0; q < t.nQueues; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			t.execMu.Lock()
			defer t.execMu.Unlock()
			if t.Dead {
				return
			}
			qsent := make(map[mem.Owner]int)
			err := t.withQueueMeter(q, func() error {
				return t.serviceQueue(d, q, budget, qsent)
			})
			mu.Lock()
			for id, n := range qsent {
				sent[id] += n
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(q)
	}
	wg.Wait()
	return sent, firstErr
}

// serviceQueue drains one service queue's guests round-robin; the body
// (sweepQueue) is the classic ServiceRings loop restricted to the
// queue's shard. The sweep is bracketed by start/end events on the
// queue's own telemetry lane, stamped with the meter in scope — queue
// q's own simulated core when several queues run — so a traced mq run
// renders each queue as its own timeline. The queue goroutine is the
// lane's only writer (serialized under execMu), which is what the
// -race traced-service test pins.
func (t *Twin) serviceQueue(d *NICDev, q, budget int, sent map[mem.Owner]int) error {
	lane := t.qLanes[q]
	meter := t.M.HV.Meter
	lane.Record(meter, telemetry.EvSweepStart, -1, uint64(q), 0)
	consumed, err := t.sweepQueue(d, q, budget, sent)
	lane.Record(meter, telemetry.EvSweepEnd, -1, uint64(q), uint64(consumed))
	return err
}

func (t *Twin) sweepQueue(d *NICDev, q, budget int, sent map[mem.Owner]int) (int, error) {
	// The weighted-fair scheduler is opt-in (TwinConfig.Weights/Rates);
	// the default configuration runs the classic equal round-robin loop
	// below, operation-for-operation as it always did.
	if t.drr {
		return t.sweepQueueDRR(d, q, budget, sent)
	}
	consumed := 0
	for {
		progress := false
		for _, id := range t.queueGuests[q] {
			if budget > 0 && consumed >= budget {
				return consumed, nil
			}
			g := t.guestIO[id]
			addr, n, ok, err := g.ring.Pop()
			if err != nil {
				_ = g.ring.Reset()
				return consumed, fmt.Errorf("core: guest %d transmit ring: %w", id, err)
			}
			if ok {
				progress = true
				consumed++
				if err := t.xmitOne(d, g, addr, int(n)); err != nil {
					if rerr := g.ring.Reset(); rerr != nil && !t.Dead {
						return consumed, rerr
					}
					return consumed, err
				}
				sent[id]++
			}
			// The posted-transmit ring drains under the same round-robin
			// step: one descriptor per guest per pass, resolved through the
			// guest TLB (txpath.go). A guest that never posts pays nothing —
			// the empty-ring check moves no simulated cycles.
			if budget > 0 && consumed >= budget {
				return consumed, nil
			}
			did, perr := t.servicePostedTx(d, g, sent)
			if did {
				progress = true
				consumed++
			}
			if perr != nil {
				return consumed, perr
			}
		}
		if !progress {
			return consumed, nil
		}
	}
}

// withQueueMeter runs fn with the machine's cycle meter swapped to queue
// q's meter — both aliases, xen.Hypervisor.Meter and the CPU's, point at
// the same object and must move together. The degenerate single-queue
// configuration never swaps (queue 0's meter IS the machine meter), so
// the classic path is untouched.
func (t *Twin) withQueueMeter(q int, fn func() error) error {
	if t.nQueues == 1 {
		return fn()
	}
	hv := t.M.HV
	saved := hv.Meter
	hv.Meter = t.queueMeters[q]
	hv.CPU.Meter = t.queueMeters[q]
	err := fn()
	hv.Meter = saved
	hv.CPU.Meter = saved
	return err
}
