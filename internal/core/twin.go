package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"twindrivers/internal/asm"
	"twindrivers/internal/cost"
	"twindrivers/internal/cpu"
	"twindrivers/internal/cycles"
	"twindrivers/internal/drivermodel"
	"twindrivers/internal/isa"
	"twindrivers/internal/kernel"
	"twindrivers/internal/mem"
	"twindrivers/internal/rewrite"
	"twindrivers/internal/svm"
	"twindrivers/internal/telemetry"
	"twindrivers/internal/upcall"
	"twindrivers/internal/vswitch"
	"twindrivers/internal/xen"
)

// DefaultHvSupport is Table 1 of the paper: the support routines called
// during error-free execution of the e1000 transmit and receive paths,
// implemented natively in the hypervisor.
func DefaultHvSupport() []string {
	return []string{
		"netdev_alloc_skb",
		"dev_kfree_skb_any",
		"netif_rx",
		"dma_map_single",
		"dma_map_page",
		"dma_unmap_single",
		"dma_unmap_page",
		"spin_trylock",
		"spin_unlock_irqrestore",
		"eth_type_trans",
	}
}

// TwinConfig parameterises the derivation.
type TwinConfig struct {
	// HvSupport names the support routines implemented natively in the
	// hypervisor; every other imported routine becomes an upcall stub.
	// Nil means DefaultHvSupport (all ten fast-path routines; zero
	// upcalls per invocation, the leftmost bar of Figure 10).
	HvSupport []string

	// Watchdog is the instruction budget per hypervisor-driver invocation
	// (VINO-style containment, §4.5.2). 0 means 2,000,000.
	Watchdog uint64

	// Rewrite options; RejectPrivileged is forced on.
	Rewrite rewrite.Options

	// PoolSize is the number of preallocated dom0 sk_buffs reserved for
	// the hypervisor (§4.3's buffer pool). 0 means 1024.
	PoolSize int

	// ShadowStack enables return-address checking during hypervisor
	// driver execution (§4.5.1 extension).
	ShadowStack bool

	// STLBEntries sizes the software translation table (0 = the paper's
	// 4096). Smaller tables collide more — the stlb-size ablation.
	STLBEntries int

	// Queues is the number of transmit service queues guests are sharded
	// across. 0 means the model's own queue count; any value is clamped
	// to [1, Model.Queues]. Single-queue backends always run the
	// degenerate one-queue configuration, whose hot path is
	// operation-for-operation the classic single-loop service.
	Queues int

	// Trace attaches a telemetry event tracer. Nil (the default) means
	// no tracing unless a telemetry.Session is active, in which case the
	// session's tracer is picked up — the hot path then records typed
	// events into per-queue lanes. Tracing never charges the simulated
	// cycle meters, so enabling it cannot move a cyc/pkt number.
	Trace *telemetry.Tracer

	// Weights enables the deficit-round-robin weighted-fair scheduler:
	// per-guest service weights applied to guests in index order
	// (cyclically when shorter than the guest count; values < 1 clamp
	// to 1). Nil or empty — the default — keeps the classic equal
	// round-robin sweep, whose hot path is untouched and therefore
	// cycle-identical to every pinned baseline (see sched.go).
	Weights []int

	// Rates caps the descriptors each guest may consume per service
	// crossing (a per-guest rate limit enforced by the DRR sweep), in
	// index order like Weights; 0 means unlimited. Any non-empty Rates
	// activates the DRR sweep even with nil Weights.
	Rates []int

	// Switch enables the inter-guest L2 switch (internal/vswitch):
	// guest→guest frames are classified on their Ethernet header and
	// delivered dom0-side without a device round-trip, with MAC
	// learning, broadcast fan-out and anti-spoofing. Off by default;
	// the transmit paths then carry no switch hook at all.
	Switch bool
}

// ErrDriverDead reports that the hypervisor instance was aborted and torn
// down after a containment fault.
var ErrDriverDead = errors.New("core: hypervisor driver instance is dead")

// ErrTxBusy reports a transient transmit-ring-full condition.
var ErrTxBusy = errors.New("core: transmit ring busy")

// ErrFrameOversize reports a transmit frame larger than the pooled
// sk_buff's linear buffer. The length word of a staged ring descriptor is
// guest-writable memory, so the hypervisor-side transmit validates it
// before copying a single byte — a scribbled 0xFFFF length must not
// overrun the 2048-byte pooled buffer (or, on a no-scatter/gather
// backend, the driver's staging slot).
var ErrFrameOversize = errors.New("core: transmit frame exceeds the pooled buffer")

// ErrBounceOverflow reports a GuestTransmit frame larger than the guest's
// staging bounce buffer. The check runs before any byte is staged: the
// transmit ring and its staging slots are allocated directly after the
// bounce buffer in the guest heap, so an unchecked oversize WriteBytes
// would scribble the ring header of the guest's own batched path.
var ErrBounceOverflow = errors.New("core: transmit frame exceeds the guest bounce buffer")

// GuestBounceBytes is the size of each guest's transmit bounce buffer (the
// staging region GuestTransmit copies a frame into before the hypercall).
const GuestBounceBytes = 2 * mem.PageSize

// FaultLogCap bounds the fault log: a flapping driver must not grow an
// unbounded history, so the log is a ring keeping the most recent records
// (Twin.Faults still counts every fault ever taken).
const FaultLogCap = 32

// FaultRecord describes one containment fault: the classified CPU fault
// kind, the driver entry-point symbol that was executing, the cause text
// and a lifetime-cycle timestamp (the monotonic clock recovery policies
// window over).
type FaultRecord struct {
	Kind  cpu.FaultKind
	Entry string
	Cause string
	Cycle uint64
}

// String renders a record for humans: the classified fault kind, the
// driver entry symbol that was running, the lifetime-cycle stamp, and
// the cause text — the attribution line a post-incident report leads
// with.
func (r FaultRecord) String() string {
	return fmt.Sprintf("[%s in %s @%dcyc] %s", r.Kind, r.Entry, r.Cycle, r.Cause)
}

// AbortStats is the teardown accounting of one abort: how many packets
// were lost where, and how many in-flight pooled buffers came back.
type AbortStats struct {
	// StagedTxDiscarded counts frames that guests had staged on their
	// transmit rings but the dead instance never drained.
	StagedTxDiscarded int

	// RxPendingDropped counts packets received and queued but never
	// delivered to their guest.
	RxPendingDropped int

	// RxPostedDiscarded counts guest-posted receive descriptors discarded
	// when their ring was reset: the buffers are the guests' own memory
	// (nothing to reclaim into dom0), but a revived instance must never
	// deliver into descriptors posted to its dead predecessor, so the
	// guests re-post after recovery.
	RxPostedDiscarded int

	// SkbsReclaimed counts pooled sk_buffs that were in flight (posted as
	// RX buffers, parked on the device transmit ring, or queued for
	// delivery) and were returned to the pool by the teardown.
	SkbsReclaimed int

	// TxPostedDiscarded counts guest-posted transmit descriptors discarded
	// when their ring was reset: the dead instance never serviced them, so
	// they are accounted as lost instead of phantom-transmitted later. The
	// guests re-post after recovery.
	TxPostedDiscarded int

	// TxPinsReleased counts guest pages that were still pinned for
	// in-flight posted transmits when the instance died; the teardown
	// releases every pin — a revived instance must never DMA through a
	// translation validated for its dead predecessor.
	TxPinsReleased int
}

// Twin is the loaded TwinDrivers runtime: both instances live, single data
// copy in dom0.
type Twin struct {
	M *Machine

	// SV is the hypervisor instance's translating SVM; IdentSV the VM
	// instance's identity SVM.
	SV      *svm.SVM
	IdentSV *svm.SVM

	// HVImage is the derived driver loaded in the hypervisor.
	HVImage *asm.Image

	// RewriteStats describes the derivation.
	RewriteStats *rewrite.Stats

	// Upcalls manages stubs for non-hypervisor-implemented routines.
	Upcalls *upcall.Manager

	// HvCalls counts invocations of the hypervisor's native support
	// routines by name.
	HvCalls map[string]uint64

	// Dead is set after a containment fault; Faults counts every fault
	// over the twin's lifetime (recoveries do not reset it) and
	// FaultLog() exposes the bounded log of the most recent ones.
	Dead   bool
	Faults uint64

	// LastAbort describes what the most recent abort's teardown found:
	// the loss and reclamation accounting a recovery supervisor reports.
	LastAbort AbortStats

	cfg           TwinConfig
	hvSupport     map[string]bool
	xmitEntry     uint32
	intrEntry     uint32
	stackTop      uint32
	guardLo       uint32
	guardHi       uint32
	stackViolGate uint32
	entryName     map[uint32]string
	faultLog      []FaultRecord
	pool          []uint32          // free pooled skbs
	outstanding   map[uint32]bool   // pooled skbs handed out and not yet returned
	fragBuf       map[uint32]uint32 // pooled skb -> preallocated frag buffer
	txPins        map[uint32]*txPin // guest VA page -> pinned posted-TX translation
	pinsBySkb     map[uint32][]uint32
	rxQueues      map[mem.Owner]*rxQueue
	macToDom      map[[6]byte]mem.Owner
	pendingIRQ    []*NICDev // deferred while dom0 masks virtual interrupts

	// drr selects the weighted-fair sweep (sched.go); false — the
	// default — keeps the classic equal round-robin loop untouched.
	// vsw is the inter-guest L2 switch, nil when disabled: the transmit
	// paths only consult it behind a nil check, so the switched-off
	// configuration carries no classification work at all.
	drr bool
	vsw *vswitch.Switch

	// guestIO holds each guest's transmit-side I/O state, keyed by the
	// owning domain; guestOrder fixes the round-robin service order.
	guestIO    map[mem.Owner]*guestIO
	guestOrder []mem.Owner

	// Per-queue service state: guests shard across nQueues service
	// queues (queueGuests fixes each queue's round-robin order); with
	// more than one queue each gets its own cycle meter — its simulated
	// core — merged into a machine-wide view at measurement time. execMu
	// serializes all simulated-machine work when the per-queue loops run
	// as concurrent goroutines: the Go-level structure is parallel, the
	// one-CPU machine underneath is not.
	nQueues     int
	queueGuests [][]mem.Owner
	queueMeters []*cycles.Meter
	qSched      []qSched // per-queue DRR cycle position (sched.go)
	execMu      sync.Mutex

	// Telemetry: one control lane for machine-scoped events (hypercalls,
	// faults, recoveries, deliveries, TLB traffic) plus one lane per
	// service queue for sweep events, each written only under execMu or
	// by its own queue's goroutine. All nil when tracing is off — every
	// Record call then returns before touching anything. mMeter is the
	// machine-wide meter captured before any per-queue swap, so
	// control-lane stamps share one monotonic clock even when a fault
	// fires during a per-queue sweep.
	trc     *telemetry.Tracer
	ctlLane *telemetry.Lane
	qLanes  []*telemetry.Lane
	mMeter  *cycles.Meter

	// Coalescer batches guest notifications and upcall IRQ deliveries to
	// one per batch window; outside a window it degenerates to the
	// per-packet delivery.
	Coalescer *upcall.Coalescer
}

// guestIO is one guest's I/O state: the bounce buffer the per-packet
// hypercall path stages frames in, the guest's own shared transmit
// descriptor ring with its per-slot staging buffers for the batched path
// (see twinbatch.go), and the posted-receive ring plus guest translation
// cache of the posted-buffer receive path (see rxpath.go). Every guest
// gets its own instance so N guests can stage concurrently and the
// ring-service loop can drain them round-robin under one boundary
// crossing.
type guestIO struct {
	dom    *xen.Domain
	bounce uint32 // guest-side bounce buffer for GuestTransmit
	ring   *mem.Ring
	slots  []uint32 // per-slot guest staging buffers
	queue  int      // transmit service queue this guest is sharded onto

	rxRing *mem.Ring     // guest-posted receive buffer descriptors
	gtlb   *svm.GuestTLB // cached guest-address translations for delivery

	txRing     *mem.Ring // guest-posted transmit scatter/gather descriptors
	postedLost uint64    // posted-TX frames lost to containment, lifetime

	// DRR scheduler state (sched.go); untouched on the classic path.
	weight  int // descriptors of quantum added per deficit round
	rate    int // max descriptors per service crossing; 0 = unlimited
	deficit int // accumulated unspent quantum
	served  int // descriptors consumed this crossing (rate accounting)

	// Inter-guest switch accounting (sched.go); zero when the switch
	// is off.
	spoofDropped uint64 // TX frames dropped for forging another port's MAC
	vswRxDropped uint64 // switch-delivered frames lost to pool exhaustion
}

// NewTwinMachine builds a machine whose e1000 driver is twinned from the
// start: the same rewritten binary serves as the VM instance in dom0
// (identity stlb) and as the hypervisor instance (translating stlb) —
// §5.1.2. nGuests guest domains share the NIC through the derived driver;
// each gets its own transmit ring, staging slots and bounce buffer.
func NewTwinMachine(nNICs, nGuests int, cfg TwinConfig) (*Machine, *Twin, error) {
	return NewTwinMachineModel(nNICs, nGuests, nil, cfg)
}

// NewTwinMachineModel is NewTwinMachine for an arbitrary backend model
// (nil selects the e1000): the same derivation pipeline — rewrite,
// translating SVM, gate binding, layout — runs over whatever driver the
// model carries, which is the paper's driver-generic claim made concrete.
func NewTwinMachineModel(nNICs, nGuests int, model *drivermodel.Model, cfg TwinConfig) (*Machine, *Twin, error) {
	m, err := newBase(nNICs, nGuests, model)
	if err != nil {
		return nil, nil, err
	}
	t, err := loadTwin(m, cfg)
	if err != nil {
		return nil, nil, err
	}
	// Initialisation runs through the VM instance, exactly as in the
	// paper ("we first load the VM driver into the dom0 kernel where it
	// performs the initialization", §3.1).
	if err := m.probeAll(); err != nil {
		return nil, nil, err
	}
	return m, t, nil
}

func loadTwin(m *Machine, cfg TwinConfig) (*Twin, error) {
	if cfg.Watchdog == 0 {
		cfg.Watchdog = 2_000_000
	}
	if cfg.PoolSize == 0 {
		cfg.PoolSize = 1024
	}
	if cfg.HvSupport == nil {
		cfg.HvSupport = DefaultHvSupport()
	}
	cfg.Rewrite.RejectPrivileged = true
	if cfg.STLBEntries == 0 {
		cfg.STLBEntries = svm.NumEntries
	}
	cfg.Rewrite.STLBEntries = cfg.STLBEntries
	maxQueues := m.Model.Queues
	if maxQueues < 1 {
		maxQueues = 1
	}
	if cfg.Queues == 0 {
		cfg.Queues = maxQueues
	}
	if cfg.Queues < 1 {
		cfg.Queues = 1
	}
	if cfg.Queues > maxQueues {
		cfg.Queues = maxQueues
	}

	t := &Twin{
		M:           m,
		HvCalls:     make(map[string]uint64),
		cfg:         cfg,
		hvSupport:   make(map[string]bool),
		fragBuf:     make(map[uint32]uint32),
		outstanding: make(map[uint32]bool),
		txPins:      make(map[uint32]*txPin),
		pinsBySkb:   make(map[uint32][]uint32),
		rxQueues:    make(map[mem.Owner]*rxQueue),
		macToDom:    make(map[[6]byte]mem.Owner),
		drr:         len(cfg.Weights) > 0 || len(cfg.Rates) > 0,
	}
	if cfg.Switch {
		t.vsw = vswitch.New()
	}
	for _, n := range cfg.HvSupport {
		if !m.K.IsSupportRoutine(n) {
			return nil, fmt.Errorf("core: unknown hypervisor support routine %q", n)
		}
		t.hvSupport[n] = true
	}

	// One derivation serves both instances at bring-up: the rewritten unit
	// is laid out twice (identity stlb in dom0, translating stlb in the
	// hypervisor). Only a recovery re-derives.
	ru, stats, err := rewrite.Rewrite(m.Unit, cfg.Rewrite)
	if err != nil {
		return nil, fmt.Errorf("core: derive driver: %w", err)
	}

	hv, k := m.HV, m.K

	// --- VM instance: rewritten binary, identity stlb, in dom0 ----------
	// Built exactly once: dom0 and its VM instance survive every
	// containment fault; only the hypervisor instance is rebuilt.
	tableBytes := uint32(cfg.STLBEntries * svm.EntrySize)
	idTable := k.Alloc(tableBytes)
	idSv, err := svm.NewSized(hv, m.Dom0, m.Dom0.AS, idTable, cfg.STLBEntries, true)
	if err != nil {
		return nil, err
	}
	t.IdentSV = idSv
	idSlow := hv.BindGate("__svm_slowpath.vm", func(c *cpu.CPU) (uint32, error) {
		return idSv.SlowPath(c.Meter, c.Arg(0))
	})
	idGlobals := k.Alloc(32) // code_lo/hi/delta zero: no adjustment
	t.stackViolGate = hv.BindGate("__svm_stack_violation", func(c *cpu.CPU) (uint32, error) {
		return 0, &cpu.Fault{Kind: cpu.FaultProtection, Msg: "stack bounds violation"}
	})

	vmResolve := func(sym string) (uint32, bool) {
		switch sym {
		case rewrite.SymSTLB:
			return idTable, true
		case rewrite.SymSlowPath:
			return idSlow, true
		case rewrite.SymStackViolation:
			return t.stackViolGate, true
		case rewrite.SymCodeLo, rewrite.SymCodeHi, rewrite.SymCodeDelta:
			return idGlobals + 0, true // all read as zero
		case rewrite.SymScratch:
			return idGlobals + 12, true
		case rewrite.SymStackLo:
			return idGlobals + 16, true
		case rewrite.SymStackHi:
			return idGlobals + 20, true
		}
		return k.Resolver()(sym)
	}
	vmIm, err := asm.Layout(m.Model.Name+"-vm", ru, xen.Dom0DriverCode, xen.Dom0DriverData, vmResolve)
	if err != nil {
		return nil, fmt.Errorf("core: load VM instance: %w", err)
	}
	if err := m.mapDriverData(vmIm); err != nil {
		return nil, err
	}
	m.VMImage = vmIm
	hv.CPU.AddImage(vmIm)

	// --- Durable twin state: shared by every hypervisor instance --------
	t.Upcalls = upcall.New(hv, m.Dom0)

	// Preallocated dom0 buffer pool with the refcount trick (§4.3).
	for i := 0; i < cfg.PoolSize; i++ {
		skb := k.AllocSkb(0)
		k.Dom.AS.Store(skb+kernel.SkbPool, 4, 1)
		k.Dom.AS.Store(skb+kernel.SkbRefcnt, 4, 1)
		t.fragBuf[skb] = k.Alloc(kernel.SkbBufSize)
		t.pool = append(t.pool, skb)
	}

	// Default guest routing: every NIC MAC delivers to the first guest.
	// Recorded through RegisterGuestMAC so the configuration log carries
	// every route: replay rebuilds the routing table wholly from the log,
	// and a failed replay can never leave a route behind that no recorded
	// event asserts.
	for _, d := range m.Devs {
		t.RegisterGuestMAC(d.Dev.HWAddr(), m.DomU.ID)
	}

	// Per-guest I/O state: guest notifications and upcall IRQs coalesce to
	// one per batch window; each guest's transmit ring and staging buffers
	// carry whole batches across the boundary per crossing. Ring formatting
	// is recorded in the configuration log so recovery re-attaches each
	// guest's ring at the same base it already maps.
	t.Coalescer = upcall.NewCoalescer(hv)
	t.Upcalls.Coalesce = t.Coalescer
	t.guestIO = make(map[mem.Owner]*guestIO)
	// Queue sharding is a pure function of (guest index, queue count):
	// balanced by the modular walk, seeded by the RSS hash, derived
	// identically by a recovered instance — nothing to log or replay.
	// With one queue the single meter IS the machine meter, so the
	// degenerate configuration measures exactly what it always did; with
	// more, each queue meters its own simulated core (own cold TLB/L1).
	t.nQueues = cfg.Queues
	t.queueGuests = make([][]mem.Owner, t.nQueues)
	t.qSched = make([]qSched, t.nQueues)
	if t.nQueues == 1 {
		t.queueMeters = []*cycles.Meter{hv.Meter}
	} else {
		for q := 0; q < t.nQueues; q++ {
			t.queueMeters = append(t.queueMeters, cycles.NewMeter())
		}
	}
	// Telemetry attachment: an explicit tracer in the config wins;
	// otherwise a process-wide session (cmd/twintrace) is picked up.
	// Untraced machines get nil lanes, whose Record is a no-op that
	// never reads the meter — the zero-overhead-when-disabled contract.
	t.trc = cfg.Trace
	var reg *telemetry.Registry
	if s := telemetry.ActiveSession(); s != nil {
		if t.trc == nil {
			t.trc = s.Tracer
		}
		reg = s.Registry
	}
	t.mMeter = hv.Meter
	t.ctlLane = t.trc.NewLane(m.Model.Name + "/ctl")
	for q := 0; q < t.nQueues; q++ {
		t.qLanes = append(t.qLanes, t.trc.NewLane(fmt.Sprintf("%s/q%d", m.Model.Name, q)))
	}
	base := shardBase(t.nQueues)
	for gi, g := range m.Guests {
		io := &guestIO{dom: g, queue: (base + gi) % t.nQueues}
		// Scheduler parameters are a pure function of (config, guest
		// index) — like the queue shard, derived identically by a
		// recovered instance, nothing to log or replay.
		io.weight = schedParam(cfg.Weights, gi, 1)
		io.rate = schedParam(cfg.Rates, gi, 0)
		if t.vsw != nil {
			t.vsw.AddPort(g.ID)
		}
		t.queueGuests[io.queue] = append(t.queueGuests[io.queue], g.ID)
		// Guest-side transmit bounce buffer (stands in for the guest's own
		// packet pages; the paravirtual driver hands their addresses down).
		io.bounce = hv.AllocHeap(g, GuestBounceBytes)
		ringBase := hv.AllocHeap(g, mem.RingBytes(TxRingSlots))
		if io.ring, err = mem.InitRing(g.AS, ringBase, TxRingSlots); err != nil {
			return nil, err
		}
		for i := 0; i < TxRingSlots; i++ {
			io.slots = append(io.slots, hv.AllocHeap(g, TxSlotBytes))
		}
		// Posted-receive ring (guest-writable, hardened like the transmit
		// ring) and the per-guest translation cache delivery resolves
		// posted addresses through.
		rxBase := hv.AllocHeap(g, mem.RingBytes(RxRingSlots))
		if io.rxRing, err = mem.InitRing(g.AS, rxBase, RxRingSlots); err != nil {
			return nil, err
		}
		io.gtlb = svm.NewGuestTLB(hv, g)
		io.gtlb.Trace = t.ctlLane
		// Posted-transmit descriptor ring (guest-writable, hardened like
		// the other two): (addr, len) scatter/gather descriptors the ring
		// service resolves through the guest TLB.
		txBase := hv.AllocHeap(g, mem.RingBytes(TxRingSlots))
		if io.txRing, err = mem.InitRing(g.AS, txBase, TxRingSlots); err != nil {
			return nil, err
		}
		t.guestIO[g.ID] = io
		t.guestOrder = append(t.guestOrder, g.ID)
		m.Config.record(ConfigEvent{Op: OpRing, Dom: g.ID, Addr: ringBase, Aux: TxRingSlots})
		m.Config.record(ConfigEvent{Op: OpRxRing, Dom: g.ID, Addr: rxBase, Aux: RxRingSlots})
		m.Config.record(ConfigEvent{Op: OpTxRing, Dom: g.ID, Addr: txBase, Aux: TxRingSlots})
	}

	// --- Hypervisor instance: derived, translating stlb, upcall stubs ---
	// Everything instance-scoped lives in buildInstance so a faulted
	// instance can be torn away and re-derived (see instance.go).
	inst, err := t.buildInstance(ru, stats)
	if err != nil {
		return nil, err
	}
	t.installInstance(inst)
	if reg != nil {
		t.PublishMetrics(reg)
	}
	return t, nil
}

// ioCurrent resolves the guest I/O state of the domain currently running —
// the derived driver executes "in whatever guest context is current" — and
// falls back to the first guest when the current domain is not a guest
// (dom0 issuing a transmit on a guest's behalf).
func (t *Twin) ioCurrent() *guestIO {
	if g, ok := t.guestIO[t.M.HV.Current.ID]; ok {
		return g
	}
	return t.guestIO[t.M.DomU.ID]
}

// RegisterGuestMAC routes received packets with the given destination MAC
// to a domain. The route is recorded in the configuration log so recovery
// re-asserts it on a rebuilt instance.
func (t *Twin) RegisterGuestMAC(mac [6]byte, dom mem.Owner) {
	t.macToDom[mac] = dom
	if t.vsw != nil {
		// Registered MACs are the switch's authoritative static
		// entries: the anchor of the anti-spoof check.
		t.vsw.BindStatic(vswitch.MAC(mac), dom)
	}
	t.M.Config.record(ConfigEvent{Op: OpGuestMAC, MAC: mac, Dom: dom})
}

// FaultLog returns the bounded fault history, oldest first. It is a copy:
// callers may keep it across further faults.
func (t *Twin) FaultLog() []FaultRecord {
	return append([]FaultRecord(nil), t.faultLog...)
}

// PoolFree reports the number of free pooled sk_buffs.
func (t *Twin) PoolFree() int { return len(t.pool) }

// PoolOutstanding reports how many pooled sk_buffs are currently handed
// out and not yet returned (posted on device rings, queued for delivery,
// or leaked by an injected bug). PoolFree + PoolOutstanding == PoolCapacity
// is the pool-conservation invariant the chaos harness asserts at every
// settle point; after an abort's outstanding-buffer sweep it must be zero.
func (t *Twin) PoolOutstanding() int { return len(t.outstanding) }

// PoolCapacity reports the configured pool size.
func (t *Twin) PoolCapacity() int { return t.cfg.PoolSize }

// StagedTx reports how many descriptors a guest currently has staged on
// its transmit ring (introspection for harnesses reconciling their own
// staged-frame ledgers against the ring).
func (t *Twin) StagedTx(dom mem.Owner) (int, error) {
	g, ok := t.guestIO[dom]
	if !ok {
		return 0, fmt.Errorf("core: domain %d has no transmit ring", dom)
	}
	return g.ring.Len()
}

// LeakPooledBuffers is a fault-injection hook: it makes up to n pooled
// sk_buffs unreachable, the way a driver bug that forgets to free its
// buffers does. The leaked buffers stay in the outstanding set, so the
// teardown of a subsequent containment abort reclaims them — recovery
// heals the leak along with the instance. Returns how many were leaked.
func (t *Twin) LeakPooledBuffers(n int) int {
	leaked := 0
	for ; leaked < n; leaked++ {
		if _, ok := t.poolGet(); !ok {
			break
		}
	}
	return leaked
}

// poolGet pops a pooled skb and reinitialises it. The skb is tracked as
// outstanding until poolPut sees it again: if the instance dies while the
// buffer is posted on a device ring or queued for delivery, the abort
// teardown reclaims it from this set instead of leaking it.
func (t *Twin) poolGet() (uint32, bool) {
	n := len(t.pool)
	if n == 0 {
		return 0, false
	}
	skb := t.pool[n-1]
	t.pool = t.pool[:n-1]
	t.outstanding[skb] = true
	as := t.M.Dom0.AS
	head, _ := as.Load(skb+kernel.SkbHead, 4)
	as.Store(skb+kernel.SkbData, 4, head)
	as.Store(skb+kernel.SkbLen, 4, 0)
	as.Store(skb+kernel.SkbNrFrags, 4, 0)
	as.Store(skb+kernel.SkbNext, 4, 0)
	as.Store(skb+kernel.SkbRefcnt, 4, 1)
	as.Store(skb+kernel.SkbPool, 4, 1)
	return skb, true
}

func (t *Twin) poolPut(skb uint32) {
	// TX completion is the pin release point: a posted frame's guest pages
	// stay pinned exactly as long as its sk_buff is in flight.
	t.unpinSkb(skb)
	delete(t.outstanding, skb)
	t.pool = append(t.pool, skb)
}

// invokeHV runs a derived-driver entry point in the *current* domain
// context — no address-space switch, the core performance property — on
// the guard-paged hypervisor stack, under the watchdog budget. A fault
// aborts and tears down the instance (containment).
func (t *Twin) invokeHV(entry uint32, args ...uint32) (uint32, error) {
	if t.Dead {
		return 0, ErrDriverDead
	}
	c := t.M.CPU
	savedSP := c.Regs[isa.ESP]
	savedBudget := c.Budget
	savedShadow := c.ShadowStack
	c.Regs[isa.ESP] = t.stackTop
	c.GuardLow, c.GuardHigh = t.guardLo, t.guardHi
	c.Budget = t.cfg.Watchdog
	c.ShadowStack = t.cfg.ShadowStack
	c.Meter.PushComponent(cycles.CompDriver)

	ret, err := c.Call(entry, args...)

	c.Meter.PopComponent()
	c.Regs[isa.ESP] = savedSP
	c.GuardLow, c.GuardHigh = 0, 0
	c.Budget = savedBudget
	c.ShadowStack = savedShadow

	if err != nil {
		t.abort(entry, err)
		return 0, fmt.Errorf("%w: %v", ErrDriverDead, err)
	}
	return ret, nil
}

// abort implements containment plus clean teardown: the faulting
// hypervisor instance is marked dead and unloaded — dom0 and its VM
// instance are untouched — and every resource the dead instance shared
// with the guests is settled so a recovery can start from known state:
//
//   - received-but-undelivered packets are dropped, their buffers
//     returned to the pool or slab (no pool leak, no stale delivery from
//     a dead instance);
//   - every guest transmit ring is reset, so staged-but-undrained frames
//     are accounted as lost instead of phantom-delivered later, and the
//     guests' next staging attempt fails fast with ErrDriverDead;
//   - in-flight pooled sk_buffs (posted RX buffers, frames parked on the
//     device transmit ring) are reclaimed — the device rings die with the
//     instance;
//   - any open notification-coalescing window is force-closed so the
//     unwinding batch cannot absorb the recovered instance's deliveries.
//
// The accounting lands in LastAbort and the fault in the bounded log.
func (t *Twin) abort(entry uint32, cause error) {
	t.Dead = true
	t.Faults++
	rec := FaultRecord{
		Entry: t.entryName[entry],
		Cause: cause.Error(),
		Cycle: t.M.HV.Meter.Lifetime(),
	}
	if f, ok := cause.(*cpu.Fault); ok {
		rec.Kind = f.Kind
	}
	t.ctlLane.Record(t.mMeter, telemetry.EvFault, int32(t.M.HV.Current.ID), uint64(rec.Kind), 0)
	if len(t.faultLog) == FaultLogCap {
		copy(t.faultLog, t.faultLog[1:])
		t.faultLog = t.faultLog[:FaultLogCap-1]
	}
	t.faultLog = append(t.faultLog, rec)
	t.M.CPU.RemoveImage(t.HVImage)

	st := AbortStats{}
	// Reclamation must walk in a deterministic order — identical runs give
	// bit-identical cycle measurements, and the pool's post-abort order
	// feeds every later allocation — so the map-keyed queues and the
	// outstanding set are swept in sorted order, not map order.
	doms := make([]mem.Owner, 0, len(t.rxQueues))
	for dom := range t.rxQueues {
		doms = append(doms, dom)
	}
	sort.Slice(doms, func(i, j int) bool { return doms[i] < doms[j] })
	// A runaway cleaner can queue the same buffer several times before the
	// watchdog cuts it off; free each distinct buffer once or the pool
	// would hold duplicates after the drain.
	seen := make(map[uint32]bool)
	for _, dom := range doms {
		q := t.rxQueues[dom]
		st.RxPendingDropped += q.len()
		for _, skb := range q.popN(0) {
			if !seen[skb] {
				seen[skb] = true
				t.poolFreeOrKernel(skb)
			}
		}
		delete(t.rxQueues, dom)
	}
	for _, id := range t.guestOrder {
		g := t.guestIO[id]
		n, _ := g.ring.Discard() // resets even when corrupt
		st.StagedTxDiscarded += n
		// Posted receive buffers die with the instance: the descriptors
		// are discarded (the guests re-post after recovery) and the guest
		// translation cache is shot down — a revived instance must never
		// trust a translation cached for its dead predecessor.
		n, _ = g.rxRing.Discard()
		st.RxPostedDiscarded += n
		// Posted transmit descriptors the dead instance never serviced are
		// discarded the same way, accounted in TxPostedDiscarded (not in
		// PostedTxLost, which counts only service-time containment losses —
		// each lost frame lands in exactly one bucket).
		n, _ = g.txRing.Discard()
		st.TxPostedDiscarded += n
		g.gtlb.Invalidate()
	}
	// Release every posted-TX pin the dead instance held: in-flight frames
	// die with the device rings, and a revived instance must never DMA
	// through a translation validated for its predecessor.
	st.TxPinsReleased = len(t.txPins)
	t.txPins = make(map[uint32]*txPin)
	t.pinsBySkb = make(map[uint32][]uint32)
	left := make([]uint32, 0, len(t.outstanding))
	for skb := range t.outstanding {
		left = append(left, skb)
	}
	sort.Slice(left, func(i, j int) bool { return left[i] < left[j] })
	for _, skb := range left {
		st.SkbsReclaimed++
		t.poolPut(skb)
	}
	// Deferred softirq work targeted the dead instance; the device reset a
	// recovery performs drops the packets behind those interrupts anyway.
	t.pendingIRQ = nil
	t.Coalescer.AbortWindows()
	t.LastAbort = st
	t.ctlLane.Record(t.mMeter, telemetry.EvAbort, int32(t.M.HV.Current.ID),
		uint64(st.StagedTxDiscarded+st.RxPendingDropped), uint64(st.SkbsReclaimed))
}

// GuestTransmit sends a guest packet through the hypervisor driver: the
// paravirtual driver's hypercall path (§5.3). The frame is staged in guest
// memory; the hypervisor copies only the header (up to the first 96 bytes)
// into a pooled dom0 sk_buff and chains the rest of the *guest* packet via
// the sk_buff's page fragment pointers — the zero-copy transmit that makes
// the hypervisor DMA helpers return "the correct guest machine page
// addresses".
func (t *Twin) GuestTransmit(d *NICDev, frame []byte) error {
	if t.Dead {
		return ErrDriverDead
	}
	g := t.ioCurrent()
	// The frame must fit the bounce buffer BEFORE any byte is staged: the
	// guest's transmit ring header lives directly after the bounce region,
	// and an unchecked oversize write would corrupt it.
	if len(frame) > GuestBounceBytes {
		return fmt.Errorf("%w: %d bytes into a %d-byte bounce", ErrBounceOverflow, len(frame), GuestBounceBytes)
	}
	// Stage the packet in guest memory (the guest stack's copy is priced
	// by the caller as part of its kernel path).
	if err := g.dom.AS.WriteBytes(g.bounce, frame); err != nil {
		return err
	}
	return t.GuestTransmitAt(d, g.bounce, len(frame))
}

// GuestTransmitAt transmits n bytes already staged at a virtual address of
// the current guest.
func (t *Twin) GuestTransmitAt(d *NICDev, guestAddr uint32, n int) error {
	if t.Dead {
		return ErrDriverDead
	}
	t.M.HV.ChargeHypercall()
	t.ctlLane.Record(t.mMeter, telemetry.EvHypercall, int32(t.M.HV.Current.ID), 1, 0)
	return t.xmitOne(d, t.ioCurrent(), guestAddr, n)
}

// xmitOne is the hypervisor-side transmit work for one staged frame: header
// copy from the staging guest's address space into a pooled dom0 sk_buff,
// guest pages chained for the body, one derived-driver invocation.
// The boundary crossing itself (the hypercall charge) is the caller's — per
// frame on the hypercall path, per batch on the ring path. Every non-fatal
// exit returns the pooled skb; on a containment abort the teardown's
// outstanding-buffer sweep reclaims it instead.
func (t *Twin) xmitOne(d *NICDev, g *guestIO, guestAddr uint32, n int) error {
	gas := g.dom.AS
	// The length is guest input (hypercall argument or a guest-writable
	// ring descriptor word): bound it before any copy. The pooled skb's
	// linear buffer is kernel.SkbBufSize; on a no-scatter/gather backend
	// (TxHeaderSplit 0) the whole frame lands there, and on every backend
	// the driver's own staging assumes at most one buffer's worth.
	if n <= 0 || n > kernel.SkbBufSize {
		return ErrFrameOversize
	}
	// Inter-guest switch (sched.go): with the switch on, the frame's
	// Ethernet header decides its path — guest→guest unicast is
	// delivered dom0-side and never reaches the device; a forged source
	// MAC drops the frame. Off (vsw nil, the default), the transmit
	// path is exactly what it always was.
	if t.vsw != nil {
		toDevice, err := t.vswitchTx(g, guestAddr, n)
		if err != nil {
			return err
		}
		if !toDevice {
			return nil
		}
	}
	hv := t.M.HV
	skb, ok := t.poolGet()
	if !ok {
		return ErrTxBusy
	}
	meter := hv.Meter
	as := t.M.Dom0.AS

	// The scatter/gather split is the model's: the e1000 takes a 96-byte
	// header copy with the body chained zero-copy through its second
	// transmit descriptor; the rtl8139 has no scatter/gather, so the whole
	// frame goes linear into the pooled skb (split 0).
	hdr := n
	if split := t.M.Model.TxHeaderSplit; split > 0 && hdr > split {
		hdr = split
	}
	// Header copy into the pooled skb (persistently mapped into the
	// hypervisor), guest pages chained for the body. The destination is
	// translated per page (pageSpans): a buffer straddling a page
	// boundary must not inherit the first page's translation for bytes on
	// the second page — the SVM window pairing that usually saves a
	// straddle is not guaranteed when the second page was unmapped at the
	// first page's first touch.
	head, _ := as.Load(skb+kernel.SkbHead, 4)
	spans, err := pageSpans(head, hdr, func(a uint32) (uint32, error) {
		return t.SV.Translate(meter, a)
	})
	if err != nil {
		t.poolPut(skb)
		return err
	}
	off := 0
	for _, sp := range spans {
		meter.AddTo(cycles.CompXen, uint64(sp.bytes)*cost.HvCopyPerByte)
		meter.TouchLines(sp.pa, sp.bytes)
		if err := mem.Copy(hv.HVSpace, sp.pa, gas, guestAddr+uint32(off), sp.bytes); err != nil {
			t.poolPut(skb)
			return err
		}
		off += sp.bytes
	}
	as.Store(skb+kernel.SkbLen, 4, uint32(n))
	// The queue mapping rides in the sk_buff like skb_set_queue_mapping:
	// a multi-queue driver's xmit reads it to pick its register block;
	// single-queue drivers ignore the word. The store is framework-side
	// bookkeeping (no modeled cycles), so it cannot perturb the
	// single-queue backends' pinned cycle counts.
	as.Store(skb+kernel.SkbQueue, 4, uint32(g.queue))
	if n > hdr {
		as.Store(skb+kernel.SkbNrFrags, 4, 1)
		as.Store(skb+kernel.SkbFragPage, 4, guestAddr)
		as.Store(skb+kernel.SkbFragOff, 4, uint32(hdr))
		as.Store(skb+kernel.SkbFragSize, 4, uint32(n-hdr))
	} else {
		as.Store(skb+kernel.SkbNrFrags, 4, 0)
	}

	ret, err := t.invokeHV(t.xmitEntry, skb, d.Netdev)
	if err != nil {
		return err
	}
	if ret != 0 {
		t.poolPut(skb)
		return ErrTxBusy
	}
	return nil
}

// HandleIRQ services a NIC interrupt with the hypervisor driver instance,
// directly in the current domain context. If dom0 has masked its virtual
// interrupt flag, the invocation is deferred to a softirq (§4.4).
func (t *Twin) HandleIRQ(d *NICDev) error {
	if t.Dead {
		return ErrDriverDead
	}
	if t.M.Dom0.VirtIRQMasked {
		t.pendingIRQ = append(t.pendingIRQ, d)
		return nil
	}
	t.M.HV.Meter.AddTo(cycles.CompXen, cost.IrqOverhead)
	_, err := t.invokeHV(t.intrEntry, d.IRQ, d.Netdev)
	return err
}

// RunSoftirq services interrupts deferred while dom0 masked its virtual
// interrupt flag.
func (t *Twin) RunSoftirq() error {
	if t.M.Dom0.VirtIRQMasked {
		return nil
	}
	pend := t.pendingIRQ
	t.pendingIRQ = nil
	for _, d := range pend {
		t.M.HV.Meter.AddTo(cycles.CompXen, cost.IrqOverhead)
		if _, err := t.invokeHV(t.intrEntry, d.IRQ, d.Netdev); err != nil {
			return err
		}
	}
	return nil
}

// PendingRx reports queued-but-undelivered packets for a domain.
func (t *Twin) PendingRx(dom mem.Owner) int {
	if q := t.rxQueues[dom]; q != nil {
		return q.len()
	}
	return 0
}

// queueRx enqueues a received skb for a domain (netif_rx's demux target).
func (t *Twin) queueRx(dom mem.Owner, skb uint32) {
	q := t.rxQueues[dom]
	if q == nil {
		q = &rxQueue{}
		t.rxQueues[dom] = q
	}
	q.push(skb)
}

// DeliverPending copies every queued received packet into guest buffers
// (the hypervisor's per-packet copy that dominates its receive overhead in
// Figure 8) and raises one virtual interrupt. It returns the packets.
func (t *Twin) DeliverPending(dom *xen.Domain) ([][]byte, error) {
	return t.DeliverPendingBatch(dom, 0)
}

// DeliverPendingBatch delivers at most max queued packets (0 means all),
// raising a single coalesced guest notification for the whole batch. The
// queue is consumed by index (rxQueue), so draining a deep queue in
// bounded batches costs O(n) overall instead of re-shifting the remainder
// on every call.
//
// A mid-batch fault (a translate or read failure over a scribbled skb)
// drops the rest of the dequeued batch but returns the frames already
// delivered alongside a *DeliveryError carrying the exact drop count:
// callers must count those frames delivered and the dropped remainder lost
// exactly once.
func (t *Twin) DeliverPendingBatch(dom *xen.Domain, max int) ([][]byte, error) {
	rq := t.rxQueues[dom.ID]
	if rq == nil || rq.len() == 0 {
		return nil, nil
	}
	q := rq.popN(max)
	meter := t.M.HV.Meter
	var out [][]byte
	for i, skb := range q {
		as := t.M.Dom0.AS
		data, _ := as.Load(skb+kernel.SkbData, 4)
		ln, _ := as.Load(skb+kernel.SkbLen, 4)
		// eth_type_trans pulled the 14-byte header; the guest receives
		// the full frame.
		start := data - 14
		total := int(ln) + 14
		ta, err := t.SV.Translate(meter, start)
		if err != nil {
			return out, t.deliveryFault(dom, out, q[i:], err)
		}
		meter.AddTo(cycles.CompXen, uint64(total)*cost.HvCopyPerByte)
		meter.TouchLines(ta, total)
		pkt, err := t.M.Dom0.AS.ReadBytes(start, total)
		if err != nil {
			return out, t.deliveryFault(dom, out, q[i:], err)
		}
		out = append(out, pkt)
		t.poolFreeOrKernel(skb)
	}
	t.Coalescer.Deliver(dom)
	return out, nil
}

// deliveryFault settles a mid-batch delivery failure: the dequeued
// remainder is dropped (buffers back to the pool or slab — every aborted
// batch must not shrink transmit capacity), the frames already delivered
// get their coalesced notification, and the caller receives a
// *DeliveryError with the exact delivered/dropped split so loss is
// accounted exactly once.
func (t *Twin) deliveryFault(dom *xen.Domain, out [][]byte, rest []uint32, cause error) error {
	for _, skb := range rest {
		t.poolFreeOrKernel(skb)
	}
	if len(out) > 0 {
		t.Coalescer.Deliver(dom)
	}
	return &DeliveryError{Delivered: len(out), Dropped: len(rest), Cause: cause}
}

// poolFreeOrKernel returns an skb to the hypervisor pool or to the dom0
// slab, depending on provenance.
func (t *Twin) poolFreeOrKernel(skb uint32) {
	as := t.M.Dom0.AS
	if v, _ := as.Load(skb+kernel.SkbPool, 4); v != 0 {
		t.poolPut(skb)
		return
	}
	t.M.K.FreeSkb(skb)
}

// VMInstanceEntry exposes the VM instance entry for a named function
// (management operations keep running in dom0, §3.1).
func (t *Twin) VMInstanceEntry(fn string) (uint32, bool) {
	return t.M.VMImage.FuncEntry(fn)
}

// UpcallsPerformed returns the total upcall count.
func (t *Twin) UpcallsPerformed() uint64 { return t.Upcalls.Count }

// QueueCount reports the number of transmit service queues this twin
// shards its guests across (1 on single-queue backends).
func (t *Twin) QueueCount() int { return t.nQueues }

// QueueOf reports the service queue a guest domain is sharded onto, or
// -1 for a domain without transmit state.
func (t *Twin) QueueOf(dom mem.Owner) int {
	if g, ok := t.guestIO[dom]; ok {
		return g.queue
	}
	return -1
}

// QueueMeters returns the per-queue cycle meters. With one queue the
// single entry is the machine meter itself — the degenerate configuration
// has no separate accounting; with more, each meter is that queue's
// simulated core, and a machine-wide view is a cycles.Merge over them
// plus the machine meter.
func (t *Twin) QueueMeters() []*cycles.Meter {
	return append([]*cycles.Meter(nil), t.queueMeters...)
}

// ResetQueueMeters starts a measurement epoch on every per-queue meter
// (hardware state stays warm, exactly like Meter.Reset). With one queue
// the single meter is the machine meter, which the caller resets itself —
// resetting it twice here would double-retire its lifetime, so the
// degenerate case is a no-op.
func (t *Twin) ResetQueueMeters() {
	if t.nQueues == 1 {
		return
	}
	for _, qm := range t.queueMeters {
		qm.Reset()
	}
}
