// Package vswitch implements the dom0-side inter-guest L2 switch: a
// learning Ethernet switch that lets guest→guest traffic be delivered
// entirely in dom0, without a device round-trip.
//
// Trust model (mirrors the rest of the repo): the switch runs dom0-side
// and its tables are trusted state, but every *input* — src/dst MACs —
// comes from guest-controlled frame bytes, so the switch must stay
// correct under arbitrary hostile values:
//
//   - Registered guest MACs (core.RegisterGuestMAC) are installed as
//     STATIC entries and are authoritative: a frame whose source MAC is
//     another port's static MAC is a spoof and is rejected outright (the
//     forger's frame is dropped and counted; the victim's table entry is
//     untouched, so its traffic cannot be stolen or poisoned).
//   - Other source MACs are LEARNED per-port, Linux-bridge style, with a
//     bounded table so a hostile guest cycling random MACs cannot grow
//     dom0 memory without limit.
//   - A destination with the group bit set (dst[0]&1) is
//     broadcast/multicast: fan out to every other port and the device.
//   - A unicast destination that resolves (static first, then learned)
//     to a local port is delivered dom0-side only — this is the path
//     that never touches the device.
//   - Unknown unicast goes to the device only: every local guest has a
//     static entry, so an unknown MAC is genuinely external, and
//     flooding it into unrelated guests would be a cross-tenant leak.
//
// The switch does zero frame copying itself — callers charge the normal
// delivery machinery for payload movement; Classify is pure table work
// priced by cost.VswitchLookup/VswitchForwardPerFrame at the call site.
package vswitch

import (
	"sort"
	"sync"

	"twindrivers/internal/mem"
)

// MAC is an Ethernet address.
type MAC [6]byte

// Multicast reports whether the group bit is set (broadcast included).
func (m MAC) Multicast() bool { return m[0]&1 != 0 }

// MaxLearned bounds the learning table: a hostile guest cycling source
// MACs stops learning (counted in Stats.LearnOverflow) once the table is
// full, instead of growing dom0 memory without limit.
const MaxLearned = 1024

// Forward is the switching decision for one frame.
type Forward struct {
	// Local lists the ports (never the ingress port) that receive the
	// frame dom0-side, in deterministic (sorted) order.
	Local []mem.Owner

	// Device reports whether the frame also goes out the physical
	// device (broadcast, or unicast to a non-local destination).
	Device bool
}

// Stats counts switching outcomes. All counters are cumulative.
type Stats struct {
	LocalUnicast  uint64 // unicast frames delivered guest→guest, device skipped
	Broadcast     uint64 // group-bit frames fanned out to all other ports
	External      uint64 // unicast frames sent to the device (non-local dst)
	Reflected     uint64 // unicast frames addressed to their own ingress port (dropped)
	SpoofRejected uint64 // frames dropped for forging another port's static MAC
	Learned       uint64 // learning-table inserts
	Moved         uint64 // learned entries re-bound to a different port
	LearnOverflow uint64 // learns skipped because the table was full
}

// Switch is a dom0-side learning L2 switch over guest ports. Safe for
// concurrent use by parallel per-queue service loops.
type Switch struct {
	mu      sync.Mutex
	static  map[MAC]mem.Owner
	learned map[MAC]mem.Owner
	ports   map[mem.Owner]bool
	stats   Stats
}

// New returns an empty switch with no ports or entries.
func New() *Switch {
	return &Switch{
		static:  make(map[MAC]mem.Owner),
		learned: make(map[MAC]mem.Owner),
		ports:   make(map[mem.Owner]bool),
	}
}

// AddPort attaches a guest port. Broadcast frames fan out to every
// attached port except the ingress one.
func (s *Switch) AddPort(p mem.Owner) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ports[p] = true
}

// RemovePort detaches a port and flushes every table entry bound to it,
// so a departed guest's MACs cannot black-hole a successor's traffic.
func (s *Switch) RemovePort(p mem.Owner) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.ports, p)
	for m, o := range s.static {
		if o == p {
			delete(s.static, m)
		}
	}
	for m, o := range s.learned {
		if o == p {
			delete(s.learned, m)
		}
	}
}

// BindStatic installs an authoritative MAC→port binding (the registered
// guest MAC). Static entries take precedence over learned ones and are
// the anchor of the anti-spoof check; any learned entry for the same MAC
// is dropped.
func (s *Switch) BindStatic(m MAC, p mem.Owner) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.static[m] = p
	s.ports[p] = true
	delete(s.learned, m)
}

// Classify decides where a frame entering at port with the given
// src/dst MACs goes. ok=false means the frame is rejected (source MAC
// spoofs another port's static binding) and must not be transmitted
// anywhere.
func (s *Switch) Classify(port mem.Owner, src, dst MAC) (Forward, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()

	// Anti-spoof: a source MAC statically bound to a different port is
	// a forgery. Reject before learning so the forger cannot perturb
	// any table state.
	if owner, ok := s.static[src]; ok && owner != port {
		s.stats.SpoofRejected++
		return Forward{}, false
	}

	// Learn non-group, non-static source MACs per-port.
	if _, isStatic := s.static[src]; !isStatic && !src.Multicast() {
		if prev, ok := s.learned[src]; ok {
			if prev != port {
				s.learned[src] = port
				s.stats.Moved++
			}
		} else if len(s.learned) < MaxLearned {
			s.learned[src] = port
			s.stats.Learned++
		} else {
			s.stats.LearnOverflow++
		}
	}

	if dst.Multicast() {
		s.stats.Broadcast++
		fwd := Forward{Device: true}
		for p := range s.ports {
			if p != port {
				fwd.Local = append(fwd.Local, p)
			}
		}
		sort.Slice(fwd.Local, func(i, j int) bool { return fwd.Local[i] < fwd.Local[j] })
		return fwd, true
	}

	owner, ok := s.static[dst]
	if !ok {
		owner, ok = s.learned[dst]
	}
	switch {
	case ok && owner == port:
		// Addressed to its own ingress port: a real switch filters
		// this rather than reflecting it.
		s.stats.Reflected++
		return Forward{}, true
	case ok:
		s.stats.LocalUnicast++
		return Forward{Local: []mem.Owner{owner}}, true
	default:
		// Unknown unicast: external. Device only — flooding it into
		// local guests would leak cross-tenant traffic.
		s.stats.External++
		return Forward{Device: true}, true
	}
}

// Lookup reports the port a MAC currently resolves to (static first).
func (s *Switch) Lookup(m MAC) (mem.Owner, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if o, ok := s.static[m]; ok {
		return o, true
	}
	o, ok := s.learned[m]
	return o, ok
}

// Stats returns a snapshot of the switching counters.
func (s *Switch) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// LearnedCount reports the current learning-table occupancy.
func (s *Switch) LearnedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.learned)
}
