package vswitch

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"twindrivers/internal/mem"
)

func mac(b byte) MAC { return MAC{0x02, 0xAA, 0, 0, 0, b} }

func TestStaticUnicastLocal(t *testing.T) {
	s := New()
	s.BindStatic(mac(1), 1)
	s.BindStatic(mac(2), 2)

	fwd, ok := s.Classify(1, mac(1), mac(2))
	if !ok {
		t.Fatalf("legit frame rejected")
	}
	if fwd.Device {
		t.Fatalf("guest→guest unicast must not touch the device")
	}
	if len(fwd.Local) != 1 || fwd.Local[0] != 2 {
		t.Fatalf("local = %v, want [2]", fwd.Local)
	}
	if st := s.Stats(); st.LocalUnicast != 1 {
		t.Fatalf("LocalUnicast = %d, want 1", st.LocalUnicast)
	}
}

func TestUnknownUnicastGoesToDeviceOnly(t *testing.T) {
	s := New()
	s.BindStatic(mac(1), 1)
	s.BindStatic(mac(2), 2)

	ext := MAC{0x00, 0x50, 0x56, 9, 9, 9}
	fwd, ok := s.Classify(1, mac(1), ext)
	if !ok || !fwd.Device || len(fwd.Local) != 0 {
		t.Fatalf("unknown unicast: fwd=%+v ok=%v, want device-only", fwd, ok)
	}
	if st := s.Stats(); st.External != 1 {
		t.Fatalf("External = %d, want 1", st.External)
	}
}

func TestLearningBindsUnregisteredSrc(t *testing.T) {
	s := New()
	s.AddPort(1)
	s.AddPort(2)
	ephemeral := MAC{0x02, 0xEE, 0, 0, 0, 7}

	// Port 2 transmits from an unregistered MAC: learned.
	if _, ok := s.Classify(2, ephemeral, MAC{0, 0x50, 0x56, 0, 0, 1}); !ok {
		t.Fatalf("learning frame rejected")
	}
	if o, ok := s.Lookup(ephemeral); !ok || o != 2 {
		t.Fatalf("Lookup(ephemeral) = %v,%v want 2,true", o, ok)
	}

	// Now port 1 can reach it dom0-side.
	fwd, ok := s.Classify(1, mac(1), ephemeral)
	if !ok || fwd.Device || len(fwd.Local) != 1 || fwd.Local[0] != 2 {
		t.Fatalf("post-learn unicast: fwd=%+v ok=%v, want local [2]", fwd, ok)
	}

	// The entry moves when the MAC shows up on another port.
	if _, ok := s.Classify(1, ephemeral, MAC{0, 0x50, 0x56, 0, 0, 1}); !ok {
		t.Fatalf("move frame rejected")
	}
	if o, _ := s.Lookup(ephemeral); o != 1 {
		t.Fatalf("entry did not move, still on %v", o)
	}
	// Two learns: ephemeral and the (unregistered) mac(1) src above.
	if st := s.Stats(); st.Learned != 2 || st.Moved != 1 {
		t.Fatalf("stats = %+v, want Learned=2 Moved=1", st)
	}
}

func TestBroadcastFanout(t *testing.T) {
	s := New()
	for p := mem.Owner(1); p <= 4; p++ {
		s.BindStatic(mac(byte(p)), p)
	}
	bcast := MAC{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	fwd, ok := s.Classify(3, mac(3), bcast)
	if !ok || !fwd.Device {
		t.Fatalf("broadcast: fwd=%+v ok=%v, want device too", fwd, ok)
	}
	want := []mem.Owner{1, 2, 4}
	if fmt.Sprint(fwd.Local) != fmt.Sprint(want) {
		t.Fatalf("broadcast local = %v, want %v (sorted, no ingress)", fwd.Local, want)
	}

	// Multicast group bit counts too.
	mcast := MAC{0x01, 0x00, 0x5E, 0, 0, 1}
	if fwd, ok := s.Classify(1, mac(1), mcast); !ok || !fwd.Device || len(fwd.Local) != 3 {
		t.Fatalf("multicast: fwd=%+v ok=%v", fwd, ok)
	}
}

func TestSpoofRejected(t *testing.T) {
	s := New()
	s.BindStatic(mac(1), 1)
	s.BindStatic(mac(2), 2)

	// Guest 2 forges guest 1's static MAC: dropped, no table damage.
	fwd, ok := s.Classify(2, mac(1), mac(2))
	if ok {
		t.Fatalf("spoofed frame accepted: %+v", fwd)
	}
	if o, _ := s.Lookup(mac(1)); o != 1 {
		t.Fatalf("victim binding perturbed: %v", o)
	}
	// Victim's own traffic still flows.
	if _, ok := s.Classify(1, mac(1), mac(2)); !ok {
		t.Fatalf("victim traffic rejected after spoof attempt")
	}
	if st := s.Stats(); st.SpoofRejected != 1 {
		t.Fatalf("SpoofRejected = %d, want 1", st.SpoofRejected)
	}
}

func TestSelfAddressedFiltered(t *testing.T) {
	s := New()
	s.BindStatic(mac(1), 1)
	fwd, ok := s.Classify(1, mac(1), mac(1))
	if !ok || fwd.Device || len(fwd.Local) != 0 {
		t.Fatalf("self-addressed: fwd=%+v ok=%v, want filtered", fwd, ok)
	}
	if st := s.Stats(); st.Reflected != 1 {
		t.Fatalf("Reflected = %d, want 1", st.Reflected)
	}
}

func TestLearnTableBounded(t *testing.T) {
	s := New()
	s.AddPort(1)
	for i := 0; i < MaxLearned+50; i++ {
		src := MAC{0x02, 0xBB, byte(i >> 16), byte(i >> 8), byte(i), 0}
		s.Classify(1, src, MAC{0, 0x50, 0x56, 0, 0, 1})
	}
	if n := s.LearnedCount(); n != MaxLearned {
		t.Fatalf("learned table grew to %d, cap is %d", n, MaxLearned)
	}
	if st := s.Stats(); st.LearnOverflow != 50 {
		t.Fatalf("LearnOverflow = %d, want 50", st.LearnOverflow)
	}
}

func TestRemovePortFlushesEntries(t *testing.T) {
	s := New()
	s.BindStatic(mac(1), 1)
	s.BindStatic(mac(2), 2)
	eph := MAC{0x02, 0xEE, 0, 0, 0, 9}
	s.Classify(2, eph, mac(1))

	s.RemovePort(2)
	if _, ok := s.Lookup(mac(2)); ok {
		t.Fatalf("static entry survived RemovePort")
	}
	if _, ok := s.Lookup(eph); ok {
		t.Fatalf("learned entry survived RemovePort")
	}
	// Traffic to the departed guest now goes external, not black-holed
	// into a stale port.
	fwd, ok := s.Classify(1, mac(1), mac(2))
	if !ok || !fwd.Device || len(fwd.Local) != 0 {
		t.Fatalf("post-remove unicast: fwd=%+v ok=%v, want device-only", fwd, ok)
	}
}

// Property: for any sequence of classify calls, a frame is never
// delivered back to its ingress port, and unicast never fans out to
// more than one local port.
func TestClassifyInvariants(t *testing.T) {
	s := New()
	for p := mem.Owner(1); p <= 8; p++ {
		s.BindStatic(mac(byte(p)), p)
	}
	prop := func(port uint8, srcB, dstB [6]byte) bool {
		p := mem.Owner(port%8) + 1
		src, dst := MAC(srcB), MAC(dstB)
		fwd, ok := s.Classify(p, src, dst)
		if !ok {
			return len(fwd.Local) == 0 && !fwd.Device
		}
		for _, l := range fwd.Local {
			if l == p {
				return false
			}
		}
		if !dst.Multicast() && len(fwd.Local) > 1 {
			return false
		}
		if !dst.Multicast() && len(fwd.Local) == 1 && fwd.Device {
			return false // local unicast must skip the device
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(0x5EED))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
