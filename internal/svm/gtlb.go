package svm

import (
	"twindrivers/internal/cpu"
	"twindrivers/internal/cycles"
	"twindrivers/internal/mem"
	"twindrivers/internal/telemetry"
	"twindrivers/internal/xen"
)

// GuestTLB is the per-guest software translation cache of the posted-buffer
// receive path: when a guest posts its own receive buffers, the hypervisor
// must resolve *guest* virtual addresses to machine frames before copying a
// single byte into them — the guest-side counterpart of the stlb, in the
// spirit of Kedia & Bansal's cached translations for software-only device
// passthrough.
//
// A hit costs a table lookup; a miss walks the guest's page table and
// performs the ownership check. The ownership check is the trust boundary:
// guest address spaces chain to the globally-mapped hypervisor region, so a
// naive AS.Translate of a guest-supplied address could resolve into
// hypervisor memory. The TLB therefore walks only the guest's *local* page
// table and demands that the backing frame is RAM owned by that guest —
// anything else (hypervisor range, another guest's aliases, MMIO, unmapped
// pages) is a violation, reported without touching memory.
//
// The cache is explicitly invalidated when the hypervisor driver instance
// is aborted or revived: a translation cached on behalf of a dead instance
// must never be trusted by its successor (the recovery analogue of a TLB
// shootdown).
type GuestTLB struct {
	HV  *xen.Hypervisor
	Dom *xen.Domain // the guest whose posted buffers this cache serves

	entries map[uint32]uint32 // guest vpn -> machine page base

	// Trace, when non-nil, receives hit/miss/violation events — the
	// 24/260-cycle split is load-bearing for the posted-RX win, so it is
	// observable per translation, not only as aggregate counters.
	Trace *telemetry.Lane

	// Statistics.
	Hits       uint64
	Misses     uint64
	Flushes    uint64
	Violations uint64
}

// Guest-TLB cycle prices, charged to the hypervisor bucket (translating a
// guest-posted address is hypervisor work, like the stlb slow path).
const (
	costGtlbHit  = 24  // direct cache lookup on the delivery hot path
	costGtlbMiss = 260 // guest page-table walk + frame ownership check
)

// NewGuestTLB builds an empty cache for one guest.
func NewGuestTLB(hv *xen.Hypervisor, dom *xen.Domain) *GuestTLB {
	return &GuestTLB{HV: hv, Dom: dom, entries: make(map[uint32]uint32)}
}

// Translate resolves a guest virtual address to a machine address, caching
// the page translation. A guest-supplied address that does not resolve to a
// RAM frame owned by this guest is a protection violation — the posted
// descriptor words are hostile input and must never steer a hypervisor-side
// copy outside the guest's own memory.
func (g *GuestTLB) Translate(meter *cycles.Meter, addr uint32) (uint32, error) {
	vpn := addr / mem.PageSize
	if pa, ok := g.entries[vpn]; ok {
		g.Hits++
		meter.AddTo(cycles.CompXen, costGtlbHit)
		g.Trace.Record(meter, telemetry.EvTLBHit, int32(g.Dom.ID), uint64(vpn), 0)
		return pa | (addr & mem.PageMask), nil
	}
	frame, ok := g.Dom.AS.LookupLocal(vpn)
	if !ok || g.HV.Phys.FrameOwner(frame) != g.Dom.ID || g.HV.Phys.IsMMIO(frame) {
		g.Violations++
		meter.AddTo(cycles.CompXen, costViolation)
		g.Trace.Record(meter, telemetry.EvHostile, int32(g.Dom.ID), 0, uint64(addr))
		return 0, &cpu.Fault{
			Kind: cpu.FaultProtection,
			Addr: addr,
			Msg:  "gtlb: posted buffer outside " + g.Dom.Name + " address space",
		}
	}
	g.Misses++
	meter.AddTo(cycles.CompXen, costGtlbMiss)
	g.Trace.Record(meter, telemetry.EvTLBMiss, int32(g.Dom.ID), uint64(vpn), 0)
	pa := frame * mem.PageSize
	g.entries[vpn] = pa
	return pa | (addr & mem.PageMask), nil
}

// Invalidate drops every cached translation (abort/revive shootdown).
func (g *GuestTLB) Invalidate() {
	g.Flushes++
	g.entries = make(map[uint32]uint32)
}

// Cached returns the number of cached page translations.
func (g *GuestTLB) Cached() int { return len(g.entries) }
