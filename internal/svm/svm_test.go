package svm_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"twindrivers/internal/asm"
	"twindrivers/internal/cpu"
	"twindrivers/internal/isa"
	"twindrivers/internal/mem"
	"twindrivers/internal/rewrite"
	"twindrivers/internal/svm"
	"twindrivers/internal/xen"
)

// env is a miniature TwinDrivers loader: it lays out a unit twice (VM
// instance in dom0, rewritten instance in the hypervisor), provisions the
// stlb, globals, stacks and the slow-path gate, and runs either instance.
type env struct {
	hv         *xen.Hypervisor
	dom0, domU *xen.Domain
	sv         *svm.SVM
	vmIm, hvIm *asm.Image
	dataBase   uint32
	dataSize   uint32
	dom0Stack  uint32
	hvStack    uint32
	hvGuardLo  uint32
	hvGuardHi  uint32
}

const dataBase = 0xC0100000

func newEnv(t testing.TB, src string, opt rewrite.Options) *env {
	t.Helper()
	hv := xen.New()
	dom0 := hv.CreateDomain(mem.OwnerDom0, "dom0")
	domU := hv.CreateDomain(1, "domU")

	u, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	ru, _, err := rewrite.Rewrite(u, opt)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}

	e := &env{hv: hv, dom0: dom0, domU: domU}

	// VM instance: code and data in dom0.
	e.vmIm, err = asm.Layout("vm", u, xen.Dom0DriverCode, dataBase, nil)
	if err != nil {
		t.Fatalf("layout vm: %v", err)
	}
	e.dataBase = dataBase
	e.dataSize = e.vmIm.DataEnd - e.vmIm.DataBase
	npages := int(e.dataSize/mem.PageSize) + 2
	frames := hv.Phys.AllocFrames(dom0.ID, npages)
	dom0.AS.MapRange(dataBase, frames, npages)
	if err := dom0.AS.WriteBytes(dataBase, e.vmIm.DataInit()); err != nil {
		t.Fatal(err)
	}
	// Scribble deterministic noise over the region past the initialised
	// segment so loads see varied data in both runs.
	noise := make([]byte, npages*mem.PageSize-int(e.dataSize))
	nr := rand.New(rand.NewSource(99))
	for i := range noise {
		noise[i] = byte(nr.Intn(256))
	}
	if err := dom0.AS.WriteBytes(dataBase+e.dataSize, noise); err != nil {
		t.Fatal(err)
	}

	// dom0 stack.
	sf := hv.Phys.AllocFrames(dom0.ID, 16)
	dom0.AS.MapRange(0xC0900000, sf, 16)
	e.dom0Stack = 0xC0900000 + 16*mem.PageSize

	// Hypervisor instance: stlb, globals, stack, slow-path gate.
	tableAddr := hv.AllocHVPages(svm.TableBytes / mem.PageSize)
	sv, err := svm.New(hv, dom0, hv.HVSpace, tableAddr, false)
	if err != nil {
		t.Fatal(err)
	}
	e.sv = sv
	globals := hv.AllocHVPages(1)
	slowGate := hv.BindGate("__svm_slowpath", func(c *cpu.CPU) (uint32, error) {
		return sv.SlowPath(c.Meter, c.Arg(0))
	})
	stackViol := hv.BindGate("__svm_stack_violation", func(c *cpu.CPU) (uint32, error) {
		return 0, &cpu.Fault{Kind: cpu.FaultProtection, Msg: "stack bounds violation"}
	})
	top, lo, hi := hv.AllocStack(16)
	e.hvStack, e.hvGuardLo, e.hvGuardHi = top, lo, hi

	resolver := func(sym string) (uint32, bool) {
		switch sym {
		case rewrite.SymSTLB:
			return tableAddr, true
		case rewrite.SymSlowPath:
			return slowGate, true
		case rewrite.SymStackViolation:
			return stackViol, true
		case rewrite.SymCodeLo:
			return globals + 0, true
		case rewrite.SymCodeHi:
			return globals + 4, true
		case rewrite.SymCodeDelta:
			return globals + 8, true
		case rewrite.SymScratch:
			return globals + 12, true
		case rewrite.SymStackLo:
			return globals + 16, true
		case rewrite.SymStackHi:
			return globals + 20, true
		}
		// Data imports resolve to the dom0 addresses (saved relocation
		// info, §5.2): here, the VM image's own data symbols.
		if a, ok := e.vmIm.DataSymbol(sym); ok {
			return a, true
		}
		return 0, false
	}
	// The hypervisor instance shares the single copy of driver data in
	// dom0: its data segment is laid out at the same dom0 base, so both
	// instances' data symbols resolve to identical dom0 addresses.
	e.hvIm, err = asm.Layout("hv", ru, xen.HVDriverCode, dataBase, resolver)
	if err != nil {
		t.Fatalf("layout hv: %v", err)
	}

	// Globals: code range of the VM instance and the code delta.
	hvSp := hv.HVSpace
	check := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	check(hvSp.Store(globals+0, 4, e.vmIm.CodeBase))
	check(hvSp.Store(globals+4, 4, e.vmIm.CodeEnd))
	check(hvSp.Store(globals+8, 4, xen.HVDriverCode-xen.Dom0DriverCode))
	check(hvSp.Store(globals+16, 4, lo))
	check(hvSp.Store(globals+20, 4, hi))

	hv.CPU.AddImage(e.vmIm)
	hv.CPU.AddImage(e.hvIm)
	return e
}

// seedRegs installs deterministic register values.
func (e *env) seedRegs(c *cpu.CPU, seed int64) {
	r := rand.New(rand.NewSource(seed))
	for i := range c.Regs {
		c.Regs[i] = uint32(r.Int31n(1 << 16))
	}
	c.Regs[isa.ESI] = e.dataBase
	c.Regs[isa.EDI] = e.dataBase + 2048
	c.Regs[isa.EBP] = 0
}

type runResult struct {
	ret  uint32
	regs [5]uint32 // eax, ebx, esi, edi, ebp
	data []byte
	err  error
}

// runVM executes the original instance in dom0 context.
func (e *env) runVM(t testing.TB, entry string, seed int64) runResult {
	t.Helper()
	c := e.hv.CPU
	c.AS = e.dom0.AS
	e.seedRegs(c, seed)
	c.Regs[isa.ESP] = e.dom0Stack
	c.GuardLow, c.GuardHigh = 0, 0
	addr, ok := e.vmIm.FuncEntry(entry)
	if !ok {
		t.Fatalf("no entry %s", entry)
	}
	ret, err := c.Call(addr)
	return e.result(t, c, ret, err)
}

// runHV executes the rewritten instance in *guest* context — the whole
// point of SVM is that no switch to dom0 is needed.
func (e *env) runHV(t testing.TB, entry string, seed int64) runResult {
	t.Helper()
	c := e.hv.CPU
	c.AS = e.domU.AS
	e.seedRegs(c, seed)
	c.Regs[isa.ESP] = e.hvStack
	c.GuardLow, c.GuardHigh = e.hvGuardLo, e.hvGuardHi
	addr, ok := e.hvIm.FuncEntry(entry)
	if !ok {
		t.Fatalf("no entry %s", entry)
	}
	ret, err := c.Call(addr)
	c.GuardLow, c.GuardHigh = 0, 0
	return e.result(t, c, ret, err)
}

func (e *env) result(t testing.TB, c *cpu.CPU, ret uint32, err error) runResult {
	res := runResult{ret: ret, err: err}
	res.regs = [5]uint32{c.Regs[isa.EAX], c.Regs[isa.EBX], c.Regs[isa.ESI], c.Regs[isa.EDI], c.Regs[isa.EBP]}
	data, derr := e.dom0.AS.ReadBytes(e.dataBase, int(e.dataSize))
	if derr != nil {
		t.Fatal(derr)
	}
	res.data = data
	return res
}

// snapshot and restore dom0 data between runs.
func (e *env) snapshot(t testing.TB) []byte {
	t.Helper()
	b, err := e.dom0.AS.ReadBytes(e.dataBase, int(e.dataSize))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func (e *env) restore(t testing.TB, b []byte) {
	t.Helper()
	if err := e.dom0.AS.WriteBytes(e.dataBase, b); err != nil {
		t.Fatal(err)
	}
}

// checkEquivalent runs both instances and compares results.
func checkEquivalent(t *testing.T, src, entry string, seed int64) {
	t.Helper()
	e := newEnv(t, src, rewrite.Options{})
	init := e.snapshot(t)
	vm := e.runVM(t, entry, seed)
	if vm.err != nil {
		t.Fatalf("vm run: %v", vm.err)
	}
	e.restore(t, init)
	hvr := e.runHV(t, entry, seed)
	if hvr.err != nil {
		t.Fatalf("hv run: %v", hvr.err)
	}
	if vm.ret != hvr.ret {
		t.Errorf("return: vm=%#x hv=%#x", vm.ret, hvr.ret)
	}
	if vm.regs != hvr.regs {
		t.Errorf("regs: vm=%x hv=%x", vm.regs, hvr.regs)
	}
	if !bytes.Equal(vm.data, hvr.data) {
		for i := range vm.data {
			if vm.data[i] != hvr.data[i] {
				t.Errorf("data differs first at +%#x: vm=%#x hv=%#x", i, vm.data[i], hvr.data[i])
				break
			}
		}
	}
}

func TestSlowPathFirstTouchAndReuse(t *testing.T) {
	e := newEnv(t, "f:\n\tret\n", rewrite.Options{})
	m := e.hv.Meter
	addr := e.dataBase + 123
	tr1, err := e.sv.SlowPath(m, addr)
	if err != nil {
		t.Fatal(err)
	}
	if tr1&mem.PageMask != 123 {
		t.Errorf("offset not preserved: %#x", tr1)
	}
	if tr1 < xen.HVMapWindow {
		t.Errorf("translation %#x not in mapping window", tr1)
	}
	// The translated address reads the same bytes as the dom0 address.
	if err := e.dom0.AS.Store(addr, 4, 0xFEEDBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := e.hv.HVSpace.Load(tr1, 4)
	if err != nil || v != 0xFEEDBEEF {
		t.Errorf("through-mapping read = %#x, %v", v, err)
	}
	// stlb entry content: tag and xordiff.
	tag, xd, err := e.sv.LookupSim(addr)
	if err != nil {
		t.Fatal(err)
	}
	if tag != addr&^uint32(mem.PageMask) {
		t.Errorf("tag = %#x", tag)
	}
	if tag^xd != tr1&^uint32(mem.PageMask) {
		t.Errorf("xordiff wrong: tag^xd = %#x, hvpage = %#x", tag^xd, tr1&^uint32(mem.PageMask))
	}
	if e.sv.FirstTouches != 1 {
		t.Errorf("FirstTouches = %d", e.sv.FirstTouches)
	}
	// Translate again: warm (chain map), no new mapping.
	tr2, err := e.sv.Translate(m, addr+8)
	if err != nil {
		t.Fatal(err)
	}
	if tr2 != (tr1&^uint32(mem.PageMask))|((addr+8)&mem.PageMask) {
		t.Errorf("warm translate = %#x", tr2)
	}
	if e.sv.FirstTouches != 1 {
		t.Errorf("second touch re-mapped: %d", e.sv.FirstTouches)
	}
}

func TestSlowPathViolation(t *testing.T) {
	e := newEnv(t, "f:\n\tret\n", rewrite.Options{})
	cases := []uint32{
		xen.HypervisorBase + 0x1000, // hypervisor memory
		0x00001000,                  // unmapped low memory
		0xC0900000 - 0x100000,       // unmapped dom0 hole
	}
	for _, addr := range cases {
		if _, err := e.sv.SlowPath(e.hv.Meter, addr); !cpu.IsFault(err, cpu.FaultProtection) {
			t.Errorf("addr %#x: err = %v, want protection fault", addr, err)
		}
	}
	if e.sv.Violations != uint64(len(cases)) {
		t.Errorf("Violations = %d", e.sv.Violations)
	}
}

func TestSlowPathOtherDomainMemoryDenied(t *testing.T) {
	e := newEnv(t, "f:\n\tret\n", rewrite.Options{})
	// Map a domU-owned frame into... domU. Then forge a dom0 access: map
	// the same vaddr in dom0 pointing to a domU-owned frame (as if dom0's
	// page tables were corrupted); the owner check must still deny it.
	f := e.hv.Phys.AllocFrame(e.domU.ID)
	e.dom0.AS.Map(0xC5000000/mem.PageSize, f)
	if _, err := e.sv.SlowPath(e.hv.Meter, 0xC5000000); !cpu.IsFault(err, cpu.FaultProtection) {
		t.Errorf("foreign frame: err = %v", err)
	}
}

func TestSlowPathCollisionChain(t *testing.T) {
	e := newEnv(t, "f:\n\tret\n", rewrite.Options{})
	// Two dom0 pages whose vpns share the low 12 bits collide in the
	// table. 2^12 pages apart = 16 MB apart.
	a := uint32(dataBase)
	b := a + (1 << 24)
	f := e.hv.Phys.AllocFrames(e.dom0.ID, 2)
	e.dom0.AS.MapRange(b, f, 2)

	m := e.hv.Meter
	t1, err := e.sv.SlowPath(m, a)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := e.sv.SlowPath(m, b)
	if err != nil {
		t.Fatal(err)
	}
	if t1 == t2 {
		t.Fatal("collision produced identical mappings")
	}
	// b evicted a's entry; re-touching a must refill from the chain
	// (cheap) and keep the original mapping.
	before := e.sv.FirstTouches
	t1b, err := e.sv.SlowPath(m, a)
	if err != nil {
		t.Fatal(err)
	}
	if t1b != t1 {
		t.Errorf("refill changed mapping: %#x -> %#x", t1, t1b)
	}
	if e.sv.FirstTouches != before {
		t.Error("refill performed a fresh mapping")
	}
	if e.sv.ChainRefills == 0 {
		t.Error("chain refill not counted")
	}
}

func TestTwoPageMappingForStraddle(t *testing.T) {
	e := newEnv(t, "f:\n\tret\n", rewrite.Options{})
	// Touch the first data page; an unaligned dword at its end must be
	// readable through the mapping without another slow path.
	addr := e.dataBase + mem.PageSize - 2
	if err := e.dom0.AS.Store(addr, 4, 0xCAFEBABE); err != nil {
		t.Fatal(err)
	}
	tr, err := e.sv.SlowPath(e.hv.Meter, e.dataBase)
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.hv.HVSpace.Load(tr+mem.PageSize-2, 4)
	if err != nil {
		t.Fatalf("straddling read through mapping: %v", err)
	}
	if v != 0xCAFEBABE {
		t.Errorf("straddle = %#x", v)
	}
}

func TestIdentityInstance(t *testing.T) {
	hv := xen.New()
	dom0 := hv.CreateDomain(mem.OwnerDom0, "dom0")
	// Identity table lives in dom0 memory.
	frames := hv.Phys.AllocFrames(dom0.ID, svm.TableBytes/mem.PageSize)
	dom0.AS.MapRange(0xC0600000, frames, svm.TableBytes/mem.PageSize)
	sv, err := svm.New(hv, dom0, dom0.AS, 0xC0600000, true)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sv.SlowPath(hv.Meter, 0xC0123456)
	if err != nil || tr != 0xC0123456 {
		t.Errorf("identity slow path = %#x, %v", tr, err)
	}
	tag, xd, _ := sv.LookupSim(0xC0123456)
	if tag != 0xC0123000 || xd != 0 {
		t.Errorf("identity entry = %#x/%#x", tag, xd)
	}
}

// --- Execution equivalence: original in dom0 vs rewritten in guest context ---

func TestEquivLoadStoreArith(t *testing.T) {
	checkEquivalent(t, `
f:
	movl	(%esi), %eax
	addl	4(%esi), %eax
	movl	%eax, 8(%esi)
	movzbl	2(%esi), %ecx
	addl	%ecx, %eax
	incl	12(%esi)
	notl	16(%esi)
	xorl	%edx, %edx
	movl	counter, %edx
	addl	$3, %edx
	movl	%edx, counter
	ret
	.data
buf:
	.space	64
counter:
	.long	100
`, "f", 42)
}

func TestEquivRMWAndFlags(t *testing.T) {
	checkEquivalent(t, `
f:
	movl	$3, %ecx
	cmpl	$5, %ecx
	movl	%ecx, (%esi)       # flags must survive this store
	jb	.Lsmall
	movl	$111, %eax
	ret
.Lsmall:
	movl	$222, %eax
	addl	%eax, 4(%esi)
	adcl	$0, 8(%esi)        # consumes CF from the add
	ret
`, "f", 7)
}

func TestEquivStringCopy(t *testing.T) {
	checkEquivalent(t, `
f:
	movl	$600, %ecx          # 2400 bytes: crosses page boundaries
	rep; movsl
	movl	$57, %eax
	ret
`, "f", 3)
}

func TestEquivStringFill(t *testing.T) {
	checkEquivalent(t, `
f:
	movl	$0xAB, %eax
	movl	$3000, %ecx
	rep; stosb
	movsb
	movsw
	movsl
	lodsl
	ret
`, "f", 9)
}

func TestEquivCmpsScasSingle(t *testing.T) {
	checkEquivalent(t, `
f:
	cmpsl
	sete	(%esi)
	scasb
	setb	1(%esi)
	ret
`, "f", 11)
}

func TestEquivPushPopMem(t *testing.T) {
	checkEquivalent(t, `
f:
	pushl	(%esi)
	pushl	4(%esi)
	popl	8(%esi)
	popl	12(%esi)
	movl	16(%esi), %eax
	ret
`, "f", 13)
}

func TestEquivIndirectCall(t *testing.T) {
	checkEquivalent(t, `
f:
	movl	$helper, %eax
	movl	%eax, fptr
	pushl	$5
	call	*fptr
	addl	$4, %esp
	movl	%eax, (%esi)
	ret

helper:
	movl	4(%esp), %eax
	imull	$9, %eax
	ret

	.data
fptr:
	.long	0
`, "f", 17)
}

func TestEquivLoopOverArray(t *testing.T) {
	checkEquivalent(t, `
sum:
	movl	$64, %ecx
	xorl	%eax, %eax
	movl	%esi, %edx
.Ltop:
	addl	(%edx), %eax
	addl	$4, %edx
	decl	%ecx
	jne	.Ltop
	movl	%eax, result
	ret
	.data
result:
	.long	0
`, "sum", 23)
}

func TestEquivForceSpill(t *testing.T) {
	// Same program, rewritten with forced spilling: results must still be
	// identical (the ablation changes cost, not semantics).
	src := `
f:
	movl	(%esi), %eax
	addl	4(%esi), %ebx
	movl	%ebx, 8(%esi)
	pushl	12(%esi)
	popl	16(%esi)
	movl	$300, %ecx
	rep; movsl
	ret
`
	e := newEnv(t, src, rewrite.Options{ForceSpill: true})
	init := e.snapshot(t)
	vm := e.runVM(t, "f", 31)
	if vm.err != nil {
		t.Fatalf("vm: %v", vm.err)
	}
	e.restore(t, init)
	hvr := e.runHV(t, "f", 31)
	if hvr.err != nil {
		t.Fatalf("hv: %v", hvr.err)
	}
	if vm.regs != hvr.regs || !bytes.Equal(vm.data, hvr.data) {
		t.Error("force-spill rewrite diverged from original")
	}
}

// --- Safety: the rewritten instance cannot escape dom0 memory ---

func TestSafetyWildWriteAborts(t *testing.T) {
	src := `
evil:
	movl	$0xF1000000, %eax   # hypervisor driver code region
	movl	$0x41414141, (%eax)
	ret
`
	e := newEnv(t, src, rewrite.Options{})
	res := e.runHV(t, "evil", 1)
	if !cpu.IsFault(res.err, cpu.FaultProtection) {
		t.Fatalf("wild write: err = %v, want protection fault", res.err)
	}
	// The VM instance in dom0 performs the same wild write and (without
	// SVM protection, running at dom0 trust) faults differently or
	// corrupts dom0 — but the hypervisor stays intact either way. Verify
	// hypervisor memory unchanged where the write aimed.
	in, _, ok := e.hv.CPU.Images()[1].At(0xF1000000)
	if ok && in == nil {
		t.Error("hypervisor image damaged")
	}
}

func TestSafetyGuestMemoryDenied(t *testing.T) {
	// domU-owned memory must not be accessible to the driver even though
	// the driver executes in domU's address-space context.
	src := `
evil:
	movl	$0xB0000000, %eax
	movl	(%eax), %ebx
	ret
`
	e := newEnv(t, src, rewrite.Options{})
	f := e.hv.Phys.AllocFrame(e.domU.ID)
	e.domU.AS.Map(0xB0000000/mem.PageSize, f)
	res := e.runHV(t, "evil", 1)
	if !cpu.IsFault(res.err, cpu.FaultProtection) {
		t.Fatalf("guest memory access: err = %v, want protection fault", res.err)
	}
}

func TestSafetyQuickRandomAddresses(t *testing.T) {
	e := newEnv(t, `
probe:
	movl	(%eax), %ebx
	ret
`, rewrite.Options{})
	fn := func(addr uint32) bool {
		c := e.hv.CPU
		c.AS = e.domU.AS
		c.Regs[isa.ESP] = e.hvStack
		c.Regs[isa.EAX] = addr
		entry, _ := e.hvIm.FuncEntry("probe")
		_, err := c.Call(entry)
		inDom0Data := addr >= e.dataBase && addr+4 <= e.dataBase+e.dataSize+2*mem.PageSize
		if inDom0Data {
			return err == nil
		}
		// Outside dom0's mapped data: either a protection fault (the
		// usual case) or success if it happens to hit another dom0-owned
		// mapping (the stack region).
		inDom0Stack := addr >= 0xC0900000 && addr+4 <= 0xC0900000+16*mem.PageSize
		if inDom0Stack {
			return err == nil
		}
		// Everything else must fault: protection violation from SVM, or a
		// page fault for the page-straddle hole at a region boundary.
		return err != nil
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// --- Randomized equivalence (property test over generated programs) ---

func TestQuickRandomProgramEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genProgram(r)
		e := newEnv(t, src, rewrite.Options{})
		init := e.snapshot(t)
		vm := e.runVM(t, "f", seed)
		e.restore(t, init)
		hvr := e.runHV(t, "f", seed)
		if (vm.err == nil) != (hvr.err == nil) {
			t.Logf("seed %d: err mismatch vm=%v hv=%v\n%s", seed, vm.err, hvr.err, src)
			return false
		}
		if vm.err != nil {
			return true // both faulted (e.g. generated division edge)
		}
		if vm.ret != hvr.ret || vm.regs != hvr.regs || !bytes.Equal(vm.data, hvr.data) {
			t.Logf("seed %d: divergence\nvm.regs=%x hv.regs=%x\n%s", seed, vm.regs, hvr.regs, src)
			return false
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// genProgram emits a random straight-line-plus-strings function operating
// on the data region pointed to by ESI/EDI. All offsets stay within the
// region, so the only faults possible are arithmetic ones.
func genProgram(r *rand.Rand) string {
	var b bytes.Buffer
	b.WriteString("f:\n")
	regs := []string{"%eax", "%ebx", "%ecx", "%edx"}
	reg := func() string { return regs[r.Intn(len(regs))] }
	memop := func() string {
		base := []string{"%esi", "%edi"}[r.Intn(2)]
		off := r.Intn(480) * 4
		if r.Intn(3) == 0 {
			return "buf" // absolute
		}
		return itoa(off) + "(" + base + ")"
	}
	ops2 := []string{"movl", "addl", "subl", "andl", "orl", "xorl", "cmpl", "testl"}
	n := 6 + r.Intn(18)
	for i := 0; i < n; i++ {
		switch r.Intn(10) {
		case 0, 1, 2, 3:
			op := ops2[r.Intn(len(ops2))]
			if r.Intn(2) == 0 {
				b.WriteString("\t" + op + "\t" + memop() + ", " + reg() + "\n")
			} else {
				b.WriteString("\t" + op + "\t" + reg() + ", " + memop() + "\n")
			}
		case 4:
			b.WriteString("\tmovl\t$" + itoa(r.Intn(1<<20)) + ", " + reg() + "\n")
		case 5:
			b.WriteString("\t" + []string{"incl", "decl", "notl"}[r.Intn(3)] + "\t" + memop() + "\n")
		case 6:
			b.WriteString("\tmovzbl\t" + memop() + ", " + reg() + "\n")
		case 7:
			b.WriteString("\tpushl\t" + memop() + "\n\tpopl\t" + memop() + "\n")
		case 8:
			// Bounded rep copy within the region; keep src/dst fixed
			// (esi/edi already point 2048 apart).
			b.WriteString("\tmovl\t$" + itoa(1+r.Intn(120)) + ", %ecx\n\trep; movsl\n")
			b.WriteString("\tmovl\t$" + itoa(dataBase) + ", %esi\n")
			b.WriteString("\tmovl\t$" + itoa(dataBase+2048) + ", %edi\n")
		case 9:
			b.WriteString("\tmovl\t$" + itoa(1+r.Intn(200)) + ", %ecx\n\trep; stosb\n")
			b.WriteString("\tmovl\t$" + itoa(dataBase+2048) + ", %edi\n")
		}
	}
	b.WriteString("\tret\n\t.data\nbuf:\n\t.space\t8192\n")
	return b.String()
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var d []byte
	for v > 0 {
		d = append([]byte{byte('0' + v%10)}, d...)
		v /= 10
	}
	if neg {
		return "-" + string(d)
	}
	return string(d)
}
