// Package svm implements the Software Virtual Memory runtime of
// TwinDrivers (§4.1 of the paper): the software translation table (stlb)
// that rewritten driver code consults inline, and the slow path that
// validates first-touch accesses, maps dom0 pages into the hypervisor, and
// fills the table.
//
// The stlb is a 4096-entry direct-indexed hash table living in simulated
// memory. Each 8-byte entry holds
//
//	+0  tag     : dom0 virtual page base address (addr & 0xfffff000)
//	+4  xordiff : tag XOR hypervisor-mapped page base address
//
// so the rewritten fast path (Figure 4) computes the translated address as
// addr XOR xordiff — one table load after the tag compare. Invalid entries
// carry an all-ones tag, which can never equal a page base.
//
// On a miss the slow path checks the hash-chain backing store (collisions),
// then — for a first touch — verifies the page belongs to the driver
// domain, maps *two consecutive* dom0 pages into the hypervisor window
// (unaligned accesses may straddle a page), and refills the entry. An
// access to any other address is a protection violation that aborts the
// driver: this is the memory-safety property of the whole system.
package svm

import (
	"twindrivers/internal/cpu"
	"twindrivers/internal/cycles"
	"twindrivers/internal/mem"
	"twindrivers/internal/xen"
)

// Table geometry. The paper: "we use an stlb hashtable with 4096 entries,
// mapping up to 16MB of dom0 virtual memory". The size is configurable for
// the stlb-size ablation; the rewriter's generated index mask must match.
const (
	NumEntries = 4096
	EntrySize  = 8
	TableBytes = NumEntries * EntrySize

	// IndexShift derives the entry byte offset from an address:
	// offset = (addr & ((entries-1)<<12)) >> 9 — the low bits of the page
	// number, times 8. Mirrored by the rewriter (Figure 4, lines 5-6).
	IndexShift = 9

	invalidTag = 0xFFFFFFFF
)

// Slow-path cycle prices (charged to the component that is executing —
// normally the driver bucket, since SVM overhead is driver overhead in the
// paper's profiles).
const (
	costChainHit  = 45  // hash-chain lookup on collision refill
	costFirstMap  = 380 // permission check + two page mappings + fill
	costViolation = 120 // detection before abort
)

// SVM is one software-virtual-memory instance: the hypervisor driver gets
// a translating instance; the VM driver instance in dom0 gets an identity
// instance ("the stlb table for the VM driver instance is filled with
// identity mappings", §5.1.2).
type SVM struct {
	HV  *xen.Hypervisor
	Dom *xen.Domain // the domain whose memory the driver may touch (dom0)

	// TableAddr is the simulated-memory address of the stlb table (in the
	// hypervisor region for the hypervisor instance, in dom0's kernel heap
	// for the identity instance).
	TableAddr uint32

	// TableSpace is the address space used to manipulate the table.
	TableSpace *mem.AddressSpace

	// Identity makes Fill map every page to itself without permission
	// checks (the VM instance runs at dom0's own trust level).
	Identity bool

	// Entries is the table size (a power of two).
	Entries int

	// chains backs the hash table: vpn -> hypervisor page base. Entries
	// evicted from the table by collisions survive here and are refilled
	// cheaply.
	chains map[uint32]uint32

	// Statistics.
	FirstTouches uint64
	ChainRefills uint64
	Violations   uint64
}

// New creates an SVM instance with the paper's 4096-entry table at
// tableAddr inside space (the caller must have reserved TableBytes).
func New(hv *xen.Hypervisor, dom *xen.Domain, space *mem.AddressSpace, tableAddr uint32, identity bool) (*SVM, error) {
	return NewSized(hv, dom, space, tableAddr, NumEntries, identity)
}

// NewSized creates an SVM instance with a custom table size (power of two;
// the caller must have reserved entries*EntrySize bytes and must rewrite
// the driver with a matching index mask).
func NewSized(hv *xen.Hypervisor, dom *xen.Domain, space *mem.AddressSpace, tableAddr uint32, entries int, identity bool) (*SVM, error) {
	s := &SVM{
		HV: hv, Dom: dom,
		TableAddr: tableAddr, TableSpace: space,
		Identity: identity,
		Entries:  entries,
		chains:   make(map[uint32]uint32),
	}
	for i := uint32(0); i < uint32(entries); i++ {
		if err := space.Store(tableAddr+i*EntrySize, 4, invalidTag); err != nil {
			return nil, err
		}
		if err := space.Store(tableAddr+i*EntrySize+4, 4, 0); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// entryOffset returns the byte offset of the stlb entry for addr.
func (s *SVM) entryOffset(addr uint32) uint32 {
	mask := uint32(s.Entries-1) << 12
	return (addr & mask) >> IndexShift
}

// fillEntry installs tag/xordiff for addr -> hvPage.
func (s *SVM) fillEntry(addr, hvPage uint32) error {
	off := s.entryOffset(addr)
	tag := addr &^ uint32(mem.PageMask)
	if err := s.TableSpace.Store(s.TableAddr+off, 4, tag); err != nil {
		return err
	}
	return s.TableSpace.Store(s.TableAddr+off+4, 4, tag^hvPage)
}

// SlowPath translates a dom0 virtual address on an stlb fast-path miss.
// It returns the translated address (hypervisor mapping for a translating
// instance; the address itself for an identity instance). Illegal accesses
// return a FaultProtection — the abort demanded by §4.1.
func (s *SVM) SlowPath(meter *cycles.Meter, addr uint32) (uint32, error) {
	vpn := addr / mem.PageSize

	if s.Identity {
		meter.Add(costChainHit)
		if err := s.fillEntry(addr, addr&^uint32(mem.PageMask)); err != nil {
			return 0, err
		}
		s.chains[vpn] = addr &^ uint32(mem.PageMask)
		return addr, nil
	}

	if hvPage, ok := s.chains[vpn]; ok {
		// Hash collision evicted the entry; refill from the chain.
		s.ChainRefills++
		meter.Add(costChainHit)
		if err := s.fillEntry(addr, hvPage); err != nil {
			return 0, err
		}
		return hvPage | (addr & mem.PageMask), nil
	}

	// First touch: permission check, then map two consecutive pages.
	frame, ok := s.Dom.AS.LookupLocal(vpn)
	if !ok || s.HV.Phys.FrameOwner(frame) != s.Dom.ID {
		s.Violations++
		meter.Add(costViolation)
		return 0, &cpu.Fault{
			Kind: cpu.FaultProtection,
			Addr: addr,
			Msg:  "SVM: access outside " + s.Dom.Name + " address space",
		}
	}
	s.FirstTouches++
	meter.Add(costFirstMap)

	hvPage, err := s.HV.MapIntoHV(frame)
	if err != nil {
		return 0, err
	}
	// Second consecutive page, if dom0 maps one it owns; otherwise the
	// window keeps a hole and a straddling access faults (matching the
	// real system, where the second map would also fail).
	if f2, ok := s.Dom.AS.LookupLocal(vpn + 1); ok && s.HV.Phys.FrameOwner(f2) == s.Dom.ID {
		if _, err := s.HV.MapIntoHV(f2); err != nil {
			return 0, err
		}
	} else {
		if _, err := s.HV.MapIntoHV(0); err != nil { // burn the slot to keep pairs consecutive
			return 0, err
		}
		s.HV.HVSpace.Unmap((hvPage + mem.PageSize) / mem.PageSize)
	}
	s.chains[vpn] = hvPage
	if err := s.fillEntry(addr, hvPage); err != nil {
		return 0, err
	}
	return hvPage | (addr & mem.PageMask), nil
}

// Translate is the explicit-translation entry point used by the
// hypervisor's native support routines ("the support routines ... make use
// of the stlb translation table explicitly while accessing driver data in
// dom0 address space", §4.3). It consults the chain map first (the warm
// case) and falls back to the slow path.
func (s *SVM) Translate(meter *cycles.Meter, addr uint32) (uint32, error) {
	if s.Identity {
		return addr, nil
	}
	if hvPage, ok := s.chains[addr/mem.PageSize]; ok {
		return hvPage | (addr & mem.PageMask), nil
	}
	return s.SlowPath(meter, addr)
}

// MappedPages returns how many dom0 pages are currently mapped.
func (s *SVM) MappedPages() int { return len(s.chains) }

// LookupSim reads the stlb entry for addr out of simulated memory,
// returning (tag, xordiff). Test helper and debugging aid.
func (s *SVM) LookupSim(addr uint32) (uint32, uint32, error) {
	off := s.entryOffset(addr)
	tag, err := s.TableSpace.Load(s.TableAddr+off, 4)
	if err != nil {
		return 0, 0, err
	}
	xd, err := s.TableSpace.Load(s.TableAddr+off+4, 4)
	if err != nil {
		return 0, 0, err
	}
	return tag, xd, nil
}
