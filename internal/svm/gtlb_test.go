package svm

import (
	"testing"

	"twindrivers/internal/cpu"
	"twindrivers/internal/mem"
	"twindrivers/internal/xen"
)

// TestGuestTLBHitMissViolation: a first translation walks the guest page
// table (miss), a second hits the cache; addresses outside the guest's own
// RAM — unmapped pages, another owner's frames, the hypervisor region
// reachable through the global mapping — are violations that never
// translate.
func TestGuestTLBHitMissViolation(t *testing.T) {
	hv := xen.New()
	g := hv.CreateDomain(1, "domU")
	other := hv.CreateDomain(2, "domU2")
	// Disjoint heap regions, as the machine builder assigns them: a guest
	// virtual address must name exactly one owning domain.
	other.HeapBase = xen.GuestKernelBase + xen.GuestHeapStride
	buf := hv.AllocHeap(g, 2*mem.PageSize)
	otherBuf := hv.AllocHeap(other, mem.PageSize)
	hvPage := hv.AllocHVPages(1)

	tlb := NewGuestTLB(hv, g)
	meter := hv.Meter

	pa1, err := tlb.Translate(meter, buf+100)
	if err != nil {
		t.Fatal(err)
	}
	if tlb.Misses != 1 || tlb.Hits != 0 {
		t.Fatalf("first translate: hits=%d misses=%d", tlb.Hits, tlb.Misses)
	}
	// The translation must agree with the page table and preserve the
	// page offset.
	want, ok := g.AS.Translate(buf + 100)
	if !ok || pa1 != want {
		t.Fatalf("translate(%#x) = %#x, page table says %#x", buf+100, pa1, want)
	}
	if pa2, err := tlb.Translate(meter, buf+200); err != nil || pa2 != want+100 {
		t.Fatalf("cached translate: %#x, %v", pa2, err)
	}
	if tlb.Hits != 1 {
		t.Fatalf("second translate did not hit: hits=%d", tlb.Hits)
	}

	for name, addr := range map[string]uint32{
		"unmapped":     0x40,
		"other guest":  otherBuf,
		"hypervisor":   hvPage,
		"dom0 range":   xen.Dom0KernelBase + 64,
		"guest mapped": 0, // placeholder replaced below
	} {
		if name == "guest mapped" {
			continue
		}
		if _, err := tlb.Translate(meter, addr); err == nil {
			t.Errorf("%s address %#x translated", name, addr)
		} else if f, ok := err.(*cpu.Fault); !ok || f.Kind != cpu.FaultProtection {
			t.Errorf("%s address: fault %v, want FaultProtection", name, err)
		}
	}
	if tlb.Violations != 4 {
		t.Errorf("violations = %d, want 4", tlb.Violations)
	}

	// Invalidate drops the cache: the next translate misses again.
	if tlb.Cached() == 0 {
		t.Fatal("nothing cached before invalidate")
	}
	tlb.Invalidate()
	if tlb.Cached() != 0 {
		t.Fatal("invalidate left entries cached")
	}
	misses := tlb.Misses
	if _, err := tlb.Translate(meter, buf); err != nil {
		t.Fatal(err)
	}
	if tlb.Misses != misses+1 {
		t.Fatal("post-invalidate translate did not walk")
	}
}

// TestGuestTLBChargesMeter: hits and misses charge their prices to the
// hypervisor bucket (translating posted addresses is hypervisor work).
func TestGuestTLBChargesMeter(t *testing.T) {
	hv := xen.New()
	g := hv.CreateDomain(1, "domU")
	buf := hv.AllocHeap(g, mem.PageSize)
	tlb := NewGuestTLB(hv, g)

	before := hv.Meter.Total()
	if _, err := tlb.Translate(hv.Meter, buf); err != nil {
		t.Fatal(err)
	}
	missCost := hv.Meter.Total() - before
	before = hv.Meter.Total()
	if _, err := tlb.Translate(hv.Meter, buf+8); err != nil {
		t.Fatal(err)
	}
	hitCost := hv.Meter.Total() - before
	if missCost != costGtlbMiss || hitCost != costGtlbHit {
		t.Fatalf("miss charged %d (want %d), hit charged %d (want %d)",
			missCost, costGtlbMiss, hitCost, costGtlbHit)
	}
	if hitCost >= missCost {
		t.Fatal("a hit must be cheaper than a miss")
	}
}
