package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAllocAndOwnership(t *testing.T) {
	p := NewPhysical()
	f0 := p.AllocFrame(OwnerDom0)
	f1 := p.AllocFrame(OwnerHypervisor)
	f2 := p.AllocFrame(Owner(3))
	if p.FrameOwner(f0) != OwnerDom0 || p.FrameOwner(f1) != OwnerHypervisor || p.FrameOwner(f2) != Owner(3) {
		t.Error("frame owners wrong")
	}
	if p.FrameOwner(9999) != OwnerNone {
		t.Error("unallocated frame should have OwnerNone")
	}
	p.SetFrameOwner(f0, Owner(5))
	if p.FrameOwner(f0) != Owner(5) {
		t.Error("SetFrameOwner failed")
	}
}

func TestContiguousAlloc(t *testing.T) {
	p := NewPhysical()
	first := p.AllocFrames(OwnerDom0, 8)
	for i := uint32(0); i < 8; i++ {
		if p.FrameOwner(first+i) != OwnerDom0 {
			t.Fatalf("frame %d not allocated", first+i)
		}
	}
}

func TestLoadStoreSizes(t *testing.T) {
	p := NewPhysical()
	as := NewAddressSpace("t", p, nil)
	f := p.AllocFrame(OwnerDom0)
	as.Map(0x10, f) // vaddr 0x10000

	if err := as.Store(0x10000, 4, 0xAABBCCDD); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		off, size, want uint32
	}{
		{0, 4, 0xAABBCCDD}, {0, 2, 0xCCDD}, {2, 2, 0xAABB},
		{0, 1, 0xDD}, {1, 1, 0xCC}, {3, 1, 0xAA},
	} {
		v, err := as.Load(0x10000+c.off, c.size)
		if err != nil {
			t.Fatal(err)
		}
		if v != c.want {
			t.Errorf("load(+%d, %d) = %#x, want %#x", c.off, c.size, v, c.want)
		}
	}
}

func TestPageStraddlingAccess(t *testing.T) {
	p := NewPhysical()
	as := NewAddressSpace("t", p, nil)
	f := p.AllocFrames(OwnerDom0, 2)
	as.MapRange(0x10000, f, 2)
	// Write a dword across the page boundary.
	addr := uint32(0x10000 + PageSize - 2)
	if err := as.Store(addr, 4, 0x11223344); err != nil {
		t.Fatal(err)
	}
	v, err := as.Load(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x11223344 {
		t.Errorf("straddle = %#x", v)
	}
	// Bytes landed on both frames.
	lo, _ := as.Load(0x10000+PageSize-1, 1)
	hi, _ := as.Load(0x10000+PageSize, 1)
	if lo != 0x33 || hi != 0x22 {
		t.Errorf("split bytes: %#x %#x", lo, hi)
	}
}

func TestPageFaultDetail(t *testing.T) {
	p := NewPhysical()
	as := NewAddressSpace("guest", p, nil)
	_, err := as.Load(0xDEAD0000, 4)
	pf, ok := err.(*PageFault)
	if !ok || pf.Addr != 0xDEAD0000 || pf.Space != "guest" || pf.Write {
		t.Errorf("fault = %+v", err)
	}
	err = as.Store(0xBEEF0000, 4, 1)
	pf, ok = err.(*PageFault)
	if !ok || !pf.Write {
		t.Errorf("write fault = %+v", err)
	}
}

func TestGlobalSpaceChaining(t *testing.T) {
	p := NewPhysical()
	hv := NewAddressSpace("xen", p, nil)
	guest := NewAddressSpace("domU", p, hv)

	hf := p.AllocFrame(OwnerHypervisor)
	hv.Map(0xF0000, hf) // hypervisor page, visible everywhere
	gf := p.AllocFrame(Owner(1))
	guest.Map(0x100, gf)

	if err := hv.Store(0xF0000000, 4, 42); err != nil {
		t.Fatal(err)
	}
	// Visible through the guest space without a local mapping.
	v, err := guest.Load(0xF0000000, 4)
	if err != nil || v != 42 {
		t.Errorf("global mapping through guest: %v %v", v, err)
	}
	// Guest-local pages are not visible in other spaces.
	other := NewAddressSpace("domV", p, hv)
	if _, err := other.Load(0x100000, 4); err == nil {
		t.Error("guest-local page leaked into another space")
	}
	// Local mapping shadows global.
	sf := p.AllocFrame(Owner(1))
	guest.Map(0xF0000, sf)
	if err := guest.Store(0xF0000000, 4, 7); err != nil {
		t.Fatal(err)
	}
	hvv, _ := hv.Load(0xF0000000, 4)
	if hvv != 42 {
		t.Error("local mapping failed to shadow global")
	}
}

func TestMMIORouting(t *testing.T) {
	p := NewPhysical()
	dev := &recordingMMIO{}
	first := p.ClaimMMIO(OwnerDom0, 2, dev)
	as := NewAddressSpace("t", p, nil)
	as.MapRange(0x40000, first, 2)

	if err := as.Store(0x40010, 4, 0x1234); err != nil {
		t.Fatal(err)
	}
	if len(dev.writes) != 1 || dev.writes[0] != [3]uint32{0x10, 4, 0x1234} {
		t.Errorf("writes = %v", dev.writes)
	}
	// Second page routes with region-relative offset.
	if err := as.Store(0x40000+PageSize+8, 2, 7); err != nil {
		t.Fatal(err)
	}
	if dev.writes[1][0] != PageSize+8 {
		t.Errorf("second page offset = %#x", dev.writes[1][0])
	}
	dev.readVal = 0x99
	v, err := as.Load(0x40020, 4)
	if err != nil || v != 0x99 {
		t.Errorf("mmio read = %#x, %v", v, err)
	}
	if !p.IsMMIO(first) || p.IsMMIO(first+2) {
		t.Error("IsMMIO wrong")
	}
}

type recordingMMIO struct {
	writes  [][3]uint32
	readVal uint32
}

func (r *recordingMMIO) MMIORead(off, size uint32) uint32 { return r.readVal }
func (r *recordingMMIO) MMIOWrite(off, size, val uint32) {
	r.writes = append(r.writes, [3]uint32{off, size, val})
}

func TestCopyBetweenSpaces(t *testing.T) {
	p := NewPhysical()
	a := NewAddressSpace("a", p, nil)
	b := NewAddressSpace("b", p, nil)
	fa := p.AllocFrames(Owner(1), 2)
	fb := p.AllocFrames(Owner(2), 2)
	a.MapRange(0x10000, fa, 2)
	b.MapRange(0x20000, fb, 2)

	payload := make([]byte, 3000) // crosses a page in both spaces
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := a.WriteBytes(0x10800, payload); err != nil {
		t.Fatal(err)
	}
	if err := Copy(b, 0x20100, a, 0x10800, len(payload)); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadBytes(0x20100, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("copy corrupted data")
	}
}

// Property: for any offset/size combination within a two-page window,
// store-then-load round-trips the value.
func TestQuickLoadStoreRoundTrip(t *testing.T) {
	p := NewPhysical()
	as := NewAddressSpace("t", p, nil)
	f := p.AllocFrames(OwnerDom0, 2)
	as.MapRange(0x10000, f, 2)
	fn := func(off uint16, sz uint8, val uint32) bool {
		size := uint32(1 << (sz % 3)) // 1, 2, 4
		addr := 0x10000 + uint32(off)%(2*PageSize-4)
		if err := as.Store(addr, size, val); err != nil {
			return false
		}
		v, err := as.Load(addr, size)
		if err != nil {
			return false
		}
		mask := uint32(0xFFFFFFFF)
		if size < 4 {
			mask = 1<<(8*size) - 1
		}
		return v == val&mask
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}
