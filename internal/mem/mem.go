// Package mem models the physical and virtual memory of the simulated
// machine: a physical frame pool with per-frame ownership, per-domain page
// tables (address spaces), and memory-mapped I/O regions.
//
// Frame ownership is what TwinDrivers' SVM slow path checks when the
// hypervisor driver touches a page for the first time: "if the access is
// permitted (i.e., the memory page belongs to dom0 address space)" (§4.1).
// Address spaces support a shared global region — the hypervisor mapping
// present in every guest context — which is what lets the hypervisor driver
// run without an address-space switch.
package mem

import "fmt"

// PageSize is the size of a page/frame in bytes.
const PageSize = 4096

// PageMask masks the offset within a page.
const PageMask = PageSize - 1

// Owner identifies the owner of a physical frame. By convention the
// hypervisor is OwnerHypervisor, dom0 is 0, and guests are positive.
type Owner int

// Reserved owners.
const (
	OwnerNone       Owner = -2
	OwnerHypervisor Owner = -1
	OwnerDom0       Owner = 0
)

// MMIO is implemented by devices that claim physical frames. Accesses to
// such frames bypass RAM and are routed to the device. Offsets are relative
// to the start of the claimed region.
type MMIO interface {
	MMIORead(off uint32, size uint32) uint32
	MMIOWrite(off uint32, size uint32, val uint32)
}

// Physical is the machine's physical memory: a frame pool plus MMIO
// routing.
type Physical struct {
	frames    map[uint32]*[PageSize]byte // frame number -> storage
	owners    map[uint32]Owner
	mmio      map[uint32]mmioEntry // frame number -> device
	nextFrame uint32
}

type mmioEntry struct {
	dev  MMIO
	base uint32 // first frame of the device's region
}

// NewPhysical returns an empty physical memory.
func NewPhysical() *Physical {
	return &Physical{
		frames:    make(map[uint32]*[PageSize]byte),
		owners:    make(map[uint32]Owner),
		mmio:      make(map[uint32]mmioEntry),
		nextFrame: 1, // frame 0 stays unused so a zero PTE is never valid
	}
}

// AllocFrame allocates a fresh zeroed frame owned by owner.
func (p *Physical) AllocFrame(owner Owner) uint32 {
	f := p.nextFrame
	p.nextFrame++
	p.frames[f] = new([PageSize]byte)
	p.owners[f] = owner
	return f
}

// AllocFrames allocates n physically contiguous frames.
func (p *Physical) AllocFrames(owner Owner, n int) uint32 {
	first := p.nextFrame
	for i := 0; i < n; i++ {
		p.AllocFrame(owner)
	}
	return first
}

// ClaimMMIO reserves n contiguous frames for a device and routes accesses
// to it. Returns the first frame number.
func (p *Physical) ClaimMMIO(owner Owner, n int, dev MMIO) uint32 {
	first := p.nextFrame
	for i := 0; i < n; i++ {
		f := p.nextFrame
		p.nextFrame++
		p.owners[f] = owner
		p.mmio[f] = mmioEntry{dev: dev, base: first}
	}
	return first
}

// FrameOwner returns the owner of a frame, or OwnerNone if unallocated.
func (p *Physical) FrameOwner(f uint32) Owner {
	if o, ok := p.owners[f]; ok {
		return o
	}
	return OwnerNone
}

// SetFrameOwner transfers frame ownership (grant-table style page transfer).
func (p *Physical) SetFrameOwner(f uint32, o Owner) {
	if _, ok := p.owners[f]; ok {
		p.owners[f] = o
	}
}

// IsMMIO reports whether a frame is device-mapped.
func (p *Physical) IsMMIO(f uint32) bool {
	_, ok := p.mmio[f]
	return ok
}

// FrameData returns the RAM storage of a frame (nil for MMIO/unallocated).
func (p *Physical) FrameData(f uint32) *[PageSize]byte { return p.frames[f] }

// readPhys reads size (1/2/4) bytes at physical address pa. The access must
// not cross a frame boundary.
func (p *Physical) readPhys(pa uint32, size uint32) (uint32, error) {
	f, off := pa/PageSize, pa&PageMask
	if e, ok := p.mmio[f]; ok {
		return e.dev.MMIORead((f-e.base)*PageSize+off, size), nil
	}
	fr := p.frames[f]
	if fr == nil {
		return 0, fmt.Errorf("mem: physical read of unallocated frame %#x", f)
	}
	var v uint32
	for i := uint32(0); i < size; i++ {
		v |= uint32(fr[off+i]) << (8 * i)
	}
	return v, nil
}

func (p *Physical) writePhys(pa uint32, size uint32, val uint32) error {
	f, off := pa/PageSize, pa&PageMask
	if e, ok := p.mmio[f]; ok {
		e.dev.MMIOWrite((f-e.base)*PageSize+off, size, val)
		return nil
	}
	fr := p.frames[f]
	if fr == nil {
		return fmt.Errorf("mem: physical write of unallocated frame %#x", f)
	}
	for i := uint32(0); i < size; i++ {
		fr[off+i] = byte(val >> (8 * i))
	}
	return nil
}

// PageFault reports a failed virtual memory access.
type PageFault struct {
	Space string
	Addr  uint32
	Write bool
}

func (e *PageFault) Error() string {
	kind := "read"
	if e.Write {
		kind = "write"
	}
	return fmt.Sprintf("mem: page fault: %s of %#08x in %s", kind, e.Addr, e.Space)
}

// AddressSpace is a virtual address space: a page table over Physical, with
// an optional shared global space consulted for pages the local table does
// not map (the hypervisor region present in every guest context).
type AddressSpace struct {
	Name   string
	Phys   *Physical
	Global *AddressSpace // nil for the hypervisor space itself

	pt map[uint32]uint32 // vpage -> frame
}

// NewAddressSpace returns an empty address space over phys.
func NewAddressSpace(name string, phys *Physical, global *AddressSpace) *AddressSpace {
	return &AddressSpace{Name: name, Phys: phys, Global: global, pt: make(map[uint32]uint32)}
}

// Map installs vpage -> frame.
func (as *AddressSpace) Map(vpage, frame uint32) {
	as.pt[vpage] = frame
}

// MapRange maps n consecutive pages starting at vaddr to consecutive frames
// starting at frame.
func (as *AddressSpace) MapRange(vaddr, frame uint32, n int) {
	vp := vaddr / PageSize
	for i := uint32(0); i < uint32(n); i++ {
		as.Map(vp+i, frame+i)
	}
}

// Unmap removes a mapping.
func (as *AddressSpace) Unmap(vpage uint32) {
	delete(as.pt, vpage)
}

// Lookup translates a virtual page to a frame, consulting the global space.
func (as *AddressSpace) Lookup(vpage uint32) (uint32, bool) {
	if f, ok := as.pt[vpage]; ok {
		return f, true
	}
	if as.Global != nil {
		return as.Global.Lookup(vpage)
	}
	return 0, false
}

// LookupLocal translates only through the local table (no global chaining).
func (as *AddressSpace) LookupLocal(vpage uint32) (uint32, bool) {
	f, ok := as.pt[vpage]
	return f, ok
}

// Translate converts a virtual address to a physical address.
func (as *AddressSpace) Translate(vaddr uint32) (uint32, bool) {
	f, ok := as.Lookup(vaddr / PageSize)
	if !ok {
		return 0, false
	}
	return f*PageSize + vaddr&PageMask, true
}

// Load reads size (1/2/4) bytes at vaddr, handling page-straddling accesses
// (the ISA permits unaligned access, which is why SVM maps two consecutive
// pages per stlb miss).
func (as *AddressSpace) Load(vaddr uint32, size uint32) (uint32, error) {
	if (vaddr&PageMask)+size <= PageSize {
		pa, ok := as.Translate(vaddr)
		if !ok {
			return 0, &PageFault{Space: as.Name, Addr: vaddr}
		}
		return as.Phys.readPhys(pa, size)
	}
	var v uint32
	for i := uint32(0); i < size; i++ {
		b, err := as.Load(vaddr+i, 1)
		if err != nil {
			return 0, err
		}
		v |= b << (8 * i)
	}
	return v, nil
}

// Store writes size (1/2/4) bytes at vaddr.
func (as *AddressSpace) Store(vaddr uint32, size uint32, val uint32) error {
	if (vaddr&PageMask)+size <= PageSize {
		pa, ok := as.Translate(vaddr)
		if !ok {
			return &PageFault{Space: as.Name, Addr: vaddr, Write: true}
		}
		return as.Phys.writePhys(pa, size, val)
	}
	for i := uint32(0); i < size; i++ {
		if err := as.Store(vaddr+i, 1, val>>(8*i)); err != nil {
			return err
		}
	}
	return nil
}

// ReadBytes copies n bytes starting at vaddr into a fresh slice.
func (as *AddressSpace) ReadBytes(vaddr uint32, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		b, err := as.Load(vaddr+uint32(i), 1)
		if err != nil {
			return nil, err
		}
		out[i] = byte(b)
	}
	return out, nil
}

// WriteBytes copies b into memory at vaddr.
func (as *AddressSpace) WriteBytes(vaddr uint32, b []byte) error {
	for i, x := range b {
		if err := as.Store(vaddr+uint32(i), 1, uint32(x)); err != nil {
			return err
		}
	}
	return nil
}

// Copy moves n bytes from (srcAS, src) to (dstAS, dst). The hypervisor uses
// this shape when moving packet payloads between guest buffers and dom0
// sk_buffs.
func Copy(dstAS *AddressSpace, dst uint32, srcAS *AddressSpace, src uint32, n int) error {
	// Page-chunked copy through physical frames for efficiency.
	for n > 0 {
		chunk := PageSize - int(src&PageMask)
		if c := PageSize - int(dst&PageMask); c < chunk {
			chunk = c
		}
		if chunk > n {
			chunk = n
		}
		spa, ok := srcAS.Translate(src)
		if !ok {
			return &PageFault{Space: srcAS.Name, Addr: src}
		}
		dpa, ok := dstAS.Translate(dst)
		if !ok {
			return &PageFault{Space: dstAS.Name, Addr: dst, Write: true}
		}
		sf, df := srcAS.Phys.FrameData(spa/PageSize), dstAS.Phys.FrameData(dpa/PageSize)
		if sf == nil || df == nil {
			// MMIO or unallocated: fall back to byte loop.
			for i := 0; i < chunk; i++ {
				v, err := srcAS.Load(src+uint32(i), 1)
				if err != nil {
					return err
				}
				if err := dstAS.Store(dst+uint32(i), 1, v); err != nil {
					return err
				}
			}
		} else {
			copy(df[dpa&PageMask:uint32(dpa&PageMask)+uint32(chunk)], sf[spa&PageMask:uint32(spa&PageMask)+uint32(chunk)])
		}
		src += uint32(chunk)
		dst += uint32(chunk)
		n -= chunk
	}
	return nil
}

// MappedPages returns the number of locally mapped pages.
func (as *AddressSpace) MappedPages() int { return len(as.pt) }
