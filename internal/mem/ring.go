package mem

import "fmt"

// Ring is a single-producer/single-consumer descriptor ring living in
// simulated memory, shared between a guest and the hypervisor. The guest
// stages packet descriptors (address, length) into the ring and crosses the
// virtualization boundary once per batch; the hypervisor drains it without
// any further transitions. This is the batched-hypercall analogue of the
// netfront/netback I/O channel: the ring contents are ordinary memory, so
// both sides can view it through their own address spaces mapping the same
// frames.
//
// Memory layout at Base (all 32-bit little-endian words):
//
//	+0   capacity (number of descriptor slots, power of two)
//	+4   head     (consumer index, free-running)
//	+8   tail     (producer index, free-running)
//	+12  reserved
//	+16  descriptors[capacity] of {addr u32, len u32}
//
// Head and tail are free-running counters; slot = index & (capacity-1),
// which is why the capacity must be a power of two.
type Ring struct {
	AS   *AddressSpace
	Base uint32

	capacity uint32
}

const (
	ringHdrBytes  = 16
	ringDescBytes = 8

	ringOffCap  = 0
	ringOffHead = 4
	ringOffTail = 8

	// MaxRingSlots bounds the slot count a ring may declare. The capacity
	// word lives in guest-writable memory, so the side attaching to an
	// already-formatted ring must not believe an arbitrary value: an
	// unbounded capacity lets a hostile guest make the consumer walk (and
	// allocate bookkeeping for) billions of descriptor slots.
	MaxRingSlots = 1 << 15
)

// ErrRingFull reports a Push onto a ring with no free slots.
var ErrRingFull = fmt.Errorf("mem: descriptor ring full")

// ErrRingCorrupt reports a ring whose guest-writable header no longer
// satisfies the producer/consumer invariant tail-head ∈ [0, capacity]. The
// header words are ordinary guest memory; a guest that scribbles them must
// not be able to make the hypervisor-side drain consume bogus descriptors
// or overwrite slots the consumer has not seen.
var ErrRingCorrupt = fmt.Errorf("mem: descriptor ring header corrupt")

// RingBytes returns the memory footprint of a ring with the given slot
// count.
func RingBytes(capacity int) uint32 {
	return ringHdrBytes + uint32(capacity)*ringDescBytes
}

// InitRing formats a ring of the given capacity (a power of two) at base in
// as and returns a view of it.
func InitRing(as *AddressSpace, base uint32, capacity int) (*Ring, error) {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("mem: ring capacity %d is not a power of two", capacity)
	}
	if capacity > MaxRingSlots {
		return nil, fmt.Errorf("mem: ring capacity %d exceeds the %d-slot bound", capacity, MaxRingSlots)
	}
	r := &Ring{AS: as, Base: base, capacity: uint32(capacity)}
	if err := as.Store(base+ringOffCap, 4, uint32(capacity)); err != nil {
		return nil, err
	}
	return r, r.Reset()
}

// AttachRing opens a view of an already-formatted ring at base — the other
// side of the boundary attaching through its own address space.
func AttachRing(as *AddressSpace, base uint32) (*Ring, error) {
	capacity, err := as.Load(base+ringOffCap, 4)
	if err != nil {
		return nil, err
	}
	if capacity == 0 || capacity&(capacity-1) != 0 || capacity > MaxRingSlots {
		return nil, fmt.Errorf("mem: no ring at %#x (capacity word %d)", base, capacity)
	}
	return &Ring{AS: as, Base: base, capacity: capacity}, nil
}

// Cap returns the slot count.
func (r *Ring) Cap() int { return int(r.capacity) }

// Len returns the number of staged, unconsumed descriptors. The head and
// tail words are guest-writable, so the count is validated before use:
// anything outside [0, capacity] is reported as ErrRingCorrupt rather than
// trusted (a scribbled header would otherwise make the consumer drain up
// to 2^32 bogus descriptors, or make Free go negative so Push overwrites
// unconsumed slots).
func (r *Ring) Len() (int, error) {
	head, err := r.AS.Load(r.Base+ringOffHead, 4)
	if err != nil {
		return 0, err
	}
	tail, err := r.AS.Load(r.Base+ringOffTail, 4)
	if err != nil {
		return 0, err
	}
	if n := tail - head; n <= r.capacity { // unsigned: negative wraps huge
		return int(n), nil
	}
	return 0, fmt.Errorf("%w: head=%d tail=%d capacity=%d", ErrRingCorrupt, head, tail, r.capacity)
}

// Free returns the number of free slots.
func (r *Ring) Free() (int, error) {
	n, err := r.Len()
	if err != nil {
		return 0, err
	}
	return int(r.capacity) - n, nil
}

// Push stages one descriptor; ErrRingFull if no slot is free.
func (r *Ring) Push(addr, n uint32) error {
	free, err := r.Free()
	if err != nil {
		return err
	}
	if free == 0 {
		return ErrRingFull
	}
	tail, err := r.AS.Load(r.Base+ringOffTail, 4)
	if err != nil {
		return err
	}
	slot := r.Base + ringHdrBytes + (tail&(r.capacity-1))*ringDescBytes
	if err := r.AS.Store(slot, 4, addr); err != nil {
		return err
	}
	if err := r.AS.Store(slot+4, 4, n); err != nil {
		return err
	}
	return r.AS.Store(r.Base+ringOffTail, 4, tail+1)
}

// Pop consumes the oldest descriptor; ok is false on an empty ring.
func (r *Ring) Pop() (addr, n uint32, ok bool, err error) {
	ln, err := r.Len()
	if err != nil {
		return 0, 0, false, err
	}
	if ln == 0 {
		return 0, 0, false, nil
	}
	head, err := r.AS.Load(r.Base+ringOffHead, 4)
	if err != nil {
		return 0, 0, false, err
	}
	slot := r.Base + ringHdrBytes + (head&(r.capacity-1))*ringDescBytes
	if addr, err = r.AS.Load(slot, 4); err != nil {
		return 0, 0, false, err
	}
	if n, err = r.AS.Load(slot+4, 4); err != nil {
		return 0, 0, false, err
	}
	if err = r.AS.Store(r.Base+ringOffHead, 4, head+1); err != nil {
		return 0, 0, false, err
	}
	return addr, n, true, nil
}

// ProducerSlot returns the slot index the next Push will fill (tail modulo
// capacity): producers that pair each descriptor with a per-slot staging
// buffer use it to pick the buffer before publishing.
func (r *Ring) ProducerSlot() (int, error) {
	tail, err := r.AS.Load(r.Base+ringOffTail, 4)
	if err != nil {
		return 0, err
	}
	return int(tail & (r.capacity - 1)), nil
}

// Discard empties the ring and returns how many staged, unconsumed
// descriptors were dropped — the accounting a supervisor needs when it
// tears down a faulted consumer (every staged frame is a lost packet, not
// a phantom delivery). A corrupt header still resets the ring, but the
// count is unknowable and reported as 0 alongside ErrRingCorrupt.
func (r *Ring) Discard() (int, error) {
	n, err := r.Len()
	if err != nil {
		rerr := r.Reset()
		if rerr != nil {
			return 0, rerr
		}
		return 0, err
	}
	return n, r.Reset()
}

// Reset discards all staged descriptors.
func (r *Ring) Reset() error {
	if err := r.AS.Store(r.Base+ringOffHead, 4, 0); err != nil {
		return err
	}
	return r.AS.Store(r.Base+ringOffTail, 4, 0)
}
