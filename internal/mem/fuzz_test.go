package mem

import (
	"errors"
	"testing"
)

// FuzzRingHostileHeader fuzzes the guest-writable ring header — the
// capacity, head and tail words plus a staged descriptor — the way a
// hostile or buggy guest would scribble them. The invariants under fuzz:
//
//   - no operation panics or walks unmapped memory;
//   - every accounting operation either succeeds with a count inside
//     [0, capacity] or reports ErrRingCorrupt;
//   - AttachRing refuses non-power-of-two or oversized capacity words;
//   - Discard always leaves the ring empty and usable again.
func FuzzRingHostileHeader(f *testing.F) {
	f.Add(uint32(8), uint32(0), uint32(0), uint32(0x1000), uint32(64))
	f.Add(uint32(8), uint32(3), uint32(7), uint32(0x2000), uint32(1500))
	f.Add(uint32(8), uint32(0xFFFFFFFF), uint32(0), uint32(0), uint32(0))
	f.Add(uint32(8), uint32(0), uint32(0xFFFFFFFF), uint32(0xdead), uint32(1<<31))
	f.Add(uint32(0), uint32(1), uint32(2), uint32(3), uint32(4))           // zero capacity
	f.Add(uint32(7), uint32(1), uint32(2), uint32(3), uint32(4))           // non power of two
	f.Add(uint32(1<<16), uint32(5), uint32(9), uint32(0x10000), uint32(9)) // beyond MaxRingSlots
	f.Add(uint32(4), uint32(100), uint32(90), uint32(1), uint32(2))        // tail behind head

	f.Fuzz(func(t *testing.T, capWord, head, tail, dAddr, dLen uint32) {
		phys := NewPhysical()
		as := NewAddressSpace("guest", phys, nil)
		frames := phys.AllocFrames(1, 3)
		base := uint32(0x10000)
		as.MapRange(base, frames, 3)
		r, err := InitRing(as, base, 8)
		if err != nil {
			t.Fatal(err)
		}
		// The guest scribbles every word it can reach.
		for off, val := range map[uint32]uint32{0: capWord, 4: head, 8: tail, 16: dAddr, 20: dLen} {
			if err := as.Store(base+off, 4, val); err != nil {
				t.Fatal(err)
			}
		}

		// Attach must vet the guest-written capacity word.
		att, err := AttachRing(as, base)
		if capWord == 0 || capWord&(capWord-1) != 0 || capWord > MaxRingSlots {
			if err == nil {
				t.Fatalf("AttachRing accepted hostile capacity %d", capWord)
			}
		} else if err != nil {
			t.Fatalf("AttachRing rejected valid capacity %d: %v", capWord, err)
		} else if att.Cap() != int(capWord) {
			t.Fatalf("attached cap %d != %d", att.Cap(), capWord)
		}

		// The original view's capacity is its own (trusted at InitRing
		// time); only head/tail are live guest input to it.
		checkCount := func(n int, err error) {
			if err != nil {
				if !errors.Is(err, ErrRingCorrupt) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			if n < 0 || n > r.Cap() {
				t.Fatalf("count %d outside [0,%d] without ErrRingCorrupt", n, r.Cap())
			}
		}
		checkCount(r.Len())
		checkCount(r.Free())
		if _, err := r.ProducerSlot(); err != nil {
			t.Fatalf("ProducerSlot: %v", err)
		}
		if err := r.Push(1, 2); err != nil && !errors.Is(err, ErrRingFull) && !errors.Is(err, ErrRingCorrupt) {
			t.Fatalf("Push: %v", err)
		}
		if _, _, _, err := r.Pop(); err != nil && !errors.Is(err, ErrRingCorrupt) {
			t.Fatalf("Pop: %v", err)
		}

		// Teardown always recovers the ring.
		if _, err := r.Discard(); err != nil && !errors.Is(err, ErrRingCorrupt) {
			t.Fatalf("Discard: %v", err)
		}
		if n, err := r.Len(); err != nil || n != 0 {
			t.Fatalf("ring not empty after Discard: n=%d err=%v", n, err)
		}
		if err := r.Push(0xAB, 0xCD); err != nil {
			t.Fatalf("ring unusable after Discard: %v", err)
		}
		if addr, n, ok, err := r.Pop(); err != nil || !ok || addr != 0xAB || n != 0xCD {
			t.Fatalf("post-Discard Pop = (%#x,%d,%v,%v)", addr, n, ok, err)
		}
	})
}
