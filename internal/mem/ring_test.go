package mem

import (
	"errors"
	"testing"
)

func ringSetup(t *testing.T, capacity int) (*Physical, *AddressSpace, *Ring) {
	t.Helper()
	phys := NewPhysical()
	as := NewAddressSpace("guest", phys, nil)
	frames := phys.AllocFrames(1, 2)
	as.MapRange(0x10000, frames, 2)
	r, err := InitRing(as, 0x10000, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return phys, as, r
}

func TestRingPushPop(t *testing.T) {
	_, _, r := ringSetup(t, 8)
	for i := uint32(0); i < 5; i++ {
		if err := r.Push(0x1000+i, 100+i); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := r.Len(); n != 5 {
		t.Fatalf("Len = %d, want 5", n)
	}
	for i := uint32(0); i < 5; i++ {
		addr, n, ok, err := r.Pop()
		if err != nil || !ok {
			t.Fatalf("Pop %d: ok=%v err=%v", i, ok, err)
		}
		if addr != 0x1000+i || n != 100+i {
			t.Errorf("Pop %d = (%#x, %d), want (%#x, %d)", i, addr, n, 0x1000+i, 100+i)
		}
	}
	if _, _, ok, _ := r.Pop(); ok {
		t.Error("Pop on empty ring reported ok")
	}
}

func TestRingFullAndWrap(t *testing.T) {
	_, _, r := ringSetup(t, 4)
	// Fill, drain, refill repeatedly so the free-running indices wrap
	// through the slot array several times.
	for round := 0; round < 10; round++ {
		for i := uint32(0); i < 4; i++ {
			if err := r.Push(uint32(round)<<8|i, i); err != nil {
				t.Fatalf("round %d push %d: %v", round, i, err)
			}
		}
		if err := r.Push(0xdead, 0); !errors.Is(err, ErrRingFull) {
			t.Fatalf("round %d: push on full ring = %v, want ErrRingFull", round, err)
		}
		for i := uint32(0); i < 4; i++ {
			addr, _, ok, err := r.Pop()
			if err != nil || !ok {
				t.Fatalf("round %d pop %d: ok=%v err=%v", round, i, ok, err)
			}
			if addr != uint32(round)<<8|i {
				t.Errorf("round %d pop %d = %#x", round, i, addr)
			}
		}
	}
}

func TestRingCapacityMustBePowerOfTwo(t *testing.T) {
	phys := NewPhysical()
	as := NewAddressSpace("g", phys, nil)
	as.MapRange(0, phys.AllocFrames(1, 1), 1)
	for _, bad := range []int{0, -1, 3, 12, 100} {
		if _, err := InitRing(as, 0, bad); err == nil {
			t.Errorf("InitRing(capacity=%d) succeeded", bad)
		}
	}
}

func TestRingAttachSharedView(t *testing.T) {
	// The producer formats the ring through one address space; the
	// consumer attaches through a second address space mapping the same
	// frames at a different virtual base — the guest↔hypervisor shape.
	phys := NewPhysical()
	guest := NewAddressSpace("guest", phys, nil)
	hvas := NewAddressSpace("xen", phys, nil)
	frames := phys.AllocFrames(1, 1)
	guest.MapRange(0xB0000000, frames, 1)
	hvas.MapRange(0xF4000000, frames, 1)

	prod, err := InitRing(guest, 0xB0000000, 8)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := AttachRing(hvas, 0xF4000000)
	if err != nil {
		t.Fatal(err)
	}
	if cons.Cap() != 8 {
		t.Fatalf("attached Cap = %d", cons.Cap())
	}
	if err := prod.Push(0x1234, 60); err != nil {
		t.Fatal(err)
	}
	addr, n, ok, err := cons.Pop()
	if err != nil || !ok || addr != 0x1234 || n != 60 {
		t.Fatalf("consumer Pop = (%#x, %d, %v, %v)", addr, n, ok, err)
	}
	// And the producer observes the consumption.
	if free, _ := prod.Free(); free != 8 {
		t.Errorf("producer Free = %d, want 8", free)
	}
}

func TestRingReset(t *testing.T) {
	_, _, r := ringSetup(t, 8)
	for i := 0; i < 3; i++ {
		if err := r.Push(1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Reset(); err != nil {
		t.Fatal(err)
	}
	if n, _ := r.Len(); n != 0 {
		t.Errorf("Len after Reset = %d", n)
	}
}

func TestRingAttachRejectsGarbage(t *testing.T) {
	phys := NewPhysical()
	as := NewAddressSpace("g", phys, nil)
	as.MapRange(0, phys.AllocFrames(1, 1), 1)
	if err := as.Store(0, 4, 12); err != nil { // not a power of two
		t.Fatal(err)
	}
	if _, err := AttachRing(as, 0); err == nil {
		t.Error("AttachRing on garbage succeeded")
	}
}
