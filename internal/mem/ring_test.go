package mem

import (
	"errors"
	"testing"
)

func ringSetup(t *testing.T, capacity int) (*Physical, *AddressSpace, *Ring) {
	t.Helper()
	phys := NewPhysical()
	as := NewAddressSpace("guest", phys, nil)
	frames := phys.AllocFrames(1, 2)
	as.MapRange(0x10000, frames, 2)
	r, err := InitRing(as, 0x10000, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return phys, as, r
}

func TestRingPushPop(t *testing.T) {
	_, _, r := ringSetup(t, 8)
	for i := uint32(0); i < 5; i++ {
		if err := r.Push(0x1000+i, 100+i); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := r.Len(); n != 5 {
		t.Fatalf("Len = %d, want 5", n)
	}
	for i := uint32(0); i < 5; i++ {
		addr, n, ok, err := r.Pop()
		if err != nil || !ok {
			t.Fatalf("Pop %d: ok=%v err=%v", i, ok, err)
		}
		if addr != 0x1000+i || n != 100+i {
			t.Errorf("Pop %d = (%#x, %d), want (%#x, %d)", i, addr, n, 0x1000+i, 100+i)
		}
	}
	if _, _, ok, _ := r.Pop(); ok {
		t.Error("Pop on empty ring reported ok")
	}
}

func TestRingFullAndWrap(t *testing.T) {
	_, _, r := ringSetup(t, 4)
	// Fill, drain, refill repeatedly so the free-running indices wrap
	// through the slot array several times.
	for round := 0; round < 10; round++ {
		for i := uint32(0); i < 4; i++ {
			if err := r.Push(uint32(round)<<8|i, i); err != nil {
				t.Fatalf("round %d push %d: %v", round, i, err)
			}
		}
		if err := r.Push(0xdead, 0); !errors.Is(err, ErrRingFull) {
			t.Fatalf("round %d: push on full ring = %v, want ErrRingFull", round, err)
		}
		for i := uint32(0); i < 4; i++ {
			addr, _, ok, err := r.Pop()
			if err != nil || !ok {
				t.Fatalf("round %d pop %d: ok=%v err=%v", round, i, ok, err)
			}
			if addr != uint32(round)<<8|i {
				t.Errorf("round %d pop %d = %#x", round, i, addr)
			}
		}
	}
}

func TestRingCapacityMustBePowerOfTwo(t *testing.T) {
	phys := NewPhysical()
	as := NewAddressSpace("g", phys, nil)
	as.MapRange(0, phys.AllocFrames(1, 1), 1)
	for _, bad := range []int{0, -1, 3, 12, 100} {
		if _, err := InitRing(as, 0, bad); err == nil {
			t.Errorf("InitRing(capacity=%d) succeeded", bad)
		}
	}
}

func TestRingAttachSharedView(t *testing.T) {
	// The producer formats the ring through one address space; the
	// consumer attaches through a second address space mapping the same
	// frames at a different virtual base — the guest↔hypervisor shape.
	phys := NewPhysical()
	guest := NewAddressSpace("guest", phys, nil)
	hvas := NewAddressSpace("xen", phys, nil)
	frames := phys.AllocFrames(1, 1)
	guest.MapRange(0xB0000000, frames, 1)
	hvas.MapRange(0xF4000000, frames, 1)

	prod, err := InitRing(guest, 0xB0000000, 8)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := AttachRing(hvas, 0xF4000000)
	if err != nil {
		t.Fatal(err)
	}
	if cons.Cap() != 8 {
		t.Fatalf("attached Cap = %d", cons.Cap())
	}
	if err := prod.Push(0x1234, 60); err != nil {
		t.Fatal(err)
	}
	addr, n, ok, err := cons.Pop()
	if err != nil || !ok || addr != 0x1234 || n != 60 {
		t.Fatalf("consumer Pop = (%#x, %d, %v, %v)", addr, n, ok, err)
	}
	// And the producer observes the consumption.
	if free, _ := prod.Free(); free != 8 {
		t.Errorf("producer Free = %d, want 8", free)
	}
}

func TestRingReset(t *testing.T) {
	_, _, r := ringSetup(t, 8)
	for i := 0; i < 3; i++ {
		if err := r.Push(1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Reset(); err != nil {
		t.Fatal(err)
	}
	if n, _ := r.Len(); n != 0 {
		t.Errorf("Len after Reset = %d", n)
	}
}

func TestRingAttachRejectsGarbage(t *testing.T) {
	phys := NewPhysical()
	as := NewAddressSpace("g", phys, nil)
	as.MapRange(0, phys.AllocFrames(1, 1), 1)
	if err := as.Store(0, 4, 12); err != nil { // not a power of two
		t.Fatal(err)
	}
	if _, err := AttachRing(as, 0); err == nil {
		t.Error("AttachRing on garbage succeeded")
	}
}

func TestRingAttachBoundsCapacity(t *testing.T) {
	phys := NewPhysical()
	as := NewAddressSpace("g", phys, nil)
	as.MapRange(0, phys.AllocFrames(1, 1), 1)
	// A power of two, but absurdly large: a guest-writable capacity word
	// must not make the attaching side believe in a 2-billion-slot ring.
	if err := as.Store(0, 4, 1<<31); err != nil {
		t.Fatal(err)
	}
	if _, err := AttachRing(as, 0); err == nil {
		t.Error("AttachRing accepted a 2^31-slot capacity word")
	}
	if _, err := InitRing(as, 0, 2*MaxRingSlots); err == nil {
		t.Error("InitRing accepted a capacity above MaxRingSlots")
	}
}

// TestRingHostileHeader is the trust-boundary regression test: the head and
// tail words live in guest-writable memory, so a scribbled header must make
// every operation fail with ErrRingCorrupt instead of draining bogus
// descriptors (Len > capacity) or overwriting unconsumed slots (Free < 0).
func TestRingHostileHeader(t *testing.T) {
	scribbles := []struct {
		name       string
		head, tail uint32
	}{
		{"tail-way-ahead", 0, 0xFFFFFFF0},       // Len would be ~2^32
		{"tail-just-past", 5, 5 + 8 + 1},        // Len = capacity+1
		{"head-ahead-of-tail", 7, 3},            // Len underflows negative
		{"both-garbage", 0xDEADBEEF, 0x101CAFE}, // arbitrary scribble
	}
	for _, sc := range scribbles {
		t.Run(sc.name, func(t *testing.T) {
			_, as, r := ringSetup(t, 8)
			for i := uint32(0); i < 3; i++ {
				if err := r.Push(0x2000+i, 64); err != nil {
					t.Fatal(err)
				}
			}
			if err := as.Store(r.Base+ringOffHead, 4, sc.head); err != nil {
				t.Fatal(err)
			}
			if err := as.Store(r.Base+ringOffTail, 4, sc.tail); err != nil {
				t.Fatal(err)
			}
			if _, err := r.Len(); !errors.Is(err, ErrRingCorrupt) {
				t.Errorf("Len err = %v, want ErrRingCorrupt", err)
			}
			if _, err := r.Free(); !errors.Is(err, ErrRingCorrupt) {
				t.Errorf("Free err = %v, want ErrRingCorrupt", err)
			}
			if _, _, ok, err := r.Pop(); ok || !errors.Is(err, ErrRingCorrupt) {
				t.Errorf("Pop = ok=%v err=%v, want refusal with ErrRingCorrupt", ok, err)
			}
			if err := r.Push(0xBAD, 1); !errors.Is(err, ErrRingCorrupt) {
				t.Errorf("Push err = %v, want ErrRingCorrupt (must not overwrite)", err)
			}
			// Reset restores the invariant and the ring works again.
			if err := r.Reset(); err != nil {
				t.Fatal(err)
			}
			if err := r.Push(0x3000, 60); err != nil {
				t.Fatal(err)
			}
			if addr, _, ok, err := r.Pop(); err != nil || !ok || addr != 0x3000 {
				t.Errorf("post-Reset Pop = (%#x, %v, %v)", addr, ok, err)
			}
		})
	}
}

func TestRingProducerSlot(t *testing.T) {
	_, _, r := ringSetup(t, 4)
	for i := 0; i < 10; i++ {
		slot, err := r.ProducerSlot()
		if err != nil {
			t.Fatal(err)
		}
		if slot != i%4 {
			t.Fatalf("push %d: ProducerSlot = %d, want %d", i, slot, i%4)
		}
		if err := r.Push(uint32(i), 1); err != nil {
			t.Fatal(err)
		}
		if _, _, ok, err := r.Pop(); err != nil || !ok {
			t.Fatal(ok, err)
		}
	}
}
