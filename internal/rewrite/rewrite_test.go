package rewrite

import (
	"strings"
	"testing"

	"twindrivers/internal/asm"
	"twindrivers/internal/isa"
)

func rewriteSrc(t *testing.T, src string, opt Options) (*asm.Unit, *Stats) {
	t.Helper()
	u := mustAssemble(t, src)
	out, stats, err := Rewrite(u, opt)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	// The output must re-assemble from its own printed form (it is an
	// ordinary unit).
	if _, err := asm.Assemble(out.Print()); err != nil {
		t.Fatalf("rewritten unit does not re-assemble: %v\n%s", err, out.Print())
	}
	return out, stats
}

func TestRewriteLoadUsesFigure4Shape(t *testing.T) {
	out, stats := rewriteSrc(t, `
f:
	movl	(%esi), %eax
	ret
`, Options{})
	f := out.Func("f")
	// Expected: 9 translation instructions + the load = 10 on the fast
	// path (the paper's "ten instructions"), plus ret, plus the slow-path
	// block.
	var fast []isa.Op
	for _, in := range f.Insts {
		fast = append(fast, in.Op)
	}
	wantPrefix := []isa.Op{isa.LEA, isa.MOV, isa.AND, isa.MOV, isa.AND, isa.SHR, isa.CMP, isa.JCC, isa.XOR, isa.MOV, isa.RET}
	for i, w := range wantPrefix {
		if i >= len(fast) || fast[i] != w {
			t.Fatalf("fast path op[%d] = %v, want %v\n%s", i, fast[i], w, out.Print())
		}
	}
	if stats.MemRewritten != 1 {
		t.Errorf("MemRewritten = %d", stats.MemRewritten)
	}
	// Slow path block references the slow-path symbol.
	if !strings.Contains(out.Print(), SymSlowPath) {
		t.Error("no slow path call emitted")
	}
	// The stlb symbol is referenced.
	if !strings.Contains(out.Print(), SymSTLB) {
		t.Error("no stlb reference emitted")
	}
}

func TestRewriteStackExempt(t *testing.T) {
	out, stats := rewriteSrc(t, `
f:
	pushl	%ebp
	movl	%esp, %ebp
	movl	8(%ebp), %eax
	movl	-4(%ebp), %ecx
	movl	4(%esp), %edx
	movl	%eax, -8(%ebp)
	popl	%ebp
	ret
`, Options{})
	if stats.MemRewritten != 0 {
		t.Errorf("stack accesses were rewritten: %d", stats.MemRewritten)
	}
	if stats.StackExempt != 4 {
		t.Errorf("StackExempt = %d, want 4", stats.StackExempt)
	}
	// Output identical length to input (no expansion).
	if stats.OutputInsts != stats.InputInsts {
		t.Errorf("insts %d -> %d; stack-only function should be unchanged", stats.InputInsts, stats.OutputInsts)
	}
	_ = out
}

func TestRewriteLeaNotTranslated(t *testing.T) {
	_, stats := rewriteSrc(t, `
f:
	leal	8(%esi,%ebx,4), %eax
	ret
`, Options{})
	if stats.MemRewritten != 0 {
		t.Error("lea must not be translated (no memory access)")
	}
}

func TestRewritePreservesLabelsAndBranches(t *testing.T) {
	out, _ := rewriteSrc(t, `
f:
	movl	$8, %ecx
.Ltop:
	movl	(%esi), %eax
	addl	$4, %esi
	decl	%ecx
	jne	.Ltop
	ret
`, Options{})
	f := out.Func("f")
	idx, ok := f.Labels[".Ltop"]
	if !ok {
		t.Fatal(".Ltop lost")
	}
	// .Ltop must point at the first instruction of the rewritten load (the
	// lea of the translation sequence).
	if f.Insts[idx].Op != isa.LEA {
		t.Errorf(".Ltop lands on %v, want LEA", f.Insts[idx].Op)
	}
}

func TestRewritePrivilegedScan(t *testing.T) {
	u := mustAssemble(t, "f:\n\tcli\n\tret\n")
	_, _, err := Rewrite(u, Options{RejectPrivileged: true})
	if err == nil || !strings.Contains(err.Error(), "privileged") {
		t.Errorf("err = %v, want privileged rejection", err)
	}
	// Without the scan it passes through.
	if _, _, err := Rewrite(u, Options{}); err != nil {
		t.Errorf("unexpected: %v", err)
	}
}

func TestRewriteRepCmpsRejected(t *testing.T) {
	u := mustAssemble(t, "f:\n\trepe; cmpsl\n\tret\n")
	_, _, err := Rewrite(u, Options{})
	if err == nil || !strings.Contains(err.Error(), "cmps") {
		t.Errorf("err = %v", err)
	}
}

func TestRewriteStringLoop(t *testing.T) {
	out, stats := rewriteSrc(t, `
memcpy32:
	movl	4(%esp), %edi
	movl	8(%esp), %esi
	movl	12(%esp), %ecx
	rep; movsl
	ret
`, Options{})
	if stats.StringExpanded != 1 {
		t.Fatalf("StringExpanded = %d", stats.StringExpanded)
	}
	text := out.Print()
	// The expansion contains a chunk loop and two translations.
	if !strings.Contains(text, ".Lstr_top_") {
		t.Error("no chunk loop emitted")
	}
	if c := strings.Count(text, SymSlowPath); c < 2 {
		t.Errorf("expected >=2 slow-path calls (src+dst), got %d", c)
	}
}

func TestRewriteIndirectCall(t *testing.T) {
	out, stats := rewriteSrc(t, `
f:
	movl	(%ebx), %eax
	call	*%eax
	ret
`, Options{})
	if stats.IndirectCalls != 1 {
		t.Fatalf("IndirectCalls = %d", stats.IndirectCalls)
	}
	text := out.Print()
	for _, sym := range []string{SymCodeLo, SymCodeHi, SymCodeDelta} {
		if !strings.Contains(text, sym) {
			t.Errorf("missing %s in:\n%s", sym, text)
		}
	}
}

func TestRewriteIndirectCallViaMemory(t *testing.T) {
	out, _ := rewriteSrc(t, `
f:
	call	*12(%ebx)
	ret
`, Options{})
	text := out.Print()
	// The function-pointer load itself must be translated.
	if !strings.Contains(text, SymSTLB) {
		t.Error("fp load not translated")
	}
}

func TestRewritePushPopMem(t *testing.T) {
	out, stats := rewriteSrc(t, `
f:
	pushl	(%esi)
	popl	4(%esi)
	ret
`, Options{})
	if stats.MemRewritten != 2 {
		t.Fatalf("MemRewritten = %d", stats.MemRewritten)
	}
	_ = out
}

func TestRewriteForceSpill(t *testing.T) {
	_, plain := rewriteSrc(t, `
f:
	movl	(%esi), %eax
	movl	4(%esi), %ebx
	ret
`, Options{})
	_, spilled := rewriteSrc(t, `
f:
	movl	(%esi), %eax
	movl	4(%esi), %ebx
	ret
`, Options{ForceSpill: true})
	if plain.SpillSites != 0 {
		t.Errorf("liveness-guided rewrite spilled %d times", plain.SpillSites)
	}
	if spilled.SpillSites != 2 {
		t.Errorf("force-spill SpillSites = %d, want 2", spilled.SpillSites)
	}
	if spilled.OutputInsts <= plain.OutputInsts {
		t.Error("spilling should cost extra instructions")
	}
}

func TestRewriteFlagSaveWhenFlagsLive(t *testing.T) {
	// The cmp's flags must survive the translated store to memory.
	_, stats := rewriteSrc(t, `
f:
	cmpl	$5, %eax
	movl	%ecx, (%esi)
	je	.Leq
	movl	$0, %eax
	ret
.Leq:
	movl	$1, %eax
	ret
`, Options{})
	if stats.FlagSaveSites != 1 {
		t.Errorf("FlagSaveSites = %d, want 1", stats.FlagSaveSites)
	}
}

func TestRewriteNoFlagSaveWhenInstWritesFlags(t *testing.T) {
	_, stats := rewriteSrc(t, `
f:
	addl	%ecx, (%esi)
	je	.Leq
	ret
.Leq:
	ret
`, Options{})
	if stats.FlagSaveSites != 0 {
		t.Errorf("FlagSaveSites = %d; the add itself defines the flags", stats.FlagSaveSites)
	}
}

func TestRewriteAdcReadsFlags(t *testing.T) {
	// adc consumes CF: translation must preserve incoming flags.
	_, stats := rewriteSrc(t, `
f:
	addl	%eax, %ebx
	adcl	%ecx, (%esi)
	ret
`, Options{})
	if stats.FlagSaveSites != 1 {
		t.Errorf("FlagSaveSites = %d, want 1 (adc reads CF)", stats.FlagSaveSites)
	}
}

func TestRewriteStackCheckOption(t *testing.T) {
	_, stats := rewriteSrc(t, `
f:
	movl	8(%ebp), %eax
	movl	-64(%ebp,%ecx,4), %edx
	ret
`, Options{CheckStack: true})
	if stats.StackChecks != 1 {
		t.Errorf("StackChecks = %d, want 1 (only the variable-offset access)", stats.StackChecks)
	}
}

func TestRewriteMemFractionRealistic(t *testing.T) {
	// A mixed function: the memory-reference fraction feeds the paper's
	// ~25% statistic; here 4 of 12 instructions touch data memory.
	_, stats := rewriteSrc(t, `
f:
	pushl	%ebp
	movl	%esp, %ebp
	movl	8(%ebp), %esi
	movl	(%esi), %eax
	addl	4(%esi), %eax
	xorl	%ecx, %ecx
	incl	%ecx
	movl	%eax, 8(%esi)
	movl	%ecx, 12(%esi)
	movl	%ebp, %esp
	popl	%ebp
	ret
`, Options{})
	got := stats.MemRefFraction()
	if got < 0.25 || got > 0.45 {
		t.Errorf("mem fraction = %.2f", got)
	}
}

func TestRewriteSkipsOwnGlobals(t *testing.T) {
	// Re-rewriting rewritten code must not re-translate the stlb table
	// accesses (trusted, hypervisor-space) — only ordinary memory
	// operands. out1 has exactly one such operand: the translated load
	// itself, (%s2).
	out1, _ := rewriteSrc(t, "f:\n\tmovl (%esi), %eax\n\tret\n", Options{})
	_, stats2, err := Rewrite(out1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.MemRewritten != 1 {
		t.Errorf("re-rewrite translated %d operands, want 1 (stlb accesses must be skipped)", stats2.MemRewritten)
	}
}
