package rewrite

import (
	"fmt"

	"twindrivers/internal/isa"
)

// expandIndirect rewrites `call *target` / `jmp *target` (§5.1.2): the
// target, a VM-driver code address when it points into the driver, is
// adjusted by the constant VM→hypervisor code delta. Targets outside the
// driver's code range (kernel routines resolved into the binary, already-
// correct addresses in the identity instance) pass through unadjusted; the
// CPU's function-entry validation backstops anything else.
func (rw *funcRewriter) expandIndirect(i int, in isa.Inst) error {
	e := rw.body
	isJmp := in.Op == isa.JMP
	flagSave := isJmp && rw.needFlagSave(i, &in) // calls clobber flags anyway

	// How many scratch registers do we need? One to hold/adjust the
	// target; translating a heap-memory operand needs two.
	m := in.Src
	heapMem := m.Kind == isa.KindMem && !m.StackRelative()
	want := 1
	if heapMem {
		want = 2
	}
	plan := rw.planScratch(i, &in, want, 0)

	for _, r := range plan.spills {
		e.emit(pushr(r))
	}
	if flagSave {
		e.emit(isa.Inst{Op: isa.PUSHF})
	}

	// Load the target value into plan.s2 (want==2) or plan.s1 (want==1).
	hold := plan.s1
	switch {
	case m.Kind == isa.KindReg:
		e.emit(mov(m, isa.RegOp(hold)))
	case m.StackRelative():
		e.emit(mov(m, isa.RegOp(hold)))
	default:
		rw.emitTranslate(m, plan)
		e.emit(mov(isa.MemOp(0, plan.s2), isa.RegOp(plan.s2)))
		hold = plan.s2
	}

	// Range check + delta adjust.
	rw.seq++
	nj := fmt.Sprintf(".Lnj_%d", rw.seq)
	e.emit(binop(isa.CMP, globalMem(SymCodeLo), isa.RegOp(hold)))
	e.emit(jcc(isa.B, nj))
	e.emit(binop(isa.CMP, globalMem(SymCodeHi), isa.RegOp(hold)))
	e.emit(jcc(isa.AE, nj))
	e.emit(binop(isa.ADD, globalMem(SymCodeDelta), isa.RegOp(hold)))
	e.at(nj)

	if len(plan.spills) == 0 && !flagSave {
		e.emit(isa.Inst{Op: in.Op, Indirect: true, Src: isa.RegOp(hold)})
		return nil
	}
	// Register-starved (or flag-carrying jmp): park the target in the
	// instance's scratch slot, restore state, transfer through the slot.
	e.emit(mov(isa.RegOp(hold), globalMem(SymScratch)))
	if flagSave {
		e.emit(isa.Inst{Op: isa.POPF})
	}
	for j := len(plan.spills) - 1; j >= 0; j-- {
		e.emit(popr(plan.spills[j]))
	}
	e.emit(isa.Inst{Op: in.Op, Indirect: true, Src: globalMem(SymScratch)})
	return nil
}

// expandString dispatches string-instruction rewriting (§5.1.1).
func (rw *funcRewriter) expandString(i int, in isa.Inst) error {
	if in.Rep == isa.RepNone {
		return rw.expandStringSingle(i, in)
	}
	return rw.expandStringLoop(i, in)
}

// shiftFor returns the element-size shift (log2) for a string op.
func shiftFor(size uint32) int32 {
	switch size {
	case 2:
		return 1
	case 4:
		return 2
	}
	return 0
}

// expandStringSingle rewrites a non-REP string instruction: translate the
// implicit pointer(s), perform the element access through the mapping, and
// advance the original pointers with flag-preserving LEAs.
func (rw *funcRewriter) expandStringSingle(i int, in isa.Inst) error {
	e := rw.body
	size := in.EffSize()
	sz := int32(size)
	// LODS defines EAX without reading it; keep it out of the scratch set
	// anyway since the op writes it.
	exclude := RegSet(0)
	if in.Op == isa.LODS {
		exclude = exclude.With(isa.EAX)
	}
	plan := rw.planScratch(i, &in, 3, exclude)
	if in.Op == isa.MOVS || in.Op == isa.CMPS {
		// Two translations with an element carried across the second: the
		// holder must be distinct from both translation scratch registers.
		rw.forceThird(&plan, &in, exclude)
	}
	flagSave := rw.needFlagSave(i, &in)
	if flagSave {
		rw.stats.FlagSaveSites++
	}
	for _, r := range plan.spills {
		e.emit(pushr(r))
	}
	if flagSave {
		e.emit(isa.Inst{Op: isa.PUSHF})
	}
	// Translations use only s1/s2 (two-scratch form) so that s3 can carry
	// an element across them.
	transPlan := scratchPlan{s1: plan.s1, s2: plan.s2, s3: isa.RegNone}
	s2 := plan.s2
	s3 := plan.s3
	szOp := func(op isa.Op, src, dst isa.Operand) isa.Inst {
		return isa.Inst{Op: op, Size: uint8(size), Src: src, Dst: dst}
	}
	advance := func(r isa.Reg) { e.emit(lea(isa.MemOp(sz, r), r)) }

	switch in.Op {
	case isa.MOVS:
		rw.emitTranslate(isa.MemOp(0, isa.ESI), transPlan)
		e.emit(szOp(isa.MOV, isa.MemOp(0, s2), isa.RegOp(s3)))
		rw.emitTranslate(isa.MemOp(0, isa.EDI), transPlan)
		e.emit(szOp(isa.MOV, isa.RegOp(s3), isa.MemOp(0, s2)))
		advance(isa.ESI)
		advance(isa.EDI)
	case isa.CMPS:
		rw.emitTranslate(isa.MemOp(0, isa.ESI), transPlan)
		e.emit(szOp(isa.MOV, isa.MemOp(0, s2), isa.RegOp(s3)))
		rw.emitTranslate(isa.MemOp(0, isa.EDI), transPlan)
		e.emit(szOp(isa.CMP, isa.MemOp(0, s2), isa.RegOp(s3))) // flags = [esi] - [edi]
		advance(isa.ESI)
		advance(isa.EDI)
	case isa.SCAS:
		rw.emitTranslate(isa.MemOp(0, isa.EDI), transPlan)
		e.emit(szOp(isa.CMP, isa.MemOp(0, s2), isa.RegOp(isa.EAX))) // flags = eax - [edi]
		advance(isa.EDI)
	case isa.STOS:
		rw.emitTranslate(isa.MemOp(0, isa.EDI), transPlan)
		e.emit(szOp(isa.MOV, isa.RegOp(isa.EAX), isa.MemOp(0, s2)))
		advance(isa.EDI)
	case isa.LODS:
		rw.emitTranslate(isa.MemOp(0, isa.ESI), transPlan)
		e.emit(szOp(isa.MOV, isa.MemOp(0, s2), isa.RegOp(isa.EAX)))
		advance(isa.ESI)
	}
	if flagSave {
		e.emit(isa.Inst{Op: isa.POPF})
	}
	for j := len(plan.spills) - 1; j >= 0; j-- {
		e.emit(popr(plan.spills[j]))
	}
	return nil
}

// expandStringLoop rewrites REP MOVS/STOS/LODS into a loop over page-sized
// chunks: "we generate code that loops over the entire string in chunks of
// page length, and use the string instruction on the individual string
// chunks that are guaranteed to lie within a single page" (§5.1.1). A
// chunk whose last element straddles the page boundary is safe because the
// slow path maps two consecutive pages per miss.
func (rw *funcRewriter) expandStringLoop(i int, in isa.Inst) error {
	e := rw.body
	size := in.EffSize()
	shift := shiftFor(size)

	exclude := RegSet(0)
	if in.Op == isa.LODS {
		exclude = exclude.With(isa.EAX)
	}
	plan := rw.planScratch(i, &in, 3, exclude)
	rw.forceThird(&plan, &in, exclude) // the loop needs a chunk register
	s1, s2, s3 := plan.s1, plan.s2, plan.s3
	transPlan := scratchPlan{s1: s1, s2: s2, s3: isa.RegNone}

	flagSave := rw.needFlagSave(i, &in)
	if flagSave {
		rw.stats.FlagSaveSites++
	}
	rw.seq++
	top := fmt.Sprintf(".Lstr_top_%d", rw.seq)
	done := fmt.Sprintf(".Lstr_done_%d", rw.seq)

	for _, r := range plan.spills {
		e.emit(pushr(r))
	}
	if flagSave {
		e.emit(isa.Inst{Op: isa.PUSHF})
	}

	// chunkBytes computes into dst the bytes remaining to the end of the
	// page containing *ptr: 4096 - (ptr & 4095), in [1, 4096].
	chunkBytes := func(ptr, dst isa.Reg) {
		e.emit(mov(isa.RegOp(ptr), isa.RegOp(dst)))
		e.emit(binop(isa.AND, isa.ImmOp(4095), isa.RegOp(dst)))
		e.emit(isa.Inst{Op: isa.NEG, Size: 4, Dst: isa.RegOp(dst)})
		e.emit(binop(isa.ADD, isa.ImmOp(4096), isa.RegOp(dst)))
	}

	e.at(top)
	e.emit(binop(isa.TEST, isa.RegOp(isa.ECX), isa.RegOp(isa.ECX)))
	e.emit(jcc(isa.E, done))

	// s3 = chunk length in elements.
	switch in.Op {
	case isa.MOVS:
		chunkBytes(isa.ESI, s3)
		chunkBytes(isa.EDI, s1)
		rw.seq++
		minL := fmt.Sprintf(".Lstr_min_%d", rw.seq)
		e.emit(binop(isa.CMP, isa.RegOp(s1), isa.RegOp(s3)))
		e.emit(jcc(isa.BE, minL))
		e.emit(mov(isa.RegOp(s1), isa.RegOp(s3)))
		e.at(minL)
	case isa.STOS:
		chunkBytes(isa.EDI, s3)
	case isa.LODS:
		chunkBytes(isa.ESI, s3)
	}
	if shift > 0 {
		e.emit(isa.Inst{Op: isa.SHR, Size: 4, Src: isa.ImmOp(shift), Dst: isa.RegOp(s3)})
		rw.seq++
		nz := fmt.Sprintf(".Lstr_nz_%d", rw.seq)
		e.emit(jcc(isa.NE, nz))
		// Fewer bytes than one element remain on the page: the element
		// straddles; the two-page mapping makes a 1-element chunk safe.
		e.emit(mov(isa.ImmOp(1), isa.RegOp(s3)))
		e.at(nz)
	}
	rw.seq++
	cl := fmt.Sprintf(".Lstr_cl_%d", rw.seq)
	e.emit(binop(isa.CMP, isa.RegOp(isa.ECX), isa.RegOp(s3)))
	e.emit(jcc(isa.BE, cl))
	e.emit(mov(isa.RegOp(isa.ECX), isa.RegOp(s3)))
	e.at(cl)

	// Translate pointers, swap in, run the chunk, swap out, advance.
	switch in.Op {
	case isa.MOVS:
		rw.emitTranslate(isa.MemOp(0, isa.ESI), transPlan)
		e.emit(pushr(isa.ESI))
		e.emit(mov(isa.RegOp(s2), isa.RegOp(isa.ESI)))
		rw.emitTranslate(isa.MemOp(0, isa.EDI), transPlan)
		e.emit(pushr(isa.EDI))
		e.emit(mov(isa.RegOp(s2), isa.RegOp(isa.EDI)))
		e.emit(pushr(isa.ECX))
		e.emit(mov(isa.RegOp(s3), isa.RegOp(isa.ECX)))
		e.emit(isa.Inst{Op: isa.MOVS, Size: uint8(size), Rep: isa.RepPlain})
		e.emit(popr(isa.ECX))
		e.emit(popr(isa.EDI))
		e.emit(popr(isa.ESI))
		e.emit(lea(isa.MemOpIdx(0, isa.ESI, s3, uint8(size)), isa.ESI))
		e.emit(lea(isa.MemOpIdx(0, isa.EDI, s3, uint8(size)), isa.EDI))
	case isa.STOS:
		rw.emitTranslate(isa.MemOp(0, isa.EDI), transPlan)
		e.emit(pushr(isa.EDI))
		e.emit(mov(isa.RegOp(s2), isa.RegOp(isa.EDI)))
		e.emit(pushr(isa.ECX))
		e.emit(mov(isa.RegOp(s3), isa.RegOp(isa.ECX)))
		e.emit(isa.Inst{Op: isa.STOS, Size: uint8(size), Rep: isa.RepPlain})
		e.emit(popr(isa.ECX))
		e.emit(popr(isa.EDI))
		e.emit(lea(isa.MemOpIdx(0, isa.EDI, s3, uint8(size)), isa.EDI))
	case isa.LODS:
		rw.emitTranslate(isa.MemOp(0, isa.ESI), transPlan)
		e.emit(pushr(isa.ESI))
		e.emit(mov(isa.RegOp(s2), isa.RegOp(isa.ESI)))
		e.emit(pushr(isa.ECX))
		e.emit(mov(isa.RegOp(s3), isa.RegOp(isa.ECX)))
		e.emit(isa.Inst{Op: isa.LODS, Size: uint8(size), Rep: isa.RepPlain})
		e.emit(popr(isa.ECX))
		e.emit(popr(isa.ESI))
		e.emit(lea(isa.MemOpIdx(0, isa.ESI, s3, uint8(size)), isa.ESI))
	}
	e.emit(binop(isa.SUB, isa.RegOp(s3), isa.RegOp(isa.ECX)))
	e.emit(jmp(top))

	e.at(done)
	if flagSave {
		e.emit(isa.Inst{Op: isa.POPF})
	}
	for j := len(plan.spills) - 1; j >= 0; j-- {
		e.emit(popr(plan.spills[j]))
	}
	if flagSave || len(plan.spills) > 0 {
		return nil
	}
	// Ensure the `done` label lands on an instruction even with nothing
	// to restore.
	e.emit(isa.Inst{Op: isa.NOP})
	return nil
}
