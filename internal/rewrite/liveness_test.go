package rewrite

import (
	"testing"

	"twindrivers/internal/asm"
	"twindrivers/internal/isa"
)

func mustAssemble(t *testing.T, src string) *asm.Unit {
	t.Helper()
	u, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return u
}

func TestUseDefBasic(t *testing.T) {
	cases := []struct {
		src     string
		useWant RegSet
		defWant RegSet
	}{
		{"movl %eax, %ebx", RegSet(0).With(isa.EAX), RegSet(0).With(isa.EBX)},
		{"movl (%eax), %ebx", RegSet(0).With(isa.EAX), RegSet(0).With(isa.EBX)},
		{"movl %ebx, (%eax,%ecx,4)", RegSet(0).With(isa.EAX).With(isa.EBX).With(isa.ECX), 0},
		{"addl %eax, %ebx", RegSet(0).With(isa.EAX).With(isa.EBX), RegSet(0).With(isa.EBX) | FlagsBit},
		{"cmpl %eax, %ebx", RegSet(0).With(isa.EAX).With(isa.EBX), FlagsBit},
		{"leal 4(%eax), %ebx", RegSet(0).With(isa.EAX), RegSet(0).With(isa.EBX)},
		{"pushl %eax", RegSet(0).With(isa.EAX).With(isa.ESP), RegSet(0).With(isa.ESP)},
		{"popl %eax", RegSet(0).With(isa.ESP), RegSet(0).With(isa.EAX).With(isa.ESP)},
		{"mull %ecx", RegSet(0).With(isa.EAX).With(isa.ECX), RegSet(0).With(isa.EAX).With(isa.EDX) | FlagsBit},
		{"movb %al_placeholder, %ebx", 0, 0}, // replaced below
	}
	cases = cases[:len(cases)-1]
	for _, c := range cases {
		u := mustAssemble(t, "f:\n\t"+c.src+"\n\tret\n")
		in := &u.Funcs[0].Insts[0]
		use, def := UseDef(in)
		if use != c.useWant || def != c.defWant {
			t.Errorf("%s: use=%012b def=%012b, want use=%012b def=%012b", c.src, use, def, c.useWant, c.defWant)
		}
	}
}

func TestUseDefSubWordRegWriteIsRMW(t *testing.T) {
	u := mustAssemble(t, "f:\n\tmovb $1, %ebx\n\tret\n")
	use, def := UseDef(&u.Funcs[0].Insts[0])
	if !use.Has(isa.EBX) || !def.Has(isa.EBX) {
		t.Errorf("sub-word reg write: use=%v def=%v (upper bits merge!)", use.Has(isa.EBX), def.Has(isa.EBX))
	}
}

func TestLivenessStraightLine(t *testing.T) {
	u := mustAssemble(t, `
f:
	movl	$1, %eax
	movl	$2, %ecx
	addl	%ecx, %eax
	ret
`)
	lv := Liveness(u.Funcs[0])
	// ecx is live between its def (1) and use (2), dead before.
	if lv.In[0].Has(isa.ECX) {
		t.Error("ecx live before its definition")
	}
	if !lv.Out[1].Has(isa.ECX) || !lv.In[2].Has(isa.ECX) {
		t.Error("ecx not live across def->use")
	}
	// eax is live out of the add (return value).
	if !lv.Out[2].Has(isa.EAX) {
		t.Error("eax (return value) not live at ret")
	}
	// edx is dead everywhere.
	for i := range lv.In {
		if lv.In[i].Has(isa.EDX) {
			t.Errorf("edx live at %d", i)
		}
	}
}

func TestLivenessLoop(t *testing.T) {
	u := mustAssemble(t, `
f:
	movl	$10, %ecx
	xorl	%eax, %eax
.Ltop:
	addl	%ecx, %eax
	decl	%ecx
	jne	.Ltop
	ret
`)
	lv := Liveness(u.Funcs[0])
	// ecx live around the back edge: live-in at .Ltop (index 2) and
	// live-out of the jne (index 4).
	if !lv.In[2].Has(isa.ECX) || !lv.Out[4].Has(isa.ECX) {
		t.Error("loop-carried ecx not live on back edge")
	}
	// Flags live between decl and jne.
	if !lv.Out[3].HasFlags() {
		t.Error("flags not live between decl and jne")
	}
}

func TestLivenessCallClobbers(t *testing.T) {
	u := mustAssemble(t, `
f:
	movl	$7, %ecx
	call	g
	movl	%ecx, %eax
	ret
g:
	ret
`)
	lv := Liveness(u.Funcs[0])
	// The call clobbers caller-saved registers, so ecx (though read after
	// the call — a bug in this program) is dead going in: its post-call
	// value comes from the call, not from instruction 0.
	if lv.In[1].Has(isa.ECX) {
		t.Error("ecx live into call though the call clobbers it")
	}
	if lv.In[1].Has(isa.EAX) {
		t.Error("eax live into call though call defines it")
	}
	// ecx IS live out of the call (used at 2).
	if !lv.Out[1].Has(isa.ECX) {
		t.Error("ecx not live out of call")
	}
}

func TestFreeRegsScratchSelection(t *testing.T) {
	u := mustAssemble(t, `
f:
	movl	(%eax), %ebx
	addl	%ebx, %esi
	movl	%esi, %eax
	ret
`)
	lv := Liveness(u.Funcs[0])
	free := FreeRegs(u.Funcs[0], lv, 0)
	freeSet := RegSet(0)
	for _, r := range free {
		freeSet = freeSet.With(r)
	}
	// eax is the base (used); esi is live (used at 1); ebx is the pure
	// destination — usable as scratch; ecx/edx dead.
	if freeSet.Has(isa.EAX) {
		t.Error("eax (base) offered as scratch")
	}
	if freeSet.Has(isa.ESI) {
		t.Error("esi (live) offered as scratch")
	}
	if !freeSet.Has(isa.ECX) || !freeSet.Has(isa.EDX) {
		t.Error("dead ecx/edx not offered")
	}
	if !freeSet.Has(isa.EBX) {
		t.Error("pure destination ebx not offered as scratch")
	}
	if freeSet.Has(isa.ESP) || freeSet.Has(isa.EBP) {
		t.Error("frame registers offered as scratch")
	}
}

func TestLivenessIndirectJmpConservative(t *testing.T) {
	u := mustAssemble(t, `
f:
	movl	(%eax), %ebx
	jmp	*%ebx
`)
	lv := Liveness(u.Funcs[0])
	// Everything is live at an indirect jump.
	if lv.Out[1] != (AllRegs | FlagsBit).With(isa.ESP) {
		t.Errorf("indirect jmp live-out = %012b", lv.Out[1])
	}
	if len(FreeRegs(u.Funcs[0], lv, 1)) != 0 {
		t.Error("scratch registers offered at all-live point")
	}
}
