// Package rewrite implements TwinDrivers' assembler-level binary rewriting
// (§5.1 of the paper): it transforms a guest-OS driver unit into a unit
// whose every non-stack memory access goes through the SVM fast path of
// Figure 4, whose string instructions loop over page-sized chunks
// (§5.1.1), and whose indirect calls translate VM code addresses to
// hypervisor code addresses (§5.1.2).
//
// Register liveness analysis chooses dead registers as translation scratch
// ("we avoid the cost of spilling registers most of the time by doing a
// register liveness analysis to determine the set of free registers
// available at each instruction", footnote 3); when fewer are free the
// rewriter falls back to a two-scratch sequence and finally to spilling.
package rewrite

import (
	"twindrivers/internal/asm"
	"twindrivers/internal/isa"
)

// RegSet is a bitmask over the eight GPRs plus the flags.
type RegSet uint16

// FlagsBit marks the condition flags in a RegSet.
const FlagsBit RegSet = 1 << 8

// AllRegs has every register (not flags) set.
const AllRegs RegSet = (1 << isa.NumRegs) - 1

// Has reports whether r is in the set.
func (s RegSet) Has(r isa.Reg) bool { return s&(1<<r) != 0 }

// HasFlags reports whether the flags are live.
func (s RegSet) HasFlags() bool { return s&FlagsBit != 0 }

// With returns s plus r.
func (s RegSet) With(r isa.Reg) RegSet { return s | 1<<r }

// Without returns s minus r.
func (s RegSet) Without(r isa.Reg) RegSet { return s &^ (1 << r) }

// retLive is the live-out set at a function return: the return value, the
// callee-saved registers the caller expects preserved, and the stack
// pointer. Flags are dead across returns (cdecl).
var retLive = RegSet(0).
	With(isa.EAX).With(isa.EBX).With(isa.ESI).With(isa.EDI).
	With(isa.EBP).With(isa.ESP)

// callerSaved are clobbered by a call (and therefore dead immediately
// before one, unless they carry its — stack-passed — arguments).
var callerSaved = RegSet(0).With(isa.EAX).With(isa.ECX).With(isa.EDX)

// operandUses adds the registers an operand reads.
func operandUses(o *isa.Operand, s RegSet) RegSet {
	switch o.Kind {
	case isa.KindReg:
		s = s.With(o.Reg)
	case isa.KindMem:
		if o.Base != isa.RegNone {
			s = s.With(o.Base)
		}
		if o.Index != isa.RegNone {
			s = s.With(o.Index)
		}
	}
	return s
}

// UseDef computes the (use, def) register sets of one instruction,
// including the flags pseudo-register.
func UseDef(in *isa.Inst) (use, def RegSet) {
	// Explicit operands.
	switch in.Op {
	case isa.LEA:
		use = operandUses(&in.Src, use)
		def = def.With(in.Dst.Reg)
	case isa.MOV, isa.MOVZX, isa.MOVSX, isa.SETCC:
		use = operandUses(&in.Src, use)
		if in.Dst.Kind == isa.KindReg {
			// Sub-word register writes merge with the old value.
			if in.Op == isa.MOV && in.EffSize() < 4 || in.Op == isa.SETCC {
				use = use.With(in.Dst.Reg)
			}
			def = def.With(in.Dst.Reg)
		} else {
			use = operandUses(&in.Dst, use)
		}
	case isa.ADD, isa.SUB, isa.ADC, isa.SBB, isa.AND, isa.OR, isa.XOR,
		isa.SHL, isa.SHR, isa.SAR, isa.IMUL:
		use = operandUses(&in.Src, use)
		use = operandUses(&in.Dst, use) // read-modify-write
		if in.Dst.Kind == isa.KindReg {
			def = def.With(in.Dst.Reg)
		}
	case isa.CMP, isa.TEST:
		use = operandUses(&in.Src, use)
		use = operandUses(&in.Dst, use)
	case isa.INC, isa.DEC, isa.NEG, isa.NOT:
		use = operandUses(&in.Dst, use)
		if in.Dst.Kind == isa.KindReg {
			def = def.With(in.Dst.Reg)
		}
	case isa.XCHG:
		use = operandUses(&in.Src, use)
		use = operandUses(&in.Dst, use)
		if in.Src.Kind == isa.KindReg {
			def = def.With(in.Src.Reg)
		}
		if in.Dst.Kind == isa.KindReg {
			def = def.With(in.Dst.Reg)
		}
	case isa.MUL:
		use = operandUses(&in.Dst, use).With(isa.EAX)
		def = def.With(isa.EAX).With(isa.EDX)
	case isa.DIV:
		use = operandUses(&in.Dst, use).With(isa.EAX).With(isa.EDX)
		def = def.With(isa.EAX).With(isa.EDX)
	case isa.PUSH:
		use = operandUses(&in.Src, use).With(isa.ESP)
		def = def.With(isa.ESP)
	case isa.POP:
		use = use.With(isa.ESP)
		if in.Dst.Kind == isa.KindReg {
			def = def.With(in.Dst.Reg)
		} else {
			use = operandUses(&in.Dst, use)
		}
		def = def.With(isa.ESP)
	case isa.PUSHF, isa.POPF:
		use = use.With(isa.ESP)
		def = def.With(isa.ESP)
	case isa.CALL:
		if in.Indirect {
			use = operandUses(&in.Src, use)
		}
		use = use.With(isa.ESP)
		def = def | callerSaved
		def = def.With(isa.ESP)
	case isa.JMP:
		if in.Indirect {
			use = operandUses(&in.Src, use)
		}
	case isa.INT:
		// Hypercalls may read any register; be conservative.
		use = use | AllRegs
		def = def | callerSaved
	case isa.MOVS:
		use = use.With(isa.ESI).With(isa.EDI)
		def = def.With(isa.ESI).With(isa.EDI)
	case isa.STOS:
		use = use.With(isa.EDI).With(isa.EAX)
		def = def.With(isa.EDI)
	case isa.LODS:
		use = use.With(isa.ESI)
		def = def.With(isa.ESI).With(isa.EAX)
	case isa.CMPS:
		use = use.With(isa.ESI).With(isa.EDI)
		def = def.With(isa.ESI).With(isa.EDI)
	case isa.SCAS:
		use = use.With(isa.EDI).With(isa.EAX)
		def = def.With(isa.EDI)
	}
	if in.IsString() && in.Rep != isa.RepNone {
		use = use.With(isa.ECX)
		def = def.With(isa.ECX)
	}
	if in.ReadsFlags() {
		use |= FlagsBit
	}
	if in.WritesFlags() {
		def |= FlagsBit
	}
	return use, def
}

// Live holds per-instruction liveness.
type Live struct {
	In, Out []RegSet
}

// Liveness runs backwards dataflow over a function's CFG.
//
// Conservatisms: an indirect jump is treated as an exit with everything
// live (jump tables could land anywhere in the function); a direct jump to
// a symbol that is not a local label (a tail call) is an exit with the
// return-live set.
func Liveness(f *asm.Func) *Live {
	n := len(f.Insts)
	lv := &Live{In: make([]RegSet, n), Out: make([]RegSet, n)}

	succs := make([][]int, n)
	exitLive := make([]RegSet, n) // extra live-out for exit edges
	for i := range f.Insts {
		in := &f.Insts[i]
		switch in.Op {
		case isa.RET:
			exitLive[i] = retLive
		case isa.JMP:
			if in.Indirect {
				exitLive[i] = AllRegs | FlagsBit
			} else if t, ok := f.Labels[in.Target]; ok {
				succs[i] = []int{t}
			} else {
				exitLive[i] = retLive // tail call
			}
		case isa.JCC:
			if t, ok := f.Labels[in.Target]; ok {
				succs[i] = []int{t}
			}
			if i+1 < n {
				succs[i] = append(succs[i], i+1)
			}
		default:
			if i+1 < n {
				succs[i] = []int{i + 1}
			} else {
				exitLive[i] = retLive // falls off the end (shouldn't happen)
			}
		}
	}

	use := make([]RegSet, n)
	def := make([]RegSet, n)
	for i := range f.Insts {
		use[i], def[i] = UseDef(&f.Insts[i])
	}

	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			out := exitLive[i]
			for _, s := range succs[i] {
				out |= lv.In[s]
			}
			in := use[i] | (out &^ def[i])
			if out != lv.Out[i] || in != lv.In[i] {
				lv.Out[i], lv.In[i] = out, in
				changed = true
			}
		}
	}
	// ESP is always live: it anchors the (exempt) stack.
	for i := range lv.In {
		lv.In[i] = lv.In[i].With(isa.ESP)
		lv.Out[i] = lv.Out[i].With(isa.ESP)
	}
	return lv
}

// FreeRegs returns the registers usable as scratch at instruction i: not
// ESP or EBP, not read by the instruction, and not live after it (the
// instruction's own pure definitions are fine to clobber beforehand).
func FreeRegs(f *asm.Func, lv *Live, i int) []isa.Reg {
	in := &f.Insts[i]
	use, def := UseDef(in)
	// A register that is live-out solely because this instruction defines
	// it can serve as scratch before the final (defining) instruction.
	busy := use | (lv.Out[i] &^ (def &^ use))
	var out []isa.Reg
	for r := isa.EAX; r < isa.NumRegs; r++ {
		if r == isa.ESP || r == isa.EBP {
			continue
		}
		if !busy.Has(r) {
			out = append(out, r)
		}
	}
	return out
}
