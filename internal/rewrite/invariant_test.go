package rewrite

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"twindrivers/internal/asm"
	"twindrivers/internal/isa"
)

// ownSymbol reports whether sym is one of the rewriter's injected globals,
// which rewritten code may access directly (they live in trusted space).
func ownSymbol(sym string) bool {
	switch sym {
	case SymSTLB, SymCodeLo, SymCodeHi, SymCodeDelta, SymScratch,
		SymStackLo, SymStackHi:
		return true
	}
	return false
}

// checkOutputInvariant statically verifies the safety property of
// rewritten code: every instruction that accesses memory does so either
// (a) stack-relatively (exempt by design, §4.1),
// (b) through a rewriter-owned global (stlb, code-delta, scratch), or
// (c) through a bare register operand — which, by construction, only the
// translation sequences produce (the original code's register bases were
// rewritten away).
// In particular, NO memory access with a data-symbol displacement and no
// rewriter symbol may survive: that would be an untranslated absolute
// access to dom0 (or worse) memory.
func checkOutputInvariant(t *testing.T, u *asm.Unit) {
	t.Helper()
	defined := u.DefinedSymbols()
	for _, f := range u.Funcs {
		for i := range f.Insts {
			in := &f.Insts[i]
			m, ok := in.MemOperand()
			if !ok || (!in.ReadsMem() && !in.WritesMem()) {
				continue
			}
			if m.StackRelative() {
				continue
			}
			if m.Sym != "" {
				if ownSymbol(m.Sym) {
					continue
				}
				if _, local := f.Labels[m.Sym]; local {
					continue
				}
				if defined[m.Sym] {
					t.Errorf("%s[%d]: untranslated access to data symbol %q: %v",
						f.Name, i, m.Sym, in)
				} else {
					t.Errorf("%s[%d]: untranslated access to import %q: %v",
						f.Name, i, m.Sym, in)
				}
				continue
			}
			// No symbol: must be register-based (the translated form) —
			// absolute numeric addresses may not survive.
			if m.Base == isa.RegNone && m.Index == isa.RegNone {
				t.Errorf("%s[%d]: untranslated absolute access: %v", f.Name, i, in)
			}
		}
	}
}

func TestOutputInvariantDriverShapes(t *testing.T) {
	srcs := []string{
		// Absolute data accesses.
		"f:\n\tmovl counter, %eax\n\tincl counter\n\tret\n\t.data\ncounter:\n\t.long 0\n",
		// Register-indirect loads/stores.
		"f:\n\tmovl (%esi), %eax\n\tmovl %eax, 8(%edi,%ebx,4)\n\tret\n",
		// Push/pop to memory.
		"f:\n\tpushl (%esi)\n\tpopl buf\n\tret\n\t.data\nbuf:\n\t.long 0\n",
		// String and indirect call.
		"f:\n\tmovl $4, %ecx\n\trep; movsl\n\tcall *fptr\n\tret\n\t.data\nfptr:\n\t.long 0\n",
		// Imported kernel data.
		"f:\n\tmovl jiffies, %eax\n\tret\n",
	}
	for _, src := range srcs {
		u := mustAssemble(t, src)
		out, _, err := Rewrite(u, Options{})
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		checkOutputInvariant(t, out)
	}
}

// TestQuickOutputInvariant fuzzes the invariant over random programs.
func TestQuickOutputInvariant(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := randomUnit(r)
		u, err := asm.Assemble(src)
		if err != nil {
			return true // generator produced something unparsable; skip
		}
		out, _, err := Rewrite(u, Options{})
		if err != nil {
			return true // e.g. rep cmps rejection
		}
		before := testing.Verbose()
		_ = before
		sub := &capturingT{T: t}
		checkOutputInvariant(sub.T, out)
		return !sub.failed()
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

type capturingT struct{ T *testing.T }

func (c *capturingT) failed() bool { return c.T.Failed() }

// randomUnit emits a random plausible driver-ish function.
func randomUnit(r *rand.Rand) string {
	var b bytes.Buffer
	b.WriteString("f:\n\tpushl %ebp\n\tmovl %esp, %ebp\n")
	regs := []string{"%eax", "%ebx", "%ecx", "%edx", "%esi", "%edi"}
	mems := []string{"(%esi)", "4(%edi)", "8(%ebp)", "-4(%ebp)", "glob", "glob+4",
		"12(%esi,%ebx,4)", "(%ecx)"}
	ops := []string{"movl", "addl", "subl", "xorl", "cmpl", "orl", "andl"}
	n := 4 + r.Intn(16)
	for i := 0; i < n; i++ {
		switch r.Intn(8) {
		case 0, 1, 2, 3:
			op := ops[r.Intn(len(ops))]
			if r.Intn(2) == 0 {
				b.WriteString("\t" + op + "\t" + mems[r.Intn(len(mems))] + ", " + regs[r.Intn(len(regs))] + "\n")
			} else {
				b.WriteString("\t" + op + "\t" + regs[r.Intn(len(regs))] + ", " + mems[r.Intn(len(mems))] + "\n")
			}
		case 4:
			b.WriteString("\tpushl\t" + mems[r.Intn(len(mems))] + "\n\tpopl\t" + regs[r.Intn(len(regs))] + "\n")
		case 5:
			b.WriteString("\tincl\t" + mems[r.Intn(len(mems))] + "\n")
		case 6:
			b.WriteString("\trep; stosb\n")
		case 7:
			b.WriteString("\tcall\t*" + regs[r.Intn(len(regs))] + "\n")
		}
	}
	b.WriteString("\tpopl %ebp\n\tret\n\t.data\nglob:\n\t.space 64\n")
	return b.String()
}

// TestOutputInvariantE1000 applies the invariant to the real driver via
// the facade path (assemble with an empty equate set is not possible for
// the driver; use a representative subset instead — the full driver is
// covered by internal/e1000's rewrite test plus this invariant applied
// there).
func TestRewriteOutputFunctionsPreserved(t *testing.T) {
	u := mustAssemble(t, `
a:
	movl	(%esi), %eax
	ret
b:
	call	a
	ret
`)
	out, _, err := Rewrite(u, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Funcs) != 2 || out.Func("a") == nil || out.Func("b") == nil {
		t.Error("function set changed")
	}
	// Direct calls still target the function by name.
	found := false
	for _, in := range out.Func("b").Insts {
		if in.Op == isa.CALL && in.Target == "a" {
			found = true
		}
	}
	if !found {
		t.Error("direct call rewritten away")
	}
}
