// External test package: the golden sweep pins every registered
// backend's derived image, and the multi-queue backend reaches this
// package through core — an in-package import would cycle.
package rewrite_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"twindrivers/internal/drivermodel"
	"twindrivers/internal/kernel"
	"twindrivers/internal/rewrite"

	_ "twindrivers/internal/e1000"
	_ "twindrivers/internal/mqnic"
	_ "twindrivers/internal/rtl8139"
)

var update = flag.Bool("update", false, "regenerate the golden rewrite snapshots")

// TestGoldenRewriteSnapshot pins the exact derived image of every backend:
// the rewritten unit's deterministic disassembly is compared byte for byte
// against a committed snapshot. Any codegen change — a new translation
// sequence, a scratch-register choice, an stlb-index tweak — shows up as a
// readable diff instead of drifting silently into every measurement.
// Regenerate deliberately with:
//
//	go test ./internal/rewrite -run TestGoldenRewriteSnapshot -update
func TestGoldenRewriteSnapshot(t *testing.T) {
	for _, m := range drivermodel.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			u, err := m.Assemble(kernel.Equates())
			if err != nil {
				t.Fatal(err)
			}
			ru, stats, err := rewrite.Rewrite(u, rewrite.Options{RejectPrivileged: true})
			if err != nil {
				t.Fatal(err)
			}
			got := fmt.Sprintf("# golden rewrite snapshot: %s (do not edit; regenerate with -update)\n# %s\n\n%s",
				m.Name, stats, ru.Print())

			path := filepath.Join("testdata", m.Name+"_rewritten.golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden snapshot (run with -update to create): %v", err)
			}
			if string(want) == got {
				return
			}
			// Locate the first divergence so the failure is actionable
			// without diffing multi-thousand-line files by hand.
			gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
			for i := 0; i < len(gl) && i < len(wl); i++ {
				if gl[i] != wl[i] {
					t.Fatalf("derived %s image drifted from the golden snapshot at line %d:\n  golden: %q\n  now:    %q\n(intentional? regenerate with -update)",
						m.Name, i+1, wl[i], gl[i])
				}
			}
			t.Fatalf("derived %s image drifted: %d lines vs golden %d (intentional? regenerate with -update)",
				m.Name, len(gl), len(wl))
		})
	}
}

// TestGoldenRewriteIsDeterministic guards the property the snapshot test
// relies on: two independent derivations print identically.
func TestGoldenRewriteIsDeterministic(t *testing.T) {
	for _, m := range drivermodel.All() {
		derive := func() string {
			u, err := m.Assemble(kernel.Equates())
			if err != nil {
				t.Fatal(err)
			}
			ru, _, err := rewrite.Rewrite(u, rewrite.Options{RejectPrivileged: true})
			if err != nil {
				t.Fatal(err)
			}
			return ru.Print()
		}
		if derive() != derive() {
			t.Fatalf("%s: rewrite output is not deterministic", m.Name)
		}
	}
}
