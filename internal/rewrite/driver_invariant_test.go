package rewrite

import (
	"testing"

	"twindrivers/internal/asm"
	"twindrivers/internal/e1000"
	"twindrivers/internal/kernel"
)

// TestOutputInvariantFullDriver applies the static safety invariant to the
// real e1000-class driver: after rewriting, no untranslated non-stack
// memory access survives anywhere in its fifteen functions.
func TestOutputInvariantFullDriver(t *testing.T) {
	u, err := asm.AssembleWithEquates(e1000.Source, kernel.Equates())
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []Options{
		{RejectPrivileged: true},
		{RejectPrivileged: true, ForceSpill: true},
		{RejectPrivileged: true, CheckStack: true},
		{RejectPrivileged: true, STLBEntries: 64},
	} {
		out, _, err := Rewrite(u, opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		checkOutputInvariant(t, out)
	}
}
