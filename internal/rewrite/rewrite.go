package rewrite

import (
	"fmt"
	"sort"

	"twindrivers/internal/asm"
	"twindrivers/internal/isa"
)

// Symbols the rewritten code imports; the TwinDrivers loader resolves them
// per instance (hypervisor table for the hypervisor instance, an
// identity-filled dom0 table for the VM instance — §5.1.2).
const (
	// SymSTLB is the software translation table (Figure 4's "stlb").
	SymSTLB = "__twin_stlb"

	// SymSlowPath is the native slow-path routine: cdecl, one argument
	// (the faulting dom0 address), returns the translated address or
	// aborts the driver on a protection violation.
	SymSlowPath = "__svm_slowpath"

	// SymCodeLo/SymCodeHi bound the VM driver instance's code addresses;
	// SymCodeDelta is added to indirect-call targets inside that range to
	// reach the corresponding hypervisor-instance routine (the
	// constant-offset translation enabled by running the same rewritten
	// binary in both instances).
	SymCodeLo    = "__twin_code_lo"
	SymCodeHi    = "__twin_code_hi"
	SymCodeDelta = "__twin_code_delta"

	// SymScratch is a per-instance one-word scratch slot used by
	// register-starved indirect control transfers.
	SymScratch = "__twin_scratch"

	// SymStackLo/SymStackHi bound the instance's stack for the optional
	// variable-offset stack access checks (§4.5.1); SymStackViolation is
	// the native abort routine those checks call.
	SymStackLo        = "__twin_stack_lo"
	SymStackHi        = "__twin_stack_hi"
	SymStackViolation = "__svm_stack_violation"
)

// Options control the rewriting.
type Options struct {
	// RejectPrivileged fails the rewrite if the driver contains privileged
	// instructions (static scan, §4.5.2). On for hypervisor derivation.
	RejectPrivileged bool

	// CheckStack inserts bounds checks on variable-offset stack-relative
	// accesses (§4.5.1). Constant offsets within ±StackCheckWindow of the
	// frame registers are statically accepted.
	CheckStack bool

	// StackCheckWindow is the statically-safe constant-offset range.
	StackCheckWindow int32

	// ForceSpill disables liveness-guided scratch selection and always
	// spills (the ablation for the paper's footnote 3).
	ForceSpill bool

	// STLBEntries sizes the software translation table the generated fast
	// path indexes (power of two; 0 means the paper's 4096). Smaller
	// tables raise the hash-collision rate — the stlb-size ablation.
	STLBEntries int
}

// indexMask returns the AND mask the fast path applies to the address to
// derive the stlb entry offset: (entries-1) << 12.
func (o *Options) indexMask() int32 {
	e := o.STLBEntries
	if e == 0 {
		e = 4096
	}
	return int32((e - 1) << 12)
}

// Stats describes what the rewriter did; the paper reports ~25% of driver
// instructions referencing memory (§4.1).
type Stats struct {
	Funcs           int
	InputInsts      int
	OutputInsts     int
	MemRewritten    int // data-memory instructions given SVM sequences
	StackExempt     int // stack-relative accesses left untranslated
	StringExpanded  int // string instructions expanded to chunk loops
	IndirectCalls   int // indirect calls/jumps given code translation
	SpillSites      int // sites that had to spill for scratch
	TwoScratchSites int // sites using the 2-scratch variant
	FlagSaveSites   int // sites wrapped in pushf/popf
	StackChecks     int // variable-offset stack checks inserted
}

// MemRefFraction returns the fraction of input instructions that were
// rewritten for memory access (the paper's ~25% statistic).
func (s *Stats) MemRefFraction() float64 {
	if s.InputInsts == 0 {
		return 0
	}
	return float64(s.MemRewritten+s.StringExpanded) / float64(s.InputInsts)
}

func (s *Stats) String() string {
	return fmt.Sprintf(
		"funcs=%d insts %d->%d (x%.2f) mem=%d (%.1f%%) stack-exempt=%d strings=%d indirect=%d spills=%d two-scratch=%d flag-saves=%d stack-checks=%d",
		s.Funcs, s.InputInsts, s.OutputInsts,
		float64(s.OutputInsts)/float64(max(1, s.InputInsts)),
		s.MemRewritten, 100*s.MemRefFraction(), s.StackExempt, s.StringExpanded,
		s.IndirectCalls, s.SpillSites, s.TwoScratchSites, s.FlagSaveSites, s.StackChecks)
}

// Rewrite derives the hypervisor-driver unit from a VM-driver unit. The
// input is not modified. The output unit imports the Sym* symbols above in
// addition to the input's imports.
func Rewrite(u *asm.Unit, opt Options) (*asm.Unit, *Stats, error) {
	if opt.StackCheckWindow == 0 {
		opt.StackCheckWindow = 4096
	}
	if opt.STLBEntries == 0 {
		opt.STLBEntries = 4096
	}
	if opt.STLBEntries&(opt.STLBEntries-1) != 0 {
		return nil, nil, fmt.Errorf("rewrite: STLBEntries %d is not a power of two", opt.STLBEntries)
	}
	out := u.Clone()
	stats := &Stats{}
	for fi, f := range out.Funcs {
		nf, err := rewriteFunc(f, opt, stats)
		if err != nil {
			return nil, nil, fmt.Errorf("rewrite: %s: %w", f.Name, err)
		}
		out.Funcs[fi] = nf
	}
	// The scratch slot is an import (loader-provided, per instance), not a
	// data symbol of the driver: the hypervisor instance must find it in
	// hypervisor space, not in dom0 driver data.
	out.Externs[SymSTLB] = true
	out.Externs[SymSlowPath] = true
	return out, stats, nil
}

// emitter accumulates rewritten instructions with label bookkeeping.
type emitter struct {
	insts   []isa.Inst
	labels  map[string]int
	pending []string
}

func newEmitter() *emitter {
	return &emitter{labels: make(map[string]int)}
}

// at attaches a label to the next emitted instruction.
func (e *emitter) at(label string) { e.pending = append(e.pending, label) }

func (e *emitter) emit(in isa.Inst) {
	if len(e.pending) > 0 {
		in.Label = e.pending[0]
		for _, l := range e.pending {
			e.labels[l] = len(e.insts)
		}
		e.pending = e.pending[:0]
	}
	e.insts = append(e.insts, in)
}

// Convenience constructors for the generated code.
func mov(src, dst isa.Operand) isa.Inst { return isa.Inst{Op: isa.MOV, Size: 4, Src: src, Dst: dst} }
func lea(m isa.Operand, r isa.Reg) isa.Inst {
	return isa.Inst{Op: isa.LEA, Size: 4, Src: m, Dst: isa.RegOp(r)}
}
func binop(op isa.Op, src, dst isa.Operand) isa.Inst {
	return isa.Inst{Op: op, Size: 4, Src: src, Dst: dst}
}
func pushr(r isa.Reg) isa.Inst { return isa.Inst{Op: isa.PUSH, Size: 4, Src: isa.RegOp(r)} }
func popr(r isa.Reg) isa.Inst  { return isa.Inst{Op: isa.POP, Size: 4, Dst: isa.RegOp(r)} }
func jcc(c isa.Cond, target string) isa.Inst {
	return isa.Inst{Op: isa.JCC, Cond: c, Target: target}
}
func jmp(target string) isa.Inst { return isa.Inst{Op: isa.JMP, Target: target} }

// stlbEntry returns the memory operand __twin_stlb+off(%idx).
func stlbEntry(idx isa.Reg, off int32) isa.Operand {
	return isa.Operand{Kind: isa.KindMem, Base: idx, Index: isa.RegNone, Scale: 1, Disp: off, Sym: SymSTLB}
}

// globalMem returns the absolute memory operand for one of the rewriter's
// own globals.
func globalMem(sym string) isa.Operand {
	return isa.Operand{Kind: isa.KindMem, Base: isa.RegNone, Index: isa.RegNone, Scale: 1, Sym: sym}
}

// funcRewriter rewrites one function.
type funcRewriter struct {
	f     *asm.Func
	lv    *Live
	opt   Options
	stats *Stats
	body  *emitter
	slow  *emitter // slow-path blocks, appended after the body
	seq   int
}

func rewriteFunc(f *asm.Func, opt Options, stats *Stats) (*asm.Func, error) {
	rw := &funcRewriter{
		f: f, lv: Liveness(f), opt: opt, stats: stats,
		body: newEmitter(), slow: newEmitter(),
	}
	stats.Funcs++
	stats.InputInsts += len(f.Insts)

	// Map original label -> original index, inverted to attach labels when
	// we reach their instruction. Several labels may share an index; the
	// emitter makes the first one the instruction's primary label, so each
	// list is sorted — map iteration order must not leak into the emitted
	// unit (the golden-snapshot test pins byte-identical derivations).
	labelsAt := make(map[int][]string)
	for name, idx := range f.Labels {
		if name != f.Name {
			labelsAt[idx] = append(labelsAt[idx], name)
		}
	}
	for _, names := range labelsAt {
		sort.Strings(names)
	}

	for i := range f.Insts {
		for _, l := range labelsAt[i] {
			rw.body.at(l)
		}
		if err := rw.inst(i); err != nil {
			return nil, err
		}
	}
	if len(rw.body.pending) > 0 {
		return nil, fmt.Errorf("labels %v dangle at end of function", rw.body.pending)
	}

	// Assemble body + slow blocks into the new function.
	nf := &asm.Func{Name: f.Name, Labels: make(map[string]int)}
	nf.Insts = append(nf.Insts, rw.body.insts...)
	base := len(nf.Insts)
	nf.Insts = append(nf.Insts, rw.slow.insts...)
	for l, idx := range rw.body.labels {
		nf.Labels[l] = idx
	}
	for l, idx := range rw.slow.labels {
		nf.Labels[l] = base + idx
	}
	nf.Labels[f.Name] = 0
	stats.OutputInsts += len(nf.Insts)
	return nf, nil
}

// inst rewrites one original instruction.
func (rw *funcRewriter) inst(i int) error {
	in := rw.f.Insts[i] // copy

	if rw.opt.RejectPrivileged && in.Op.Privileged() {
		return fmt.Errorf("privileged instruction %q at line %d (static scan, §4.5.2)", in.Op, in.Line)
	}

	if in.IsString() {
		if in.Rep != isa.RepNone && (in.Op == isa.CMPS || in.Op == isa.SCAS) {
			return fmt.Errorf("rep %s at line %d: flag-carrying repeated compares are not rewritable", in.Op, in.Line)
		}
		rw.stats.StringExpanded++
		return rw.expandString(i, in)
	}

	if (in.Op == isa.CALL || in.Op == isa.JMP) && in.Indirect {
		rw.stats.IndirectCalls++
		return rw.expandIndirect(i, in)
	}

	if m, ok := in.MemOperand(); ok && in.Op != isa.LEA && in.Op != isa.NOP {
		if m.StackRelative() {
			rw.stats.StackExempt++
			if rw.opt.CheckStack && m.Index != isa.RegNone {
				rw.emitStackCheck(i, in, *m)
				rw.stats.StackChecks++
			}
			rw.body.emit(in)
			return nil
		}
		if rw.refsOwnGlobal(m) {
			rw.body.emit(in) // rewriter-owned global: trusted direct access
			return nil
		}
		rw.stats.MemRewritten++
		return rw.expandMem(i, in, *m)
	}

	rw.body.emit(in)
	return nil
}

// refsOwnGlobal reports whether a memory operand references one of the
// rewriter's injected symbols (only possible when re-rewriting; normal
// driver code never names them).
func (rw *funcRewriter) refsOwnGlobal(m *isa.Operand) bool {
	switch m.Sym {
	case SymSTLB, SymCodeLo, SymCodeHi, SymCodeDelta, SymScratch, SymStackLo, SymStackHi:
		return true
	}
	return false
}

// scratchPlan decides the translation variant for site i: which registers
// serve as scratch and which must be spilled first. exclude lists
// registers that must additionally stay untouched.
type scratchPlan struct {
	s1, s2, s3 isa.Reg // s3 == RegNone for the two-scratch variant
	spills     []isa.Reg
	use3       bool
}

func (rw *funcRewriter) planScratch(i int, in *isa.Inst, want int, exclude RegSet) scratchPlan {
	var free []isa.Reg
	if !rw.opt.ForceSpill {
		for _, r := range FreeRegs(rw.f, rw.lv, i) {
			if !exclude.Has(r) {
				free = append(free, r)
			}
		}
	}
	use, def := UseDef(in)
	pure := def &^ use // written but never read: free scratch even without liveness
	var plan scratchPlan
	isTaken := func(r isa.Reg) bool {
		if r == plan.s1 || r == plan.s2 || r == plan.s3 {
			return true
		}
		for _, s := range plan.spills {
			if s == r {
				return true
			}
		}
		return false
	}
	take := func() isa.Reg {
		if len(free) > 0 {
			r := free[0]
			free = free[1:]
			return r
		}
		// The instruction's pure definitions can be clobbered beforehand
		// without liveness knowledge — and must NOT be spill-restored, or
		// the restore would wipe the instruction's own result.
		for r := isa.EAX; r < isa.NumRegs; r++ {
			if r == isa.ESP || r == isa.EBP || exclude.Has(r) || isTaken(r) {
				continue
			}
			if pure.Has(r) {
				return r
			}
		}
		// Spill: any register not read or written by the instruction.
		for r := isa.EAX; r < isa.NumRegs; r++ {
			if r == isa.ESP || r == isa.EBP || use.Has(r) || pure.Has(r) ||
				exclude.Has(r) || isTaken(r) {
				continue
			}
			plan.spills = append(plan.spills, r)
			return r
		}
		return isa.RegNone // impossible for well-formed instructions
	}
	plan.s1, plan.s2, plan.s3 = isa.RegNone, isa.RegNone, isa.RegNone
	plan.s1 = take()
	if want >= 2 {
		plan.s2 = take()
	}
	if want >= 3 {
		if len(free) > 0 {
			plan.s3 = free[0]
			free = free[1:]
			plan.use3 = true
		} else {
			// Register-starved: the 2-scratch variant costs one extra LEA,
			// which beats spilling a third register (two memory ops).
			plan.use3 = false
		}
	}
	if len(plan.spills) > 0 {
		rw.stats.SpillSites++
	}
	if !plan.use3 && want >= 3 {
		rw.stats.TwoScratchSites++
	}
	return plan
}

// forceThird guarantees plan has a distinct third scratch register,
// spilling one if liveness offered none. String expansions need a value
// or chunk register that survives both pointer translations.
func (rw *funcRewriter) forceThird(plan *scratchPlan, in *isa.Inst, exclude RegSet) {
	if plan.use3 {
		return
	}
	use, _ := UseDef(in)
	for r := isa.EAX; r < isa.NumRegs; r++ {
		if r == isa.ESP || r == isa.EBP || use.Has(r) || exclude.Has(r) ||
			r == plan.s1 || r == plan.s2 {
			continue
		}
		already := false
		for _, s := range plan.spills {
			if s == r {
				already = true
			}
		}
		if already {
			continue
		}
		plan.spills = append(plan.spills, r)
		plan.s3, plan.use3 = r, true
		rw.stats.SpillSites++
		return
	}
}

// needFlagSave reports whether site i must preserve flags around the
// translation sequence: the instruction consumes incoming flags (ADC/SBB)
// or flags are live across it and it does not redefine them.
func (rw *funcRewriter) needFlagSave(i int, in *isa.Inst) bool {
	if in.ReadsFlags() {
		return true
	}
	return rw.lv.Out[i].HasFlags() && !in.WritesFlags()
}

// emitTranslate emits the SVM fast path for memory operand m, leaving the
// translated address in plan.s2. The three-scratch form is Figure 4 of the
// paper verbatim; the two-scratch form trades one extra LEA for a register.
// The slow path block is emitted out of line; it calls __svm_slowpath,
// which aborts the driver on violations.
func (rw *funcRewriter) emitTranslate(m isa.Operand, plan scratchPlan) {
	rw.seq++
	slowL := fmt.Sprintf(".Lsvm_slow_%d", rw.seq)
	resL := fmt.Sprintf(".Lsvm_res_%d", rw.seq)
	s1, s2 := plan.s1, plan.s2
	e := rw.body

	idxMask := rw.opt.indexMask()
	if plan.use3 {
		s3 := plan.s3
		e.emit(lea(m, s1))                                                            // 1. leal M, %s1
		e.emit(mov(isa.RegOp(s1), isa.RegOp(s2)))                                     // 2. movl %s1, %s2
		e.emit(binop(isa.AND, isa.ImmOp(-0x1000), isa.RegOp(s1)))                     // 3. andl $0xfffff000, %s1
		e.emit(mov(isa.RegOp(s1), isa.RegOp(s3)))                                     // 4. movl %s1, %s3
		e.emit(binop(isa.AND, isa.ImmOp(idxMask), isa.RegOp(s1)))                     // 5. andl $0xfff000, %s1
		e.emit(isa.Inst{Op: isa.SHR, Size: 4, Src: isa.ImmOp(9), Dst: isa.RegOp(s1)}) // 6. shrl $9, %s1
		e.emit(binop(isa.CMP, stlbEntry(s1, 0), isa.RegOp(s3)))                       // 7. cmpl stlb(%s1), %s3
		e.emit(jcc(isa.NE, slowL))                                                    // 8. jne slow
		e.emit(binop(isa.XOR, stlbEntry(s1, 4), isa.RegOp(s2)))                       // 9. xorl 4+stlb(%s1), %s2
	} else {
		e.emit(lea(m, s2))
		e.emit(mov(isa.RegOp(s2), isa.RegOp(s1)))
		e.emit(binop(isa.AND, isa.ImmOp(idxMask), isa.RegOp(s1)))
		e.emit(isa.Inst{Op: isa.SHR, Size: 4, Src: isa.ImmOp(9), Dst: isa.RegOp(s1)})
		e.emit(binop(isa.AND, isa.ImmOp(-0x1000), isa.RegOp(s2)))
		e.emit(binop(isa.CMP, stlbEntry(s1, 0), isa.RegOp(s2)))
		e.emit(jcc(isa.NE, slowL))
		e.emit(lea(m, s2)) // recompute the full address
		e.emit(binop(isa.XOR, stlbEntry(s1, 4), isa.RegOp(s2)))
	}
	e.at(resL)

	// Out-of-line slow path: recover the full address, call the native
	// slow path preserving live caller-saved registers, leave the
	// translation in s2, resume.
	sl := rw.slow
	sl.at(slowL)
	sl.emit(lea(m, s2)) // full dom0 address (operand registers are intact)
	saved := []isa.Reg{}
	for _, r := range []isa.Reg{isa.EAX, isa.ECX, isa.EDX} {
		if r != s1 && r != s2 && r != plan.s3 {
			saved = append(saved, r)
			sl.emit(pushr(r))
		}
	}
	sl.emit(pushr(s2))
	sl.emit(isa.Inst{Op: isa.CALL, Target: SymSlowPath})
	sl.emit(lea(isa.MemOp(4, isa.ESP), isa.ESP)) // pop the argument, flags untouched
	if s2 != isa.EAX {
		sl.emit(mov(isa.RegOp(isa.EAX), isa.RegOp(s2)))
	}
	for j := len(saved) - 1; j >= 0; j-- {
		sl.emit(popr(saved[j]))
	}
	sl.emit(jmp(resL))
}

// replaceMem returns in with its memory operand rewritten to (%s2).
func replaceMem(in isa.Inst, s2 isa.Reg) isa.Inst {
	t := isa.MemOp(0, s2)
	if in.Src.Kind == isa.KindMem {
		in.Src = t
	} else {
		in.Dst = t
	}
	return in
}

// expandMem rewrites a data-memory-referencing instruction.
func (rw *funcRewriter) expandMem(i int, in isa.Inst, m isa.Operand) error {
	switch in.Op {
	case isa.PUSH:
		return rw.expandPushMem(i, in, m)
	case isa.POP:
		return rw.expandPopMem(i, in, m)
	}

	plan := rw.planScratch(i, &in, 3, 0)
	flagSave := rw.needFlagSave(i, &in)
	if flagSave {
		rw.stats.FlagSaveSites++
	}

	for _, r := range plan.spills {
		rw.body.emit(pushr(r))
	}
	if flagSave {
		rw.body.emit(isa.Inst{Op: isa.PUSHF})
	}
	rw.emitTranslate(m, plan)
	if flagSave {
		rw.body.emit(isa.Inst{Op: isa.POPF})
	}
	rw.body.emit(replaceMem(in, plan.s2))
	for j := len(plan.spills) - 1; j >= 0; j-- {
		rw.body.emit(popr(plan.spills[j]))
	}
	return nil
}

// expandPushMem rewrites `push M` (read M through SVM, then push). With
// spills the pushed slot is reserved first so the stack picture the callee
// or subsequent code sees is exactly the original one.
func (rw *funcRewriter) expandPushMem(i int, in isa.Inst, m isa.Operand) error {
	plan := rw.planScratch(i, &in, 2, 0)
	flagSave := rw.needFlagSave(i, &in)
	if flagSave {
		rw.stats.FlagSaveSites++
	}
	e := rw.body
	if len(plan.spills) == 0 {
		if flagSave {
			e.emit(isa.Inst{Op: isa.PUSHF})
		}
		rw.emitTranslate(m, plan)
		e.emit(mov(isa.MemOp(0, plan.s2), isa.RegOp(plan.s2)))
		if flagSave {
			e.emit(isa.Inst{Op: isa.POPF})
		}
		e.emit(pushr(plan.s2))
		return nil
	}
	// Spilled form: [slot][spills...][flags]
	e.emit(lea(isa.MemOp(-4, isa.ESP), isa.ESP)) // reserve result slot
	for _, r := range plan.spills {
		e.emit(pushr(r))
	}
	if flagSave {
		e.emit(isa.Inst{Op: isa.PUSHF})
	}
	rw.emitTranslate(m, plan)
	e.emit(mov(isa.MemOp(0, plan.s2), isa.RegOp(plan.s2)))
	slotOff := int32(4 * len(plan.spills))
	if flagSave {
		slotOff += 4
	}
	e.emit(mov(isa.RegOp(plan.s2), isa.MemOp(slotOff, isa.ESP)))
	if flagSave {
		e.emit(isa.Inst{Op: isa.POPF})
	}
	for j := len(plan.spills) - 1; j >= 0; j-- {
		e.emit(popr(plan.spills[j]))
	}
	return nil
}

// expandPopMem rewrites `pop M` (pop the stack top, store through SVM).
func (rw *funcRewriter) expandPopMem(i int, in isa.Inst, m isa.Operand) error {
	plan := rw.planScratch(i, &in, 2, 0)
	flagSave := rw.needFlagSave(i, &in)
	if flagSave {
		rw.stats.FlagSaveSites++
	}
	e := rw.body
	if len(plan.spills) == 0 {
		if flagSave {
			e.emit(isa.Inst{Op: isa.PUSHF})
		}
		rw.emitTranslate(m, plan)
		if flagSave {
			e.emit(isa.Inst{Op: isa.POPF})
		}
		e.emit(popr(plan.s1)) // the value (translation left the stack balanced)
		e.emit(mov(isa.RegOp(plan.s1), isa.MemOp(0, plan.s2)))
		return nil
	}
	// Spilled form: stack is [value][spills...][flags].
	for _, r := range plan.spills {
		e.emit(pushr(r))
	}
	if flagSave {
		e.emit(isa.Inst{Op: isa.PUSHF})
	}
	rw.emitTranslate(m, plan)
	valOff := int32(4 * len(plan.spills))
	if flagSave {
		valOff += 4
	}
	e.emit(mov(isa.MemOp(valOff, isa.ESP), isa.RegOp(plan.s1)))
	e.emit(mov(isa.RegOp(plan.s1), isa.MemOp(0, plan.s2)))
	if flagSave {
		e.emit(isa.Inst{Op: isa.POPF})
	}
	for j := len(plan.spills) - 1; j >= 0; j-- {
		e.emit(popr(plan.spills[j]))
	}
	e.emit(lea(isa.MemOp(4, isa.ESP), isa.ESP)) // consume the popped slot
	return nil
}

// emitStackCheck bounds a variable-offset stack access (CheckStack mode):
// the effective address must lie within [__twin_stack_lo, __twin_stack_hi).
func (rw *funcRewriter) emitStackCheck(i int, in isa.Inst, m isa.Operand) {
	rw.seq++
	okL := fmt.Sprintf(".Lstk_ok_%d", rw.seq)
	plan := rw.planScratch(i, &in, 1, 0)
	e := rw.body
	flagSave := rw.needFlagSave(i, &in)
	for _, r := range plan.spills {
		e.emit(pushr(r))
	}
	if flagSave {
		e.emit(isa.Inst{Op: isa.PUSHF})
	}
	s := plan.s1
	e.emit(lea(m, s))
	e.emit(binop(isa.CMP, globalMem(SymStackLo), isa.RegOp(s)))
	e.emit(jcc(isa.B, ".Lstk_bad_"+fmt.Sprint(rw.seq)))
	e.emit(binop(isa.CMP, globalMem(SymStackHi), isa.RegOp(s)))
	e.emit(jcc(isa.AE, ".Lstk_bad_"+fmt.Sprint(rw.seq)))
	e.at(okL)
	if flagSave {
		e.emit(isa.Inst{Op: isa.POPF})
	}
	for j := len(plan.spills) - 1; j >= 0; j-- {
		e.emit(popr(plan.spills[j]))
	}
	sl := rw.slow
	sl.at(".Lstk_bad_" + fmt.Sprint(rw.seq))
	sl.emit(isa.Inst{Op: isa.CALL, Target: SymStackViolation})
	sl.emit(jmp(okL)) // unreachable: the violation routine aborts
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
