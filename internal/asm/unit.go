// Package asm implements the assembler for the simulated machine: a parser
// for an AT&T-style dialect, a structural representation of assembly units
// (functions + data), a printer that round-trips through the parser, and a
// layout/link step that produces an executable image at a chosen base
// address.
//
// TwinDrivers performs its rewriting at the assembler level ("conceptually
// equivalent to binary rewriting, although working at the assembly level
// significantly simplifies parsing and code generation", §5.1 of the paper);
// this package is the substrate both the original driver and the rewriter
// operate on. The same Unit can be laid out twice — once for the VM driver
// instance in dom0 and once for the hypervisor instance — which is what
// makes VM→hypervisor code addresses differ by a constant offset (§5.1.2).
package asm

import (
	"fmt"
	"sort"
	"strings"

	"twindrivers/internal/isa"
)

// Unit is a parsed assembly translation unit.
type Unit struct {
	Funcs   []*Func
	Datas   []*Data
	Globals map[string]bool  // .globl symbols
	Externs map[string]bool  // .extern symbols (documentational; undefined syms resolve via the linker anyway)
	Equates map[string]int32 // .equ constants (already folded into operands)
}

// Func is a function: a named entry label followed by instructions.
// Labels beginning with '.' are local to the function; any other label in
// the text section starts a new function.
type Func struct {
	Name   string
	Insts  []isa.Inst
	Labels map[string]int // local label -> instruction index; includes Name -> 0
}

// Data is one named datum in the data or bss section.
type Data struct {
	Name    string
	Section string // "data" or "bss"
	Bytes   []byte // initial contents; bss contents are all zero
	Align   uint32 // required alignment (power of two, >= 1)
}

// NewUnit returns an empty unit.
func NewUnit() *Unit {
	return &Unit{
		Globals: make(map[string]bool),
		Externs: make(map[string]bool),
		Equates: make(map[string]int32),
	}
}

// Func returns the function with the given name, or nil.
func (u *Unit) Func(name string) *Func {
	for _, f := range u.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Data returns the datum with the given name, or nil.
func (u *Unit) Data(name string) *Data {
	for _, d := range u.Datas {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// DefinedSymbols returns the set of all symbols defined by the unit
// (functions, local labels excluded, data).
func (u *Unit) DefinedSymbols() map[string]bool {
	syms := make(map[string]bool)
	for _, f := range u.Funcs {
		syms[f.Name] = true
	}
	for _, d := range u.Datas {
		syms[d.Name] = true
	}
	return syms
}

// UndefinedSymbols returns, sorted, every symbol referenced by instructions
// (branch targets and operand symbols) that the unit does not define. These
// are the imports the loader must resolve — for a driver, the kernel
// support routines and imported kernel data.
func (u *Unit) UndefinedSymbols() []string {
	defined := u.DefinedSymbols()
	seen := make(map[string]bool)
	addOperand := func(f *Func, o isa.Operand) {
		if o.Sym != "" && !defined[o.Sym] {
			if _, local := f.Labels[o.Sym]; !local {
				seen[o.Sym] = true
			}
		}
	}
	for _, f := range u.Funcs {
		for i := range f.Insts {
			in := &f.Insts[i]
			if in.Target != "" && !defined[in.Target] {
				if _, local := f.Labels[in.Target]; !local {
					seen[in.Target] = true
				}
			}
			addOperand(f, in.Src)
			addOperand(f, in.Dst)
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the unit. The rewriter transforms a clone so
// the original stays available for the VM instance comparison paths.
func (u *Unit) Clone() *Unit {
	c := NewUnit()
	for k, v := range u.Globals {
		c.Globals[k] = v
	}
	for k, v := range u.Externs {
		c.Externs[k] = v
	}
	for k, v := range u.Equates {
		c.Equates[k] = v
	}
	for _, f := range u.Funcs {
		nf := &Func{Name: f.Name, Insts: append([]isa.Inst(nil), f.Insts...), Labels: make(map[string]int, len(f.Labels))}
		for k, v := range f.Labels {
			nf.Labels[k] = v
		}
		c.Funcs = append(c.Funcs, nf)
	}
	for _, d := range u.Datas {
		nd := &Data{Name: d.Name, Section: d.Section, Bytes: append([]byte(nil), d.Bytes...), Align: d.Align}
		c.Datas = append(c.Datas, nd)
	}
	return c
}

// InstCount returns the total instruction count across all functions.
func (u *Unit) InstCount() int {
	n := 0
	for _, f := range u.Funcs {
		n += len(f.Insts)
	}
	return n
}

// Print renders the unit in the dialect accepted by Assemble. The
// round-trip Assemble(Print(u)) == u (up to label aliasing) is
// property-tested.
func (u *Unit) Print() string {
	var b strings.Builder
	if len(u.Equates) > 0 {
		keys := make([]string, 0, len(u.Equates))
		for k := range u.Equates {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "\t.equ\t%s, %d\n", k, u.Equates[k])
		}
		b.WriteByte('\n')
	}
	for _, e := range sortedKeys(u.Externs) {
		fmt.Fprintf(&b, "\t.extern\t%s\n", e)
	}
	b.WriteString("\t.text\n")
	for _, f := range u.Funcs {
		if u.Globals[f.Name] {
			fmt.Fprintf(&b, "\t.globl\t%s\n", f.Name)
		}
		fmt.Fprintf(&b, "%s:\n", f.Name)
		// Emit label aliases that share an index with the primary label.
		for i := range f.Insts {
			in := f.Insts[i]
			for _, alias := range f.aliasesAt(i) {
				if alias != in.Label && alias != f.Name {
					fmt.Fprintf(&b, "%s:\n", alias)
				}
			}
			b.WriteString(in.String())
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	for _, section := range []string{"data", "bss"} {
		any := false
		for _, d := range u.Datas {
			if d.Section != section {
				continue
			}
			if !any {
				fmt.Fprintf(&b, "\t.%s\n", section)
				any = true
			}
			if u.Globals[d.Name] {
				fmt.Fprintf(&b, "\t.globl\t%s\n", d.Name)
			}
			if d.Align > 1 {
				fmt.Fprintf(&b, "\t.align\t%d\n", d.Align)
			}
			fmt.Fprintf(&b, "%s:\n", d.Name)
			printDataBytes(&b, d)
		}
	}
	return b.String()
}

// aliasesAt returns the labels (other than the instruction's own) mapping
// to instruction index i.
func (f *Func) aliasesAt(i int) []string {
	var out []string
	for name, idx := range f.Labels {
		if idx == i && name != f.Name {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func printDataBytes(b *strings.Builder, d *Data) {
	if d.Section == "bss" || allZero(d.Bytes) {
		fmt.Fprintf(b, "\t.space\t%d\n", len(d.Bytes))
		return
	}
	// Emit as .long words where possible, .byte for the tail.
	i := 0
	for ; i+4 <= len(d.Bytes); i += 4 {
		v := uint32(d.Bytes[i]) | uint32(d.Bytes[i+1])<<8 | uint32(d.Bytes[i+2])<<16 | uint32(d.Bytes[i+3])<<24
		fmt.Fprintf(b, "\t.long\t%d\n", int32(v))
	}
	for ; i < len(d.Bytes); i++ {
		fmt.Fprintf(b, "\t.byte\t%d\n", d.Bytes[i])
	}
}

func allZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}

// sortedKeys returns map keys in sorted order.
func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
