package asm

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"twindrivers/internal/isa"
)

const sampleDriver = `
	.equ	RING_SIZE, 256

	.text
	.globl	xmit
xmit:
	pushl	%ebp
	movl	%esp, %ebp
	movl	8(%ebp), %esi          # skb
	movl	12(%ebp), %edi         # dev
	movl	(%esi), %eax
	addl	$4, %eax
	cmpl	$RING_SIZE, %eax
	jne	.Lok
	xorl	%eax, %eax
.Lok:
	movl	%eax, stats+4
	call	helper
	leal	-8(%ebp), %ecx
	movl	counter(,%ebx,4), %edx
	rep; movsl
	popl	%ebp
	ret

helper:
	movl	$stats, %eax
	call	*%eax
	jmp	.Ldone
.Ldone:
	ret

	.data
	.globl	stats
stats:
	.long	1
	.long	2
	.align	8
counter:
	.long	-1
	.byte	7

	.bss
scratch:
	.space	64
`

func TestAssembleSample(t *testing.T) {
	u, err := Assemble(sampleDriver)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if len(u.Funcs) != 2 {
		t.Fatalf("got %d funcs, want 2", len(u.Funcs))
	}
	xmit := u.Func("xmit")
	if xmit == nil {
		t.Fatal("missing func xmit")
	}
	if got := len(xmit.Insts); got != 16 {
		t.Errorf("xmit has %d instructions, want 16", got)
	}
	if idx, ok := xmit.Labels[".Lok"]; !ok || xmit.Insts[idx].Label != ".Lok" {
		t.Errorf("label .Lok not resolved: idx=%d ok=%v", idx, ok)
	}
	// Equate folded into the cmp immediate.
	var cmp *isa.Inst
	for i := range xmit.Insts {
		if xmit.Insts[i].Op == isa.CMP {
			cmp = &xmit.Insts[i]
		}
	}
	if cmp == nil || cmp.Src.Imm != 256 {
		t.Errorf("equate not folded into cmp: %+v", cmp)
	}
	// rep prefix captured.
	foundRep := false
	for _, in := range xmit.Insts {
		if in.Op == isa.MOVS && in.Rep == isa.RepPlain && in.Size == 4 {
			foundRep = true
		}
	}
	if !foundRep {
		t.Error("rep movsl not parsed")
	}
	// Data symbols.
	if d := u.Data("stats"); d == nil || len(d.Bytes) != 8 {
		t.Errorf("stats data wrong: %+v", d)
	}
	if d := u.Data("counter"); d == nil || len(d.Bytes) != 5 || d.Align != 8 {
		t.Errorf("counter data wrong: %+v", d)
	}
	if d := u.Data("scratch"); d == nil || d.Section != "bss" || len(d.Bytes) != 64 {
		t.Errorf("scratch bss wrong: %+v", d)
	}
	// Undefined symbols: none (helper, stats, counter all defined).
	if und := u.UndefinedSymbols(); len(und) != 0 {
		t.Errorf("unexpected undefined symbols: %v", und)
	}
}

func TestAssembleImports(t *testing.T) {
	src := `
	.text
f:
	call	netif_rx
	movl	jiffies, %eax
	movl	$irq_table, %ebx
	ret
`
	u, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	got := u.UndefinedSymbols()
	want := []string{"irq_table", "jiffies", "netif_rx"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("UndefinedSymbols = %v, want %v", got, want)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"inst before func", "\t.text\n\tmovl %eax, %ebx\n", "before any function"},
		{"unknown mnemonic", "f:\n\tfrobl %eax, %ebx\n", "unknown mnemonic"},
		{"two mem operands", "f:\n\tmovl (%eax), (%ebx)\n", "two memory operands"},
		{"bad register", "f:\n\tmovl %rax, %ebx\n", "unknown register"},
		{"dup label", "f:\n\tnop\n.L1:\n\tnop\n.L1:\n\tnop\n", "duplicate label"},
		{"dup func", "f:\n\tret\nf:\n\tret\n", "duplicate function"},
		{"empty func", "f:\ng:\n\tret\n", "no instructions"},
		{"rep non-string", "f:\n\trep; movl %eax, %ebx\n", "rep prefix on non-string"},
		{"bad scale", "f:\n\tmovl (%eax,%ebx,3), %ecx\n", "bad scale"},
		{"esp index", "f:\n\tmovl (%eax,%esp,4), %ecx\n", "index"},
		{"bss init", "\t.bss\nx:\n\t.long 4\n", "initialised data in .bss"},
		{"wrong operand count", "f:\n\taddl %eax\n", "wants 2 operand"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestPrintRoundTrip(t *testing.T) {
	u, err := Assemble(sampleDriver)
	if err != nil {
		t.Fatal(err)
	}
	text := u.Print()
	u2, err := Assemble(text)
	if err != nil {
		t.Fatalf("re-assemble printed text: %v\n%s", err, text)
	}
	if !unitsEqual(u, u2) {
		t.Errorf("round trip mismatch:\n--- first ---\n%s\n--- second ---\n%s", text, u2.Print())
	}
}

func TestLayoutAndResolve(t *testing.T) {
	u, err := Assemble(sampleDriver)
	if err != nil {
		t.Fatal(err)
	}
	im, err := Layout("drv", u, 0x100000, 0x200000, nil)
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := im.FuncEntry("xmit")
	if !ok || entry != 0x100000 {
		t.Fatalf("xmit entry = %#x, %v", entry, ok)
	}
	if !im.IsFuncEntry(entry) {
		t.Error("IsFuncEntry(xmit) = false")
	}
	helper, _ := im.FuncEntry("helper")
	if helper != 0x100000+16*InstSlot {
		t.Errorf("helper entry = %#x", helper)
	}
	// Branch target of jne resolves to the .Lok instruction address.
	in, target, ok := im.At(entry + 7*InstSlot) // the jne
	if !ok || in.Op != isa.JCC {
		t.Fatalf("inst at slot 6: %v (op %v)", ok, in.Op)
	}
	if target != entry+9*InstSlot { // .Lok labels the stats+4 store
		t.Errorf("jne target = %#x, want %#x", target, entry+9*InstSlot)
	}
	// Data layout with alignment.
	stats, _ := im.DataSymbol("stats")
	counter, _ := im.DataSymbol("counter")
	if stats != 0x200000 {
		t.Errorf("stats at %#x", stats)
	}
	if counter != 0x200008 { // aligned to 8
		t.Errorf("counter at %#x, want 0x200008", counter)
	}
	// Initial data content.
	init := im.DataInit()
	if init[0] != 1 || init[4] != 2 {
		t.Errorf("stats init wrong: % x", init[:8])
	}
	if init[counter-0x200000] != 0xFF {
		t.Errorf("counter init wrong: % x", init[8:13])
	}
	// movl stats+4 folded: find the store instruction.
	in2, _, _ := im.At(entry + 9*InstSlot)
	if in2.Op != isa.MOV || in2.Dst.Kind != isa.KindMem || in2.Dst.Disp != int32(stats+4) {
		t.Errorf("stats+4 fold wrong: %+v", in2)
	}
	// $stats immediate in helper.
	in3, _, _ := im.At(helper)
	if in3.Src.Kind != isa.KindImm || uint32(in3.Src.Imm) != stats {
		t.Errorf("$stats fold wrong: %+v", in3)
	}
}

func TestLayoutUndefined(t *testing.T) {
	u, err := Assemble("f:\n\tcall missing_routine\n\tret\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Layout("x", u, 0x1000, 0x2000, nil); err == nil {
		t.Fatal("expected layout error for undefined symbol")
	}
	im, err := Layout("x", u, 0x1000, 0x2000, func(sym string) (uint32, bool) {
		if sym == "missing_routine" {
			return 0xdead0000, true
		}
		return 0, false
	})
	if err != nil {
		t.Fatal(err)
	}
	_, target, _ := im.At(0x1000)
	if target != 0xdead0000 {
		t.Errorf("resolver target = %#x", target)
	}
}

func TestLayoutTwiceConstantDelta(t *testing.T) {
	// The same unit laid out at two bases gives a constant code delta for
	// every function — the property TwinDrivers' indirect-call translation
	// relies on (§5.1.2).
	u, err := Assemble(sampleDriver)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Layout("vm", u, 0x100000, 0x200000, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Layout("hv", u, 0x700000, 0x200000, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []string{"xmit", "helper"} {
		av, _ := a.FuncEntry(fn)
		bv, _ := b.FuncEntry(fn)
		if bv-av != 0x600000 {
			t.Errorf("delta for %s = %#x", fn, bv-av)
		}
	}
}

// unitsEqual compares units structurally, ignoring Line fields.
func unitsEqual(a, b *Unit) bool {
	if len(a.Funcs) != len(b.Funcs) || len(a.Datas) != len(b.Datas) {
		return false
	}
	for i := range a.Funcs {
		fa, fb := a.Funcs[i], b.Funcs[i]
		if fa.Name != fb.Name || len(fa.Insts) != len(fb.Insts) {
			return false
		}
		if !reflect.DeepEqual(fa.Labels, fb.Labels) {
			return false
		}
		for j := range fa.Insts {
			x, y := fa.Insts[j], fb.Insts[j]
			x.Line, y.Line = 0, 0
			// Inst.Label is an arbitrary representative when several labels
			// share an index; the Labels map (compared above) is canonical.
			x.Label, y.Label = "", ""
			if !reflect.DeepEqual(x, y) {
				return false
			}
		}
	}
	for i := range a.Datas {
		da, db := a.Datas[i], b.Datas[i]
		if da.Name != db.Name || da.Section != db.Section || !reflect.DeepEqual(da.Bytes, db.Bytes) {
			return false
		}
	}
	return true
}

// randInst generates a random (valid) instruction for the round-trip
// property test.
func randInst(r *rand.Rand, localLabels []string) isa.Inst {
	regs := []isa.Reg{isa.EAX, isa.ECX, isa.EDX, isa.EBX, isa.ESP, isa.EBP, isa.ESI, isa.EDI}
	randReg := func() isa.Reg { return regs[r.Intn(len(regs))] }
	randOperand := func(allowImm bool) isa.Operand {
		switch n := r.Intn(3); {
		case n == 0 && allowImm:
			return isa.ImmOp(int32(r.Int31()) - 1<<30)
		case n <= 1:
			return isa.RegOp(randReg())
		default:
			o := isa.Operand{Kind: isa.KindMem, Base: isa.RegNone, Index: isa.RegNone, Scale: 1, Disp: int32(r.Intn(4096)) - 2048}
			if r.Intn(2) == 0 {
				o.Base = randReg()
			}
			if r.Intn(3) == 0 {
				idx := randReg()
				if idx != isa.ESP {
					o.Index = idx
					o.Scale = []uint8{1, 2, 4, 8}[r.Intn(4)]
				}
			}
			if o.Base == isa.RegNone && o.Index == isa.RegNone && o.Disp < 0 {
				o.Disp = -o.Disp // absolute address must be non-negative-ish
			}
			return o
		}
	}
	binOps := []isa.Op{isa.MOV, isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.CMP, isa.TEST, isa.ADC, isa.SBB, isa.IMUL, isa.LEA, isa.XCHG}
	sizes := []uint8{1, 2, 4}
	switch r.Intn(8) {
	case 0, 1, 2, 3:
		op := binOps[r.Intn(len(binOps))]
		src, dst := randOperand(op != isa.LEA && op != isa.XCHG), randOperand(false)
		if op == isa.LEA {
			src = randOperand(false)
			for src.Kind != isa.KindMem {
				src = randOperand(false)
			}
			dst = isa.RegOp(randReg())
		}
		if src.Kind == isa.KindMem && dst.Kind == isa.KindMem {
			dst = isa.RegOp(randReg())
		}
		size := sizes[r.Intn(len(sizes))]
		if op == isa.LEA || op == isa.XCHG || op == isa.IMUL {
			size = 4
		}
		return isa.Inst{Op: op, Size: size, Src: src, Dst: dst}
	case 4:
		op := []isa.Op{isa.INC, isa.DEC, isa.NEG, isa.NOT}[r.Intn(4)]
		return isa.Inst{Op: op, Size: 4, Dst: randOperand(false)}
	case 5:
		if r.Intn(2) == 0 {
			return isa.Inst{Op: isa.PUSH, Size: 4, Src: randOperand(true)}
		}
		d := randOperand(false)
		return isa.Inst{Op: isa.POP, Size: 4, Dst: d}
	case 6:
		ops := []isa.Op{isa.MOVS, isa.STOS, isa.LODS}
		reps := []isa.Rep{isa.RepNone, isa.RepPlain}
		return isa.Inst{Op: ops[r.Intn(len(ops))], Size: sizes[r.Intn(3)], Rep: reps[r.Intn(2)]}
	default:
		if len(localLabels) > 0 && r.Intn(2) == 0 {
			conds := []isa.Cond{isa.E, isa.NE, isa.B, isa.AE, isa.L, isa.G, isa.S}
			return isa.Inst{Op: isa.JCC, Cond: conds[r.Intn(len(conds))], Target: localLabels[r.Intn(len(localLabels))]}
		}
		return isa.Inst{Op: isa.NOP}
	}
}

// TestQuickPrintParseRoundTrip builds random units, prints them, re-parses
// and compares.
func TestQuickPrintParseRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		u := NewUnit()
		nf := 1 + r.Intn(3)
		for fi := 0; fi < nf; fi++ {
			name := "fn" + string(rune('a'+fi))
			n := 3 + r.Intn(12)
			labels := []string{}
			fun := &Func{Name: name, Labels: map[string]int{name: 0}}
			// Pre-place some labels.
			for i := 0; i < n; i++ {
				if r.Intn(4) == 0 {
					l := fmt.Sprintf(".L%c%d", 'a'+fi, i)
					labels = append(labels, l)
				}
			}
			li := 0
			for i := 0; i < n; i++ {
				in := randInst(r, labels)
				if li < len(labels) && r.Intn(3) == 0 {
					in.Label = labels[li]
					fun.Labels[labels[li]] = i
					li++
				}
				fun.Insts = append(fun.Insts, in)
			}
			// Any unplaced labels attach to a final nop.
			last := isa.Inst{Op: isa.RET}
			if li < len(labels) {
				last.Label = labels[li]
				for ; li < len(labels); li++ {
					fun.Labels[labels[li]] = n
				}
			}
			fun.Insts = append(fun.Insts, last)
			u.Funcs = append(u.Funcs, fun)
			u.Globals[name] = true
		}
		text := u.Print()
		u2, err := Assemble(text)
		if err != nil {
			t.Logf("re-parse failed: %v\n%s", err, text)
			return false
		}
		if !unitsEqual(u, u2) {
			t.Logf("mismatch:\n%s\n----\n%s", text, u2.Print())
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
