package asm

import (
	"fmt"
	"sort"

	"twindrivers/internal/isa"
)

// InstSlot is the fixed size, in bytes of address space, occupied by every
// instruction in a laid-out image. A constant slot size keeps code
// addresses, return addresses and the VM→hypervisor code delta trivially
// computable, mirroring how the real TwinDrivers keeps "a constant offset
// for all routines" by running the same rewritten binary in both instances.
const InstSlot = 8

// Resolver supplies addresses for symbols the unit does not define. The
// dom0 module loader and the hypervisor driver loader implement this
// differently: the former binds imports to dom0 kernel symbols, the latter
// binds data imports to the *same dom0 addresses* (saved relocation info,
// §5.2) and call imports to hypervisor support routines or upcall stubs.
type Resolver func(sym string) (uint32, bool)

// Image is a laid-out, linked unit: every instruction has an address, every
// symbolic reference is resolved.
type Image struct {
	Name     string
	CodeBase uint32
	CodeEnd  uint32
	DataBase uint32
	DataEnd  uint32

	insts   []isa.Inst // symbol references folded to absolute values
	targets []uint32   // resolved branch target per instruction (0 if none)

	funcStart map[string]uint32 // function name -> entry address
	funcAt    map[uint32]string // entry address -> function name
	dataAddr  map[string]uint32 // data symbol -> address
	dataSize  map[string]uint32

	dataInit []byte // initial contents of [DataBase, DataEnd)
}

// LayoutError reports a link failure.
type LayoutError struct {
	Sym string
	Msg string
}

func (e *LayoutError) Error() string { return fmt.Sprintf("asm: layout: %s: %s", e.Sym, e.Msg) }

// Layout links a unit at the given code and data base addresses. Undefined
// symbols are resolved through r; a nil resolver fails on any import.
func Layout(name string, u *Unit, codeBase, dataBase uint32, r Resolver) (*Image, error) {
	im := &Image{
		Name:      name,
		CodeBase:  codeBase,
		DataBase:  dataBase,
		funcStart: make(map[string]uint32),
		funcAt:    make(map[uint32]string),
		dataAddr:  make(map[string]uint32),
		dataSize:  make(map[string]uint32),
	}

	// Pass 1: place functions and data.
	addr := codeBase
	for _, f := range u.Funcs {
		im.funcStart[f.Name] = addr
		im.funcAt[addr] = f.Name
		addr += uint32(len(f.Insts)) * InstSlot
	}
	im.CodeEnd = addr

	daddr := dataBase
	for _, d := range u.Datas {
		align := d.Align
		if align == 0 {
			align = 4
		}
		daddr = (daddr + align - 1) &^ (align - 1)
		im.dataAddr[d.Name] = daddr
		im.dataSize[d.Name] = uint32(len(d.Bytes))
		daddr += uint32(len(d.Bytes))
	}
	im.DataEnd = daddr
	im.dataInit = make([]byte, daddr-dataBase)
	for _, d := range u.Datas {
		if d.Section == "bss" {
			continue
		}
		copy(im.dataInit[im.dataAddr[d.Name]-dataBase:], d.Bytes)
	}

	resolve := func(sym string, f *Func, fbase uint32) (uint32, bool) {
		if f != nil {
			if idx, ok := f.Labels[sym]; ok {
				return fbase + uint32(idx)*InstSlot, true
			}
		}
		if a, ok := im.funcStart[sym]; ok {
			return a, true
		}
		if a, ok := im.dataAddr[sym]; ok {
			return a, true
		}
		if r != nil {
			if a, ok := r(sym); ok {
				return a, true
			}
		}
		return 0, false
	}

	// Pass 2: copy instructions, folding symbols.
	for _, f := range u.Funcs {
		fbase := im.funcStart[f.Name]
		for i := range f.Insts {
			in := f.Insts[i] // copy
			var target uint32
			if in.Target != "" {
				a, ok := resolve(in.Target, f, fbase)
				if !ok {
					return nil, &LayoutError{Sym: in.Target, Msg: fmt.Sprintf("undefined branch target (in %s, line %d)", f.Name, in.Line)}
				}
				target = a
			}
			if err := foldOperand(&in.Src, f, fbase, resolve); err != nil {
				return nil, err
			}
			if err := foldOperand(&in.Dst, f, fbase, resolve); err != nil {
				return nil, err
			}
			im.insts = append(im.insts, in)
			im.targets = append(im.targets, target)
		}
	}
	return im, nil
}

func foldOperand(o *isa.Operand, f *Func, fbase uint32, resolve func(string, *Func, uint32) (uint32, bool)) error {
	if o.Sym == "" {
		return nil
	}
	a, ok := resolve(o.Sym, f, fbase)
	if !ok {
		return &LayoutError{Sym: o.Sym, Msg: fmt.Sprintf("undefined symbol (in %s)", f.Name)}
	}
	switch o.Kind {
	case isa.KindImm:
		o.Imm += int32(a)
	case isa.KindMem:
		o.Disp += int32(a)
	}
	o.Sym = ""
	return nil
}

// Contains reports whether addr is a valid instruction address in the image.
func (im *Image) Contains(addr uint32) bool {
	return addr >= im.CodeBase && addr < im.CodeEnd && (addr-im.CodeBase)%InstSlot == 0
}

// At returns the instruction at addr and its resolved branch target.
func (im *Image) At(addr uint32) (*isa.Inst, uint32, bool) {
	if !im.Contains(addr) {
		return nil, 0, false
	}
	i := (addr - im.CodeBase) / InstSlot
	return &im.insts[i], im.targets[i], true
}

// FuncEntry returns the function entry address for name.
func (im *Image) FuncEntry(name string) (uint32, bool) {
	a, ok := im.funcStart[name]
	return a, ok
}

// IsFuncEntry reports whether addr is the entry of a function. The CPU
// validates indirect call targets with this: a rewritten driver that
// computes a bogus function pointer faults instead of executing mid-stream.
func (im *Image) IsFuncEntry(addr uint32) bool {
	_, ok := im.funcAt[addr]
	return ok
}

// FuncNameAt returns the name of the function whose entry is addr.
func (im *Image) FuncNameAt(addr uint32) (string, bool) {
	n, ok := im.funcAt[addr]
	return n, ok
}

// FuncContaining returns the name of the function whose code range contains
// addr, for diagnostics.
func (im *Image) FuncContaining(addr uint32) string {
	if addr < im.CodeBase || addr >= im.CodeEnd {
		return ""
	}
	best, bestAddr := "", uint32(0)
	for name, a := range im.funcStart {
		if a <= addr && a >= bestAddr {
			best, bestAddr = name, a
		}
	}
	return best
}

// DataSymbol returns the address of a data symbol.
func (im *Image) DataSymbol(name string) (uint32, bool) {
	a, ok := im.dataAddr[name]
	return a, ok
}

// DataSymbolSize returns the size in bytes of a data symbol.
func (im *Image) DataSymbolSize(name string) (uint32, bool) {
	s, ok := im.dataSize[name]
	return s, ok
}

// DataSymbols returns all data symbol names, sorted.
func (im *Image) DataSymbols() []string {
	out := make([]string, 0, len(im.dataAddr))
	for n := range im.dataAddr {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DataInit returns the initial data segment contents (relative to DataBase).
func (im *Image) DataInit() []byte { return im.dataInit }

// NumInsts returns the number of instructions in the image.
func (im *Image) NumInsts() int { return len(im.insts) }
