package asm

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestQuickParserNeverPanics feeds the assembler byte noise and mutated
// fragments of valid source: it must return (unit, nil) or (nil, error),
// never panic, and a successful parse must survive layout or fail it
// cleanly.
func TestQuickParserNeverPanics(t *testing.T) {
	fragments := []string{
		"\t.text\n", "f:\n", "\tmovl\t%eax, %ebx\n", "\tret\n",
		"\t.data\n", "x:\n", "\t.long 1\n", "\trep; movsl\n",
		"\tcall *%eax\n", "\tjne .L1\n", ".L1:\n", "\t.equ A, 5\n",
		"\tpushl A(%esi,%ebx,4)\n", "\t.space 8\n", "# comment\n",
		"\t.globl f\n", "\tmovzbl (%ecx), %edx\n",
	}
	alphabet := "abcdefgh%$(),.:;*#\t\n 0123456789+-"
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var b strings.Builder
		n := r.Intn(30)
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				// Random noise line.
				ln := r.Intn(20)
				for j := 0; j < ln; j++ {
					b.WriteByte(alphabet[r.Intn(len(alphabet))])
				}
				b.WriteByte('\n')
			} else {
				frag := fragments[r.Intn(len(fragments))]
				// Occasionally mutate a byte.
				if r.Intn(4) == 0 && len(frag) > 2 {
					bs := []byte(frag)
					bs[r.Intn(len(bs)-1)] = alphabet[r.Intn(len(alphabet))]
					frag = string(bs)
				}
				b.WriteString(frag)
			}
		}
		u, err := Assemble(b.String())
		if err != nil {
			return true
		}
		// Parsed units must lay out or fail cleanly too.
		_, _ = Layout("fuzz", u, 0x100000, 0x200000, func(string) (uint32, bool) {
			return 0xE0000000, true
		})
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestLayoutDataAlignmentProperty: all data symbols respect their declared
// alignment and never overlap.
func TestLayoutDataAlignmentProperty(t *testing.T) {
	fn := func(sizes []uint8, aligns []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(aligns) == 0 {
			aligns = []uint8{2}
		}
		var b strings.Builder
		b.WriteString("f:\n\tret\n\t.data\n")
		n := len(sizes)
		if n > 12 {
			n = 12
		}
		for i := 0; i < n; i++ {
			al := uint32(1) << (aligns[i%len(aligns)] % 5) // 1..16
			b.WriteString("\t.align " + itoa(int(al)) + "\n")
			b.WriteString("d" + itoa(i) + ":\n\t.space " + itoa(int(sizes[i])%97+1) + "\n")
		}
		u, err := Assemble(b.String())
		if err != nil {
			t.Logf("assemble: %v", err)
			return false
		}
		im, err := Layout("t", u, 0x1000, 0x20000, nil)
		if err != nil {
			t.Logf("layout: %v", err)
			return false
		}
		prevEnd := uint32(0)
		for i := 0; i < n; i++ {
			name := "d" + itoa(i)
			a, ok := im.DataSymbol(name)
			if !ok {
				return false
			}
			al := uint32(1) << (aligns[i%len(aligns)] % 5)
			if a%al != 0 {
				t.Logf("%s at %#x not %d-aligned", name, a, al)
				return false
			}
			if a < prevEnd {
				t.Logf("%s overlaps previous symbol", name)
				return false
			}
			sz, _ := im.DataSymbolSize(name)
			prevEnd = a + sz
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var d []byte
	for v > 0 {
		d = append([]byte{byte('0' + v%10)}, d...)
		v /= 10
	}
	return string(d)
}
