package asm

import (
	"fmt"
	"strconv"
	"strings"

	"twindrivers/internal/isa"
)

// ParseError describes a parse failure with its source line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// Assemble parses source text into a Unit.
func Assemble(src string) (*Unit, error) {
	return AssembleWithEquates(src, nil)
}

// AssembleWithEquates parses source text with a set of predefined
// compile-time constants. The kernel substrate injects structure-field
// offsets (sk_buff, netdev, ring layouts) this way so that driver assembly
// and the Go-side layout definitions share a single source of truth.
func AssembleWithEquates(src string, equates map[string]int32) (*Unit, error) {
	p := &parser{unit: NewUnit(), section: "text"}
	for k, v := range equates {
		p.unit.Equates[k] = v
	}
	for lineNo, raw := range strings.Split(src, "\n") {
		if err := p.line(lineNo+1, raw); err != nil {
			return nil, err
		}
	}
	if err := p.finish(); err != nil {
		return nil, err
	}
	return p.unit, nil
}

type parser struct {
	unit    *Unit
	section string // "text", "data", "bss"

	cur           *Func    // function being assembled
	pendingLabels []string // labels waiting for the next instruction/datum
	pendingAlign  uint32
	curData       *Data
}

func (p *parser) errf(line int, format string, args ...interface{}) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// line processes one source line (which may contain several ';'-separated
// statements, as in "rep; movsl").
func (p *parser) line(n int, raw string) error {
	if i := strings.IndexByte(raw, '#'); i >= 0 {
		raw = raw[:i]
	}
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return nil
	}
	// Peel leading labels.
	for {
		i := strings.IndexByte(raw, ':')
		if i < 0 {
			break
		}
		candidate := strings.TrimSpace(raw[:i])
		if !isSymbol(candidate) {
			break
		}
		if err := p.defineLabel(n, candidate); err != nil {
			return err
		}
		raw = strings.TrimSpace(raw[i+1:])
		if raw == "" {
			return nil
		}
	}
	if strings.HasPrefix(raw, ".") {
		return p.directive(n, raw)
	}
	// A rep prefix may be separated by ';' or whitespace.
	var rep isa.Rep
	for {
		word, rest := splitWord(raw)
		r, ok := repByName(word)
		if !ok {
			break
		}
		if rep != isa.RepNone {
			return p.errf(n, "duplicate rep prefix")
		}
		rep = r
		raw = strings.TrimSpace(strings.TrimPrefix(rest, ";"))
		if raw == "" {
			return p.errf(n, "rep prefix without string instruction")
		}
	}
	return p.instruction(n, raw, rep)
}

func splitWord(s string) (word, rest string) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '\t' || c == ';' {
			return s[:i], strings.TrimSpace(s[i:])
		}
	}
	return s, ""
}

func repByName(s string) (isa.Rep, bool) {
	switch s {
	case "rep":
		return isa.RepPlain, true
	case "repe", "repz":
		return isa.RepE, true
	case "repne", "repnz":
		return isa.RepNE, true
	}
	return isa.RepNone, false
}

func isSymbol(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == '.' || c == '$' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	// A leading digit is not a symbol; a bare '.' is not either.
	return s != "." && !(s[0] >= '0' && s[0] <= '9')
}

func (p *parser) defineLabel(n int, name string) error {
	switch p.section {
	case "text":
		local := strings.HasPrefix(name, ".")
		if local {
			if p.cur == nil {
				return p.errf(n, "local label %q before any function", name)
			}
			p.pendingLabels = append(p.pendingLabels, name)
			return nil
		}
		// A non-local text label starts a new function.
		if err := p.closeFunc(n); err != nil {
			return err
		}
		if p.unit.Func(name) != nil {
			return p.errf(n, "duplicate function %q", name)
		}
		p.cur = &Func{Name: name, Labels: map[string]int{name: 0}}
		return nil
	case "data", "bss":
		p.closeData()
		if p.unit.Data(name) != nil {
			return p.errf(n, "duplicate data symbol %q", name)
		}
		align := p.pendingAlign
		if align == 0 {
			align = 4
		}
		p.pendingAlign = 0
		p.curData = &Data{Name: name, Section: p.section, Align: align}
		return nil
	}
	return p.errf(n, "label %q outside any section", name)
}

func (p *parser) closeFunc(n int) error {
	if p.cur == nil {
		return nil
	}
	if len(p.pendingLabels) > 0 {
		return p.errf(n, "labels %v at end of function %q with no instruction", p.pendingLabels, p.cur.Name)
	}
	if len(p.cur.Insts) == 0 {
		return p.errf(n, "function %q has no instructions", p.cur.Name)
	}
	p.unit.Funcs = append(p.unit.Funcs, p.cur)
	p.cur = nil
	return nil
}

func (p *parser) closeData() {
	if p.curData != nil {
		p.unit.Datas = append(p.unit.Datas, p.curData)
		p.curData = nil
	}
}

func (p *parser) finish() error {
	if err := p.closeFunc(0); err != nil {
		return err
	}
	p.closeData()
	return nil
}

func (p *parser) directive(n int, raw string) error {
	word, rest := splitWord(raw)
	args := splitArgs(rest)
	switch word {
	case ".text":
		p.closeData()
		p.section = "text"
	case ".data":
		if err := p.closeFunc(n); err != nil {
			return err
		}
		p.closeData()
		p.section = "data"
	case ".bss":
		if err := p.closeFunc(n); err != nil {
			return err
		}
		p.closeData()
		p.section = "bss"
	case ".globl", ".global":
		if len(args) != 1 {
			return p.errf(n, "%s wants one symbol", word)
		}
		p.unit.Globals[args[0]] = true
	case ".extern":
		if len(args) != 1 {
			return p.errf(n, ".extern wants one symbol")
		}
		p.unit.Externs[args[0]] = true
	case ".equ", ".set":
		if len(args) != 2 {
			return p.errf(n, "%s wants NAME, VALUE", word)
		}
		v, err := p.constExpr(n, args[1])
		if err != nil {
			return err
		}
		p.unit.Equates[args[0]] = v
	case ".align":
		if p.section == "text" {
			return nil // no-op for fixed-slot code
		}
		if len(args) != 1 {
			return p.errf(n, ".align wants one value")
		}
		v, err := p.constExpr(n, args[0])
		if err != nil {
			return err
		}
		if v <= 0 || (v&(v-1)) != 0 {
			return p.errf(n, ".align %d: not a power of two", v)
		}
		p.pendingAlign = uint32(v)
	case ".long", ".int":
		return p.emitData(n, args, 4)
	case ".word", ".short":
		return p.emitData(n, args, 2)
	case ".byte":
		return p.emitData(n, args, 1)
	case ".space", ".skip":
		if p.curData == nil {
			return p.errf(n, ".space outside a data symbol")
		}
		if len(args) < 1 || len(args) > 2 {
			return p.errf(n, ".space wants SIZE [, FILL]")
		}
		size, err := p.constExpr(n, args[0])
		if err != nil {
			return err
		}
		fill := int32(0)
		if len(args) == 2 {
			if fill, err = p.constExpr(n, args[1]); err != nil {
				return err
			}
		}
		for i := int32(0); i < size; i++ {
			p.curData.Bytes = append(p.curData.Bytes, byte(fill))
		}
	case ".asciz", ".string":
		if p.curData == nil {
			return p.errf(n, "%s outside a data symbol", word)
		}
		s, err := strconv.Unquote(strings.TrimSpace(rest))
		if err != nil {
			return p.errf(n, "%s: bad string literal: %v", word, err)
		}
		p.curData.Bytes = append(p.curData.Bytes, []byte(s)...)
		p.curData.Bytes = append(p.curData.Bytes, 0)
	default:
		return p.errf(n, "unknown directive %q", word)
	}
	return nil
}

func (p *parser) emitData(n int, args []string, width int) error {
	if p.curData == nil {
		return p.errf(n, "data directive outside a data symbol")
	}
	if p.section == "bss" {
		return p.errf(n, "initialised data in .bss")
	}
	for _, a := range args {
		v, err := p.constExpr(n, a)
		if err != nil {
			return err
		}
		u := uint32(v)
		for i := 0; i < width; i++ {
			p.curData.Bytes = append(p.curData.Bytes, byte(u))
			u >>= 8
		}
	}
	return nil
}

// constExpr evaluates a compile-time constant: NUMBER, EQUATE, or a +/-
// chain of those.
func (p *parser) constExpr(n int, s string) (int32, error) {
	total := int64(0)
	for _, t := range splitTerms(s) {
		v, err := p.term(n, t.text)
		if err != nil {
			return 0, err
		}
		if t.neg {
			total -= int64(v)
		} else {
			total += int64(v)
		}
	}
	return int32(total), nil
}

func (p *parser) term(n int, s string) (int32, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, p.errf(n, "empty term in constant expression")
	}
	if v, ok := p.unit.Equates[s]; ok {
		return v, nil
	}
	v, err := parseNumber(s)
	if err != nil {
		return 0, p.errf(n, "bad constant %q (not a number or equate)", s)
	}
	return v, nil
}

type exprTerm struct {
	text string
	neg  bool
}

// splitTerms splits "a+b-c" into signed terms, keeping a leading sign on
// the first term's number (e.g. "-4").
func splitTerms(s string) []exprTerm {
	var out []exprTerm
	neg := false
	cur := strings.Builder{}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c == '+' || c == '-') && cur.Len() > 0 {
			out = append(out, exprTerm{cur.String(), neg})
			cur.Reset()
			neg = c == '-'
			continue
		}
		if c == '-' && cur.Len() == 0 {
			// leading minus binds to the term
			cur.WriteByte(c)
			continue
		}
		if c == '+' && cur.Len() == 0 {
			continue
		}
		cur.WriteByte(c)
	}
	if cur.Len() > 0 {
		out = append(out, exprTerm{cur.String(), neg})
	}
	return out
}

func parseNumber(s string) (int32, error) {
	s = strings.TrimSpace(s)
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// allow full-range unsigned hex like 0xfffff000
		u, uerr := strconv.ParseUint(s, 0, 32)
		if uerr != nil {
			return 0, err
		}
		return int32(u), nil
	}
	if v > 0xFFFFFFFF || v < -0x80000000 {
		return 0, fmt.Errorf("constant %q out of 32-bit range", s)
	}
	return int32(uint32(v)), nil
}

// splitArgs splits on commas that are not inside parentheses or quotes.
func splitArgs(s string) []string {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '(':
			if !inStr {
				depth++
			}
		case ')':
			if !inStr {
				depth--
			}
		case ',':
			if depth == 0 && !inStr {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	tail := strings.TrimSpace(s[start:])
	if tail != "" {
		out = append(out, tail)
	}
	return out
}

// instruction parses one instruction statement.
func (p *parser) instruction(n int, raw string, rep isa.Rep) error {
	if p.section != "text" {
		return p.errf(n, "instruction outside .text")
	}
	if p.cur == nil {
		return p.errf(n, "instruction before any function label")
	}
	mnemonic, rest := splitWord(raw)
	args := splitArgs(rest)

	inst, err := p.decode(n, mnemonic, args)
	if err != nil {
		return err
	}
	inst.Rep = rep
	if rep != isa.RepNone && !inst.IsString() {
		return p.errf(n, "rep prefix on non-string instruction %q", mnemonic)
	}
	inst.Line = n

	idx := len(p.cur.Insts)
	if len(p.pendingLabels) > 0 {
		inst.Label = p.pendingLabels[0]
		for _, l := range p.pendingLabels {
			if _, dup := p.cur.Labels[l]; dup {
				return p.errf(n, "duplicate label %q in function %q", l, p.cur.Name)
			}
			p.cur.Labels[l] = idx
		}
		p.pendingLabels = p.pendingLabels[:0]
	}
	p.cur.Insts = append(p.cur.Insts, inst)
	return nil
}

// decode maps a mnemonic + operands to an instruction.
func (p *parser) decode(n int, mnemonic string, args []string) (isa.Inst, error) {
	var inst isa.Inst

	// Exact-match no-operand forms first (movsb the string op vs movsbl the
	// sign-extending move is the classic ambiguity).
	switch mnemonic {
	case "ret":
		return isa.Inst{Op: isa.RET}, nil
	case "nop":
		return isa.Inst{Op: isa.NOP}, nil
	case "hlt":
		return isa.Inst{Op: isa.HLT}, nil
	case "cli":
		return isa.Inst{Op: isa.CLI}, nil
	case "sti":
		return isa.Inst{Op: isa.STI}, nil
	case "ud2":
		return isa.Inst{Op: isa.UD2}, nil
	case "clc":
		return isa.Inst{Op: isa.CLC}, nil
	case "stc":
		return isa.Inst{Op: isa.STC}, nil
	case "cld":
		return isa.Inst{Op: isa.CLD}, nil
	case "std":
		return isa.Inst{Op: isa.STD}, nil
	case "pushf", "pushfl":
		return isa.Inst{Op: isa.PUSHF}, nil
	case "popf", "popfl":
		return isa.Inst{Op: isa.POPF}, nil
	case "inl", "inw", "inb":
		return isa.Inst{Op: isa.IN, Size: suffixSize(mnemonic[2:])}, nil
	case "outl", "outw", "outb":
		return isa.Inst{Op: isa.OUT, Size: suffixSize(mnemonic[3:])}, nil
	case "movsb", "movsw", "movsl":
		return isa.Inst{Op: isa.MOVS, Size: suffixSize(mnemonic[4:])}, nil
	case "stosb", "stosw", "stosl":
		return isa.Inst{Op: isa.STOS, Size: suffixSize(mnemonic[4:])}, nil
	case "lodsb", "lodsw", "lodsl":
		return isa.Inst{Op: isa.LODS, Size: suffixSize(mnemonic[4:])}, nil
	case "cmpsb", "cmpsw", "cmpsl":
		return isa.Inst{Op: isa.CMPS, Size: suffixSize(mnemonic[4:])}, nil
	case "scasb", "scasw", "scasl":
		return isa.Inst{Op: isa.SCAS, Size: suffixSize(mnemonic[4:])}, nil
	case "int":
		if len(args) != 1 {
			return inst, p.errf(n, "int wants one immediate")
		}
		op, err := p.operand(n, args[0])
		if err != nil {
			return inst, err
		}
		return isa.Inst{Op: isa.INT, Src: op}, nil
	case "jmp", "call":
		op := isa.JMP
		if mnemonic == "call" {
			op = isa.CALL
		}
		if len(args) != 1 {
			return inst, p.errf(n, "%s wants one target", mnemonic)
		}
		if strings.HasPrefix(args[0], "*") {
			o, err := p.operand(n, args[0][1:])
			if err != nil {
				return inst, err
			}
			return isa.Inst{Op: op, Indirect: true, Src: o}, nil
		}
		if !isSymbol(args[0]) {
			return inst, p.errf(n, "%s target %q is not a symbol", mnemonic, args[0])
		}
		return isa.Inst{Op: op, Target: args[0]}, nil
	}

	// movz / movs extensions: movzbl, movzwl, movsbl, movswl.
	if len(mnemonic) == 6 && (strings.HasPrefix(mnemonic, "movz") || strings.HasPrefix(mnemonic, "movs")) &&
		mnemonic[5] == 'l' && (mnemonic[4] == 'b' || mnemonic[4] == 'w') {
		op := isa.MOVZX
		if mnemonic[3] == 's' {
			op = isa.MOVSX
		}
		src, dst, err := p.twoOperands(n, mnemonic, args)
		if err != nil {
			return inst, err
		}
		return isa.Inst{Op: op, Size: suffixSize(mnemonic[4:5]), Src: src, Dst: dst}, nil
	}

	// Conditional jumps and sets.
	if strings.HasPrefix(mnemonic, "j") {
		if cond, ok := isa.CondByName(mnemonic[1:]); ok {
			if len(args) != 1 || !isSymbol(args[0]) {
				return inst, p.errf(n, "%s wants a label target", mnemonic)
			}
			return isa.Inst{Op: isa.JCC, Cond: cond, Target: args[0]}, nil
		}
	}
	if strings.HasPrefix(mnemonic, "set") {
		if cond, ok := isa.CondByName(mnemonic[3:]); ok {
			if len(args) != 1 {
				return inst, p.errf(n, "%s wants one operand", mnemonic)
			}
			dst, err := p.operand(n, args[0])
			if err != nil {
				return inst, err
			}
			return isa.Inst{Op: isa.SETCC, Cond: cond, Size: 1, Dst: dst}, nil
		}
	}

	// General size-suffixed forms.
	base, size := mnemonic, uint8(0)
	if len(mnemonic) > 1 {
		switch mnemonic[len(mnemonic)-1] {
		case 'l':
			base, size = mnemonic[:len(mnemonic)-1], 4
		case 'w':
			base, size = mnemonic[:len(mnemonic)-1], 2
		case 'b':
			base, size = mnemonic[:len(mnemonic)-1], 1
		}
	}
	op, nops, ok := lookupOp(base)
	if !ok {
		// Retry without stripping (mnemonics like "imul" without suffix).
		op, nops, ok = lookupOp(mnemonic)
		size = 4
		if !ok {
			return inst, p.errf(n, "unknown mnemonic %q", mnemonic)
		}
	}
	if len(args) != nops {
		return inst, p.errf(n, "%s wants %d operand(s), got %d", mnemonic, nops, len(args))
	}
	switch nops {
	case 1:
		o, err := p.operand(n, args[0])
		if err != nil {
			return inst, err
		}
		switch op {
		case isa.PUSH:
			return isa.Inst{Op: op, Size: size, Src: o}, nil
		default: // pop, inc, dec, neg, not, mul, div
			return isa.Inst{Op: op, Size: size, Dst: o}, nil
		}
	case 2:
		src, dst, err := p.twoOperands(n, mnemonic, args)
		if err != nil {
			return inst, err
		}
		if src.Kind == isa.KindMem && dst.Kind == isa.KindMem {
			return inst, p.errf(n, "%s: two memory operands not allowed", mnemonic)
		}
		return isa.Inst{Op: op, Size: size, Src: src, Dst: dst}, nil
	}
	return inst, p.errf(n, "unhandled mnemonic %q", mnemonic)
}

func (p *parser) twoOperands(n int, mnemonic string, args []string) (src, dst isa.Operand, err error) {
	if len(args) != 2 {
		return src, dst, p.errf(n, "%s wants 2 operands, got %d", mnemonic, len(args))
	}
	if src, err = p.operand(n, args[0]); err != nil {
		return
	}
	dst, err = p.operand(n, args[1])
	return
}

func suffixSize(s string) uint8 {
	switch s {
	case "b":
		return 1
	case "w":
		return 2
	}
	return 4
}

// lookupOp maps a base mnemonic to (op, operand count).
func lookupOp(base string) (isa.Op, int, bool) {
	switch base {
	case "mov":
		return isa.MOV, 2, true
	case "lea":
		return isa.LEA, 2, true
	case "xchg":
		return isa.XCHG, 2, true
	case "add":
		return isa.ADD, 2, true
	case "sub":
		return isa.SUB, 2, true
	case "adc":
		return isa.ADC, 2, true
	case "sbb":
		return isa.SBB, 2, true
	case "and":
		return isa.AND, 2, true
	case "or":
		return isa.OR, 2, true
	case "xor":
		return isa.XOR, 2, true
	case "cmp":
		return isa.CMP, 2, true
	case "test":
		return isa.TEST, 2, true
	case "shl", "sal":
		return isa.SHL, 2, true
	case "shr":
		return isa.SHR, 2, true
	case "sar":
		return isa.SAR, 2, true
	case "imul":
		return isa.IMUL, 2, true
	case "push":
		return isa.PUSH, 1, true
	case "pop":
		return isa.POP, 1, true
	case "inc":
		return isa.INC, 1, true
	case "dec":
		return isa.DEC, 1, true
	case "neg":
		return isa.NEG, 1, true
	case "not":
		return isa.NOT, 1, true
	case "mul":
		return isa.MUL, 1, true
	case "div":
		return isa.DIV, 1, true
	}
	return isa.INVALID, 0, false
}

// operand parses a single operand.
func (p *parser) operand(n int, s string) (isa.Operand, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return isa.Operand{}, p.errf(n, "empty operand")
	}
	switch s[0] {
	case '$':
		return p.immOperand(n, s[1:])
	case '%':
		r, ok := isa.RegByName(s[1:])
		if !ok {
			return isa.Operand{}, p.errf(n, "unknown register %q", s)
		}
		return isa.RegOp(r), nil
	}
	return p.memOperand(n, s)
}

func (p *parser) immOperand(n int, s string) (isa.Operand, error) {
	// $number, $equate, $sym, $sym+off — with any +/- chain.
	var sym string
	total := int64(0)
	for _, t := range splitTerms(s) {
		if v, ok := p.unit.Equates[t.text]; ok {
			if t.neg {
				total -= int64(v)
			} else {
				total += int64(v)
			}
			continue
		}
		if v, err := parseNumber(t.text); err == nil {
			if t.neg {
				total -= int64(v)
			} else {
				total += int64(v)
			}
			continue
		}
		if isSymbol(t.text) && !t.neg {
			if sym != "" {
				return isa.Operand{}, p.errf(n, "immediate with two symbols: %q", s)
			}
			sym = t.text
			continue
		}
		return isa.Operand{}, p.errf(n, "bad immediate term %q", t.text)
	}
	return isa.Operand{Kind: isa.KindImm, Imm: int32(total), Sym: sym}, nil
}

// memOperand parses disp(base,index,scale) with an optional symbol in the
// displacement, or a bare displacement/symbol (absolute address).
func (p *parser) memOperand(n int, s string) (isa.Operand, error) {
	o := isa.Operand{Kind: isa.KindMem, Base: isa.RegNone, Index: isa.RegNone, Scale: 1}
	dispPart := s
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return o, p.errf(n, "unbalanced parens in %q", s)
		}
		dispPart = strings.TrimSpace(s[:i])
		inner := s[i+1 : len(s)-1]
		parts := strings.Split(inner, ",")
		if len(parts) > 3 {
			return o, p.errf(n, "too many address components in %q", s)
		}
		if len(parts) >= 1 {
			b := strings.TrimSpace(parts[0])
			if b != "" {
				if !strings.HasPrefix(b, "%") {
					return o, p.errf(n, "bad base register %q", b)
				}
				r, ok := isa.RegByName(b[1:])
				if !ok {
					return o, p.errf(n, "unknown base register %q", b)
				}
				o.Base = r
			}
		}
		if len(parts) >= 2 {
			x := strings.TrimSpace(parts[1])
			if x != "" {
				if !strings.HasPrefix(x, "%") {
					return o, p.errf(n, "bad index register %q", x)
				}
				r, ok := isa.RegByName(x[1:])
				if !ok {
					return o, p.errf(n, "unknown index register %q", x)
				}
				if r == isa.ESP {
					return o, p.errf(n, "%%esp cannot be an index register")
				}
				o.Index = r
			}
		}
		if len(parts) == 3 {
			sc := strings.TrimSpace(parts[2])
			v, err := parseNumber(sc)
			if err != nil || (v != 1 && v != 2 && v != 4 && v != 8) {
				return o, p.errf(n, "bad scale %q", sc)
			}
			o.Scale = uint8(v)
		}
	}
	if dispPart != "" {
		total := int64(0)
		for _, t := range splitTerms(dispPart) {
			if v, ok := p.unit.Equates[t.text]; ok {
				if t.neg {
					total -= int64(v)
				} else {
					total += int64(v)
				}
				continue
			}
			if v, err := parseNumber(t.text); err == nil {
				if t.neg {
					total -= int64(v)
				} else {
					total += int64(v)
				}
				continue
			}
			if isSymbol(t.text) && !t.neg {
				if o.Sym != "" {
					return o, p.errf(n, "memory operand with two symbols: %q", s)
				}
				o.Sym = t.text
				continue
			}
			return o, p.errf(n, "bad displacement term %q in %q", t.text, s)
		}
		o.Disp = int32(total)
	}
	return o, nil
}
