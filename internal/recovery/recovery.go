// Package recovery is the supervisor that turns driver faults from a
// terminal state into a transient, measurable event. The containment story
// of §4.5 ends with the faulted hypervisor instance dead and every call
// returning ErrDriverDead forever; for a hypervisor serving many guests
// that means one wild write permanently kills networking for all of them.
//
// The supervisor builds shadow-driver-style restart on top of the existing
// containment machinery:
//
//   - core's abort already tears the faulted instance down cleanly
//     (in-flight pooled buffers reclaimed, guest rings reset, coalescing
//     windows closed) and records what was lost;
//   - core's configuration log records the twin's history (netdev setup,
//     probe, open with its IRQ registration, guest MAC routes, guest
//     rings) as a replayable object log;
//   - Twin.Revive re-derives a fresh instance through the same
//     rewrite/kernel pipeline and replays that log.
//
// What this package adds is policy and measurement: when to revive, when a
// flapping driver must be given up on (K faults inside a cycle window),
// and how long each recovery took (MTTR in cycles) alongside the packets
// it cost. The watchdog budget re-arms automatically with the new
// instance — every invocation runs under the configured instruction
// budget — and the replayed open re-arms the driver's own dom0 watchdog
// timer.
package recovery

import (
	"errors"
	"fmt"

	"twindrivers/internal/core"
	"twindrivers/internal/cpu"
	"twindrivers/internal/telemetry"
)

// ErrGivenUp reports that the fault rate exceeded the escalation policy:
// the twin stays dead and no further recoveries are attempted.
var ErrGivenUp = errors.New("recovery: fault rate exceeded policy, instance left dead")

// Policy bounds how hard the supervisor tries.
type Policy struct {
	// MaxFaults is K in "K faults inside Window and we give up": when the
	// K-th fault lands within Window cycles of the (K-1)-th-back fault,
	// the twin is left dead. 0 means 3.
	MaxFaults int

	// Window is the escalation window, in lifetime cycles (the meter's
	// monotonic clock, which measurement-epoch resets do not disturb).
	// 0 means 200 million cycles (~67 ms of simulated machine time).
	Window uint64

	// MaxRecoveries caps the supervisor's lifetime recovery count. Every
	// rebuild permanently consumes hypervisor reload arenas (gates, stlb
	// table, stack — the xen model's allocators are append-only), so a
	// slow flapper whose faults never land inside Window must still
	// exhaust a finite budget instead of leaking hypervisor memory
	// forever. 0 means 256.
	MaxRecoveries int
}

func (p *Policy) defaults() {
	if p.MaxFaults == 0 {
		p.MaxFaults = 3
	}
	if p.Window == 0 {
		p.Window = 200_000_000
	}
	if p.MaxRecoveries == 0 {
		p.MaxRecoveries = 256
	}
}

// Event records one recovery: what faulted, what the restart cost, and
// what the teardown lost.
type Event struct {
	// Fault attribution, copied from the twin's fault record.
	Kind  cpu.FaultKind
	Entry string
	Cause string

	// MTTRCycles is the simulated machine time from the decision to
	// recover until the replayed configuration finished: re-derivation,
	// image layout, probe, open, RX refill, ring re-attach.
	MTTRCycles uint64

	// Teardown loss accounting, copied from the abort.
	StagedTxDiscarded int
	RxPendingDropped  int
	RxPostedDiscarded int
	SkbsReclaimed     int

	// Attempt numbers the recovery (1-based) over the supervisor's life.
	Attempt int
}

// Supervisor owns the recovery policy for one twin.
type Supervisor struct {
	M      *core.Machine
	T      *core.Twin
	Policy Policy

	// Events is the recovery history, oldest first.
	Events []Event

	// GivenUp is set once the escalation policy trips; the twin then
	// stays dead (the paper's original containment behaviour).
	GivenUp bool

	stamps []uint64 // lifetime-cycle timestamps of recent faults
}

// New builds a supervisor over a twin.
func New(m *core.Machine, t *core.Twin, p Policy) *Supervisor {
	p.defaults()
	return &Supervisor{M: m, T: t, Policy: p}
}

// Recoveries returns how many successful recoveries the supervisor has
// performed.
func (s *Supervisor) Recoveries() int { return len(s.Events) }

// Recover revives a dead twin under the escalation policy. It returns the
// recovery event on success, (nil, nil) when the twin is not dead, and
// ErrGivenUp once the policy has tripped — permanently: a driver faulting
// K times inside the window is treated as deterministically broken, and
// re-deriving it again would only burn cycles reaching the same fault.
func (s *Supervisor) Recover() (*Event, error) {
	if s.GivenUp {
		return nil, ErrGivenUp
	}
	if !s.T.Dead {
		return nil, nil
	}
	meter := s.M.CPU.Meter

	// The fault and loss accounting to report, captured before the revive
	// can overwrite anything.
	ev := Event{
		StagedTxDiscarded: s.T.LastAbort.StagedTxDiscarded,
		RxPendingDropped:  s.T.LastAbort.RxPendingDropped,
		RxPostedDiscarded: s.T.LastAbort.RxPostedDiscarded,
		SkbsReclaimed:     s.T.LastAbort.SkbsReclaimed,
		Attempt:           len(s.Events) + 1,
	}
	// The moment the fault actually happened, from the twin's log — not
	// the moment this call noticed it, which a lazy caller could delay
	// past the window and let a flapping driver dodge escalation.
	faultAt := meter.Lifetime()
	if log := s.T.FaultLog(); len(log) > 0 {
		last := log[len(log)-1]
		ev.Kind, ev.Entry, ev.Cause = last.Kind, last.Entry, last.Cause
		faultAt = last.Cycle
	}

	// Escalation: slide the window, then count this fault inside it.
	keep := s.stamps[:0]
	for _, st := range s.stamps {
		if faultAt-st <= s.Policy.Window {
			keep = append(keep, st)
		}
	}
	s.stamps = append(keep, faultAt)
	if len(s.stamps) >= s.Policy.MaxFaults {
		s.GivenUp = true
		return nil, fmt.Errorf("%w (%d faults within %d cycles)", ErrGivenUp, len(s.stamps), s.Policy.Window)
	}
	// The lifetime budget: each rebuild consumes reload arenas the xen
	// model never reclaims, so even well-spaced faults have a finite
	// allowance.
	if len(s.Events) >= s.Policy.MaxRecoveries {
		s.GivenUp = true
		return nil, fmt.Errorf("%w (lifetime budget of %d recoveries spent)", ErrGivenUp, s.Policy.MaxRecoveries)
	}

	// MTTR: everything from here until the twin is live again, on the
	// monotonic clock — re-derivation, layout, probe/open replay, ring
	// re-attach, plus the domain switches the replay performs.
	cur := s.M.HV.Current
	start := meter.Lifetime()
	if err := s.T.Revive(); err != nil {
		// A failed rebuild is not a transient: stop trying.
		s.GivenUp = true
		return nil, err
	}
	s.M.HV.Switch(cur) // restore the interrupted guest's context
	ev.MTTRCycles = meter.Lifetime() - start

	s.Events = append(s.Events, ev)
	return &ev, nil
}

// PublishMetrics registers the supervisor's recovery gauges — count,
// MTTR (last and mean), and the give-up flag — with a telemetry
// registry, labelled so several supervised twins stay distinct.
func (s *Supervisor) PublishMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	labels := map[string]string{
		"backend": s.M.Model.Name,
		"sup":     fmt.Sprintf("%d", reg.NextInstance()),
	}
	reg.Register("recovery_recoveries_total", labels, func() float64 {
		return float64(s.Recoveries())
	})
	reg.Register("recovery_given_up", labels, func() float64 {
		if s.GivenUp {
			return 1
		}
		return 0
	})
	reg.Register("recovery_mttr_cycles_last", labels, func() float64 {
		if len(s.Events) == 0 {
			return 0
		}
		return float64(s.Events[len(s.Events)-1].MTTRCycles)
	})
	reg.Register("recovery_mttr_cycles_mean", labels, func() float64 {
		if len(s.Events) == 0 {
			return 0
		}
		var sum uint64
		for _, ev := range s.Events {
			sum += ev.MTTRCycles
		}
		return float64(sum) / float64(len(s.Events))
	})
}
