package recovery

import (
	"twindrivers/internal/core"
	"twindrivers/internal/cpu"
	"twindrivers/internal/kernel"
)

// Fault injectors for the three §4.5 containment scenarios, shared by the
// recovery experiment, the faultinjection example and the tests. Each one
// corrupts shared driver state the way a buggy driver would, so the next
// hypervisor-instance invocation faults and the supervisor gets to prove
// the restart story per fault type.

// Adapter offsets mirrored from the driver source (guarded by
// TestDriverSourceDocumentsAdapterLayout in internal/e1000 and
// TestInjectorAdapterOffsets here).
const (
	adRxd     = 28 // AD_RXD: RX descriptor ring base pointer
	adRxbi    = 44 // AD_RXBI: RX buffer_info array (8 bytes/entry: skb, dma)
	adCleanRx = 52 // AD_CLEAN_RX: RX cleaner function pointer (indirect call)

	rxRingSlots  = 256 // RX_RING
	rxDescBytes  = 16  // one legacy RX descriptor
	rxDescLen    = 8   // length word offset within a descriptor
	rxDescStatus = 12  // status byte offset within a descriptor
	rxBiBytes    = 8   // one buffer_info entry
)

// Injector is one reproducible driver bug.
type Injector struct {
	// Name labels the fault type in reports ("wild-write", ...).
	Name string

	// Kind is the CPU fault the containment machinery is expected to
	// classify this bug as — the per-type coverage the recovery tests
	// assert (a "runaway loop" that dies on a stray pointer instead of
	// the watchdog would silently stop exercising budget exhaustion).
	Kind cpu.FaultKind

	// TriggerOnRx is true when the corrupted state sits on the receive
	// path: the fault fires on the next interrupt, so the experiment
	// drives receive traffic to trip it. False means the transmit path
	// trips it.
	TriggerOnRx bool

	// Inject corrupts the shared driver/twin state.
	Inject func(m *core.Machine, tw *core.Twin, d *core.NICDev) error
}

// InjectorByName returns the named fault injector ("wild-write",
// "runaway-loop", "corrupt-fnptr").
func InjectorByName(name string) (Injector, bool) {
	for _, inj := range Injectors() {
		if inj.Name == name {
			return inj, true
		}
	}
	return Injector{}, false
}

// Injectors returns the three fault types of the containment story, now
// each recoverable:
//
//   - wild-write: netdev->priv aimed at hypervisor memory; the next
//     dereference through SVM is denied (§4.1).
//   - runaway-loop: a buffer-leak livelock. The driver "leaks" every
//     pooled buffer and the RX descriptor statuses are scribbled with
//     DESC_DD, so the cleaner sees an endlessly-ready ring; with
//     allocation failing, its no-memory path advances without ever
//     clearing a status and the loop is genuinely infinite — the
//     VINO-style watchdog instruction budget cuts it off mid-invocation
//     (§4.5.2), and the abort's outstanding-buffer sweep heals the leak.
//   - corrupt-fnptr: the RX cleaner pointer scribbled with a non-function
//     value; the rewritten indirect call's translation and the CPU's
//     function-entry check fault it (§5.1.2).
func Injectors() []Injector {
	return []Injector{
		{
			Name: "wild-write",
			Kind: cpu.FaultProtection,
			Inject: func(m *core.Machine, tw *core.Twin, d *core.NICDev) error {
				return m.Dom0.AS.Store(d.Netdev+kernel.NdPriv, 4, 0xF1000040)
			},
		},
		{
			Name:        "runaway-loop",
			Kind:        cpu.FaultWatchdog,
			TriggerOnRx: true,
			Inject: func(m *core.Machine, tw *core.Twin, d *core.NICDev) error {
				tw.LeakPooledBuffers(tw.PoolFree())
				load := func(a uint32) (uint32, error) { return m.Dom0.AS.Load(a, 4) }
				priv, err := load(d.Netdev + kernel.NdPriv)
				if err != nil {
					return err
				}
				rxd, err := load(priv + adRxd)
				if err != nil {
					return err
				}
				rxbi, err := load(priv + adRxbi)
				if err != nil {
					return err
				}
				// The one hardware-owned (unposted) slot has no buffer;
				// alias slot 0's stale buffer into it — the recycled-stale-
				// pointer half of the bug — so the ring never presents the
				// cleaner a hole to stop in.
				skb0, err := load(rxbi)
				if err != nil {
					return err
				}
				dma0, err := load(rxbi + 4)
				if err != nil {
					return err
				}
				for i := uint32(0); i < rxRingSlots; i++ {
					bi := rxbi + i*rxBiBytes
					if cur, err := load(bi); err != nil {
						return err
					} else if cur == 0 {
						if err := m.Dom0.AS.Store(bi, 4, skb0); err != nil {
							return err
						}
						if err := m.Dom0.AS.Store(bi+4, 4, dma0); err != nil {
							return err
						}
					}
					desc := rxd + i*rxDescBytes
					// A length above the copybreak keeps the cleaner on
					// the refill path, whose allocation failure loops
					// without clearing DESC_DD.
					if err := m.Dom0.AS.Store(desc+rxDescLen, 2, 1024); err != nil {
						return err
					}
					if err := m.Dom0.AS.Store(desc+rxDescStatus, 1, 1); err != nil { // DESC_DD
						return err
					}
				}
				return nil
			},
		},
		{
			Name:        "corrupt-fnptr",
			Kind:        cpu.FaultBadCall,
			TriggerOnRx: true,
			Inject: func(m *core.Machine, tw *core.Twin, d *core.NICDev) error {
				priv, err := m.Dom0.AS.Load(d.Netdev+kernel.NdPriv, 4)
				if err != nil {
					return err
				}
				return m.Dom0.AS.Store(priv+adCleanRx, 4, 0x1234)
			},
		},
	}
}
