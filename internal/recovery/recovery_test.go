package recovery

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"twindrivers/internal/core"
	"twindrivers/internal/e1000"
)

// TestInjectorAdapterOffsets pins the adapter equates the injectors
// mirror: if the driver's layout moves, the injectors must move with it
// or they corrupt the wrong words and stop injecting the faults they
// claim.
func TestInjectorAdapterOffsets(t *testing.T) {
	for _, decl := range []string{
		".equ\tAD_RXD, 28", ".equ\tAD_CLEAN_RX, 52",
		".equ\tRX_RING, 256", ".equ\tCOPYBREAK, 256",
	} {
		if !strings.Contains(e1000.Source, decl) {
			t.Errorf("driver source lost %q; injectors are aimed at stale offsets", decl)
		}
	}
}

func newTwin(t *testing.T, guests int, cfg core.TwinConfig) (*core.Machine, *core.Twin, *core.NICDev) {
	t.Helper()
	if cfg.Watchdog == 0 {
		cfg.Watchdog = 200_000 // keep runaway-loop containment fast
	}
	m, tw, err := core.NewTwinMachine(1, guests, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, tw, m.Devs[0]
}

// trip injects the fault and drives traffic until the twin dies.
func trip(t *testing.T, m *core.Machine, tw *core.Twin, d *core.NICDev, inj Injector) {
	t.Helper()
	if err := inj.Inject(m, tw, d); err != nil {
		t.Fatal(err)
	}
	m.HV.Switch(m.DomU)
	if inj.TriggerOnRx {
		rx := core.EthernetFrame(d.NIC.MAC, [6]byte{9, 9, 9, 9, 9, 9}, 0x0800, make([]byte, 128))
		if !d.NIC.Inject(rx) {
			t.Fatal("inject")
		}
		if err := tw.HandleIRQ(d); !errors.Is(err, core.ErrDriverDead) {
			t.Fatalf("%s: IRQ err = %v, want ErrDriverDead", inj.Name, err)
		}
	} else {
		frame := core.EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.NIC.MAC, 0x0800, make([]byte, 256))
		if err := tw.GuestTransmit(d, frame); !errors.Is(err, core.ErrDriverDead) {
			t.Fatalf("%s: transmit err = %v, want ErrDriverDead", inj.Name, err)
		}
	}
	if !tw.Dead {
		t.Fatalf("%s: twin alive after fault", inj.Name)
	}
}

// TestRecoverEachFaultType: for every injector, the supervisor revives the
// twin, reports a nonzero MTTR with the right fault attribution, and
// traffic moves again.
func TestRecoverEachFaultType(t *testing.T) {
	for _, inj := range Injectors() {
		inj := inj
		t.Run(inj.Name, func(t *testing.T) {
			m, tw, d := newTwin(t, 1, core.TwinConfig{})
			var wire [][]byte
			d.NIC.OnTransmit = func(p []byte) { wire = append(wire, append([]byte(nil), p...)) }
			trip(t, m, tw, d, inj)

			s := New(m, tw, Policy{})
			ev, err := s.Recover()
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if ev == nil || ev.MTTRCycles == 0 {
				t.Fatalf("event = %+v, want nonzero MTTR", ev)
			}
			if ev.Attempt != 1 || s.Recoveries() != 1 {
				t.Errorf("attempt = %d, recoveries = %d", ev.Attempt, s.Recoveries())
			}
			if ev.Cause == "" || ev.Entry == "" {
				t.Errorf("fault attribution missing: %+v", ev)
			}
			// Each injector must die the way its fault type claims —
			// the runaway loop via the watchdog budget, not a stray
			// pointer — or the per-type teardown coverage is fictional.
			if ev.Kind != inj.Kind {
				t.Errorf("fault kind = %v, want %v", ev.Kind, inj.Kind)
			}
			// Traffic resumes: transmit and receive both work.
			m.HV.Switch(m.DomU)
			frame := core.EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.NIC.MAC, 0x0800, make([]byte, 300))
			if err := tw.GuestTransmit(d, frame); err != nil {
				t.Fatalf("transmit after recovery: %v", err)
			}
			if len(wire) == 0 || !bytes.Equal(wire[len(wire)-1], frame) {
				t.Fatal("recovered transmit never reached the wire")
			}
			rx := core.EthernetFrame(d.NIC.MAC, [6]byte{8, 8, 8, 8, 8, 8}, 0x0800, make([]byte, 200))
			if !d.NIC.Inject(rx) {
				t.Fatal("inject")
			}
			if err := tw.HandleIRQ(d); err != nil {
				t.Fatalf("IRQ after recovery: %v", err)
			}
			if pkts, err := tw.DeliverPending(m.DomU); err != nil || len(pkts) != 1 {
				t.Fatalf("delivery after recovery: %d pkts, %v", len(pkts), err)
			}
		})
	}
}

// TestEscalationGivesUp: K faults inside the window trip the policy; the
// twin stays dead and further Recover calls keep refusing.
func TestEscalationGivesUp(t *testing.T) {
	m, tw, d := newTwin(t, 1, core.TwinConfig{})
	d.NIC.OnTransmit = func([]byte) {}
	inj := Injectors()[0]
	// A huge window: three rapid faults always land inside it.
	s := New(m, tw, Policy{MaxFaults: 3, Window: 1 << 60})

	for i := 0; i < 2; i++ {
		trip(t, m, tw, d, inj)
		if _, err := s.Recover(); err != nil {
			t.Fatalf("recovery %d refused: %v", i+1, err)
		}
	}
	trip(t, m, tw, d, inj)
	if _, err := s.Recover(); !errors.Is(err, ErrGivenUp) {
		t.Fatalf("third fault in window: err = %v, want ErrGivenUp", err)
	}
	if !s.GivenUp || !tw.Dead {
		t.Fatal("supervisor gave up but state disagrees")
	}
	// Permanently dead: the original containment behaviour.
	if _, err := s.Recover(); !errors.Is(err, ErrGivenUp) {
		t.Fatal("Recover after give-up must keep refusing")
	}
	if err := tw.GuestTransmit(d, core.EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.NIC.MAC, 0x0800, make([]byte, 100))); !errors.Is(err, core.ErrDriverDead) {
		t.Fatalf("dead twin accepted work: %v", err)
	}
}

// TestEscalationWindowSlides: faults spaced wider than the window never
// accumulate to the give-up threshold.
func TestEscalationWindowSlides(t *testing.T) {
	m, tw, d := newTwin(t, 1, core.TwinConfig{})
	d.NIC.OnTransmit = func([]byte) {}
	inj := Injectors()[0]
	// A tiny window: by the time the next fault happens, the previous
	// stamp has aged out (any real traffic burns >1000 cycles).
	s := New(m, tw, Policy{MaxFaults: 2, Window: 1000})

	frame := core.EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.NIC.MAC, 0x0800, make([]byte, 400))
	for i := 0; i < 4; i++ {
		trip(t, m, tw, d, inj)
		if _, err := s.Recover(); err != nil {
			t.Fatalf("recovery %d refused: %v", i+1, err)
		}
		// Healthy traffic between faults ages the window out.
		m.HV.Switch(m.DomU)
		for j := 0; j < 8; j++ {
			if err := tw.GuestTransmit(d, frame); err != nil {
				t.Fatalf("traffic after recovery %d: %v", i+1, err)
			}
		}
	}
	if s.GivenUp {
		t.Fatal("well-spaced faults tripped the escalation window")
	}
}

// TestRecoverIsNoOpWhileAlive: supervising a healthy twin costs nothing.
func TestRecoverIsNoOpWhileAlive(t *testing.T) {
	m, tw, _ := newTwin(t, 1, core.TwinConfig{})
	s := New(m, tw, Policy{})
	ev, err := s.Recover()
	if ev != nil || err != nil {
		t.Fatalf("Recover on live twin = %+v, %v", ev, err)
	}
	if s.Recoveries() != 0 {
		t.Fatal("phantom recovery recorded")
	}
}

// TestMultiGuestRecoveryKeepsAllGuests: with four guests, a fault followed
// by supervised recovery leaves every guest's ring and route working.
func TestMultiGuestRecoveryKeepsAllGuests(t *testing.T) {
	m, tw, d := newTwin(t, 4, core.TwinConfig{})
	var wire int
	d.NIC.OnTransmit = func([]byte) { wire++ }
	s := New(m, tw, Policy{})

	trip(t, m, tw, d, Injectors()[0])
	ev, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if ev.MTTRCycles == 0 {
		t.Fatal("zero MTTR")
	}
	for _, dom := range m.Guests {
		m.HV.Switch(dom)
		frames := [][]byte{core.EthernetFrame([6]byte{2, 2, 2, 2, 2, byte(dom.ID)}, d.NIC.MAC, 0x0800, make([]byte, 200))}
		if staged, err := tw.StageTransmitBatch(dom, frames); err != nil || staged != 1 {
			t.Fatalf("guest %d staging after recovery: %d, %v", dom.ID, staged, err)
		}
	}
	sent, err := tw.ServiceRings(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range sent {
		total += n
	}
	if total != len(m.Guests) || wire != len(m.Guests) {
		t.Fatalf("post-recovery fan-out moved %d staged / %d wire, want %d", total, wire, len(m.Guests))
	}
}

// TestBatchOfOneCycleIdenticalAfterRecovery: the load-bearing batching
// invariant (a batch of one charges exactly the per-packet path's cycles)
// must survive recovery — for every fault type, a revived instance keeps
// batch=1 cycle-identical to GuestTransmit.
func TestBatchOfOneCycleIdenticalAfterRecovery(t *testing.T) {
	for _, inj := range Injectors() {
		inj := inj
		t.Run(inj.Name, func(t *testing.T) {
			run := func(batched bool) (uint64, uint64) {
				m, tw, d := newTwin(t, 1, core.TwinConfig{})
				d.NIC.OnTransmit = func([]byte) {}
				trip(t, m, tw, d, inj)
				if _, err := New(m, tw, Policy{}).Recover(); err != nil {
					t.Fatal(err)
				}
				m.HV.Switch(m.DomU)
				m.HV.Meter.Reset()
				m.HV.ResetStats()
				for i := 0; i < 50; i++ {
					frame := core.EthernetFrame([6]byte{2, 2, 2, 2, 2, 2}, d.NIC.MAC, 0x0800, make([]byte, 1200))
					if batched {
						if _, err := tw.GuestTransmitBatch(d, [][]byte{frame}); err != nil {
							t.Fatal(err)
						}
					} else {
						if err := tw.GuestTransmit(d, frame); err != nil {
							t.Fatal(err)
						}
					}
				}
				return m.HV.Meter.Total(), m.HV.Hypercalls
			}
			pTotal, pHC := run(false)
			bTotal, bHC := run(true)
			if pTotal != bTotal || pHC != bHC {
				t.Errorf("post-recovery batch-of-1 diverged: per-packet %d cyc / %d hc, batched %d cyc / %d hc",
					pTotal, pHC, bTotal, bHC)
			}
		})
	}
}

// TestLifetimeRecoveryBudget: even faults spaced too far apart for the
// escalation window to catch have a finite lifetime allowance — every
// rebuild consumes hypervisor reload arenas that are never reclaimed.
func TestLifetimeRecoveryBudget(t *testing.T) {
	m, tw, d := newTwin(t, 1, core.TwinConfig{})
	d.NIC.OnTransmit = func([]byte) {}
	inj := Injectors()[0]
	// Tiny window (sliding never trips), tiny lifetime budget.
	s := New(m, tw, Policy{MaxFaults: 2, Window: 1, MaxRecoveries: 3})

	frame := core.EthernetFrame([6]byte{1, 1, 1, 1, 1, 1}, d.NIC.MAC, 0x0800, make([]byte, 400))
	for i := 0; i < 3; i++ {
		trip(t, m, tw, d, inj)
		if _, err := s.Recover(); err != nil {
			t.Fatalf("recovery %d refused: %v", i+1, err)
		}
		m.HV.Switch(m.DomU)
		if err := tw.GuestTransmit(d, frame); err != nil {
			t.Fatalf("traffic after recovery %d: %v", i+1, err)
		}
	}
	trip(t, m, tw, d, inj)
	if _, err := s.Recover(); !errors.Is(err, ErrGivenUp) {
		t.Fatalf("recovery beyond the lifetime budget: %v, want ErrGivenUp", err)
	}
	if !s.GivenUp || s.Recoveries() != 3 {
		t.Fatalf("GivenUp=%v recoveries=%d", s.GivenUp, s.Recoveries())
	}
}
