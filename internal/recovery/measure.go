package recovery

// Measurement is one row of the recovery experiment: one fault type at one
// guest count, with the restart cost and the loss accounting around it.
type Measurement struct {
	// Fault names the injector ("wild-write", "runaway-loop",
	// "corrupt-fnptr"); Guests is the fan-out the twin was serving.
	Fault  string
	Guests int

	// MTTRCycles is the supervisor-measured restart time: re-derivation,
	// image layout, configuration replay (probe, open, RX refill, ring
	// re-attach) on the simulated machine's clock.
	MTTRCycles uint64

	// LostRx counts receive frames consumed by the NIC that died with the
	// faulted instance; RetriedTx counts staged transmit frames the abort
	// discarded and the recovered instance re-staged (discarded, not
	// duplicated: they never reached the wire).
	LostRx    uint64
	RetriedTx uint64

	// Delivered is how many packets the faulted burst still completed
	// end to end — the "traffic resumes" number.
	Delivered uint64

	// PreCPP and PostCPP are the fault-free cycles/packet measured before
	// the injection and after the recovery: equal (within the hardware
	// model's warm-up noise) when the recovered instance is as good as
	// the original.
	PreCPP  float64
	PostCPP float64

	// FaultLog is the twin's rendered fault attribution (FaultRecord
	// strings, oldest first) at the end of the run, so the report can
	// show *what* faulted, not only what it cost.
	FaultLog []string
}
