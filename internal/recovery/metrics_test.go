package recovery

import (
	"testing"

	"twindrivers/internal/core"
	"twindrivers/internal/telemetry"
)

// TestPublishMetricsReportsRecoveries: the supervisor's gauges track a
// real fault→recover cycle — count, last/mean MTTR, and the give-up
// flag all read live state at snapshot time.
func TestPublishMetricsReportsRecoveries(t *testing.T) {
	m, tw, d := newTwin(t, 1, core.TwinConfig{})
	d.NIC.OnTransmit = func([]byte) {}
	s := New(m, tw, Policy{})

	reg := telemetry.NewRegistry()
	s.PublishMetrics(reg)
	sample := func(name string) telemetry.Sample {
		for _, sm := range reg.Snapshot() {
			if sm.Name == name {
				return sm
			}
		}
		t.Fatalf("no sample %q", name)
		return telemetry.Sample{}
	}
	if v := sample("recovery_recoveries_total").Value; v != 0 {
		t.Fatalf("recoveries before any fault: %v", v)
	}
	if v := sample("recovery_mttr_cycles_last").Value; v != 0 {
		t.Fatalf("mttr before any fault: %v", v)
	}

	trip(t, m, tw, d, Injectors()[0])
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}

	if v := sample("recovery_recoveries_total").Value; v != 1 {
		t.Fatalf("recoveries after one recovery: %v", v)
	}
	if sample("recovery_mttr_cycles_last").Value == 0 {
		t.Fatal("mttr still zero after a recovery")
	}
	if sample("recovery_mttr_cycles_last").Value != sample("recovery_mttr_cycles_mean").Value {
		t.Fatal("with one event, last and mean MTTR must match")
	}
	if v := sample("recovery_given_up").Value; v != 0 {
		t.Fatalf("given_up = %v before escalation tripped", v)
	}
	if l := sample("recovery_recoveries_total").Labels; l["backend"] == "" || l["sup"] == "" {
		t.Fatalf("labels missing: %+v", l)
	}
}
