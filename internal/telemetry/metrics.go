package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry aggregates gauges read on demand. Producers register a name,
// a label set, and a closure; Snapshot evaluates every closure at call
// time, so the registry holds no per-event state and costs the hot path
// nothing — registration happens once, at machine construction.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	inst    int
}

type metric struct {
	name   string
	labels map[string]string
	read   func() float64
}

// Sample is one evaluated metric.
type Sample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// NextInstance hands out a registry-unique instance number, used as a
// label so several machines (e.g. one per backend in a sweep) publish
// disjoint series. Nil-safe.
func (r *Registry) NextInstance() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inst++
	return r.inst
}

// Register adds a gauge. read is evaluated at every Snapshot; it must
// be cheap and must not block. Nil-safe: registering on a nil registry
// is a no-op, so producers can publish unconditionally.
func (r *Registry) Register(name string, labels map[string]string, read func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = append(r.metrics, metric{name: name, labels: labels, read: read})
}

// labelKey renders labels in sorted order for stable identity.
func labelKey(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", k, labels[k]))
	}
	return strings.Join(parts, ",")
}

// Snapshot evaluates every gauge, sorted by name then label set.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make([]metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	out := make([]Sample, 0, len(ms))
	for _, m := range ms {
		out = append(out, Sample{Name: m.name, Labels: m.labels, Value: m.read()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelKey(out[i].Labels) < labelKey(out[j].Labels)
	})
	return out
}

// WriteJSON writes the snapshot as a JSON array of samples.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes the snapshot in the Prometheus text
// exposition format (untyped gauges).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, s := range r.Snapshot() {
		var err error
		if lk := labelKey(s.Labels); lk != "" {
			_, err = fmt.Fprintf(w, "%s{%s} %g\n", s.Name, lk, s.Value)
		} else {
			_, err = fmt.Fprintf(w, "%s %g\n", s.Name, s.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
