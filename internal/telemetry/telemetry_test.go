// Unit tests for the telemetry layer: ring semantics, digest
// determinism, the zero-allocation contract on Record (the guard the
// runtime's disabled-path identity tests lean on), and the exporters.
package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"twindrivers/internal/cycles"
)

func TestLaneRingWrap(t *testing.T) {
	tr := New(4)
	l := tr.NewLane("wrap")
	m := cycles.NewMeter()
	for i := 0; i < 7; i++ {
		m.Add(10)
		l.Record(m, EvHypercall, int32(i), uint64(i), 0)
	}
	if got := l.Recorded(); got != 7 {
		t.Fatalf("Recorded = %d, want 7", got)
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want ring capacity 4", len(evs))
	}
	// Oldest three fell off the ring; survivors are 3..6 oldest-first.
	for i, e := range evs {
		if want := uint64(i + 3); e.A != want {
			t.Fatalf("event %d: A = %d, want %d (oldest-first order)", i, e.A, want)
		}
	}
	if evs[0].Cycle >= evs[3].Cycle {
		t.Fatalf("cycle stamps not increasing: %d .. %d", evs[0].Cycle, evs[3].Cycle)
	}
}

func TestNilTracerAndLaneAreNoOps(t *testing.T) {
	var tr *Tracer
	l := tr.NewLane("ignored")
	if l != nil {
		t.Fatal("nil tracer returned a live lane")
	}
	// None of these may panic, and none may dereference the meter.
	l.Record(nil, EvFault, -1, 0, 0)
	if l.Recorded() != 0 || l.Events() != nil {
		t.Fatal("nil lane retained events")
	}
	if tr.Lanes() != nil || tr.Recorded() != 0 {
		t.Fatal("nil tracer reported lanes")
	}
	var reg *Registry
	reg.Register("x", nil, func() float64 { return 1 })
	if reg.Snapshot() != nil {
		t.Fatal("nil registry produced samples")
	}
	var f *FoldedStacks
	f.AddBreakdown("p", map[cycles.Component]uint64{cycles.CompXen: 1})
}

// TestRecordAllocationFree is the allocation guard the ISSUE's
// zero-overhead contract names: Record must not allocate, whether the
// lane is nil (tracing disabled — the hot path's steady state) or live
// (tracing enabled must not perturb allocation behaviour either).
func TestRecordAllocationFree(t *testing.T) {
	m := cycles.NewMeter()
	m.Add(100)
	var nilLane *Lane
	if a := testing.AllocsPerRun(1000, func() {
		nilLane.Record(m, EvHypercall, 3, 1, 2)
	}); a != 0 {
		t.Fatalf("nil-lane Record allocates %.1f per call, want 0", a)
	}
	live := New(64).NewLane("hot")
	if a := testing.AllocsPerRun(1000, func() {
		live.Record(m, EvHypercall, 3, 1, 2)
	}); a != 0 {
		t.Fatalf("live-lane Record allocates %.1f per call, want 0", a)
	}
}

func record(tr *Tracer, seed uint64) {
	m := cycles.NewMeter()
	ctl := tr.NewLane("m/ctl")
	q0 := tr.NewLane("m/q0")
	for i := uint64(0); i < 300; i++ {
		m.Add(7 + (seed+i)%13)
		ctl.Record(m, EvHypercall, int32(i%4), seed+i, 0)
		if i%5 == 0 {
			q0.Record(m, EvSweepStart, -1, 0, 0)
			m.Add(50)
			q0.Record(m, EvSweepEnd, -1, 0, i)
		}
	}
}

func TestDigestDeterministicAndSensitive(t *testing.T) {
	a, b, c := New(64), New(64), New(64)
	record(a, 1)
	record(b, 1)
	record(c, 2)
	if a.Digest() != b.Digest() {
		t.Fatal("same event stream produced different digests")
	}
	if a.Digest() == c.Digest() {
		t.Fatal("different event streams produced the same digest")
	}
	empty := New(64)
	if a.Digest() == empty.Digest() {
		t.Fatal("digest ignores events entirely")
	}
}

func TestEventKindString(t *testing.T) {
	if EvSweepStart.String() != "sweep-start" || EvReplay.String() != "replay" {
		t.Fatalf("kind names wrong: %q %q", EvSweepStart, EvReplay)
	}
	if EventKind(200).String() != "unknown" {
		t.Fatal("out-of-range kind should stringify as unknown")
	}
}

func TestRegistrySnapshotAndExports(t *testing.T) {
	r := NewRegistry()
	v := 41.0
	r.Register("twin_pool_free", map[string]string{"backend": "e1000", "twin": "1"}, func() float64 { return v })
	r.Register("hv_hypercalls_total", nil, func() float64 { return 7 })
	v = 42
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d samples, want 2", len(snap))
	}
	// Sorted by name: hv_... before twin_...; closures read at snapshot time.
	if snap[0].Name != "hv_hypercalls_total" || snap[1].Value != 42 {
		t.Fatalf("snapshot wrong: %+v", snap)
	}

	var jsonBuf bytes.Buffer
	if err := r.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var decoded []Sample
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v", err)
	}
	if len(decoded) != 2 || decoded[1].Labels["backend"] != "e1000" {
		t.Fatalf("JSON round-trip wrong: %+v", decoded)
	}

	var promBuf bytes.Buffer
	if err := r.WritePrometheus(&promBuf); err != nil {
		t.Fatal(err)
	}
	prom := promBuf.String()
	if !strings.Contains(prom, "hv_hypercalls_total 7\n") {
		t.Fatalf("prometheus output missing unlabeled gauge:\n%s", prom)
	}
	if !strings.Contains(prom, `twin_pool_free{backend="e1000",twin="1"} 42`) {
		t.Fatalf("prometheus output missing labeled gauge:\n%s", prom)
	}
}

func TestFoldedStacks(t *testing.T) {
	f := NewFoldedStacks()
	f.AddBreakdown("e1000/tx/batch=32", map[cycles.Component]uint64{
		cycles.CompDom0: 100, cycles.CompXen: 40,
	})
	f.AddBreakdown("e1000/tx/batch=32", map[cycles.Component]uint64{cycles.CompXen: 2})
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "e1000/tx/batch=32;dom0 100\ne1000/tx/batch=32;xen 42\n"
	if got != want {
		t.Fatalf("folded output:\n%s\nwant:\n%s", got, want)
	}
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2", f.Len())
	}
}

func TestChromeTraceExportAndValidate(t *testing.T) {
	tr := New(64)
	m := cycles.NewMeter()
	ctl := tr.NewLane("e1000/ctl")
	q0 := tr.NewLane("e1000/q0")

	m.Add(100)
	ctl.Record(m, EvHypercall, 0, 4, 0)
	q0.Record(m, EvSweepStart, -1, 0, 0)
	m.Add(900)
	q0.Record(m, EvSweepEnd, -1, 0, 4)
	ctl.Record(m, EvFault, 1, 3, 0)
	m.Add(5000)
	ctl.Record(m, EvRevive, -1, 1, 0)
	// An unmatched sweep-start must degrade to an instant, not an
	// unbalanced span.
	q0.Record(m, EvSweepStart, -1, 0, 0)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	count := func(ph, name string) int {
		n := 0
		for _, e := range doc.TraceEvents {
			if e["ph"] == ph && (name == "" || e["name"] == name) {
				n++
			}
		}
		return n
	}
	if count("X", "sweep q0") != 1 {
		t.Fatal("expected exactly one sweep span (second start was unmatched)")
	}
	if count("X", "fault→recovery") != 1 {
		t.Fatal("expected a fault→recovery span")
	}
	if count("i", "sweep-start") != 1 {
		t.Fatal("unmatched sweep-start should export as an instant")
	}
	if count("M", "thread_name") != 2 {
		t.Fatal("expected one thread_name metadata record per lane")
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	if err := ValidateChromeTrace([]byte("{not json")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if err := ValidateChromeTrace([]byte(`{"traceEvents":[{"ph":"M","name":"process_name"}]}`)); err == nil {
		t.Fatal("metadata-only trace accepted")
	}
	if err := ValidateChromeTrace([]byte(`{"traceEvents":[{"ph":"Z","name":"x"}]}`)); err == nil {
		t.Fatal("unknown phase accepted")
	}
	overlap := `{"traceEvents":[
		{"ph":"X","name":"a","pid":1,"tid":1,"ts":0,"dur":10},
		{"ph":"X","name":"b","pid":1,"tid":1,"ts":5,"dur":10}]}`
	if err := ValidateChromeTrace([]byte(overlap)); err == nil {
		t.Fatal("overlapping non-nested spans accepted")
	}
	nested := `{"traceEvents":[
		{"ph":"X","name":"a","pid":1,"tid":1,"ts":0,"dur":10},
		{"ph":"X","name":"b","pid":1,"tid":1,"ts":2,"dur":3},
		{"ph":"X","name":"c","pid":1,"tid":2,"ts":5,"dur":10}]}`
	if err := ValidateChromeTrace([]byte(nested)); err != nil {
		t.Fatalf("nested spans rejected: %v", err)
	}
}

func TestSession(t *testing.T) {
	if ActiveSession() != nil {
		t.Fatal("unexpected active session at test start")
	}
	s := StartSession(nil)
	if s.Tracer == nil || s.Registry == nil || s.Folded == nil {
		t.Fatal("StartSession(nil) should build all components")
	}
	if ActiveSession() != s {
		t.Fatal("ActiveSession does not return the started session")
	}
	EndSession()
	if ActiveSession() != nil {
		t.Fatal("EndSession left the session active")
	}
}
