// Package telemetry is the runtime observability layer: an
// allocation-free event tracer, a metrics registry, and exporters
// (Chrome trace-event JSON, folded cycle stacks, Prometheus text).
//
// It is distinct from internal/trace, which regenerates the paper's
// Table 1 numbers; telemetry watches the *runtime* — hypercalls, queue
// sweeps, posted-RX deliveries, TLB traffic, faults and recoveries —
// while trace replays the *paper*.
//
// The zero-overhead contract: every hook in the runtime is a method
// call on a possibly-nil *Lane or *Tracer. A nil receiver returns
// before evaluating anything — in particular before reading the cycle
// meter — so a build with tracing disabled executes the same
// instructions, charges the same simulated cycles, and performs the
// same (zero) allocations as one with no telemetry compiled in at all.
// Even when enabled, Record never touches the simulated cycles.Meter,
// so enabling tracing cannot move a cyc/pkt number.
package telemetry

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"

	"twindrivers/internal/cycles"
)

// EventKind tags one traced runtime event.
type EventKind uint8

const (
	EvHypercall     EventKind = iota // guest issued a transmit hypercall (A = frames in batch)
	EvBatchServiced                  // a batched hypercall drain completed (A = frames sent)
	EvSweepStart                     // queue service sweep began (A = queue)
	EvSweepEnd                       // queue service sweep ended (A = queue, B = descriptors consumed)
	EvPostedRx                       // posted-RX delivery to a guest (A = frames, B = lost)
	EvTLBHit                         // guest-TLB translation hit (A = vpn)
	EvTLBMiss                        // guest-TLB translation miss, page walk taken (A = vpn)
	EvHostile                        // hostile descriptor contained (A = detail: 0 gtlb violation, 1 corrupt ring)
	EvFault                          // CPU fault escaped the driver instance (A = cpu.FaultKind)
	EvAbort                          // driver instance torn down (A = tx+rx discarded, B = skbs reclaimed)
	EvRevive                         // fresh instance installed and live (A = faults so far)
	EvReplay                         // config-log replay completed during revive (A = events replayed)
	EvPostedTx                       // posted-TX frame handed to the device (A = bytes, B = 1 on copy fallback)
	EvVswitch                        // inter-guest switch delivery (A = dst dom, B = bytes)
	EvSpoof                          // switch rejected a forged source MAC (A = bytes)
	numEventKinds
)

var kindNames = [numEventKinds]string{
	"hypercall", "batch-serviced", "sweep-start", "sweep-end",
	"posted-rx", "tlb-hit", "tlb-miss", "hostile",
	"fault", "abort", "revive", "replay",
	"posted-tx", "vswitch", "spoof",
}

// String names the event kind as exporters render it.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one traced occurrence. Guest is the owning domain ID (-1
// when the event has no single guest), Cycle the Meter.Lifetime stamp
// of the meter in scope where the event fired, A and B kind-specific
// scalars (documented per kind above). Events carry only scalars so
// recording never allocates.
type Event struct {
	Kind  EventKind
	Guest int32
	Cycle uint64
	A, B  uint64
}

// DefaultLaneEvents is the per-lane ring capacity when the Tracer is
// built with capacity 0.
const DefaultLaneEvents = 4096

// Lane is a fixed-capacity overwrite ring of events with a single
// writer. The runtime serializes all simulated work — including the
// goroutine-per-queue service loops — under the twin's execution lock,
// and each queue writes only its own lane, so lanes need no locking;
// the -race leg of the parallel service tests pins this.
//
// A nil *Lane is the disabled tracer: Record returns immediately
// without reading the meter.
type Lane struct {
	name  string
	id    int
	ev    []Event
	next  int
	total uint64
}

// Record appends one event stamped with m.Lifetime(). On a nil lane it
// is a no-op that never dereferences m, so call sites pass the meter
// unconditionally and pay nothing when tracing is off. Recording
// overwrites the oldest event once the ring is full and never
// allocates.
func (l *Lane) Record(m *cycles.Meter, k EventKind, guest int32, a, b uint64) {
	if l == nil {
		return
	}
	var cyc uint64
	if m != nil {
		cyc = m.Lifetime()
	}
	l.ev[l.next] = Event{Kind: k, Guest: guest, Cycle: cyc, A: a, B: b}
	l.next++
	if l.next == len(l.ev) {
		l.next = 0
	}
	l.total++
}

// Name returns the lane's display name ("backend/q3", "backend/ctl").
func (l *Lane) Name() string { return l.name }

// ID returns the lane's stable index within its Tracer.
func (l *Lane) ID() int { return l.id }

// Recorded returns the number of events ever recorded, including any
// that have since been overwritten.
func (l *Lane) Recorded() uint64 {
	if l == nil {
		return 0
	}
	return l.total
}

// Events returns the retained events, oldest first.
func (l *Lane) Events() []Event {
	if l == nil {
		return nil
	}
	if l.total <= uint64(len(l.ev)) {
		out := make([]Event, l.next)
		copy(out, l.ev[:l.next])
		return out
	}
	out := make([]Event, 0, len(l.ev))
	out = append(out, l.ev[l.next:]...)
	out = append(out, l.ev[:l.next]...)
	return out
}

// Tracer owns a set of lanes. Lane creation is mutex-guarded (it
// happens at machine construction, off the hot path); recording is
// per-lane and lock-free.
type Tracer struct {
	mu      sync.Mutex
	perLane int
	lanes   []*Lane
}

// New builds a Tracer whose lanes each retain the most recent perLane
// events (DefaultLaneEvents if perLane <= 0).
func New(perLane int) *Tracer {
	if perLane <= 0 {
		perLane = DefaultLaneEvents
	}
	return &Tracer{perLane: perLane}
}

// NewLane registers a named lane. On a nil Tracer it returns a nil
// Lane, which is the disabled no-op recorder.
func (t *Tracer) NewLane(name string) *Lane {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	l := &Lane{name: name, id: len(t.lanes), ev: make([]Event, t.perLane)}
	t.lanes = append(t.lanes, l)
	return l
}

// Lanes returns the registered lanes in creation order.
func (t *Tracer) Lanes() []*Lane {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Lane, len(t.lanes))
	copy(out, t.lanes)
	return out
}

// Recorded returns the total events recorded across all lanes.
func (t *Tracer) Recorded() uint64 {
	var n uint64
	for _, l := range t.Lanes() {
		n += l.Recorded()
	}
	return n
}

// CountKind returns how many retained events of kind k the tracer
// holds across all lanes.
func (t *Tracer) CountKind(k EventKind) int {
	n := 0
	for _, l := range t.Lanes() {
		for _, e := range l.Events() {
			if e.Kind == k {
				n++
			}
		}
	}
	return n
}

// Digest returns a sha256 hex digest over every retained event in lane
// order — the telemetry analogue of the chaos soak's frame digest: two
// seeded runs with the same configuration must produce the same value.
func (t *Tracer) Digest() string {
	h := sha256.New()
	var buf [29]byte
	for _, l := range t.Lanes() {
		h.Write([]byte(l.Name()))
		h.Write([]byte{0})
		for _, e := range l.Events() {
			buf[0] = byte(e.Kind)
			binary.LittleEndian.PutUint32(buf[1:], uint32(e.Guest))
			binary.LittleEndian.PutUint64(buf[5:], e.Cycle)
			binary.LittleEndian.PutUint64(buf[13:], e.A)
			binary.LittleEndian.PutUint64(buf[21:], e.B)
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
