package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// CyclesPerMicrosecond converts simulated cycle stamps to the trace
// viewer's microsecond timeline (the simulated machine is a 3 GHz
// part, matching the paper's hardware).
const CyclesPerMicrosecond = 3000.0

func toMicros(cyc uint64) float64 { return float64(cyc) / CyclesPerMicrosecond }

// WriteChromeTrace exports the tracer in Chrome trace-event (catapult)
// JSON: each lane becomes a named thread ("goroutine lane"), queue
// sweeps and fault→recovery windows become complete ("X") spans, and
// everything else becomes instant events, so a soak or mq sweep opens
// directly in chrome://tracing or Perfetto.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	if t == nil {
		return errors.New("telemetry: no tracer to export")
	}
	var evs []map[string]any
	evs = append(evs, map[string]any{
		"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
		"args": map[string]any{"name": "twindrivers"},
	})
	for _, l := range t.Lanes() {
		tid := l.ID() + 1
		evs = append(evs, map[string]any{
			"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
			"args": map[string]any{"name": l.Name()},
		})
		evs = append(evs, laneEvents(l, tid)...)
	}
	out := map[string]any{"traceEvents": evs, "displayTimeUnit": "ns"}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// laneEvents renders one lane: sweep start/end pairs and fault→revive
// pairs fold into spans, the rest into instants. Pairs chopped by the
// ring (a start overwritten while its end survived, or a fault on a
// twin that never revived) degrade to instants rather than unbalanced
// spans, so exported spans always nest.
func laneEvents(l *Lane, tid int) []map[string]any {
	var out []map[string]any
	var pendSweep, pendFault *Event
	instant := func(e Event, name string) {
		out = append(out, map[string]any{
			"name": name, "ph": "i", "ts": toMicros(e.Cycle), "pid": 1, "tid": tid, "s": "t",
			"args": map[string]any{"guest": e.Guest, "a": e.A, "b": e.B},
		})
	}
	span := func(start, end Event, name string, args map[string]any) {
		dur := 0.0
		if end.Cycle > start.Cycle {
			dur = toMicros(end.Cycle - start.Cycle)
		}
		out = append(out, map[string]any{
			"name": name, "ph": "X", "ts": toMicros(start.Cycle), "dur": dur,
			"pid": 1, "tid": tid, "args": args,
		})
	}
	for _, e := range l.Events() {
		e := e
		switch e.Kind {
		case EvSweepStart:
			if pendSweep != nil {
				instant(*pendSweep, pendSweep.Kind.String())
			}
			pendSweep = &e
		case EvSweepEnd:
			if pendSweep != nil {
				span(*pendSweep, e, fmt.Sprintf("sweep q%d", e.A),
					map[string]any{"queue": e.A, "consumed": e.B})
				pendSweep = nil
			} else {
				instant(e, e.Kind.String())
			}
		case EvFault:
			if pendFault != nil {
				instant(*pendFault, pendFault.Kind.String())
			}
			pendFault = &e
		case EvRevive:
			if pendFault != nil {
				span(*pendFault, e, "fault→recovery",
					map[string]any{"guest": pendFault.Guest, "fault_kind": pendFault.A, "faults": e.A})
				pendFault = nil
			} else {
				instant(e, e.Kind.String())
			}
		default:
			instant(e, e.Kind.String())
		}
	}
	if pendSweep != nil {
		instant(*pendSweep, pendSweep.Kind.String())
	}
	if pendFault != nil {
		instant(*pendFault, pendFault.Kind.String())
	}
	return out
}

// chromeEvent is the subset of the trace-event schema the validator
// reads back.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// ValidateChromeTrace checks an exported artifact: well-formed JSON in
// the traceEvents envelope, at least one non-metadata event, and every
// "X" span properly nested within its (pid, tid) lane. CI runs this on
// the uploaded artifacts; cmd/twintrace refuses to write an artifact
// that fails it.
func ValidateChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("telemetry: malformed chrome trace: %w", err)
	}
	real := 0
	spans := map[[2]int][]chromeEvent{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
		case "X":
			real++
			key := [2]int{e.Pid, e.Tid}
			spans[key] = append(spans[key], e)
		case "i":
			real++
		default:
			return fmt.Errorf("telemetry: unexpected event phase %q", e.Ph)
		}
	}
	if real == 0 {
		return errors.New("telemetry: trace has no events")
	}
	// Timestamps are cycle counts divided by the clock rate, so ts+dur
	// of one span and the ts of the next can differ by a float ulp even
	// when the underlying cycles are exactly adjacent; eps is well under
	// one cycle (1/3000 µs) and absorbs that.
	const eps = 1e-4
	for key, lane := range spans {
		sort.Slice(lane, func(i, j int) bool {
			if lane[i].Ts != lane[j].Ts {
				return lane[i].Ts < lane[j].Ts
			}
			return lane[i].Dur > lane[j].Dur // outermost first at equal start
		})
		var stack []chromeEvent
		for _, s := range lane {
			end := s.Ts + s.Dur
			for len(stack) > 0 && stack[len(stack)-1].Ts+stack[len(stack)-1].Dur <= s.Ts+eps {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				if end > top.Ts+top.Dur+eps {
					return fmt.Errorf("telemetry: spans overlap without nesting on tid %d: %q [%g,%g] vs %q [%g,%g]",
						key[1], top.Name, top.Ts, top.Ts+top.Dur, s.Name, s.Ts, end)
				}
			}
			stack = append(stack, s)
		}
	}
	return nil
}
