package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"twindrivers/internal/cycles"
)

// FoldedStacks accumulates cycle breakdowns in the "folded stacks"
// format flamegraph tools consume: one line per semicolon-joined stack
// with a sample count, here cycles per cycles.Meter component. The
// bench layer feeds it the same critical-path breakdowns it reports as
// cyc/pkt, so a flamegraph of a sweep shows exactly where the gated
// numbers come from.
type FoldedStacks struct {
	mu     sync.Mutex
	counts map[string]uint64
}

// NewFoldedStacks builds an empty accumulator.
func NewFoldedStacks() *FoldedStacks {
	return &FoldedStacks{counts: make(map[string]uint64)}
}

// AddBreakdown folds one Meter.Breakdown-shaped map under the given
// stack prefix (semicolons in the prefix deepen the stack). Nil-safe.
func (f *FoldedStacks) AddBreakdown(prefix string, bk map[cycles.Component]uint64) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for comp, cyc := range bk {
		f.counts[prefix+";"+string(comp)] += cyc
	}
}

// Write renders the accumulated stacks sorted by name, ready for
// flamegraph.pl / speedscope.
func (f *FoldedStacks) Write(w io.Writer) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	lines := make([]string, 0, len(f.counts))
	for stack, cyc := range f.counts {
		lines = append(lines, fmt.Sprintf("%s %d", stack, cyc))
	}
	f.mu.Unlock()
	sort.Strings(lines)
	_, err := io.WriteString(w, strings.Join(lines, "\n"))
	if err == nil && len(lines) > 0 {
		_, err = io.WriteString(w, "\n")
	}
	return err
}

// Len returns the number of distinct stacks accumulated.
func (f *FoldedStacks) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.counts)
}
