package telemetry

import "sync"

// Session bundles the three collectors a traced run shares: the event
// tracer, the metrics registry, and the folded cycle stacks. cmd/
// twintrace starts one around an experiment; machines built while a
// session is active attach to it automatically (unless their config
// names a tracer explicitly), so the experiment registry needs no
// tracing parameters threaded through every runner signature.
type Session struct {
	Tracer   *Tracer
	Registry *Registry
	Folded   *FoldedStacks
}

var (
	sessionMu sync.Mutex
	session   *Session
)

// StartSession installs a process-wide session around tr (a fresh
// Tracer if nil) and returns it. It replaces any active session.
func StartSession(tr *Tracer) *Session {
	if tr == nil {
		tr = New(0)
	}
	s := &Session{Tracer: tr, Registry: NewRegistry(), Folded: NewFoldedStacks()}
	sessionMu.Lock()
	session = s
	sessionMu.Unlock()
	return s
}

// EndSession detaches the active session. Machines built afterwards
// are untraced.
func EndSession() {
	sessionMu.Lock()
	session = nil
	sessionMu.Unlock()
}

// ActiveSession returns the current session, or nil when tracing is
// off — the common case, and the only branch the hot path ever sees
// (at machine construction, not per packet).
func ActiveSession() *Session {
	sessionMu.Lock()
	defer sessionMu.Unlock()
	return session
}
