// Package chaos is the seeded long-run soak harness: it drives a
// multi-guest twin with mixed traffic (transmit batches over both the
// staging-copy and the posted-descriptor TX path, hypercall singles,
// receive bursts over both the copy and the posted RX path) while
// concurrently injecting hostile-guest attacks and containment faults, and
// asserts the system invariants continuously — not per feature, but in the
// composed states where isolation bugs actually live:
//
//   - pool conservation: PoolFree + PoolOutstanding == PoolCapacity at
//     every settle point, and zero outstanding after every abort (no
//     sk_buff leak, ever);
//   - exactly-once accounting, per guest: offered == wire + lost + staged
//     on transmit, offered == delivered + lost + queued on receive — every
//     frame the harness offers is eventually on the wire, in a guest
//     buffer, or counted lost exactly once;
//   - no phantoms: every wire frame and every delivered frame is matched
//     byte-exact against the frame the harness offered (unique sequence
//     numbers make the match unambiguous);
//   - abort hygiene: after every containment abort the guest translation
//     caches are empty, the receive queues are drained, and recovery
//     brings the twin back to a state that moves traffic.
//
// Everything is deterministic: one seed fixes the whole run (traffic,
// sizes, attacks, faults), and the report carries a digest over every
// observable so two runs with the same seed are byte-comparable.
//
// The hostile cases are organized as an explicit attack-surface matrix
// (attacks.go): dimension × backend × rx-mode × tx-mode, registered like
// the conformance behavior table so coverage is enumerable and zero-skip.
package chaos

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"math/rand"

	"twindrivers/internal/core"
	"twindrivers/internal/drivermodel"
	"twindrivers/internal/mem"
	"twindrivers/internal/recovery"
	"twindrivers/internal/telemetry"
	"twindrivers/internal/xen"

	// Both backends register with the driver-model registry on import:
	// the soak resolves Config.Backend there and the matrix enumerates
	// the registry, so the chaos package must see every model.
	_ "twindrivers/internal/e1000"
	_ "twindrivers/internal/mqnic"
	_ "twindrivers/internal/rtl8139"
)

// ErrInvariant reports that the soak caught the system violating one of
// its invariants. Every violation wraps it.
var ErrInvariant = errors.New("chaos: invariant violated")

// RxMode selects a guest's receive path.
type RxMode string

// The two receive paths every guest-visible behavior must hold under.
const (
	ModeCopy   RxMode = "copy"
	ModePosted RxMode = "posted"
)

// TxMode selects a guest's transmit path.
type TxMode string

// The two transmit paths every guest-visible behavior must hold under.
const (
	TxCopy   TxMode = "copy"
	TxPosted TxMode = "posted"
)

// Config parameterises one soak run.
type Config struct {
	// Seed fixes the run. Same seed, same config: same report.
	Seed uint64

	// Backend names the NIC driver model ("e1000", "rtl8139").
	Backend string

	// Guests is the number of guest domains (default 4).
	Guests int

	// Steps is the number of scheduler steps (default 200).
	Steps int

	// Posted selects each guest's receive mode; nil means alternating
	// (guest 0 copy, guest 1 posted, ...). Length must equal Guests.
	Posted []bool

	// PostedTX selects each guest's transmit mode: true posts (addr, len)
	// scatter/gather descriptors resolved through the guest TLB, false
	// stages copies. nil means alternating, offset from Posted so the
	// default four-guest soak covers all four rx×tx mode combinations
	// (guest 0 posts TX only, guest 1 posts RX only, ...). Length must
	// equal Guests.
	PostedTX []bool

	// Hostile enables the attack-surface steps.
	Hostile bool

	// Faults enables containment-fault → recovery steps.
	Faults bool

	// Watchdog is the per-invocation instruction budget (default 200k,
	// small enough that a soak's runaway-loop faults resolve quickly).
	Watchdog uint64

	// PoolSize overrides the twin's buffer pool size (0 = core default).
	PoolSize int

	// Queues requests the twin's service-queue count (0 = the model's
	// native count, clamped to [1, Model.Queues] like TwinConfig).
	Queues int

	// Weights sets per-guest deficit-round-robin weights (applied
	// cyclically over the guest list, see core.TwinConfig.Weights); nil
	// keeps the classic equal round-robin sweep. Every ledger and
	// invariant is weight-agnostic — weights change service order and
	// share, never whether a frame is accounted.
	Weights []int

	// Switch enables the inter-guest L2 switch on the soak's twin. The
	// harness's ordinary traffic is unswitchable (unique unregistered
	// source MACs, external destinations), so it still reaches the
	// device; the switch-mac-spoof attack needs the surface present.
	Switch bool

	// Parallel services the transmit rings with ServiceAllQueues — one
	// goroutine per service queue — instead of the sequential sweep.
	// Every ledger and invariant is unaffected (each guest lives on
	// exactly one queue, so per-guest wire order is preserved), but the
	// wire interleaving across queues follows goroutine scheduling:
	// parallel runs with the same seed agree on every ledger yet may
	// differ in Digest.
	Parallel bool

	// Trace attaches a telemetry tracer to the soak's twin; the report
	// then carries the tracer's event-stream digest. Like Digest, the
	// trace digest is seed-deterministic only for sequential runs —
	// under Parallel the per-queue sweep interleaving (and so the
	// control-lane event order) follows goroutine scheduling.
	Trace *telemetry.Tracer
}

func (c *Config) defaults() error {
	if c.Backend == "" {
		c.Backend = "e1000"
	}
	if c.Guests == 0 {
		c.Guests = 4
	}
	if c.Steps == 0 {
		c.Steps = 200
	}
	if c.Watchdog == 0 {
		c.Watchdog = 200_000
	}
	if c.Posted == nil {
		c.Posted = make([]bool, c.Guests)
		for g := range c.Posted {
			c.Posted[g] = g%2 == 1
		}
	}
	if len(c.Posted) != c.Guests {
		return fmt.Errorf("chaos: Posted has %d entries for %d guests", len(c.Posted), c.Guests)
	}
	if c.PostedTX == nil {
		c.PostedTX = make([]bool, c.Guests)
		for g := range c.PostedTX {
			c.PostedTX[g] = g%2 == 0
		}
	}
	if len(c.PostedTX) != c.Guests {
		return fmt.Errorf("chaos: PostedTX has %d entries for %d guests", len(c.PostedTX), c.Guests)
	}
	return nil
}

// GuestLedger is one guest's exactly-once accounting. At the end of a run
// (after the final drain) OfferedTx == WireTx + LostTx and
// OfferedRx == DeliveredRx + LostRx, exactly.
type GuestLedger struct {
	Posted      bool
	PostedTx    bool
	OfferedTx   int
	WireTx      int
	LostTx      int
	OfferedRx   int
	DeliveredRx int
	LostRx      int
}

// AttackCount records how often one attack ran.
type AttackCount struct {
	Name string
	Runs int
}

// Report is a soak run's observable outcome. All fields are scalars and
// slices so two reports compare with reflect.DeepEqual; Digest
// additionally hashes every frame byte that crossed an interface.
type Report struct {
	Backend    string
	Seed       uint64
	Steps      int
	Guests     []GuestLedger
	Attacks    []AttackCount
	Faults     int
	Recoveries int
	Aborts     int
	Digest     string

	// TraceDigest is the telemetry event-stream digest when the run was
	// traced (Config.Trace), empty otherwise.
	TraceDigest string
}

// soakGuest is the harness's shadow of one guest: its identity, its
// expected-wire and expected-delivery FIFOs, and its ledger.
type soakGuest struct {
	idx      int
	dom      *xen.Domain
	mac      [6]byte // registered RX demux route
	posted   bool
	txPosted bool
	ledger   GuestLedger

	txRingBase     uint32
	rxRingBase     uint32
	txPostRingBase uint32

	// stagedQ mirrors the guest's transmit ring — the staging-copy ring
	// or, for a posted-TX guest, the posted-descriptor ring: frames
	// offered and not yet serviced onto the wire, in ring order. A nil
	// entry is a hostile descriptor an attack posted: it can never match
	// a wire frame and must drain as a loss.
	stagedQ [][]byte

	// expRx mirrors the twin's receive queue for this guest: frames
	// injected (and accepted by the device) but not yet delivered or
	// lost, in queue order.
	expRx [][]byte

	// arena is the rotating posted-receive buffer pool (posted mode).
	// Twice the ring depth, so a buffer is never re-posted while an
	// undelivered descriptor still names it.
	arena    []uint32
	arenaCur int

	// txArena is the rotating posted-transmit buffer pool (posted-TX
	// mode), sized the same way: a buffer is never rewritten while an
	// unserviced descriptor still names it.
	txArena    []uint32
	txArenaCur int

	// postedLostSeen/pendingLost reconcile the twin's lifetime
	// PostedTxLost counter into the ledger: after each service the delta
	// is the budget of stagedQ frames the sweep consumed and refused
	// (hostile address, hostile length, busy pool) — the wire reconcile
	// drains each into LostTx exactly once.
	postedLostSeen uint64
	pendingLost    int
}

func (g *soakGuest) mode() RxMode {
	if g.posted {
		return ModePosted
	}
	return ModeCopy
}

func (g *soakGuest) txMode() TxMode {
	if g.txPosted {
		return TxPosted
	}
	return TxCopy
}

// Soak is one running harness instance.
type Soak struct {
	cfg    Config
	m      *core.Machine
	tw     *core.Twin
	d      *core.NICDev
	sup    *recovery.Supervisor
	rng    *rand.Rand
	guests []*soakGuest

	wire       [][]byte // every frame the device put on the wire
	wireCursor int      // reconciled prefix of wire

	digest  hash.Hash
	attacks map[string]int
	aborts  int
	seq     uint32

	// tamper makes the harness suppress exactly one Lost increment — the
	// deliberate accounting bug the teeth test injects to prove the
	// invariant checks actually bite.
	tamper   bool
	tampered bool
}

const (
	arenaBufBytes = 2048
	arenaBufs     = 2 * core.RxRingSlots
	txArenaBufs   = 2 * core.TxRingSlots
)

// New builds a soak over a fresh twin machine.
func New(cfg Config) (*Soak, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	model, ok := drivermodel.Get(cfg.Backend)
	if !ok {
		return nil, fmt.Errorf("chaos: unknown backend %q (have %v)", cfg.Backend, drivermodel.Names())
	}
	m, tw, err := core.NewTwinMachineModel(1, cfg.Guests, model, core.TwinConfig{
		Watchdog: cfg.Watchdog,
		PoolSize: cfg.PoolSize,
		Queues:   cfg.Queues,
		Weights:  cfg.Weights,
		Switch:   cfg.Switch,
		Trace:    cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	s := &Soak{
		cfg:     cfg,
		m:       m,
		tw:      tw,
		d:       m.Devs[0],
		rng:     rand.New(rand.NewSource(int64(cfg.Seed))),
		digest:  sha256.New(),
		attacks: make(map[string]int),
	}
	// Frequent injected faults must read as distinct transients, not a
	// flapping driver: a one-cycle escalation window never trips, and the
	// lifetime budget comfortably covers one recovery per step.
	s.sup = recovery.New(m, tw, recovery.Policy{
		MaxFaults:     3,
		Window:        1,
		MaxRecoveries: cfg.Steps + 16,
	})
	if sess := telemetry.ActiveSession(); sess != nil {
		s.sup.PublishMetrics(sess.Registry)
	}
	s.d.Dev.SetOnTransmit(func(pkt []byte) {
		s.wire = append(s.wire, append([]byte(nil), pkt...))
	})

	ringBases := make(map[mem.Owner][3]uint32)
	for _, ev := range m.Config.Events {
		b := ringBases[ev.Dom]
		switch ev.Op {
		case core.OpRing:
			b[0] = ev.Addr
		case core.OpRxRing:
			b[1] = ev.Addr
		case core.OpTxRing:
			b[2] = ev.Addr
		default:
			continue
		}
		ringBases[ev.Dom] = b
	}
	for i, dom := range m.Guests {
		g := &soakGuest{
			idx:            i,
			dom:            dom,
			mac:            [6]byte{0x02, 0x52, 0x58, 0, 0, byte(i)},
			posted:         cfg.Posted[i],
			txPosted:       cfg.PostedTX[i],
			txRingBase:     ringBases[dom.ID][0],
			rxRingBase:     ringBases[dom.ID][1],
			txPostRingBase: ringBases[dom.ID][2],
		}
		g.ledger.Posted = g.posted
		g.ledger.PostedTx = g.txPosted
		if g.txRingBase == 0 || g.rxRingBase == 0 || g.txPostRingBase == 0 {
			return nil, fmt.Errorf("chaos: guest %d ring bases not in config log", i)
		}
		tw.RegisterGuestMAC(g.mac, dom.ID)
		if g.posted {
			for b := 0; b < arenaBufs; b++ {
				g.arena = append(g.arena, m.HV.AllocHeap(dom, arenaBufBytes))
			}
		}
		if g.txPosted {
			for b := 0; b < txArenaBufs; b++ {
				g.txArena = append(g.txArena, m.HV.AllocHeap(dom, arenaBufBytes))
			}
		}
		s.guests = append(s.guests, g)
	}
	return s, nil
}

// Run executes the configured soak and returns its report. A non-nil
// error wrapping ErrInvariant means the system (or a tampered harness)
// broke an invariant; the report carries everything observed up to that
// point.
func Run(cfg Config) (*Report, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// Run drives the step schedule, drains everything at the end, and checks
// the final exactly-once equations.
func (s *Soak) Run() (*Report, error) {
	for i := 0; i < s.cfg.Steps; i++ {
		if err := s.step(); err != nil {
			return s.report(), err
		}
		if err := s.settle(); err != nil {
			return s.report(), fmt.Errorf("step %d: %w", i, err)
		}
	}
	if err := s.drain(); err != nil {
		return s.report(), err
	}
	rep := s.report()
	for i, g := range s.guests {
		l := g.ledger
		if l.OfferedTx != l.WireTx+l.LostTx {
			return rep, fmt.Errorf("%w: guest %d final tx: offered %d != wire %d + lost %d",
				ErrInvariant, i, l.OfferedTx, l.WireTx, l.LostTx)
		}
		if l.OfferedRx != l.DeliveredRx+l.LostRx {
			return rep, fmt.Errorf("%w: guest %d final rx: offered %d != delivered %d + lost %d",
				ErrInvariant, i, l.OfferedRx, l.DeliveredRx, l.LostRx)
		}
	}
	return rep, nil
}

// step runs one weighted scheduler step against one random guest.
func (s *Soak) step() error {
	g := s.guests[s.rng.Intn(len(s.guests))]
	r := s.rng.Float64()
	switch {
	case r < 0.30:
		return s.stepTxBatch(g)
	case r < 0.40:
		return s.stepTxSingle(g)
	case r < 0.75:
		return s.stepRx(g)
	case r < 0.90 && s.cfg.Hostile:
		return s.stepAttack(g)
	case r >= 0.90 && s.cfg.Faults:
		return s.stepFault(g)
	default:
		return s.stepTxBatch(g)
	}
}

// --- frame construction -------------------------------------------------

var batchSizes = []int{1, 4, 8, 16}

// txFrame builds a uniquely-numbered guest transmit frame. The source MAC
// carries the guest index in its last byte so wire frames attribute back
// to the staging guest without relying on global ordering.
func (s *Soak) txFrame(g *soakGuest, size int) []byte {
	s.seq++
	src := [6]byte{0x02, 0x43, 0x48, byte(s.seq >> 8), byte(s.seq), byte(g.idx)}
	payload := make([]byte, size)
	binary.BigEndian.PutUint32(payload, s.seq)
	for i := 4; i < len(payload); i++ {
		payload[i] = byte(s.seq + uint32(i))
	}
	return core.EthernetFrame([6]byte{0x00, 0x10, 0x20, 0x30, 0x40, 0x50}, src, 0x0800, payload)
}

// rxFrame builds a uniquely-numbered frame destined for a guest's
// registered MAC. The source MAC is fixed per guest, so each guest's
// receive traffic is a single flow: a multi-queue device's RSS steering
// keeps one flow on one queue, preserving the per-guest delivery order
// the expectation FIFO asserts. Uniqueness lives in the payload.
func (s *Soak) rxFrame(g *soakGuest) []byte {
	s.seq++
	src := [6]byte{0x02, 0x57, 0x41, 0, 0, byte(g.idx)}
	payload := make([]byte, 4+s.rng.Intn(1396))
	binary.BigEndian.PutUint32(payload, s.seq)
	for i := 4; i < len(payload); i++ {
		payload[i] = byte(s.seq ^ uint32(i))
	}
	return core.EthernetFrame(g.mac, src, 0x0800, payload)
}

// --- loss choke points (the teeth test tampers here) --------------------

func (s *Soak) loseTx(g *soakGuest, n int) {
	if s.tamper && !s.tampered && n > 0 {
		s.tampered = true
		n--
	}
	g.ledger.LostTx += n
	fmt.Fprintf(s.digest, "losttx %d %d\n", g.idx, n)
}

func (s *Soak) loseRx(g *soakGuest, n int) {
	if s.tamper && !s.tampered && n > 0 {
		s.tampered = true
		n--
	}
	g.ledger.LostRx += n
	fmt.Fprintf(s.digest, "lostrx %d %d\n", g.idx, n)
}

// --- transmit -----------------------------------------------------------

// stageBatch offers frames on a guest's configured transmit path — the
// staging-copy ring or the posted-descriptor ring — and records them
// offered. Frames the full ring refuses are never offered.
func (s *Soak) stageBatch(g *soakGuest, frames [][]byte) error {
	if g.txPosted {
		return s.postTxBatch(g, frames)
	}
	staged, err := s.tw.StageTransmitBatch(g.dom, frames)
	if err != nil {
		if errors.Is(err, core.ErrDriverDead) {
			return s.accountAbort()
		}
		return fmt.Errorf("%w: guest %d stage: %v", ErrInvariant, g.idx, err)
	}
	g.ledger.OfferedTx += staged
	g.stagedQ = append(g.stagedQ, frames[:staged]...)
	return nil
}

// postTxBatch writes frames into the guest's rotating transmit arena and
// posts their (addr, len) descriptors. The frames stay in guest memory —
// the service crossing resolves the descriptors through the guest TLB and
// hands the pages to the device. The arena cursor advances only for
// frames that will actually post, so a buffer a pending descriptor still
// names is never rewritten.
func (s *Soak) postTxBatch(g *soakGuest, frames [][]byte) error {
	free, err := s.tw.TxPostedFree(g.dom.ID)
	if err != nil {
		return fmt.Errorf("%w: guest %d posted free: %v", ErrInvariant, g.idx, err)
	}
	n := len(frames)
	if n > free {
		n = free
	}
	descs := make([]core.TxPost, n)
	for i, f := range frames[:n] {
		buf := g.txArena[g.txArenaCur]
		g.txArenaCur = (g.txArenaCur + 1) % len(g.txArena)
		if err := g.dom.AS.WriteBytes(buf, f); err != nil {
			return fmt.Errorf("%w: guest %d arena write: %v", ErrInvariant, g.idx, err)
		}
		descs[i] = core.TxPost{Addr: buf, Len: uint32(len(f))}
	}
	posted, err := s.tw.PostTxDescriptors(g.dom, descs)
	if err != nil {
		if errors.Is(err, core.ErrDriverDead) {
			return s.accountAbort()
		}
		return fmt.Errorf("%w: guest %d post: %v", ErrInvariant, g.idx, err)
	}
	if posted != n {
		return fmt.Errorf("%w: guest %d posted %d of %d descriptors into %d free slots",
			ErrInvariant, g.idx, posted, n, free)
	}
	g.ledger.OfferedTx += posted
	g.stagedQ = append(g.stagedQ, frames[:posted]...)
	return nil
}

func (s *Soak) stepTxBatch(g *soakGuest) error {
	n := batchSizes[s.rng.Intn(len(batchSizes))]
	frames := make([][]byte, n)
	for i := range frames {
		frames[i] = s.txFrame(g, 46+s.rng.Intn(1369))
	}
	if err := s.stageBatch(g, frames); err != nil {
		return err
	}
	if s.rng.Intn(2) == 0 {
		return s.serviceAll()
	}
	return nil
}

// stepTxSingle drives the synchronous hypercall transmit path: the frame
// is on the wire (or accounted lost) before the call returns.
func (s *Soak) stepTxSingle(g *soakGuest) error {
	frame := s.txFrame(g, 46+s.rng.Intn(1369))
	s.m.HV.Switch(g.dom)
	g.ledger.OfferedTx++
	before := len(s.wire)
	err := s.tw.GuestTransmit(s.d, frame)
	switch {
	case err == nil:
		if len(s.wire) != before+1 || !bytes.Equal(s.wire[before], frame) {
			return fmt.Errorf("%w: guest %d single transmit not byte-exact on the wire", ErrInvariant, g.idx)
		}
		s.wireCursor = len(s.wire)
		g.ledger.WireTx++
		s.digest.Write(frame)
	case errors.Is(err, core.ErrTxBusy):
		s.loseTx(g, 1) // transiently refused: the frame is gone, count it
	case errors.Is(err, core.ErrDriverDead):
		s.loseTx(g, 1) // the trigger frame died with the instance
		return s.accountAbort()
	default:
		return fmt.Errorf("%w: guest %d single transmit: %v", ErrInvariant, g.idx, err)
	}
	return nil
}

// serviceAll drains every guest's transmit ring through one service
// crossing and reconciles the wire against the staged ledgers: every wire
// frame must be some guest's oldest staged frame (byte-exact), and a ring
// the service reset (hostile header, oversize descriptor) must cost
// exactly its remaining staged frames.
func (s *Soak) serviceAll() error { return s.serviceBudget(0) }

// serviceBudget is serviceAll under a per-crossing descriptor budget
// (0 = drain): the reconcile and the ledger sync are budget-agnostic —
// whatever the crossing consumed is matched, whatever it left rides the
// rings into the next crossing.
func (s *Soak) serviceBudget(budget int) error {
	service := s.tw.ServiceRings
	if s.cfg.Parallel {
		service = s.tw.ServiceAllQueues
	}
	sent, err := service(s.d, budget)
	// Posted-TX losses before the wire reconcile: the sweep consumed the
	// refused descriptors in ring order, so the reconcile needs each
	// guest's loss budget on hand to skip them as it matches wire frames.
	for _, g := range s.guests {
		now := s.tw.PostedTxLost(g.dom.ID)
		g.pendingLost += int(now - g.postedLostSeen)
		g.postedLostSeen = now
	}
	if rerr := s.reconcileWire(sent); rerr != nil {
		return rerr
	}
	if s.tw.Dead {
		return s.accountAbort()
	}
	// Trailing losses: descriptors consumed-and-refused after the last
	// wire frame are still at the front of the expectation FIFO.
	for _, g := range s.guests {
		for g.pendingLost > 0 {
			if len(g.stagedQ) == 0 {
				return fmt.Errorf("%w: guest %d lost more posted frames than it offered", ErrInvariant, g.idx)
			}
			g.stagedQ = g.stagedQ[1:]
			s.loseTx(g, 1)
			g.pendingLost--
		}
	}
	if err != nil && !errors.Is(err, mem.ErrRingCorrupt) &&
		!errors.Is(err, core.ErrFrameOversize) && !errors.Is(err, core.ErrTxBusy) {
		return fmt.Errorf("%w: service: %v", ErrInvariant, err)
	}
	// Ring-by-ring ledger sync: a serviced ring holds exactly the frames
	// the wire did not take or lose; a reset ring (error return) holds
	// none, and its remainder is lost — counted here, exactly once.
	for _, g := range s.guests {
		n, serr := s.pendingTx(g)
		if serr != nil {
			return fmt.Errorf("%w: guest %d staged introspection: %v", ErrInvariant, g.idx, serr)
		}
		switch {
		case n == len(g.stagedQ):
		case n == 0 && err != nil:
			s.loseTx(g, len(g.stagedQ))
			g.stagedQ = nil
		default:
			return fmt.Errorf("%w: guest %d ring holds %d frames, ledger %d (service err %v)",
				ErrInvariant, g.idx, n, len(g.stagedQ), err)
		}
	}
	return nil
}

// pendingTx reports how many transmit frames a guest has offered and the
// sweep not yet consumed, across both rings (the staging-copy ring and
// the posted-descriptor ring — a guest's traffic lives on exactly one of
// them, per its tx mode).
func (s *Soak) pendingTx(g *soakGuest) (int, error) {
	n, err := s.tw.StagedTx(g.dom.ID)
	if err != nil {
		return 0, err
	}
	p, err := s.tw.PostedTxPending(g.dom.ID)
	if err != nil {
		return 0, err
	}
	return n + p, nil
}

// reconcileWire consumes unreconciled wire frames, attributing each to
// its staging guest (source-MAC tag) and matching it byte-exact against
// that guest's oldest staged frame. A mismatch is tolerated only against
// the guest's posted-loss budget: the sweep consumed those frames from
// the ring in order and refused them, so they drain from the FIFO as
// losses until the wire frame matches. sent, when non-nil, is
// cross-checked per guest.
func (s *Soak) reconcileWire(sent map[mem.Owner]int) error {
	matched := make(map[mem.Owner]int)
	for ; s.wireCursor < len(s.wire); s.wireCursor++ {
		frame := s.wire[s.wireCursor]
		if len(frame) < 12 {
			return fmt.Errorf("%w: runt frame on the wire (%d bytes)", ErrInvariant, len(frame))
		}
		idx := int(frame[11])
		if frame[6] != 0x02 || frame[7] != 0x43 || idx >= len(s.guests) {
			return fmt.Errorf("%w: phantom wire frame (unattributable source %x)", ErrInvariant, frame[6:12])
		}
		g := s.guests[idx]
		for g.pendingLost > 0 && len(g.stagedQ) > 0 && !bytes.Equal(g.stagedQ[0], frame) {
			g.stagedQ = g.stagedQ[1:]
			s.loseTx(g, 1)
			g.pendingLost--
		}
		if len(g.stagedQ) == 0 || !bytes.Equal(g.stagedQ[0], frame) {
			return fmt.Errorf("%w: wire frame is not guest %d's oldest staged frame", ErrInvariant, idx)
		}
		g.stagedQ = g.stagedQ[1:]
		g.ledger.WireTx++
		matched[g.dom.ID]++
		s.digest.Write(frame)
	}
	for dom, n := range sent {
		if matched[dom] != n {
			return fmt.Errorf("%w: service reported %d frames for domain %d, wire shows %d",
				ErrInvariant, n, dom, matched[dom])
		}
	}
	return nil
}

// --- receive ------------------------------------------------------------

// injectRx offers n frames to the device for one guest and services the
// interrupt. Frames the device refuses (no buffer space) are never
// offered.
func (s *Soak) injectRx(g *soakGuest, n int) error {
	for i := 0; i < n; i++ {
		frame := s.rxFrame(g)
		if !s.d.Dev.Inject(frame) {
			break
		}
		g.ledger.OfferedRx++
		g.expRx = append(g.expRx, frame)
		// Service every few frames so the device's receive ring never
		// overflows mid-burst.
		if i%8 == 7 {
			if err := s.handleIRQ(); err != nil || s.tw.Dead {
				return err
			}
		}
	}
	return s.handleIRQ()
}

func (s *Soak) handleIRQ() error {
	err := s.tw.HandleIRQ(s.d)
	if s.tw.Dead {
		return s.accountAbort()
	}
	if err != nil {
		return fmt.Errorf("%w: irq: %v", ErrInvariant, err)
	}
	return nil
}

func (s *Soak) stepRx(g *soakGuest) error {
	n := 1 + s.rng.Intn(8)
	if err := s.injectRx(g, n); err != nil {
		return err
	}
	if s.rng.Intn(4) != 0 { // usually deliver now; sometimes let it queue
		return s.deliverRx(g)
	}
	return nil
}

// deliverRx drains a guest's receive queue through its configured path,
// matching every delivered frame byte-exact against the expectation FIFO
// and counting every loss exactly once.
func (s *Soak) deliverRx(g *soakGuest) error {
	if g.posted {
		return s.deliverPosted(g)
	}
	return s.deliverCopy(g)
}

func (s *Soak) deliverCopy(g *soakGuest) error {
	for s.tw.PendingRx(g.dom.ID) > 0 {
		out, err := s.tw.DeliverPendingBatch(g.dom, 0)
		for _, pkt := range out {
			if len(g.expRx) == 0 || !bytes.Equal(pkt, g.expRx[0]) {
				return fmt.Errorf("%w: guest %d phantom copy delivery", ErrInvariant, g.idx)
			}
			g.expRx = g.expRx[1:]
			g.ledger.DeliveredRx++
			s.digest.Write(pkt)
		}
		if err != nil {
			var de *core.DeliveryError
			if !errors.As(err, &de) {
				return fmt.Errorf("%w: guest %d copy delivery: %v", ErrInvariant, g.idx, err)
			}
			if de.Dropped > len(g.expRx) {
				return fmt.Errorf("%w: guest %d dropped %d of %d expected", ErrInvariant, g.idx, de.Dropped, len(g.expRx))
			}
			g.expRx = g.expRx[de.Dropped:]
			s.loseRx(g, de.Dropped)
		}
	}
	return nil
}

func (s *Soak) deliverPosted(g *soakGuest) error {
	for round := 0; s.tw.PendingRx(g.dom.ID) > 0; round++ {
		if round >= 2*core.RxRingSlots {
			return fmt.Errorf("%w: guest %d posted delivery not converging", ErrInvariant, g.idx)
		}
		// Keep the ring stocked with honest buffers from the rotating
		// arena — enough for everything still queued.
		if free, err := s.tw.RxPostedFree(g.dom.ID); err == nil && free > 0 {
			want := s.tw.PendingRx(g.dom.ID)
			if want > free {
				want = free
			}
			posts := make([]core.RxPost, want)
			for i := range posts {
				posts[i] = core.RxPost{Addr: g.arena[g.arenaCur], Len: arenaBufBytes}
				g.arenaCur = (g.arenaCur + 1) % len(g.arena)
			}
			if _, err := s.tw.PostRxBuffers(g.dom, posts); err != nil && !errors.Is(err, mem.ErrRingCorrupt) {
				if errors.Is(err, core.ErrDriverDead) {
					return s.accountAbort()
				}
				return fmt.Errorf("%w: guest %d post: %v", ErrInvariant, g.idx, err)
			}
		}
		del, err := s.tw.DeliverPendingPosted(g.dom, 0)
		if err != nil && errors.Is(err, core.ErrDriverDead) {
			return s.accountAbort()
		}
		if aerr := s.accountPosted(g, del); aerr != nil {
			return aerr
		}
		if err != nil && !errors.Is(err, mem.ErrRingCorrupt) {
			return fmt.Errorf("%w: guest %d posted delivery: %v", ErrInvariant, g.idx, err)
		}
		// A corrupt-header round reset the ring; the next round re-posts
		// honest buffers and the remainder drains.
	}
	return nil
}

// accountPosted settles one posted delivery against the expectation FIFO.
// The delivery consumed len(Frames)+Lost queued frames in order; the
// delivered ones must appear as an in-order byte-exact subsequence of that
// window (unique payloads make the match unambiguous), and the gaps are
// the lost ones.
func (s *Soak) accountPosted(g *soakGuest, del *core.RxDelivery) error {
	if del == nil {
		return nil
	}
	consumed := len(del.Frames) + del.Lost
	if consumed > len(g.expRx) {
		return fmt.Errorf("%w: guest %d posted delivery consumed %d frames, only %d expected",
			ErrInvariant, g.idx, consumed, len(g.expRx))
	}
	window := g.expRx[:consumed]
	wi := 0
	for _, fr := range del.Frames {
		data, err := g.dom.AS.ReadBytes(fr.Addr, fr.Len)
		if err != nil {
			return fmt.Errorf("%w: guest %d delivered frame unreadable at %#x: %v", ErrInvariant, g.idx, fr.Addr, err)
		}
		found := false
		for wi < len(window) {
			match := bytes.Equal(window[wi], data)
			wi++
			if match {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%w: guest %d phantom posted delivery", ErrInvariant, g.idx)
		}
		g.ledger.DeliveredRx++
		s.digest.Write(data)
	}
	g.expRx = g.expRx[consumed:]
	s.loseRx(g, del.Lost)
	return nil
}

// --- attacks and faults -------------------------------------------------

func (s *Soak) stepAttack(g *soakGuest) error {
	eligible := attacksFor(g.mode(), g.txMode())
	if len(eligible) == 0 {
		return nil
	}
	a := eligible[s.rng.Intn(len(eligible))]
	s.attacks[a.Name]++
	fmt.Fprintf(s.digest, "attack %s %d\n", a.Name, g.idx)
	if err := a.Run(s, g); err != nil {
		return fmt.Errorf("attack %s on guest %d: %w", a.Name, g.idx, err)
	}
	return nil
}

// soakInjectors picks the fault repertoire: the wild write is
// backend-generic; the runaway loop and the corrupt function pointer
// scribble e1000 adapter layout and only run there.
func (s *Soak) soakInjectors() []recovery.Injector {
	all := recovery.Injectors()
	if s.cfg.Backend == "e1000" {
		return all
	}
	out := all[:0:0]
	for _, inj := range all {
		if inj.Name == "wild-write" {
			out = append(out, inj)
		}
	}
	return out
}

func (s *Soak) stepFault(g *soakGuest) error {
	injs := s.soakInjectors()
	inj := injs[s.rng.Intn(len(injs))]
	fmt.Fprintf(s.digest, "fault %s %d\n", inj.Name, g.idx)
	return s.trip(inj, g, true)
}

// trip injects one driver bug and drives the traffic that trips it. When
// account is true the resulting abort is settled and recovered from;
// attacks that first probe the dead instance pass false and settle
// themselves. An armed bug whose trigger was transiently refused (busy
// pool) is left armed — a later invocation faults and is settled wherever
// it lands.
func (s *Soak) trip(inj recovery.Injector, g *soakGuest, account bool) error {
	if err := inj.Inject(s.m, s.tw, s.d); err != nil {
		return fmt.Errorf("%w: inject %s: %v", ErrInvariant, inj.Name, err)
	}
	if inj.TriggerOnRx {
		frame := s.rxFrame(g)
		if s.d.Dev.Inject(frame) {
			g.ledger.OfferedRx++
			g.expRx = append(g.expRx, frame)
		}
		err := s.tw.HandleIRQ(s.d)
		if !s.tw.Dead && err != nil {
			return fmt.Errorf("%w: trigger irq: %v", ErrInvariant, err)
		}
	} else {
		s.m.HV.Switch(g.dom)
		g.ledger.OfferedTx++
		err := s.tw.GuestTransmit(s.d, s.txFrame(g, 200))
		if err == nil {
			// The scribble didn't reach this path; the wire frame is real.
			if rerr := s.reconcileSingle(g); rerr != nil {
				return rerr
			}
		} else if !s.tw.Dead && !errors.Is(err, core.ErrTxBusy) {
			return fmt.Errorf("%w: trigger transmit: %v", ErrInvariant, err)
		} else {
			s.loseTx(g, 1)
		}
	}
	if s.tw.Dead && account {
		return s.accountAbort()
	}
	return nil
}

// reconcileSingle consumes the wire frame a successful synchronous
// transmit just produced.
func (s *Soak) reconcileSingle(g *soakGuest) error {
	if s.wireCursor >= len(s.wire) {
		return fmt.Errorf("%w: guest %d transmit succeeded without a wire frame", ErrInvariant, g.idx)
	}
	s.wireCursor = len(s.wire)
	g.ledger.WireTx++
	s.digest.Write(s.wire[len(s.wire)-1])
	return nil
}

// accountAbort settles a containment abort: the wire is reconciled up to
// the fault, every staged and queued frame is counted lost exactly once,
// the teardown's hygiene is asserted (pool fully reclaimed, translation
// caches shot down, queues drained), the loss accounting is cross-checked
// against the twin's own AbortStats, and the supervisor recovers the
// instance.
func (s *Soak) accountAbort() error {
	s.aborts++
	st := s.tw.LastAbort
	if err := s.reconcileWire(nil); err != nil {
		return err
	}
	clearedTx, clearedRx := 0, 0
	for _, g := range s.guests {
		clearedTx += len(g.stagedQ)
		clearedRx += len(g.expRx)
		s.loseTx(g, len(g.stagedQ))
		g.stagedQ = nil
		s.loseRx(g, len(g.expRx))
		g.expRx = nil
		// Everything offered is now settled; re-baseline the posted-loss
		// reconciliation so the revived instance's counter deltas start
		// clean (the lifetime counter survives the replay).
		g.pendingLost = 0
		g.postedLostSeen = s.tw.PostedTxLost(g.dom.ID)
		if n := s.tw.PendingRx(g.dom.ID); n != 0 {
			return fmt.Errorf("%w: abort left %d frames queued for guest %d", ErrInvariant, n, g.idx)
		}
		if n := s.tw.GuestTLBCached(g.dom.ID); n != 0 {
			return fmt.Errorf("%w: abort left %d cached translations for guest %d", ErrInvariant, n, g.idx)
		}
	}
	if out := s.tw.PoolOutstanding(); out != 0 {
		return fmt.Errorf("%w: abort left %d pooled buffers outstanding", ErrInvariant, out)
	}
	if free := s.tw.PoolFree(); free != s.tw.PoolCapacity() {
		return fmt.Errorf("%w: pool holds %d of %d after abort sweep", ErrInvariant, free, s.tw.PoolCapacity())
	}
	if n := s.tw.PinnedTxPages(); n != 0 {
		return fmt.Errorf("%w: abort left %d guest pages pinned for posted TX", ErrInvariant, n)
	}
	// The twin's own transmit-loss accounting must not exceed the harness
	// ledger (an in-flight frame popped off a ring when the fault hit was
	// already lost, not discarded). The receive side has no such bound: a
	// runaway cleaner legitimately queues the same stale buffer many times
	// before the watchdog cuts it off, so RxPendingDropped can exceed any
	// honest offered count — the PendingRx==0 check above is the real
	// hygiene assertion there.
	if st.StagedTxDiscarded+st.TxPostedDiscarded > clearedTx {
		return fmt.Errorf("%w: abort discarded %d staged + %d posted frames, ledger had %d",
			ErrInvariant, st.StagedTxDiscarded, st.TxPostedDiscarded, clearedTx)
	}
	_ = clearedRx
	fmt.Fprintf(s.digest, "abort %d %d %d %d %d\n",
		st.StagedTxDiscarded, st.TxPostedDiscarded, st.RxPendingDropped, st.RxPostedDiscarded, st.SkbsReclaimed)

	ev, err := s.sup.Recover()
	if err != nil {
		return fmt.Errorf("%w: recovery: %v", ErrInvariant, err)
	}
	if ev == nil {
		return fmt.Errorf("%w: abort accounted but supervisor saw a live twin", ErrInvariant)
	}
	fmt.Fprintf(s.digest, "recover %s %d\n", ev.Entry, ev.Attempt)
	return nil
}

// --- settle / drain / report --------------------------------------------

// settle asserts the continuous invariants at a quiescent point: pool
// conservation, per-guest exactly-once equations, wire fully reconciled,
// and the harness's receive expectations in lockstep with the twin's
// queues.
func (s *Soak) settle() error {
	if s.wireCursor != len(s.wire) {
		return fmt.Errorf("%w: %d unreconciled wire frames", ErrInvariant, len(s.wire)-s.wireCursor)
	}
	free, out, cap := s.tw.PoolFree(), s.tw.PoolOutstanding(), s.tw.PoolCapacity()
	if free+out != cap {
		return fmt.Errorf("%w: pool conservation: free %d + outstanding %d != capacity %d", ErrInvariant, free, out, cap)
	}
	for _, g := range s.guests {
		l := g.ledger
		if l.OfferedTx != l.WireTx+l.LostTx+len(g.stagedQ) {
			return fmt.Errorf("%w: guest %d tx: offered %d != wire %d + lost %d + staged %d",
				ErrInvariant, g.idx, l.OfferedTx, l.WireTx, l.LostTx, len(g.stagedQ))
		}
		if l.OfferedRx != l.DeliveredRx+l.LostRx+len(g.expRx) {
			return fmt.Errorf("%w: guest %d rx: offered %d != delivered %d + lost %d + queued %d",
				ErrInvariant, g.idx, l.OfferedRx, l.DeliveredRx, l.LostRx, len(g.expRx))
		}
		if n := s.tw.PendingRx(g.dom.ID); n != len(g.expRx) {
			return fmt.Errorf("%w: guest %d has %d frames queued, harness expects %d",
				ErrInvariant, g.idx, n, len(g.expRx))
		}
	}
	return nil
}

// drain services every ring and delivers every queue, then settles.
func (s *Soak) drain() error {
	if err := s.serviceAll(); err != nil {
		return err
	}
	for _, g := range s.guests {
		if err := s.deliverRx(g); err != nil {
			return err
		}
	}
	return s.settle()
}

func (s *Soak) report() *Report {
	rep := &Report{
		Backend:    s.cfg.Backend,
		Seed:       s.cfg.Seed,
		Steps:      s.cfg.Steps,
		Faults:     int(s.tw.Faults),
		Recoveries: s.sup.Recoveries(),
		Aborts:     s.aborts,
	}
	for _, g := range s.guests {
		rep.Guests = append(rep.Guests, g.ledger)
	}
	for _, a := range Attacks() {
		if n := s.attacks[a.Name]; n > 0 {
			rep.Attacks = append(rep.Attacks, AttackCount{Name: a.Name, Runs: n})
		}
	}
	rep.Digest = hex.EncodeToString(s.digest.Sum(nil))
	if s.cfg.Trace != nil {
		rep.TraceDigest = s.cfg.Trace.Digest()
	}
	return rep
}
