package chaos

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"twindrivers/internal/drivermodel"
	"twindrivers/internal/telemetry"
)

// Telemetry under chaos: the seeded soak's event stream must be as
// deterministic as its frame digest, and a traced soak must export a
// valid Chrome trace with per-queue lanes and fault→recovery spans —
// the artifacts cmd/twintrace ships and CI uploads.

// tracedSmoke runs the canonical soak sequentially with a fresh tracer
// attached and returns the tracer and report.
func tracedSmoke(t *testing.T, backend string, seed uint64) (*telemetry.Tracer, *Report) {
	t.Helper()
	cfg := smokeConfig(backend)
	cfg.Seed = seed
	cfg.Steps = 120
	cfg.Trace = telemetry.New(0)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cfg.Trace, rep
}

// TestSoakTraceDigestDeterministic mirrors TestSoakDeterministic at the
// telemetry layer: same seed and config, fresh tracers, byte-identical
// event-stream digests; a different seed diverges.
func TestSoakTraceDigestDeterministic(t *testing.T) {
	for _, backend := range drivermodel.Names() {
		t.Run(backend, func(t *testing.T) {
			trA, repA := tracedSmoke(t, backend, 0xC4A05EED)
			trB, repB := tracedSmoke(t, backend, 0xC4A05EED)
			if trA.Recorded() == 0 {
				t.Fatal("traced soak recorded no events")
			}
			if repA.TraceDigest == "" || repA.TraceDigest != trA.Digest() {
				t.Fatalf("report trace digest %q does not match tracer %q", repA.TraceDigest, trA.Digest())
			}
			if repA.TraceDigest != repB.TraceDigest {
				t.Fatalf("same seed, different trace digests:\n%s\n%s", repA.TraceDigest, repB.TraceDigest)
			}
			trC, repC := tracedSmoke(t, backend, 0xC4A05EEE)
			if repC.TraceDigest == repA.TraceDigest {
				t.Fatal("different seeds produced identical trace digests")
			}
			_ = trB
			_ = trC
		})
	}
}

// TestSoakTraceArtifact exports a traced soak as Chrome trace JSON and
// asserts what the acceptance criteria name: the artifact validates,
// has a lane per service queue plus the control lane, and contains at
// least one fault→recovery span.
func TestSoakTraceArtifact(t *testing.T) {
	tr, rep := tracedSmoke(t, "e1000", 0xC4A05EED)
	if rep.Recoveries == 0 {
		t.Fatal("soak saw no recoveries; fault→recovery spans untestable")
	}
	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("soak trace fails validation: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	lanes, faultSpans, sweepSpans := 0, 0, 0
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "thread_name":
			if n, ok := e.Args["name"].(string); ok && strings.Contains(n, "/q") {
				lanes++
			}
		case e.Ph == "X" && e.Name == "fault→recovery":
			faultSpans++
		case e.Ph == "X" && strings.HasPrefix(e.Name, "sweep q"):
			sweepSpans++
		}
	}
	if lanes == 0 {
		t.Error("no per-queue lanes in exported trace")
	}
	if faultSpans == 0 {
		t.Error("no fault→recovery spans in exported trace")
	}
	if sweepSpans == 0 {
		t.Error("no queue sweep spans in exported trace")
	}
}
