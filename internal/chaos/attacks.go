package chaos

import (
	"errors"
	"fmt"

	"twindrivers/internal/core"
	"twindrivers/internal/drivermodel"
	"twindrivers/internal/mem"
	"twindrivers/internal/recovery"
)

// The attack-surface matrix. The driver-isolation literature's taxonomy
// organizes isolation failures by the interface a hostile or buggy guest
// reaches the system through; each Dimension here is one of those
// surfaces, and each Attack is a concrete hostile behavior on it. Attacks
// are registered like the conformance behavior table — a flat, sorted,
// enumerable list — so coverage is a property you can assert (the matrix
// test requires every dimension × backend × rx-mode × tx-mode cell to be
// non-empty and runs every attack in every cell, zero-skip), not an
// anecdote.
//
// Adding a backend: nothing to do here — attacks drive the backend-generic
// twin interface, and Cells() picks the new model up from the driver-model
// registry; the matrix test then runs every attack against it.
//
// Adding an attack: append one Attack to the table with the dimension it
// probes and the rx-modes it is meaningful under; the soak's hostile
// scheduler and the matrix test pick it up automatically.

// Dimension names one attack surface of the taxonomy.
type Dimension string

// The five attack surfaces.
const (
	// DimControlPlane is shared control state the guest can scribble:
	// ring headers, indices.
	DimControlPlane Dimension = "control-plane"

	// DimDataPlane is guest-authored descriptor content: addresses and
	// lengths the hypervisor must validate before trusting.
	DimDataPlane Dimension = "data-plane"

	// DimFaultContainment is driver bugs: the containment abort and the
	// recovery that follows.
	DimFaultContainment Dimension = "fault-containment"

	// DimResourceExhaustion is finite shared resources: the buffer pool,
	// ring capacity.
	DimResourceExhaustion Dimension = "resource-exhaustion"

	// DimInterfaceAbuse is hostile arguments at the hypercall boundary
	// itself.
	DimInterfaceAbuse Dimension = "interface-abuse"
)

// Dimensions lists every attack surface, in a fixed order.
func Dimensions() []Dimension {
	return []Dimension{
		DimControlPlane,
		DimDataPlane,
		DimFaultContainment,
		DimResourceExhaustion,
		DimInterfaceAbuse,
	}
}

// Attack is one registered hostile behavior. Run executes it against one
// guest of a running soak, asserting containment; it returns an error
// (wrapping ErrInvariant) when the system misbehaved. Attacks leave the
// system consistent — the soak's settle invariants run right after.
type Attack struct {
	Name    string
	Dim     Dimension
	Modes   []RxMode
	TxModes []TxMode
	Run     func(s *Soak, g *soakGuest) error
}

func (a Attack) hasMode(m RxMode) bool {
	for _, mode := range a.Modes {
		if mode == m {
			return true
		}
	}
	return false
}

func (a Attack) hasTxMode(m TxMode) bool {
	for _, mode := range a.TxModes {
		if mode == m {
			return true
		}
	}
	return false
}

var (
	both     = []RxMode{ModeCopy, ModePosted}
	bothTx   = []TxMode{TxCopy, TxPosted}
	postedTx = []TxMode{TxPosted}
)

// Attacks returns the registered attack table, in a fixed order.
func Attacks() []Attack {
	return []Attack{
		{Name: "tx-ring-head-scribble", Dim: DimControlPlane, Modes: both, TxModes: bothTx, Run: attackTxRingHeadScribble},
		{Name: "posted-ring-header-scribble", Dim: DimControlPlane, Modes: []RxMode{ModePosted}, TxModes: bothTx, Run: attackPostedRingHeaderScribble},
		{Name: "tx-desc-len-scribble", Dim: DimDataPlane, Modes: both, TxModes: bothTx, Run: attackTxDescLenScribble},
		{Name: "posted-hostile-descriptor", Dim: DimDataPlane, Modes: []RxMode{ModePosted}, TxModes: bothTx, Run: attackPostedHostileDescriptor},
		{Name: "posted-tx-hostile-addr", Dim: DimDataPlane, Modes: both, TxModes: postedTx, Run: attackPostedTxHostileAddr},
		{Name: "posted-tx-short-len", Dim: DimDataPlane, Modes: both, TxModes: postedTx, Run: attackPostedTxShortLen},
		{Name: "posted-tx-toctou", Dim: DimDataPlane, Modes: both, TxModes: postedTx, Run: attackPostedTxTOCTOU},
		{Name: "rx-copy-queue-integrity", Dim: DimDataPlane, Modes: []RxMode{ModeCopy}, TxModes: bothTx, Run: attackRxCopyQueueIntegrity},
		{Name: "switch-mac-spoof", Dim: DimDataPlane, Modes: both, TxModes: bothTx, Run: attackSwitchMacSpoof},
		{Name: "wild-write-recover", Dim: DimFaultContainment, Modes: both, TxModes: bothTx, Run: attackWildWriteRecover},
		{Name: "dead-fail-fast", Dim: DimFaultContainment, Modes: both, TxModes: bothTx, Run: attackDeadFailFast},
		{Name: "pool-leak-heal", Dim: DimResourceExhaustion, Modes: both, TxModes: bothTx, Run: attackPoolLeakHeal},
		{Name: "tx-ring-flood", Dim: DimResourceExhaustion, Modes: both, TxModes: bothTx, Run: attackTxRingFlood},
		{Name: "sched-noisy-neighbor", Dim: DimResourceExhaustion, Modes: both, TxModes: bothTx, Run: attackSchedNoisyNeighbor},
		{Name: "oversize-hypercall", Dim: DimInterfaceAbuse, Modes: both, TxModes: bothTx, Run: attackOversizeHypercall},
		{Name: "posted-overcommit", Dim: DimInterfaceAbuse, Modes: []RxMode{ModePosted}, TxModes: bothTx, Run: attackPostedOvercommit},
		{Name: "posted-tx-double-post", Dim: DimInterfaceAbuse, Modes: both, TxModes: postedTx, Run: attackPostedTxDoublePost},
	}
}

// attacksFor filters the table to the attacks meaningful under one
// rx-mode × tx-mode combination.
func attacksFor(m RxMode, tx TxMode) []Attack {
	var out []Attack
	for _, a := range Attacks() {
		if a.hasMode(m) && a.hasTxMode(tx) {
			out = append(out, a)
		}
	}
	return out
}

// QueueCounts is the service-queue axis of the matrix: the degenerate
// single-queue configuration and a sharded multi-queue one. A count a
// backend cannot provide (beyond its Model.Queues) is skipped for that
// backend — it would clamp down to a cell the matrix already holds.
func QueueCounts() []int { return []int{1, 4} }

// BackendQueueCounts filters the queue axis to the counts one backend
// can actually run.
func BackendQueueCounts(backend string) []int {
	model, ok := drivermodel.Get(backend)
	var out []int
	for _, q := range QueueCounts() {
		if q == 1 || (ok && q <= model.Queues) {
			out = append(out, q)
		}
	}
	return out
}

// Cell is one coordinate of the attack-surface matrix.
type Cell struct {
	Dim     Dimension
	Backend string
	Mode    RxMode
	Tx      TxMode
	Queues  int
	Attacks []string
}

// Cells enumerates the full matrix: every dimension, every registered
// backend, both rx-modes, both tx-modes, every applicable queue count,
// with the attack names covering each cell. The matrix test asserts no
// cell is empty and runs every listed attack.
func Cells() []Cell {
	var cells []Cell
	for _, dim := range Dimensions() {
		for _, backend := range drivermodel.Names() {
			for _, queues := range BackendQueueCounts(backend) {
				for _, mode := range both {
					for _, tx := range bothTx {
						c := Cell{Dim: dim, Backend: backend, Mode: mode, Tx: tx, Queues: queues}
						for _, a := range Attacks() {
							if a.Dim == dim && a.hasMode(mode) && a.hasTxMode(tx) {
								c.Attacks = append(c.Attacks, a.Name)
							}
						}
						cells = append(cells, c)
					}
				}
			}
		}
	}
	return cells
}

// runAttack executes one registered attack by name against a guest
// (matrix-test entry point; the soak's hostile scheduler calls Run
// directly).
func (s *Soak) runAttack(name string, g *soakGuest) error {
	for _, a := range Attacks() {
		if a.Name == name {
			if !a.hasMode(g.mode()) {
				return fmt.Errorf("attack %s does not apply to %s rx-mode", name, g.mode())
			}
			if !a.hasTxMode(g.txMode()) {
				return fmt.Errorf("attack %s does not apply to %s tx-mode", name, g.txMode())
			}
			s.attacks[name]++
			return a.Run(s, g)
		}
	}
	return fmt.Errorf("unknown attack %q", name)
}

// --- control plane ------------------------------------------------------

// attackTxRingHeadScribble: the guest scribbles the head word of the
// transmit ring its traffic rides — the staging ring or, for a posted-TX
// guest, the posted-descriptor ring. The service crossing must detect the
// corrupt header, reset that ring (losing exactly its staged frames),
// leave every other guest's traffic alone, and accept honest traffic from
// the attacker afterwards.
func attackTxRingHeadScribble(s *Soak, g *soakGuest) error {
	base := g.txRingBase
	if g.txPosted {
		base = g.txPostRingBase
	}
	if err := g.dom.AS.Store(base+4, 4, 0xDEADBEEF); err != nil {
		return fmt.Errorf("%w: scribble: %v", ErrInvariant, err)
	}
	if err := s.serviceAll(); err != nil {
		return err
	}
	if s.tw.Dead {
		return fmt.Errorf("%w: ring-header scribble killed the instance", ErrInvariant)
	}
	// The reset ring accepts honest traffic again.
	if err := s.stageBatch(g, [][]byte{s.txFrame(g, 300)}); err != nil {
		return err
	}
	return s.serviceAll()
}

// attackPostedRingHeaderScribble: same hostile header, receive side. The
// delivery must report ErrRingCorrupt, keep the queued frames (they are
// not lost — the guest re-posts and receives them), and never die.
func attackPostedRingHeaderScribble(s *Soak, g *soakGuest) error {
	if err := s.injectRx(g, 2); err != nil {
		return err
	}
	if s.tw.Dead || s.tw.PendingRx(g.dom.ID) == 0 {
		return nil // the burst resolved elsewhere (device refusal); nothing to scribble against
	}
	head, _ := g.dom.AS.Load(g.rxRingBase+4, 4)
	if err := g.dom.AS.Store(g.rxRingBase+8, 4, head+core.RxRingSlots+17); err != nil {
		return fmt.Errorf("%w: scribble: %v", ErrInvariant, err)
	}
	del, err := s.tw.DeliverPendingPosted(g.dom, 0)
	if !errors.Is(err, mem.ErrRingCorrupt) {
		return fmt.Errorf("%w: scribbled posted ring delivered with err=%v", ErrInvariant, err)
	}
	if aerr := s.accountPosted(g, del); aerr != nil {
		return aerr
	}
	if s.tw.Dead {
		return fmt.Errorf("%w: posted-ring scribble killed the instance", ErrInvariant)
	}
	// The reset ring re-posts honestly and the queued frames arrive.
	return s.deliverRx(g)
}

// --- data plane ---------------------------------------------------------

// attackTxDescLenScribble: the guest stages an honest frame, then
// scribbles the descriptor's length word with an oversize value. The
// hypervisor must refuse the descriptor before copying a byte (the pooled
// buffer is 2048 bytes; a trusted 0xFFFF would overrun it). On the
// staging ring the refusal resets the ring and costs exactly the staged
// frames; on the posted ring it is contained to the scribbled frame — the
// descriptor is consumed, exactly that frame is lost, and the ring keeps
// servicing.
func attackTxDescLenScribble(s *Soak, g *soakGuest) error {
	if err := s.serviceAll(); err != nil { // start from an empty ring
		return err
	}
	if s.tw.Dead {
		return nil
	}
	if err := s.stageBatch(g, [][]byte{s.txFrame(g, 400)}); err != nil {
		return err
	}
	staged := len(g.stagedQ)
	if staged == 0 {
		return nil
	}
	base, want := g.txRingBase, staged
	if g.txPosted {
		base, want = g.txPostRingBase, 1
	}
	tail, err := g.dom.AS.Load(base+8, 4)
	if err != nil {
		return fmt.Errorf("%w: read tail: %v", ErrInvariant, err)
	}
	slot := (tail - 1) % core.TxRingSlots
	desc := base + 16 + slot*8
	if err := g.dom.AS.Store(desc+4, 4, 0xFFFF); err != nil {
		return fmt.Errorf("%w: scribble: %v", ErrInvariant, err)
	}
	lostBefore := g.ledger.LostTx
	if err := s.serviceAll(); err != nil {
		return err
	}
	if s.tw.Dead {
		return fmt.Errorf("%w: oversize descriptor killed the instance", ErrInvariant)
	}
	if g.ledger.LostTx != lostBefore+want {
		return fmt.Errorf("%w: oversize descriptor lost %d frames, want %d",
			ErrInvariant, g.ledger.LostTx-lostBefore, want)
	}
	return nil
}

// attackPostedHostileDescriptor: the guest posts receive descriptors
// naming memory it does not own — hypervisor code, the dom0 net_device,
// unmapped space, another guest's buffer — plus one too-small honest
// buffer. Every hostile address must be refused by the guest TLB (frame
// lost, violation counted), not a byte outside the guest written, and
// delivery must keep going.
func attackPostedHostileDescriptor(s *Soak, g *soakGuest) error {
	hostile := []core.RxPost{
		{Addr: 0xF1000040, Len: 4096}, // hypervisor code
		{Addr: s.d.Netdev, Len: 2048}, // dom0 net_device
		{Addr: 0x00000040, Len: 2048}, // unmapped
		{Addr: g.arena[0], Len: 8},    // honest address, too small
	}
	var victim *soakGuest
	for _, other := range s.guests {
		if other != g && other.posted {
			victim = other
			break
		}
	}
	if victim != nil {
		hostile = append(hostile, core.RxPost{Addr: victim.arena[0], Len: 2048})
	}
	// Sentinels around everything a hostile address points at.
	hvAddr := s.tw.HVImage.CodeBase
	hvBefore, _ := s.m.HV.HVSpace.Load(hvAddr, 4)
	dom0Before, _ := s.m.Dom0.AS.Load(s.d.Netdev, 4)
	var victimBefore uint32
	if victim != nil {
		victimBefore, _ = victim.dom.AS.Load(victim.arena[0], 4)
	}
	violBefore := s.tw.GuestTLBViolations(g.dom.ID)

	// Older honest descriptors may still sit ahead of the hostile ones;
	// offer enough frames that every hostile descriptor is consumed.
	free, err := s.tw.RxPostedFree(g.dom.ID)
	if err != nil {
		return fmt.Errorf("%w: posted free: %v", ErrInvariant, err)
	}
	ahead := core.RxRingSlots - free
	posted, err := s.tw.PostRxBuffers(g.dom, hostile)
	if err != nil {
		return fmt.Errorf("%w: hostile post refused outright: %v", ErrInvariant, err)
	}
	if err := s.injectRx(g, ahead+posted); err != nil {
		return err
	}
	if s.tw.Dead {
		return fmt.Errorf("%w: hostile descriptors killed the instance", ErrInvariant)
	}
	if err := s.deliverRx(g); err != nil {
		return err
	}

	if v, _ := s.m.HV.HVSpace.Load(hvAddr, 4); v != hvBefore {
		return fmt.Errorf("%w: hostile descriptor wrote hypervisor memory", ErrInvariant)
	}
	if v, _ := s.m.Dom0.AS.Load(s.d.Netdev, 4); v != dom0Before {
		return fmt.Errorf("%w: hostile descriptor wrote dom0 memory", ErrInvariant)
	}
	if victim != nil {
		if v, _ := victim.dom.AS.Load(victim.arena[0], 4); v != victimBefore {
			return fmt.Errorf("%w: hostile descriptor wrote another guest's memory", ErrInvariant)
		}
	}
	// At least the out-of-domain addresses must have been refused by the
	// TLB check (the too-small buffer is length-refused, not TLB-refused).
	// PostRxBuffers stops at a full ring, so only the prefix of hostile
	// descriptors that actually made it into the ring can be refused —
	// index 3 in that prefix is the too-small honest buffer.
	wantViol := uint64(0)
	for i := 0; i < posted; i++ {
		if i != 3 {
			wantViol++
		}
	}
	if got := s.tw.GuestTLBViolations(g.dom.ID) - violBefore; got < wantViol {
		return fmt.Errorf("%w: %d TLB violations recorded, want >= %d", ErrInvariant, got, wantViol)
	}
	return nil
}

// attackPostedTxHostileAddr: the guest posts transmit descriptors naming
// memory it does not own — hypervisor code, the dom0 net_device, unmapped
// space, another guest's buffer. Every hostile address must be refused by
// the guest TLB (frame lost, violation counted), not a byte may leave the
// machine or move outside the guest, and the ring must keep servicing
// honest traffic afterwards.
func attackPostedTxHostileAddr(s *Soak, g *soakGuest) error {
	if err := s.serviceAll(); err != nil { // start from an empty ring
		return err
	}
	if s.tw.Dead {
		return nil
	}
	hostile := []core.TxPost{
		{Addr: s.tw.HVImage.CodeBase, Len: 400}, // hypervisor code
		{Addr: s.d.Netdev, Len: 400},            // dom0 net_device
		{Addr: 0x00000040, Len: 400},            // unmapped
	}
	var victim *soakGuest
	for _, other := range s.guests {
		if other != g && other.txPosted {
			victim = other
			break
		}
	}
	if victim != nil {
		hostile = append(hostile, core.TxPost{Addr: victim.txArena[0], Len: 400})
	}
	hvAddr := s.tw.HVImage.CodeBase
	hvBefore, _ := s.m.HV.HVSpace.Load(hvAddr, 4)
	dom0Before, _ := s.m.Dom0.AS.Load(s.d.Netdev, 4)
	var victimBefore uint32
	if victim != nil {
		victimBefore, _ = victim.dom.AS.Load(victim.txArena[0], 4)
	}
	violBefore := s.tw.GuestTLBViolations(g.dom.ID)
	wireBefore := len(s.wire)

	posted, err := s.tw.PostTxDescriptors(g.dom, hostile)
	if err != nil {
		return fmt.Errorf("%w: hostile post refused outright: %v", ErrInvariant, err)
	}
	g.ledger.OfferedTx += posted
	for i := 0; i < posted; i++ {
		g.stagedQ = append(g.stagedQ, nil) // must drain as a loss, never match the wire
	}
	lostBefore := g.ledger.LostTx
	if err := s.serviceAll(); err != nil {
		return err
	}
	if s.tw.Dead {
		return fmt.Errorf("%w: hostile posted-TX descriptors killed the instance", ErrInvariant)
	}
	if g.ledger.LostTx != lostBefore+posted {
		return fmt.Errorf("%w: hostile descriptors lost %d frames, want %d",
			ErrInvariant, g.ledger.LostTx-lostBefore, posted)
	}
	if len(s.wire) != wireBefore {
		return fmt.Errorf("%w: a hostile posted-TX descriptor reached the wire", ErrInvariant)
	}
	if v, _ := s.m.HV.HVSpace.Load(hvAddr, 4); v != hvBefore {
		return fmt.Errorf("%w: hostile posted TX moved hypervisor memory", ErrInvariant)
	}
	if v, _ := s.m.Dom0.AS.Load(s.d.Netdev, 4); v != dom0Before {
		return fmt.Errorf("%w: hostile posted TX moved dom0 memory", ErrInvariant)
	}
	if victim != nil {
		if v, _ := victim.dom.AS.Load(victim.txArena[0], 4); v != victimBefore {
			return fmt.Errorf("%w: hostile posted TX moved another guest's memory", ErrInvariant)
		}
	}
	if got := s.tw.GuestTLBViolations(g.dom.ID) - violBefore; got < uint64(posted) {
		return fmt.Errorf("%w: %d TLB violations recorded, want >= %d", ErrInvariant, got, posted)
	}
	// The ring keeps servicing honest traffic.
	if err := s.stageBatch(g, [][]byte{s.txFrame(g, 300)}); err != nil {
		return err
	}
	return s.serviceAll()
}

// attackPostedTxShortLen: hostile length words on honest addresses — a
// zero length and an oversize length must each lose exactly that frame
// before a byte moves, and a length shorter than the frame behind it must
// transmit exactly the prefix the descriptor names: the snapshot is the
// contract, not the bytes behind it.
func attackPostedTxShortLen(s *Soak, g *soakGuest) error {
	if err := s.serviceAll(); err != nil { // start from an empty ring
		return err
	}
	if s.tw.Dead {
		return nil
	}
	full := s.txFrame(g, 400)
	const short = 60
	bufs := make([]uint32, 3)
	for i := range bufs {
		bufs[i] = g.txArena[g.txArenaCur]
		g.txArenaCur = (g.txArenaCur + 1) % len(g.txArena)
		if err := g.dom.AS.WriteBytes(bufs[i], full); err != nil {
			return fmt.Errorf("%w: arena write: %v", ErrInvariant, err)
		}
	}
	descs := []core.TxPost{
		{Addr: bufs[0], Len: 0},       // zero length: refused
		{Addr: bufs[1], Len: short},   // short length: the prefix transmits
		{Addr: bufs[2], Len: 1 << 20}, // oversize: refused
	}
	posted, err := s.tw.PostTxDescriptors(g.dom, descs)
	if err != nil || posted != len(descs) {
		return fmt.Errorf("%w: posted %d of %d: %v", ErrInvariant, posted, len(descs), err)
	}
	g.ledger.OfferedTx += posted
	g.stagedQ = append(g.stagedQ, nil, full[:short], nil)
	lostBefore := g.ledger.LostTx
	wireBefore := len(s.wire)
	if err := s.serviceAll(); err != nil {
		return err
	}
	if s.tw.Dead {
		return fmt.Errorf("%w: hostile length words killed the instance", ErrInvariant)
	}
	if g.ledger.LostTx != lostBefore+2 {
		return fmt.Errorf("%w: hostile lengths lost %d frames, want 2", ErrInvariant, g.ledger.LostTx-lostBefore)
	}
	if len(s.wire) != wireBefore+1 {
		return fmt.Errorf("%w: short-length descriptor put %d frames on the wire, want 1",
			ErrInvariant, len(s.wire)-wireBefore)
	}
	return nil
}

// attackPostedTxTOCTOU: the guest posts an honest descriptor, then
// rewrites the descriptor words in the ring slot before the service
// consumes them — the classic stage-then-swap. The service must operate
// on one snapshot of whatever the slot holds at consume time: the
// rewritten hostile address is refused whole (frame lost, nothing leaves,
// not a hypervisor byte moves), never half-validated against the honest
// original.
func attackPostedTxTOCTOU(s *Soak, g *soakGuest) error {
	if err := s.serviceAll(); err != nil { // start from an empty ring
		return err
	}
	if s.tw.Dead {
		return nil
	}
	if err := s.stageBatch(g, [][]byte{s.txFrame(g, 300)}); err != nil {
		return err
	}
	if len(g.stagedQ) == 0 {
		return nil
	}
	tail, err := g.dom.AS.Load(g.txPostRingBase+8, 4)
	if err != nil {
		return fmt.Errorf("%w: read tail: %v", ErrInvariant, err)
	}
	slot := (tail - 1) % core.TxRingSlots
	desc := g.txPostRingBase + 16 + slot*8
	hvAddr := s.tw.HVImage.CodeBase
	hvBefore, _ := s.m.HV.HVSpace.Load(hvAddr, 4)
	if err := g.dom.AS.Store(desc, 4, hvAddr); err != nil {
		return fmt.Errorf("%w: rewrite: %v", ErrInvariant, err)
	}
	lostBefore := g.ledger.LostTx
	wireBefore := len(s.wire)
	if err := s.serviceAll(); err != nil {
		return err
	}
	if s.tw.Dead {
		return fmt.Errorf("%w: rewritten descriptor killed the instance", ErrInvariant)
	}
	if g.ledger.LostTx != lostBefore+1 {
		return fmt.Errorf("%w: rewritten descriptor lost %d frames, want 1",
			ErrInvariant, g.ledger.LostTx-lostBefore)
	}
	if len(s.wire) != wireBefore {
		return fmt.Errorf("%w: rewritten descriptor reached the wire", ErrInvariant)
	}
	if v, _ := s.m.HV.HVSpace.Load(hvAddr, 4); v != hvBefore {
		return fmt.Errorf("%w: rewritten descriptor moved hypervisor memory", ErrInvariant)
	}
	// Honest traffic flows again.
	if err := s.stageBatch(g, [][]byte{s.txFrame(g, 200)}); err != nil {
		return err
	}
	return s.serviceAll()
}

// attackRxCopyQueueIntegrity: a hostile burst larger than the guest's
// share arrives interleaved with another guest's traffic; copy-path
// delivery must hand each guest exactly its own frames, in order
// (cross-guest demux integrity under pressure).
func attackRxCopyQueueIntegrity(s *Soak, g *soakGuest) error {
	other := s.guests[(g.idx+1)%len(s.guests)]
	for i := 0; i < 6; i++ {
		target := g
		if i%2 == 1 && other != g {
			target = other
		}
		if err := s.injectRx(target, 1); err != nil {
			return err
		}
		if s.tw.Dead {
			return nil
		}
	}
	if err := s.deliverRx(g); err != nil {
		return err
	}
	if other != g {
		return s.deliverRx(other)
	}
	return nil
}

// attackSwitchMacSpoof: a guest transmits a frame forging another guest's
// registered source MAC through the inter-guest switch. The switch must
// drop it at the port binding (counted against the forger), the frame must
// reach neither the wire nor the victim's receive queue, and honest
// traffic — the forger's included — must keep flowing. No-op when the
// twin runs without a switch: there is no binding to forge against, and
// the frame would ride the ordinary device path the rest of the soak
// already covers.
//
// Accounting note: a switch-handled frame is consumed from the ring and
// counted in the crossing's per-guest service totals but never appears on
// the wire, so this attack invokes the service directly and settles the
// forger's expectation FIFO by hand instead of going through
// serviceBudget's wire cross-check.
func attackSwitchMacSpoof(s *Soak, g *soakGuest) error {
	if s.tw.VSwitch() == nil {
		return nil
	}
	if err := s.serviceAll(); err != nil { // start from an empty ring
		return err
	}
	if s.tw.Dead {
		return nil
	}
	victim := s.guests[(g.idx+1)%len(s.guests)]
	if victim == g {
		return nil
	}
	payload := make([]byte, 120)
	for i := range payload {
		payload[i] = byte(0xA5 ^ i)
	}
	forged := core.EthernetFrame(victim.mac, victim.mac, 0x0800, payload)
	spoofBefore := s.tw.VswitchSpoofDropped(g.dom.ID)
	wireBefore := len(s.wire)
	pendBefore := s.tw.PendingRx(victim.dom.ID)
	if err := s.stageBatch(g, [][]byte{forged}); err != nil {
		return err
	}
	if s.tw.Dead || len(g.stagedQ) != 1 {
		return nil // abort mid-stage, or the ring refused the frame
	}
	service := s.tw.ServiceRings
	if s.cfg.Parallel {
		service = s.tw.ServiceAllQueues
	}
	if _, err := service(s.d, 0); err != nil || s.tw.Dead {
		if errors.Is(err, core.ErrDriverDead) || s.tw.Dead {
			return s.accountAbort()
		}
		return fmt.Errorf("%w: spoof service: %v", ErrInvariant, err)
	}
	// The forged frame was consumed by the crossing but went nowhere; it
	// drains from the expectation FIFO as the forger's loss.
	if n, err := s.pendingTx(g); err != nil || n != 0 {
		return fmt.Errorf("%w: spoofed frame still on the ring (%d pending, err %v)", ErrInvariant, n, err)
	}
	g.stagedQ = g.stagedQ[1:]
	s.loseTx(g, 1)
	if err := s.reconcileWire(nil); err != nil {
		return err
	}
	if got := s.tw.VswitchSpoofDropped(g.dom.ID); got != spoofBefore+1 {
		return fmt.Errorf("%w: spoof drops %d, want %d", ErrInvariant, got, spoofBefore+1)
	}
	if len(s.wire) != wireBefore {
		return fmt.Errorf("%w: forged frame reached the wire", ErrInvariant)
	}
	if got := s.tw.PendingRx(victim.dom.ID); got != pendBefore {
		return fmt.Errorf("%w: forged frame reached the victim's receive queue", ErrInvariant)
	}
	// The forger's honest traffic still flows.
	if err := s.stageBatch(g, [][]byte{s.txFrame(g, 300)}); err != nil {
		return err
	}
	return s.serviceAll()
}

// --- fault containment --------------------------------------------------

// attackWildWriteRecover: the classic §4.5 wild write, followed by the
// full abort-hygiene assertions and a supervised recovery; the revived
// instance must move the attacker's traffic again.
func attackWildWriteRecover(s *Soak, g *soakGuest) error {
	inj, ok := recovery.InjectorByName("wild-write")
	if !ok {
		return fmt.Errorf("%w: wild-write injector missing", ErrInvariant)
	}
	if err := s.trip(inj, g, true); err != nil {
		return err
	}
	if s.tw.Dead {
		return fmt.Errorf("%w: twin dead after supervised recovery", ErrInvariant)
	}
	if err := s.stageBatch(g, [][]byte{s.txFrame(g, 256)}); err != nil {
		return err
	}
	return s.serviceAll()
}

// attackDeadFailFast: between the containment abort and the recovery,
// every driver operation must refuse with ErrDriverDead — no path may
// half-work against a torn-down instance.
func attackDeadFailFast(s *Soak, g *soakGuest) error {
	inj, _ := recovery.InjectorByName("wild-write")
	if err := s.trip(inj, g, false); err != nil {
		return err
	}
	if !s.tw.Dead {
		return nil // trigger transiently refused; the armed fault lands later
	}
	frame := s.txFrame(g, 100)
	s.m.HV.Switch(g.dom)
	if err := s.tw.GuestTransmit(s.d, frame); !errors.Is(err, core.ErrDriverDead) {
		return fmt.Errorf("%w: dead transmit returned %v", ErrInvariant, err)
	}
	if _, err := s.tw.StageTransmitBatch(g.dom, [][]byte{frame}); !errors.Is(err, core.ErrDriverDead) {
		return fmt.Errorf("%w: dead stage returned %v", ErrInvariant, err)
	}
	if _, err := s.tw.ServiceRings(s.d, 0); !errors.Is(err, core.ErrDriverDead) {
		return fmt.Errorf("%w: dead service returned %v", ErrInvariant, err)
	}
	if err := s.tw.HandleIRQ(s.d); !errors.Is(err, core.ErrDriverDead) {
		return fmt.Errorf("%w: dead irq returned %v", ErrInvariant, err)
	}
	if g.posted {
		if _, err := s.tw.PostRxBuffers(g.dom, []core.RxPost{{Addr: g.arena[0], Len: arenaBufBytes}}); !errors.Is(err, core.ErrDriverDead) {
			return fmt.Errorf("%w: dead post returned %v", ErrInvariant, err)
		}
		if _, err := s.tw.DeliverPendingPosted(g.dom, 0); !errors.Is(err, core.ErrDriverDead) {
			return fmt.Errorf("%w: dead posted delivery returned %v", ErrInvariant, err)
		}
	}
	if g.txPosted {
		if _, err := s.tw.PostTxDescriptors(g.dom, []core.TxPost{{Addr: 0, Len: 64}}); !errors.Is(err, core.ErrDriverDead) {
			return fmt.Errorf("%w: dead tx post returned %v", ErrInvariant, err)
		}
	}
	return s.accountAbort()
}

// --- resource exhaustion ------------------------------------------------

// attackPoolLeakHeal: a buggy driver leaks pooled buffers (they stay
// outstanding — conservation must still hold), then faults; the abort's
// outstanding-buffer sweep must return every one of them.
func attackPoolLeakHeal(s *Soak, g *soakGuest) error {
	leaked := s.tw.LeakPooledBuffers(64)
	if free, out, cap := s.tw.PoolFree(), s.tw.PoolOutstanding(), s.tw.PoolCapacity(); free+out != cap {
		return fmt.Errorf("%w: conservation broken mid-leak: %d + %d != %d", ErrInvariant, free, out, cap)
	}
	if out := s.tw.PoolOutstanding(); out < leaked {
		return fmt.Errorf("%w: leaked %d buffers but only %d outstanding", ErrInvariant, leaked, out)
	}
	inj, _ := recovery.InjectorByName("wild-write")
	recovered := s.sup.Recoveries()
	if err := s.trip(inj, g, true); err != nil {
		return err
	}
	if s.sup.Recoveries() == recovered {
		return nil // trigger transiently refused; the armed fault lands later
	}
	if free := s.tw.PoolFree(); free != s.tw.PoolCapacity() {
		return fmt.Errorf("%w: leak not healed by the abort sweep: %d of %d free", ErrInvariant, free, s.tw.PoolCapacity())
	}
	return nil
}

// attackTxRingFlood: the guest offers far more than its ring holds in one
// call; staging must stop exactly at ring capacity (no error, no
// overwrite) and the overflow frames must never be charged to anyone.
func attackTxRingFlood(s *Soak, g *soakGuest) error {
	if g.txPosted {
		return s.floodPostedTx(g)
	}
	flood := make([][]byte, 2*core.TxRingSlots)
	for i := range flood {
		flood[i] = s.txFrame(g, 64)
	}
	room := core.TxRingSlots - len(g.stagedQ)
	staged, err := s.tw.StageTransmitBatch(g.dom, flood)
	if err != nil {
		if errors.Is(err, core.ErrDriverDead) {
			return s.accountAbort()
		}
		return fmt.Errorf("%w: flood stage: %v", ErrInvariant, err)
	}
	if staged != room {
		return fmt.Errorf("%w: flood staged %d frames into %d ring slots", ErrInvariant, staged, room)
	}
	g.ledger.OfferedTx += staged
	g.stagedQ = append(g.stagedQ, flood[:staged]...)
	return s.serviceAll()
}

// attackSchedNoisyNeighbor: one guest floods its transmit ring to
// capacity while a victim stages a single frame behind the flood. Under
// budgeted service crossings — one full scheduler cycle's worth of
// descriptors per crossing — the victim's frame must reach the wire
// within a small bounded number of crossings regardless of the backlog
// imbalance: the scheduler (classic round-robin or weighted DRR alike)
// may not starve a backlogged guest behind a noisy neighbor.
func attackSchedNoisyNeighbor(s *Soak, g *soakGuest) error {
	if err := s.serviceAll(); err != nil { // start from an empty ring
		return err
	}
	if s.tw.Dead {
		return nil
	}
	victim := s.guests[(g.idx+1)%len(s.guests)]
	if victim == g {
		return nil
	}
	flood := make([][]byte, core.TxRingSlots)
	for i := range flood {
		flood[i] = s.txFrame(g, 64)
	}
	if err := s.stageBatch(g, flood); err != nil {
		return err
	}
	if s.tw.Dead {
		return nil
	}
	if err := s.stageBatch(victim, [][]byte{s.txFrame(victim, 300)}); err != nil {
		return err
	}
	if s.tw.Dead || len(victim.stagedQ) == 0 {
		return nil // abort mid-stage, or the victim's ring refused the frame
	}
	// One scheduler cycle per crossing: every guest's weight in
	// descriptors (weight 1 apiece under the classic sweep). The budget is
	// per queue, so a sharded victim sees at least its own shard's cycle.
	budget := 0
	for _, other := range s.guests {
		budget += s.tw.GuestWeight(other.dom.ID)
	}
	wireBefore := victim.ledger.WireTx
	for i := 0; i < 4; i++ {
		if err := s.serviceBudget(budget); err != nil {
			return err
		}
		if s.tw.Dead {
			return nil
		}
		if victim.ledger.WireTx > wireBefore {
			return s.serviceAll() // bounded delay held; drain the flood
		}
	}
	return fmt.Errorf("%w: victim starved behind a %d-frame flood for 4 weighted crossings",
		ErrInvariant, len(flood))
}

// --- interface abuse ----------------------------------------------------

// attackOversizeHypercall: hostile sizes at the hypercall boundary — a
// frame larger than the bounce buffer, and zero/oversize length words —
// must be refused before a byte moves, with typed errors and no pool
// mutation.
func attackOversizeHypercall(s *Soak, g *soakGuest) error {
	s.m.HV.Switch(g.dom)
	freeBefore, outBefore := s.tw.PoolFree(), s.tw.PoolOutstanding()
	big := make([]byte, core.GuestBounceBytes+1)
	if err := s.tw.GuestTransmit(s.d, big); !errors.Is(err, core.ErrBounceOverflow) {
		return fmt.Errorf("%w: oversize bounce returned %v", ErrInvariant, err)
	}
	if err := s.tw.GuestTransmitAt(s.d, 0, 0); !errors.Is(err, core.ErrFrameOversize) {
		return fmt.Errorf("%w: zero-length transmit returned %v", ErrInvariant, err)
	}
	if err := s.tw.GuestTransmitAt(s.d, 0, 1<<20); !errors.Is(err, core.ErrFrameOversize) {
		return fmt.Errorf("%w: huge-length transmit returned %v", ErrInvariant, err)
	}
	if s.tw.PoolFree() != freeBefore || s.tw.PoolOutstanding() != outBefore {
		return fmt.Errorf("%w: refused hypercalls moved pool state", ErrInvariant)
	}
	return nil
}

// attackPostedOvercommit: the guest posts more receive buffers than the
// ring holds; the post must stop at capacity without error, and every
// accepted descriptor must still deliver honestly.
func attackPostedOvercommit(s *Soak, g *soakGuest) error {
	free, err := s.tw.RxPostedFree(g.dom.ID)
	if err != nil {
		return fmt.Errorf("%w: posted free: %v", ErrInvariant, err)
	}
	posts := make([]core.RxPost, core.RxRingSlots*2)
	for i := range posts {
		posts[i] = core.RxPost{Addr: g.arena[g.arenaCur], Len: arenaBufBytes}
		g.arenaCur = (g.arenaCur + 1) % len(g.arena)
	}
	posted, err := s.tw.PostRxBuffers(g.dom, posts)
	if err != nil {
		if errors.Is(err, core.ErrDriverDead) {
			return s.accountAbort()
		}
		return fmt.Errorf("%w: overcommit post: %v", ErrInvariant, err)
	}
	if posted != free {
		return fmt.Errorf("%w: overcommit posted %d descriptors into %d free slots", ErrInvariant, posted, free)
	}
	if err := s.injectRx(g, 2); err != nil {
		return err
	}
	if s.tw.Dead {
		return nil
	}
	return s.deliverRx(g)
}

// attackPostedTxDoublePost: the guest posts the same buffer address twice
// in one batch — aliased descriptors naming one physical frame. Each
// descriptor must be accounted exactly once (wire or loss, never neither,
// never twice) and the pin ledger must not wedge on the aliasing.
func attackPostedTxDoublePost(s *Soak, g *soakGuest) error {
	if err := s.serviceAll(); err != nil { // start from an empty ring
		return err
	}
	if s.tw.Dead {
		return nil
	}
	frame := s.txFrame(g, 500)
	buf := g.txArena[g.txArenaCur]
	g.txArenaCur = (g.txArenaCur + 1) % len(g.txArena)
	if err := g.dom.AS.WriteBytes(buf, frame); err != nil {
		return fmt.Errorf("%w: arena write: %v", ErrInvariant, err)
	}
	descs := []core.TxPost{
		{Addr: buf, Len: uint32(len(frame))},
		{Addr: buf, Len: uint32(len(frame))},
	}
	posted, err := s.tw.PostTxDescriptors(g.dom, descs)
	if err != nil {
		if errors.Is(err, core.ErrDriverDead) {
			return s.accountAbort()
		}
		return fmt.Errorf("%w: double post: %v", ErrInvariant, err)
	}
	g.ledger.OfferedTx += posted
	for i := 0; i < posted; i++ {
		g.stagedQ = append(g.stagedQ, frame)
	}
	wireBefore, lostBefore := g.ledger.WireTx, g.ledger.LostTx
	if err := s.serviceAll(); err != nil {
		return err
	}
	if s.tw.Dead {
		return fmt.Errorf("%w: aliased descriptors killed the instance", ErrInvariant)
	}
	if got := (g.ledger.WireTx - wireBefore) + (g.ledger.LostTx - lostBefore); got != posted {
		return fmt.Errorf("%w: double post accounted %d outcomes for %d descriptors", ErrInvariant, got, posted)
	}
	if n := s.tw.PinnedTxPages(); n > 2*s.tw.PoolCapacity() {
		return fmt.Errorf("%w: pin ledger runaway: %d pages pinned", ErrInvariant, n)
	}
	return nil
}

// floodPostedTx: the posted-ring variant of the TX flood — the guest
// offers twice the ring depth in one post; the post must stop exactly at
// ring capacity without error and the overflow descriptors must never be
// charged to anyone.
func (s *Soak) floodPostedTx(g *soakGuest) error {
	free, err := s.tw.TxPostedFree(g.dom.ID)
	if err != nil {
		return fmt.Errorf("%w: tx posted free: %v", ErrInvariant, err)
	}
	flood := make([][]byte, 2*core.TxRingSlots)
	descs := make([]core.TxPost, len(flood))
	for i := range flood {
		flood[i] = s.txFrame(g, 64)
		if i < free {
			buf := g.txArena[g.txArenaCur]
			g.txArenaCur = (g.txArenaCur + 1) % len(g.txArena)
			if err := g.dom.AS.WriteBytes(buf, flood[i]); err != nil {
				return fmt.Errorf("%w: arena write: %v", ErrInvariant, err)
			}
			descs[i] = core.TxPost{Addr: buf, Len: uint32(len(flood[i]))}
		} else {
			descs[i] = core.TxPost{Addr: g.txArena[0], Len: 64} // never posted
		}
	}
	posted, err := s.tw.PostTxDescriptors(g.dom, descs)
	if err != nil {
		if errors.Is(err, core.ErrDriverDead) {
			return s.accountAbort()
		}
		return fmt.Errorf("%w: flood post: %v", ErrInvariant, err)
	}
	if posted != free {
		return fmt.Errorf("%w: flood posted %d descriptors into %d free slots", ErrInvariant, posted, free)
	}
	g.ledger.OfferedTx += posted
	g.stagedQ = append(g.stagedQ, flood[:posted]...)
	return s.serviceAll()
}
