package chaos

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"twindrivers/internal/drivermodel"
)

// smokeConfig is the canonical soak: every traffic shape, hostile attacks
// and containment faults on, across four guests with mixed rx-modes.
func smokeConfig(backend string) Config {
	return Config{
		Seed:    0xC4A05EED,
		Backend: backend,
		Guests:  4,
		Steps:   200,
		Hostile: true,
		Faults:  true,
	}
}

// TestSoakSmoke runs the full chaos soak on every registered backend and
// asserts the run exercised what it claims to: traffic moved on both
// directions, both rx-paths, and both tx-paths, attacks ran, faults were
// contained and recovered one-for-one, and the exactly-once ledgers
// balance.
func TestSoakSmoke(t *testing.T) {
	for _, backend := range drivermodel.Names() {
		t.Run(backend, func(t *testing.T) {
			rep, err := Run(smokeConfig(backend))
			if err != nil {
				t.Fatalf("soak: %v", err)
			}
			wire, delivered, copied, posted := 0, 0, 0, 0
			txCopied, txPosted := 0, 0
			for i, l := range rep.Guests {
				if l.OfferedTx != l.WireTx+l.LostTx {
					t.Errorf("guest %d tx ledger unbalanced: %+v", i, l)
				}
				if l.OfferedRx != l.DeliveredRx+l.LostRx {
					t.Errorf("guest %d rx ledger unbalanced: %+v", i, l)
				}
				wire += l.WireTx
				delivered += l.DeliveredRx
				if l.Posted {
					posted += l.DeliveredRx
				} else {
					copied += l.DeliveredRx
				}
				if l.PostedTx {
					txPosted += l.WireTx
				} else {
					txCopied += l.WireTx
				}
			}
			if wire == 0 || delivered == 0 {
				t.Fatalf("soak moved no traffic: wire=%d delivered=%d", wire, delivered)
			}
			if copied == 0 || posted == 0 {
				t.Fatalf("soak did not exercise both rx paths: copy=%d posted=%d", copied, posted)
			}
			if txCopied == 0 || txPosted == 0 {
				t.Fatalf("soak did not exercise both tx paths: copy=%d posted=%d", txCopied, txPosted)
			}
			if len(rep.Attacks) == 0 {
				t.Fatal("hostile soak ran no attacks")
			}
			if rep.Recoveries == 0 {
				t.Fatal("faulting soak saw no recoveries")
			}
			if rep.Faults != rep.Aborts || rep.Recoveries != rep.Aborts {
				t.Fatalf("containment not one-for-one: faults=%d aborts=%d recoveries=%d",
					rep.Faults, rep.Aborts, rep.Recoveries)
			}
			if rep.Digest == "" {
				t.Fatal("report missing digest")
			}
		})
	}
}

// TestSoakWeightedSwitched runs the canonical soak with the DRR scheduler
// (weights 4:2:1, applied cyclically over four guests) and the inter-guest
// switch engaged on every backend: weights reorder service and the switch
// adds the spoof-drop surface, but neither may change whether a frame is
// accounted — the exactly-once ledgers balance exactly as in the classic
// soak, and the hostile scheduler's switch-mac-spoof attack runs for real.
func TestSoakWeightedSwitched(t *testing.T) {
	for _, backend := range drivermodel.Names() {
		t.Run(backend, func(t *testing.T) {
			cfg := smokeConfig(backend)
			cfg.Weights = []int{4, 2, 1}
			cfg.Switch = true
			rep, err := Run(cfg)
			if err != nil {
				t.Fatalf("weighted soak: %v", err)
			}
			wire, delivered := 0, 0
			for i, l := range rep.Guests {
				if l.OfferedTx != l.WireTx+l.LostTx {
					t.Errorf("guest %d tx ledger unbalanced: %+v", i, l)
				}
				if l.OfferedRx != l.DeliveredRx+l.LostRx {
					t.Errorf("guest %d rx ledger unbalanced: %+v", i, l)
				}
				wire += l.WireTx
				delivered += l.DeliveredRx
			}
			if wire == 0 || delivered == 0 {
				t.Fatalf("weighted soak moved no traffic: wire=%d delivered=%d", wire, delivered)
			}
			spoofed := false
			for _, a := range rep.Attacks {
				if a.Name == "switch-mac-spoof" && a.Runs > 0 {
					spoofed = true
				}
			}
			if !spoofed {
				t.Fatal("switched soak never exercised switch-mac-spoof")
			}
			if rep.Faults != rep.Aborts || rep.Recoveries != rep.Aborts {
				t.Fatalf("containment not one-for-one: faults=%d aborts=%d recoveries=%d",
					rep.Faults, rep.Aborts, rep.Recoveries)
			}
		})
	}
}

// TestSoakParallelQueues runs the canonical soak on the multi-queue
// backend with ServiceAllQueues — one goroutine per service queue —
// at several queue counts. Under -race this is the proof that the
// per-queue service loops are shared-nothing: the goroutines touch no
// common mutable state on their hot path. The exactly-once ledgers must
// balance exactly as under the sequential sweep (wire interleaving
// across queues may vary, per-guest order may not).
func TestSoakParallelQueues(t *testing.T) {
	for _, queues := range []int{2, 8} {
		t.Run(fmt.Sprintf("q%d", queues), func(t *testing.T) {
			cfg := smokeConfig("mqnic")
			cfg.Queues = queues
			cfg.Parallel = true
			rep, err := Run(cfg)
			if err != nil {
				t.Fatalf("parallel soak: %v", err)
			}
			wire, delivered := 0, 0
			for i, l := range rep.Guests {
				if l.OfferedTx != l.WireTx+l.LostTx {
					t.Errorf("guest %d tx ledger unbalanced: %+v", i, l)
				}
				if l.OfferedRx != l.DeliveredRx+l.LostRx {
					t.Errorf("guest %d rx ledger unbalanced: %+v", i, l)
				}
				wire += l.WireTx
				delivered += l.DeliveredRx
			}
			if wire == 0 || delivered == 0 {
				t.Fatalf("parallel soak moved no traffic: wire=%d delivered=%d", wire, delivered)
			}
			if rep.Faults != rep.Aborts || rep.Recoveries != rep.Aborts {
				t.Fatalf("containment not one-for-one: faults=%d aborts=%d recoveries=%d",
					rep.Faults, rep.Aborts, rep.Recoveries)
			}
		})
	}
}

// TestSoakHasTeeth proves the harness's invariant checks actually bite: the
// identical configuration passes clean, and suppressing exactly one Lost
// increment (the tamper flag, wired through the loss choke points) makes
// the run fail with ErrInvariant. A soak that cannot catch a deliberately
// broken ledger would be asserting nothing.
func TestSoakHasTeeth(t *testing.T) {
	cfg := smokeConfig("e1000")
	if _, err := Run(cfg); err != nil {
		t.Fatalf("untampered soak must pass: %v", err)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.tamper = true
	_, err = s.Run()
	if err == nil {
		t.Fatal("tampered soak passed: the invariant checks have no teeth")
	}
	if !errors.Is(err, ErrInvariant) {
		t.Fatalf("tampered soak failed with %v, want ErrInvariant", err)
	}
	if !s.tampered {
		t.Fatal("soak reported a violation before the tamper fired")
	}
}

// TestSoakDeterministic pins seeded determinism: two runs with the same
// configuration produce identical reports, down to the digest over every
// frame byte that crossed an interface. This is the property the whole
// harness rests on — a failure that cannot be replayed from its seed is a
// failure that cannot be debugged.
func TestSoakDeterministic(t *testing.T) {
	for _, backend := range drivermodel.Names() {
		t.Run(backend, func(t *testing.T) {
			cfg := smokeConfig(backend)
			cfg.Steps = 120
			a, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("same seed, different reports:\n%+v\n%+v", a, b)
			}
			cfg.Seed++
			c, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if c.Digest == a.Digest {
				t.Fatal("different seeds produced identical digests")
			}
		})
	}
}

// TestSoakAccountingProperty is the quick-check form of the exactly-once
// invariant: for any random schedule (any seed, any guest rx-mode and
// tx-mode mix), on both backends, every guest's ledger balances exactly —
// delivered + lost == offered, wire + lost == offered — with hostility and
// faults enabled.
func TestSoakAccountingProperty(t *testing.T) {
	for _, backend := range drivermodel.Names() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			prop := func(seed uint64, postedMask, txMask uint8) bool {
				posted := make([]bool, 2)
				postedTx := make([]bool, 2)
				for i := range posted {
					posted[i] = postedMask&(1<<i) != 0
					postedTx[i] = txMask&(1<<i) != 0
				}
				rep, err := Run(Config{
					Seed:     seed,
					Backend:  backend,
					Guests:   2,
					Steps:    50,
					Posted:   posted,
					PostedTX: postedTx,
					Hostile:  true,
					Faults:   true,
				})
				if err != nil {
					t.Logf("seed %#x posted %v postedTx %v: %v", seed, posted, postedTx, err)
					return false
				}
				for _, l := range rep.Guests {
					if l.OfferedTx != l.WireTx+l.LostTx || l.OfferedRx != l.DeliveredRx+l.LostRx {
						t.Logf("seed %#x posted %v postedTx %v: unbalanced ledger %+v", seed, posted, postedTx, l)
						return false
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 6}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
