package chaos

import (
	"fmt"
	"testing"

	"twindrivers/internal/drivermodel"
)

// TestAttackMatrixComplete asserts the matrix's shape: every dimension ×
// backend × rx-mode × tx-mode × applicable-queue-count cell exists and is
// non-empty, and every registered attack appears in at least one cell —
// no attack can be added to the table and silently never run.
func TestAttackMatrixComplete(t *testing.T) {
	cells := Cells()
	want := 0
	for _, backend := range drivermodel.Names() {
		want += len(Dimensions()) * len(BackendQueueCounts(backend)) * 2 * 2
	}
	if len(cells) != want {
		t.Fatalf("matrix has %d cells, want %d", len(cells), want)
	}
	covered := make(map[string]bool)
	for _, c := range cells {
		if len(c.Attacks) == 0 {
			t.Errorf("empty matrix cell %s/%s/rx-%s/tx-%s: the %s surface has no attack under that mode pair",
				c.Dim, c.Backend, c.Mode, c.Tx, c.Dim)
		}
		for _, name := range c.Attacks {
			covered[name] = true
		}
	}
	for _, a := range Attacks() {
		if !covered[a.Name] {
			t.Errorf("attack %s appears in no matrix cell", a.Name)
		}
	}
	for _, a := range Attacks() {
		if len(a.Modes) == 0 {
			t.Errorf("attack %s declares no rx-modes", a.Name)
		}
		if len(a.TxModes) == 0 {
			t.Errorf("attack %s declares no tx-modes", a.Name)
		}
	}
}

// TestAttackMatrixZeroSkip runs the full attack-surface matrix: every cell,
// every attack in it, against every guest of a soak configured for that
// cell's backend, rx-mode, and tx-mode — zero skips. Each attack is
// followed by the soak's full settle invariants, and each cell ends with a
// drain, so an attack that leaves the system inconsistent fails here even
// if its own assertions passed.
func TestAttackMatrixZeroSkip(t *testing.T) {
	for i, c := range Cells() {
		c, i := c, i
		t.Run(fmt.Sprintf("%s/%s/rx-%s/tx-%s/q%d", c.Dim, c.Backend, c.Mode, c.Tx, c.Queues), func(t *testing.T) {
			if len(c.Attacks) == 0 {
				t.Fatalf("empty matrix cell")
			}
			posted := make([]bool, 2)
			postedTx := make([]bool, 2)
			for g := range posted {
				posted[g] = c.Mode == ModePosted
				postedTx[g] = c.Tx == TxPosted
			}
			s, err := New(Config{
				Seed:     0xA77AC4 + uint64(i),
				Backend:  c.Backend,
				Guests:   2,
				Steps:    64, // sizes the recovery budget; attacks drive the traffic
				Posted:   posted,
				PostedTX: postedTx,
				Queues:   c.Queues,
				// The switch surface is always present so switch-mac-spoof
				// runs genuinely in every cell; the harness's ordinary
				// frames address external MACs and still take the device.
				Switch: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range c.Attacks {
				for _, g := range s.guests {
					if err := s.runAttack(name, g); err != nil {
						t.Fatalf("attack %s on guest %d: %v", name, g.idx, err)
					}
					if err := s.settle(); err != nil {
						t.Fatalf("after attack %s on guest %d: %v", name, g.idx, err)
					}
				}
			}
			if err := s.drain(); err != nil {
				t.Fatalf("final drain: %v", err)
			}
		})
	}
}
