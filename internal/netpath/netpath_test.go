package netpath

import (
	"testing"

	"twindrivers/internal/core"
	"twindrivers/internal/cost"
	"twindrivers/internal/cycles"
)

func TestKindNames(t *testing.T) {
	want := map[Kind]string{Linux: "Linux", Dom0: "dom0", DomU: "domU", Twin: "domU-twin"}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d = %q", k, k.String())
		}
	}
	if len(Kinds()) != 4 {
		t.Error("Kinds() incomplete")
	}
}

func TestLinuxChargesNoVirt(t *testing.T) {
	p, err := New(Linux, 1, core.TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := p.SendOne(0, 1000); err != nil {
			t.Fatal(err)
		}
	}
	p.ResetMeasurement()
	if err := p.SendOne(0, 1000); err != nil {
		t.Fatal(err)
	}
	if v := p.Meter().Get(cycles.CompXen); v != 0 {
		t.Errorf("native Linux charged %d Xen cycles", v)
	}
	if v := p.Meter().Get(cycles.CompDomU); v != 0 {
		t.Errorf("native Linux charged %d domU cycles", v)
	}
}

func TestDom0ChargesVirtOverhead(t *testing.T) {
	p, err := New(Dom0, 1, core.TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		p.SendOne(0, 1000)
	}
	p.ResetMeasurement()
	if err := p.SendOne(0, 1000); err != nil {
		t.Fatal(err)
	}
	if v := p.Meter().Get(cycles.CompXen); v != cost.Dom0VirtPerPacketTx {
		t.Errorf("dom0 Xen charge = %d, want %d", v, cost.Dom0VirtPerPacketTx)
	}
}

func TestDomUPathMovesRealBytes(t *testing.T) {
	p, err := New(DomU, 1, core.TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := p.M.Devs[0]
	var wire [][]byte
	d.NIC.OnTransmit = func(pkt []byte) { wire = append(wire, append([]byte(nil), pkt...)) }
	if err := p.SendOne(0, 777); err != nil {
		t.Fatal(err)
	}
	if len(wire) != 1 || len(wire[0]) != 777 {
		t.Fatalf("wire: %d packets", len(wire))
	}
	// The payload went guest page -> grant copy -> dom0 skb -> DMA: check
	// the pattern survived.
	if wire[0][14] == 0 && wire[0][14+97] == 0 {
		t.Error("payload pattern lost")
	}
	// Grant machinery was exercised.
	if p.M.HV.GrantOps == 0 {
		t.Error("no grant operations on the domU path")
	}
}

func TestDomUSwitchesTwicePerPacket(t *testing.T) {
	p, err := New(DomU, 1, core.TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		p.SendOne(0, 500)
	}
	p.ResetMeasurement()
	for i := 0; i < 10; i++ {
		if err := p.SendOne(0, 500); err != nil {
			t.Fatal(err)
		}
	}
	if got := float64(p.M.HV.Switches) / 10; got != 2 {
		t.Errorf("switches per packet = %.1f", got)
	}
}

func TestTwinPathZeroSwitches(t *testing.T) {
	p, err := New(Twin, 1, core.TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		p.SendOne(0, 500)
		p.ReceiveOne(0, 500)
	}
	p.ResetMeasurement()
	for i := 0; i < 10; i++ {
		if err := p.SendOne(0, 500); err != nil {
			t.Fatal(err)
		}
		if err := p.ReceiveOne(0, 500); err != nil {
			t.Fatal(err)
		}
	}
	if p.M.HV.Switches != 0 {
		t.Errorf("twin path switched %d times", p.M.HV.Switches)
	}
	if p.T.UpcallsPerformed() != 0 {
		t.Errorf("twin path made %d upcalls", p.T.UpcallsPerformed())
	}
}

func TestReceiveDeliversToGuestStack(t *testing.T) {
	for _, kind := range Kinds() {
		p, err := New(kind, 1, core.TwinConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := p.ReceiveOne(0, 900); err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
		}
		if p.RxCount != 5 {
			t.Errorf("%v: rx = %d", kind, p.RxCount)
		}
	}
}

func TestMultiNICRoundRobin(t *testing.T) {
	p, err := New(Linux, 3, core.TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	for i, d := range p.M.Devs {
		i := i
		d.NIC.OnTransmit = func([]byte) { counts[i]++ }
	}
	for i := 0; i < 9; i++ {
		if err := p.SendOne(i, 200); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range counts {
		if c != 3 {
			t.Errorf("NIC %d sent %d", i, c)
		}
	}
}

func TestSendBurstBatchOneMatchesPerPacket(t *testing.T) {
	run := func(batched bool) uint64 {
		p, err := New(Twin, 1, core.TwinConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 16; i++ {
			if err := p.SendOne(i, 1000); err != nil {
				t.Fatal(err)
			}
		}
		p.ResetMeasurement()
		if batched {
			p.BatchSize = 1
			if n, err := p.SendBurst(0, 1000, 16); err != nil || n != 16 {
				t.Fatalf("burst: n=%d err=%v", n, err)
			}
		} else {
			for i := 0; i < 16; i++ {
				if err := p.SendOne(i, 1000); err != nil {
					t.Fatal(err)
				}
			}
		}
		return p.Meter().Total()
	}
	per, burst := run(false), run(true)
	if per != burst {
		t.Errorf("batch-1 burst = %d cycles, per-packet = %d", burst, per)
	}
}

func TestTwinBurstMovesAllPackets(t *testing.T) {
	p, err := New(Twin, 1, core.TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p.BatchSize = 8
	if n, err := p.SendBurst(0, 1200, 20); err != nil || n != 20 {
		t.Fatalf("send burst: n=%d err=%v", n, err)
	}
	if p.TxCount != 20 {
		t.Errorf("TxCount = %d", p.TxCount)
	}
	if n, err := p.ReceiveBurst(0, 1200, 20); err != nil || n != 20 {
		t.Fatalf("receive burst: n=%d err=%v", n, err)
	}
	if p.RxCount != 20 {
		t.Errorf("RxCount = %d", p.RxCount)
	}
}

func TestTwinBurstCheaperPerPacket(t *testing.T) {
	measure := func(batch int) (tx, rx float64) {
		p, err := New(Twin, 1, core.TwinConfig{})
		if err != nil {
			t.Fatal(err)
		}
		p.BatchSize = batch
		const n = 64
		if _, err := p.SendBurst(0, 1000, n); err != nil {
			t.Fatal(err)
		}
		p.ResetMeasurement()
		if _, err := p.SendBurst(0, 1000, n); err != nil {
			t.Fatal(err)
		}
		tx = float64(p.Meter().Total()) / n
		p.ResetMeasurement()
		if _, err := p.ReceiveBurst(0, 1000, n); err != nil {
			t.Fatal(err)
		}
		rx = float64(p.Meter().Total()) / n
		return tx, rx
	}
	tx1, rx1 := measure(1)
	tx32, rx32 := measure(32)
	if tx32 >= tx1 {
		t.Errorf("tx batch=32 %.0f cyc/pkt, batch=1 %.0f: no amortization", tx32, tx1)
	}
	if rx32 >= rx1 {
		t.Errorf("rx batch=32 %.0f cyc/pkt, batch=1 %.0f: no amortization", rx32, rx1)
	}
}

func TestNonTwinKindsIgnoreBatchSize(t *testing.T) {
	for _, kind := range []Kind{Linux, Dom0, DomU} {
		p, err := New(kind, 1, core.TwinConfig{})
		if err != nil {
			t.Fatal(err)
		}
		p.BatchSize = 16
		if n, err := p.SendBurst(0, 800, 4); err != nil || n != 4 {
			t.Fatalf("%s: n=%d err=%v", kind, n, err)
		}
		if p.TxCount != 4 {
			t.Errorf("%s: TxCount = %d", kind, p.TxCount)
		}
	}
}

// TestUndersizedFrameRejected: sizes below the 14-byte Ethernet header are
// a clean error (not a panic in the payload arithmetic), and the header
// itself (size 14) is the smallest accepted frame.
func TestUndersizedFrameRejected(t *testing.T) {
	for _, kind := range Kinds() {
		p, err := New(kind, 1, core.TwinConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for _, size := range []int{0, 13} {
			if err := p.SendOne(0, size); err == nil {
				t.Errorf("%v SendOne(size=%d) succeeded", kind, size)
			}
			if err := p.ReceiveOne(0, size); err == nil {
				t.Errorf("%v ReceiveOne(size=%d) succeeded", kind, size)
			}
		}
		if p.TxCount != 0 || p.RxCount != 0 {
			t.Errorf("%v counted rejected frames: tx=%d rx=%d", kind, p.TxCount, p.RxCount)
		}
		// Size 14 (padded to the Ethernet minimum on the wire) works.
		if err := p.SendOne(0, 14); err != nil {
			t.Errorf("%v SendOne(size=14): %v", kind, err)
		}
		if err := p.ReceiveOne(0, 14); err != nil {
			t.Errorf("%v ReceiveOne(size=14): %v", kind, err)
		}
	}
}

// TestMultiGuestBursts drives the fan-out path end to end: per-guest
// transmit bursts complete for every guest with one hypercall per service
// round, and receive bursts deliver each guest its own packets.
func TestMultiGuestBursts(t *testing.T) {
	const guests = 4
	p, err := NewMulti(Twin, 1, guests, core.TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p.M.Devs[0].NIC.OnTransmit = func([]byte) {}
	p.M.HV.ResetStats()
	sent, err := p.SendBurstMulti(0, 600, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(sent) != guests {
		t.Fatalf("sent to %d guests, want %d", len(sent), guests)
	}
	for id, n := range sent {
		if n != 8 {
			t.Errorf("guest %d sent %d, want 8", id, n)
		}
	}
	if p.M.HV.Hypercalls != 1 {
		t.Errorf("hypercalls = %d, want 1 (one crossing for all guests)", p.M.HV.Hypercalls)
	}
	if p.TxCount != guests*8 {
		t.Errorf("TxCount = %d", p.TxCount)
	}

	got, err := p.ReceiveBurstMulti(0, 600, 6)
	if err != nil {
		t.Fatal(err)
	}
	for id, n := range got {
		if n != 6 {
			t.Errorf("guest %d received %d, want 6", id, n)
		}
	}
	if p.RxCount != guests*6 {
		t.Errorf("RxCount = %d", p.RxCount)
	}
}

// TestMultiGuestRejectsNonTwin: only the domU-twin path fans out.
func TestMultiGuestRejectsNonTwin(t *testing.T) {
	if _, err := NewMulti(Linux, 1, 2, core.TwinConfig{}); err == nil {
		t.Error("multi-guest Linux path accepted")
	}
	p, err := NewMulti(Linux, 1, 1, core.TwinConfig{})
	if err != nil || p.Guests != 1 {
		t.Fatalf("single-guest Linux path: %v", err)
	}
	if _, err := p.SendBurstMulti(0, 600, 1); err == nil {
		t.Error("SendBurstMulti on a non-twin path succeeded")
	}
}
