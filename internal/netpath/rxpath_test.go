package netpath

import (
	"testing"

	"twindrivers/internal/core"
)

// Posted-receive path tests at the configuration level: full bursts, the
// multi-guest fan-out, and loss accounting when a bad posted descriptor
// (or a mid-batch delivery fault) costs frames mid-burst.

// TestPostedBurstMovesAllPackets: a posted-mode receive burst completes
// every frame across several ring-sized chunks, with zero loss.
func TestPostedBurstMovesAllPackets(t *testing.T) {
	p, err := New(Twin, 1, core.TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p.BatchSize = 16
	p.PostedRX = true
	const n = 100 // several posted-ring refills
	got, err := p.ReceiveBurst(0, 800, n)
	if err != nil {
		t.Fatal(err)
	}
	if got != n || p.RxCount != n {
		t.Fatalf("moved %d (count %d), want %d", got, p.RxCount, n)
	}
	if p.LostRx != 0 {
		t.Fatalf("lossless burst lost %d", p.LostRx)
	}
}

// TestPostedPerPacketSetting: BatchSize <= 1 in posted mode degenerates to
// one-frame post/deliver rounds and still moves everything.
func TestPostedPerPacketSetting(t *testing.T) {
	p, err := New(Twin, 1, core.TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p.PostedRX = true
	got, err := p.ReceiveBurst(0, 400, 10)
	if err != nil || got != 10 {
		t.Fatalf("moved %d, %v", got, err)
	}
}

// TestPostedBurstCheaperPerPacket: the posted path beats the copy path on
// the same burst shape — the end-to-end form of the netbench acceptance.
func TestPostedBurstCheaperPerPacket(t *testing.T) {
	run := func(posted bool) float64 {
		p, err := New(Twin, 1, core.TwinConfig{})
		if err != nil {
			t.Fatal(err)
		}
		p.BatchSize = 8
		p.PostedRX = posted
		if _, err := p.ReceiveBurst(0, 1500, 64); err != nil {
			t.Fatal(err)
		}
		p.ResetMeasurement()
		if _, err := p.ReceiveBurst(0, 1500, 64); err != nil {
			t.Fatal(err)
		}
		return float64(p.Meter().Total()) / 64
	}
	copyCpp, postedCpp := run(false), run(true)
	if !(postedCpp < copyCpp) {
		t.Fatalf("posted %.0f cyc/pkt not below copy %.0f", postedCpp, copyCpp)
	}
}

// TestPostedHostileDescriptorCountedOnce: a hostile descriptor pre-posted
// on the guest's ring costs exactly one frame, counted exactly once in
// LostRx, while the burst completes with a replacement — the mid-burst
// partial-failure accounting contract.
func TestPostedHostileDescriptorCountedOnce(t *testing.T) {
	p, err := New(Twin, 1, core.TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p.BatchSize = 8
	p.PostedRX = true
	// The guest scribbles one hostile descriptor ahead of the honest
	// ones: the first delivery of the burst consumes it and loses that
	// frame; every later frame lands in an honest buffer.
	if n, err := p.T.PostRxBuffers(p.M.DomU, []core.RxPost{{Addr: 0xF1000040, Len: 4096}}); err != nil || n != 1 {
		t.Fatalf("hostile pre-post: %d, %v", n, err)
	}
	const n = 24
	got, err := p.ReceiveBurst(0, 600, n)
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("burst moved %d of %d", got, n)
	}
	if p.LostRx != 1 {
		t.Fatalf("LostRx = %d, want exactly 1 (no double-count)", p.LostRx)
	}
	if p.RxCount != n {
		t.Fatalf("RxCount = %d, want %d", p.RxCount, n)
	}
}

// TestPostedMultiGuestBursts: every guest posts its own buffers and gets
// its full per-guest delivery count.
func TestPostedMultiGuestBursts(t *testing.T) {
	p, err := NewMulti(Twin, 1, 3, core.TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p.PostedRX = true
	got, err := p.ReceiveBurstMulti(0, 900, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, dom := range p.M.Guests {
		if got[dom.ID] != 20 {
			t.Errorf("guest %d received %d of 20", dom.ID, got[dom.ID])
		}
	}
	if p.LostRx != 0 {
		t.Errorf("lossless fan-out lost %d", p.LostRx)
	}
}

// TestPostedZeroProgressRoundTerminates: a delivery round that loses every
// frame (the guest pre-posted a batch of too-short descriptors) must end
// the burst with a short count instead of repeating — the zero-progress
// guard against re-posting and re-losing forever. The losses are counted
// exactly once, and the queued frames deliver on the next honest burst.
func TestPostedZeroProgressRoundTerminates(t *testing.T) {
	p, err := New(Twin, 1, core.TwinConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p.BatchSize = 4
	p.PostedRX = true
	// Hostile guest: four descriptors whose buffers cannot hold any frame.
	short := make([]core.RxPost, 4)
	for i := range short {
		short[i] = core.RxPost{Addr: 0xB0000000, Len: 8}
	}
	if n, err := p.T.PostRxBuffers(p.M.DomU, short); err != nil || n != 4 {
		t.Fatalf("pre-post: %d, %v", n, err)
	}
	got, err := p.ReceiveBurst(0, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("zero-progress burst reported %d delivered", got)
	}
	if p.LostRx != 4 {
		t.Fatalf("LostRx = %d, want exactly 4", p.LostRx)
	}
	// The injected frames stayed queued behind the honest buffers posted
	// in that round; the next burst drains them.
	if got, err := p.ReceiveBurst(0, 400, 4); err != nil || got != 4 {
		t.Fatalf("drain burst: %d, %v", got, err)
	}
	if p.LostRx != 4 {
		t.Fatalf("losses double-counted: LostRx = %d", p.LostRx)
	}
}
