package netpath

import (
	"errors"
	"testing"

	"twindrivers/internal/core"
	"twindrivers/internal/mem"
	"twindrivers/internal/recovery"
)

func newRecoverablePath(t *testing.T, guests, batch int) *Path {
	t.Helper()
	p, err := NewMulti(Twin, 1, guests, core.TwinConfig{Watchdog: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	p.BatchSize = batch
	p.Recovery = recovery.New(p.M, p.T, recovery.Policy{})
	p.M.Devs[0].NIC.OnTransmit = func([]byte) {}
	return p
}

// wildWrite injects the shared wild-write fault (netdev->priv aimed at
// hypervisor memory) so the next driver invocation faults.
func wildWrite(t *testing.T, p *Path) {
	t.Helper()
	if err := recovery.Injectors()[0].Inject(p.M, p.T, p.M.Devs[0]); err != nil {
		t.Fatal(err)
	}
}

// TestSendBurstRecoversTransparently: a fault mid-burst on the batched
// transmit path is healed in place — the burst completes, the discarded
// staged frames are re-staged (counted), nothing is lost or duplicated.
func TestSendBurstRecoversTransparently(t *testing.T) {
	p := newRecoverablePath(t, 1, 8)
	var wire int
	p.M.Devs[0].NIC.OnTransmit = func([]byte) { wire++ }

	if done, err := p.SendBurst(0, 800, 16); err != nil || done != 16 {
		t.Fatalf("warm burst: %d, %v", done, err)
	}
	wildWrite(t, p)
	done, err := p.SendBurst(16, 800, 24)
	if err != nil {
		t.Fatalf("burst over fault: %v", err)
	}
	if done != 24 {
		t.Fatalf("burst completed %d of 24", done)
	}
	if p.Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1", p.Recovered)
	}
	if p.RetriedTx == 0 {
		t.Error("no staged frames recorded as re-staged")
	}
	// Exactly 16+24 frames on the wire: the faulted frame was re-sent,
	// not duplicated (the invocation died before DMA).
	if wire != 40 {
		t.Errorf("wire saw %d frames, want 40", wire)
	}
	if p.TxCount != 40 {
		t.Errorf("TxCount = %d", p.TxCount)
	}
}

// TestReceiveBurstRecoversWithBoundedLoss: a fault on the receive path
// loses the frames the NIC had consumed (they die with the device reset),
// but the burst still completes with replacements and the loss is counted.
func TestReceiveBurstRecoversWithBoundedLoss(t *testing.T) {
	p := newRecoverablePath(t, 1, 8)
	if done, err := p.ReceiveBurst(0, 600, 16); err != nil || done != 16 {
		t.Fatalf("warm burst: %d, %v", done, err)
	}
	wildWrite(t, p)
	done, err := p.ReceiveBurst(16, 600, 24)
	if err != nil {
		t.Fatalf("burst over fault: %v", err)
	}
	if done != 24 {
		t.Fatalf("burst completed %d of 24", done)
	}
	if p.Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1", p.Recovered)
	}
	if p.LostRx == 0 || p.LostRx > 8 {
		t.Errorf("LostRx = %d, want within one 8-frame batch", p.LostRx)
	}
}

// TestPerPacketPathRecovers: BatchSize 1 (the paper's per-packet
// hypercall path) retries through the same supervisor.
func TestPerPacketPathRecovers(t *testing.T) {
	p := newRecoverablePath(t, 1, 1)
	if done, err := p.SendBurst(0, 400, 4); err != nil || done != 4 {
		t.Fatalf("warm: %d, %v", done, err)
	}
	wildWrite(t, p)
	if done, err := p.SendBurst(4, 400, 4); err != nil || done != 4 {
		t.Fatalf("per-packet burst over fault: %d, %v", done, err)
	}
	if p.Recovered != 1 || p.RetriedTx != 1 {
		t.Errorf("Recovered = %d RetriedTx = %d", p.Recovered, p.RetriedTx)
	}
}

// TestMultiGuestBurstsRecover: the fan-out paths heal a mid-drain fault;
// every guest's per-round count still completes.
func TestMultiGuestBurstsRecover(t *testing.T) {
	p := newRecoverablePath(t, 4, 8)
	if _, err := p.SendBurstMulti(0, 700, 8); err != nil {
		t.Fatalf("warm: %v", err)
	}
	wildWrite(t, p)
	got, err := p.SendBurstMulti(0, 700, 8)
	if err != nil {
		t.Fatalf("multi burst over fault: %v", err)
	}
	for _, dom := range p.M.Guests {
		if got[dom.ID] != 8 {
			t.Fatalf("guest %d moved %d of 8", dom.ID, got[dom.ID])
		}
	}
	if p.Recovered != 1 || p.RetriedTx == 0 {
		t.Errorf("Recovered = %d RetriedTx = %d", p.Recovered, p.RetriedTx)
	}

	// Receive fan-in over a fresh fault.
	wildWrite(t, p)
	rx, err := p.ReceiveBurstMulti(0, 600, 8)
	if err != nil {
		t.Fatalf("multi receive over fault: %v", err)
	}
	for _, dom := range p.M.Guests {
		if rx[dom.ID] != 8 {
			t.Fatalf("guest %d received %d of 8", dom.ID, rx[dom.ID])
		}
	}
	if p.Recovered != 2 {
		t.Errorf("Recovered = %d, want 2", p.Recovered)
	}
	if p.LostRx == 0 {
		t.Error("receive fault lost nothing?")
	}
}

// TestNoSupervisorMeansTerminal: without a supervisor the original
// containment contract holds — the burst fails with ErrDriverDead and
// stays failed.
func TestNoSupervisorMeansTerminal(t *testing.T) {
	p := newRecoverablePath(t, 1, 8)
	p.Recovery = nil
	wildWrite(t, p)
	if _, err := p.SendBurst(0, 500, 8); !errors.Is(err, core.ErrDriverDead) {
		t.Fatalf("err = %v, want ErrDriverDead", err)
	}
	if _, err := p.SendBurst(8, 500, 8); !errors.Is(err, core.ErrDriverDead) {
		t.Fatalf("second burst: %v, want ErrDriverDead", err)
	}
	if p.Recovered != 0 {
		t.Error("phantom recovery")
	}
}

// TestGiveUpPropagates: once the supervisor's escalation trips, the path
// reports ErrDriverDead again instead of looping forever.
func TestGiveUpPropagates(t *testing.T) {
	p := newRecoverablePath(t, 1, 8)
	p.Recovery = recovery.New(p.M, p.T, recovery.Policy{MaxFaults: 2, Window: 1 << 60})
	wildWrite(t, p)
	if done, err := p.SendBurst(0, 500, 8); err != nil || done != 8 {
		t.Fatalf("first fault should recover: %d, %v", done, err)
	}
	wildWrite(t, p)
	if _, err := p.SendBurst(8, 500, 8); !errors.Is(err, core.ErrDriverDead) {
		t.Fatalf("after give-up: %v, want ErrDriverDead", err)
	}
	if !p.Recovery.GivenUp {
		t.Error("supervisor did not give up")
	}
	_ = mem.OwnerDom0
}
