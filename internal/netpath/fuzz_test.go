package netpath

import (
	"testing"
)

// FuzzFrame fuzzes the path's frame construction — the size validation
// that guards the payload arithmetic (a size below the 14-byte Ethernet
// header must error, not panic in make()), the Ethernet-minimum padding,
// and the address placement — in both traffic directions. The Path's
// frame builder only touches its sequence counter, so a zero-value Path
// exercises the real code.
func FuzzFrame(f *testing.F) {
	f.Add(-1, byte(0))
	f.Add(0, byte(1))
	f.Add(13, byte(2)) // one below the header: the old make() panic
	f.Add(14, byte(3))
	f.Add(59, byte(4)) // below the Ethernet minimum: padded
	f.Add(60, byte(5))
	f.Add(1514, byte(6))
	f.Add(1<<20, byte(7))

	f.Fuzz(func(t *testing.T, size int, seq byte) {
		if size > 1<<20 {
			size %= 1 << 20 // keep allocations sane; giant sizes add nothing
		}
		p := &Path{rxSeq: seq}
		mac := [6]byte{0x02, 0xFA, 0xCE, 0, 0, 1}
		for _, rx := range []bool{true, false} {
			var frame []byte
			var err error
			if rx {
				frame, err = p.frameTo(mac, size)
			} else {
				frame, err = p.frameFrom(mac, size)
			}
			if size < 14 {
				if err == nil {
					t.Fatalf("size %d below the Ethernet header accepted", size)
				}
				continue
			}
			if err != nil {
				t.Fatalf("size %d rejected: %v", size, err)
			}
			want := size
			if want < 60 {
				want = 60 // padded to the Ethernet minimum
			}
			if len(frame) != want {
				t.Fatalf("size %d built %d-byte frame, want %d", size, len(frame), want)
			}
			// Address placement matches the direction.
			got := frame[0:6]
			if !rx {
				got = frame[6:12]
			}
			for i := range mac {
				if got[i] != mac[i] {
					t.Fatalf("size %d rx=%v: MAC byte %d = %#x, want %#x", size, rx, i, got[i], mac[i])
				}
			}
			if frame[12] != 0x08 || frame[13] != 0x00 {
				t.Fatalf("ethertype = %x%x", frame[12], frame[13])
			}
		}
	})
}
