// Package netpath wires the four measured system configurations of the
// paper's evaluation (§6) end to end:
//
//	Linux      — the driver runs natively; no hypervisor charges.
//	dom0       — the same, plus the residual paravirtualization cost of
//	             running the driver domain on Xen.
//	domU       — the unoptimized Xen guest path of Figure 1: netfront ring
//	             + grant operations in the guest, a domain switch, netback
//	             + bridge + the driver in dom0, and back.
//	domU-twin  — the TwinDrivers path of Figure 2: a hypercall from the
//	             guest straight into the derived hypervisor driver.
//
// Every configuration moves real packet bytes through the real simulated
// driver and NIC; the TCP/IP stack, netfront/netback plumbing and residual
// virtualization costs are priced from internal/cost. Per-packet cycles
// fall out of the cycle meter with the dom0/domU/Xen/e1000 attribution of
// Figures 7 and 8.
package netpath

import (
	"errors"
	"fmt"

	"twindrivers/internal/core"
	"twindrivers/internal/cost"
	"twindrivers/internal/cycles"
	"twindrivers/internal/drivermodel"
	"twindrivers/internal/kernel"
	"twindrivers/internal/mem"
	"twindrivers/internal/recovery"
	"twindrivers/internal/xen"
)

// Kind selects a configuration.
type Kind int

// The four configurations, in the order the paper's figures list them.
const (
	DomU Kind = iota
	Twin
	Dom0
	Linux
)

// Kinds lists all configurations in figure order.
func Kinds() []Kind { return []Kind{DomU, Twin, Dom0, Linux} }

// String names the configuration as in the figures.
func (k Kind) String() string {
	switch k {
	case Linux:
		return "Linux"
	case Dom0:
		return "dom0"
	case DomU:
		return "domU"
	case Twin:
		return "domU-twin"
	}
	return "?"
}

// Path is one configuration brought up with n NICs.
type Path struct {
	Kind Kind
	M    *core.Machine
	T    *core.Twin // nil except for Twin

	// Guests is the guest-domain count (≥ 1). Only the domU-twin path
	// fans out to several guests (SendBurstMulti/ReceiveBurstMulti); the
	// other configurations always run one guest.
	Guests int

	// BatchSize is the number of frames staged per boundary crossing on
	// the domU-twin path (SendBurst/ReceiveBurst). 0 or 1 selects the
	// per-packet path, which is bit-for-bit the SendOne/ReceiveOne
	// behaviour; other configurations ignore it (their boundary is the
	// netfront/netback ring or no boundary at all).
	BatchSize int

	// PostedRX switches the domU-twin receive path to posted guest
	// buffers: ahead of each delivery the guest posts the addresses of its
	// own receive buffers on its posted-RX ring, and the hypervisor copies
	// each frame exactly once, straight into the posted page, resolving
	// the guest address through the per-guest translation cache. False
	// (the default) is the paper's copy path, delivered through the shared
	// region and copied out again by the paravirtual driver. Other
	// configurations ignore it.
	PostedRX bool

	// PostedTX switches the domU-twin transmit path to posted
	// scatter/gather descriptors: the guest leaves each frame in its own
	// memory and posts only the (addr,len) descriptor on its posted-TX
	// ring; the hypervisor resolves the address through the guest
	// translation cache, pins the frames' pages and hands them to the
	// device directly — no staging copy. False (the default) is the
	// copy path through the staging ring. Other configurations ignore it.
	PostedTX bool

	// TxCount / RxCount tally packets that completed the full path.
	TxCount uint64
	RxCount uint64

	// Recovery, when non-nil, makes the domU-twin path recovery-aware:
	// SendBurst/ReceiveBurst (and their multi-guest variants) treat
	// ErrDriverDead as transient, ask the supervisor to revive the twin,
	// and retry the remainder of the burst — so guest traffic resumes
	// with bounded loss instead of failing forever. Nil (the default)
	// reproduces the paper's terminal containment exactly.
	Recovery *recovery.Supervisor

	// Recovered counts transparent recoveries performed under this path;
	// LostRx counts receive frames that were consumed by the NIC but died
	// with a faulted instance (transmit frames are never lost — staged
	// frames the dead instance discarded are re-staged, counted in
	// RetriedTx, because they never reached the wire).
	Recovered uint64
	LostRx    uint64
	RetriedTx uint64

	guestPage uint32    // domU-owned page used as the guest-side buffer
	guestMACs [][6]byte // per-guest station MACs for receive demux (Twin)
	rxSeq     byte

	// rxArena holds each guest's posted-receive buffers (PostedRX mode),
	// allocated lazily so the legacy path's heap layout — and therefore
	// its pinned cycle measurements — stays untouched when posting is off.
	rxArena map[mem.Owner]*postedArena

	// txArena holds each guest's postable transmit buffers (PostedTX
	// mode), lazily allocated for the same layout-preservation reason.
	txArena map[mem.Owner]*postedArena
}

// RxSlotBytes sizes one posted receive buffer (an MTU frame plus headroom,
// matching the transmit staging slots).
const RxSlotBytes = 2048

// postedArena is one guest's pool of postable receive buffers, recycled
// round-robin. The arena holds exactly core.RxRingSlots buffers and the
// ring caps outstanding descriptors at the same count, so a buffer is
// never re-posted while a prior descriptor naming it is still live.
type postedArena struct {
	slots []uint32
	next  int
}

// take returns the next n buffer addresses, recycling round-robin.
func (a *postedArena) take(n int) []core.RxPost {
	bufs := make([]core.RxPost, n)
	for i := range bufs {
		bufs[i] = core.RxPost{Addr: a.slots[a.next], Len: RxSlotBytes}
		a.next = (a.next + 1) % len(a.slots)
	}
	return bufs
}

// arenaFor lazily builds the posted-buffer arena of one guest.
func (p *Path) arenaFor(dom *xen.Domain) *postedArena {
	if p.rxArena == nil {
		p.rxArena = make(map[mem.Owner]*postedArena)
	}
	a := p.rxArena[dom.ID]
	if a == nil {
		a = &postedArena{}
		for i := 0; i < core.RxRingSlots; i++ {
			a.slots = append(a.slots, p.M.HV.AllocHeap(dom, RxSlotBytes))
		}
		p.rxArena[dom.ID] = a
	}
	return a
}

// txArenaFor lazily builds the postable transmit-buffer arena of one
// guest: core.TxRingSlots buffers, recycled round-robin. The posted-TX
// ring caps outstanding descriptors at the same count and every round
// services the ring to empty before the arena wraps, so a buffer is never
// rewritten while a descriptor naming it is still pending.
func (p *Path) txArenaFor(dom *xen.Domain) *postedArena {
	if p.txArena == nil {
		p.txArena = make(map[mem.Owner]*postedArena)
	}
	a := p.txArena[dom.ID]
	if a == nil {
		a = &postedArena{}
		for i := 0; i < core.TxRingSlots; i++ {
			a.slots = append(a.slots, p.M.HV.AllocHeap(dom, core.TxSlotBytes))
		}
		p.txArena[dom.ID] = a
	}
	return a
}

// postBuffers posts n receive buffers from the guest's arena, charging the
// guest-side posting work, and returns how many the ring accepted.
func (p *Path) postBuffers(dom *xen.Domain, n int) (int, error) {
	a := p.arenaFor(dom)
	posted, err := p.T.PostRxBuffers(dom, a.take(n))
	if err != nil {
		return posted, err
	}
	// Un-take the slots the ring refused so the arena stays in step with
	// the descriptors actually outstanding.
	a.next = (a.next - (n - posted) + len(a.slots)) % len(a.slots)
	p.Meter().AddTo(cycles.CompDomU, uint64(posted)*cost.RxPostPerBuffer)
	return posted, nil
}

// New builds a single-guest configuration. TwinConfig applies only to Kind
// Twin; pass the zero value for defaults.
func New(kind Kind, nNICs int, tcfg core.TwinConfig) (*Path, error) {
	return NewMulti(kind, nNICs, 1, tcfg)
}

// NewMulti builds a configuration with guests guest domains sharing the
// NIC. Only the domU-twin path supports more than one guest; each guest
// gets its own transmit ring and a registered station MAC for receive
// demultiplexing.
func NewMulti(kind Kind, nNICs, guests int, tcfg core.TwinConfig) (*Path, error) {
	return NewMultiModel(kind, nNICs, guests, nil, tcfg)
}

// NewMultiModel is NewMulti with an explicit NIC backend (nil selects the
// e1000): every configuration — native, dom0, unoptimized guest, twin —
// runs the chosen model's driver and device, so the whole evaluation
// harness works per backend.
func NewMultiModel(kind Kind, nNICs, guests int, model *drivermodel.Model, tcfg core.TwinConfig) (*Path, error) {
	if guests < 1 {
		guests = 1
	}
	if guests > 1 && kind != Twin {
		return nil, fmt.Errorf("netpath: %v runs a single guest (multi-guest fan-out is the domU-twin path)", kind)
	}
	p := &Path{Kind: kind, Guests: guests}
	var err error
	switch kind {
	case Twin:
		p.M, p.T, err = core.NewTwinMachineModel(nNICs, guests, model, tcfg)
	default:
		p.M, err = core.NewMachineModel(nNICs, model)
	}
	if err != nil {
		return nil, err
	}
	// A guest page for the unoptimized path's grant copies.
	p.guestPage = p.M.HV.AllocHeap(p.M.DomU, 2*mem.PageSize)
	if p.T != nil {
		for g, dom := range p.M.Guests {
			mac := [6]byte{0x02, 0x54, 0x57, 0x49, 0x4E, byte(g)}
			p.T.RegisterGuestMAC(mac, dom.ID)
			p.guestMACs = append(p.guestMACs, mac)
		}
	}
	return p, nil
}

// Meter exposes the machine's cycle meter.
func (p *Path) Meter() *cycles.Meter { return p.M.CPU.Meter }

// ResetMeasurement clears cycle buckets and transition statistics but keeps
// all warm state (measurement epochs begin after warm-up).
func (p *Path) ResetMeasurement() {
	p.Meter().Reset()
	if p.T != nil {
		p.T.ResetQueueMeters()
	}
	p.M.HV.ResetStats()
	p.TxCount, p.RxCount = 0, 0
}

// frame builds a data frame of the given total size addressed appropriately
// for the path direction. Sizes below the 14-byte Ethernet header are
// rejected rather than panicking in the payload arithmetic.
func (p *Path) frame(d *core.NICDev, size int, rx bool) ([]byte, error) {
	if rx {
		return p.frameTo(d.Dev.HWAddr(), size)
	}
	return p.frameFrom(d.Dev.HWAddr(), size)
}

// frameTo builds a receive-direction frame of the given total size
// addressed to dst.
func (p *Path) frameTo(dst [6]byte, size int) ([]byte, error) {
	payload, err := p.framePayload(size)
	if err != nil {
		return nil, err
	}
	return core.EthernetFrame(dst, [6]byte{0, 0x50, 0x56, 1, 2, p.rxSeq}, 0x0800, payload), nil
}

// frameFrom builds a transmit-direction frame of the given total size
// sourced from src.
func (p *Path) frameFrom(src [6]byte, size int) ([]byte, error) {
	payload, err := p.framePayload(size)
	if err != nil {
		return nil, err
	}
	return core.EthernetFrame([6]byte{0, 0x50, 0x56, 9, 9, p.rxSeq}, src, 0x0800, payload), nil
}

func (p *Path) framePayload(size int) ([]byte, error) {
	if size < 14 {
		return nil, fmt.Errorf("netpath: frame size %d is below the 14-byte Ethernet header", size)
	}
	p.rxSeq++
	payload := make([]byte, size-14)
	for i := 0; i < len(payload); i += 97 {
		payload[i] = p.rxSeq + byte(i)
	}
	return payload, nil
}

// SendOne pushes one size-byte packet out through NIC index i.
func (p *Path) SendOne(i int, size int) error {
	d := p.M.Devs[i%len(p.M.Devs)]
	frame, err := p.frame(d, size, false)
	if err != nil {
		return err
	}
	switch p.Kind {
	case Linux:
		err = p.sendDom0(d, frame, false)
	case Dom0:
		err = p.sendDom0(d, frame, true)
	case DomU:
		err = p.sendDomU(d, frame)
	case Twin:
		err = p.sendTwin(d, frame)
	}
	if err == nil {
		p.TxCount++
	}
	return err
}

// ReceiveOne injects one size-byte packet into NIC index i and runs the
// full receive path.
func (p *Path) ReceiveOne(i int, size int) error {
	d := p.M.Devs[i%len(p.M.Devs)]
	frame, err := p.frame(d, size, true)
	if err != nil {
		return err
	}
	switch p.Kind {
	case Linux:
		err = p.recvDom0(d, frame, false)
	case Dom0:
		err = p.recvDom0(d, frame, true)
	case DomU:
		err = p.recvDomU(d, frame)
	case Twin:
		err = p.recvTwin(d, frame)
	}
	if err == nil {
		p.RxCount++
	}
	return err
}

// recoverDead reports whether err is a driver death this path may treat as
// transient: a supervisor is attached and it brought the twin back up. A
// refused recovery (escalation tripped, rebuild failed) leaves the error
// terminal, restoring the paper's containment behaviour.
func (p *Path) recoverDead(err error) bool {
	if p.Recovery == nil || !errors.Is(err, core.ErrDriverDead) {
		return false
	}
	if _, rerr := p.Recovery.Recover(); rerr != nil {
		return false
	}
	p.Recovered++
	return true
}

// SendBurst pushes n size-byte packets out through NIC index i. On the
// domU-twin path with BatchSize > 1, frames cross the guest→hypervisor
// boundary in batches of BatchSize via the shared descriptor ring (one
// hypercall per batch); every other configuration — and BatchSize <= 1 —
// runs the per-packet path n times. It returns the number of packets that
// completed. With a recovery supervisor attached, a driver death mid-burst
// is healed and the burst resumes; a transmitted frame is never duplicated
// because a faulting invocation dies before the frame reaches the wire.
func (p *Path) SendBurst(i, size, n int) (int, error) {
	if p.Kind == Twin && p.PostedTX {
		// The posted path is batched by construction (write, post,
		// service); BatchSize <= 1 degenerates to one-frame batches.
		return p.burst(i, n, &p.TxCount, func(shortfall int) {
			p.RetriedTx += uint64(shortfall)
		}, func(i, burst int) (int, error) {
			return p.sendTwinPostedBatch(i, size, burst)
		})
	}
	if p.Kind != Twin || p.BatchSize <= 1 {
		for k := 0; k < n; k++ {
			if err := p.SendOne(i+k, size); err != nil {
				if p.recoverDead(err) {
					p.RetriedTx++
					k-- // the frame never left: re-send it
					continue
				}
				return k, err
			}
		}
		return n, nil
	}
	return p.burst(i, n, &p.TxCount, func(shortfall int) {
		p.RetriedTx += uint64(shortfall)
	}, func(i, burst int) (int, error) {
		return p.sendTwinBatch(i, size, burst)
	})
}

// ReceiveBurst injects n size-byte packets into NIC index i and runs the
// receive path. On the domU-twin path with BatchSize > 1, up to BatchSize
// frames are drained per coalesced interrupt and delivered to the guest
// under a single notification; otherwise the per-packet path runs n times.
// With a recovery supervisor attached, frames consumed by the NIC that die
// with a faulted instance are counted in LostRx and replacements are
// injected — bounded loss, not a dead path.
func (p *Path) ReceiveBurst(i, size, n int) (int, error) {
	if p.Kind == Twin && p.PostedRX {
		// The posted path is batched by construction (post, inject,
		// deliver); BatchSize <= 1 degenerates to one-frame batches.
		return p.burst(i, n, &p.RxCount, func(shortfall int) {
			p.LostRx += uint64(shortfall)
		}, func(i, burst int) (int, error) {
			return p.recvTwinPostedBatch(i, size, burst)
		})
	}
	if p.Kind != Twin || p.BatchSize <= 1 {
		for k := 0; k < n; k++ {
			if err := p.ReceiveOne(i+k, size); err != nil {
				if p.recoverDead(err) {
					p.LostRx++
					k-- // the injected frame died with the instance
					continue
				}
				return k, err
			}
		}
		return n, nil
	}
	return p.burst(i, n, &p.RxCount, func(shortfall int) {
		p.LostRx += uint64(shortfall)
	}, func(i, burst int) (int, error) {
		return p.recvTwinBatch(i, size, burst)
	})
}

// burst chunks n packets into BatchSize batches through step, accumulating
// into count. A chunk completing zero packets without an error ends the
// burst early (e.g. interrupts deferred under a masked virtual IRQ flag) —
// retrying would only re-stage duplicate work. A driver death is retried
// after transparent recovery; onRecover is told the faulted chunk's
// shortfall (frames the chunk consumed but never completed) so the caller
// can account it as lost (receive) or re-staged (transmit).
func (p *Path) burst(i, n int, count *uint64, onRecover func(shortfall int), step func(i, burst int) (int, error)) (int, error) {
	bs := p.BatchSize
	if bs < 1 {
		bs = 1 // the posted path batches even at the per-packet setting
	}
	moved := 0
	for moved < n {
		burst := n - moved
		if burst > bs {
			burst = bs
		}
		done, err := step(i+moved, burst)
		moved += done
		*count += uint64(done)
		if err != nil {
			if p.recoverDead(err) {
				onRecover(burst - done)
				continue
			}
			return moved, err
		}
		if done == 0 {
			break
		}
	}
	return moved, nil
}

// --- Linux / dom0 -------------------------------------------------------

func (p *Path) sendDom0(d *core.NICDev, frame []byte, virt bool) error {
	m := p.M
	meter := p.Meter()
	m.HV.Switch(m.Dom0)
	// Socket write + TCP/IP + qdisc, including the user→skb copy.
	meter.AddTo(cycles.CompDom0, cost.TxKernelFixed+uint64(len(frame))*cost.TxKernelPerByte)
	skb, err := m.NewTxSkb(d, frame)
	if err != nil {
		return err
	}
	if virt {
		meter.AddTo(cycles.CompXen, cost.Dom0VirtPerPacketTx)
	}
	ret, err := m.DevQueueXmit(d, skb)
	if err != nil {
		return err
	}
	if ret != 0 {
		return fmt.Errorf("netpath: tx ring busy")
	}
	return nil
}

func (p *Path) recvDom0(d *core.NICDev, frame []byte, virt bool) error {
	m := p.M
	meter := p.Meter()
	if !d.Dev.Inject(frame) {
		return fmt.Errorf("netpath: rx overrun")
	}
	if virt {
		meter.AddTo(cycles.CompXen, cost.Dom0VirtPerPacketRx)
	}
	if err := m.HandleIRQ(d); err != nil {
		return err
	}
	// Protocol stack and socket delivery for everything the driver queued.
	for {
		skb, ok := m.K.PopBacklog()
		if !ok {
			break
		}
		ln, _ := m.Dom0.AS.Load(skb+kernel.SkbLen, 4)
		meter.AddTo(cycles.CompDom0, cost.RxKernelFixed+uint64(ln)*cost.RxKernelPerByte)
		m.K.FreeSkb(skb)
	}
	return nil
}

// --- Unoptimized Xen guest (netfront → netback → bridge → driver) --------

func (p *Path) sendDomU(d *core.NICDev, frame []byte) error {
	m := p.M
	hv := m.HV
	meter := p.Meter()

	// Guest kernel + netfront: build the packet in guest memory, issue a
	// grant, put a request on the I/O channel, kick the event channel.
	hv.Switch(m.DomU)
	meter.AddTo(cycles.CompDomU, cost.TxKernelFixed+uint64(len(frame))*cost.TxKernelPerByte)
	if err := m.DomU.AS.WriteBytes(p.guestPage, frame); err != nil {
		return err
	}
	meter.AddTo(cycles.CompDomU, cost.NetfrontPerPacket)
	gframe, _ := hv.FrameOf(m.DomU, p.guestPage)
	ref := hv.GrantCreate(m.DomU, gframe, m.Dom0)
	hv.SendEvent(m.Dom0)

	// Synchronous switch into the driver domain.
	hv.Switch(m.Dom0)
	hv.DeliverVirtIRQ(m.Dom0)

	// Netback: grant map/unmap bookkeeping, then the payload into a dom0
	// sk_buff, then bridge it to the physical device.
	meter.AddTo(cycles.CompDom0, cost.NetbackPerPacket+cost.TxNetbackOverhead)
	skb := m.K.AllocSkb(d.Netdev)
	data, _ := m.Dom0.AS.Load(skb+kernel.SkbData, 4)
	if err := hv.GrantCopy(ref, m.Dom0.AS, data, m.DomU.AS, p.guestPage, len(frame)); err != nil {
		return err
	}
	if err := m.Dom0.AS.Store(skb+kernel.SkbLen, 4, uint32(len(frame))); err != nil {
		return err
	}
	hv.GrantEnd(ref)
	meter.AddTo(cycles.CompDom0, cost.BridgePerPacket)

	ret, err := m.DevQueueXmit(d, skb)
	if err != nil {
		return err
	}
	if ret != 0 {
		return fmt.Errorf("netpath: tx ring busy")
	}

	// Completion: notify the guest and switch back.
	hv.SendEvent(m.DomU)
	hv.Switch(m.DomU)
	hv.DeliverVirtIRQ(m.DomU)
	meter.AddTo(cycles.CompDomU, cost.NetfrontPerPacket/2) // response processing
	return nil
}

func (p *Path) recvDomU(d *core.NICDev, frame []byte) error {
	m := p.M
	hv := m.HV
	meter := p.Meter()

	if !d.Dev.Inject(frame) {
		return fmt.Errorf("netpath: rx overrun")
	}
	// The physical interrupt lands in the hypervisor, which switches to
	// the driver domain.
	meter.AddTo(cycles.CompXen, cost.IrqOverhead)
	if err := m.HandleIRQ(d); err != nil { // switches to dom0 internally
		return err
	}
	// Netback: for each packet the driver delivered, issue a grant and
	// copy it into guest memory, then notify the guest.
	n := 0
	for {
		skb, ok := m.K.PopBacklog()
		if !ok {
			break
		}
		meter.AddTo(cycles.CompDom0, cost.NetbackPerPacket+cost.BridgePerPacket+cost.RxNetbackOverhead)
		meter.AddTo(cycles.CompXen, cost.RxFlipXen)
		data, _ := m.Dom0.AS.Load(skb+kernel.SkbData, 4)
		ln, _ := m.Dom0.AS.Load(skb+kernel.SkbLen, 4)
		gframe, _ := hv.FrameOf(m.DomU, p.guestPage)
		ref := hv.GrantCreate(m.Dom0, gframe, m.DomU)
		if err := hv.GrantCopy(ref, m.DomU.AS, p.guestPage, m.Dom0.AS, data, int(ln)); err != nil {
			return err
		}
		hv.GrantEnd(ref)
		m.K.FreeSkb(skb)
		n++
	}
	hv.SendEvent(m.DomU)
	hv.Switch(m.DomU)
	hv.DeliverVirtIRQ(m.DomU)
	// Netfront response processing + guest stack.
	for i := 0; i < n; i++ {
		meter.AddTo(cycles.CompDomU, cost.NetfrontPerPacket)
		meter.AddTo(cycles.CompDomU, cost.RxKernelFixed+uint64(len(frame))*cost.RxKernelPerByte)
	}
	return nil
}

// --- TwinDrivers ----------------------------------------------------------

func (p *Path) sendTwin(d *core.NICDev, frame []byte) error {
	m := p.M
	meter := p.Meter()
	m.HV.Switch(m.DomU)
	// Guest kernel stack down to the paravirtual driver.
	meter.AddTo(cycles.CompDomU, cost.TxKernelFixed+uint64(len(frame))*cost.TxKernelPerByte)
	return p.T.GuestTransmit(d, frame)
}

func (p *Path) recvTwin(d *core.NICDev, frame []byte) error {
	m := p.M
	meter := p.Meter()
	m.HV.Switch(m.DomU)
	if !d.Dev.Inject(frame) {
		return fmt.Errorf("netpath: rx overrun")
	}
	// The interrupt runs the hypervisor driver directly in guest context.
	if err := p.T.HandleIRQ(d); err != nil {
		return err
	}
	pkts, err := p.T.DeliverPending(m.DomU)
	if err != nil {
		return err
	}
	// Guest paravirtual driver + stack for each delivered packet.
	for range pkts {
		meter.AddTo(cycles.CompDomU, cost.PvDriverRx)
		meter.AddTo(cycles.CompDomU, cost.RxKernelFixed+uint64(len(frame))*cost.RxKernelPerByte)
	}
	return nil
}

// sendTwinBatch stages burst frames and crosses the boundary once: the
// guest kernel work stays per-packet (the stack runs for every frame), the
// hypercall amortizes over the batch.
func (p *Path) sendTwinBatch(i, size, burst int) (int, error) {
	m := p.M
	meter := p.Meter()
	m.HV.Switch(m.DomU)
	// A batch targets one device: the ring is per-vif, as in netfront.
	d := m.Devs[i%len(m.Devs)]
	frames := make([][]byte, burst)
	for k := range frames {
		f, err := p.frame(d, size, false)
		if err != nil {
			return 0, err
		}
		frames[k] = f
		meter.AddTo(cycles.CompDomU, cost.TxKernelFixed+uint64(len(f))*cost.TxKernelPerByte)
	}
	return p.T.GuestTransmitBatch(d, frames)
}

// sendTwinPostedBatch is sendTwinBatch on the posted-descriptor path: each
// frame is written once into the guest's own transmit arena (in the real
// system it already sits in guest memory), its (addr,len) descriptor is
// posted on the guest's posted-TX ring, and one ServiceRings crossing
// resolves, pins and hands the guest pages to the device — the staging
// copy and its per-byte kernel cost disappear; the guest side pays the
// fixed stack cost plus one descriptor post per frame.
func (p *Path) sendTwinPostedBatch(i, size, burst int) (int, error) {
	m := p.M
	meter := p.Meter()
	m.HV.Switch(m.DomU)
	d := m.Devs[i%len(m.Devs)]
	a := p.txArenaFor(m.DomU)
	done := 0
	for done < burst {
		chunk := burst - done
		if chunk > core.TxRingSlots {
			chunk = core.TxRingSlots
		}
		descs := make([]core.TxPost, 0, chunk)
		for k := 0; k < chunk; k++ {
			f, err := p.frame(d, size, false)
			if err != nil {
				return done, err
			}
			slot := a.slots[a.next]
			a.next = (a.next + 1) % len(a.slots)
			if err := m.DomU.AS.WriteBytes(slot, f); err != nil {
				return done, err
			}
			meter.AddTo(cycles.CompDomU, cost.TxKernelFixed+cost.TxPostPerDesc)
			descs = append(descs, core.TxPost{Addr: slot, Len: uint32(len(f))})
		}
		posted, err := p.T.PostTxDescriptors(m.DomU, descs)
		if err != nil {
			return done, err
		}
		if posted < len(descs) {
			return done, fmt.Errorf("netpath: posted %d of %d tx descriptors", posted, len(descs))
		}
		sent, err := p.T.ServiceRings(d, 0)
		got := sent[m.DomU.ID]
		done += got
		if err != nil {
			return done, err
		}
		if got == 0 {
			// A round that transmitted nothing cannot make progress by
			// repeating: return the short count instead of looping.
			break
		}
	}
	return done, nil
}

// recvTwinBatch injects burst frames, services them with one coalesced
// interrupt (the driver's receive loop drains everything pending), and
// delivers the batch to the guest under a single notification.
func (p *Path) recvTwinBatch(i, size, burst int) (int, error) {
	m := p.M
	meter := p.Meter()
	m.HV.Switch(m.DomU)
	d := m.Devs[i%len(m.Devs)]
	for k := 0; k < burst; k++ {
		f, err := p.frame(d, size, true)
		if err != nil {
			return 0, err
		}
		if !d.Dev.Inject(f) {
			return 0, fmt.Errorf("netpath: rx overrun")
		}
	}
	p.T.Coalescer.Begin()
	defer p.T.Coalescer.End()
	// One interrupt for the whole burst: the hypervisor driver's receive
	// loop drains every pending descriptor in this invocation.
	if err := p.T.HandleIRQ(d); err != nil {
		return 0, err
	}
	pkts, err := p.T.DeliverPendingBatch(m.DomU, burst)
	// Guest paravirtual driver + stack for each delivered packet — frames
	// delivered before a mid-batch fault still reached the guest.
	for _, pkt := range pkts {
		meter.AddTo(cycles.CompDomU, cost.PvDriverRx)
		meter.AddTo(cycles.CompDomU, cost.RxKernelFixed+uint64(len(pkt))*cost.RxKernelPerByte)
	}
	if err != nil {
		// A mid-batch delivery fault dropped the dequeued remainder: the
		// delivered frames count as delivered, the dropped ones as lost —
		// each exactly once — and the burst goes on.
		var de *core.DeliveryError
		if errors.As(err, &de) {
			p.LostRx += uint64(de.Dropped)
			return len(pkts), nil
		}
		return len(pkts), err
	}
	return len(pkts), nil
}

// recvTwinPostedBatch is recvTwinBatch on the posted-buffer path: the
// guest posts receive buffers ahead of the burst, the injected frames are
// drained by one coalesced interrupt, and delivery copies each frame once,
// directly into its posted guest buffer.
func (p *Path) recvTwinPostedBatch(i, size, burst int) (int, error) {
	m := p.M
	meter := p.Meter()
	m.HV.Switch(m.DomU)
	d := m.Devs[i%len(m.Devs)]
	done := 0
	for done < burst {
		chunk := burst - done
		if chunk > core.RxRingSlots {
			chunk = core.RxRingSlots
		}
		// Guest side: post buffers for the chunk. The ring may hold
		// leftovers from a short round; inject only what got posted.
		posted, err := p.postBuffers(m.DomU, chunk)
		if err != nil {
			return done, err
		}
		if posted == 0 {
			break
		}
		for k := 0; k < posted; k++ {
			f, err := p.frame(d, size, true)
			if err != nil {
				return done, err
			}
			if !d.Dev.Inject(f) {
				return done, fmt.Errorf("netpath: rx overrun")
			}
		}
		p.T.Coalescer.Begin()
		err = p.T.HandleIRQ(d)
		var del *core.RxDelivery
		if err == nil {
			del, err = p.T.DeliverPendingPosted(m.DomU, posted)
		}
		p.T.Coalescer.End()
		if err != nil {
			return done, err
		}
		// Guest paravirtual driver completion + stack per delivered frame:
		// no copy-out — the frame already sits in the guest's own buffer.
		for _, fr := range del.Frames {
			meter.AddTo(cycles.CompDomU, cost.PvDriverRxPosted)
			meter.AddTo(cycles.CompDomU, cost.RxKernelFixed+uint64(fr.Len)*cost.RxKernelPerByte)
		}
		p.LostRx += uint64(del.Lost)
		done += len(del.Frames)
		if len(del.Frames) == 0 {
			// A round that delivered nothing cannot make progress by
			// repeating (e.g. every frame exceeds the posted buffer
			// size): return the short count instead of re-posting and
			// re-losing forever.
			break
		}
	}
	return done, nil
}

// --- Multi-guest fan-out (domU-twin only) ---------------------------------

// stageTxMulti moves count frames of one guest to the hypervisor boundary,
// in guest context: the staging-ring copy in the default mode, or a write
// into the guest's own transmit arena plus an (addr,len) descriptor post
// in PostedTX mode. It returns how many frames were staged or posted.
func (p *Path) stageTxMulti(dom *xen.Domain, d *core.NICDev, size, count int) (int, error) {
	m := p.M
	meter := p.Meter()
	m.HV.Switch(dom)
	if p.PostedTX {
		a := p.txArenaFor(dom)
		descs := make([]core.TxPost, 0, count)
		for k := 0; k < count; k++ {
			f, err := p.frameFrom(d.Dev.HWAddr(), size)
			if err != nil {
				return 0, err
			}
			slot := a.slots[a.next]
			a.next = (a.next + 1) % len(a.slots)
			if err := dom.AS.WriteBytes(slot, f); err != nil {
				return 0, err
			}
			meter.AddTo(cycles.CompDomU, cost.TxKernelFixed+cost.TxPostPerDesc)
			descs = append(descs, core.TxPost{Addr: slot, Len: uint32(len(f))})
		}
		return p.T.PostTxDescriptors(dom, descs)
	}
	frames := make([][]byte, count)
	for k := range frames {
		f, err := p.frameFrom(d.Dev.HWAddr(), size)
		if err != nil {
			return 0, err
		}
		frames[k] = f
		meter.AddTo(cycles.CompDomU, cost.TxKernelFixed+uint64(len(f))*cost.TxKernelPerByte)
	}
	return p.T.StageTransmitBatch(dom, frames)
}

// SendBurstMulti pushes n size-byte packets per guest out through NIC
// index i: every guest runs its kernel stack and stages a ring-sized chunk
// in its own transmit ring from its own context, then a single
// Twin.ServiceRings crossing drains all guests' rings round-robin — the
// boundary cost amortizes across guests as well as frames. It returns the
// per-guest completion counts. With a recovery supervisor attached, a
// driver death mid-drain revives the twin and re-stages every frame the
// dead instance discarded (the abort reset the rings, so nothing is
// phantom-delivered or duplicated).
func (p *Path) SendBurstMulti(i, size, n int) (map[mem.Owner]int, error) {
	if p.Kind != Twin {
		return nil, fmt.Errorf("netpath: multi-guest bursts need the domU-twin path")
	}
	m := p.M
	d := m.Devs[i%len(m.Devs)]
	total := make(map[mem.Owner]int)
	need := make(map[mem.Owner]int) // frames still to move in this round
	for remaining := n; remaining > 0; {
		chunk := remaining
		if chunk > core.TxRingSlots {
			chunk = core.TxRingSlots
		}
		for _, dom := range m.Guests {
			need[dom.ID] = chunk
		}
		for {
			for _, dom := range m.Guests {
				if need[dom.ID] == 0 {
					continue
				}
				staged, err := p.stageTxMulti(dom, d, size, need[dom.ID])
				if err != nil {
					if p.recoverDead(err) {
						continue // re-stage this guest on the fresh twin
					}
					return total, err
				}
				if staged != need[dom.ID] {
					return total, fmt.Errorf("netpath: guest %d staged %d of %d", dom.ID, staged, need[dom.ID])
				}
			}
			// One boundary crossing drains every guest's ring; it runs in
			// whichever guest context is current.
			sent, err := p.T.ServiceRings(d, 0)
			pending := 0
			for id, c := range sent {
				total[id] += c
				need[id] -= c
				p.TxCount += uint64(c)
			}
			for _, c := range need {
				pending += c
			}
			if err != nil {
				if p.recoverDead(err) {
					// The abort discarded every staged-but-undrained frame;
					// re-stage them on the recovered instance.
					p.RetriedTx += uint64(pending)
					continue
				}
				return total, err
			}
			if pending == 0 {
				break
			}
		}
		remaining -= chunk
	}
	return total, nil
}

// ReceiveBurstMulti injects n size-byte packets per guest (addressed to
// each guest's registered MAC), services them with one coalesced interrupt
// per round, and delivers each guest's batch in its own context under a
// single notification per guest per window. It returns the per-guest
// delivery counts.
func (p *Path) ReceiveBurstMulti(i, size, n int) (map[mem.Owner]int, error) {
	if p.Kind != Twin {
		return nil, fmt.Errorf("netpath: multi-guest bursts need the domU-twin path")
	}
	m := p.M
	meter := p.Meter()
	d := m.Devs[i%len(m.Devs)]
	total := make(map[mem.Owner]int)
	// Bound each round so guests*chunk stays within the NIC's descriptor
	// ring (256 slots, one kept empty); the posted path additionally stays
	// within each guest's posted-RX ring.
	maxRound := 128 / len(m.Guests)
	if maxRound < 1 {
		maxRound = 1
	}
	if p.PostedRX && maxRound > core.RxRingSlots {
		maxRound = core.RxRingSlots
	}
	// Past 128 guests even a one-frame-per-guest round overruns the NIC
	// ring, so each round's fan-in is processed in waves of at most 128
	// guests, one coalesced interrupt per wave. At 128 guests or fewer
	// there is exactly one wave covering every guest — the historical
	// behaviour, operation for operation.
	waveGuests := len(m.Guests)
	if waveGuests > 128 {
		waveGuests = 128
	}
	need := make(map[mem.Owner]int) // frames still to deliver in this round
	for remaining := n; remaining > 0; {
		chunk := remaining
		if chunk > maxRound {
			chunk = maxRound
		}
		for _, dom := range m.Guests {
			need[dom.ID] = chunk
		}
	waves:
		for {
			roundDelivered := 0
			for ws := 0; ws < len(m.Guests); ws += waveGuests {
				we := ws + waveGuests
				if we > len(m.Guests) {
					we = len(m.Guests)
				}
				wave := m.Guests[ws:we]
				// Posted mode: every guest posts its buffers first, from its
				// own context — delivery then copies straight into them.
				if p.PostedRX {
					for _, dom := range wave {
						if need[dom.ID] == 0 {
							continue
						}
						m.HV.Switch(dom)
						posted, err := p.postBuffers(dom, need[dom.ID])
						if err != nil {
							if p.recoverDead(err) {
								continue // repost on the fresh twin
							}
							return total, err
						}
						if posted != need[dom.ID] {
							return total, fmt.Errorf("netpath: guest %d posted %d of %d buffers", dom.ID, posted, need[dom.ID])
						}
					}
				}
				injected := 0
				for g, dom := range wave {
					for k := 0; k < need[dom.ID]; k++ {
						f, err := p.frameTo(p.guestMACs[ws+g], size)
						if err != nil {
							return total, err
						}
						if !d.Dev.Inject(f) {
							return total, fmt.Errorf("netpath: rx overrun")
						}
						injected++
					}
				}
				// One interrupt for the wave's fan-in, in whatever context runs.
				if err := p.T.HandleIRQ(d); err != nil {
					if p.recoverDead(err) {
						// The device reset dropped everything just injected.
						p.LostRx += uint64(injected)
						continue waves
					}
					return total, err
				}
				delivered := 0
				p.T.Coalescer.Begin()
				var dead error
				for _, dom := range wave {
					m.HV.Switch(dom)
					var got int
					if p.PostedRX {
						del, err := p.T.DeliverPendingPosted(dom, need[dom.ID])
						if err != nil {
							dead = err
							break
						}
						// Completion only: the frame already sits in the
						// guest's own posted buffer.
						for _, fr := range del.Frames {
							meter.AddTo(cycles.CompDomU, cost.PvDriverRxPosted)
							meter.AddTo(cycles.CompDomU, cost.RxKernelFixed+uint64(fr.Len)*cost.RxKernelPerByte)
						}
						// Frames that burned a bad posted descriptor are lost
						// exactly once; replacements are injected next round
						// (need stays up, so the round repeats for them).
						p.LostRx += uint64(del.Lost)
						got = len(del.Frames)
					} else {
						pkts, err := p.T.DeliverPendingBatch(dom, need[dom.ID])
						// Frames delivered before a mid-batch fault still
						// reached the guest: price and count them before
						// deciding what the error means.
						for _, pkt := range pkts {
							meter.AddTo(cycles.CompDomU, cost.PvDriverRx)
							meter.AddTo(cycles.CompDomU, cost.RxKernelFixed+uint64(len(pkt))*cost.RxKernelPerByte)
						}
						got = len(pkts)
						if err != nil {
							var de *core.DeliveryError
							if errors.As(err, &de) {
								// The dropped remainder is lost exactly once;
								// replacements are injected next round.
								p.LostRx += uint64(de.Dropped)
							} else {
								dead = err
							}
						}
					}
					total[dom.ID] += got
					need[dom.ID] -= got
					delivered += got
					roundDelivered += got
					p.RxCount += uint64(got)
					if dead != nil {
						break
					}
				}
				p.T.Coalescer.End()
				if dead != nil {
					if p.recoverDead(dead) {
						// Undelivered frames of this fan-in died with the
						// instance (queued packets dropped, device reset).
						p.LostRx += uint64(injected - delivered)
						continue waves
					}
					return total, dead
				}
			}
			pending := 0
			for _, c := range need {
				pending += c
			}
			if pending == 0 {
				break
			}
			if p.PostedRX && roundDelivered == 0 {
				// Replacement frames are only injected while rounds make
				// progress; a round that delivered nothing to any guest
				// (every frame oversize for its posted buffer, say) would
				// repeat identically forever.
				return total, fmt.Errorf("netpath: posted delivery made no progress (%d frames pending)", pending)
			}
		}
		remaining -= chunk
	}
	return total, nil
}

// --- Weighted-fair contention + inter-guest switch (domU-twin only) -------

// SendContended is the contended-transmit workload the weighted-fair
// scheduler measurements run: every guest's transmit ring is kept
// topped up from its own context, and each of the `crossings` budgeted
// ServiceRings crossings consumes at most `budget` descriptors — so
// demand always exceeds service and the per-guest completion counts
// reveal the scheduler's share decisions (proportional to
// TwinConfig.Weights under DRR, equal under the classic round-robin).
// It returns the cumulative per-guest transmit counts.
func (p *Path) SendContended(i, size, crossings, budget int) (map[mem.Owner]int, error) {
	if p.Kind != Twin {
		return nil, fmt.Errorf("netpath: contended bursts need the domU-twin path")
	}
	m := p.M
	d := m.Devs[i%len(m.Devs)]
	total := make(map[mem.Owner]int, len(m.Guests))
	for c := 0; c < crossings; c++ {
		for _, dom := range m.Guests {
			var pending int
			var err error
			if p.PostedTX {
				pending, err = p.T.PostedTxPending(dom.ID)
			} else {
				pending, err = p.T.StagedTx(dom.ID)
			}
			if err != nil {
				return total, err
			}
			want := core.TxRingSlots - 1 - pending
			if want <= 0 {
				continue
			}
			staged, err := p.stageTxMulti(dom, d, size, want)
			if err != nil {
				if p.recoverDead(err) {
					continue // re-stage this guest next crossing
				}
				return total, err
			}
			if staged < want {
				return total, fmt.Errorf("netpath: guest %d staged %d of %d", dom.ID, staged, want)
			}
		}
		sent, err := p.T.ServiceRings(d, budget)
		for id, n := range sent {
			total[id] += n
			p.TxCount += uint64(n)
		}
		if err != nil {
			if p.recoverDead(err) {
				continue
			}
			return total, err
		}
	}
	return total, nil
}

// SendLocal moves n size-byte frames from guest src to guest dst
// (both guest indices), addressed to dst's registered station MAC.
// With the inter-guest switch on (TwinConfig.Switch), the frames are
// classified at transmit and delivered dom0-side without touching the
// device; with it off they hairpin through the device — transmitted to
// the wire, re-injected as arriving traffic, and received back through
// the interrupt path and MAC demux. The two costs are what the vswitch
// benchmark compares. It returns the frames delivered to dst.
func (p *Path) SendLocal(i, size, n, src, dst int) (int, error) {
	if p.Kind != Twin {
		return 0, fmt.Errorf("netpath: inter-guest traffic needs the domU-twin path")
	}
	if src < 0 || src >= len(p.M.Guests) || dst < 0 || dst >= len(p.M.Guests) || src == dst {
		return 0, fmt.Errorf("netpath: bad guest pair %d->%d of %d guests", src, dst, len(p.M.Guests))
	}
	m := p.M
	meter := p.Meter()
	d := m.Devs[i%len(m.Devs)]
	sdom, ddom := m.Guests[src], m.Guests[dst]
	switched := p.T.VSwitch() != nil
	done := 0
	for done < n {
		chunk := n - done
		if chunk > core.TxRingSlots-1 {
			chunk = core.TxRingSlots - 1
		}
		// Guest src: kernel stack + staging copy for each frame, then one
		// crossing drains the batch.
		m.HV.Switch(sdom)
		frames := make([][]byte, chunk)
		for k := range frames {
			payload, err := p.framePayload(size)
			if err != nil {
				return done, err
			}
			frames[k] = core.EthernetFrame(p.guestMACs[dst], p.guestMACs[src], 0x0800, payload)
			meter.AddTo(cycles.CompDomU, cost.TxKernelFixed+uint64(len(frames[k]))*cost.TxKernelPerByte)
		}
		staged, err := p.T.StageTransmitBatch(sdom, frames)
		if err != nil {
			return done, err
		}
		if staged != chunk {
			return done, fmt.Errorf("netpath: staged %d of %d local frames", staged, chunk)
		}
		sent, err := p.T.ServiceRings(d, 0)
		if err != nil {
			return done, err
		}
		p.TxCount += uint64(sent[sdom.ID])
		p.T.Coalescer.Begin()
		if !switched {
			// No switch: the frames left on the wire; the external switch
			// hairpins them back to the shared link, and the receive path
			// runs in full — interrupt, driver RX, MAC demux.
			for k := range frames {
				if !d.Dev.Inject(frames[k]) {
					p.T.Coalescer.End()
					return done, fmt.Errorf("netpath: rx overrun")
				}
			}
			if err := p.T.HandleIRQ(d); err != nil {
				p.T.Coalescer.End()
				return done, err
			}
		}
		// Guest dst: paravirtual driver + stack per delivered frame.
		m.HV.Switch(ddom)
		pkts, err := p.T.DeliverPendingBatch(ddom, chunk)
		for _, pkt := range pkts {
			meter.AddTo(cycles.CompDomU, cost.PvDriverRx)
			meter.AddTo(cycles.CompDomU, cost.RxKernelFixed+uint64(len(pkt))*cost.RxKernelPerByte)
		}
		p.T.Coalescer.End()
		if err != nil {
			return done + len(pkts), err
		}
		p.RxCount += uint64(len(pkts))
		done += len(pkts)
		if len(pkts) == 0 {
			return done, fmt.Errorf("netpath: local delivery made no progress (%d of %d)", done, n)
		}
	}
	return done, nil
}
