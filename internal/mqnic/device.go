// Package mqnic models a multi-queue Ethernet controller (an e810/virtio
// multi-queue class device): eight independent TX/RX descriptor-ring pairs
// behind per-queue register blocks, RSS flow steering of received frames,
// per-queue interrupt cause bits, and hardware statistics — plus the
// assembly driver that drives it. The descriptor format is the 16-byte
// e1000 legacy layout, so the driver shares the kernel's global descriptor
// equates; everything queue-related (register blocks at a fixed stride,
// per-queue cause bits, the RSS hash) is this device's own.
//
// The point of the backend is the framework contract: the unmodified
// rewrite pipeline derives its hypervisor twin, and the twin's per-queue
// service loops (core.TwinConfig.Queues) line up with real device queues —
// SKB_QUEUE selects a real ring, received flows steer to a stable queue.
package mqnic

import (
	"fmt"

	"twindrivers/internal/core"
	"twindrivers/internal/mem"
)

func errUnbacked(name string, f uint32) error {
	return fmt.Errorf("mqnic: %s: DMA access of unbacked frame %#x", name, f)
}

// NumQueues is the number of independent TX/RX queue pairs.
const NumQueues = 8

// Ring geometry: per-queue descriptor rings (16-byte legacy descriptors).
const (
	TxRing    = 32
	RxRing    = 32
	RingBytes = TxRing * DescSize
)

// Global register offsets (byte offsets into the MMIO block).
const (
	RegCTRL   = 0x0000
	RegSTATUS = 0x0008
	RegICR    = 0x00C0 // interrupt cause, read-to-clear
	RegIMS    = 0x00D0 // interrupt mask set
	RegIMC    = 0x00D8 // interrupt mask clear
	RegRCTL   = 0x0100
	RegTCTL   = 0x0400
	RegGPTC   = 0x4000 // good packets transmitted (all queues)
	RegGPRC   = 0x4008 // good packets received (all queues)
	RegMPC    = 0x4010 // missed packets (no RX descriptors)
	RegRAL    = 0x5400 // receive address low
	RegRAH    = 0x5404 // receive address high

	// MMIOPages is the size of the register block in pages.
	MMIOPages = 32
)

// Per-queue register blocks: RX queue q lives at RxQBase+q*QStride, TX
// queue q at TxQBase+q*QStride. The 64-byte stride keeps queue addressing
// a single shift in driver code.
const (
	RxQBase = 0x2000
	TxQBase = 0x3000
	QStride = 0x40

	QRegBAL  = 0x00 // ring base address
	QRegLEN  = 0x08 // ring length in bytes
	QRegHEAD = 0x10
	QRegTAIL = 0x18
)

// Interrupt cause bits: RX queue q raises bit q, TX queue q raises bit
// 8+q, link status change is bit 16.
const (
	IntRxAll = 0x00FF
	IntTxAll = 0xFF00
	IntLSC   = 1 << 16
)

// Control/status and descriptor constants. Same VALUES as the e1000-class
// device on purpose: the kernel's global equates (DESC_SIZE, TXD_CMD_*,
// DESC_DD, RXD_ST_EOP, RCTL_EN, TCTL_EN, STATUS_LU, CTRL_RST) stay valid
// in this driver's assembly unit.
const (
	CtrlRST  = 1 << 26
	StatusLU = 1 << 1
	RctlEN   = 1 << 1
	TctlEN   = 1 << 1

	DescSize = 16
	TxCmdEOP = 1 << 0
	TxCmdRS  = 1 << 3
	DescDD   = 1 << 0
	RxStEOP  = 1 << 1
)

// rssSeed is the device's RSS hash key (the Toeplitz key register of real
// hardware, reduced to a seed). Fixed: steering must be deterministic.
const rssSeed = 0x6A09E667F3BCC908

// queueRegs is one descriptor ring's register block.
type queueRegs struct {
	bal, qlen, head, tail uint32
}

func (r *queueRegs) read(reg uint32) uint32 {
	switch reg {
	case QRegBAL:
		return r.bal
	case QRegLEN:
		return r.qlen
	case QRegHEAD:
		return r.head
	case QRegTAIL:
		return r.tail
	}
	return 0
}

func (r *queueRegs) write(reg, val uint32) {
	switch reg {
	case QRegBAL:
		r.bal = val
	case QRegLEN:
		r.qlen = val
	case QRegHEAD:
		r.head = val
	case QRegTAIL:
		r.tail = val
	}
}

// MQNIC is one simulated multi-queue controller.
type MQNIC struct {
	Name string
	Phys *mem.Physical
	MAC  [6]byte

	// IRQ is invoked when the interrupt line asserts (cause & mask != 0).
	IRQ func()

	// OnTransmit receives every transmitted packet (the wire).
	OnTransmit func(pkt []byte)

	ctrl, status uint32
	icr, ims     uint32
	rctl, tctl   uint32
	ral, rah     uint32

	tx [NumQueues]queueRegs
	rx [NumQueues]queueRegs

	// Statistics: global counters plus per-TX-queue good-packet counts
	// (the QueueCounters surface steering tests observe).
	gptc, gprc, mpc uint32
	qtx             [NumQueues]uint64
}

// New creates an MQNIC over physical memory with the given MAC address.
func New(name string, phys *mem.Physical, macLast byte) *MQNIC {
	n := &MQNIC{Name: name, Phys: phys, status: StatusLU}
	n.MAC = [6]byte{0x00, 0x1B, 0x21, 0x00, 0x00, macLast}
	return n
}

// MMIORead implements mem.MMIO.
func (n *MQNIC) MMIORead(off uint32, size uint32) uint32 {
	switch {
	case off >= RxQBase && off < RxQBase+NumQueues*QStride:
		return n.rx[(off-RxQBase)/QStride].read((off - RxQBase) % QStride)
	case off >= TxQBase && off < TxQBase+NumQueues*QStride:
		return n.tx[(off-TxQBase)/QStride].read((off - TxQBase) % QStride)
	}
	switch off {
	case RegCTRL:
		return n.ctrl
	case RegSTATUS:
		return n.status
	case RegICR:
		v := n.icr
		n.icr = 0 // read-to-clear
		return v
	case RegIMS:
		return n.ims
	case RegRCTL:
		return n.rctl
	case RegTCTL:
		return n.tctl
	case RegGPTC:
		return n.gptc
	case RegGPRC:
		return n.gprc
	case RegMPC:
		return n.mpc
	case RegRAL:
		return n.ral
	case RegRAH:
		return n.rah
	}
	return 0
}

// MMIOWrite implements mem.MMIO.
func (n *MQNIC) MMIOWrite(off uint32, size uint32, val uint32) {
	switch {
	case off >= RxQBase && off < RxQBase+NumQueues*QStride:
		n.rx[(off-RxQBase)/QStride].write((off-RxQBase)%QStride, val)
		return
	case off >= TxQBase && off < TxQBase+NumQueues*QStride:
		q := (off - TxQBase) / QStride
		reg := (off - TxQBase) % QStride
		n.tx[q].write(reg, val)
		if reg == QRegTAIL {
			n.processTx(int(q))
		}
		return
	}
	switch off {
	case RegCTRL:
		if val&CtrlRST != 0 {
			n.reset()
			return
		}
		n.ctrl = val
	case RegICR:
		n.icr &^= val
	case RegIMS:
		n.ims |= val
		n.maybeInterrupt()
	case RegIMC:
		n.ims &^= val
	case RegRCTL:
		n.rctl = val
	case RegTCTL:
		n.tctl = val
	case RegRAL:
		n.ral = val
		n.MAC[0], n.MAC[1], n.MAC[2], n.MAC[3] = byte(val), byte(val>>8), byte(val>>16), byte(val>>24)
	case RegRAH:
		n.rah = val
		n.MAC[4], n.MAC[5] = byte(val), byte(val>>8)
	}
}

func (n *MQNIC) reset() {
	*n = MQNIC{Name: n.Name, Phys: n.Phys, MAC: n.MAC, IRQ: n.IRQ,
		OnTransmit: n.OnTransmit, status: StatusLU}
}

func (n *MQNIC) maybeInterrupt() {
	if n.icr&n.ims != 0 && n.IRQ != nil {
		n.IRQ()
	}
}

// raise sets cause bits and asserts the line if unmasked.
func (n *MQNIC) raise(cause uint32) {
	n.icr |= cause
	n.maybeInterrupt()
}

// dmaRead copies ln bytes from physical memory (buffers may cross frames).
func (n *MQNIC) dmaRead(pa uint32, ln int) ([]byte, error) {
	out := make([]byte, ln)
	for i := 0; i < ln; {
		f := (pa + uint32(i)) / mem.PageSize
		off := (pa + uint32(i)) & mem.PageMask
		fd := n.Phys.FrameData(f)
		if fd == nil {
			return nil, errUnbacked(n.Name, f)
		}
		c := copy(out[i:], fd[off:])
		i += c
	}
	return out, nil
}

func (n *MQNIC) dmaWrite(pa uint32, data []byte) error {
	for i := 0; i < len(data); {
		f := (pa + uint32(i)) / mem.PageSize
		off := (pa + uint32(i)) & mem.PageMask
		fd := n.Phys.FrameData(f)
		if fd == nil {
			return errUnbacked(n.Name, f)
		}
		c := copy(fd[off:], data[i:])
		i += c
	}
	return nil
}

func (n *MQNIC) readDesc(base, idx uint32) ([]byte, error) {
	return n.dmaRead(base+idx*DescSize, DescSize)
}

func (n *MQNIC) writeDesc(base, idx uint32, d []byte) error {
	return n.dmaWrite(base+idx*DescSize, d)
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func le16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }
func put16(b []byte, v uint16) {
	b[0], b[1] = byte(v), byte(v>>8)
}

// processTx consumes descriptors from queue q's head up to its tail.
// Multi-descriptor packets (frag chains) accumulate until EOP.
func (n *MQNIC) processTx(q int) {
	tq := &n.tx[q]
	if n.tctl&TctlEN == 0 || tq.qlen == 0 {
		return
	}
	count := tq.qlen / DescSize
	var pkt []byte
	raised := false
	for tq.head != tq.tail {
		d, err := n.readDesc(tq.bal, tq.head)
		if err != nil {
			return // DMA of unbacked memory: packet lost, ring stalls
		}
		bufAddr := le32(d[0:4])
		ln := int(le16(d[8:10]))
		cmd := d[11]
		data, err := n.dmaRead(bufAddr, ln)
		if err != nil {
			return
		}
		pkt = append(pkt, data...)
		if cmd&TxCmdEOP != 0 {
			n.gptc++
			n.qtx[q]++
			if n.OnTransmit != nil {
				n.OnTransmit(pkt)
			}
			pkt = nil
		}
		// Write back DD.
		d[12] |= DescDD
		if err := n.writeDesc(tq.bal, tq.head, d); err != nil {
			return
		}
		if cmd&TxCmdRS != 0 {
			raised = true
		}
		tq.head = (tq.head + 1) % count
	}
	if raised {
		n.raise(1 << (8 + uint(q)))
	}
}

// SteerRx returns the RX queue a frame's addresses steer to: the device's
// RSS function over (src, dst). A flow — a fixed address pair — maps to
// exactly one queue, so in-flow ordering is preserved per construction.
func SteerRx(pkt []byte) int {
	if len(pkt) < 12 {
		return 0
	}
	var dst, src [6]byte
	copy(dst[:], pkt[0:6])
	copy(src[:], pkt[6:12])
	return core.SteerQueue(core.RSSHash(src, dst, 0, rssSeed), NumQueues)
}

// Inject delivers a received packet into the RX queue its flow steers to.
// It returns false (and counts a missed packet) when that queue has no
// free descriptor.
func (n *MQNIC) Inject(pkt []byte) bool {
	if n.rctl&RctlEN == 0 {
		n.mpc++
		return false
	}
	q := SteerRx(pkt)
	rq := &n.rx[q]
	if rq.qlen == 0 {
		n.mpc++
		return false
	}
	count := rq.qlen / DescSize
	if rq.head == rq.tail {
		// Ring empty: no buffers.
		n.mpc++
		return false
	}
	d, err := n.readDesc(rq.bal, rq.head)
	if err != nil {
		n.mpc++
		return false
	}
	bufAddr := le32(d[0:4])
	if err := n.dmaWrite(bufAddr, pkt); err != nil {
		n.mpc++
		return false
	}
	put16(d[8:10], uint16(len(pkt)))
	d[12] |= DescDD | RxStEOP
	if err := n.writeDesc(rq.bal, rq.head, d); err != nil {
		n.mpc++
		return false
	}
	rq.head = (rq.head + 1) % count
	n.gprc++
	n.raise(1 << uint(q))
	return true
}

// Counters exposes the statistics the driver's watchdog reads.
func (n *MQNIC) Counters() (tx, rx, missed uint32) { return n.gptc, n.gprc, n.mpc }

// QueueTxCounts returns good packets transmitted per TX queue
// (drivermodel.QueueCounters).
func (n *MQNIC) QueueTxCounts() []uint64 {
	out := make([]uint64, NumQueues)
	copy(out, n.qtx[:])
	return out
}

// SetOnTransmit installs the wire callback (drivermodel.Device).
func (n *MQNIC) SetOnTransmit(fn func(pkt []byte)) { n.OnTransmit = fn }

// HWAddr returns the current station address (drivermodel.Device).
func (n *MQNIC) HWAddr() [6]byte { return n.MAC }

// LinkUp reports link state.
func (n *MQNIC) LinkUp() bool { return n.status&StatusLU != 0 }

// PendingInterrupt reports whether an unmasked cause is latched.
func (n *MQNIC) PendingInterrupt() bool { return n.icr&n.ims != 0 }
