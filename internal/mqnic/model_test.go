package mqnic

import (
	"testing"

	"twindrivers/internal/kernel"
)

// The driver source must assemble against the kernel equates merged with
// the model's own MQ_* equates, and export every entry symbol the
// framework resolves.
func TestDriverAssembles(t *testing.T) {
	u, err := model.Assemble(kernel.Equates())
	if err != nil {
		t.Fatal(err)
	}
	for _, sym := range []string{
		FnProbe, FnOpen, FnClose, FnXmit, FnIntr,
		FnCleanRx, FnCleanTx, FnWatchdog, FnGetStats,
	} {
		if u.Func(sym) == nil {
			t.Errorf("symbol %s not defined", sym)
		}
	}
}

// The geometry the model declares must match the device's constants, and
// the adapter allocation must cover the AD_SIZE the source lays out
// (48-byte fixed head + NumQueues 64-byte queue blocks).
func TestGeometryMatchesDevice(t *testing.T) {
	if model.Queues != NumQueues {
		t.Fatalf("model.Queues = %d, device has %d", model.Queues, NumQueues)
	}
	if need := uint32(48 + NumQueues*64); AdapterSize < need {
		t.Fatalf("AdapterSize %d < adapter layout %d", AdapterSize, need)
	}
}
