// The mqnic guest driver: a multi-queue NIC driver in the simulated
// machine's assembly, structured after the per-queue-pair drivers of
// e810/virtio-class hardware. Every queue pair owns its own descriptor
// rings, buffer_info arrays and ring registers (one 64-byte register
// window per queue), so the transmit path runs ring maintenance entirely
// inside the queue selected by the staged SKB_QUEUE tag and the interrupt
// handler walks only the queues whose cause bits are latched.
//
// TwinDrivers never sees this source specially: the rewriter transforms
// it like any compiled driver. Strict cdecl is observed (no live values
// in caller-saved registers across calls), as compiler output would.
package mqnic

// Entry point names exported by the driver.
const (
	FnProbe    = "mqnic_probe"
	FnOpen     = "mqnic_open"
	FnClose    = "mqnic_close"
	FnXmit     = "mqnic_xmit_frame"
	FnIntr     = "mqnic_intr"
	FnCleanRx  = "mqnic_clean_rx"
	FnCleanTx  = "mqnic_clean_tx"
	FnWatchdog = "mqnic_watchdog"
	FnGetStats = "mqnic_get_stats"
)

// AdapterSize is the byte size of the driver's private adapter structure
// (must cover AD_SIZE in Source).
const AdapterSize = 576

// Source is the driver, in the dialect of internal/asm. Structure offsets
// come from kernel.Equates() plus the MQ_* device equates in model.go and
// the ADAPTER (AD_*) equates defined here.
const Source = `
# mqnic multi-queue network driver for the simulated machine.
# cdecl; callee saves ebx/esi/edi/ebp; args at 8(%ebp), 12(%ebp), ...

# Adapter private structure (lives in netdev->priv). The tail of the
# structure is an array of per-queue blocks, 64 bytes each: queue q's
# block sits at AD_Q + q*64.
	.equ	AD_NETDEV, 0
	.equ	AD_REGS, 4
	.equ	AD_LOCK, 8
	.equ	AD_CLEAN_RX, 12    # RX cleaner function pointer (indirect call)
	.equ	AD_IRQ, 16
	.equ	AD_WDT, 20         # watchdog timer_list: 20..31
	.equ	AD_GPTC, 32        # accumulated hardware stats
	.equ	AD_GPRC, 36
	.equ	AD_MPC, 40
	.equ	AD_NQUEUES, 44
	.equ	AD_Q, 48           # per-queue blocks: 8 x 64 bytes
	.equ	AD_SIZE, 560

# Per-queue block layout (offsets within one 64-byte block).
	.equ	Q_TXD, 0           # TX descriptor ring vaddr
	.equ	Q_TXD_DMA, 4
	.equ	Q_TX_HEAD, 8       # next descriptor to reap
	.equ	Q_TX_TAIL, 12      # next descriptor to use
	.equ	Q_TXBI, 16         # TX buffer_info (8 bytes/entry: skb, dma)
	.equ	Q_RXD, 20
	.equ	Q_RXD_DMA, 24
	.equ	Q_RX_HEAD, 28      # next descriptor to clean
	.equ	Q_RX_TAIL, 32      # last descriptor handed to hw (per-queue RDT)
	.equ	Q_RXBI, 36

	.text

# ---------------------------------------------------------------------------
# mqnic_probe(netdev, mmio_phys, irq, nqueues)
# ---------------------------------------------------------------------------
	.globl	mqnic_probe
mqnic_probe:
	pushl	%ebp
	movl	%esp, %ebp
	pushl	%ebx
	pushl	%esi
	pushl	%edi

	movl	8(%ebp), %esi          # esi = netdev
	movl	ND_PRIV(%esi), %ebx    # ebx = adapter
	movl	%esi, AD_NETDEV(%ebx)

	movl	16(%ebp), %eax         # irq
	movl	%eax, AD_IRQ(%ebx)
	movl	%eax, ND_IRQ(%esi)

	movl	20(%ebp), %eax         # queue-pair count from probe data
	movl	%eax, AD_NQUEUES(%ebx)

	pushl	$131072                # map the register BAR (128 KiB)
	pushl	12(%ebp)
	call	ioremap
	addl	$8, %esp
	movl	%eax, AD_REGS(%ebx)
	movl	%eax, ND_BASE(%esi)

	movl	AD_REGS(%ebx), %edi    # reset the function
	movl	$CTRL_RST, %eax
	movl	%eax, MQ_CTRL(%edi)

	# Allocate every queue pair's rings and buffer_info arrays.
	xorl	%edi, %edi             # edi = queue index
.Lmpr_qloop:
	cmpl	AD_NQUEUES(%ebx), %edi
	je	.Lmpr_qdone
	movl	%edi, %esi
	shll	$6, %esi
	addl	%ebx, %esi
	addl	$AD_Q, %esi            # esi = queue block

	leal	Q_TXD_DMA(%esi), %eax  # TX descriptor ring
	pushl	%eax
	pushl	$MQ_RING_BYTES
	call	dma_alloc_coherent
	addl	$8, %esp
	movl	%eax, Q_TXD(%esi)

	leal	Q_RXD_DMA(%esi), %eax  # RX descriptor ring
	pushl	%eax
	pushl	$MQ_RING_BYTES
	call	dma_alloc_coherent
	addl	$8, %esp
	movl	%eax, Q_RXD(%esi)

	pushl	$MQ_BI_BYTES           # buffer_info arrays
	call	kzalloc
	addl	$4, %esp
	movl	%eax, Q_TXBI(%esi)
	pushl	$MQ_BI_BYTES
	call	kzalloc
	addl	$4, %esp
	movl	%eax, Q_RXBI(%esi)

	xorl	%eax, %eax
	movl	%eax, Q_TX_HEAD(%esi)
	movl	%eax, Q_TX_TAIL(%esi)
	movl	%eax, Q_RX_HEAD(%esi)
	movl	%eax, Q_RX_TAIL(%esi)

	incl	%edi
	jmp	.Lmpr_qloop
.Lmpr_qdone:
	movl	8(%ebp), %esi          # reload netdev

	leal	AD_LOCK(%ebx), %eax
	pushl	%eax
	call	spin_lock_init
	addl	$4, %esp

	movl	$mqnic_xmit_frame, %eax    # entry points
	movl	%eax, ND_XMIT(%esi)
	movl	$mqnic_clean_rx, %eax
	movl	%eax, AD_CLEAN_RX(%ebx)

	movl	AD_REGS(%ebx), %edi    # station address from netdev->mac
	movl	ND_MAC(%esi), %eax
	movl	%eax, MQ_RAL(%edi)
	movzwl	ND_MAC+4(%esi), %eax
	movl	%eax, MQ_RAH(%edi)

	leal	AD_WDT(%ebx), %eax     # watchdog timer
	pushl	%eax
	call	init_timer
	addl	$4, %esp
	movl	$mqnic_watchdog, %eax
	movl	%eax, AD_WDT+TIMER_FN(%ebx)
	movl	%esi, AD_WDT+TIMER_DATA(%ebx)

	pushl	%esi
	call	register_netdev
	addl	$4, %esp

	xorl	%eax, %eax
	popl	%edi
	popl	%esi
	popl	%ebx
	popl	%ebp
	ret

# ---------------------------------------------------------------------------
# mqnic_open(netdev)
# ---------------------------------------------------------------------------
	.globl	mqnic_open
mqnic_open:
	pushl	%ebp
	movl	%esp, %ebp
	pushl	%ebx
	pushl	%esi
	pushl	%edi

	movl	8(%ebp), %esi          # netdev
	movl	ND_PRIV(%esi), %ebx    # adapter

	pushl	%esi                   # dev_id
	pushl	$0                     # name
	pushl	$0                     # flags
	movl	$mqnic_intr, %eax
	pushl	%eax                   # handler
	pushl	AD_IRQ(%ebx)           # irq
	call	request_irq
	addl	$20, %esp

	# Program every queue pair's ring registers and fill its RX ring.
	xorl	%edi, %edi             # edi = queue index
.Lmop_qloop:
	cmpl	AD_NQUEUES(%ebx), %edi
	je	.Lmop_qdone
	movl	%edi, %esi
	shll	$6, %esi
	addl	%ebx, %esi
	addl	$AD_Q, %esi            # esi = queue block
	movl	%edi, %edx
	shll	$6, %edx
	addl	AD_REGS(%ebx), %edx    # edx = per-queue register window

	movl	Q_TXD_DMA(%esi), %eax  # transmit ring registers
	movl	%eax, MQ_TXQ_BASE+MQ_Q_BAL(%edx)
	movl	$MQ_RING_BYTES, %eax
	movl	%eax, MQ_TXQ_BASE+MQ_Q_LEN(%edx)
	xorl	%eax, %eax
	movl	%eax, MQ_TXQ_BASE+MQ_Q_HEAD(%edx)
	movl	%eax, MQ_TXQ_BASE+MQ_Q_TAIL(%edx)

	movl	Q_RXD_DMA(%esi), %eax  # receive ring registers
	movl	%eax, MQ_RXQ_BASE+MQ_Q_BAL(%edx)
	movl	$MQ_RING_BYTES, %eax
	movl	%eax, MQ_RXQ_BASE+MQ_Q_LEN(%edx)
	xorl	%eax, %eax
	movl	%eax, MQ_RXQ_BASE+MQ_Q_HEAD(%edx)
	movl	%eax, MQ_RXQ_BASE+MQ_Q_TAIL(%edx)

	pushl	%edi
	pushl	%ebx
	call	mqnic_alloc_rx_buffers
	addl	$8, %esp

	incl	%edi
	jmp	.Lmop_qloop
.Lmop_qdone:
	movl	8(%ebp), %esi          # reload netdev
	movl	AD_REGS(%ebx), %edi

	movl	$TCTL_EN, %eax         # enable MAC engines
	movl	%eax, MQ_TCTL(%edi)
	movl	$RCTL_EN, %eax
	movl	%eax, MQ_RCTL(%edi)
	movl	$MQ_INT_RX_ALL+MQ_INT_LSC, %eax # unmask RX; TX reaped from xmit
	movl	%eax, MQ_IMS(%edi)

	pushl	%esi
	call	netif_start_queue
	addl	$4, %esp

	movl	jiffies, %eax          # arm the watchdog
	addl	$2, %eax
	pushl	%eax
	leal	AD_WDT(%ebx), %eax
	pushl	%eax
	call	mod_timer
	addl	$8, %esp

	xorl	%eax, %eax
	popl	%edi
	popl	%esi
	popl	%ebx
	popl	%ebp
	ret

# ---------------------------------------------------------------------------
# mqnic_alloc_rx_buffers(adapter, queue)
# Locals: -4 skb
# ---------------------------------------------------------------------------
	.globl	mqnic_alloc_rx_buffers
mqnic_alloc_rx_buffers:
	pushl	%ebp
	movl	%esp, %ebp
	subl	$4, %esp
	pushl	%ebx
	pushl	%esi
	pushl	%edi

	movl	8(%ebp), %ebx          # adapter
	movl	12(%ebp), %edi
	shll	$6, %edi
	addl	%ebx, %edi
	addl	$AD_Q, %edi            # edi = queue block
	movl	Q_RX_TAIL(%edi), %esi  # index to fill
.Lmrf_fill:
	movl	%esi, %eax             # stop one short of the cleaner index
	incl	%eax
	andl	$MQ_RX_RING-1, %eax
	cmpl	Q_RX_HEAD(%edi), %eax
	je	.Lmrf_done

	pushl	$SKB_BUF_SIZE          # skb = netdev_alloc_skb(dev, bufsize)
	pushl	AD_NETDEV(%ebx)
	call	netdev_alloc_skb
	addl	$8, %esp
	testl	%eax, %eax
	je	.Lmrf_done             # allocation failure: retry later
	movl	%eax, -4(%ebp)         # skb

	pushl	$1                     # dma = dma_map_single(dev, data, sz, FROM)
	pushl	$SKB_BUF_SIZE
	movl	-4(%ebp), %eax
	pushl	SKB_DATA(%eax)
	pushl	AD_NETDEV(%ebx)
	call	dma_map_single
	addl	$16, %esp
	movl	-4(%ebp), %edx
	movl	%eax, SKB_DMA(%edx)

	movl	Q_RXBI(%edi), %ecx     # buffer_info[i] = {skb, dma}
	movl	%eax, 4(%ecx,%esi,8)
	movl	%edx, (%ecx,%esi,8)

	movl	Q_RXD(%edi), %ecx      # descriptor: address, clear status
	movl	%esi, %edx
	shll	$4, %edx
	addl	%edx, %ecx
	movl	%eax, (%ecx)
	xorl	%eax, %eax
	movl	%eax, 4(%ecx)
	movl	%eax, 8(%ecx)
	movl	%eax, 12(%ecx)

	incl	%esi
	andl	$MQ_RX_RING-1, %esi
	jmp	.Lmrf_fill
.Lmrf_done:
	movl	%esi, Q_RX_TAIL(%edi)
	movl	12(%ebp), %eax         # publish this queue's RDT
	shll	$6, %eax
	addl	AD_REGS(%ebx), %eax
	movl	%esi, MQ_RXQ_BASE+MQ_Q_TAIL(%eax)

	popl	%edi
	popl	%esi
	popl	%ebx
	movl	%ebp, %esp
	popl	%ebp
	ret

# ---------------------------------------------------------------------------
# mqnic_xmit_frame(skb, netdev) -> 0 ok, 1 busy
# The framework stages each frame's service queue in SKB_QUEUE; the driver
# runs all ring maintenance inside that queue's block and register window.
# Locals: -4 linear_len, -8 dma, -12 skb, -16 queue block, -20 queue index
# ---------------------------------------------------------------------------
	.globl	mqnic_xmit_frame
mqnic_xmit_frame:
	pushl	%ebp
	movl	%esp, %ebp
	subl	$20, %esp
	pushl	%ebx
	pushl	%esi
	pushl	%edi

	movl	12(%ebp), %esi         # netdev
	movl	ND_PRIV(%esi), %ebx    # adapter

	leal	AD_LOCK(%ebx), %eax
	pushl	%eax
	call	spin_trylock
	addl	$4, %esp
	testl	%eax, %eax
	je	.Lmtx_busy

	movl	8(%ebp), %edx          # skb
	movl	%edx, -12(%ebp)
	movl	SKB_QUEUE(%edx), %eax  # select the staged transmit queue
	andl	$MQ_NQ-1, %eax
	movl	%eax, -20(%ebp)
	shll	$6, %eax
	addl	%ebx, %eax
	addl	$AD_Q, %eax
	movl	%eax, -16(%ebp)        # queue block

	pushl	-20(%ebp)              # reap this queue's finished descriptors
	pushl	%ebx
	call	mqnic_clean_tx
	addl	$8, %esp

	movl	-16(%ebp), %ecx
	movl	Q_TX_TAIL(%ecx), %edi  # ring space: up to 2 descriptors
	movl	%edi, %eax
	addl	$2, %eax
	andl	$MQ_TX_RING-1, %eax
	cmpl	Q_TX_HEAD(%ecx), %eax
	jne	.Lmtx_room
	orl	$1, ND_FLAGS(%esi)     # netif_stop_queue (kernel inline)
	leal	AD_LOCK(%ebx), %eax
	pushl	$0
	pushl	%eax
	call	spin_unlock_irqrestore
	addl	$8, %esp
.Lmtx_busy:
	movl	$1, %eax
	jmp	.Lmtx_out

.Lmtx_room:
	movl	-12(%ebp), %edx
	movl	SKB_LEN(%edx), %ecx    # linear length = len - frag
	movl	SKB_NR_FRAGS(%edx), %eax
	testl	%eax, %eax
	je	.Lmtx_lin
	subl	SKB_FRAG_SIZE(%edx), %ecx
.Lmtx_lin:
	movl	%ecx, -4(%ebp)

	pushl	-12(%ebp)              # checksum-offload / TSO context setup
	call	mqnic_tx_csum_setup
	addl	$4, %esp

	movl	-12(%ebp), %edx
	pushl	$0                     # dma_map_single(dev, data, linlen, TO)
	pushl	-4(%ebp)
	pushl	SKB_DATA(%edx)
	pushl	%esi
	call	dma_map_single
	addl	$16, %esp
	movl	%eax, -8(%ebp)

	movl	-16(%ebp), %ecx
	movl	Q_TXD(%ecx), %edx      # stamp the linear descriptor
	movl	%edi, %ecx
	shll	$4, %ecx
	addl	%ecx, %edx
	movl	-8(%ebp), %eax
	movl	%eax, (%edx)           # buffer address
	xorl	%eax, %eax
	movl	%eax, 4(%edx)
	movl	-4(%ebp), %eax
	movw	%eax, 8(%edx)           # length
	movb	$0, 10(%edx)           # cso
	movl	-12(%ebp), %ecx
	movl	SKB_NR_FRAGS(%ecx), %eax
	testl	%eax, %eax
	jne	.Lmtx_cmd_frag
	movb	$TXD_CMD_EOP+TXD_CMD_RS, 11(%edx)
	jmp	.Lmtx_cmd_done
.Lmtx_cmd_frag:
	movb	$TXD_CMD_RS, 11(%edx)
.Lmtx_cmd_done:
	movb	$0, 12(%edx)           # status
	movb	$0, 13(%edx)
	movw	$0, 14(%edx)

	movl	-16(%ebp), %ecx        # buffer_info: skb rides the LAST desc
	movl	Q_TXBI(%ecx), %ecx
	movl	-8(%ebp), %eax
	movl	%eax, 4(%ecx,%edi,8)
	movl	-12(%ebp), %edx
	movl	SKB_NR_FRAGS(%edx), %eax
	testl	%eax, %eax
	jne	.Lmtx_bi_defer
	movl	%edx, (%ecx,%edi,8)
	jmp	.Lmtx_bi_done
.Lmtx_bi_defer:
	movl	$0, (%ecx,%edi,8)
.Lmtx_bi_done:
	incl	%edi
	andl	$MQ_TX_RING-1, %edi

	movl	-12(%ebp), %edx        # fragment descriptor, if any
	movl	SKB_NR_FRAGS(%edx), %eax
	testl	%eax, %eax
	je	.Lmtx_no_frag

	pushl	$0                     # dma_map_page(dev, page, off, size, TO)
	pushl	SKB_FRAG_SIZE(%edx)
	pushl	SKB_FRAG_OFF(%edx)
	pushl	SKB_FRAG_PAGE(%edx)
	pushl	%esi
	call	dma_map_page
	addl	$20, %esp
	movl	%eax, -8(%ebp)

	movl	-16(%ebp), %ecx
	movl	Q_TXD(%ecx), %edx
	movl	%edi, %ecx
	shll	$4, %ecx
	addl	%ecx, %edx
	movl	-8(%ebp), %eax
	movl	%eax, (%edx)
	xorl	%eax, %eax
	movl	%eax, 4(%edx)
	movl	-12(%ebp), %ecx
	movl	SKB_FRAG_SIZE(%ecx), %eax
	movw	%eax, 8(%edx)
	movb	$0, 10(%edx)
	movb	$TXD_CMD_EOP+TXD_CMD_RS, 11(%edx)
	movb	$0, 12(%edx)
	movb	$0, 13(%edx)
	movw	$0, 14(%edx)

	movl	-16(%ebp), %ecx
	movl	Q_TXBI(%ecx), %ecx
	movl	-12(%ebp), %eax
	movl	%eax, (%ecx,%edi,8)
	movl	-8(%ebp), %eax
	movl	%eax, 4(%ecx,%edi,8)
	incl	%edi
	andl	$MQ_TX_RING-1, %edi
.Lmtx_no_frag:

	movl	-12(%ebp), %edx        # stats
	movl	SKB_LEN(%edx), %eax
	addl	%eax, ND_TX_BYTES(%esi)
	incl	ND_TX_PACKETS(%esi)

	movl	-16(%ebp), %ecx        # publish the tail to this queue's TDT
	movl	%edi, Q_TX_TAIL(%ecx)
	movl	-20(%ebp), %eax
	shll	$6, %eax
	addl	AD_REGS(%ebx), %eax
	movl	%edi, MQ_TXQ_BASE+MQ_Q_TAIL(%eax)

	leal	AD_LOCK(%ebx), %eax
	pushl	$0
	pushl	%eax
	call	spin_unlock_irqrestore
	addl	$8, %esp

	xorl	%eax, %eax
.Lmtx_out:
	popl	%edi
	popl	%esi
	popl	%ebx
	movl	%ebp, %esp
	popl	%ebp
	ret

# ---------------------------------------------------------------------------
# mqnic_tx_csum_setup(skb)
# Models the transmit-side work the production driver performs per packet
# beyond ring stamping: protocol dispatch, TCP/UDP pseudo-header checksum
# folding for the offload context descriptor, and the TSO decision chain.
# ---------------------------------------------------------------------------
	.globl	mqnic_tx_csum_setup
mqnic_tx_csum_setup:
	pushl	%ebp
	movl	%esp, %ebp
	pushl	%ebx
	pushl	%esi

	movl	8(%ebp), %esi          # skb
	movl	SKB_DATA(%esi), %ecx
	movzwl	12(%ecx), %eax         # ethertype (big-endian on the wire)
	movl	%eax, %edx
	shrl	$8, %eax
	shll	$8, %edx
	orl	%edx, %eax
	andl	$0xffff, %eax
	cmpl	$0x0800, %eax          # IPv4?
	jne	.Lmcs_no_offload

	movzbl	14(%ecx), %edx         # IHL nibble
	andl	$15, %edx
	shll	$2, %edx               # IP header length
	movzbl	23(%ecx), %ebx         # IP protocol
	movl	SKB_LEN(%esi), %eax
	subl	%edx, %eax
	subl	$14, %eax              # L4 length for the pseudo header

	# Pseudo-header checksum fold: the context descriptor wants the
	# partial sum; the driver folds it in registers.
	addl	%ebx, %eax
	movl	$40, %ecx
.Lmcs_round:
	movl	%eax, %edx
	shll	$5, %edx
	xorl	%edx, %eax
	movl	%eax, %edx
	shrl	$7, %edx
	addl	%edx, %eax
	addl	%ebx, %eax
	movl	%eax, %edx
	shll	$3, %edx
	subl	%edx, %eax
	decl	%ecx
	jne	.Lmcs_round

	# TSO decision chain: segment only large TCP packets.
	cmpl	$6, %ebx               # TCP?
	jne	.Lmcs_not_tso
	movl	8(%ebp), %esi
	movl	SKB_LEN(%esi), %edx
	cmpl	$1500, %edx
	jbe	.Lmcs_not_tso
	andl	$0x7fff, %eax
.Lmcs_not_tso:
	andl	$0xffff, %eax
	jmp	.Lmcs_out
.Lmcs_no_offload:
	xorl	%eax, %eax
.Lmcs_out:
	popl	%esi
	popl	%ebx
	popl	%ebp
	ret

# ---------------------------------------------------------------------------
# mqnic_rx_checksum(skb)
# Models the receive-side checksum verification the production driver does
# per packet (descriptor status decode + sum fold).
# ---------------------------------------------------------------------------
	.globl	mqnic_rx_checksum
mqnic_rx_checksum:
	pushl	%ebp
	movl	%esp, %ebp
	pushl	%ebx

	movl	8(%ebp), %edx          # skb
	movl	SKB_LEN(%edx), %eax
	movl	SKB_PROTOCOL(%edx), %ebx
	addl	%ebx, %eax
	movl	$40, %ecx
.Lmrcs_round:
	movl	%eax, %edx
	shll	$4, %edx
	xorl	%edx, %eax
	movl	%eax, %edx
	shrl	$5, %edx
	addl	%edx, %eax
	decl	%ecx
	jne	.Lmrcs_round
	andl	$0xffff, %eax

	popl	%ebx
	popl	%ebp
	ret

# ---------------------------------------------------------------------------
# mqnic_clean_tx(adapter, queue)
# ---------------------------------------------------------------------------
	.globl	mqnic_clean_tx
mqnic_clean_tx:
	pushl	%ebp
	movl	%esp, %ebp
	pushl	%ebx
	pushl	%esi
	pushl	%edi

	movl	8(%ebp), %ebx          # adapter
	movl	12(%ebp), %edi
	shll	$6, %edi
	addl	%ebx, %edi
	addl	$AD_Q, %edi            # edi = queue block
	movl	Q_TX_HEAD(%edi), %esi
.Lmtc_loop:
	cmpl	Q_TX_TAIL(%edi), %esi
	je	.Lmtc_done
	movl	Q_TXD(%edi), %edx
	movl	%esi, %eax
	shll	$4, %eax
	addl	%eax, %edx
	movzbl	12(%edx), %eax
	testl	$DESC_DD, %eax
	je	.Lmtc_done

	movl	Q_TXBI(%edi), %ecx
	pushl	$0                     # dma_unmap_single(dev, dma, 0, TO)
	pushl	$0
	pushl	4(%ecx,%esi,8)
	pushl	AD_NETDEV(%ebx)
	call	dma_unmap_single
	addl	$16, %esp

	movl	Q_TXBI(%edi), %ecx
	movl	(%ecx,%esi,8), %edx    # skb (zero on non-final frag descs)
	testl	%edx, %edx
	je	.Lmtc_no_skb
	pushl	%edx
	call	dev_kfree_skb_any
	addl	$4, %esp
.Lmtc_no_skb:
	movl	Q_TXD(%edi), %edx      # clear status
	movl	%esi, %eax
	shll	$4, %eax
	addl	%eax, %edx
	movb	$0, 12(%edx)

	incl	%esi
	andl	$MQ_TX_RING-1, %esi
	jmp	.Lmtc_loop
.Lmtc_done:
	movl	%esi, Q_TX_HEAD(%edi)

	# Wake the queue if it was stopped (netif_queue_stopped and
	# netif_wake_queue are kernel inlines, not imported symbols).
	movl	AD_NETDEV(%ebx), %edx
	movl	ND_FLAGS(%edx), %eax
	testl	$1, %eax
	je	.Lmtc_out
	andl	$-2, ND_FLAGS(%edx)
.Lmtc_out:
	popl	%edi
	popl	%esi
	popl	%ebx
	popl	%ebp
	ret

# ---------------------------------------------------------------------------
# mqnic_intr(irq, dev_id) -> 1 handled, 0 none
# The cause register carries one RX bit and one TX bit per queue; the
# handler walks only the queues whose bits are latched.
# Locals: -4 queue index
# ---------------------------------------------------------------------------
	.globl	mqnic_intr
mqnic_intr:
	pushl	%ebp
	movl	%esp, %ebp
	subl	$4, %esp
	pushl	%ebx
	pushl	%esi
	pushl	%edi

	movl	12(%ebp), %esi         # netdev (dev_id)
	movl	ND_PRIV(%esi), %ebx    # adapter
	movl	AD_REGS(%ebx), %ecx
	movl	MQ_ICR(%ecx), %eax     # read-to-clear
	testl	%eax, %eax
	je	.Lmi_none
	movl	%eax, %edi             # keep the cause across calls

	testl	$MQ_INT_RX_ALL, %edi
	je	.Lmi_no_rx
	movl	$1, %esi               # walking per-queue RX-cause mask
	movl	$0, -4(%ebp)
.Lmi_rx_loop:
	movl	-4(%ebp), %eax
	cmpl	AD_NQUEUES(%ebx), %eax
	je	.Lmi_no_rx
	testl	%esi, %edi
	je	.Lmi_rx_next
	pushl	-4(%ebp)
	pushl	%ebx
	call	*AD_CLEAN_RX(%ebx)     # indirect through driver data (§5.1.2)
	addl	$8, %esp
.Lmi_rx_next:
	shll	$1, %esi
	incl	-4(%ebp)
	jmp	.Lmi_rx_loop
.Lmi_no_rx:

	testl	$MQ_INT_TX_ALL, %edi
	je	.Lmi_no_tx
	leal	AD_LOCK(%ebx), %eax
	pushl	%eax
	call	spin_trylock
	addl	$4, %esp
	testl	%eax, %eax
	je	.Lmi_no_tx
	movl	$MQ_INT_TX0, %esi      # walking per-queue TX-cause mask
	movl	$0, -4(%ebp)
.Lmi_tx_loop:
	movl	-4(%ebp), %eax
	cmpl	AD_NQUEUES(%ebx), %eax
	je	.Lmi_tx_done
	testl	%esi, %edi
	je	.Lmi_tx_next
	pushl	-4(%ebp)
	pushl	%ebx
	call	mqnic_clean_tx
	addl	$8, %esp
.Lmi_tx_next:
	shll	$1, %esi
	incl	-4(%ebp)
	jmp	.Lmi_tx_loop
.Lmi_tx_done:
	leal	AD_LOCK(%ebx), %eax
	pushl	$0
	pushl	%eax
	call	spin_unlock_irqrestore
	addl	$8, %esp
.Lmi_no_tx:
	movl	$1, %eax
	jmp	.Lmi_out
.Lmi_none:
	xorl	%eax, %eax
.Lmi_out:
	popl	%edi
	popl	%esi
	popl	%ebx
	movl	%ebp, %esp
	popl	%ebp
	ret

# ---------------------------------------------------------------------------
# mqnic_clean_rx(adapter, queue)
# Locals: -4 len, -8 orig skb, -12 new skb, -16 dma
# ---------------------------------------------------------------------------
	.globl	mqnic_clean_rx
mqnic_clean_rx:
	pushl	%ebp
	movl	%esp, %ebp
	subl	$16, %esp
	pushl	%ebx
	pushl	%esi
	pushl	%edi

	movl	8(%ebp), %ebx          # adapter
	movl	12(%ebp), %edi
	shll	$6, %edi
	addl	%ebx, %edi
	addl	$AD_Q, %edi            # edi = queue block
	movl	Q_RX_HEAD(%edi), %esi
.Lmrx_loop:
	movl	Q_RXD(%edi), %edx
	movl	%esi, %eax
	shll	$4, %eax
	addl	%eax, %edx
	movzbl	12(%edx), %eax
	testl	$DESC_DD, %eax
	je	.Lmrx_done

	movzwl	8(%edx), %eax          # packet length
	movl	%eax, -4(%ebp)
	movl	Q_RXBI(%edi), %ecx
	movl	(%ecx,%esi,8), %eax    # original skb
	movl	%eax, -8(%ebp)

	pushl	$1                     # unmap the full-size buffer
	pushl	$SKB_BUF_SIZE
	pushl	4(%ecx,%esi,8)
	pushl	AD_NETDEV(%ebx)
	call	dma_unmap_single
	addl	$16, %esp

	movl	-8(%ebp), %edx         # set length, deliver
	movl	-4(%ebp), %eax
	movl	%eax, SKB_LEN(%edx)
	pushl	AD_NETDEV(%ebx)
	pushl	%edx
	call	eth_type_trans
	addl	$8, %esp
	pushl	-8(%ebp)
	call	mqnic_rx_checksum
	addl	$4, %esp
	pushl	-8(%ebp)
	call	netif_rx
	addl	$4, %esp

	pushl	$SKB_BUF_SIZE          # refill the descriptor
	pushl	AD_NETDEV(%ebx)
	call	netdev_alloc_skb
	addl	$8, %esp
	testl	%eax, %eax
	je	.Lmrx_nomem
	movl	%eax, -12(%ebp)

	movl	-12(%ebp), %edx
	pushl	$1
	pushl	$SKB_BUF_SIZE
	pushl	SKB_DATA(%edx)
	pushl	AD_NETDEV(%ebx)
	call	dma_map_single
	addl	$16, %esp
	movl	%eax, -16(%ebp)

	movl	Q_RX_TAIL(%edi), %edx  # install in the tail (first unfilled) slot
	movl	Q_RXBI(%edi), %ecx
	movl	%eax, 4(%ecx,%edx,8)
	movl	-12(%ebp), %eax
	movl	%eax, (%ecx,%edx,8)

	movl	Q_RXD(%edi), %ecx
	movl	%edx, %eax
	shll	$4, %eax
	addl	%eax, %ecx
	movl	-16(%ebp), %eax
	movl	%eax, (%ecx)
	xorl	%eax, %eax
	movl	%eax, 4(%ecx)
	movl	%eax, 8(%ecx)
	movl	%eax, 12(%ecx)

	incl	%edx                   # extend the hw window
	andl	$MQ_RX_RING-1, %edx
	movl	%edx, Q_RX_TAIL(%edi)
	movl	12(%ebp), %eax
	shll	$6, %eax
	addl	AD_REGS(%ebx), %eax
	movl	%edx, MQ_RXQ_BASE+MQ_Q_TAIL(%eax)

	movl	AD_NETDEV(%ebx), %edx  # stats
	incl	ND_RX_PACKETS(%edx)
	movl	-4(%ebp), %eax
	addl	%eax, ND_RX_BYTES(%edx)

	incl	%esi                   # advance head
	andl	$MQ_RX_RING-1, %esi
	jmp	.Lmrx_loop

.Lmrx_nomem:
	movl	AD_NETDEV(%ebx), %edx  # buffer hole: count an rx error and
	incl	ND_RX_ERRORS(%edx)     # leave the window one short
	incl	ND_RX_PACKETS(%edx)    # stats still count the delivery
	movl	-4(%ebp), %eax
	addl	%eax, ND_RX_BYTES(%edx)
	incl	%esi
	andl	$MQ_RX_RING-1, %esi
	jmp	.Lmrx_loop

.Lmrx_done:
	movl	%esi, Q_RX_HEAD(%edi)
	popl	%edi
	popl	%esi
	popl	%ebx
	movl	%ebp, %esp
	popl	%ebp
	ret

# ---------------------------------------------------------------------------
# mqnic_watchdog(netdev)  — VM-instance-only periodic work (§3.1):
# link supervision and hardware statistics harvest.
# ---------------------------------------------------------------------------
	.globl	mqnic_watchdog
mqnic_watchdog:
	pushl	%ebp
	movl	%esp, %ebp
	pushl	%ebx
	pushl	%esi

	movl	8(%ebp), %esi          # netdev
	movl	ND_PRIV(%esi), %ebx

	movl	AD_REGS(%ebx), %ecx    # link state
	movl	MQ_STATUS(%ecx), %eax
	testl	$STATUS_LU, %eax
	jne	.Lmwd_link_up
	pushl	%esi
	call	netif_carrier_off
	addl	$4, %esp
	jmp	.Lmwd_stats
.Lmwd_link_up:
	pushl	%esi
	call	netif_carrier_on
	addl	$4, %esp

.Lmwd_stats:
	movl	AD_REGS(%ebx), %ecx    # harvest hardware counters
	movl	MQ_GPTC(%ecx), %eax
	addl	%eax, AD_GPTC(%ebx)
	movl	MQ_GPRC(%ecx), %eax
	addl	%eax, AD_GPRC(%ebx)
	movl	MQ_MPC(%ecx), %eax
	addl	%eax, AD_MPC(%ebx)

	movl	jiffies, %eax          # re-arm
	addl	$2, %eax
	pushl	%eax
	leal	AD_WDT(%ebx), %eax
	pushl	%eax
	call	mod_timer
	addl	$8, %esp

	xorl	%eax, %eax
	popl	%esi
	popl	%ebx
	popl	%ebp
	ret

# ---------------------------------------------------------------------------
# Configuration / management entry points (VM instance only).
# ---------------------------------------------------------------------------
	.globl	mqnic_get_stats
mqnic_get_stats:
	movl	4(%esp), %eax
	addl	$ND_TX_PACKETS, %eax
	ret

# ---------------------------------------------------------------------------
# mqnic_close(netdev)
# Locals: -4 skb
# ---------------------------------------------------------------------------
	.globl	mqnic_close
mqnic_close:
	pushl	%ebp
	movl	%esp, %ebp
	subl	$4, %esp
	pushl	%ebx
	pushl	%esi
	pushl	%edi

	movl	8(%ebp), %esi
	movl	ND_PRIV(%esi), %ebx

	pushl	%esi
	call	netif_stop_queue
	addl	$4, %esp

	movl	AD_REGS(%ebx), %ecx    # quiesce the hardware
	movl	$0xffffffff, %eax
	movl	%eax, MQ_IMC(%ecx)
	xorl	%eax, %eax
	movl	%eax, MQ_RCTL(%ecx)
	movl	%eax, MQ_TCTL(%ecx)

	pushl	%esi                   # release the interrupt
	pushl	AD_IRQ(%ebx)
	call	free_irq
	addl	$8, %esp

	leal	AD_WDT(%ebx), %eax
	pushl	%eax
	call	del_timer_sync
	addl	$4, %esp

	xorl	%edi, %edi             # free every queue's RX buffers
.Lmcl_qloop:
	cmpl	AD_NQUEUES(%ebx), %edi
	je	.Lmcl_qdone
	xorl	%esi, %esi
.Lmcl_slot:
	cmpl	$MQ_RX_RING, %esi
	je	.Lmcl_slot_done
	movl	%edi, %edx             # recompute the block (calls clobber edx)
	shll	$6, %edx
	addl	%ebx, %edx
	addl	$AD_Q, %edx
	movl	Q_RXBI(%edx), %ecx
	movl	(%ecx,%esi,8), %eax
	testl	%eax, %eax
	je	.Lmcl_next
	movl	%eax, -4(%ebp)
	pushl	$1
	pushl	$SKB_BUF_SIZE
	pushl	4(%ecx,%esi,8)
	pushl	AD_NETDEV(%ebx)
	call	dma_unmap_single
	addl	$16, %esp
	pushl	-4(%ebp)
	call	dev_kfree_skb_any
	addl	$4, %esp
	movl	%edi, %edx
	shll	$6, %edx
	addl	%ebx, %edx
	addl	$AD_Q, %edx
	movl	Q_RXBI(%edx), %ecx
	movl	$0, (%ecx,%esi,8)
.Lmcl_next:
	incl	%esi
	jmp	.Lmcl_slot
.Lmcl_slot_done:
	incl	%edi
	jmp	.Lmcl_qloop
.Lmcl_qdone:
	xorl	%eax, %eax
	popl	%edi
	popl	%esi
	popl	%ebx
	movl	%ebp, %esp
	popl	%ebp
	ret
`
