package mqnic

import (
	"twindrivers/internal/drivermodel"
	"twindrivers/internal/mem"
)

// TxHeaderSplit is the transmit scatter/gather split: the hypervisor
// copies up to this many header bytes into the pooled dom0 sk_buff and
// chains the rest of the guest packet as a page fragment (the mqnic's
// two-descriptor transmit matches the e1000's in this respect).
const TxHeaderSplit = 96

// Equates are the MQ_* device constants the driver source needs; the
// values come straight from the device model's constants so the driver
// and the simulated hardware cannot drift apart. Constants the mqnic
// shares with the e1000 by value (CTRL_RST, DESC_DD, the TXD_CMD_* bits,
// ...) already ship with kernel.Equates() under the same names.
func Equates() map[string]int32 {
	return map[string]int32{
		"MQ_CTRL":   RegCTRL,
		"MQ_STATUS": RegSTATUS,
		"MQ_ICR":    RegICR,
		"MQ_IMS":    RegIMS,
		"MQ_IMC":    RegIMC,
		"MQ_RCTL":   RegRCTL,
		"MQ_TCTL":   RegTCTL,
		"MQ_GPTC":   RegGPTC,
		"MQ_GPRC":   RegGPRC,
		"MQ_MPC":    RegMPC,
		"MQ_RAL":    RegRAL,
		"MQ_RAH":    RegRAH,

		"MQ_RXQ_BASE": RxQBase,
		"MQ_TXQ_BASE": TxQBase,
		"MQ_Q_BAL":    QRegBAL,
		"MQ_Q_LEN":    QRegLEN,
		"MQ_Q_HEAD":   QRegHEAD,
		"MQ_Q_TAIL":   QRegTAIL,

		"MQ_INT_RX_ALL": IntRxAll,
		"MQ_INT_TX_ALL": IntTxAll,
		"MQ_INT_TX0":    0x100,
		"MQ_INT_LSC":    IntLSC,

		"MQ_NQ":         NumQueues,
		"MQ_TX_RING":    TxRing,
		"MQ_RX_RING":    RxRing,
		"MQ_RING_BYTES": RingBytes,
		"MQ_BI_BYTES":   8 * TxRing, // buffer_info: {skb, dma} per slot
	}
}

var model = &drivermodel.Model{
	Name:        "mqnic",
	Source:      Source,
	AdapterSize: AdapterSize,
	MMIOPages:   MMIOPages,
	Equates:     Equates(),
	Entries: drivermodel.Entries{
		Probe:    FnProbe,
		Open:     FnOpen,
		Close:    FnClose,
		Xmit:     FnXmit,
		Intr:     FnIntr,
		Stats:    FnGetStats,
		Watchdog: FnWatchdog,
	},
	Geometry: drivermodel.Geometry{
		TxSlots:   TxRing,
		RxSlots:   RxRing,
		DescBytes: DescSize,
	},
	Queues:        NumQueues,
	TxHeaderSplit: TxHeaderSplit,
	NewDevice: func(name string, phys *mem.Physical, macLast byte) drivermodel.Device {
		return New(name, phys, macLast)
	},
	// The probe takes the queue-pair count as a fourth argument; the
	// configuration log records and replays exactly these words.
	ProbeArgs: func(netdev, mmioPhys, irq uint32) []uint32 {
		return []uint32{netdev, mmioPhys, irq, NumQueues}
	},
}

func init() { drivermodel.Register(model) }

// DriverModel returns the mqnic backend's driver model.
func DriverModel() *drivermodel.Model { return model }
