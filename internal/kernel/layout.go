package kernel

import "twindrivers/internal/nic"

// Simulated-memory structure layouts. These constants are the single
// source of truth: Go code indexes structures with them AND they are
// injected into driver assembly as .equ constants (Equates), so the driver
// and the kernel cannot disagree about offsets.

// sk_buff layout (simplified from struct sk_buff; 64 bytes).
const (
	SkbNext     = 0  // next skb in a queue
	SkbDev      = 4  // owning net_device
	SkbData     = 8  // current data pointer
	SkbLen      = 12 // data length
	SkbHead     = 16 // start of the buffer
	SkbEnd      = 20 // end of the buffer
	SkbProtocol = 24 // ethernet protocol (set by eth_type_trans)
	SkbTruesize = 28
	SkbNrFrags  = 32 // number of page fragments (0 or 1 here)
	SkbFragPage = 36 // fragment page address (dom0 virtual)
	SkbFragOff  = 40 // offset within the fragment page
	SkbFragSize = 44 // fragment length
	SkbDma      = 48 // stashed DMA handle (driver-private use)
	SkbRefcnt   = 52 // reference count (the pool "refcount trick", §4.3)
	SkbPool     = 56 // nonzero for hypervisor-pool skbs
	SkbQueue    = 60 // transmit queue mapping (multi-queue devices)
	SkbSize     = 64 // size of the structure

	// SkbBufSize is the byte size of the linear data buffer allocated
	// behind each sk_buff.
	SkbBufSize = 2048
)

// net_device layout (simplified from struct net_device; 64 bytes).
const (
	NdBase      = 0  // ioremapped MMIO base (dom0 virtual)
	NdIrq       = 4  // interrupt number
	NdFlags     = 8  // bit 0: queue stopped
	NdXmit      = 12 // hard_start_xmit function pointer
	NdPriv      = 16 // driver private area pointer
	NdTxPackets = 20 // stats
	NdTxBytes   = 24
	NdRxPackets = 28
	NdRxBytes   = 32
	NdTxErrors  = 36
	NdRxErrors  = 40
	NdMac       = 44 // 6 bytes of station address
	NdMtu       = 52
	NdWatchdog  = 56 // driver watchdog timer address (convenience slot)
	NdSize      = 64
)

// Timer layout (simplified struct timer_list).
const (
	TimerFn      = 0 // callback function pointer
	TimerData    = 4 // callback argument
	TimerExpires = 8 // expiry in jiffies
	TimerSize    = 12
)

// Flags in NdFlags.
const (
	NdFlagQueueStopped = 1 << 0
	NdFlagUp           = 1 << 1
)

// Equates exposes every layout constant (and the NIC register map) to
// driver assembly.
func Equates() map[string]int32 {
	return map[string]int32{
		"SKB_NEXT": SkbNext, "SKB_DEV": SkbDev, "SKB_DATA": SkbData,
		"SKB_LEN": SkbLen, "SKB_HEAD": SkbHead, "SKB_END": SkbEnd,
		"SKB_PROTOCOL": SkbProtocol, "SKB_TRUESIZE": SkbTruesize,
		"SKB_NR_FRAGS": SkbNrFrags, "SKB_FRAG_PAGE": SkbFragPage,
		"SKB_FRAG_OFF": SkbFragOff, "SKB_FRAG_SIZE": SkbFragSize,
		"SKB_DMA": SkbDma, "SKB_REFCNT": SkbRefcnt, "SKB_POOL": SkbPool,
		"SKB_QUEUE": SkbQueue,
		"SKB_SIZE":  SkbSize, "SKB_BUF_SIZE": SkbBufSize,

		"ND_BASE": NdBase, "ND_IRQ": NdIrq, "ND_FLAGS": NdFlags,
		"ND_XMIT": NdXmit, "ND_PRIV": NdPriv,
		"ND_TX_PACKETS": NdTxPackets, "ND_TX_BYTES": NdTxBytes,
		"ND_RX_PACKETS": NdRxPackets, "ND_RX_BYTES": NdRxBytes,
		"ND_TX_ERRORS": NdTxErrors, "ND_RX_ERRORS": NdRxErrors,
		"ND_MAC": NdMac, "ND_MTU": NdMtu, "ND_WATCHDOG": NdWatchdog,
		"ND_SIZE": NdSize,

		"TIMER_FN": TimerFn, "TIMER_DATA": TimerData,
		"TIMER_EXPIRES": TimerExpires, "TIMER_SIZE": TimerSize,

		"E1000_CTRL": nic.RegCTRL, "E1000_STATUS": nic.RegSTATUS,
		"E1000_ICR": nic.RegICR, "E1000_IMS": nic.RegIMS, "E1000_IMC": nic.RegIMC,
		"E1000_RCTL": nic.RegRCTL, "E1000_TCTL": nic.RegTCTL,
		"E1000_RDBAL": nic.RegRDBAL, "E1000_RDLEN": nic.RegRDLEN,
		"E1000_RDH": nic.RegRDH, "E1000_RDT": nic.RegRDT,
		"E1000_TDBAL": nic.RegTDBAL, "E1000_TDLEN": nic.RegTDLEN,
		"E1000_TDH": nic.RegTDH, "E1000_TDT": nic.RegTDT,
		"E1000_GPRC": nic.RegGPRC, "E1000_GPTC": nic.RegGPTC,
		"E1000_MPC": nic.RegMPC, "E1000_CRCERRS": nic.RegCRCERRS,
		"E1000_RAL": nic.RegRAL, "E1000_RAH": nic.RegRAH,

		"DESC_SIZE":   nic.DescSize,
		"TXD_CMD_EOP": nic.TxCmdEOP, "TXD_CMD_RS": nic.TxCmdRS,
		"DESC_DD": nic.DescDD, "RXD_ST_EOP": nic.RxStEOP,
		"RCTL_EN": nic.RctlEN, "TCTL_EN": nic.TctlEN,
		"STATUS_LU": nic.StatusLU, "CTRL_RST": nic.CtrlRST,
		"INT_TXDW": nic.IntTXDW, "INT_RXT0": nic.IntRXT0, "INT_LSC": nic.IntLSC,
	}
}
