// Package kernel is the dom0 (Linux-like) kernel substrate: a heap, the
// sk_buff slab, net_device objects, timers, interrupt dispatch, and — most
// importantly for TwinDrivers — the driver support routine symbol table
// that both driver instances link against.
//
// The VM driver instance calls these routines directly (it runs in dom0);
// the hypervisor driver instance reaches the same implementations through
// upcall stubs for every routine the hypervisor does not reimplement
// (§4.2/§4.3 of the paper). Reusing this body of code instead of porting
// it is the software-engineering payoff the paper quantifies at 851 lines
// versus the whole support library.
package kernel

import (
	"fmt"
	"sort"

	"twindrivers/internal/cost"
	"twindrivers/internal/cpu"
	"twindrivers/internal/cycles"
	"twindrivers/internal/isa"
	"twindrivers/internal/mem"
	"twindrivers/internal/xen"
)

// Kernel is the dom0 kernel instance.
type Kernel struct {
	HV  *xen.Hypervisor
	Dom *xen.Domain

	// OnNetifRx, when set, receives every skb passed to netif_rx (the
	// protocol stack). Otherwise skbs queue on Backlog.
	OnNetifRx func(skb uint32)

	// Backlog holds netif_rx'd skbs awaiting the stack.
	Backlog []uint32

	// Counts tallies support-routine invocations by name (Table 1 data).
	Counts map[string]uint64

	// JiffiesAddr is the dom0 address of the jiffies tick counter.
	JiffiesAddr uint32

	syms     map[string]uint32     // function name -> gate address
	impls    map[string]cpu.Extern // function name -> wrapped implementation
	dataSyms map[string]uint32     // kernel data symbol -> dom0 address
	gateName map[uint32]string

	skbFree   []uint32
	ioNext    uint32
	timers    []uint32 // timer struct addresses with pending expiry
	irqs      map[uint32]irqReg
	netdevs   []uint32
	printkLog int
}

type irqReg struct {
	handler uint32
	dev     uint32
}

// New creates the dom0 kernel over an existing hypervisor/domain pair and
// registers the full support-routine symbol table.
func New(hv *xen.Hypervisor, dom *xen.Domain) *Kernel {
	k := &Kernel{
		HV: hv, Dom: dom,
		Counts:   make(map[string]uint64),
		syms:     make(map[string]uint32),
		impls:    make(map[string]cpu.Extern),
		dataSyms: make(map[string]uint32),
		gateName: make(map[uint32]string),
		ioNext:   0xCF080000, // staggered: avoids stlb index collision with heap base
		irqs:     make(map[uint32]irqReg),
	}
	k.JiffiesAddr = hv.AllocHeap(dom, 4)
	k.dataSyms["jiffies"] = k.JiffiesAddr
	k.registerSymbols()
	return k
}

// Resolver returns a symbol resolver binding driver imports to kernel
// gates and kernel data (the dom0 module loader's job).
func (k *Kernel) Resolver() func(string) (uint32, bool) {
	return func(sym string) (uint32, bool) {
		if a, ok := k.syms[sym]; ok {
			return a, true
		}
		if a, ok := k.dataSyms[sym]; ok {
			return a, true
		}
		return 0, false
	}
}

// SymbolAddr returns the gate address of a support routine.
func (k *Kernel) SymbolAddr(name string) (uint32, bool) {
	a, ok := k.syms[name]
	return a, ok
}

// SymbolNames returns every registered support routine, sorted. The length
// of this list is this kernel's analogue of the paper's "97 routines
// called by the e1000 driver for all its operations".
func (k *Kernel) SymbolNames() []string {
	out := make([]string, 0, len(k.syms))
	for n := range k.syms {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IsSupportRoutine reports whether name is a registered function symbol.
func (k *Kernel) IsSupportRoutine(name string) bool {
	_, ok := k.syms[name]
	return ok
}

// Extern returns the wrapped native implementation of a support routine.
// The dom0 upcall handler invokes it directly on the caller's cdecl frame
// ("the environment in which the driver support routine is called from the
// upcall handler must be identical", §4.2).
func (k *Kernel) Extern(name string) (cpu.Extern, bool) {
	fn, ok := k.impls[name]
	return fn, ok
}

// bind registers one support routine: the gate charges its cycle price to
// the dom0 bucket and counts the call.
func (k *Kernel) bind(name string, cyc uint64, fn func(c *cpu.CPU) (uint32, error)) {
	wrapped := func(c *cpu.CPU) (uint32, error) {
		k.Counts[name]++
		c.Meter.AddTo(cycles.CompDom0, cyc)
		if fn == nil {
			return 0, nil
		}
		return fn(c)
	}
	gate := k.HV.BindGate(name, wrapped)
	k.syms[name] = gate
	k.impls[name] = wrapped
	k.gateName[gate] = name
}

// Alloc allocates n bytes of dom0 kernel heap.
func (k *Kernel) Alloc(n uint32) uint32 { return k.HV.AllocHeap(k.Dom, n) }

// Load/Store convenience accessors into dom0 memory.
func (k *Kernel) load(addr uint32) uint32 {
	v, err := k.Dom.AS.Load(addr, 4)
	if err != nil {
		panic(fmt.Sprintf("kernel: load %#x: %v", addr, err))
	}
	return v
}

func (k *Kernel) store(addr, val uint32) {
	if err := k.Dom.AS.Store(addr, 4, val); err != nil {
		panic(fmt.Sprintf("kernel: store %#x: %v", addr, err))
	}
}

// Tick advances jiffies by one.
func (k *Kernel) Tick() { k.store(k.JiffiesAddr, k.load(k.JiffiesAddr)+1) }

// Jiffies reads the tick counter.
func (k *Kernel) Jiffies() uint32 { return k.load(k.JiffiesAddr) }

// --- sk_buff management -----------------------------------------------

// AllocSkb allocates an sk_buff plus data buffer from the dom0 heap (or
// the free list) and initialises it. Native-side twin of netdev_alloc_skb.
func (k *Kernel) AllocSkb(dev uint32) uint32 {
	var skb uint32
	if n := len(k.skbFree); n > 0 {
		skb = k.skbFree[n-1]
		k.skbFree = k.skbFree[:n-1]
		buf := k.load(skb + SkbHead)
		for i := uint32(0); i < SkbSize; i += 4 {
			k.store(skb+i, 0)
		}
		k.store(skb+SkbHead, buf)
		k.store(skb+SkbData, buf)
		k.store(skb+SkbEnd, buf+SkbBufSize)
	} else {
		skb = k.Alloc(SkbSize)
		buf := k.Alloc(SkbBufSize)
		for i := uint32(0); i < SkbSize; i += 4 {
			k.store(skb+i, 0)
		}
		k.store(skb+SkbHead, buf)
		k.store(skb+SkbData, buf)
		k.store(skb+SkbEnd, buf+SkbBufSize)
	}
	k.store(skb+SkbDev, dev)
	k.store(skb+SkbTruesize, SkbSize+SkbBufSize)
	k.store(skb+SkbRefcnt, 1)
	return skb
}

// FreeSkb releases an sk_buff to the free list (pool skbs are left to the
// pool owner — the hypervisor's refcount trick keeps dom0 from reclaiming
// them, §4.3).
func (k *Kernel) FreeSkb(skb uint32) {
	if k.load(skb+SkbPool) != 0 {
		// Pool-owned: drop the reference; the pool reclaims it.
		rc := k.load(skb + SkbRefcnt)
		if rc > 0 {
			k.store(skb+SkbRefcnt, rc-1)
		}
		return
	}
	k.skbFree = append(k.skbFree, skb)
}

// SkbPut writes payload into an skb's linear buffer and sets its length.
func (k *Kernel) SkbPut(skb uint32, payload []byte) error {
	data := k.load(skb + SkbData)
	if err := k.Dom.AS.WriteBytes(data, payload); err != nil {
		return err
	}
	k.store(skb+SkbLen, uint32(len(payload)))
	return nil
}

// SkbBytes reads an skb's payload (linear part plus one fragment).
func (k *Kernel) SkbBytes(skb uint32) ([]byte, error) {
	data := k.load(skb + SkbData)
	ln := k.load(skb + SkbLen)
	lin := ln
	var frag []byte
	if k.load(skb+SkbNrFrags) > 0 {
		fsz := k.load(skb + SkbFragSize)
		lin = ln - fsz
		fp := k.load(skb+SkbFragPage) + k.load(skb+SkbFragOff)
		var err error
		frag, err = k.Dom.AS.ReadBytes(fp, int(fsz))
		if err != nil {
			return nil, err
		}
	}
	head, err := k.Dom.AS.ReadBytes(data, int(lin))
	if err != nil {
		return nil, err
	}
	return append(head, frag...), nil
}

// --- net_device management ---------------------------------------------

// AllocNetdev allocates a net_device plus private area.
func (k *Kernel) AllocNetdev(privSize uint32) uint32 {
	nd := k.Alloc(NdSize)
	priv := k.Alloc(privSize)
	for i := uint32(0); i < NdSize; i += 4 {
		k.store(nd+i, 0)
	}
	k.store(nd+NdPriv, priv)
	k.store(nd+NdMtu, cost.MTU)
	return nd
}

// Netdevs lists registered devices.
func (k *Kernel) Netdevs() []uint32 { return k.netdevs }

// DropNetdev removes a device from the registered list. Replaying a
// driver's probe re-runs register_netdev for the same net_device; the
// recovery path drops the stale registration first so the list does not
// accumulate duplicates across restarts.
func (k *Kernel) DropNetdev(nd uint32) {
	for i, d := range k.netdevs {
		if d == nd {
			k.netdevs = append(k.netdevs[:i], k.netdevs[i+1:]...)
			return
		}
	}
}

// NetdevStat reads one of the ND stats slots.
func (k *Kernel) NetdevStat(nd, off uint32) uint32 { return k.load(nd + off) }

// --- interrupt and timer dispatch ---------------------------------------

// DispatchIRQ runs the registered interrupt handler for irq in dom0
// context (the native-Linux / dom0 configurations' IRQ path). The caller
// must already have switched to dom0.
func (k *Kernel) DispatchIRQ(c *cpu.CPU, irq uint32) error {
	reg, ok := k.irqs[irq]
	if !ok {
		return fmt.Errorf("kernel: spurious irq %d", irq)
	}
	c.Meter.AddTo(cycles.CompDom0, cost.IrqOverhead)
	c.Meter.PushComponent(cycles.CompDriver)
	defer c.Meter.PopComponent()
	_, err := c.Call(reg.handler, irq, reg.dev)
	return err
}

// HasIRQ reports whether a handler is registered for irq.
func (k *Kernel) HasIRQ(irq uint32) bool {
	_, ok := k.irqs[irq]
	return ok
}

// RunTimers fires every timer whose expiry has passed, calling the driver
// function in dom0 context (the VM instance's watchdog/error paths).
func (k *Kernel) RunTimers(c *cpu.CPU) error {
	now := k.Jiffies()
	// Partition first: callbacks may re-arm (mod_timer appends to the
	// list while we run).
	var due, rest []uint32
	for _, tm := range k.timers {
		if k.load(tm+TimerExpires) <= now {
			due = append(due, tm)
		} else {
			rest = append(rest, tm)
		}
	}
	k.timers = rest
	for _, tm := range due {
		fn := k.load(tm + TimerFn)
		data := k.load(tm + TimerData)
		c.Meter.AddTo(cycles.CompDom0, cost.TimerOp)
		c.Meter.PushComponent(cycles.CompDriver)
		_, err := c.Call(fn, data)
		c.Meter.PopComponent()
		if err != nil {
			return err
		}
	}
	return nil
}

// PendingTimers reports the number of armed timers.
func (k *Kernel) PendingTimers() int { return len(k.timers) }

// PopBacklog removes and returns the oldest netif_rx'd skb.
func (k *Kernel) PopBacklog() (uint32, bool) {
	if len(k.Backlog) == 0 {
		return 0, false
	}
	skb := k.Backlog[0]
	k.Backlog = k.Backlog[1:]
	return skb, true
}

// ethTypeTrans is shared by the gate implementation and the hypervisor's
// reimplementation test oracle: pull the 14-byte header, set protocol.
func ethTypeTrans(space *mem.AddressSpace, skb, dev uint32) uint32 {
	load := func(a uint32) uint32 { v, _ := space.Load(a, 4); return v }
	data := load(skb + SkbData)
	proto, _ := space.Load(data+12, 2)
	proto = (proto>>8 | proto<<8) & 0xFFFF // network byte order
	space.Store(skb+SkbData, 4, data+14)
	space.Store(skb+SkbLen, 4, load(skb+SkbLen)-14)
	space.Store(skb+SkbProtocol, 4, proto)
	space.Store(skb+SkbDev, 4, dev)
	return proto
}

// Regs convenience: argument access with names.
func arg(c *cpu.CPU, i int) uint32 { return c.Arg(i) }

var _ = isa.EAX // keep isa imported for future register plumbing
