package kernel

import (
	"fmt"

	"twindrivers/internal/cost"
	"twindrivers/internal/cpu"
	"twindrivers/internal/mem"
	"twindrivers/internal/xen"
)

// registerSymbols installs the driver support routine table. The names
// follow the Linux 2.6.18 driver API the paper's e1000 driver uses; the
// ten routines of Table 1 carry real behaviour (they run on the fast
// path), as do the initialisation-time allocators; the long tail of
// management helpers is priced but behaviourally trivial — exactly the
// part of the support library TwinDrivers avoids reimplementing in the
// hypervisor.
func (k *Kernel) registerSymbols() {
	// --- Table 1: the fast-path ten -------------------------------------
	k.bind("netdev_alloc_skb", cost.SkbAlloc, func(c *cpu.CPU) (uint32, error) {
		return k.AllocSkb(arg(c, 0)), nil
	})
	k.bind("dev_kfree_skb_any", cost.SkbFree, func(c *cpu.CPU) (uint32, error) {
		k.FreeSkb(arg(c, 0))
		return 0, nil
	})
	k.bind("netif_rx", cost.NetifRx, func(c *cpu.CPU) (uint32, error) {
		skb := arg(c, 0)
		if k.OnNetifRx != nil {
			k.OnNetifRx(skb)
		} else {
			k.Backlog = append(k.Backlog, skb)
		}
		return 0, nil
	})
	k.bind("dma_map_single", cost.DmaMap, func(c *cpu.CPU) (uint32, error) {
		vaddr := arg(c, 1)
		pa, ok := k.Dom.AS.Translate(vaddr)
		if !ok {
			return 0, fmt.Errorf("kernel: dma_map_single of unmapped %#x", vaddr)
		}
		return pa, nil
	})
	k.bind("dma_map_page", cost.DmaMap, func(c *cpu.CPU) (uint32, error) {
		page, off := arg(c, 1), arg(c, 2)
		pa, ok := k.Dom.AS.Translate(page + off)
		if !ok {
			// Pages below the kernel split belong to guests (chained
			// zero-copy fragments). dom0 resolves them through its
			// physical-to-machine table — the paper's footnote 4: "the
			// DMA mapping driver functions can be even invoked using
			// upcalls and would still work correctly".
			if page < xen.Dom0KernelBase {
				for _, d := range k.HV.Domains {
					if d.ID == k.Dom.ID {
						continue
					}
					if gpa, gok := d.AS.Translate(page + off); gok {
						return gpa, nil
					}
				}
			}
			return 0, fmt.Errorf("kernel: dma_map_page of unmapped %#x", page+off)
		}
		return pa, nil
	})
	k.bind("dma_unmap_single", cost.DmaUnmap, nil)
	k.bind("dma_unmap_page", cost.DmaUnmap, nil)
	k.bind("spin_trylock", cost.SpinLock, func(c *cpu.CPU) (uint32, error) {
		lock := arg(c, 0)
		if k.load(lock) != 0 {
			return 0, nil
		}
		k.store(lock, 1)
		return 1, nil
	})
	k.bind("spin_unlock_irqrestore", cost.SpinUnlock, func(c *cpu.CPU) (uint32, error) {
		k.store(arg(c, 0), 0)
		k.Dom.VirtIRQMasked = false
		return 0, nil
	})
	k.bind("eth_type_trans", cost.EthTypeTrans, func(c *cpu.CPU) (uint32, error) {
		return ethTypeTrans(k.Dom.AS, arg(c, 0), arg(c, 1)), nil
	})

	// --- Locking variants ------------------------------------------------
	k.bind("spin_lock", cost.SpinLock, func(c *cpu.CPU) (uint32, error) {
		k.store(arg(c, 0), 1)
		return 0, nil
	})
	k.bind("spin_unlock", cost.SpinUnlock, func(c *cpu.CPU) (uint32, error) {
		k.store(arg(c, 0), 0)
		return 0, nil
	})
	k.bind("spin_lock_irqsave", cost.SpinLock, func(c *cpu.CPU) (uint32, error) {
		flags := uint32(0)
		if k.Dom.VirtIRQMasked {
			flags = 1
		}
		k.Dom.VirtIRQMasked = true
		k.store(arg(c, 0), 1)
		return flags, nil
	})
	k.bind("spin_lock_init", cost.MiscSupport, func(c *cpu.CPU) (uint32, error) {
		k.store(arg(c, 0), 0)
		return 0, nil
	})
	k.bind("local_irq_save", cost.MiscSupport, func(c *cpu.CPU) (uint32, error) {
		flags := uint32(0)
		if k.Dom.VirtIRQMasked {
			flags = 1
		}
		k.Dom.VirtIRQMasked = true
		return flags, nil
	})
	k.bind("local_irq_restore", cost.MiscSupport, func(c *cpu.CPU) (uint32, error) {
		k.Dom.VirtIRQMasked = arg(c, 0) != 0
		return 0, nil
	})

	// --- Memory management -----------------------------------------------
	k.bind("kmalloc", cost.KmallocCost, func(c *cpu.CPU) (uint32, error) {
		return k.Alloc(arg(c, 0)), nil
	})
	k.bind("kzalloc", cost.KmallocCost, func(c *cpu.CPU) (uint32, error) {
		n := arg(c, 0)
		a := k.Alloc(n)
		for i := uint32(0); i < n; i += 4 {
			k.store(a+i, 0)
		}
		return a, nil
	})
	k.bind("kfree", cost.MiscSupport, nil)
	k.bind("vmalloc", cost.KmallocCost, func(c *cpu.CPU) (uint32, error) {
		return k.Alloc(arg(c, 0)), nil
	})
	k.bind("vfree", cost.MiscSupport, nil)
	k.bind("dma_alloc_coherent", cost.KmallocCost, func(c *cpu.CPU) (uint32, error) {
		// args: size, *dma_handle. Page-aligned allocation; the physical
		// (machine) address is stored through the handle pointer.
		size := arg(c, 0)
		handle := arg(c, 1)
		pages := (size + mem.PageSize - 1) / mem.PageSize
		va := k.Alloc(pages*mem.PageSize + mem.PageSize)
		va = (va + mem.PageSize - 1) &^ uint32(mem.PageMask)
		pa, ok := k.Dom.AS.Translate(va)
		if !ok {
			return 0, fmt.Errorf("kernel: dma_alloc_coherent: unmapped heap at %#x", va)
		}
		k.store(handle, pa)
		return va, nil
	})
	k.bind("dma_free_coherent", cost.MiscSupport, nil)
	k.bind("get_free_page", cost.KmallocCost, func(c *cpu.CPU) (uint32, error) {
		va := k.Alloc(2 * mem.PageSize)
		return (va + mem.PageSize - 1) &^ uint32(mem.PageMask), nil
	})
	k.bind("memcpy_kernel", cost.MiscSupport, func(c *cpu.CPU) (uint32, error) {
		dst, src, n := arg(c, 0), arg(c, 1), arg(c, 2)
		c.Meter.AddTo("dom0", uint64(n))
		return dst, mem.Copy(k.Dom.AS, dst, k.Dom.AS, src, int(n))
	})

	// --- Device registration / PCI ---------------------------------------
	k.bind("alloc_etherdev", cost.KmallocCost, func(c *cpu.CPU) (uint32, error) {
		return k.AllocNetdev(arg(c, 0)), nil
	})
	k.bind("register_netdev", cost.MiscSupport, func(c *cpu.CPU) (uint32, error) {
		nd := arg(c, 0)
		k.netdevs = append(k.netdevs, nd)
		k.store(nd+NdFlags, k.load(nd+NdFlags)|NdFlagUp)
		return 0, nil
	})
	k.bind("unregister_netdev", cost.MiscSupport, nil)
	k.bind("free_netdev", cost.MiscSupport, nil)
	k.bind("ioremap", cost.MiscSupport, func(c *cpu.CPU) (uint32, error) {
		pa, size := arg(c, 0), arg(c, 1)
		pages := int((size + mem.PageSize - 1) / mem.PageSize)
		va := k.ioNext
		k.ioNext += uint32(pages+1) * mem.PageSize
		k.Dom.AS.MapRange(va, pa/mem.PageSize, pages)
		return va + pa&mem.PageMask, nil
	})
	k.bind("iounmap", cost.MiscSupport, nil)
	for _, name := range []string{
		"pci_enable_device", "pci_disable_device", "pci_set_master",
		"pci_request_regions", "pci_release_regions", "pci_set_dma_mask",
		"pci_save_state", "pci_restore_state", "pci_find_capability",
		"pci_read_config_word", "pci_write_config_word",
	} {
		k.bind(name, cost.MiscSupport, nil)
	}

	// --- IRQ / queue control ----------------------------------------------
	k.bind("request_irq", cost.MiscSupport, func(c *cpu.CPU) (uint32, error) {
		irq, handler, dev := arg(c, 0), arg(c, 1), arg(c, 4)
		k.irqs[irq] = irqReg{handler: handler, dev: dev}
		return 0, nil
	})
	k.bind("free_irq", cost.MiscSupport, func(c *cpu.CPU) (uint32, error) {
		delete(k.irqs, arg(c, 0))
		return 0, nil
	})
	k.bind("enable_irq", cost.MiscSupport, nil)
	k.bind("disable_irq", cost.MiscSupport, nil)
	k.bind("netif_start_queue", cost.MiscSupport, func(c *cpu.CPU) (uint32, error) {
		nd := arg(c, 0)
		k.store(nd+NdFlags, k.load(nd+NdFlags)&^uint32(NdFlagQueueStopped))
		return 0, nil
	})
	k.bind("netif_stop_queue", cost.MiscSupport, func(c *cpu.CPU) (uint32, error) {
		nd := arg(c, 0)
		k.store(nd+NdFlags, k.load(nd+NdFlags)|NdFlagQueueStopped)
		return 0, nil
	})
	k.bind("netif_wake_queue", cost.MiscSupport, func(c *cpu.CPU) (uint32, error) {
		nd := arg(c, 0)
		k.store(nd+NdFlags, k.load(nd+NdFlags)&^uint32(NdFlagQueueStopped))
		return 0, nil
	})
	k.bind("netif_queue_stopped", cost.MiscSupport, func(c *cpu.CPU) (uint32, error) {
		return k.load(arg(c, 0)+NdFlags) & NdFlagQueueStopped, nil
	})
	k.bind("netif_carrier_on", cost.MiscSupport, nil)
	k.bind("netif_carrier_off", cost.MiscSupport, nil)
	k.bind("netif_carrier_ok", cost.MiscSupport, func(c *cpu.CPU) (uint32, error) {
		return 1, nil
	})

	// --- Timers / delays ---------------------------------------------------
	k.bind("init_timer", cost.TimerOp, func(c *cpu.CPU) (uint32, error) {
		tm := arg(c, 0)
		k.store(tm+TimerExpires, 0)
		return 0, nil
	})
	k.bind("mod_timer", cost.TimerOp, func(c *cpu.CPU) (uint32, error) {
		tm, expires := arg(c, 0), arg(c, 1)
		k.store(tm+TimerExpires, expires)
		for _, t := range k.timers {
			if t == tm {
				return 1, nil
			}
		}
		k.timers = append(k.timers, tm)
		return 0, nil
	})
	k.bind("del_timer", cost.TimerOp, func(c *cpu.CPU) (uint32, error) {
		tm := arg(c, 0)
		for i, t := range k.timers {
			if t == tm {
				k.timers = append(k.timers[:i], k.timers[i+1:]...)
				return 1, nil
			}
		}
		return 0, nil
	})
	k.bind("del_timer_sync", cost.TimerOp, func(c *cpu.CPU) (uint32, error) {
		tm := arg(c, 0)
		for i, t := range k.timers {
			if t == tm {
				k.timers = append(k.timers[:i], k.timers[i+1:]...)
				return 1, nil
			}
		}
		return 0, nil
	})
	k.bind("msleep", cost.MiscSupport, nil)
	k.bind("mdelay", cost.MiscSupport, nil)
	k.bind("udelay", cost.MiscSupport, nil)
	k.bind("schedule_work", cost.MiscSupport, nil)

	// --- Diagnostics / misc -------------------------------------------------
	k.bind("printk", cost.MiscSupport, func(c *cpu.CPU) (uint32, error) {
		k.printkLog++
		return 0, nil
	})
	for _, name := range []string{
		"dump_stack", "warn_on_slowpath", "capable", "dev_alloc_name",
		"eth_validate_addr", "ethtool_op_get_link", "ethtool_op_get_tx_csum",
		"ethtool_op_set_tx_csum", "ethtool_op_get_sg", "ethtool_op_set_sg",
		"mii_ethtool_gset", "mii_ethtool_sset", "mii_check_link",
		"generic_mii_ioctl", "crc32_le", "random_ether_addr",
		"skb_over_panic", "skb_under_panic", "dev_close", "dev_open",
		"call_netdevice_notifiers", "synchronize_irq", "tasklet_init",
		"tasklet_schedule", "tasklet_kill", "round_jiffies",
	} {
		k.bind(name, cost.MiscSupport, nil)
	}

	// is_valid_ether_addr: multicast/zero checks on a MAC pointer.
	k.bind("is_valid_ether_addr", cost.MiscSupport, func(c *cpu.CPU) (uint32, error) {
		a := arg(c, 0)
		b0, err := k.Dom.AS.Load(a, 1)
		if err != nil {
			return 0, err
		}
		any := false
		for i := uint32(0); i < 6; i++ {
			v, err := k.Dom.AS.Load(a+i, 1)
			if err != nil {
				return 0, err
			}
			if v != 0 {
				any = true
			}
		}
		if b0&1 != 0 || !any {
			return 0, nil
		}
		return 1, nil
	})

	// PrintkCount is observable via counts; nothing else to do.
}

// PrintkCount reports how many printk calls the drivers made.
func (k *Kernel) PrintkCount() int { return k.printkLog }
