package kernel

import (
	"bytes"
	"testing"

	"twindrivers/internal/cpu"
	"twindrivers/internal/cycles"
	"twindrivers/internal/isa"
	"twindrivers/internal/mem"
	"twindrivers/internal/xen"
)

func newKernel(t *testing.T) (*xen.Hypervisor, *Kernel) {
	t.Helper()
	hv := xen.New()
	dom0 := hv.CreateDomain(mem.OwnerDom0, "dom0")
	k := New(hv, dom0)
	// A stack so gates are callable.
	top, _, _ := hv.AllocStack(4)
	hv.CPU.Regs[isa.ESP] = top
	return hv, k
}

// callSym invokes a support routine through its gate with cdecl args.
func callSym(t *testing.T, hv *xen.Hypervisor, k *Kernel, name string, args ...uint32) uint32 {
	t.Helper()
	addr, ok := k.SymbolAddr(name)
	if !ok {
		t.Fatalf("no symbol %s", name)
	}
	v, err := hv.CPU.Call(addr, args...)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return v
}

func TestSymbolTableShape(t *testing.T) {
	_, k := newKernel(t)
	names := k.SymbolNames()
	if len(names) < 60 {
		t.Errorf("only %d support routines registered (paper's driver used 97)", len(names))
	}
	// Table 1's ten are all present.
	for _, n := range []string{
		"netdev_alloc_skb", "dev_kfree_skb_any", "netif_rx",
		"dma_map_single", "dma_map_page", "dma_unmap_single",
		"dma_unmap_page", "spin_trylock", "spin_unlock_irqrestore",
		"eth_type_trans",
	} {
		if !k.IsSupportRoutine(n) {
			t.Errorf("missing Table-1 routine %s", n)
		}
		if _, ok := k.Extern(n); !ok {
			t.Errorf("no native implementation handle for %s", n)
		}
	}
}

func TestSkbAllocFreeRecycle(t *testing.T) {
	hv, k := newKernel(t)
	skb := callSym(t, hv, k, "netdev_alloc_skb", 0x1111, SkbBufSize)
	if skb == 0 {
		t.Fatal("alloc returned null")
	}
	if k.load(skb+SkbDev) != 0x1111 {
		t.Error("dev not set")
	}
	data := k.load(skb + SkbData)
	head := k.load(skb + SkbHead)
	end := k.load(skb + SkbEnd)
	if data != head || end != head+SkbBufSize {
		t.Errorf("skb geometry: data=%#x head=%#x end=%#x", data, head, end)
	}
	callSym(t, hv, k, "dev_kfree_skb_any", skb)
	skb2 := callSym(t, hv, k, "netdev_alloc_skb", 0x2222, SkbBufSize)
	if skb2 != skb {
		t.Errorf("free list did not recycle: %#x vs %#x", skb2, skb)
	}
	if k.Counts["netdev_alloc_skb"] != 2 || k.Counts["dev_kfree_skb_any"] != 1 {
		t.Errorf("counts wrong: %v", k.Counts)
	}
}

func TestSkbPutAndBytes(t *testing.T) {
	_, k := newKernel(t)
	skb := k.AllocSkb(0)
	payload := []byte("some packet payload")
	if err := k.SkbPut(skb, payload); err != nil {
		t.Fatal(err)
	}
	got, err := k.SkbBytes(skb)
	if err != nil || !bytes.Equal(got, payload) {
		t.Errorf("SkbBytes = %q, %v", got, err)
	}
	// With a fragment.
	fb := k.Alloc(256)
	k.Dom.AS.WriteBytes(fb, []byte("FRAG"))
	k.store(skb+SkbNrFrags, 1)
	k.store(skb+SkbFragPage, fb)
	k.store(skb+SkbFragOff, 0)
	k.store(skb+SkbFragSize, 4)
	k.store(skb+SkbLen, uint32(len(payload))+4)
	got, err = k.SkbBytes(skb)
	if err != nil || string(got) != "some packet payloadFRAG" {
		t.Errorf("fragged SkbBytes = %q, %v", got, err)
	}
}

func TestDmaMapReturnsMachineAddress(t *testing.T) {
	hv, k := newKernel(t)
	buf := k.Alloc(64)
	pa := callSym(t, hv, k, "dma_map_single", 0, buf, 64, 0)
	want, ok := k.Dom.AS.Translate(buf)
	if !ok || pa != want {
		t.Errorf("dma handle = %#x, want %#x", pa, want)
	}
	pa2 := callSym(t, hv, k, "dma_map_page", 0, buf&^uint32(mem.PageMask), buf&mem.PageMask, 64, 0)
	if pa2 != want {
		t.Errorf("dma_map_page = %#x", pa2)
	}
}

func TestSpinlocks(t *testing.T) {
	hv, k := newKernel(t)
	lock := k.Alloc(4)
	if v := callSym(t, hv, k, "spin_trylock", lock); v != 1 {
		t.Fatal("first trylock failed")
	}
	if v := callSym(t, hv, k, "spin_trylock", lock); v != 0 {
		t.Fatal("second trylock succeeded on held lock")
	}
	k.Dom.VirtIRQMasked = true
	callSym(t, hv, k, "spin_unlock_irqrestore", lock, 0)
	if k.load(lock) != 0 {
		t.Error("lock not released")
	}
	if k.Dom.VirtIRQMasked {
		t.Error("virtual interrupts not restored")
	}
	// irqsave masks.
	callSym(t, hv, k, "spin_lock_irqsave", lock)
	if !k.Dom.VirtIRQMasked {
		t.Error("irqsave did not mask")
	}
}

func TestEthTypeTrans(t *testing.T) {
	hv, k := newKernel(t)
	skb := k.AllocSkb(0)
	frame := make([]byte, 60)
	frame[12], frame[13] = 0x08, 0x06 // ARP
	k.SkbPut(skb, frame)
	proto := callSym(t, hv, k, "eth_type_trans", skb, 0x3333)
	if proto != 0x0806 {
		t.Errorf("proto = %#x", proto)
	}
	if k.load(skb+SkbLen) != 60-14 {
		t.Error("header not pulled")
	}
	if k.load(skb+SkbProtocol) != 0x0806 || k.load(skb+SkbDev) != 0x3333 {
		t.Error("protocol/dev not set")
	}
}

func TestNetifRxBacklogAndHook(t *testing.T) {
	hv, k := newKernel(t)
	skb := k.AllocSkb(0)
	callSym(t, hv, k, "netif_rx", skb)
	got, ok := k.PopBacklog()
	if !ok || got != skb {
		t.Error("backlog path broken")
	}
	var hooked uint32
	k.OnNetifRx = func(s uint32) { hooked = s }
	callSym(t, hv, k, "netif_rx", skb)
	if hooked != skb {
		t.Error("hook not invoked")
	}
	if _, ok := k.PopBacklog(); ok {
		t.Error("hooked skb also queued")
	}
}

func TestTimersFireAndRearm(t *testing.T) {
	hv, k := newKernel(t)
	// A simulated timer callback: a one-instruction function.
	// Use a gate as the "driver function" to observe invocation.
	fired := 0
	gate := hv.BindGate("timer_cb", func(c *cpu.CPU) (uint32, error) {
		fired++
		if fired == 1 {
			// Re-arm from within the callback (mod_timer during run).
			tm := c.Arg(0)
			k.store(tm+TimerExpires, k.Jiffies()+1)
			k.timers = append(k.timers, tm)
		}
		return 0, nil
	})
	tm := k.Alloc(TimerSize)
	k.store(tm+TimerFn, gate)
	k.store(tm+TimerData, tm)
	callSym(t, hv, k, "mod_timer", tm, 1)
	if k.PendingTimers() != 1 {
		t.Fatal("not armed")
	}
	// Not due yet.
	if err := k.RunTimers(hv.CPU); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Error("fired early")
	}
	k.Tick()
	if err := k.RunTimers(hv.CPU); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("fired = %d", fired)
	}
	if k.PendingTimers() != 1 {
		t.Error("re-arm during callback lost")
	}
	k.Tick()
	k.Tick()
	if err := k.RunTimers(hv.CPU); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Errorf("fired = %d after re-arm", fired)
	}
	// del_timer removes.
	callSym(t, hv, k, "mod_timer", tm, 100)
	if v := callSym(t, hv, k, "del_timer", tm); v != 1 {
		t.Error("del_timer missed an armed timer")
	}
	if k.PendingTimers() != 0 {
		t.Error("timer not removed")
	}
}

func TestIoremapRoutesToDevice(t *testing.T) {
	hv, k := newKernel(t)
	dev := &probeMMIO{}
	first := hv.Phys.ClaimMMIO(mem.OwnerDom0, 2, dev)
	va := callSym(t, hv, k, "ioremap", first*mem.PageSize, 2*mem.PageSize)
	if err := k.Dom.AS.Store(va+0x10, 4, 0xABCD); err != nil {
		t.Fatal(err)
	}
	if dev.lastOff != 0x10 || dev.lastVal != 0xABCD {
		t.Errorf("mmio write off=%#x val=%#x", dev.lastOff, dev.lastVal)
	}
}

type probeMMIO struct {
	lastOff, lastVal uint32
}

func (p *probeMMIO) MMIORead(off, size uint32) uint32 { return 0 }
func (p *probeMMIO) MMIOWrite(off, size, val uint32)  { p.lastOff, p.lastVal = off, val }

func TestChargesGoToDom0Bucket(t *testing.T) {
	hv, k := newKernel(t)
	before := hv.Meter.Get(cycles.CompDom0)
	callSym(t, hv, k, "netdev_alloc_skb", 0, SkbBufSize)
	if hv.Meter.Get(cycles.CompDom0) <= before {
		t.Error("support routine cost not charged to dom0")
	}
}

func TestIsValidEtherAddr(t *testing.T) {
	hv, k := newKernel(t)
	mac := k.Alloc(8)
	k.Dom.AS.WriteBytes(mac, []byte{0x00, 0x16, 0x3E, 1, 2, 3})
	if v := callSym(t, hv, k, "is_valid_ether_addr", mac); v != 1 {
		t.Error("valid MAC rejected")
	}
	k.Dom.AS.WriteBytes(mac, []byte{0x01, 0, 0, 0, 0, 1}) // multicast bit
	if v := callSym(t, hv, k, "is_valid_ether_addr", mac); v != 0 {
		t.Error("multicast MAC accepted")
	}
	k.Dom.AS.WriteBytes(mac, []byte{0, 0, 0, 0, 0, 0})
	if v := callSym(t, hv, k, "is_valid_ether_addr", mac); v != 0 {
		t.Error("zero MAC accepted")
	}
}

func TestDmaAllocCoherent(t *testing.T) {
	hv, k := newKernel(t)
	handle := k.Alloc(4)
	va := callSym(t, hv, k, "dma_alloc_coherent", 4096, handle)
	if va&mem.PageMask != 0 {
		t.Errorf("not page aligned: %#x", va)
	}
	pa := k.load(handle)
	want, _ := k.Dom.AS.Translate(va)
	if pa != want {
		t.Errorf("handle = %#x, want %#x", pa, want)
	}
	// The memory is usable.
	if err := k.Dom.AS.Store(va+4092, 4, 1); err != nil {
		t.Error(err)
	}
}

func TestEquatesCoverLayout(t *testing.T) {
	eq := Equates()
	checks := map[string]int32{
		"SKB_DATA": SkbData, "SKB_LEN": SkbLen, "ND_XMIT": NdXmit,
		"E1000_TDT": 0x3818, "DESC_SIZE": 16, "TXD_CMD_EOP": 1,
	}
	for name, want := range checks {
		if eq[name] != want {
			t.Errorf("equate %s = %d, want %d", name, eq[name], want)
		}
	}
	if len(eq) < 40 {
		t.Errorf("only %d equates", len(eq))
	}
}
