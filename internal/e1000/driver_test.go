package e1000

import (
	"strings"
	"testing"

	"twindrivers/internal/asm"
	"twindrivers/internal/kernel"
	"twindrivers/internal/rewrite"
)

func assembleDriver(t *testing.T) *asm.Unit {
	t.Helper()
	u, err := asm.AssembleWithEquates(Source, kernel.Equates())
	if err != nil {
		t.Fatalf("driver does not assemble: %v", err)
	}
	return u
}

func TestDriverAssembles(t *testing.T) {
	u := assembleDriver(t)
	if n := u.InstCount(); n < 500 {
		t.Errorf("driver has only %d instructions", n)
	}
	// All paper-visible entry points exist and are exported.
	for _, fn := range []string{
		FnProbe, FnOpen, FnClose, FnXmit, FnIntr, FnCleanRx, FnCleanTx,
		FnWatchdog, FnGetStats, FnSetMac, FnChangeMtu, FnEthtoolGetLink,
	} {
		if u.Func(fn) == nil {
			t.Errorf("missing entry point %s", fn)
		}
		if !u.Globals[fn] {
			t.Errorf("%s not .globl", fn)
		}
	}
}

func TestDriverImportsAreKernelSymbols(t *testing.T) {
	u := assembleDriver(t)
	// Build a registry to check against (any machine works).
	known := map[string]bool{"jiffies": true}
	// The kernel package registers its symbols on construction; reuse the
	// names list via a lightweight check against the equates + the known
	// support names the driver calls.
	for _, sym := range u.UndefinedSymbols() {
		if sym == "jiffies" {
			continue
		}
		known[sym] = true
	}
	if len(known) < 15 {
		t.Errorf("driver imports only %d symbols", len(known))
	}
	// Table 1 routines are among the imports.
	imports := map[string]bool{}
	for _, s := range u.UndefinedSymbols() {
		imports[s] = true
	}
	for _, n := range []string{
		"netdev_alloc_skb", "dev_kfree_skb_any", "netif_rx",
		"dma_map_single", "dma_map_page", "dma_unmap_single",
		"spin_trylock", "spin_unlock_irqrestore", "eth_type_trans",
	} {
		if !imports[n] {
			t.Errorf("driver does not import fast-path routine %s", n)
		}
	}
}

func TestDriverRewrites(t *testing.T) {
	u := assembleDriver(t)
	ru, stats, err := rewrite.Rewrite(u, rewrite.Options{RejectPrivileged: true})
	if err != nil {
		t.Fatalf("driver does not rewrite: %v", err)
	}
	// The paper's ~25% memory-reference figure; ours is a bit higher
	// (denser ring-manipulation code).
	if f := stats.MemRefFraction(); f < 0.15 || f > 0.45 {
		t.Errorf("memory fraction = %.2f", f)
	}
	// The driver exercises every rewriting mechanism.
	if stats.StringExpanded == 0 {
		t.Error("no string instruction on the fast path (copybreak missing?)")
	}
	if stats.IndirectCalls == 0 {
		t.Error("no indirect call (clean_rx pointer missing?)")
	}
	if stats.StackExempt == 0 {
		t.Error("no stack-relative accesses?")
	}
	// The rewritten form re-assembles.
	if _, err := asm.Assemble(ru.Print()); err != nil {
		t.Fatalf("rewritten driver does not re-assemble: %v", err)
	}
}

func TestDriverHasNoPrivilegedInstructions(t *testing.T) {
	u := assembleDriver(t)
	if _, _, err := rewrite.Rewrite(u, rewrite.Options{RejectPrivileged: true}); err != nil {
		t.Errorf("static scan rejected the driver: %v", err)
	}
}

func TestDriverSourceDocumentsAdapterLayout(t *testing.T) {
	// The adapter equates the Go side relies on (fault injection examples,
	// tests) must match the assembly's declarations.
	for _, decl := range []string{
		".equ\tAD_NETDEV, 0", ".equ\tAD_TX_HEAD, 16", ".equ\tAD_TX_TAIL, 20",
		".equ\tAD_CLEAN_RX, 52", ".equ\tAD_SIZE, 96",
	} {
		if !strings.Contains(Source, decl) {
			t.Errorf("missing adapter declaration %q", decl)
		}
	}
	if AdapterSize != 96 {
		t.Errorf("AdapterSize = %d", AdapterSize)
	}
}
