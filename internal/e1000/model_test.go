package e1000_test

import (
	"testing"

	"twindrivers/internal/e1000"
	"twindrivers/internal/nic"
)

// TestModelGeometryMatchesDevice pins the model's advertised geometry to
// the device and driver constants it describes.
func TestModelGeometryMatchesDevice(t *testing.T) {
	m := e1000.DriverModel()
	g := m.Geometry
	if g.TxSlots != e1000.TxRing || g.RxSlots != e1000.RxRing {
		t.Errorf("geometry %+v vs driver rings tx=%d rx=%d", g, e1000.TxRing, e1000.RxRing)
	}
	if g.DescBytes != nic.DescSize || g.RxByteRing {
		t.Errorf("geometry %+v should describe %d-byte descriptor rings", g, nic.DescSize)
	}
	if m.MMIOPages != nic.MMIOPages {
		t.Errorf("MMIOPages %d != device %d", m.MMIOPages, nic.MMIOPages)
	}
	if m.AdapterSize != e1000.AdapterSize {
		t.Errorf("AdapterSize %d != driver %d", m.AdapterSize, e1000.AdapterSize)
	}
}
