package e1000

import (
	"twindrivers/internal/drivermodel"
	"twindrivers/internal/mem"
	"twindrivers/internal/nic"
)

// TxHeaderSplit is the transmit scatter/gather split: the hypervisor
// copies up to this many header bytes into the pooled dom0 sk_buff and
// chains the rest of the guest packet as a page fragment — the e1000's
// multi-descriptor transmit makes the zero-copy body possible (§5.3).
const TxHeaderSplit = 96

var model = &drivermodel.Model{
	Name:        "e1000",
	Source:      Source,
	AdapterSize: AdapterSize,
	MMIOPages:   nic.MMIOPages,
	// The E1000_* register equates ship with kernel.Equates() (they
	// predate the driver-model abstraction); nothing extra to merge.
	Equates: nil,
	Entries: drivermodel.Entries{
		Probe:    FnProbe,
		Open:     FnOpen,
		Close:    FnClose,
		Xmit:     FnXmit,
		Intr:     FnIntr,
		Stats:    FnGetStats,
		Watchdog: FnWatchdog,
	},
	Geometry: drivermodel.Geometry{
		TxSlots:   TxRing,
		RxSlots:   RxRing,
		DescBytes: nic.DescSize,
	},
	TxHeaderSplit: TxHeaderSplit,
	NewDevice: func(name string, phys *mem.Physical, macLast byte) drivermodel.Device {
		return nic.New(name, phys, macLast)
	},
	ProbeArgs: func(netdev, mmioPhys, irq uint32) []uint32 {
		return []uint32{netdev, mmioPhys, irq}
	},
}

func init() { drivermodel.Register(model) }

// DriverModel returns the e1000 backend's driver model.
func DriverModel() *drivermodel.Model { return model }
