// Package e1000 contains the guest-OS network driver of the reproduction:
// an Intel e1000-class driver written in the simulated machine's assembly,
// structured after the Linux 2.6.18 e1000 driver the paper twins.
//
// The driver is ordinary guest-kernel code: it ioremaps the register BAR,
// allocates descriptor rings with dma_alloc_coherent, fills the RX ring
// with sk_buffs, transmits by stamping descriptors and bumping TDT, reaps
// TX completions from the transmit path (TXDW interrupts masked), and
// processes RX completions through eth_type_trans and netif_rx — with a
// copybreak path that rep-movs small packets into fresh buffers, putting a
// string instruction on the fast path (§5.1.1 of the paper). A watchdog
// timer handles link state and hardware statistics (the VM-instance-only
// work of §3.1), and ethtool-style entry points cover configuration. The
// interrupt handler reaches its RX cleaner through a function pointer in
// the adapter structure — the indirect call through driver data that
// §5.1.2 translates.
//
// TwinDrivers never sees this source specially: the rewriter transforms it
// like any compiled driver. Strict cdecl is observed (no live values in
// caller-saved registers across calls), as compiler output would.
package e1000

// Ring and copybreak geometry (mirrored by equates in Source).
const (
	TxRing    = 256
	RxRing    = 256
	Copybreak = 256
)

// Entry point names exported by the driver.
const (
	FnProbe          = "e1000_probe"
	FnOpen           = "e1000_open"
	FnClose          = "e1000_close"
	FnXmit           = "e1000_xmit_frame"
	FnIntr           = "e1000_intr"
	FnCleanRx        = "e1000_clean_rx"
	FnCleanTx        = "e1000_clean_tx"
	FnWatchdog       = "e1000_watchdog"
	FnGetStats       = "e1000_get_stats"
	FnSetMac         = "e1000_set_mac"
	FnChangeMtu      = "e1000_change_mtu"
	FnEthtoolGetLink = "e1000_ethtool_get_link"
)

// Source is the driver, in the dialect of internal/asm. Structure offsets
// come from kernel.Equates() plus the ADAPTER (AD_*) equates defined here.
const Source = `
# e1000-class network driver for the simulated machine.
# cdecl; callee saves ebx/esi/edi/ebp; args at 8(%ebp), 12(%ebp), ...

	.equ	TX_RING, 256
	.equ	RX_RING, 256
	.equ	COPYBREAK, 256

# Adapter private structure (lives in netdev->priv).
	.equ	AD_NETDEV, 0
	.equ	AD_REGS, 4
	.equ	AD_TXD, 8          # TX descriptor ring vaddr
	.equ	AD_TXD_DMA, 12
	.equ	AD_TX_HEAD, 16     # next descriptor to reap
	.equ	AD_TX_TAIL, 20     # next descriptor to use
	.equ	AD_TXBI, 24        # TX buffer_info (8 bytes/entry: skb, dma)
	.equ	AD_RXD, 28
	.equ	AD_RXD_DMA, 32
	.equ	AD_RX_HEAD, 36     # next descriptor to clean
	.equ	AD_RX_TAIL, 40     # last descriptor handed to hw (RDT)
	.equ	AD_RXBI, 44
	.equ	AD_LOCK, 48
	.equ	AD_CLEAN_RX, 52    # RX cleaner function pointer (indirect call)
	.equ	AD_WDT, 56         # watchdog timer_list: 56..67
	.equ	AD_GPTC, 68        # accumulated hardware stats
	.equ	AD_GPRC, 72
	.equ	AD_MPC, 76
	.equ	AD_CRCERRS, 80
	.equ	AD_LAST_TX_HEAD, 84
	.equ	AD_IRQ, 88
	.equ	AD_SIZE, 96

	.text

# ---------------------------------------------------------------------------
# e1000_probe(netdev, mmio_phys, irq)
# ---------------------------------------------------------------------------
	.globl	e1000_probe
e1000_probe:
	pushl	%ebp
	movl	%esp, %ebp
	pushl	%ebx
	pushl	%esi
	pushl	%edi

	movl	8(%ebp), %esi          # esi = netdev
	movl	ND_PRIV(%esi), %ebx    # ebx = adapter
	movl	%esi, AD_NETDEV(%ebx)

	movl	16(%ebp), %eax         # irq
	movl	%eax, AD_IRQ(%ebx)
	movl	%eax, ND_IRQ(%esi)

	pushl	$131072                # map the register BAR (128 KiB)
	pushl	12(%ebp)
	call	ioremap
	addl	$8, %esp
	movl	%eax, AD_REGS(%ebx)
	movl	%eax, ND_BASE(%esi)

	movl	AD_REGS(%ebx), %edi    # reset the function
	movl	$CTRL_RST, %eax
	movl	%eax, E1000_CTRL(%edi)

	leal	AD_TXD_DMA(%ebx), %eax # TX descriptor ring
	pushl	%eax
	pushl	$4096
	call	dma_alloc_coherent
	addl	$8, %esp
	movl	%eax, AD_TXD(%ebx)

	leal	AD_RXD_DMA(%ebx), %eax # RX descriptor ring
	pushl	%eax
	pushl	$4096
	call	dma_alloc_coherent
	addl	$8, %esp
	movl	%eax, AD_RXD(%ebx)

	pushl	$2048                  # buffer_info arrays
	call	kzalloc
	addl	$4, %esp
	movl	%eax, AD_TXBI(%ebx)
	pushl	$2048
	call	kzalloc
	addl	$4, %esp
	movl	%eax, AD_RXBI(%ebx)

	xorl	%eax, %eax
	movl	%eax, AD_TX_HEAD(%ebx)
	movl	%eax, AD_TX_TAIL(%ebx)
	movl	%eax, AD_RX_HEAD(%ebx)
	movl	%eax, AD_RX_TAIL(%ebx)
	movl	%eax, AD_LAST_TX_HEAD(%ebx)

	leal	AD_LOCK(%ebx), %eax
	pushl	%eax
	call	spin_lock_init
	addl	$4, %esp

	movl	$e1000_xmit_frame, %eax    # entry points
	movl	%eax, ND_XMIT(%esi)
	movl	$e1000_clean_rx, %eax
	movl	%eax, AD_CLEAN_RX(%ebx)

	movl	AD_REGS(%ebx), %edi    # station address from netdev->mac
	movl	ND_MAC(%esi), %eax
	movl	%eax, E1000_RAL(%edi)
	movzwl	ND_MAC+4(%esi), %eax
	movl	%eax, E1000_RAH(%edi)

	leal	AD_WDT(%ebx), %eax     # watchdog timer
	pushl	%eax
	call	init_timer
	addl	$4, %esp
	movl	$e1000_watchdog, %eax
	movl	%eax, AD_WDT+TIMER_FN(%ebx)
	movl	%esi, AD_WDT+TIMER_DATA(%ebx)

	pushl	%esi
	call	register_netdev
	addl	$4, %esp

	xorl	%eax, %eax
	popl	%edi
	popl	%esi
	popl	%ebx
	popl	%ebp
	ret

# ---------------------------------------------------------------------------
# e1000_open(netdev)
# ---------------------------------------------------------------------------
	.globl	e1000_open
e1000_open:
	pushl	%ebp
	movl	%esp, %ebp
	pushl	%ebx
	pushl	%esi
	pushl	%edi

	movl	8(%ebp), %esi          # netdev
	movl	ND_PRIV(%esi), %ebx    # adapter
	movl	AD_REGS(%ebx), %edi    # regs

	pushl	%esi                   # dev_id
	pushl	$0                     # name
	pushl	$0                     # flags
	movl	$e1000_intr, %eax
	pushl	%eax                   # handler
	pushl	AD_IRQ(%ebx)           # irq
	call	request_irq
	addl	$20, %esp

	movl	AD_TXD_DMA(%ebx), %eax # transmit ring registers
	movl	%eax, E1000_TDBAL(%edi)
	movl	$4096, %eax
	movl	%eax, E1000_TDLEN(%edi)
	xorl	%eax, %eax
	movl	%eax, E1000_TDH(%edi)
	movl	%eax, E1000_TDT(%edi)

	movl	AD_RXD_DMA(%ebx), %eax # receive ring registers
	movl	%eax, E1000_RDBAL(%edi)
	movl	$4096, %eax
	movl	%eax, E1000_RDLEN(%edi)
	xorl	%eax, %eax
	movl	%eax, E1000_RDH(%edi)
	movl	%eax, E1000_RDT(%edi)

	pushl	%ebx
	call	e1000_alloc_rx_buffers
	addl	$4, %esp

	movl	$TCTL_EN, %eax         # enable MAC engines
	movl	%eax, E1000_TCTL(%edi)
	movl	$RCTL_EN, %eax
	movl	%eax, E1000_RCTL(%edi)
	movl	$INT_RXT0+INT_LSC, %eax # unmask RX; TXDW reaped from xmit
	movl	%eax, E1000_IMS(%edi)

	pushl	%esi
	call	netif_start_queue
	addl	$4, %esp

	movl	jiffies, %eax          # arm the watchdog
	addl	$2, %eax
	pushl	%eax
	leal	AD_WDT(%ebx), %eax
	pushl	%eax
	call	mod_timer
	addl	$8, %esp

	xorl	%eax, %eax
	popl	%edi
	popl	%esi
	popl	%ebx
	popl	%ebp
	ret

# ---------------------------------------------------------------------------
# e1000_alloc_rx_buffers(adapter)
# ---------------------------------------------------------------------------
	.globl	e1000_alloc_rx_buffers
e1000_alloc_rx_buffers:
	pushl	%ebp
	movl	%esp, %ebp
	pushl	%ebx
	pushl	%esi
	pushl	%edi

	movl	8(%ebp), %ebx          # adapter
	movl	AD_RX_TAIL(%ebx), %esi # index to fill
.Lrx_fill:
	movl	%esi, %eax             # stop one short of the cleaner index
	incl	%eax
	andl	$RX_RING-1, %eax
	cmpl	AD_RX_HEAD(%ebx), %eax
	je	.Lrx_fill_done

	pushl	$SKB_BUF_SIZE          # skb = netdev_alloc_skb(dev, bufsize)
	pushl	AD_NETDEV(%ebx)
	call	netdev_alloc_skb
	addl	$8, %esp
	testl	%eax, %eax
	je	.Lrx_fill_done         # allocation failure: retry later
	movl	%eax, %edi             # edi = skb

	pushl	$1                     # dma = dma_map_single(dev, data, sz, FROM)
	pushl	$SKB_BUF_SIZE
	pushl	SKB_DATA(%edi)
	pushl	AD_NETDEV(%ebx)
	call	dma_map_single
	addl	$16, %esp
	movl	%eax, SKB_DMA(%edi)

	movl	AD_RXBI(%ebx), %ecx    # buffer_info[i] = {skb, dma}
	movl	%edi, (%ecx,%esi,8)
	movl	%eax, 4(%ecx,%esi,8)

	movl	AD_RXD(%ebx), %ecx     # descriptor: address, clear status
	movl	%esi, %edx
	shll	$4, %edx
	addl	%edx, %ecx
	movl	%eax, (%ecx)
	xorl	%eax, %eax
	movl	%eax, 4(%ecx)
	movl	%eax, 8(%ecx)
	movl	%eax, 12(%ecx)

	incl	%esi
	andl	$RX_RING-1, %esi
	jmp	.Lrx_fill
.Lrx_fill_done:
	movl	%esi, AD_RX_TAIL(%ebx)
	movl	AD_REGS(%ebx), %ecx
	movl	%esi, E1000_RDT(%ecx)

	popl	%edi
	popl	%esi
	popl	%ebx
	popl	%ebp
	ret

# ---------------------------------------------------------------------------
# e1000_xmit_frame(skb, netdev) -> 0 ok, 1 busy
# Locals: -4 linear_len, -8 dma, -12 skb
# ---------------------------------------------------------------------------
	.globl	e1000_xmit_frame
e1000_xmit_frame:
	pushl	%ebp
	movl	%esp, %ebp
	subl	$12, %esp
	pushl	%ebx
	pushl	%esi
	pushl	%edi

	movl	12(%ebp), %esi         # netdev
	movl	ND_PRIV(%esi), %ebx    # adapter

	leal	AD_LOCK(%ebx), %eax
	pushl	%eax
	call	spin_trylock
	addl	$4, %esp
	testl	%eax, %eax
	je	.Ltx_busy

	pushl	%ebx                   # reap finished descriptors first
	call	e1000_clean_tx
	addl	$4, %esp

	movl	AD_TX_TAIL(%ebx), %edi # ring space: up to 2 descriptors
	movl	%edi, %eax
	addl	$2, %eax
	andl	$TX_RING-1, %eax
	cmpl	AD_TX_HEAD(%ebx), %eax
	jne	.Ltx_room
	orl	$1, ND_FLAGS(%esi)     # netif_stop_queue (kernel inline)
	leal	AD_LOCK(%ebx), %eax
	pushl	$0
	pushl	%eax
	call	spin_unlock_irqrestore
	addl	$8, %esp
.Ltx_busy:
	movl	$1, %eax
	jmp	.Ltx_out

.Ltx_room:
	movl	8(%ebp), %edx          # skb
	movl	%edx, -12(%ebp)
	movl	SKB_LEN(%edx), %ecx    # linear length = len - frag
	movl	SKB_NR_FRAGS(%edx), %eax
	testl	%eax, %eax
	je	.Ltx_lin
	subl	SKB_FRAG_SIZE(%edx), %ecx
.Ltx_lin:
	movl	%ecx, -4(%ebp)

	pushl	8(%ebp)                # checksum-offload / TSO context setup
	call	e1000_tx_csum_setup
	addl	$4, %esp
	movl	-4(%ebp), %ecx         # reload linear len and skb (caller-saved)
	movl	-12(%ebp), %edx

	pushl	$0                     # dma_map_single(dev, data, linlen, TO)
	pushl	%ecx
	pushl	SKB_DATA(%edx)
	pushl	%esi
	call	dma_map_single
	addl	$16, %esp
	movl	%eax, -8(%ebp)

	movl	AD_TXD(%ebx), %edx     # stamp the linear descriptor
	movl	%edi, %ecx
	shll	$4, %ecx
	addl	%ecx, %edx
	movl	-8(%ebp), %eax
	movl	%eax, (%edx)           # buffer address
	xorl	%eax, %eax
	movl	%eax, 4(%edx)
	movl	-4(%ebp), %eax
	movw	%eax, 8(%edx)           # length
	movb	$0, 10(%edx)           # cso
	movl	-12(%ebp), %ecx
	movl	SKB_NR_FRAGS(%ecx), %eax
	testl	%eax, %eax
	jne	.Ltx_cmd_frag
	movb	$TXD_CMD_EOP+TXD_CMD_RS, 11(%edx)
	jmp	.Ltx_cmd_done
.Ltx_cmd_frag:
	movb	$TXD_CMD_RS, 11(%edx)
.Ltx_cmd_done:
	movb	$0, 12(%edx)           # status
	movb	$0, 13(%edx)
	movw	$0, 14(%edx)

	movl	AD_TXBI(%ebx), %ecx    # buffer_info: skb rides the LAST desc
	movl	-8(%ebp), %eax
	movl	%eax, 4(%ecx,%edi,8)
	movl	-12(%ebp), %edx
	movl	SKB_NR_FRAGS(%edx), %eax
	testl	%eax, %eax
	jne	.Ltx_bi_defer
	movl	%edx, (%ecx,%edi,8)
	jmp	.Ltx_bi_done
.Ltx_bi_defer:
	movl	$0, (%ecx,%edi,8)
.Ltx_bi_done:
	incl	%edi
	andl	$TX_RING-1, %edi

	movl	-12(%ebp), %edx        # fragment descriptor, if any
	movl	SKB_NR_FRAGS(%edx), %eax
	testl	%eax, %eax
	je	.Ltx_no_frag

	pushl	$0                     # dma_map_page(dev, page, off, size, TO)
	pushl	SKB_FRAG_SIZE(%edx)
	pushl	SKB_FRAG_OFF(%edx)
	pushl	SKB_FRAG_PAGE(%edx)
	pushl	%esi
	call	dma_map_page
	addl	$20, %esp
	movl	%eax, -8(%ebp)

	movl	AD_TXD(%ebx), %edx
	movl	%edi, %ecx
	shll	$4, %ecx
	addl	%ecx, %edx
	movl	-8(%ebp), %eax
	movl	%eax, (%edx)
	xorl	%eax, %eax
	movl	%eax, 4(%edx)
	movl	-12(%ebp), %ecx
	movl	SKB_FRAG_SIZE(%ecx), %eax
	movw	%eax, 8(%edx)
	movb	$0, 10(%edx)
	movb	$TXD_CMD_EOP+TXD_CMD_RS, 11(%edx)
	movb	$0, 12(%edx)
	movb	$0, 13(%edx)
	movw	$0, 14(%edx)

	movl	AD_TXBI(%ebx), %ecx
	movl	-12(%ebp), %eax
	movl	%eax, (%ecx,%edi,8)
	movl	-8(%ebp), %eax
	movl	%eax, 4(%ecx,%edi,8)
	incl	%edi
	andl	$TX_RING-1, %edi
.Ltx_no_frag:

	movl	-12(%ebp), %edx        # stats
	movl	SKB_LEN(%edx), %eax
	addl	%eax, ND_TX_BYTES(%esi)
	incl	ND_TX_PACKETS(%esi)

	movl	%edi, AD_TX_TAIL(%ebx) # publish the tail to hardware
	movl	AD_REGS(%ebx), %ecx
	movl	%edi, E1000_TDT(%ecx)

	leal	AD_LOCK(%ebx), %eax
	pushl	$0
	pushl	%eax
	call	spin_unlock_irqrestore
	addl	$8, %esp

	xorl	%eax, %eax
.Ltx_out:
	popl	%edi
	popl	%esi
	popl	%ebx
	movl	%ebp, %esp
	popl	%ebp
	ret

# ---------------------------------------------------------------------------
# e1000_tx_csum_setup(skb)
# Models the transmit-side work the production driver performs per packet
# beyond ring stamping: protocol dispatch (ethertype/IP proto), TCP/UDP
# pseudo-header checksum folding for the offload context descriptor, and
# the TSO decision chain. Predominantly register arithmetic, as in the
# original (the compiler keeps the folding in registers).
# ---------------------------------------------------------------------------
	.globl	e1000_tx_csum_setup
e1000_tx_csum_setup:
	pushl	%ebp
	movl	%esp, %ebp
	pushl	%ebx
	pushl	%esi

	movl	8(%ebp), %esi          # skb
	movl	SKB_DATA(%esi), %ecx
	movzwl	12(%ecx), %eax         # ethertype (big-endian on the wire)
	movl	%eax, %edx
	shrl	$8, %eax
	shll	$8, %edx
	orl	%edx, %eax
	andl	$0xffff, %eax
	cmpl	$0x0800, %eax          # IPv4?
	jne	.Lcs_no_offload

	movzbl	14(%ecx), %edx         # IHL nibble
	andl	$15, %edx
	shll	$2, %edx               # IP header length
	movzbl	23(%ecx), %ebx         # IP protocol
	movl	SKB_LEN(%esi), %eax
	subl	%edx, %eax
	subl	$14, %eax              # L4 length for the pseudo header

	# Pseudo-header checksum fold: the context descriptor wants the
	# partial sum; the driver folds it in registers.
	addl	%ebx, %eax
	movl	$40, %ecx
.Lcs_round:
	movl	%eax, %edx
	shll	$5, %edx
	xorl	%edx, %eax
	movl	%eax, %edx
	shrl	$7, %edx
	addl	%edx, %eax
	addl	%ebx, %eax
	movl	%eax, %edx
	shll	$3, %edx
	subl	%edx, %eax
	decl	%ecx
	jne	.Lcs_round

	# TSO decision chain: segment only large TCP packets.
	cmpl	$6, %ebx               # TCP?
	jne	.Lcs_not_tso
	movl	8(%ebp), %esi
	movl	SKB_LEN(%esi), %edx
	cmpl	$1500, %edx
	jbe	.Lcs_not_tso
	andl	$0x7fff, %eax
.Lcs_not_tso:
	andl	$0xffff, %eax
	jmp	.Lcs_out
.Lcs_no_offload:
	xorl	%eax, %eax
.Lcs_out:
	popl	%esi
	popl	%ebx
	popl	%ebp
	ret

# ---------------------------------------------------------------------------
# e1000_rx_checksum(skb)
# Models the receive-side checksum verification the production driver does
# per packet (descriptor status decode + sum fold).
# ---------------------------------------------------------------------------
	.globl	e1000_rx_checksum
e1000_rx_checksum:
	pushl	%ebp
	movl	%esp, %ebp
	pushl	%ebx

	movl	8(%ebp), %edx          # skb
	movl	SKB_LEN(%edx), %eax
	movl	SKB_PROTOCOL(%edx), %ebx
	addl	%ebx, %eax
	movl	$40, %ecx
.Lrcs_round:
	movl	%eax, %edx
	shll	$4, %edx
	xorl	%edx, %eax
	movl	%eax, %edx
	shrl	$5, %edx
	addl	%edx, %eax
	decl	%ecx
	jne	.Lrcs_round
	andl	$0xffff, %eax

	popl	%ebx
	popl	%ebp
	ret

# ---------------------------------------------------------------------------
# e1000_clean_tx(adapter)
# ---------------------------------------------------------------------------
	.globl	e1000_clean_tx
e1000_clean_tx:
	pushl	%ebp
	movl	%esp, %ebp
	pushl	%ebx
	pushl	%esi
	pushl	%edi

	movl	8(%ebp), %ebx          # adapter
	movl	AD_TX_HEAD(%ebx), %esi
.Ltxc_loop:
	cmpl	AD_TX_TAIL(%ebx), %esi
	je	.Ltxc_done
	movl	AD_TXD(%ebx), %edx
	movl	%esi, %eax
	shll	$4, %eax
	addl	%eax, %edx
	movzbl	12(%edx), %eax
	testl	$DESC_DD, %eax
	je	.Ltxc_done

	movl	AD_TXBI(%ebx), %ecx
	movl	(%ecx,%esi,8), %edi    # skb (zero on non-final frag descs)

	pushl	$0                     # dma_unmap_single(dev, dma, 0, TO)
	pushl	$0
	pushl	4(%ecx,%esi,8)
	pushl	AD_NETDEV(%ebx)
	call	dma_unmap_single
	addl	$16, %esp

	testl	%edi, %edi
	je	.Ltxc_no_skb
	pushl	%edi
	call	dev_kfree_skb_any
	addl	$4, %esp
.Ltxc_no_skb:
	movl	AD_TXD(%ebx), %edx     # clear status
	movl	%esi, %eax
	shll	$4, %eax
	addl	%eax, %edx
	movb	$0, 12(%edx)

	incl	%esi
	andl	$TX_RING-1, %esi
	jmp	.Ltxc_loop
.Ltxc_done:
	movl	%esi, AD_TX_HEAD(%ebx)

	# Wake the queue if it was stopped (netif_queue_stopped and
	# netif_wake_queue are kernel inlines, not imported symbols).
	movl	AD_NETDEV(%ebx), %edx
	movl	ND_FLAGS(%edx), %eax
	testl	$1, %eax
	je	.Ltxc_out
	andl	$-2, ND_FLAGS(%edx)
.Ltxc_out:
	popl	%edi
	popl	%esi
	popl	%ebx
	popl	%ebp
	ret

# ---------------------------------------------------------------------------
# e1000_intr(irq, dev_id) -> 1 handled, 0 none
# ---------------------------------------------------------------------------
	.globl	e1000_intr
e1000_intr:
	pushl	%ebp
	movl	%esp, %ebp
	pushl	%ebx
	pushl	%esi
	pushl	%edi

	movl	12(%ebp), %esi         # netdev (dev_id)
	movl	ND_PRIV(%esi), %ebx    # adapter
	movl	AD_REGS(%ebx), %ecx
	movl	E1000_ICR(%ecx), %eax  # read-to-clear
	testl	%eax, %eax
	je	.Lintr_none
	movl	%eax, %edi             # keep the cause across calls

	testl	$INT_RXT0, %edi
	je	.Lintr_no_rx
	pushl	%ebx
	call	*AD_CLEAN_RX(%ebx)     # indirect through driver data (§5.1.2)
	addl	$4, %esp
.Lintr_no_rx:

	testl	$INT_TXDW, %edi
	je	.Lintr_no_tx
	leal	AD_LOCK(%ebx), %eax
	pushl	%eax
	call	spin_trylock
	addl	$4, %esp
	testl	%eax, %eax
	je	.Lintr_no_tx
	pushl	%ebx
	call	e1000_clean_tx
	addl	$4, %esp
	leal	AD_LOCK(%ebx), %eax
	pushl	$0
	pushl	%eax
	call	spin_unlock_irqrestore
	addl	$8, %esp
.Lintr_no_tx:
	movl	$1, %eax
	jmp	.Lintr_out
.Lintr_none:
	xorl	%eax, %eax
.Lintr_out:
	popl	%edi
	popl	%esi
	popl	%ebx
	popl	%ebp
	ret

# ---------------------------------------------------------------------------
# e1000_clean_rx(adapter)
# Locals: -4 len, -8 orig skb, -12 new skb
# ---------------------------------------------------------------------------
	.globl	e1000_clean_rx
e1000_clean_rx:
	pushl	%ebp
	movl	%esp, %ebp
	subl	$12, %esp
	pushl	%ebx
	pushl	%esi
	pushl	%edi

	movl	8(%ebp), %ebx          # adapter
	movl	AD_RX_HEAD(%ebx), %esi
.Lrxc_loop:
	movl	AD_RXD(%ebx), %edx
	movl	%esi, %eax
	shll	$4, %eax
	addl	%eax, %edx
	movzbl	12(%edx), %eax
	testl	$DESC_DD, %eax
	je	.Lrxc_done

	movzwl	8(%edx), %eax          # packet length
	movl	%eax, -4(%ebp)
	movl	AD_RXBI(%ebx), %ecx
	movl	(%ecx,%esi,8), %eax    # original skb
	movl	%eax, -8(%ebp)

	movl	-4(%ebp), %eax         # copybreak?
	cmpl	$COPYBREAK, %eax
	ja	.Lrxc_big

	# --- copybreak: copy the small packet into a fresh skb and recycle
	# the original buffer in place (no unmap/remap). ---
	pushl	$SKB_BUF_SIZE
	pushl	AD_NETDEV(%ebx)
	call	netdev_alloc_skb
	addl	$8, %esp
	testl	%eax, %eax
	je	.Lrxc_big              # allocation failed: take the big path
	movl	%eax, -12(%ebp)        # nskb

	pushl	%esi                   # rep movsb clobbers esi/edi/ecx
	movl	-8(%ebp), %eax
	movl	SKB_DATA(%eax), %esi
	movl	-12(%ebp), %eax
	movl	SKB_DATA(%eax), %edi
	movl	-4(%ebp), %ecx
	rep; movsb
	popl	%esi

	movl	-12(%ebp), %edx
	movl	-4(%ebp), %eax
	movl	%eax, SKB_LEN(%edx)

	pushl	AD_NETDEV(%ebx)        # deliver the copy
	pushl	%edx
	call	eth_type_trans
	addl	$8, %esp
	pushl	-12(%ebp)
	call	e1000_rx_checksum
	addl	$4, %esp
	pushl	-12(%ebp)
	call	netif_rx
	addl	$4, %esp

	# Recycle the original buffer into the tail (first unfilled) slot.
	movl	AD_RX_TAIL(%ebx), %edi
	movl	AD_RXBI(%ebx), %ecx
	movl	(%ecx,%esi,8), %eax    # original skb
	movl	%eax, (%ecx,%edi,8)
	movl	4(%ecx,%esi,8), %eax   # original dma
	movl	%eax, 4(%ecx,%edi,8)
	movl	AD_RXD(%ebx), %edx
	movl	%edi, %ecx
	shll	$4, %ecx
	addl	%ecx, %edx
	movl	%eax, (%edx)
	xorl	%eax, %eax
	movl	%eax, 4(%edx)
	movl	%eax, 8(%edx)
	movl	%eax, 12(%edx)
	jmp	.Lrxc_adv

.Lrxc_big:
	movl	AD_RXBI(%ebx), %ecx    # unmap the full-size buffer
	pushl	$1
	pushl	$SKB_BUF_SIZE
	pushl	4(%ecx,%esi,8)
	pushl	AD_NETDEV(%ebx)
	call	dma_unmap_single
	addl	$16, %esp

	movl	-8(%ebp), %edx         # set length, deliver
	movl	-4(%ebp), %eax
	movl	%eax, SKB_LEN(%edx)
	pushl	AD_NETDEV(%ebx)
	pushl	%edx
	call	eth_type_trans
	addl	$8, %esp
	pushl	-8(%ebp)
	call	e1000_rx_checksum
	addl	$4, %esp
	pushl	-8(%ebp)
	call	netif_rx
	addl	$4, %esp

	pushl	$SKB_BUF_SIZE          # refill the descriptor
	pushl	AD_NETDEV(%ebx)
	call	netdev_alloc_skb
	addl	$8, %esp
	testl	%eax, %eax
	je	.Lrxc_nomem
	movl	%eax, -12(%ebp)

	movl	-12(%ebp), %edx
	pushl	$1
	pushl	$SKB_BUF_SIZE
	pushl	SKB_DATA(%edx)
	pushl	AD_NETDEV(%ebx)
	call	dma_map_single
	addl	$16, %esp

	# Install the fresh buffer in the tail (first unfilled) slot.
	movl	AD_RX_TAIL(%ebx), %edi
	movl	AD_RXBI(%ebx), %ecx    # eax = dma handle
	movl	%eax, 4(%ecx,%edi,8)
	movl	-12(%ebp), %edx
	movl	%edx, (%ecx,%edi,8)

	movl	AD_RXD(%ebx), %edx
	movl	%edi, %ecx
	shll	$4, %ecx
	addl	%ecx, %edx
	movl	%eax, (%edx)
	xorl	%eax, %eax
	movl	%eax, 4(%edx)
	movl	%eax, 8(%edx)
	movl	%eax, 12(%edx)
	jmp	.Lrxc_adv

.Lrxc_nomem:
	movl	AD_NETDEV(%ebx), %edx  # buffer hole: count an rx error and
	incl	ND_RX_ERRORS(%edx)     # leave the window one short
	movl	AD_NETDEV(%ebx), %edx  # stats still count the delivery
	incl	ND_RX_PACKETS(%edx)
	movl	-4(%ebp), %eax
	addl	%eax, ND_RX_BYTES(%edx)
	incl	%esi
	andl	$RX_RING-1, %esi
	jmp	.Lrxc_loop

.Lrxc_adv:
	movl	AD_NETDEV(%ebx), %edx  # stats
	incl	ND_RX_PACKETS(%edx)
	movl	-4(%ebp), %eax
	addl	%eax, ND_RX_BYTES(%edx)

	incl	%esi                   # advance head; extend the hw window
	andl	$RX_RING-1, %esi
	movl	AD_RX_TAIL(%ebx), %eax
	incl	%eax
	andl	$RX_RING-1, %eax
	movl	%eax, AD_RX_TAIL(%ebx)
	movl	AD_REGS(%ebx), %ecx
	movl	%eax, E1000_RDT(%ecx)
	jmp	.Lrxc_loop

.Lrxc_done:
	movl	%esi, AD_RX_HEAD(%ebx)
	popl	%edi
	popl	%esi
	popl	%ebx
	movl	%ebp, %esp
	popl	%ebp
	ret

# ---------------------------------------------------------------------------
# e1000_watchdog(netdev)  — VM-instance-only periodic work (§3.1):
# link supervision, hardware statistics harvest, TX hang detection.
# ---------------------------------------------------------------------------
	.globl	e1000_watchdog
e1000_watchdog:
	pushl	%ebp
	movl	%esp, %ebp
	pushl	%ebx
	pushl	%esi

	movl	8(%ebp), %esi          # netdev
	movl	ND_PRIV(%esi), %ebx

	movl	AD_REGS(%ebx), %ecx    # link state
	movl	E1000_STATUS(%ecx), %eax
	testl	$STATUS_LU, %eax
	jne	.Lwd_link_up
	pushl	%esi
	call	netif_carrier_off
	addl	$4, %esp
	jmp	.Lwd_stats
.Lwd_link_up:
	pushl	%esi
	call	netif_carrier_on
	addl	$4, %esp

.Lwd_stats:
	movl	AD_REGS(%ebx), %ecx    # harvest hardware counters
	movl	E1000_GPTC(%ecx), %eax
	addl	%eax, AD_GPTC(%ebx)
	movl	E1000_GPRC(%ecx), %eax
	addl	%eax, AD_GPRC(%ebx)
	movl	E1000_MPC(%ecx), %eax
	addl	%eax, AD_MPC(%ebx)
	movl	E1000_CRCERRS(%ecx), %eax
	addl	%eax, AD_CRCERRS(%ebx)

	movl	AD_TX_HEAD(%ebx), %eax # TX hang detection
	cmpl	AD_TX_TAIL(%ebx), %eax
	je	.Lwd_no_hang
	cmpl	AD_LAST_TX_HEAD(%ebx), %eax
	jne	.Lwd_no_hang
	incl	ND_TX_ERRORS(%esi)
.Lwd_no_hang:
	movl	AD_TX_HEAD(%ebx), %eax
	movl	%eax, AD_LAST_TX_HEAD(%ebx)

	movl	jiffies, %eax          # re-arm
	addl	$2, %eax
	pushl	%eax
	leal	AD_WDT(%ebx), %eax
	pushl	%eax
	call	mod_timer
	addl	$8, %esp

	xorl	%eax, %eax
	popl	%esi
	popl	%ebx
	popl	%ebp
	ret

# ---------------------------------------------------------------------------
# Configuration / management entry points (VM instance only).
# ---------------------------------------------------------------------------
	.globl	e1000_get_stats
e1000_get_stats:
	movl	4(%esp), %eax
	addl	$ND_TX_PACKETS, %eax
	ret

	.globl	e1000_set_mac
e1000_set_mac:
	pushl	%ebp
	movl	%esp, %ebp
	pushl	%ebx
	pushl	%esi

	movl	8(%ebp), %esi          # netdev
	movl	ND_PRIV(%esi), %ebx
	movl	12(%ebp), %edx         # new MAC pointer
	movl	(%edx), %eax
	movl	%eax, ND_MAC(%esi)
	movzwl	4(%edx), %eax
	movw	%eax, ND_MAC+4(%esi)

	movl	AD_REGS(%ebx), %ecx
	movl	ND_MAC(%esi), %eax
	movl	%eax, E1000_RAL(%ecx)
	movzwl	ND_MAC+4(%esi), %eax
	movl	%eax, E1000_RAH(%ecx)

	xorl	%eax, %eax
	popl	%esi
	popl	%ebx
	popl	%ebp
	ret

	.globl	e1000_change_mtu
e1000_change_mtu:
	movl	8(%esp), %eax          # new mtu
	cmpl	$68, %eax
	jb	.Lmtu_bad
	cmpl	$1500, %eax
	ja	.Lmtu_bad
	movl	4(%esp), %ecx
	movl	%eax, ND_MTU(%ecx)
	xorl	%eax, %eax
	ret
.Lmtu_bad:
	movl	$-22, %eax             # -EINVAL
	ret

	.globl	e1000_ethtool_get_link
e1000_ethtool_get_link:
	movl	4(%esp), %ecx          # netdev
	movl	ND_PRIV(%ecx), %ecx
	movl	AD_REGS(%ecx), %ecx
	movl	E1000_STATUS(%ecx), %eax
	andl	$STATUS_LU, %eax
	shrl	$1, %eax
	ret

# ---------------------------------------------------------------------------
# e1000_close(netdev)
# ---------------------------------------------------------------------------
	.globl	e1000_close
e1000_close:
	pushl	%ebp
	movl	%esp, %ebp
	pushl	%ebx
	pushl	%esi
	pushl	%edi

	movl	8(%ebp), %esi
	movl	ND_PRIV(%esi), %ebx

	pushl	%esi
	call	netif_stop_queue
	addl	$4, %esp

	movl	AD_REGS(%ebx), %ecx    # quiesce the hardware
	movl	$0xffffffff, %eax
	movl	%eax, E1000_IMC(%ecx)
	xorl	%eax, %eax
	movl	%eax, E1000_RCTL(%ecx)
	movl	%eax, E1000_TCTL(%ecx)

	pushl	%esi                   # release the interrupt
	pushl	AD_IRQ(%ebx)
	call	free_irq
	addl	$8, %esp

	leal	AD_WDT(%ebx), %eax
	pushl	%eax
	call	del_timer_sync
	addl	$4, %esp

	xorl	%esi, %esi             # free RX buffers
.Lcl_loop:
	cmpl	$RX_RING, %esi
	je	.Lcl_done
	movl	AD_RXBI(%ebx), %ecx
	movl	(%ecx,%esi,8), %edi
	testl	%edi, %edi
	je	.Lcl_next
	pushl	$1
	pushl	$SKB_BUF_SIZE
	pushl	4(%ecx,%esi,8)
	pushl	AD_NETDEV(%ebx)
	call	dma_unmap_single
	addl	$16, %esp
	pushl	%edi
	call	dev_kfree_skb_any
	addl	$4, %esp
	movl	AD_RXBI(%ebx), %ecx
	movl	$0, (%ecx,%esi,8)
.Lcl_next:
	incl	%esi
	jmp	.Lcl_loop
.Lcl_done:
	xorl	%eax, %eax
	popl	%edi
	popl	%esi
	popl	%ebx
	popl	%ebp
	ret
`

// AdapterSize is the byte size of the driver's private adapter structure
// (must cover AD_SIZE in Source).
const AdapterSize = 96
