package upcall

import (
	"twindrivers/internal/xen"
)

// Coalescer batches virtual-interrupt notifications across a window. The
// per-packet path notifies a domain (event-channel send + virtual interrupt
// delivery) once per frame; under batched I/O one notification per batch is
// enough — the guest's interrupt handler drains everything that arrived.
// While a window is open, the first Deliver to a domain performs the real
// notification and later ones are absorbed; with no window open Deliver is
// exactly the per-packet notification, so batch-size-1 behaviour is
// unchanged.
type Coalescer struct {
	HV *xen.Hypervisor

	// Delivered counts notifications actually performed; Coalesced counts
	// notifications absorbed by an open window.
	Delivered uint64
	Coalesced uint64

	depth     int
	signalled map[*xen.Domain]bool
}

// NewCoalescer returns a coalescer with no window open.
func NewCoalescer(hv *xen.Hypervisor) *Coalescer {
	return &Coalescer{HV: hv, signalled: make(map[*xen.Domain]bool)}
}

// Begin opens a coalescing window. Windows nest: the outermost Begin/End
// pair delimits the batch.
func (c *Coalescer) Begin() {
	if c.depth == 0 {
		for d := range c.signalled {
			delete(c.signalled, d)
		}
	}
	c.depth++
}

// End closes the innermost window.
func (c *Coalescer) End() {
	if c.depth > 0 {
		c.depth--
	}
}

// AbortWindows force-closes every open window without delivering anything:
// the driver instance died mid-batch and the notifications it owed will be
// re-raised by the recovered instance's own deliveries. Deferred End calls
// still pending on the unwound call stack become no-ops.
func (c *Coalescer) AbortWindows() {
	c.depth = 0
	for d := range c.signalled {
		delete(c.signalled, d)
	}
}

// Deliver notifies a domain: event-channel send plus virtual interrupt
// delivery, at most once per domain per window.
func (c *Coalescer) Deliver(d *xen.Domain) {
	if c.depth > 0 {
		if c.signalled[d] {
			c.Coalesced++
			return
		}
		c.signalled[d] = true
	}
	c.Delivered++
	c.HV.SendEvent(d)
	c.HV.DeliverVirtIRQ(d)
}
