// Package upcall implements the hypervisor→dom0 upcall mechanism of §4.2:
// a synchronous, cross-address-space function invocation. When the derived
// hypervisor driver calls a support routine the hypervisor does not
// implement, the call lands in a stub which saves the parameters, switches
// to the upcall stack, performs a synchronous domain switch to dom0 (if the
// driver was invoked from a guest context), delivers a virtual interrupt to
// the registered dom0 upcall handler, runs the support routine in dom0, and
// returns through a hypercall — finally switching back to the original
// domain.
//
// Because the driver data lives in dom0 and the register/stack parameters
// are reproduced exactly, the support routine cannot tell it was invoked
// from the hypervisor (the heap/stack/register environment argument of the
// paper). The cost — two domain switches plus delivery — is what Figure 10
// measures.
package upcall

import (
	"twindrivers/internal/cost"
	"twindrivers/internal/cpu"
	"twindrivers/internal/cycles"
	"twindrivers/internal/xen"
)

// Manager creates upcall stubs and tracks their cost.
type Manager struct {
	HV   *xen.Hypervisor
	Dom0 *xen.Domain

	// Count is the total number of upcalls performed.
	Count uint64

	// PerName tallies upcalls by routine name.
	PerName map[string]uint64

	// Coalesce, when non-nil, batches the virtual-interrupt deliveries of
	// consecutive upcalls inside an open window (one notification per
	// batch, not per upcall). Nil or no open window reproduces the
	// per-upcall delivery exactly.
	Coalesce *Coalescer
}

// New returns a manager targeting dom0.
func New(hv *xen.Hypervisor, dom0 *xen.Domain) *Manager {
	return &Manager{HV: hv, Dom0: dom0, PerName: make(map[string]uint64)}
}

// MakeStub builds the hypervisor-side stub for one support routine. invoke
// runs the dom0-side implementation (with the CPU positioned on the
// caller's cdecl frame, so Arg(i) reads the original parameters).
func (m *Manager) MakeStub(name string, invoke func(c *cpu.CPU) (uint32, error)) cpu.Extern {
	return func(c *cpu.CPU) (uint32, error) {
		m.Count++
		m.PerName[name]++

		meter := c.Meter
		// Stub: parameter save + switch to the upcall stack.
		meter.AddTo(cycles.CompXen, cost.UpcallStub)

		// Synchronous switch to dom0 if the driver runs in a guest context.
		from := m.HV.Current
		m.HV.Switch(m.Dom0)

		// Virtual interrupt delivery + dom0 handler prologue.
		if m.Coalesce != nil {
			m.Coalesce.Deliver(m.Dom0)
		} else {
			m.HV.SendEvent(m.Dom0)
			m.HV.DeliverVirtIRQ(m.Dom0)
		}
		meter.AddTo(cycles.CompDom0, cost.UpcallHandler)

		// The support routine itself executes in dom0 (its own cycle price
		// is charged by the kernel gate).
		ret, err := invoke(c)
		if err != nil {
			return 0, err
		}

		// Return hypercall and switch back to the original context.
		m.HV.ChargeHypercall()
		m.HV.Switch(from)
		return ret, nil
	}
}
