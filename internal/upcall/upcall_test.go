package upcall

import (
	"testing"

	"twindrivers/internal/cost"
	"twindrivers/internal/cpu"
	"twindrivers/internal/cycles"
	"twindrivers/internal/isa"
	"twindrivers/internal/mem"
	"twindrivers/internal/xen"
)

func setup(t *testing.T) (*xen.Hypervisor, *xen.Domain, *xen.Domain, *Manager) {
	t.Helper()
	hv := xen.New()
	dom0 := hv.CreateDomain(mem.OwnerDom0, "dom0")
	domU := hv.CreateDomain(1, "domU")
	top, _, _ := hv.AllocStack(4)
	hv.CPU.Regs[isa.ESP] = top
	return hv, dom0, domU, New(hv, dom0)
}

func TestUpcallFromGuestContext(t *testing.T) {
	hv, dom0, domU, m := setup(t)
	ranIn := ""
	stub := m.MakeStub("some_routine", func(c *cpu.CPU) (uint32, error) {
		ranIn = hv.Current.Name
		return c.Arg(0) + 1, nil
	})
	gate := hv.BindGate("stub.some_routine", stub)

	hv.Switch(domU)
	sw := hv.Switches
	ev := hv.Events
	v, err := hv.CPU.Call(gate, 41)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("return = %d", v)
	}
	// The routine ran in dom0...
	if ranIn != "dom0" {
		t.Errorf("ran in %q", ranIn)
	}
	// ...and control returned to the guest: two switches total.
	if hv.Current != domU {
		t.Error("not switched back")
	}
	if hv.Switches-sw != 2 {
		t.Errorf("switches = %d, want 2", hv.Switches-sw)
	}
	// A synchronous virtual interrupt was sent and consumed.
	if hv.Events-ev != 1 || dom0.PendingEvents != 0 {
		t.Errorf("events = %d pending = %d", hv.Events-ev, dom0.PendingEvents)
	}
	if m.Count != 1 || m.PerName["some_routine"] != 1 {
		t.Errorf("counting wrong: %d %v", m.Count, m.PerName)
	}
}

func TestUpcallFromDom0ContextNoSwitch(t *testing.T) {
	hv, dom0, _, m := setup(t)
	stub := m.MakeStub("r", func(c *cpu.CPU) (uint32, error) { return 7, nil })
	gate := hv.BindGate("stub.r", stub)
	hv.Switch(dom0)
	sw := hv.Switches
	if _, err := hv.CPU.Call(gate); err != nil {
		t.Fatal(err)
	}
	if hv.Switches != sw {
		t.Error("upcall from dom0 context should not switch")
	}
}

func TestUpcallCharges(t *testing.T) {
	hv, _, domU, m := setup(t)
	stub := m.MakeStub("r", func(c *cpu.CPU) (uint32, error) { return 0, nil })
	gate := hv.BindGate("stub.r", stub)
	hv.Switch(domU)
	hv.Meter.Reset()
	hv.ResetStats()
	if _, err := hv.CPU.Call(gate); err != nil {
		t.Fatal(err)
	}
	xenCyc := hv.Meter.Get(cycles.CompXen)
	// At least: stub + 2 switches + event + virq + return hypercall.
	minimum := uint64(cost.UpcallStub + 2*cost.DomainSwitchDirect +
		cost.EventChannelSend + cost.VirtIRQDeliver + cost.Hypercall)
	if xenCyc < minimum {
		t.Errorf("xen charge = %d, want >= %d", xenCyc, minimum)
	}
	if hv.Meter.Get(cycles.CompDom0) < cost.UpcallHandler {
		t.Error("dom0 handler cost missing")
	}
	// The hardware model went cold twice: the upcall's hidden cost.
	if hv.Meter.Flushes < 2 {
		t.Errorf("flushes = %d", hv.Meter.Flushes)
	}
}

func TestUpcallArgumentsReachRoutine(t *testing.T) {
	// The dom0 routine reads its cdecl arguments exactly as if called
	// locally — the "identical environment" requirement of §4.2.
	hv, _, domU, m := setup(t)
	var got [3]uint32
	stub := m.MakeStub("r", func(c *cpu.CPU) (uint32, error) {
		got = [3]uint32{c.Arg(0), c.Arg(1), c.Arg(2)}
		return 0, nil
	})
	gate := hv.BindGate("stub.r", stub)
	hv.Switch(domU)
	if _, err := hv.CPU.Call(gate, 0xA, 0xB, 0xC); err != nil {
		t.Fatal(err)
	}
	if got != [3]uint32{0xA, 0xB, 0xC} {
		t.Errorf("args = %x", got)
	}
}

func TestUpcallErrorPropagates(t *testing.T) {
	hv, _, domU, m := setup(t)
	boom := &cpu.Fault{Kind: cpu.FaultProtection, Msg: "routine exploded"}
	stub := m.MakeStub("r", func(c *cpu.CPU) (uint32, error) { return 0, boom })
	gate := hv.BindGate("stub.r", stub)
	hv.Switch(domU)
	_, err := hv.CPU.Call(gate)
	if !cpu.IsFault(err, cpu.FaultProtection) {
		t.Errorf("err = %v", err)
	}
}
