package drivermodel_test

import (
	"strings"
	"testing"

	"twindrivers/internal/drivermodel"

	_ "twindrivers/internal/e1000"
	_ "twindrivers/internal/rtl8139"
)

// TestRegistryCarriesBothBackends: the two shipped backends register at
// init and resolve by name.
func TestRegistryCarriesBothBackends(t *testing.T) {
	names := drivermodel.Names()
	want := []string{"e1000", "rtl8139"}
	for _, w := range want {
		m, ok := drivermodel.Get(w)
		if !ok || m.Name != w {
			t.Fatalf("backend %q not registered (have %v)", w, names)
		}
		if m.Source == "" || m.NewDevice == nil || m.ProbeArgs == nil {
			t.Errorf("%s: model incomplete", w)
		}
		if m.Entries.Xmit == "" || m.Entries.Intr == "" || m.Entries.Probe == "" {
			t.Errorf("%s: entry set incomplete: %+v", w, m.Entries)
		}
	}
	if len(drivermodel.All()) != len(names) {
		t.Errorf("All() and Names() disagree")
	}
	if _, ok := drivermodel.Get("ne2000"); ok {
		t.Error("unknown backend resolved")
	}
}

// TestProbeArityDiffers pins the property the configuration-log fix
// exists for: the backends genuinely disagree about probe arity.
func TestProbeArityDiffers(t *testing.T) {
	e, _ := drivermodel.Get("e1000")
	r, _ := drivermodel.Get("rtl8139")
	if len(e.ProbeArgs(1, 2, 3)) == len(r.ProbeArgs(1, 2, 3)) {
		t.Fatalf("probe arity identical (%d args): the replay-arity regression is no longer exercised",
			len(e.ProbeArgs(1, 2, 3)))
	}
}

// TestAssembleRejectsConflictingEquates: a model may not silently
// redefine a base (kernel) equate to a different value.
func TestAssembleRejectsConflictingEquates(t *testing.T) {
	m := &drivermodel.Model{
		Name:    "bogus",
		Source:  "f:\n\tret\n",
		Equates: map[string]int32{"SKB_LEN": 99},
	}
	if _, err := m.Assemble(map[string]int32{"SKB_LEN": 12}); err == nil || !strings.Contains(err.Error(), "conflicts") {
		t.Fatalf("conflicting equate accepted: %v", err)
	}
	// The same value is fine (shared truth, stated twice).
	if _, err := m.Assemble(map[string]int32{"SKB_LEN": 99}); err != nil {
		t.Fatalf("agreeing equate rejected: %v", err)
	}
}
