// Package drivermodel is the abstraction that makes the derivation
// pipeline driver-generic: everything the framework needs to know about a
// NIC driver/device pair — its entry-symbol set, register-map equates,
// ring/descriptor geometry, probe signature and device factory — lives in
// a Model instead of being hardwired to one driver's symbol names.
//
// The paper's central claim is that ANY guest NIC driver can be rewritten
// into a safe hypervisor driver; core, recovery and the benchmark harness
// consume a Model so that claim is exercised, not assumed. A backend
// registers itself at init time; the shared conformance suite and the
// differential harness run over every registered backend, so adding a
// third driver automatically puts it under the same contract.
package drivermodel

import (
	"fmt"
	"sort"

	"twindrivers/internal/asm"
	"twindrivers/internal/mem"
)

// Device is the behaviour the framework needs from a simulated NIC,
// independent of its register layout or descriptor format. Both device
// models (the e1000-class controller in internal/nic, the rtl8139-class
// controller in internal/rtl) implement it.
type Device interface {
	mem.MMIO

	// Inject delivers a received packet into the device's receive
	// machinery; false means the packet was missed (no buffer space).
	Inject(pkt []byte) bool

	// SetOnTransmit installs the wire: fn receives every transmitted
	// packet's bytes.
	SetOnTransmit(fn func(pkt []byte))

	// HWAddr returns the device's current station address.
	HWAddr() [6]byte

	// Counters exposes the statistics a driver watchdog harvests:
	// good packets transmitted, good packets received, missed packets.
	Counters() (tx, rx, missed uint32)

	// LinkUp reports link state.
	LinkUp() bool

	// PendingInterrupt reports whether an unmasked cause is latched.
	PendingInterrupt() bool
}

// QueueCounters is the optional multi-queue statistics surface: a device
// with more than one transmit queue exposes per-queue good-packet counts
// so steering stability is observable. Single-queue devices simply don't
// implement it; callers fall back to Counters() as a one-queue view.
type QueueCounters interface {
	// QueueTxCounts returns good packets transmitted per TX queue.
	QueueTxCounts() []uint64
}

// Entries is a driver's entry-symbol set: the function names the framework
// invokes on the VM instance (probe/open/close/stats via dom0) and resolves
// in the derived hypervisor instance (xmit/intr).
type Entries struct {
	Probe    string
	Open     string
	Close    string
	Xmit     string
	Intr     string
	Stats    string
	Watchdog string
}

// Geometry describes a model's ring/descriptor layout — informational for
// reports and asserted by the model's own tests, not interpreted by core.
type Geometry struct {
	// TxSlots and RxSlots are the transmit/receive capacities in device
	// units (descriptors for the e1000, TX slots / ring bytes for the
	// rtl8139).
	TxSlots int
	RxSlots int

	// DescBytes is the descriptor size; 0 for a byte-granular ring.
	DescBytes int

	// RxByteRing is true when receive uses a single contiguous byte ring
	// (rtl8139-style) instead of a descriptor ring.
	RxByteRing bool
}

// Model is one NIC backend: a guest driver plus the device it drives.
type Model struct {
	// Name identifies the backend ("e1000", "rtl8139").
	Name string

	// Source is the guest driver in the simulated machine's assembly.
	Source string

	// AdapterSize is the byte size of the driver's private adapter
	// structure (netdev->priv allocation).
	AdapterSize uint32

	// MMIOPages sizes the device register BAR in pages.
	MMIOPages int

	// Equates are the device-register (and driver-private) constants the
	// driver source needs beyond the kernel's structure-layout equates.
	Equates map[string]int32

	// Entries is the entry-symbol set.
	Entries Entries

	// Geometry documents the ring/descriptor layout.
	Geometry Geometry

	// Queues is the number of independent TX/RX queue pairs the device
	// exposes (0 or 1 = classic single-queue device). The per-queue
	// register and descriptor layout is the model's own concern — the
	// framework only shards work across this many service queues and
	// tags each staged frame with its queue index (SKB_QUEUE).
	Queues int

	// TxHeaderSplit is the transmit scatter/gather policy: the number of
	// frame bytes the hypervisor copies into the pooled dom0 sk_buff
	// before chaining the rest of the guest packet as a page fragment.
	// 0 means the device has no scatter/gather (rtl8139-class) and the
	// hypervisor must copy the whole frame linear.
	TxHeaderSplit int

	// NewDevice builds one simulated controller of this model.
	NewDevice func(name string, phys *mem.Physical, macLast byte) Device

	// ProbeArgs builds the argument list of the driver's probe entry
	// point for a device instance. Models differ in probe arity (the
	// rtl8139 probe takes its RX ring size as a fourth argument), so the
	// configuration log records the concrete argument list per event and
	// replays exactly those words.
	ProbeArgs func(netdev, mmioPhys, irq uint32) []uint32
}

// Assemble parses the model's driver source with the kernel structure
// equates merged with the model's device-register equates. A duplicate
// name with a conflicting value is an error: the driver and the framework
// must not disagree about a constant.
func (m *Model) Assemble(kernelEquates map[string]int32) (*asm.Unit, error) {
	merged := make(map[string]int32, len(kernelEquates)+len(m.Equates))
	for k, v := range kernelEquates {
		merged[k] = v
	}
	for k, v := range m.Equates {
		if prev, ok := merged[k]; ok && prev != v {
			return nil, fmt.Errorf("drivermodel: %s: equate %q conflicts (%d vs %d)", m.Name, k, prev, v)
		}
		merged[k] = v
	}
	u, err := asm.AssembleWithEquates(m.Source, merged)
	if err != nil {
		return nil, fmt.Errorf("drivermodel: assemble %s driver: %w", m.Name, err)
	}
	return u, nil
}

var registry = map[string]*Model{}

// Register adds a backend to the registry; driver packages call it from
// init so every linked backend is discoverable by name.
func Register(m *Model) {
	if m.Name == "" {
		panic("drivermodel: register of unnamed model")
	}
	if _, dup := registry[m.Name]; dup {
		panic("drivermodel: duplicate model " + m.Name)
	}
	registry[m.Name] = m
}

// Get resolves a backend by name.
func Get(name string) (*Model, bool) {
	m, ok := registry[name]
	return m, ok
}

// Names lists every registered backend, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every registered backend in Names order.
func All() []*Model {
	var out []*Model
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}
