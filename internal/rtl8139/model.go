package rtl8139

import (
	"twindrivers/internal/drivermodel"
	"twindrivers/internal/mem"
	"twindrivers/internal/rtl"
)

// Equates exposes the rtl8139 register map and bit constants to the
// driver assembly, mirroring how kernel.Equates exposes the e1000's: the
// Go-side device model and the assembly driver share one source of truth.
func Equates() map[string]int32 {
	return map[string]int32{
		"RTL_IDR0": rtl.RegIDR0, "RTL_IDR4": rtl.RegIDR4,
		"RTL_TSD0": rtl.RegTSD0, "RTL_TSAD0": rtl.RegTSAD0,
		"RTL_RBSTART": rtl.RegRBSTART, "RTL_RBLEN": rtl.RegRBLEN,
		"RTL_CMD": rtl.RegCMD, "RTL_CAPR": rtl.RegCAPR, "RTL_CBR": rtl.RegCBR,
		"RTL_IMR": rtl.RegIMR, "RTL_ISR": rtl.RegISR,
		"RTL_MPC": rtl.RegMPC, "RTL_MSR": rtl.RegMSR,
		"RTL_TXCNT": rtl.RegTXCNT, "RTL_RXCNT": rtl.RegRXCNT,

		"RTL_CMD_BUFE": rtl.CmdBufE, "RTL_CMD_TE": rtl.CmdTE,
		"RTL_CMD_RE": rtl.CmdRE, "RTL_CMD_RST": rtl.CmdRST,
		"RTL_INT_ROK": rtl.IntROK, "RTL_INT_TOK": rtl.IntTOK,
		"RTL_INT_RXOVW": rtl.IntRxOvw,
		"RTL_TSD_OWN":   rtl.TsdOwn, "RTL_TSD_TOK": rtl.TsdTok,
		"RTL_MSR_LINKB": rtl.MsrLinkB,
		"RTL_RX_ROK":    rtl.RxStROK,
	}
}

var model = &drivermodel.Model{
	Name:        "rtl8139",
	Source:      Source,
	AdapterSize: AdapterSize,
	MMIOPages:   rtl.MMIOPages,
	Equates:     Equates(),
	Entries: drivermodel.Entries{
		Probe:    FnProbe,
		Open:     FnOpen,
		Close:    FnClose,
		Xmit:     FnXmit,
		Intr:     FnIntr,
		Stats:    FnGetStats,
		Watchdog: FnWatchdog,
	},
	Geometry: drivermodel.Geometry{
		TxSlots:    TxSlots,
		RxSlots:    RxBufLen,
		RxByteRing: true,
	},
	// No scatter/gather on the 8139: the hypervisor carries guest frames
	// linear in the pooled skb instead of chaining guest pages.
	TxHeaderSplit: 0,
	NewDevice: func(name string, phys *mem.Physical, macLast byte) drivermodel.Device {
		return rtl.New(name, phys, macLast)
	},
	// FOUR probe arguments — the RX byte-ring length rides along. The
	// configuration log records this argument list verbatim so recovery
	// replays the same probe the bring-up ran.
	ProbeArgs: func(netdev, mmioPhys, irq uint32) []uint32 {
		return []uint32{netdev, mmioPhys, irq, RxBufLen}
	},
}

func init() { drivermodel.Register(model) }

// DriverModel returns the rtl8139 backend's driver model.
func DriverModel() *drivermodel.Model { return model }
